// xchain-bench: shared-chain load generator CLI (src/load/load_gen.hpp).
//
//   xchain-bench [--users=N] [--threads=N] [--seed=N]
//                [--mix=proto:w,proto:w,...] [--gap=N] [--cap=N]
//                [--max-fee=N] [--scaling=1,2,4,8] [--json=PATH] [--quiet]
//
// Binds --users protocol instances (drawn from the weighted --mix of
// registry protocols) onto ONE shared MultiChain under a seeded arrival
// process and drives them to completion. Blocks are capacity-bounded
// (--cap), so instances outbid each other through fee escalation —
// organic congestion, no synthetic spam. Every completed instance is
// payoff-audited against the paper's hedged floors; violations are
// re-attributed against a faultless twin ([chain-fault]). The report is
// identical at any --threads value except wall-time fields.
//
// --scaling re-runs the identical load at each listed thread count and
// records the wall-time curve (verifying the reports agree tick-for-tick
// along the way). --json (default BENCH_load.json) writes the artifact
// scripts/bench_compare.py gates on.
//
// Exit status: 0 = clean (every violation, if any, attributed to
// congestion), 1 = unattributed violations or scaling mismatch, 2 =
// usage / parameter error.

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "load/load_gen.hpp"

#ifndef XCHAIN_GIT_COMMIT
#define XCHAIN_GIT_COMMIT "unknown"
#endif
#ifndef XCHAIN_BUILD_TYPE
#define XCHAIN_BUILD_TYPE "unknown"
#endif
#ifndef XCHAIN_COMPILER
#define XCHAIN_COMPILER "unknown"
#endif

namespace {

using namespace xchain;

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: xchain-bench [--users=N] [--threads=N] [--seed=N]\n"
      "                    [--mix=proto:w,proto:w,...] [--gap=N] [--cap=N]\n"
      "                    [--max-fee=N] [--scaling=N,N,...] [--json=PATH]\n"
      "                    [--quiet]\n"
      "\n"
      "Shared-chain load generator: runs --users concurrent protocol\n"
      "instances (default 1000), drawn from the weighted --mix of registry\n"
      "protocols (default two-party:2,broker:1,bridge-transfer:1), on ONE\n"
      "shared MultiChain. Arrivals are seeded (--seed, inter-arrival\n"
      "uniform in [0, --gap] ticks); every block admits at most --cap\n"
      "transactions (default 4; 0 = unbounded), so instances compete for\n"
      "block space through fee escalation (ceiling --max-fee, default 64).\n"
      "Every completed instance is audited against its hedged floors;\n"
      "violations re-run solo on a faultless world — congestion-caused\n"
      "ones are reported as [chain-fault], anything unattributed fails.\n"
      "--threads=N parallelizes the actor tick phase (0 = one worker per\n"
      "hardware thread); the report is identical at any count except wall\n"
      "time. --scaling=1,2,4,8 appends a thread-scaling curve to the JSON\n"
      "artifact (--json, default BENCH_load.json). Exit: 0 clean, 1\n"
      "unattributed violations, 2 bad usage.\n");
}

bool parse_long(const std::string& s, long long lo, long long hi,
                long long& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0' && errno != ERANGE && out >= lo &&
         out <= hi;
}

/// "proto:w,proto:w" -> mix entries (weight defaults to 1).
bool parse_mix(const std::string& spec, std::vector<load::MixEntry>& out) {
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(at, comma - at);
    load::MixEntry entry;
    const std::size_t colon = item.find(':');
    if (colon == std::string::npos) {
      entry.protocol = item;
    } else {
      entry.protocol = item.substr(0, colon);
      long long w = 0;
      if (!parse_long(item.substr(colon + 1), 1, INT_MAX, w)) return false;
      entry.weight = static_cast<int>(w);
    }
    if (entry.protocol.empty()) return false;
    out.push_back(std::move(entry));
    at = comma + 1;
  }
  return !out.empty();
}

void json_latency(std::string& j, const char* key,
                  const load::LatencyStats& s, double seconds_per_tick) {
  char buf[256];
  if (seconds_per_tick > 0) {
    std::snprintf(buf, sizeof buf,
                  "\"%s\": {\"p50\": %.6f, \"p95\": %.6f, \"p99\": %.6f, "
                  "\"max\": %.6f, \"mean\": %.6f}",
                  key, static_cast<double>(s.p50) * seconds_per_tick,
                  static_cast<double>(s.p95) * seconds_per_tick,
                  static_cast<double>(s.p99) * seconds_per_tick,
                  static_cast<double>(s.max) * seconds_per_tick,
                  s.mean * seconds_per_tick);
  } else {
    std::snprintf(buf, sizeof buf,
                  "\"%s\": {\"p50\": %lld, \"p95\": %lld, \"p99\": %lld, "
                  "\"max\": %lld, \"mean\": %.3f}",
                  key, static_cast<long long>(s.p50),
                  static_cast<long long>(s.p95),
                  static_cast<long long>(s.p99),
                  static_cast<long long>(s.max), s.mean);
  }
  j += buf;
}

struct ScalingPoint {
  unsigned threads = 0;
  double wall_seconds = 0;
  double instances_per_second = 0;
};

}  // namespace

int main(int argc, char** argv) {
  load::LoadConfig cfg;
  cfg.users = 1000;
  std::string json_path = "BENCH_load.json";
  std::vector<unsigned> scaling;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) {
      return arg.substr(std::strlen(flag));
    };
    long long v = 0;
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--users=", 0) == 0) {
      if (!parse_long(value_of("--users="), 1, 10'000'000, v)) {
        std::fprintf(stderr, "xchain-bench: invalid %s (want --users=N >= 1)\n",
                     arg.c_str());
        return 2;
      }
      cfg.users = static_cast<std::size_t>(v);
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!parse_long(value_of("--threads="), 0, 1024, v)) {
        std::fprintf(stderr,
                     "xchain-bench: invalid %s (want --threads=N >= 0)\n",
                     arg.c_str());
        return 2;
      }
      cfg.threads = v == 0 ? std::max(1u, std::thread::hardware_concurrency())
                           : static_cast<unsigned>(v);
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_long(value_of("--seed="), 0, LLONG_MAX, v)) {
        std::fprintf(stderr, "xchain-bench: invalid %s (want --seed=N)\n",
                     arg.c_str());
        return 2;
      }
      cfg.seed = static_cast<std::uint64_t>(v);
    } else if (arg.rfind("--gap=", 0) == 0) {
      if (!parse_long(value_of("--gap="), 0, 1'000'000, v)) {
        std::fprintf(stderr, "xchain-bench: invalid %s (want --gap=N >= 0)\n",
                     arg.c_str());
        return 2;
      }
      cfg.arrival_gap = static_cast<Tick>(v);
    } else if (arg.rfind("--cap=", 0) == 0) {
      if (!parse_long(value_of("--cap="), 0, 1'000'000, v)) {
        std::fprintf(stderr, "xchain-bench: invalid %s (want --cap=N >= 0)\n",
                     arg.c_str());
        return 2;
      }
      cfg.block_capacity = static_cast<int>(v);
    } else if (arg.rfind("--max-fee=", 0) == 0) {
      if (!parse_long(value_of("--max-fee="), 0, LLONG_MAX / 2, v)) {
        std::fprintf(stderr,
                     "xchain-bench: invalid %s (want --max-fee=N >= 0)\n",
                     arg.c_str());
        return 2;
      }
      cfg.max_fee = static_cast<Amount>(v);
    } else if (arg.rfind("--mix=", 0) == 0) {
      cfg.mix.clear();
      if (!parse_mix(value_of("--mix="), cfg.mix)) {
        std::fprintf(
            stderr,
            "xchain-bench: invalid %s (want --mix=proto:w,proto:w,...)\n",
            arg.c_str());
        return 2;
      }
    } else if (arg.rfind("--scaling=", 0) == 0) {
      std::string spec = value_of("--scaling=");
      std::size_t at = 0;
      scaling.clear();
      while (at < spec.size()) {
        std::size_t comma = spec.find(',', at);
        if (comma == std::string::npos) comma = spec.size();
        if (!parse_long(spec.substr(at, comma - at), 1, 1024, v)) {
          std::fprintf(stderr,
                       "xchain-bench: invalid %s (want --scaling=N,N,...)\n",
                       arg.c_str());
          return 2;
        }
        scaling.push_back(static_cast<unsigned>(v));
        at = comma + 1;
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value_of("--json=");
    } else {
      std::fprintf(stderr, "xchain-bench: unknown argument '%s'\n",
                   arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }
  if (cfg.mix.empty()) {
    cfg.mix = {{"two-party", 2}, {"broker", 1}, {"bridge-transfer", 1}};
  }

  load::LoadReport report;
  std::vector<ScalingPoint> curve;
  bool scaling_mismatch = false;
  try {
    report = load::run_load(cfg);
    for (unsigned t : scaling) {
      load::LoadConfig scfg = cfg;
      scfg.threads = t;
      const load::LoadReport r = load::run_load(scfg);
      curve.push_back({t, r.wall_seconds,
                       r.wall_seconds > 0
                           ? static_cast<double>(r.instances) / r.wall_seconds
                           : 0.0});
      if (r.txs_included != report.txs_included ||
          r.latency.p50 != report.latency.p50 ||
          r.latency.p99 != report.latency.p99 ||
          r.violations.size() != report.violations.size()) {
        std::fprintf(stderr,
                     "xchain-bench: report at --threads=%u diverges from the "
                     "primary run — thread-count nondeterminism\n",
                     t);
        scaling_mismatch = true;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xchain-bench: %s\n", e.what());
    return 2;
  }

  const double seconds_per_tick =
      report.ticks > 0 ? report.wall_seconds / static_cast<double>(report.ticks)
                       : 0.0;

  if (!quiet) {
    std::printf(
        "load: %zu instances over %lld ticks on %zu shared chains "
        "(%zu txs, %u threads, %.3fs wall)\n",
        report.instances, static_cast<long long>(report.ticks), report.chains,
        report.txs_included, cfg.threads, report.wall_seconds);
    std::printf(
        "  throughput: %.0f instances/s, %.0f txs/s\n",
        report.wall_seconds > 0
            ? static_cast<double>(report.instances) / report.wall_seconds
            : 0.0,
        report.wall_seconds > 0
            ? static_cast<double>(report.txs_included) / report.wall_seconds
            : 0.0);
    std::printf(
        "  completion latency: p50=%lld p95=%lld p99=%lld max=%lld ticks "
        "(mean %.1f)\n",
        static_cast<long long>(report.latency.p50),
        static_cast<long long>(report.latency.p95),
        static_cast<long long>(report.latency.p99),
        static_cast<long long>(report.latency.max), report.latency.mean);
    for (const load::ProtocolStats& p : report.per_protocol) {
      std::printf(
          "  %-18s %6zu instances  %7zu txs  p50=%lld p95=%lld p99=%lld\n",
          p.protocol.c_str(), p.instances, p.txs_included,
          static_cast<long long>(p.latency.p50),
          static_cast<long long>(p.latency.p95),
          static_cast<long long>(p.latency.p99));
    }
    std::printf("  violations: %zu (%zu [chain-fault], %zu unattributed)\n",
                report.violations.size(), report.fault_caused,
                report.unattributed);
    for (const ScalingPoint& p : curve) {
      std::printf("  scaling: %2u threads  %.3fs  %.0f instances/s\n",
                  p.threads, p.wall_seconds, p.instances_per_second);
    }
  }

  // --- JSON artifact -------------------------------------------------------
  std::string j = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "  \"benchmark\": \"load\",\n"
                "  \"git_commit\": \"%s\",\n"
                "  \"build_type\": \"%s\",\n"
                "  \"compiler\": \"%s\",\n"
                "  \"hardware_threads\": %u,\n",
                XCHAIN_GIT_COMMIT, XCHAIN_BUILD_TYPE, XCHAIN_COMPILER,
                std::thread::hardware_concurrency());
  j += buf;
  std::snprintf(buf, sizeof buf,
                "  \"users\": %zu,\n  \"threads\": %u,\n  \"seed\": %llu,\n"
                "  \"arrival_gap\": %lld,\n  \"block_capacity\": %d,\n"
                "  \"max_fee\": %lld,\n",
                cfg.users, cfg.threads,
                static_cast<unsigned long long>(cfg.seed),
                static_cast<long long>(cfg.arrival_gap), cfg.block_capacity,
                static_cast<long long>(cfg.max_fee));
  j += buf;
  j += "  \"mix\": [";
  for (std::size_t m = 0; m < cfg.mix.size(); ++m) {
    std::snprintf(buf, sizeof buf, "%s{\"protocol\": \"%s\", \"weight\": %d}",
                  m ? ", " : "", cfg.mix[m].protocol.c_str(),
                  cfg.mix[m].weight);
    j += buf;
  }
  j += "],\n";
  std::snprintf(buf, sizeof buf,
                "  \"instances\": %zu,\n  \"txs_included\": %zu,\n"
                "  \"chains\": %zu,\n  \"ticks\": %lld,\n",
                report.instances, report.txs_included, report.chains,
                static_cast<long long>(report.ticks));
  j += buf;
  j += "  ";
  json_latency(j, "latency_ticks", report.latency, 0.0);
  j += ",\n  \"protocols\": [\n";
  for (std::size_t m = 0; m < report.per_protocol.size(); ++m) {
    const load::ProtocolStats& p = report.per_protocol[m];
    std::snprintf(buf, sizeof buf,
                  "    {\"name\": \"%s\", \"instances\": %zu, "
                  "\"txs_included\": %zu, \"violations\": %zu, "
                  "\"fault_caused\": %zu, ",
                  p.protocol.c_str(), p.instances, p.txs_included,
                  p.violations, p.fault_caused);
    j += buf;
    json_latency(j, "latency_ticks", p.latency, 0.0);
    j += m + 1 < report.per_protocol.size() ? "},\n" : "}\n";
  }
  j += "  ],\n";
  std::snprintf(buf, sizeof buf,
                "  \"violations\": %zu,\n  \"fault_caused\": %zu,\n"
                "  \"unattributed\": %zu,\n",
                report.violations.size(), report.fault_caused,
                report.unattributed);
  j += buf;
  // Wall-time block last: everything above is a pure function of the
  // configuration (byte-identical at any --threads), everything below is
  // measured. Consumers comparing artifacts across thread counts strip
  // "threads" and the keys from here down.
  std::snprintf(buf, sizeof buf,
                "  \"wall_seconds\": %.6f,\n"
                "  \"instances_per_second\": %.3f,\n"
                "  \"txs_per_second\": %.3f,\n",
                report.wall_seconds,
                report.wall_seconds > 0
                    ? static_cast<double>(report.instances) /
                          report.wall_seconds
                    : 0.0,
                report.wall_seconds > 0
                    ? static_cast<double>(report.txs_included) /
                          report.wall_seconds
                    : 0.0);
  j += buf;
  j += "  ";
  json_latency(j, "latency_wall_seconds", report.latency, seconds_per_tick);
  if (!curve.empty()) {
    j += ",\n  \"scaling\": [\n";
    for (std::size_t i = 0; i < curve.size(); ++i) {
      std::snprintf(buf, sizeof buf,
                    "    {\"threads\": %u, \"wall_seconds\": %.6f, "
                    "\"instances_per_second\": %.3f}%s\n",
                    curve[i].threads, curve[i].wall_seconds,
                    curve[i].instances_per_second,
                    i + 1 < curve.size() ? "," : "");
      j += buf;
    }
    j += "  ]";
  }
  j += "\n}\n";

  if (!json_path.empty()) {
    std::FILE* out = std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "xchain-bench: cannot open %s for writing\n",
                   json_path.c_str());
      return 2;
    }
    std::fwrite(j.data(), 1, j.size(), out);
    std::fclose(out);
    if (!quiet) std::printf("wrote %s\n", json_path.c_str());
  }

  if (report.unattributed > 0) {
    std::fprintf(stderr,
                 "xchain-bench: %zu unattributed hedging violations — the "
                 "floors failed without congestion to blame\n",
                 report.unattributed);
    return 1;
  }
  return scaling_mismatch ? 1 : 0;
}
