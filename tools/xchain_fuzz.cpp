// xchain-fuzz: coverage-guided fuzzing of deviation plans, schedules, and
// protocol parameters, with delta-debugged violation reproducers.
//
//   xchain-fuzz [--protocol=NAME]... [--seed=N] [--budget-runs=N]
//               [--budget-seconds=S] [--corpus=DIR]... [--corpus-out=DIR]
//               [--reproducers=DIR] [--json=PATH] [--max-corpus=N]
//               [--replay] [--self-test] [--quiet]
//
// With no --protocol flags every registry protocol is fuzzed. Each target
// replays the starter seeds plus any --corpus files addressed to it (a
// corpus file's `protocol` line routes it), then mutates until the budget
// is spent. Violating inputs are minimized to canonical reproducers;
// --reproducers=DIR writes them as replayable .fuzz files, --corpus-out=DIR
// saves the evolved corpus for cross-run reuse (the nightly soak cache).
// --replay only replays seeds (the CI corpus-regression mode). --self-test
// fuzzes a planted violating adapter and succeeds only if the harness
// finds the bug AND shrinks it to the pinned canonical reproducer.
//
// Determinism: with --budget-seconds unset, output (and the --json report
// body) is a pure function of seed + budgets + corpus.
// Exit status: 0 = clean (or self-test passed), 1 = violations found (or
// self-test failed), 2 = usage / parameter / corpus-format error.
//
// Example:
//   xchain-fuzz --seed=20260808 --budget-runs=2000 \
//               --corpus=tests/fuzz_corpus --json=build/FUZZ_report.json

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/harness.hpp"
#include "fuzz/selftest.hpp"
#include "sim/registry.hpp"

#ifndef XCHAIN_GIT_COMMIT
#define XCHAIN_GIT_COMMIT "unknown"
#endif
#ifndef XCHAIN_BUILD_TYPE
#define XCHAIN_BUILD_TYPE "unknown"
#endif
#ifndef XCHAIN_COMPILER
#define XCHAIN_COMPILER "unknown"
#endif

namespace {

using namespace xchain;

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: xchain-fuzz [--protocol=NAME]... [--seed=N] "
      "[--budget-runs=N]\n"
      "                   [--budget-seconds=S] [--corpus=DIR]... "
      "[--corpus-out=DIR]\n"
      "                   [--reproducers=DIR] [--json=PATH] "
      "[--max-corpus=N]\n"
      "                   [--replay] [--self-test] [--quiet]\n"
      "\n"
      "Coverage-guided fuzzing over (params x DeviationPlans x schedule\n"
      "interleavings): a seeded deterministic PRNG mutates plan vectors\n"
      "(flip Perform/Delay/Drop, bump delays across the synchrony bound,\n"
      "splice ordinals, cross over plans, jitter parameters in schema\n"
      "bounds), executes each mutant, audits the hedging bound, and keeps\n"
      "mutants whose consult-path execution signature is novel. Violations\n"
      "are delta-debugged to canonical minimal reproducers.\n"
      "\n"
      "  --protocol=NAME     fuzz NAME (repeatable; default: all registry\n"
      "                      protocols)\n"
      "  --seed=N            PRNG seed (default 1); same seed + budgets =>\n"
      "                      byte-identical report\n"
      "  --budget-runs=N     executions per protocol (default 2000)\n"
      "  --budget-seconds=S  wall-clock bound per protocol (default: none;\n"
      "                      setting it trades determinism for latency)\n"
      "  --corpus=DIR        replay every *.fuzz file in DIR (repeatable;\n"
      "                      files route to their `protocol` line's target)\n"
      "  --corpus-out=DIR    write the evolved corpus entries to DIR\n"
      "  --reproducers=DIR   write minimized reproducers as .fuzz files\n"
      "  --json=PATH         write FUZZ_report.json\n"
      "  --max-corpus=N      in-memory corpus capacity (default 256)\n"
      "  --replay            replay seeds only, no mutation (CI corpus\n"
      "                      regression mode)\n"
      "  --self-test         fuzz the planted violating adapter; exit 0\n"
      "                      only if the bug is found and shrinks to the\n"
      "                      pinned canonical reproducer\n"
      "\n"
      "Exit: 0 clean / self-test passed, 1 violations / self-test failed,\n"
      "2 bad usage.\n");
}

bool parse_long(const std::string& s, long long lo, long long hi,
                long long& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0' && errno != ERANGE && out >= lo &&
         out <= hi;
}

bool parse_seed(const std::string& s, unsigned long long& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0' && errno != ERANGE;
}

bool parse_seconds(const std::string& s, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0' && errno != ERANGE && out > 0;
}

/// Loads every *.fuzz file under `dir` (sorted by filename for replay
/// determinism) into per-protocol seed lists. Returns false (with a
/// message) on unreadable dirs/files or malformed inputs.
bool load_corpus_dir(const std::string& dir,
                     std::map<std::string, std::vector<fuzz::FuzzInput>>& by,
                     std::string& error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    error = "corpus dir '" + dir + "' is not a directory";
    return false;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".fuzz") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    error = "cannot list corpus dir '" + dir + "': " + ec.message();
    return false;
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    std::ifstream f(path);
    if (!f) {
      error = "cannot read corpus file '" + path.string() + "'";
      return false;
    }
    std::ostringstream text;
    text << f.rdbuf();
    try {
      fuzz::FuzzInput in = fuzz::FuzzInput::parse(text.str());
      by[in.protocol].push_back(std::move(in));
    } catch (const std::exception& e) {
      error = "corpus file '" + path.string() + "': " + e.what();
      return false;
    }
  }
  return true;
}

/// Writes `text` to dir/name, creating dir first. Returns false with a
/// message on any I/O failure.
bool write_file(const std::string& dir, const std::string& name,
                const std::string& text, std::string& error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    error = "cannot create dir '" + dir + "': " + ec.message();
    return false;
  }
  const std::string path = (fs::path(dir) / name).string();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    error = "cannot open '" + path + "'";
    return false;
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  if (std::fclose(f) != 0 || written != text.size()) {
    error = "short write to '" + path + "'";
    return false;
  }
  return true;
}

/// "auction-open" -> "auction_open" for reproducer/corpus filenames.
std::string file_stem(const std::string& protocol) {
  std::string out = protocol;
  for (char& c : out) {
    if (c == '-' || c == '/' || c == ' ') c = '_';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fuzz::FuzzOptions opts;
  std::vector<std::string> protocols;
  std::vector<std::string> corpus_dirs;
  std::string corpus_out, reproducers_dir, json_path;
  bool self_test = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) {
      return arg.substr(std::strlen(flag));
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--replay") {
      opts.replay_only = true;
    } else if (arg == "--self-test") {
      self_test = true;
    } else if (arg.rfind("--protocol=", 0) == 0) {
      protocols.push_back(value_of("--protocol="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      unsigned long long v = 0;
      if (!parse_seed(value_of("--seed="), v)) {
        std::fprintf(stderr, "xchain-fuzz: invalid %s (want --seed=N)\n",
                     arg.c_str());
        return 2;
      }
      opts.seed = v;
    } else if (arg.rfind("--budget-runs=", 0) == 0) {
      long long v = 0;
      if (!parse_long(value_of("--budget-runs="), 1, LLONG_MAX, v)) {
        std::fprintf(stderr,
                     "xchain-fuzz: invalid %s (want --budget-runs=N, "
                     "N >= 1)\n",
                     arg.c_str());
        return 2;
      }
      opts.budget_runs = static_cast<std::size_t>(v);
    } else if (arg.rfind("--budget-seconds=", 0) == 0) {
      double v = 0;
      if (!parse_seconds(value_of("--budget-seconds="), v)) {
        std::fprintf(stderr,
                     "xchain-fuzz: invalid %s (want --budget-seconds=S, "
                     "S > 0)\n",
                     arg.c_str());
        return 2;
      }
      opts.budget_seconds = v;
    } else if (arg.rfind("--max-corpus=", 0) == 0) {
      long long v = 0;
      if (!parse_long(value_of("--max-corpus="), 1, INT_MAX, v)) {
        std::fprintf(stderr,
                     "xchain-fuzz: invalid %s (want --max-corpus=N, "
                     "N >= 1)\n",
                     arg.c_str());
        return 2;
      }
      opts.max_corpus = static_cast<std::size_t>(v);
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dirs.push_back(value_of("--corpus="));
    } else if (arg.rfind("--corpus-out=", 0) == 0) {
      corpus_out = value_of("--corpus-out=");
    } else if (arg.rfind("--reproducers=", 0) == 0) {
      reproducers_dir = value_of("--reproducers=");
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value_of("--json=");
      if (json_path.empty()) {
        std::fprintf(stderr, "xchain-fuzz: invalid --json= (want PATH)\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "xchain-fuzz: unknown flag '%s'\n", arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }

  // Resolve targets: the self-test adapter, or the requested (default:
  // all) registry protocols.
  std::vector<fuzz::FuzzTarget> targets;
  if (self_test) {
    if (!protocols.empty()) {
      std::fprintf(stderr,
                   "xchain-fuzz: --self-test and --protocol are mutually "
                   "exclusive\n");
      return 2;
    }
    targets.push_back(fuzz::selftest_target());
  } else {
    if (protocols.empty()) {
      protocols = sim::ProtocolRegistry::global().names();
    }
    for (const std::string& name : protocols) {
      try {
        targets.push_back(fuzz::FuzzTarget::from_registry(name));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "xchain-fuzz: %s\n", e.what());
        return 2;
      }
    }
  }

  // Load seed corpora; every file must parse and name a known target.
  std::map<std::string, std::vector<fuzz::FuzzInput>> seeds_by_protocol;
  for (const std::string& dir : corpus_dirs) {
    std::string error;
    if (!load_corpus_dir(dir, seeds_by_protocol, error)) {
      std::fprintf(stderr, "xchain-fuzz: %s\n", error.c_str());
      return 2;
    }
  }
  for (const auto& [protocol, seeds] : seeds_by_protocol) {
    const bool known =
        std::any_of(targets.begin(), targets.end(),
                    [&](const fuzz::FuzzTarget& t) {
                      return t.name == protocol;
                    }) ||
        (!self_test && sim::ProtocolRegistry::global().contains(protocol));
    if (!known) {
      std::fprintf(stderr,
                   "xchain-fuzz: corpus protocol '%s' is not a known "
                   "target\n",
                   protocol.c_str());
      return 2;
    }
    (void)seeds;
  }

  fuzz::FuzzReport report;
  report.seed = opts.seed;
  report.budget_runs = opts.budget_runs;
  report.replay_only = opts.replay_only;
  try {
    for (const fuzz::FuzzTarget& target : targets) {
      fuzz::FuzzOptions topts = opts;
      const auto it = seeds_by_protocol.find(target.name);
      if (it != seeds_by_protocol.end()) topts.seeds = it->second;
      report.targets.push_back(fuzz::fuzz_target(target, topts));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xchain-fuzz: %s\n", e.what());
    return 2;
  }

  if (!quiet) std::printf("%s\n", report.str().c_str());

  if (!reproducers_dir.empty()) {
    for (const fuzz::TargetFuzzResult& t : report.targets) {
      for (std::size_t i = 0; i < t.reproducers.size(); ++i) {
        const fuzz::Reproducer& r = t.reproducers[i];
        const std::string name = "repro_" + file_stem(t.protocol) + "_" +
                                 std::to_string(i) + ".fuzz";
        const std::string text = "# minimized by xchain-fuzz --seed=" +
                                 std::to_string(opts.seed) + "\n# violation: " +
                                 r.violation + "\n" + r.input;
        std::string error;
        if (!write_file(reproducers_dir, name, text, error)) {
          std::fprintf(stderr, "xchain-fuzz: %s\n", error.c_str());
          return 2;
        }
      }
    }
  }

  if (!corpus_out.empty()) {
    // The evolved per-target corpus, one file per entry, named so the next
    // run (the nightly soak restoring its cache) replays them in a stable
    // order and resumes from this run's coverage frontier.
    for (const fuzz::TargetFuzzResult& t : report.targets) {
      for (std::size_t i = 0; i < t.corpus.size(); ++i) {
        char num[16];
        std::snprintf(num, sizeof num, "%04zu", i);
        const std::string name =
            "corpus_" + file_stem(t.protocol) + "_" + num + ".fuzz";
        std::string error;
        if (!write_file(corpus_out, name, t.corpus[i], error)) {
          std::fprintf(stderr, "xchain-fuzz: %s\n", error.c_str());
          return 2;
        }
      }
    }
  }

  if (!json_path.empty()) {
    const sim::CampaignStamp stamp{XCHAIN_GIT_COMMIT, XCHAIN_BUILD_TYPE,
                                   XCHAIN_COMPILER};
    const std::string json = fuzz::fuzz_report_json(report, stamp);
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "xchain-fuzz: cannot open %s\n", json_path.c_str());
      return 2;
    }
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    if (std::fclose(f) != 0 || written != json.size()) {
      std::fprintf(stderr, "xchain-fuzz: short write to %s\n",
                   json_path.c_str());
      return 2;
    }
    if (!quiet) std::printf("wrote %s\n", json_path.c_str());
  }

  if (self_test) {
    const fuzz::TargetFuzzResult& t = report.targets.front();
    const std::string want = fuzz::selftest_canonical_reproducer();
    const bool found = !t.reproducers.empty();
    const bool canonical =
        found && std::any_of(t.reproducers.begin(), t.reproducers.end(),
                             [&](const fuzz::Reproducer& r) {
                               return r.input == want;
                             });
    if (!found) {
      std::fprintf(stderr,
                   "xchain-fuzz: self-test FAILED: planted violation not "
                   "found in %zu runs\n",
                   t.runs);
      return 1;
    }
    if (!canonical) {
      std::fprintf(stderr,
                   "xchain-fuzz: self-test FAILED: reproducer did not "
                   "minimize to the canonical form:\n%s",
                   want.c_str());
      return 1;
    }
    if (!quiet) std::printf("self-test OK\n");
    return 0;
  }

  return report.ok() ? 0 : 1;
}
