// xchain-sweep: drive deviation-schedule sweep campaigns from the command
// line, with zero recompilation.
//
//   xchain-sweep --list
//   xchain-sweep --protocol=NAME [--set k=v]... [--grid k=a,b,c]...
//                [--protocol=NAME2 ...]
//                [--strategies=halt-only|timely-delays|late-delays]
//                [--faults=SPEC] [--resilience=POLICY]
//                [--max-deviators=K] [--threads=N] [--max-configs=N]
//                [--max-schedules=N] [--json=PATH] [--quiet] [--dry-run]
//
// Each --protocol starts a campaign entry; subsequent --set (fixed
// override) and --grid (swept axis, cross product across axes) flags apply
// to the most recent one. Every grid point runs the full adversarial
// deviation sweep (sim/scenario.hpp) over the selected strategy space and
// is audited against the paper's hedging bound. --dry-run prints each
// configuration's schedule count (plan-space size) without running any.
// Exit status: 0 = all configurations clean, 1 = at least one
// hedging-bound violation, 2 = usage / parameter error.
//
// Example:
//   xchain-sweep --protocol=multi-party-ring --grid n=3,4,5
//                --grid premium_unit=1,2 --threads=0 --json=out.json

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "chain/fault.hpp"
#include "sim/campaign.hpp"
#include "sim/param.hpp"
#include "sim/registry.hpp"

// Build stamps injected by CMake (same provenance fields as the bench
// artifacts, so campaign JSONs are attributable per commit too).
#ifndef XCHAIN_GIT_COMMIT
#define XCHAIN_GIT_COMMIT "unknown"
#endif
#ifndef XCHAIN_BUILD_TYPE
#define XCHAIN_BUILD_TYPE "unknown"
#endif
#ifndef XCHAIN_COMPILER
#define XCHAIN_COMPILER "unknown"
#endif

namespace {

using namespace xchain;

void print_usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: xchain-sweep --list\n"
      "       xchain-sweep --protocol=NAME [--set k=v]... [--grid "
      "k=a,b,c]...\n"
      "                    [--protocol=NAME2 ...] "
      "[--strategies=halt-only|timely-delays|late-delays]\n"
      "                    [--faults=SPEC] [--resilience=POLICY]\n"
      "                    [--max-deviators=K] [--threads=N] "
      "[--max-configs=N]\n"
      "                    [--max-schedules=N] [--json=PATH] [--quiet] "
      "[--dry-run]\n"
      "\n"
      "Runs the exhaustive deviation-schedule sweep (hedging-bound audit)\n"
      "over every configuration in the cross product of each protocol's\n"
      "--grid axes. --set fixes a parameter for all of an entry's points;\n"
      "--grid k=a,b,c sweeps one axis. --strategies picks the adversary\n"
      "space: halt-only (default; the classic walk-away schedules),\n"
      "timely-delays (+ last-moment-but-compliant lateness, delay = D-1\n"
      "ticks per action), late-delays (+ delays of D-1, D, and 2D ticks,\n"
      "which can land actions past contract deadlines). Delay spaces are\n"
      "bounded per configuration: at most 64 plans per party and\n"
      "--max-schedules=N schedules (default 20000), truncation reported.\n"
      "--threads=N shards the work over N workers (0 = one per hardware\n"
      "thread; the report is identical whatever the count).\n"
      "--max-deviators=K skips schedules with more than K deviating\n"
      "parties (-1 = unbounded). --faults=SPEC injects chain faults into\n"
      "every configuration (';'-joined <chain>:<clause>; clauses\n"
      "outage@A-B, squeeze@A-B,cap=N[,spam=N,fee=N][,mem=N],\n"
      "drop@A-B,p=PERMILLE[,seed=N]; chain '*' = all chains). --resilience\n"
      "picks the conforming parties' submission policy: naive (default),\n"
      "rebroadcast, fee-escalate[:base,step,max]. Fault-injected sweeps\n"
      "run on the brute executor and re-attribute each violation against a\n"
      "faultless twin world ('[chain-fault]' in the details). --json=PATH\n"
      "writes the campaign report as JSON. --dry-run prints\n"
      "per-configuration schedule counts without running. Exit: 0 clean,\n"
      "1 violations, 2 bad usage.\n");
}

void print_list() {
  const sim::ProtocolRegistry& reg = sim::ProtocolRegistry::global();
  std::printf("registered protocols:\n");
  for (const sim::ProtocolInfo& p : reg.protocols()) {
    std::printf("  %-18s %s\n", p.name.c_str(), p.description.c_str());
    for (const sim::ParamSpec& spec : p.defaults.specs()) {
      const std::string bounds = spec.bounds_str();
      std::printf("      %-16s %-7s default=%-10s %s%s%s\n", spec.key.c_str(),
                  param_type_name(spec.type).c_str(),
                  spec.default_str().c_str(), spec.description.c_str(),
                  bounds.empty() ? "" : "  ", bounds.c_str());
    }
  }
  std::printf(
      "strategy spaces (--strategies=..., delay menus in the protocol's "
      "synchrony bound D = delta):\n"
      "  halt-only          conform + every halt point per party "
      "(default; never truncated)\n"
      "  timely-delays      + per-action Delay(D-1): last-moment but "
      "compliant, must sweep clean\n"
      "  late-delays        + per-action Delay(D-1 | D | 2D) and "
      "selective Drop: can miss deadlines\n"
      "  bounds: <= 64 plans/party and <= --max-schedules (default "
      "20000) schedules per configuration,\n"
      "  trimmed uniformly with a truncation notice in the report "
      "(halt plans are kept first).\n"
      "environment (--faults=SPEC, --resilience=POLICY, applied to every "
      "configuration):\n"
      "  SPEC is ';'-joined <chain>:<clause> (chain '*' = all chains); "
      "clauses are outage@A-B (no\n"
      "  blocks accepted in ticks A..B), "
      "squeeze@A-B,cap=N[,spam=N,fee=N][,mem=N] (block space capped\n"
      "  at N txs with fee-priced spam competing for it), and "
      "drop@A-B,p=PERMILLE[,seed=N]\n"
      "  (each submission dropped with probability p/1000). POLICY sets "
      "how conforming parties\n"
      "  respond: naive (default, submit once), rebroadcast (resubmit "
      "while pending), or\n"
      "  fee-escalate[:base,step,max] (rebroadcast with a rising fee "
      "bid). Fault-injected sweeps\n"
      "  run on the brute executor; every violation is re-attributed "
      "against a faultless twin\n"
      "  world and tagged '[chain-fault]' when the fault, not the "
      "deviation, caused the breach.\n");
}

/// Splits --set/--grid payload "k=v" at the first '='.
bool split_kv(const std::string& arg, std::string& key, std::string& value) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  key = arg.substr(0, eq);
  value = arg.substr(eq + 1);
  return true;
}

/// Parses a flag integer into [lo, hi]; overflow and trailing junk fail
/// like any other bad value (no silent truncation to a different meaning).
bool parse_long(const std::string& s, long long lo, long long hi,
                long long& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0' && errno != ERANGE && out >= lo &&
         out <= hi;
}

}  // namespace

int main(int argc, char** argv) {
  sim::CampaignSpec spec;
  std::string json_path;
  bool quiet = false;
  bool list = false;
  bool dry_run = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* flag) {
      return arg.substr(std::strlen(flag));
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg.rfind("--strategies=", 0) == 0) {
      const auto parsed = sim::StrategySpace::parse(value_of("--strategies="));
      if (!parsed) {
        std::fprintf(stderr,
                     "xchain-sweep: invalid %s (want --strategies="
                     "halt-only|timely-delays|late-delays)\n",
                     arg.c_str());
        return 2;
      }
      const std::size_t keep = spec.sweep.strategies.max_schedules;
      spec.sweep.strategies = *parsed;
      spec.sweep.strategies.max_schedules = keep;
    } else if (arg.rfind("--max-schedules=", 0) == 0) {
      long long v = 0;
      if (!parse_long(value_of("--max-schedules="), 1, INT_MAX, v)) {
        std::fprintf(stderr,
                     "xchain-sweep: invalid %s (want --max-schedules=N, "
                     "N >= 1)\n",
                     arg.c_str());
        return 2;
      }
      spec.sweep.strategies.max_schedules = static_cast<std::size_t>(v);
    } else if (arg.rfind("--protocol=", 0) == 0) {
      spec.entries.push_back({value_of("--protocol="), {}, {}});
    } else if (arg == "--set" || arg.rfind("--set=", 0) == 0 ||
               arg == "--grid" || arg.rfind("--grid=", 0) == 0) {
      // --set k=v / --set=k=v / --grid k=a,b,c / --grid=k=a,b,c
      const bool is_grid = arg.rfind("--grid", 0) == 0;
      const char* flag = is_grid ? "--grid" : "--set";
      std::string payload = value_of(flag);
      if (!payload.empty() && payload[0] == '=') payload.erase(0, 1);
      if (payload.empty()) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "xchain-sweep: %s needs k=v\n", flag);
          return 2;
        }
        payload = argv[++i];
      }
      std::string key, value;
      if (!split_kv(payload, key, value)) {
        std::fprintf(stderr, "xchain-sweep: malformed %s '%s' (want k=v)\n",
                     flag, payload.c_str());
        return 2;
      }
      if (spec.entries.empty()) {
        std::fprintf(stderr,
                     "xchain-sweep: %s before any --protocol=NAME\n", flag);
        return 2;
      }
      try {
        if (is_grid) {
          spec.entries.back().grid.add_axis_csv(key, value);
        } else {
          spec.entries.back().overrides.emplace_back(key, value);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "xchain-sweep: %s\n", e.what());
        return 2;
      }
    } else if (arg.rfind("--faults=", 0) == 0) {
      try {
        spec.environment.faults = chain::FaultPlan::parse(value_of("--faults="));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "xchain-sweep: invalid --faults=: %s\n",
                     e.what());
        return 2;
      }
    } else if (arg.rfind("--resilience=", 0) == 0) {
      try {
        spec.environment.resilience =
            chain::ResiliencePolicy::parse(value_of("--resilience="));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "xchain-sweep: invalid --resilience=: %s\n",
                     e.what());
        return 2;
      }
    } else if (arg.rfind("--max-deviators=", 0) == 0) {
      long long v = 0;
      if (!parse_long(value_of("--max-deviators="), -1, INT_MAX, v)) {
        std::fprintf(stderr,
                     "xchain-sweep: invalid %s (want --max-deviators=K, "
                     "K >= -1)\n",
                     arg.c_str());
        return 2;
      }
      spec.sweep.max_deviators = static_cast<int>(v);
    } else if (arg.rfind("--threads=", 0) == 0) {
      long long v = 0;
      if (!parse_long(value_of("--threads="), 0, UINT_MAX, v)) {
        std::fprintf(stderr,
                     "xchain-sweep: invalid %s (want --threads=N, N >= 0)\n",
                     arg.c_str());
        return 2;
      }
      spec.sweep.threads = static_cast<unsigned>(v);
    } else if (arg.rfind("--max-configs=", 0) == 0) {
      long long v = 0;
      if (!parse_long(value_of("--max-configs="), 1, INT_MAX, v)) {
        std::fprintf(stderr,
                     "xchain-sweep: invalid %s (want --max-configs=N, "
                     "N >= 1)\n",
                     arg.c_str());
        return 2;
      }
      spec.max_configs_per_entry = static_cast<std::size_t>(v);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = value_of("--json=");
      if (json_path.empty()) {
        std::fprintf(stderr, "xchain-sweep: invalid --json= (want PATH)\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "xchain-sweep: unknown flag '%s'\n", arg.c_str());
      print_usage(stderr);
      return 2;
    }
  }

  if (list) {
    print_list();
    if (spec.entries.empty()) return 0;
  }
  if (spec.entries.empty()) {
    print_usage(stderr);
    return 2;
  }

  if (dry_run) {
    try {
      const sim::DryRunReport preview =
          sim::Campaign(std::move(spec)).dry_run();
      if (!quiet) std::printf("%s\n", preview.str().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "xchain-sweep: %s\n", e.what());
      return 2;
    }
    return 0;
  }

  sim::CampaignReport report;
  try {
    report = sim::Campaign(std::move(spec)).run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xchain-sweep: %s\n", e.what());
    return 2;
  }

  if (!quiet) {
    std::printf("%s\n", report.str().c_str());
  }

  if (!json_path.empty()) {
    const sim::CampaignStamp stamp{XCHAIN_GIT_COMMIT, XCHAIN_BUILD_TYPE,
                                   XCHAIN_COMPILER};
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "xchain-sweep: cannot open %s\n",
                   json_path.c_str());
      return 2;
    }
    const std::string json = sim::campaign_json(report, stamp);
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    if (std::fclose(f) != 0 || written != json.size()) {
      std::fprintf(stderr, "xchain-sweep: short write to %s\n",
                   json_path.c_str());
      return 2;
    }
    if (!quiet) std::printf("wrote %s\n", json_path.c_str());
  }

  return report.ok() ? 0 : 1;
}
