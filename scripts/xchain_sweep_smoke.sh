#!/usr/bin/env bash
# CLI smoke test for xchain-sweep, wired into ctest (see CMakeLists.txt).
#
# Usage: xchain_sweep_smoke.sh /path/to/xchain-sweep /path/to/out.json
#
# Asserts that:
#   * --list names every registered reference protocol and the strategy
#     spaces;
#   * a small two-party grid campaign (premium_a=1,2) exits 0;
#   * the emitted JSON parses (python3 when available, grep fallback) and
#     reports 2 configurations with 0 violations;
#   * --dry-run prints per-configuration schedule counts without running
#     (halt-only two-party: 16; --strategies=late-delays enlarges it);
#   * a bounded --strategies=late-delays sweep runs clean and stamps the
#     JSON with the strategy space.
set -euo pipefail

bin="$1"
json="$2"

fail() { echo "xchain_sweep_smoke: FAIL: $*" >&2; exit 1; }

# --list must name all reference protocols and the strategy spaces.
list_out="$("$bin" --list)"
for name in two-party multi-party-ring multi-party-fig3a auction-open \
            auction-sealed broker bootstrap crr-ladder; do
  grep -q "^  $name " <<<"$list_out" || fail "--list is missing '$name'"
done
for space in halt-only timely-delays late-delays; do
  grep -q "$space" <<<"$list_out" || fail "--list is missing '$space'"
done

# A tiny grid campaign must run clean and write JSON.
rm -f "$json"
"$bin" --protocol=two-party --grid premium_a=1,2 --threads=2 \
  --json="$json" || fail "campaign exited $? (want 0)"
[[ -s "$json" ]] || fail "no JSON written to $json"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["benchmark"] == "campaign", doc
assert doc["configurations"] == 2, doc
assert doc["violations"] == 0, doc
assert len(doc["configs"]) == 2, doc
assert all(c["violations"] == 0 for c in doc["configs"]), doc
assert {c["params"] for c in doc["configs"]} == \
    {"premium_a=1", "premium_a=2"}, doc
EOF
else
  grep -q '"benchmark": "campaign"' "$json" || fail "JSON lacks benchmark"
  grep -q '"configurations": 2' "$json" || fail "JSON lacks 2 configurations"
  # Anchor to the top-level aggregate (two-space indent, trailing comma):
  # an unanchored '"violations": 0' also matches any single clean entry in
  # the per-config "configs" array, passing even when other configs report
  # violations.
  grep -q '^  "violations": 0,' "$json" || fail "JSON lacks violations: 0"
fi

# --dry-run prints plan-space sizes without running: the halt-only
# two-party space is exactly 16 schedules, and late-delays enlarges it.
dry_out="$("$bin" --protocol=two-party --dry-run)" || \
  fail "--dry-run exited $? (want 0)"
grep -q "two-party: 16 schedules" <<<"$dry_out" || \
  fail "--dry-run halt-only count wrong: $dry_out"
late_dry_out="$("$bin" --protocol=two-party --strategies=late-delays \
  --max-schedules=5000 --dry-run)" || fail "late-delays --dry-run failed"
late_count="$(sed -n 's/^two-party: \([0-9]*\) schedules$/\1/p' \
  <<<"$late_dry_out")"
[[ -n "$late_count" && "$late_count" -gt 48 ]] || \
  fail "late-delays dry-run should enlarge the space: $late_dry_out"

# A bounded late-delays sweep must run clean and stamp the JSON.
rm -f "$json.late"
"$bin" --protocol=two-party --strategies=late-delays --max-schedules=2000 \
  --threads=2 --json="$json.late" >/dev/null || \
  fail "late-delays sweep exited $? (want 0)"
grep -q '"strategies": "late-delays"' "$json.late" || \
  fail "JSON lacks the strategies stamp"
grep -q '^  "violations": 0,' "$json.late" || \
  fail "late-delays sweep reported violations"
rm -f "$json.late"

# Unknown protocols / params / strategy spaces must fail with usage
# errors, not violations.
"$bin" --protocol=no-such-protocol >/dev/null 2>&1 && \
  fail "unknown protocol should exit non-zero"
"$bin" --protocol=two-party --set no_such_param=1 >/dev/null 2>&1 && \
  fail "unknown param should exit non-zero"
"$bin" --protocol=two-party --strategies=bogus >/dev/null 2>&1 && \
  fail "unknown strategy space should exit non-zero"

echo "xchain_sweep_smoke: OK"
