#!/usr/bin/env bash
# Tier-1 verification, end to end: configure, build, test from a clean (or
# incremental) build tree. Mirrors ROADMAP.md's "Tier-1 verify" command.
#
# Usage: scripts/check.sh [--clean]
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--clean" ]]; then
  rm -rf build
fi

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

echo "check.sh: all green"
