#!/usr/bin/env bash
# Tier-1 verification, end to end: configure, build, test from a clean (or
# incremental) build tree. Mirrors ROADMAP.md's "Tier-1 verify" command.
#
# Usage: scripts/check.sh [--clean]
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--clean" ]]; then
  rm -rf build
fi

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Bounded deterministic fuzz smoke: the planted-bug self-test plus a
# fixed-seed pass over every registry protocol seeded with the committed
# regression corpus. Small budget — this is the "still wired up" check;
# the CI fuzz stage and nightly soak carry the real budgets.
./build/xchain-fuzz --self-test --seed=1 --budget-runs=1000 --quiet
./build/xchain-fuzz --seed=1 --budget-runs=500 --quiet \
  --corpus=tests/fuzz_corpus

echo "check.sh: all green"
