#!/usr/bin/env python3
"""Compare two bench artifacts of the same schema and gate regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CANDIDATE.json
        [--max-regression 0.20] [--report-only]

Two artifact schemas are understood, selected by the top-level
"benchmark" key (baseline and candidate must agree):

  scenario_sweep  (bench/bench_scenario_sweep.cpp) — exits non-zero when
    the candidate's serial `total_schedules_per_second` regresses by more
    than --max-regression (default 20%) relative to the baseline, and
    likewise for the enlarged `late_delays` space when both artifacts
    carry that key (older baselines predate it).

  load  (tools/xchain_bench.cpp, BENCH_load.json) — exits non-zero when
    `instances_per_second` regresses by more than --max-regression, or
    when the candidate reports any *unattributed* hedging violation (a
    correctness failure, not a perf question). Completion-latency
    percentiles (ticks — deterministic, not wall time) are reported per
    protocol and in aggregate for context.

--report-only prints the same comparison but always exits 0 — CI uses it
on shared 1-core runners, where absolute throughput is too noisy to gate
on (the committed baselines were measured on a dedicated host; see
bench/baselines/). A `hardware_threads` mismatch between baseline and
candidate is a hard FAILURE unless --report-only is passed: absolute
throughput only compares meaningfully between like-for-like hosts, and a
silent degrade here previously let every cross-host run self-disarm the
gate — the caller must now say explicitly that it only wants the report.

Per-protocol rates and the parallel scaling curve are reported for
context but never gated: small schedule spaces amortize world setup over
few runs and are noisy by construction.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")


def fmt_rate(rate):
    return f"{rate:,.0f}/s"


def fmt_latency(doc):
    lat = doc.get("latency_ticks", {})
    return (f"p50={lat.get('p50', '?')} p95={lat.get('p95', '?')}"
            f" p99={lat.get('p99', '?')} ticks")


def compare_scenario_sweep(base, cand, args, failures):
    """The sweep-throughput schema: gate total and late-delays rates."""
    for doc, path in ((base, args.baseline), (cand, args.candidate)):
        if "total_schedules_per_second" not in doc:
            sys.exit(f"bench_compare: {path} lacks total_schedules_per_second")

    # Per-protocol context (never gated).
    base_protocols = {p["name"]: p for p in base.get("protocols", [])}
    for p in cand.get("protocols", []):
        b = base_protocols.get(p["name"])
        if b is None:
            print(f"  {p['name']:<22} {fmt_rate(p['schedules_per_second']):>14}"
                  f"  (new protocol)")
            continue
        ratio = p["schedules_per_second"] / max(b["schedules_per_second"], 1e-9)
        print(
            f"  {p['name']:<22} {fmt_rate(b['schedules_per_second']):>14} ->"
            f" {fmt_rate(p['schedules_per_second']):>14}  ({ratio:5.2f}x)"
        )
        if p.get("violations", 0) != 0:
            sys.exit(
                f"bench_compare: candidate reports {p['violations']} hedging"
                f" violations in {p['name']} — a correctness failure, not a"
                " perf question"
            )

    base_total = base["total_schedules_per_second"]
    cand_total = cand["total_schedules_per_second"]
    ratio = cand_total / max(base_total, 1e-9)
    print(
        f"  {'TOTAL (serial)':<22} {fmt_rate(base_total):>14} ->"
        f" {fmt_rate(cand_total):>14}  ({ratio:5.2f}x)"
    )

    floor = 1.0 - args.max_regression
    if ratio < floor:
        failures.append(
            f"total_schedules_per_second fell to {ratio:.2f}x of baseline"
            f" (floor {floor:.2f}x)"
        )

    # The enlarged timing-griefing space, gated the same way when both
    # artifacts carry it (older baselines predate the key). The executor
    # statistics ride along for context: dedup_hits / nodes_executed shows
    # how much of the space the tree executor served from shared prefixes.
    if "late_delays" in base and "late_delays" in cand:
        b, c = base["late_delays"], cand["late_delays"]
        late_ratio = c["schedules_per_second"] / max(
            b["schedules_per_second"], 1e-9
        )
        stats = ""
        if "dedup_hits" in c:
            stats = (
                f"  [{c.get('nodes_executed', '?')} executed,"
                f" {c.get('dedup_hits', '?')} dedup hits]"
            )
        print(
            f"  {'late-delays (serial)':<22}"
            f" {fmt_rate(b['schedules_per_second']):>14} ->"
            f" {fmt_rate(c['schedules_per_second']):>14}"
            f"  ({late_ratio:5.2f}x){stats}"
        )
        if late_ratio < floor:
            failures.append(
                f"late_delays schedules_per_second fell to {late_ratio:.2f}x"
                f" of baseline (floor {floor:.2f}x)"
            )
    return ratio


def compare_load(base, cand, args, failures):
    """The shared-chain load schema (BENCH_load.json): gate throughput and
    the zero-unattributed-violations invariant; report latency."""
    for doc, path in ((base, args.baseline), (cand, args.candidate)):
        if "instances_per_second" not in doc:
            sys.exit(f"bench_compare: {path} lacks instances_per_second")

    # Unattributed violations are a correctness failure regardless of
    # --report-only leniency about throughput.
    if cand.get("unattributed", 0) != 0:
        sys.exit(
            f"bench_compare: candidate reports {cand['unattributed']}"
            " UNATTRIBUTED hedging violations — the floors failed without"
            " congestion to blame; a correctness failure, not a perf question"
        )

    # Per-protocol context (never gated): instances and tick latency.
    base_protocols = {p["name"]: p for p in base.get("protocols", [])}
    for p in cand.get("protocols", []):
        b = base_protocols.get(p["name"])
        tail = "(new protocol)" if b is None else f"[was {fmt_latency(b)}]"
        print(f"  {p['name']:<22} {p['instances']:>7} instances "
              f" {fmt_latency(p)}  {tail}")

    print(f"  {'aggregate latency':<22} {fmt_latency(base)} ->"
          f" {fmt_latency(cand)}")
    if "fault_caused" in cand:
        print(f"  {'violations':<22} {cand.get('violations', 0)}"
              f" ({cand.get('fault_caused', 0)} [chain-fault],"
              f" {cand.get('unattributed', 0)} unattributed)")

    base_total = base["instances_per_second"]
    cand_total = cand["instances_per_second"]
    ratio = cand_total / max(base_total, 1e-9)
    print(
        f"  {'instances/s':<22} {fmt_rate(base_total):>14} ->"
        f" {fmt_rate(cand_total):>14}  ({ratio:5.2f}x)"
    )
    if "txs_per_second" in base and "txs_per_second" in cand:
        tx_ratio = cand["txs_per_second"] / max(base["txs_per_second"], 1e-9)
        print(
            f"  {'txs/s':<22} {fmt_rate(base['txs_per_second']):>14} ->"
            f" {fmt_rate(cand['txs_per_second']):>14}  ({tx_ratio:5.2f}x)"
        )

    # Thread-scaling curve, context only (noisy on shared runners).
    for point in cand.get("scaling", []):
        print(f"  {'scaling':<22} {point.get('threads', '?'):>3} threads "
              f" {fmt_rate(point.get('instances_per_second', 0)):>14}")

    floor = 1.0 - args.max_regression
    if ratio < floor:
        failures.append(
            f"instances_per_second fell to {ratio:.2f}x of baseline"
            f" (floor {floor:.2f}x)"
        )
    return ratio


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop in the schema's headline"
        " throughput (default 0.20)",
    )
    ap.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison but always exit 0 (noisy shared runners)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    schema = base.get("benchmark")
    if schema not in ("scenario_sweep", "load"):
        sys.exit(f"bench_compare: {args.baseline} has unknown benchmark"
                 f" schema {schema!r}")
    if cand.get("benchmark") != schema:
        sys.exit(
            f"bench_compare: schema mismatch — baseline is {schema!r},"
            f" candidate is {cand.get('benchmark')!r}"
        )

    print(
        f"baseline : {args.baseline} "
        f"(commit {base.get('git_commit', 'unknown')[:12]}, "
        f"{base.get('build_type', 'unknown')}, "
        f"{base.get('compiler', 'unknown')}, "
        f"{base.get('hardware_threads', '?')} hw threads)"
    )
    print(
        f"candidate: {args.candidate} "
        f"(commit {cand.get('git_commit', 'unknown')[:12]}, "
        f"{cand.get('build_type', 'unknown')}, "
        f"{cand.get('compiler', 'unknown')}, "
        f"{cand.get('hardware_threads', '?')} hw threads)"
    )
    if base.get("build_type") != cand.get("build_type"):
        print(
            "bench_compare: WARNING: build_type differs — rates are not"
            " comparable",
            file=sys.stderr,
        )
    if base.get("hardware_threads") != cand.get("hardware_threads"):
        msg = (
            "bench_compare: hardware_threads differs"
            f" ({base.get('hardware_threads', '?')} vs"
            f" {cand.get('hardware_threads', '?')}) — different host class,"
            " rates are not comparable"
        )
        if not args.report_only:
            sys.exit(msg + " (pass --report-only to print the comparison"
                     " anyway)")
        print(msg + " [report-only]", file=sys.stderr)

    failures = []
    if schema == "scenario_sweep":
        ratio = compare_scenario_sweep(base, cand, args, failures)
    else:
        ratio = compare_load(base, cand, args, failures)

    floor = 1.0 - args.max_regression
    if failures:
        msg = "bench_compare: REGRESSION: " + "; ".join(failures)
        if args.report_only:
            print(msg + " [report-only: not failing]")
            return
        sys.exit(msg)
    print(f"bench_compare: OK ({ratio:.2f}x of baseline, floor {floor:.2f}x)")


if __name__ == "__main__":
    main()
