#!/usr/bin/env bash
# CLI smoke test for xchain-fuzz, wired into ctest (see CMakeLists.txt).
#
# Usage: xchain_fuzz_smoke.sh /path/to/xchain-fuzz /path/to/tests/fuzz_corpus /path/to/workdir
#
# Asserts that:
#   * --help exits 0 and names the corpus/replay/self-test flags; unknown
#     flags and malformed values exit 2;
#   * --self-test finds the planted two-entry bug within a bounded budget
#     and shrinks it to the pinned canonical reproducer (exit 0);
#   * the seeded regression corpus replays clean (exit 0) and the JSON
#     report parses (python3 when available, grep fallback) with 0
#     violating runs;
#   * two same-seed bounded runs emit byte-identical JSON bodies modulo
#     the build-stamp fields (the determinism contract CI relies on);
#   * a violating run (--self-test without the pass condition: a plain
#     fuzz of the trap via --self-test is the only in-tree violator)
#     writes reproducer files in corpus format.
set -euo pipefail

bin="$1"
corpus="$2"
work="$3"

fail() { echo "xchain_fuzz_smoke: FAIL: $*" >&2; exit 1; }

mkdir -p "$work"
rm -f "$work"/*.json "$work"/repro_* 2>/dev/null || true

# --help exits 0 and documents the contract; bad flags exit 2.
help_out="$("$bin" --help)" || fail "--help exited $? (want 0)"
for flag in --protocol= --seed= --budget-runs= --corpus= --replay \
            --self-test --json=; do
  grep -qF -- "$flag" <<<"$help_out" || fail "--help is missing '$flag'"
done
"$bin" --no-such-flag >/dev/null 2>&1 && fail "unknown flag should exit 2"
rc=0; "$bin" --no-such-flag >/dev/null 2>&1 || rc=$?
[[ "$rc" -eq 2 ]] || fail "unknown flag exited $rc (want 2)"
rc=0; "$bin" --seed=notanumber >/dev/null 2>&1 || rc=$?
[[ "$rc" -eq 2 ]] || fail "bad --seed exited $rc (want 2)"
rc=0; "$bin" --budget-runs=0 >/dev/null 2>&1 || rc=$?
[[ "$rc" -eq 2 ]] || fail "--budget-runs=0 exited $rc (want 2)"
rc=0; "$bin" --corpus=/no/such/dir >/dev/null 2>&1 || rc=$?
[[ "$rc" -eq 2 ]] || fail "missing corpus dir exited $rc (want 2)"

# The planted-bug self-test: found, shrunk to the pinned canonical form.
"$bin" --self-test --seed=1 --budget-runs=1000 --quiet \
  --reproducers="$work" || fail "--self-test exited $? (want 0)"
repro="$(ls "$work"/repro_fuzz_selftest_trap_*.fuzz 2>/dev/null | head -1)"
[[ -n "$repro" ]] || fail "--self-test wrote no reproducer file"
grep -q '^plan 1 x0$' "$repro" || fail "reproducer not canonical: $repro"
grep -q '^plan 2 halt@1$' "$repro" || fail "reproducer not canonical: $repro"
grep -q '^# violation: ' "$repro" || fail "reproducer lacks violation note"

# The seeded regression corpus must replay clean and the report parse.
json="$work/FUZZ_smoke.json"
"$bin" --replay --corpus="$corpus" --seed=1 --quiet --json="$json" || \
  fail "corpus replay exited $? (want 0)"
[[ -s "$json" ]] || fail "no JSON written to $json"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["benchmark"] == "fuzz", doc
assert doc["replay_only"] is True, doc
assert doc["violating_runs"] == 0, doc
assert doc["reproducers"] == 0, doc
assert doc["runs"] > 0, doc
names = {t["protocol"] for t in doc["targets"]}
assert {"two-party", "broker", "auction-open"} <= names, names
assert all(t["violating_runs"] == 0 for t in doc["targets"]), doc
EOF
else
  grep -q '"benchmark": "fuzz"' "$json" || fail "JSON lacks benchmark"
  # Anchor to the top-level aggregate (two-space indent, trailing comma) so
  # a clean per-target row cannot mask a violating sibling.
  grep -q '^  "violating_runs": 0,' "$json" || \
    fail "JSON lacks violating_runs: 0"
  grep -q '^  "replay_only": true,' "$json" || fail "JSON lacks replay_only"
fi

# Determinism: two same-seed bounded runs, byte-identical JSON bodies
# modulo the stamp fields (git commit / build type / compiler / threads).
a="$work/FUZZ_a.json"; b="$work/FUZZ_b.json"
"$bin" --protocol=two-party --seed=77 --budget-runs=200 --quiet \
  --json="$a" || fail "determinism run A exited $?"
"$bin" --protocol=two-party --seed=77 --budget-runs=200 --quiet \
  --json="$b" || fail "determinism run B exited $?"
strip() {
  grep -v -e '"git_commit"' -e '"build_type"' -e '"compiler"' \
          -e '"hardware_threads"' "$1"
}
diff <(strip "$a") <(strip "$b") >/dev/null || \
  fail "same-seed runs produced different JSON bodies"

echo "xchain_fuzz_smoke: OK"
