#!/usr/bin/env bash
# CLI smoke test for xchain-bench, wired into ctest (see CMakeLists.txt).
#
# Usage: xchain_bench_smoke.sh /path/to/xchain-bench /path/to/workdir
#
# Asserts that:
#   * --help prints the usage text;
#   * a small shared-chain load (200 users, default mix) exits 0 and
#     writes a BENCH_load JSON artifact with the expected shape (every
#     instance completed, latency percentiles present, 0 unattributed
#     violations);
#   * the --threads=1 and --threads=4 artifacts are identical modulo the
#     wall-time/stamp fields (the load loop's determinism contract);
#   * malformed flags and unknown mix protocols exit 2.
set -euo pipefail

bin="$1"
work="$2"

fail() { echo "xchain_bench_smoke: FAIL: $*" >&2; exit 1; }

mkdir -p "$work"

"$bin" --help | grep -q "usage: xchain-bench" || fail "--help lacks usage"

# Small load, deterministic seed, both thread counts.
rm -f "$work/t1.json" "$work/t4.json"
"$bin" --users=200 --threads=1 --seed=7 --json="$work/t1.json" --quiet \
  || fail "--threads=1 run exited $? (want 0)"
"$bin" --users=200 --threads=4 --seed=7 --json="$work/t4.json" --quiet \
  || fail "--threads=4 run exited $? (want 0)"
[[ -s "$work/t1.json" && -s "$work/t4.json" ]] || fail "missing JSON artifacts"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$work/t1.json" "$work/t4.json" <<'EOF'
import json, sys
WALL = {"threads", "wall_seconds", "instances_per_second", "txs_per_second",
        "latency_wall_seconds", "scaling", "git_commit", "build_type",
        "compiler", "hardware_threads"}
docs = []
for path in sys.argv[1:3]:
    with open(path) as f:
        doc = json.load(f)
    assert doc["benchmark"] == "load", doc["benchmark"]
    assert doc["instances"] == 200, doc["instances"]
    assert doc["unattributed"] == 0, doc["unattributed"]
    assert {"p50", "p95", "p99", "max", "mean"} <= \
        set(doc["latency_ticks"]), doc["latency_ticks"]
    assert sum(p["instances"] for p in doc["protocols"]) == 200, \
        doc["protocols"]
    docs.append({k: v for k, v in doc.items() if k not in WALL})
assert docs[0] == docs[1], "threads=1 vs threads=4 reports differ"
EOF
else
  grep -q '"benchmark": "load"' "$work/t1.json" || fail "JSON lacks benchmark"
  grep -q '"instances": 200' "$work/t1.json" || fail "JSON lacks instances"
  grep -q '"unattributed": 0' "$work/t1.json" || fail "unattributed != 0"
  # Determinism: the tick-latency line must agree across thread counts.
  t1_lat="$(grep '"latency_ticks"' "$work/t1.json" | head -1)"
  t4_lat="$(grep '"latency_ticks"' "$work/t4.json" | head -1)"
  [[ "$t1_lat" == "$t4_lat" ]] || fail "latency differs across thread counts"
fi

# Usage errors exit 2, never 0/1.
set +e
"$bin" --users=0 >/dev/null 2>&1; [[ $? -eq 2 ]] || fail "--users=0 should exit 2"
"$bin" --no-such-flag >/dev/null 2>&1; [[ $? -eq 2 ]] || fail "unknown flag should exit 2"
"$bin" --users=5 --mix=no-such-protocol:1 --json="$work/bad.json" \
  >/dev/null 2>&1; [[ $? -eq 2 ]] || fail "unknown mix protocol should exit 2"
"$bin" --users=5 --mix=two-party:0 >/dev/null 2>&1; [[ $? -eq 2 ]] || \
  fail "zero mix weight should exit 2"
set -e

rm -f "$work/t1.json" "$work/t4.json" "$work/bad.json"
echo "xchain_bench_smoke: OK"
