// E6 — §10: "We used model checking to verify the properties of the
// two-party hedged swap and some three-party hedged swaps... this
// constrained behavior can be model-checked in reasonable time."
//
// Reproduces that result with the C++ strategy-space explorer: scenario
// counts and wall-clock per protocol, all invariants checked.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/model_checker.hpp"

using namespace xchain;

namespace {

void print_reports() {
  std::printf("\n%-24s %-11s %-9s %-11s\n", "protocol", "scenarios",
              "events", "violations");

  auto row = [](const analysis::CheckReport& r) {
    std::printf("%-24s %-11zu %-9zu %-11zu %s\n", r.protocol.c_str(),
                r.scenarios_explored, r.events_observed,
                r.violations.size(), r.ok() ? "OK" : "EXPECTED-FAIL");
  };

  core::TwoPartyConfig two;
  two.delta = 1;
  row(analysis::check_base_two_party(two));  // negative control
  row(analysis::check_hedged_two_party(two));

  core::BootstrapConfig boot;
  boot.rounds = 2;
  boot.delta = 1;
  row(analysis::check_bootstrap(boot));

  core::MultiPartyConfig mp2;
  mp2.g = graph::Digraph::two_party();
  mp2.delta = 1;
  row(analysis::check_multi_party(mp2));

  core::MultiPartyConfig mp3;
  mp3.g = graph::Digraph::figure3a();
  mp3.delta = 1;
  row(analysis::check_multi_party(mp3));

  core::MultiPartyConfig mpc3;
  mpc3.g = graph::Digraph::complete(3);
  mpc3.delta = 1;
  row(analysis::check_multi_party(mpc3));

  core::BrokerConfig broker;
  broker.delta = 1;
  row(analysis::check_broker(broker));

  core::AuctionConfig auction;
  auction.delta = 1;
  row(analysis::check_auction(auction));
}

void BM_CheckHedgedTwoParty(benchmark::State& state) {
  core::TwoPartyConfig cfg;
  cfg.delta = 1;
  for (auto _ : state) {
    auto r = analysis::check_hedged_two_party(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CheckHedgedTwoParty);

void BM_CheckThreePartySwap(benchmark::State& state) {
  core::MultiPartyConfig cfg;
  cfg.g = graph::Digraph::figure3a();
  cfg.delta = 1;
  for (auto _ : state) {
    auto r = analysis::check_multi_party(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CheckThreePartySwap);

void BM_CheckBroker(benchmark::State& state) {
  core::BrokerConfig cfg;
  cfg.delta = 1;
  for (auto _ : state) {
    auto r = analysis::check_broker(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CheckBroker);

void BM_CheckAuction(benchmark::State& state) {
  core::AuctionConfig cfg;
  cfg.delta = 1;
  for (auto _ : state) {
    auto r = analysis::check_auction(cfg);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CheckAuction);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E6: model checking the hedged protocols (§10) ===\n");
  print_reports();
  std::printf(
      "\nShape checks: the base two-party protocol FAILS the hedged\n"
      "property (the paper's motivating flaw — our negative control);\n"
      "every hedged protocol passes all invariants over its full\n"
      "strategy product, in milliseconds (\"reasonable time\").\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
