// E1 — Figure 1 / §5.1-5.2: the hedged two-party swap.
//
// Regenerates the paper's payoff analysis as an outcome matrix over every
// abort point, for the base and hedged protocols, then times protocol
// execution across the synchrony bound Delta.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/two_party.hpp"

using namespace xchain;

namespace {

core::TwoPartyConfig config() {
  core::TwoPartyConfig cfg;
  cfg.alice_tokens = 100;
  cfg.bob_tokens = 50;
  cfg.premium_a = 2;
  cfg.premium_b = 1;
  cfg.delta = 2;
  return cfg;
}

const char* plan_name(int k) {
  static const char* names[] = {"halt@0", "halt@1", "halt@2", "halt@3"};
  return k < 0 ? "conform" : names[k];
}

sim::DeviationPlan plan_of(int k) {
  return k < 0 ? sim::DeviationPlan::conforming()
               : sim::DeviationPlan::halt_after(k);
}

void print_matrix(bool hedged) {
  const int actions =
      hedged ? core::kHedgedTwoPartyActions : core::kBaseTwoPartyActions;
  std::printf("\n%s protocol (A=100, B=50, p_a=2, p_b=1):\n",
              hedged ? "HEDGED (§5.2)" : "BASE (§5.1)");
  std::printf("%-10s %-10s %-9s %-12s %-12s %-14s %-12s\n", "alice",
              "bob", "swapped", "alice coins", "bob coins", "alice lockup",
              "bob lockup");
  for (int a = -1; a < actions; ++a) {
    for (int b = -1; b < actions; ++b) {
      const auto r =
          hedged ? run_hedged_two_party(config(), plan_of(a), plan_of(b))
                 : run_base_two_party(config(), plan_of(a), plan_of(b));
      std::printf("%-10s %-10s %-9s %+-12lld %+-12lld %-14lld %-12lld\n",
                  plan_name(a), plan_name(b), r.swapped ? "yes" : "no",
                  static_cast<long long>(r.alice.coin_delta),
                  static_cast<long long>(r.bob.coin_delta),
                  static_cast<long long>(r.alice_lockup),
                  static_cast<long long>(r.bob_lockup));
    }
  }
}

void BM_HedgedSwapConforming(benchmark::State& state) {
  core::TwoPartyConfig cfg = config();
  cfg.delta = state.range(0);
  for (auto _ : state) {
    auto r = run_hedged_two_party(cfg, sim::DeviationPlan::conforming(),
                                  sim::DeviationPlan::conforming());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HedgedSwapConforming)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_BaseSwapConforming(benchmark::State& state) {
  core::TwoPartyConfig cfg = config();
  cfg.delta = state.range(0);
  for (auto _ : state) {
    auto r = run_base_two_party(cfg, sim::DeviationPlan::conforming(),
                                sim::DeviationPlan::conforming());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BaseSwapConforming)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_HedgedSwapSoreLoser(benchmark::State& state) {
  core::TwoPartyConfig cfg = config();
  for (auto _ : state) {
    auto r = run_hedged_two_party(cfg, sim::DeviationPlan::conforming(),
                                  sim::DeviationPlan::halt_after(1));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HedgedSwapSoreLoser);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E1: two-party swap outcome matrices (Figure 1) ===\n");
  print_matrix(/*hedged=*/false);
  print_matrix(/*hedged=*/true);
  std::printf(
      "\nShape checks: base locks compliant parties with 0 compensation;\n"
      "hedged pays p_b (Bob reneges) / net p_a (Alice reneges); conform\n"
      "diagonal swaps with all premiums refunded.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
