// E7 — substrate microbenchmarks (no direct paper counterpart; these
// establish that the simulation substrate is fast enough for the
// strategy-space exploration in E6 to count as "reasonable time").

#include <benchmark/benchmark.h>

#include "chain/blockchain.hpp"
#include "crypto/hashkey.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/secret.hpp"
#include "crypto/sha256.hpp"
#include "graph/digraph.hpp"

using namespace xchain;

namespace {

void BM_Sha256(benchmark::State& state) {
  const crypto::Bytes data(static_cast<std::size_t>(state.range(0)), 0xab);
  for (auto _ : state) {
    auto d = crypto::sha256(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(1024)->Arg(65536);

void BM_SchnorrSign(benchmark::State& state) {
  const auto kp = crypto::keygen("bench");
  const auto msg = crypto::to_bytes("cross-chain message");
  for (auto _ : state) {
    auto sig = crypto::sign(kp.priv, kp.pub, msg);
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  const auto kp = crypto::keygen("bench");
  const auto msg = crypto::to_bytes("cross-chain message");
  const auto sig = crypto::sign(kp.priv, kp.pub, msg);
  for (auto _ : state) {
    auto ok = crypto::verify(kp.pub, msg, sig);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_HashkeyChainVerify(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  std::vector<crypto::KeyPair> keys;
  for (int i = 0; i < len; ++i) {
    keys.push_back(crypto::keygen("party-" + std::to_string(i)));
  }
  const auto secret = crypto::Secret::from_label("s");
  crypto::Hashkey key = crypto::make_leader_hashkey(
      secret.value(), static_cast<PartyId>(len - 1), keys.back());
  for (int i = len - 2; i >= 0; --i) {
    key = crypto::extend_hashkey(key, static_cast<PartyId>(i),
                                 keys[static_cast<std::size_t>(i)]);
  }
  const auto lookup = [&keys](PartyId p) { return keys[p].pub; };
  for (auto _ : state) {
    auto ok = crypto::verify_hashkey(key, secret.hashlock(), lookup);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_HashkeyChainVerify)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_BlockProduction(benchmark::State& state) {
  const int txs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    chain::MultiChain chains;
    auto& bc = chains.add_chain("bench");
    bc.ledger_for_setup().mint(chain::Address::party(0), bc.native(),
                               1'000'000);
    for (int i = 0; i < txs; ++i) {
      bc.submit({0, "t", [](chain::TxContext& ctx) {
                   ctx.ledger().transfer(chain::Address::party(0),
                                         chain::Address::party(1),
                                         ctx.native(), 1);
                 }});
    }
    state.ResumeTiming();
    chains.produce_all(0);
    benchmark::DoNotOptimize(bc.height());
  }
  state.SetItemsProcessed(state.iterations() * txs);
}
BENCHMARK(BM_BlockProduction)->Arg(10)->Arg(100)->Arg(1000);

void BM_MinimumFvs(benchmark::State& state) {
  const auto g = graph::Digraph::complete(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto fvs = g.minimum_feedback_vertex_set();
    benchmark::DoNotOptimize(fvs);
  }
}
BENCHMARK(BM_MinimumFvs)->DenseRange(3, 7);

void BM_SimplePaths(benchmark::State& state) {
  const auto g = graph::Digraph::complete(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto paths = g.simple_paths(0, 1);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_SimplePaths)->DenseRange(3, 8);

}  // namespace

BENCHMARK_MAIN();
