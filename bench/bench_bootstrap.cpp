// E2 — Figure 2 / §6: premium bootstrapping.
//
// Regenerates the paper's quantitative claims: initial lock-up risk vs
// swap value and round count (including "1% premiums + $4 risk hedge a
// $1M swap in 3 rounds"), constancy of the premium lock-up duration in
// the round count, and times full bootstrapped executions.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/bootstrap.hpp"

using namespace xchain;

namespace {

void print_rounds_table() {
  std::printf("\nRounds needed for initial risk <= $4 at P = 100:\n");
  std::printf("%-16s %-8s %-24s\n", "swap value", "rounds", "initial risk");
  for (Amount v : {Amount{10'000}, Amount{100'000}, Amount{1'000'000},
                   Amount{10'000'000}, Amount{100'000'000}}) {
    const int r = core::bootstrap_rounds_needed(v, v, 100.0, 4);
    const auto s = core::bootstrap_schedule(v, v, 100.0, r);
    std::printf("$%-15lld %-8d $%lld / $%lld\n", static_cast<long long>(v),
                r, static_cast<long long>(s.initial_risk_apricot()),
                static_cast<long long>(s.initial_risk_banana()));
  }
}

void print_lockup_table() {
  std::printf("\nPremium lock-up duration vs rounds ($1M swap, P = 100, "
              "Delta = 2):\n");
  std::printf("%-8s %-22s %-14s\n", "rounds", "max premium lockup",
              "swap completed");
  for (int r = 1; r <= 5; ++r) {
    core::BootstrapConfig cfg;
    cfg.rounds = r;
    cfg.delta = 2;
    const auto res = core::run_bootstrap_swap(
        cfg, sim::DeviationPlan::conforming(),
        sim::DeviationPlan::conforming());
    std::printf("%-8d %-22lld %-14s\n", r,
                static_cast<long long>(res.max_premium_lockup),
                res.swapped ? "yes" : "no");
  }
}

void BM_BootstrapSwap(benchmark::State& state) {
  core::BootstrapConfig cfg;
  cfg.rounds = static_cast<int>(state.range(0));
  cfg.delta = 2;
  for (auto _ : state) {
    auto r = core::run_bootstrap_swap(cfg, sim::DeviationPlan::conforming(),
                                      sim::DeviationPlan::conforming());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BootstrapSwap)->DenseRange(1, 6);

void BM_BootstrapScheduleMath(benchmark::State& state) {
  for (auto _ : state) {
    auto r = core::bootstrap_rounds_needed(1'000'000'000, 1'000'000'000,
                                           100.0, 4);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BootstrapScheduleMath);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E2: premium bootstrapping (Figure 2, §6) ===\n");
  print_rounds_table();
  std::printf("\nPaper claim: 3 rounds hedge a $1,000,000 swap at 1%% "
              "premiums with $4 risk -> measured: %d rounds\n",
              core::bootstrap_rounds_needed(1'000'000, 1'000'000, 100.0, 4));
  print_lockup_table();
  std::printf("\nShape checks: rounds grow logarithmically in swap value;\n"
              "lock-up duration is flat in the round count (the paper's\n"
              "\"one atomic swap execution plus Delta\").\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
