// E5 — §9: hedged auctions.
//
// Regenerates the auction outcome analysis (honest run, every auctioneer
// cheat, the neutralized low-bidder sore loser) and the n * p endowment
// scaling, then times executions by bidder count.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/auction.hpp"

using namespace xchain;

namespace {

core::AuctionConfig config() {
  core::AuctionConfig cfg;
  cfg.bids = {100, 80};
  cfg.premium_unit = 2;
  cfg.delta = 1;
  return cfg;
}

void print_outcomes() {
  struct Case {
    const char* name;
    core::AuctioneerStrategy alice;
    core::BidderStrategy loser;
  };
  std::printf("\nOutcomes (Bob bids 100, Carol 80, p = 2):\n");
  std::printf("%-36s %-10s %-9s %-22s\n", "scenario", "completed",
              "tickets", "coin nets (A, B, C)");
  for (const Case& c : {
           Case{"honest", core::AuctioneerStrategy::kHonest,
                core::BidderStrategy::kConform},
           Case{"auctioneer abandons",
                core::AuctioneerStrategy::kAbandon,
                core::BidderStrategy::kConform},
           Case{"declares the loser",
                core::AuctioneerStrategy::kDeclareLoser,
                core::BidderStrategy::kConform},
           Case{"declares on coin chain only",
                core::AuctioneerStrategy::kCoinOnly,
                core::BidderStrategy::kConform},
           Case{"split declaration",
                core::AuctioneerStrategy::kSplit,
                core::BidderStrategy::kConform},
           Case{"honest + sore-loser Carol",
                core::AuctioneerStrategy::kHonest,
                core::BidderStrategy::kNoForward},
       }) {
    const auto r = run_auction(config(), c.alice,
                               {core::BidderStrategy::kConform, c.loser});
    std::printf("%-36s %-10s %-9u %+lld, %+lld, %+lld\n", c.name,
                r.completed ? "yes" : "no", r.tickets_to,
                static_cast<long long>(r.auctioneer.coin_delta),
                static_cast<long long>(r.bidders[0].coin_delta),
                static_cast<long long>(r.bidders[1].coin_delta));
  }
}

void print_endowment_scaling() {
  std::printf("\nAuctioneer endowment and abandonment compensation vs n "
              "(p = 2):\n");
  std::printf("%-6s %-12s %-26s\n", "n", "endowment", "per-bidder comp. on "
                                          "abandon");
  for (int n : {2, 3, 5, 8, 12}) {
    core::AuctionConfig cfg = config();
    cfg.bids.clear();
    for (int i = 0; i < n; ++i) cfg.bids.push_back(50 + i);
    const auto r = run_auction(
        cfg, core::AuctioneerStrategy::kAbandon,
        std::vector<core::BidderStrategy>(
            static_cast<std::size_t>(n), core::BidderStrategy::kConform));
    std::printf("%-6d %-12lld %-26lld\n", n,
                static_cast<long long>(-r.auctioneer.coin_delta),
                static_cast<long long>(r.bidders[0].coin_delta));
  }
}

void BM_HonestAuction(benchmark::State& state) {
  core::AuctionConfig cfg = config();
  cfg.bids.clear();
  for (int i = 0; i < state.range(0); ++i) cfg.bids.push_back(50 + i);
  const std::vector<core::BidderStrategy> bidders(
      static_cast<std::size_t>(state.range(0)),
      core::BidderStrategy::kConform);
  for (auto _ : state) {
    auto r = run_auction(cfg, core::AuctioneerStrategy::kHonest, bidders);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HonestAuction)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void print_sealed_comparison() {
  std::printf("\nSealed-bid (commit-reveal, footnote 8) vs open auction:\n");
  std::printf("%-12s %-10s %-9s %-22s\n", "variant", "completed", "tickets",
              "coin nets (A, B, C)");
  const std::vector<core::BidderStrategy> conform2(
      2, core::BidderStrategy::kConform);
  for (bool sealed : {false, true}) {
    const auto r =
        sealed ? run_sealed_auction(config(),
                                    core::AuctioneerStrategy::kHonest,
                                    conform2)
               : run_auction(config(), core::AuctioneerStrategy::kHonest,
                             conform2);
    std::printf("%-12s %-10s %-9u %+lld, %+lld, %+lld\n",
                sealed ? "sealed" : "open", r.completed ? "yes" : "no",
                r.tickets_to,
                static_cast<long long>(r.auctioneer.coin_delta),
                static_cast<long long>(r.bidders[0].coin_delta),
                static_cast<long long>(r.bidders[1].coin_delta));
  }
}

void BM_SealedAuction(benchmark::State& state) {
  const auto cfg = config();
  const std::vector<core::BidderStrategy> conform2(
      2, core::BidderStrategy::kConform);
  for (auto _ : state) {
    auto r = run_sealed_auction(cfg, core::AuctioneerStrategy::kHonest,
                                conform2);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SealedAuction);

void BM_CheatingAuction(benchmark::State& state) {
  const auto cfg = config();
  for (auto _ : state) {
    auto r = run_auction(cfg, core::AuctioneerStrategy::kSplit,
                         {core::BidderStrategy::kConform,
                          core::BidderStrategy::kConform});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CheatingAuction);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E5: hedged auctions (§9) ===\n");
  print_outcomes();
  print_endowment_scaling();
  print_sealed_comparison();
  std::printf(
      "\nShape checks: the challenge phase makes one-sided declarations\n"
      "complete honestly (Lemma 7); no compliant bid is ever stolen\n"
      "(Lemma 8); endowment scales as n * p and funds per-bidder\n"
      "compensation on abandonment.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
