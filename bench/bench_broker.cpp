// E4 — Figure 4 / §8: brokered commerce.
//
// Regenerates the broker premium structure (who pays whom under every
// omission the paper discusses) and times full deal executions.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/broker.hpp"
#include "core/premiums.hpp"

using namespace xchain;

namespace {

core::BrokerConfig config() {
  core::BrokerConfig cfg;
  cfg.delta = 1;
  return cfg;
}

void print_premium_table() {
  graph::Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(1, 0);
  g.add_arc(2, 0);
  const auto phases =
      core::broker_premiums(g, {{1, 0}, {2, 0}}, {{{0, 2}, {0, 1}}}, 1);
  std::printf("\nPremium structure (§8.2, p = 1):\n");
  std::printf("  E(B,A) = %lld   E(C,A) = %lld   (escrow premiums)\n",
              static_cast<long long>(phases[0].at({1, 0})),
              static_cast<long long>(phases[0].at({2, 0})));
  std::printf("  T(A,B) = %lld    T(A,C) = %lld    (trading premiums)\n",
              static_cast<long long>(phases[1].at({0, 1})),
              static_cast<long long>(phases[1].at({0, 2})));
}

void print_outcomes() {
  struct Case {
    const char* name;
    int party;  // -1 none
    int halt;
  };
  std::printf("\nDeal outcomes (10 tickets, 101 -> 100 coins, p = 1):\n");
  std::printf("%-34s %-10s %-24s\n", "scenario", "completed",
              "premium nets (A, B, C)");
  for (const Case& c :
       {Case{"all conform", -1, 0}, Case{"Bob omits B1", 1, 2},
        Case{"Carol omits C1", 2, 2}, Case{"Alice omits trades A1/A2", 0, 2},
        Case{"Alice omits A3 (hashkey)", 0, 3},
        Case{"Bob omits B2 (hashkey)", 1, 3}}) {
    sim::DeviationPlan plans[3] = {sim::DeviationPlan::conforming(),
                                   sim::DeviationPlan::conforming(),
                                   sim::DeviationPlan::conforming()};
    if (c.party >= 0) {
      plans[c.party] = sim::DeviationPlan::halt_after(c.halt);
    }
    const auto r = run_broker_deal(config(), plans[0], plans[1], plans[2]);
    std::printf("%-34s %-10s %+lld, %+lld, %+lld\n", c.name,
                r.completed ? "yes" : "no",
                static_cast<long long>(r.alice.coin_delta),
                static_cast<long long>(r.bob.coin_delta),
                static_cast<long long>(r.carol.coin_delta));
  }
}

void BM_BrokerConforming(benchmark::State& state) {
  const auto cfg = config();
  for (auto _ : state) {
    auto r = run_broker_deal(cfg, sim::DeviationPlan::conforming(),
                             sim::DeviationPlan::conforming(),
                             sim::DeviationPlan::conforming());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BrokerConforming);

void BM_BrokerWithDefault(benchmark::State& state) {
  const auto cfg = config();
  for (auto _ : state) {
    auto r = run_broker_deal(cfg, sim::DeviationPlan::conforming(),
                             sim::DeviationPlan::halt_after(2),
                             sim::DeviationPlan::conforming());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BrokerWithDefault);

void BM_BrokerPremiumFormula(benchmark::State& state) {
  graph::Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(1, 0);
  g.add_arc(2, 0);
  for (auto _ : state) {
    auto r = core::broker_premiums(g, {{1, 0}, {2, 0}},
                                   {{{0, 2}, {0, 1}}}, 1);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BrokerPremiumFormula);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E4: brokered commerce (Figure 4, §8) ===\n");
  print_premium_table();
  print_outcomes();
  std::printf(
      "\nShape checks: conform completes with Alice earning the spread and\n"
      "zero premium flow; every omission makes the deviator pay while both\n"
      "compliant parties end weakly positive (locked principals earn > 0).\n"
      "\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
