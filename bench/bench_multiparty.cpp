// E3 — Figure 3 / §7: multi-party swaps.
//
// Regenerates the paper's premium-growth claims: leader premiums are
// linear in n on unique-path digraphs (rings), exponential on complete
// digraphs, and bootstrapping brings the latter back to a linear number
// of unprotected coins. Then times full hedged executions.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "core/multi_party.hpp"
#include "core/premiums.hpp"

using namespace xchain;

namespace {

void print_premium_growth() {
  std::printf("\nLeader premium R(L) by digraph family (p = 1):\n");
  std::printf("%-6s %-16s %-20s %-28s\n", "n", "ring (linear)",
              "complete (exp.)", "complete, bootstrapped risk");
  for (std::size_t n = 2; n <= 8; ++n) {
    const Amount ring =
        core::leader_redemption_premium(graph::Digraph::cycle(n), 0, 1);
    const Amount complete =
        core::leader_redemption_premium(graph::Digraph::complete(n), 0, 1);
    // §7 end: O(log n) bootstrap rounds shrink the premium to linear.
    const int rounds = core::bootstrap_rounds_needed(
        complete, complete, 2.0, static_cast<Amount>(n));
    std::printf("%-6zu %-16lld %-20lld <= %lld after %d rounds (P=2)\n", n,
                static_cast<long long>(ring),
                static_cast<long long>(complete), static_cast<long long>(n),
                rounds);
  }
}

void print_outcomes() {
  std::printf("\nHedged run outcomes on Figure 3a (p = 1):\n");
  std::printf("%-26s %-10s %-26s\n", "scenario", "redeemed",
              "premium nets (A, B, C)");
  struct Case {
    const char* name;
    int deviator;
    int halt;
  };
  for (const Case& c :
       {Case{"all conform", -1, 0}, Case{"C skips escrow", 2, 2},
        Case{"A withholds hashkey", 0, 3}, Case{"B withholds relay", 1, 3}}) {
    core::MultiPartyConfig cfg;
    cfg.g = graph::Digraph::figure3a();
    cfg.delta = 1;
    std::vector<sim::DeviationPlan> plans(3,
                                          sim::DeviationPlan::conforming());
    if (c.deviator >= 0) {
      plans[static_cast<std::size_t>(c.deviator)] =
          sim::DeviationPlan::halt_after(c.halt);
    }
    const auto r = run_multi_party_swap(cfg, plans);
    std::printf("%-26s %-10s %+lld, %+lld, %+lld\n", c.name,
                r.all_redeemed ? "yes" : "no",
                static_cast<long long>(r.payoffs[0].coin_delta),
                static_cast<long long>(r.payoffs[1].coin_delta),
                static_cast<long long>(r.payoffs[2].coin_delta));
  }
}

void BM_RingSwap(benchmark::State& state) {
  core::MultiPartyConfig cfg;
  cfg.g = graph::Digraph::cycle(static_cast<std::size_t>(state.range(0)));
  cfg.delta = 1;
  const std::vector<sim::DeviationPlan> plans(
      cfg.g.size(), sim::DeviationPlan::conforming());
  for (auto _ : state) {
    auto r = run_multi_party_swap(cfg, plans);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RingSwap)->DenseRange(2, 8);

void BM_CompleteSwap(benchmark::State& state) {
  core::MultiPartyConfig cfg;
  cfg.g = graph::Digraph::complete(static_cast<std::size_t>(state.range(0)));
  cfg.delta = 1;
  const std::vector<sim::DeviationPlan> plans(
      cfg.g.size(), sim::DeviationPlan::conforming());
  for (auto _ : state) {
    auto r = run_multi_party_swap(cfg, plans);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CompleteSwap)->DenseRange(2, 5);

void BM_EquationOne(benchmark::State& state) {
  const auto g = graph::Digraph::complete(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto r = core::leader_redemption_premium(g, 0, 1);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EquationOne)->DenseRange(2, 7);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E3: multi-party swap premiums and outcomes (Figure 3, "
              "§7) ===\n");
  print_premium_growth();
  print_outcomes();
  std::printf("\nShape checks: ring premiums = n exactly; complete-digraph\n"
              "premiums at least double per added vertex; every compliant\n"
              "party nets >= p per locked asset (Lemma 6).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
