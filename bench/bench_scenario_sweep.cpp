// Scenario-sweep throughput: how many adversarial deviation schedules per
// second the ScenarioRunner can enumerate, execute, and audit, per protocol
// family and per worker-thread count. This is the capacity metric for
// future fuzzing / scaling PRs — exhaustive coverage is only as deep as the
// sweeps are fast.
//
// Every protocol engine with an adapter is measured: two-party swap,
// multi-party ARC (Fig 3a + cycle4), open + sealed ticket auctions, the §8
// broker deal, the §6 bootstrap ladder, and the CRR-priced ladder. The
// benchmark axis `threads` sweeps the sharded parallel runner (1/2/4/8 by
// default; `--threads=N` pins the parallel measurement to N workers).
//
// Emits BENCH_scenario_sweep.json (schedules/second per protocol, plus the
// parallel scaling curve and the 8-thread speedup) alongside the usual
// Google Benchmark output; --json=PATH redirects the artifact anywhere
// (default: BENCH_scenario_sweep.json in the working directory). The JSON
// carries a git_commit / build_type / compiler stamp so per-commit CI
// artifacts are comparable across runs (scripts/bench_compare.py).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sim/registry.hpp"
#include "sim/scenario.hpp"

// Build stamps injected by CMake (configure-time git HEAD; CI configures
// fresh per commit, so the stamp is exact there).
#ifndef XCHAIN_GIT_COMMIT
#define XCHAIN_GIT_COMMIT "unknown"
#endif
#ifndef XCHAIN_BUILD_TYPE
#define XCHAIN_BUILD_TYPE "unknown"
#endif
#ifndef XCHAIN_COMPILER
#define XCHAIN_COMPILER "unknown"
#endif

using namespace xchain;

namespace {

struct NamedAdapter {
  std::string name;
  std::unique_ptr<sim::ProtocolAdapter> adapter;
};

// All reference configurations come from the protocol registry defaults —
// the same numbers every test audits (pinned byte-identical to the legacy
// structs in tests/registry_campaign_test.cpp), so the bench measures
// exactly the schedule spaces the suite verifies.
std::vector<NamedAdapter> make_adapters() {
  const sim::ProtocolRegistry& reg = sim::ProtocolRegistry::global();
  std::vector<NamedAdapter> out;
  out.push_back({"two_party", reg.make("two-party")});
  out.push_back({"multi_party_fig3a", reg.make("multi-party-fig3a")});
  sim::ParamSet ring = reg.defaults("multi-party-ring");
  ring.set("n", "4");
  out.push_back({"multi_party_cycle4", reg.make("multi-party-ring", ring)});
  out.push_back({"auction_open", reg.make("auction-open")});
  out.push_back({"auction_sealed", reg.make("auction-sealed")});
  out.push_back({"broker", reg.make("broker")});
  out.push_back({"bootstrap_r2", reg.make("bootstrap")});
  out.push_back({"crr_ladder", reg.make("crr-ladder")});
  return out;
}

void BM_Sweep(benchmark::State& state, const sim::ProtocolAdapter& adapter) {
  const auto threads = static_cast<unsigned>(state.range(0));
  sim::ScenarioRunner runner(adapter);
  std::size_t schedules = 0;
  unsigned workers = 1;
  for (auto _ : state) {
    auto report = runner.sweep({/*max_deviators=*/-1, threads, {}});
    benchmark::DoNotOptimize(report);
    schedules += report.schedules_run;
    workers = report.workers;
    if (!report.ok()) {
      state.SkipWithError(("hedging-bound violation: " + report.str()).c_str());
      return;
    }
  }
  state.counters["schedules_per_second"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
  // Small spaces clamp below the requested thread count; surface the real
  // worker count so a flat scaling row is read as "clamped", not "broken".
  state.counters["workers"] = static_cast<double>(workers);
}

/// Total schedules/second over every adapter at one thread count, measured
/// with a plain chrono loop (stable methodology independent of benchmark
/// flags; reps chosen so each measurement runs long enough to smooth over
/// scheduler noise).
double measure_total_rate(const std::vector<NamedAdapter>& adapters,
                          unsigned threads, int reps) {
  std::size_t schedules = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    for (const auto& [name, adapter] : adapters) {
      const auto report =
          sim::ScenarioRunner(*adapter).sweep({/*max_deviators=*/-1, threads, {}});
      schedules += report.schedules_run;
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(schedules) / secs;
}

// Deliberately measures with its own chrono loop instead of reusing the
// BM_Sweep counters: the JSON must be emitted with stable methodology even
// when benchmarks are filtered out or flags change their iteration counts.
void write_json(const std::vector<NamedAdapter>& adapters,
                const std::vector<unsigned>& thread_axis,
                const std::string& json_path) {
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"scenario_sweep\",\n");
  std::fprintf(f, "  \"unit\": \"schedules_per_second\",\n");
  // Provenance stamp: which commit/config produced this artifact, so the
  // CI regression gate (scripts/bench_compare.py) can refuse to compare
  // apples to oranges.
  std::fprintf(f, "  \"git_commit\": \"%s\",\n", XCHAIN_GIT_COMMIT);
  std::fprintf(f, "  \"build_type\": \"%s\",\n", XCHAIN_BUILD_TYPE);
  std::fprintf(f, "  \"compiler\": \"%s\",\n", XCHAIN_COMPILER);
  // Recorded so per-commit artifact readers can interpret the scaling
  // curve: an 8-thread speedup is only meaningful with >= 8 hardware
  // threads behind it.
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"protocols\": [\n");
  std::size_t total_schedules = 0;
  double total_seconds = 0;
  for (std::size_t i = 0; i < adapters.size(); ++i) {
    sim::ScenarioRunner runner(*adapters[i].adapter);
    // One warm-up, then time enough repetitions for a stable figure.
    auto warm = runner.sweep();
    const int reps = 5;
    const auto start = std::chrono::steady_clock::now();
    std::size_t schedules = 0;
    std::size_t violations = 0;
    for (int r = 0; r < reps; ++r) {
      const auto report = runner.sweep();
      schedules += report.schedules_run;
      violations += report.violations.size();
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    total_schedules += schedules;
    total_seconds += secs;
    // Tree-executor statistics are per-sweep deterministic: report the
    // warm-up run's (brute sweeps show nodes_executed == schedules and
    // zero dedup hits).
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"schedules\": %zu, "
        "\"schedules_per_second\": %.1f, \"violations\": %zu, "
        "\"nodes_executed\": %zu, \"dedup_hits\": %zu}%s\n",
        adapters[i].name.c_str(), warm.schedules_run,
        static_cast<double>(schedules) / secs, violations,
        warm.nodes_executed, warm.dedup_hits,
        i + 1 < adapters.size() ? "," : "");
  }
  const double serial_rate =
      static_cast<double>(total_schedules) / total_seconds;

  // The parallel scaling curve: total rate across every protocol at each
  // thread count, plus the headline speedup at the top of the axis. The
  // speedup divides two rates from this same curve (axis entry 0 is always
  // threads = 1), never the differently-measured per-protocol figures.
  std::fprintf(f, "  ],\n  \"parallel\": [\n");
  double base_rate = serial_rate;
  double top_rate = serial_rate;
  for (std::size_t i = 0; i < thread_axis.size(); ++i) {
    const double rate = measure_total_rate(adapters, thread_axis[i], 3);
    if (i == 0) base_rate = rate;
    if (i + 1 == thread_axis.size()) top_rate = rate;
    std::fprintf(f,
                 "    {\"threads\": %u, \"schedules_per_second\": %.1f}%s\n",
                 thread_axis[i], rate,
                 i + 1 < thread_axis.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedup_at_max_threads\": %.2f,\n",
               top_rate / base_rate);

  // The enlarged timing-griefing space (--strategies=late-delays in the
  // CLI): serial schedules/s over every adapter's capped late-delay space.
  // A separate key — the regression gate reads total_schedules_per_second
  // (halt-only) and must stay comparable against older baselines.
  {
    sim::SweepOptions opts;
    opts.strategies.kind = sim::StrategySpace::Kind::kLateDelays;
    std::size_t schedules = 0;
    std::size_t nodes_executed = 0;
    std::size_t covered = 0;
    std::size_t dedup_hits = 0;
    const auto start = std::chrono::steady_clock::now();
    for (const auto& [name, adapter] : adapters) {
      const auto report = sim::ScenarioRunner(*adapter).sweep(opts);
      schedules += report.schedules_run;
      nodes_executed += report.nodes_executed;
      covered += report.schedules_covered;
      dedup_hits += report.dedup_hits;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::fprintf(f,
                 "  \"late_delays\": {\"schedules\": %zu, "
                 "\"schedules_per_second\": %.1f, \"nodes_executed\": %zu, "
                 "\"schedules_covered\": %zu, \"dedup_hits\": %zu},\n",
                 schedules, static_cast<double>(schedules) / secs,
                 nodes_executed, covered, dedup_hits);
    std::printf(
        "late-delay strategy space: %zu schedules at %.1f/s serial "
        "(%zu executed, %zu dedup hits)\n",
        schedules, static_cast<double>(schedules) / secs, nodes_executed,
        dedup_hits);
  }

  std::fprintf(f, "  \"total_schedules_per_second\": %.1f\n}\n", serial_rate);
  std::fclose(f);
  std::printf("wrote %s (%.1f schedules/s serial, %.2fx at %u threads)\n",
              json_path.c_str(), serial_rate, top_rate / base_rate,
              thread_axis.back());
}

}  // namespace

int main(int argc, char** argv) {
  // --threads=N pins the parallel JSON measurement (and the summary sweep)
  // to N workers (0 = one per hardware thread, matching SweepOptions);
  // the default axis is the 1/2/4/8 scaling curve. --json=PATH redirects
  // the JSON artifact (so CI jobs are not cwd-dependent). Both flags are
  // consumed here so Google Benchmark never sees them.
  std::vector<unsigned> thread_axis = {1, 2, 4, 8};
  std::string json_path = "BENCH_scenario_sweep.json";
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
      if (json_path.empty()) {
        std::fprintf(stderr, "invalid --json= (want --json=PATH)\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      char* end = nullptr;
      const long n = std::strtol(argv[i] + 10, &end, 10);
      if (end == argv[i] + 10 || *end != '\0' || n < 0) {
        std::fprintf(stderr, "invalid %s (want --threads=N, N >= 0)\n",
                     argv[i]);
        return 1;
      }
      const unsigned top =
          n == 0 ? std::max(1u, std::thread::hardware_concurrency())
                 : static_cast<unsigned>(n);
      thread_axis = top == 1 ? std::vector<unsigned>{1}  // no duplicate row
                             : std::vector<unsigned>{1, top};
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  auto adapters = make_adapters();

  std::printf("=== scenario sweep: exhaustive deviation-schedule audit ===\n");
  for (const auto& [name, adapter] : adapters) {
    const auto report = sim::ScenarioRunner(*adapter)
                            .sweep({/*max_deviators=*/-1, thread_axis.back(), {}});
    std::printf("%-20s %4zu schedules, %4zu conforming audits, %zu "
                "violations\n",
                name.c_str(), report.schedules_run,
                report.conforming_audited, report.violations.size());
  }

  for (const auto& [name, adapter] : adapters) {
    auto* bench = benchmark::RegisterBenchmark(
        ("BM_Sweep/" + name).c_str(),
        [&adapter = *adapter](benchmark::State& st) { BM_Sweep(st, adapter); });
    bench->ArgName("threads");
    // Wall clock, not main-thread CPU time: the sweep fans out to workers,
    // so the schedules/s rate is only meaningful in real time.
    bench->UseRealTime();
    for (const unsigned t : thread_axis) {
      bench->Arg(static_cast<long>(t));
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  write_json(adapters, thread_axis, json_path);
  return 0;
}
