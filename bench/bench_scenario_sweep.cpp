// Scenario-sweep throughput: how many adversarial deviation schedules per
// second the ScenarioRunner can enumerate, execute, and audit, per protocol
// family. This is the capacity metric for future fuzzing / scaling PRs —
// exhaustive coverage is only as deep as the sweeps are fast.
//
// Emits BENCH_scenario_sweep.json (schedules/second per protocol) into the
// working directory alongside the usual Google Benchmark output.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "sim/reference_configs.hpp"
#include "sim/scenario.hpp"

using namespace xchain;

namespace {

core::TwoPartyConfig two_party_config() {
  return sim::reference_two_party_config();
}

core::MultiPartyConfig multi_party_config(graph::Digraph g) {
  return sim::reference_multi_party_config(std::move(g));
}

core::AuctionConfig auction_config() {
  return sim::reference_auction_config();
}

struct NamedAdapter {
  std::string name;
  std::unique_ptr<sim::ProtocolAdapter> adapter;
};

std::vector<NamedAdapter> make_adapters() {
  std::vector<NamedAdapter> out;
  out.push_back({"two_party", std::make_unique<sim::TwoPartySwapAdapter>(
                                  two_party_config())});
  out.push_back({"multi_party_fig3a",
                 std::make_unique<sim::MultiPartySwapAdapter>(
                     multi_party_config(graph::Digraph::figure3a()))});
  out.push_back({"multi_party_cycle4",
                 std::make_unique<sim::MultiPartySwapAdapter>(
                     multi_party_config(graph::Digraph::cycle(4)))});
  out.push_back({"auction_open", std::make_unique<sim::TicketAuctionAdapter>(
                                     auction_config(), /*sealed=*/false)});
  out.push_back({"auction_sealed",
                 std::make_unique<sim::TicketAuctionAdapter>(
                     auction_config(), /*sealed=*/true)});
  return out;
}

void BM_Sweep(benchmark::State& state, const sim::ProtocolAdapter& adapter) {
  sim::ScenarioRunner runner(adapter);
  std::size_t schedules = 0;
  for (auto _ : state) {
    auto report = runner.sweep();
    benchmark::DoNotOptimize(report);
    schedules += report.schedules_run;
    if (!report.ok()) {
      state.SkipWithError(("hedging-bound violation: " + report.str()).c_str());
      return;
    }
  }
  state.counters["schedules_per_second"] = benchmark::Counter(
      static_cast<double>(schedules), benchmark::Counter::kIsRate);
}

// Deliberately measures with its own chrono loop instead of reusing the
// BM_Sweep counters: the JSON must be emitted with stable methodology even
// when benchmarks are filtered out or flags change their iteration counts.
void write_json(const std::vector<NamedAdapter>& adapters) {
  std::FILE* f = std::fopen("BENCH_scenario_sweep.json", "w");
  if (!f) {
    std::fprintf(stderr, "cannot open BENCH_scenario_sweep.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"scenario_sweep\",\n");
  std::fprintf(f, "  \"unit\": \"schedules_per_second\",\n");
  std::fprintf(f, "  \"protocols\": [\n");
  std::size_t total_schedules = 0;
  double total_seconds = 0;
  for (std::size_t i = 0; i < adapters.size(); ++i) {
    sim::ScenarioRunner runner(*adapters[i].adapter);
    // One warm-up, then time enough repetitions for a stable figure.
    auto warm = runner.sweep();
    const int reps = 5;
    const auto start = std::chrono::steady_clock::now();
    std::size_t schedules = 0;
    std::size_t violations = 0;
    for (int r = 0; r < reps; ++r) {
      const auto report = runner.sweep();
      schedules += report.schedules_run;
      violations += report.violations.size();
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    total_schedules += schedules;
    total_seconds += secs;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"schedules\": %zu, "
        "\"schedules_per_second\": %.1f, \"violations\": %zu}%s\n",
        adapters[i].name.c_str(), warm.schedules_run,
        static_cast<double>(schedules) / secs, violations,
        i + 1 < adapters.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"total_schedules_per_second\": %.1f\n}\n",
               static_cast<double>(total_schedules) / total_seconds);
  std::fclose(f);
  std::printf("wrote BENCH_scenario_sweep.json (%.1f schedules/s overall)\n",
              static_cast<double>(total_schedules) / total_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  auto adapters = make_adapters();

  std::printf("=== scenario sweep: exhaustive deviation-schedule audit ===\n");
  for (const auto& [name, adapter] : adapters) {
    const auto report = sim::ScenarioRunner(*adapter).sweep();
    std::printf("%-20s %4zu schedules, %4zu conforming audits, %zu "
                "violations\n",
                name.c_str(), report.schedules_run,
                report.conforming_audited, report.violations.size());
  }

  for (const auto& [name, adapter] : adapters) {
    benchmark::RegisterBenchmark(("BM_Sweep/" + name).c_str(),
                                 [&adapter = *adapter](benchmark::State& st) {
                                   BM_Sweep(st, adapter);
                                 });
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  write_json(adapters);
  return 0;
}
