#pragma once

// One-schedule executor for the fuzz harness.
//
// The sweep engine's TreeExecutor (sim/scenario.cpp) is built around
// enumerated spaces: it explores a whole plan-space trie depth-first and
// memoizes by consulted decisions. A fuzzer needs the opposite shape —
// run ONE arbitrary schedule cheaply, over and over, on a reusable world
// — so this executor keeps just the bottom layer of that machinery: the
// persistent TreeFrame actors, a single slot-0 checkpoint (state at the
// start of tick 0; every run rewinds to it and replays the full horizon),
// and the ConsultLog. The log is the fuzzer's coverage signal: the
// sequence of (party, ordinal, policy, tick) coordinates a run actually
// consulted is a compiler-instrumentation-free execution fingerprint —
// two runs with the same consult path and outcomes exercised the same
// behaviour, however different their raw plan encodings look.
//
// Adapters without tree hooks (e.g. the planted self-test adapter) fall
// back to ProtocolAdapter::run() with an outcome-only signature.

#include <cstdint>
#include <vector>

#include "sim/consult.hpp"
#include "sim/payoff_audit.hpp"
#include "sim/scenario.hpp"

namespace xchain::fuzz {

/// Everything the harness learns from one schedule execution.
struct RunOutcome {
  std::vector<sim::PartyOutcome> outcomes;
  std::vector<sim::Violation> violations;
  std::size_t conforming_audited = 0;
  /// Execution signature: plan variants + consult path + outcome digest
  /// (outcome digest only on the non-tree fallback path). Two equal
  /// signatures mean the runs exercised identical behaviour.
  std::uint64_t signature = 0;

  bool violating() const { return !violations.empty(); }
};

/// Runs schedules one at a time on `adapter`'s reusable world. The
/// adapter must outlive the executor; the executor attaches a ConsultLog
/// to the frame's actors for its lifetime (detached on destruction), so
/// at most one executor may drive an adapter at a time.
class ScheduleExecutor {
 public:
  explicit ScheduleExecutor(const sim::ProtocolAdapter& adapter);
  ~ScheduleExecutor();

  ScheduleExecutor(const ScheduleExecutor&) = delete;
  ScheduleExecutor& operator=(const ScheduleExecutor&) = delete;

  /// Executes `s` from a clean tick-0 world and audits the outcomes.
  RunOutcome run(const sim::Schedule& s);

  /// Whether the adapter is driven through its tree hooks (consult-path
  /// signatures) or the run() fallback (outcome-only signatures).
  bool tree_driven() const { return frame_ != nullptr; }

 private:
  void rewind_to_start();

  const sim::ProtocolAdapter& adapter_;
  sim::TreeFrame* frame_ = nullptr;
  sim::ConsultLog log_;
};

}  // namespace xchain::fuzz
