#include "fuzz/selftest.hpp"

namespace xchain::fuzz {

namespace {

constexpr Tick kTrapDelta = 2;

/// See selftest.hpp: breaks iff party 1 drops ordinal 0 AND party 2 drops
/// ordinal 1. Outcomes are computed straight from the plans — the "bug"
/// lives in the payoff arithmetic, not in a chain engine — which keeps
/// the self-test fast enough to shrink hundreds of times per second.
class TrapAdapter final : public sim::ProtocolAdapter {
 public:
  std::string name() const override { return "fuzz-selftest-trap"; }
  std::size_t party_count() const override { return 3; }
  int action_count(PartyId) const override { return 2; }
  Tick delta() const override { return kTrapDelta; }
  std::unique_ptr<sim::ProtocolAdapter> clone() const override {
    return std::make_unique<TrapAdapter>(*this);
  }

  std::vector<sim::PartyOutcome> run(const sim::Schedule& s) const override {
    const bool trap =
        s.plans[1].policy(0).choice == sim::ActionChoice::kDrop &&
        s.plans[2].policy(1).choice == sim::ActionChoice::kDrop;
    std::vector<sim::PartyOutcome> out(3);
    static const char* kNames[] = {"victim", "accomplice-a", "accomplice-b"};
    for (std::size_t p = 0; p < 3; ++p) {
      out[p].name = kNames[p];
      out[p].conforming = s.plans[p].conforms_within(kTrapDelta);
      out[p].bound.min_coin_delta = 0;
    }
    if (trap) {
      out[0].payoff.coin_delta = -5;  // the breach: conforming, floor 0
      out[1].payoff.coin_delta = 5;   // zero-sum: conservation stays clean
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<sim::ProtocolAdapter> make_selftest_adapter() {
  return std::make_unique<TrapAdapter>();
}

std::string selftest_name() { return "fuzz-selftest-trap"; }

FuzzTarget selftest_target() {
  FuzzTarget t;
  t.name = selftest_name();
  t.schema = sim::ParamSet();
  t.factory = [](const sim::ParamSet&) { return make_selftest_adapter(); };
  return t;
}

std::string selftest_canonical_reproducer() {
  return
      "protocol fuzz-selftest-trap\n"
      "plan 1 x0\n"
      "plan 2 halt@1\n";
}

}  // namespace xchain::fuzz
