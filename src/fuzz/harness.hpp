#pragma once

// The coverage-guided fuzz loop.
//
// fuzz_target() drives one FuzzTarget: it replays the seed corpus (plus a
// generated starter set — conforming, per-party halts, boundary delays,
// every protocol-specific variant), then repeatedly picks a corpus entry,
// mutates it (fuzz/mutator.hpp), executes the mutant (fuzz/executor.hpp),
// and admits it to the corpus when its execution signature — consult-path
// fingerprint plus audit-outcome digest — is novel. Any violating run is
// minimized by the delta-debugging shrinker (fuzz/shrink.hpp) and the
// canonical reproducer recorded, deduplicated by its minimized text.
//
// Determinism: with budget_seconds == 0 the whole loop is a pure function
// of (target, seed, budget_runs, seed corpus) — the PRNG is seeded with
// seed ^ fnv1a(target name), wall-clock never feeds back into decisions,
// and the report carries no timing fields — so two same-seed runs emit
// byte-identical FUZZ_report.json bodies (the regression test pins this).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/input.hpp"
#include "fuzz/target.hpp"
#include "sim/campaign.hpp"

namespace xchain::fuzz {

/// Budgets and seeds for one fuzz run (shared across targets).
struct FuzzOptions {
  std::uint64_t seed = 1;
  /// Total executions per target, seed replays included.
  std::size_t budget_runs = 2000;
  /// Wall-clock bound per target; 0 = unlimited (the deterministic mode).
  double budget_seconds = 0;
  /// Corpus capacity; novel entries beyond it evict a random slot.
  std::size_t max_corpus = 256;
  /// Cap on shrinker invocations per target (each costs many probe runs).
  std::size_t max_shrinks = 16;
  /// Cap on recorded (deduplicated) reproducers per target.
  std::size_t max_reproducers = 8;
  /// Replay the seeds only; no mutation.
  bool replay_only = false;
  /// Seed corpus entries for this target (already parsed).
  std::vector<FuzzInput> seeds;
};

/// One minimized violation reproducer.
struct Reproducer {
  std::string input;      ///< canonical minimized text (FuzzInput::str())
  std::string violation;  ///< surviving Violation::str()
  std::size_t found_at_run = 0;
  std::size_t shrink_steps = 0;
  std::size_t shrink_probes = 0;
};

/// One target's fuzz outcome.
struct TargetFuzzResult {
  std::string protocol;
  std::size_t runs = 0;
  std::size_t corpus_entries = 0;
  std::size_t unique_signatures = 0;
  std::size_t violating_runs = 0;
  /// Inputs rejected before execution (schema-invalid mutants/seeds).
  std::size_t skipped_inputs = 0;
  std::vector<Reproducer> reproducers;
  /// The evolved corpus (canonical texts) — what --corpus-out persists so
  /// the nightly soak resumes from the previous run's coverage frontier.
  std::vector<std::string> corpus;

  bool ok() const { return violating_runs == 0; }
  /// "<protocol>: N runs, ..." one-line summary.
  std::string line() const;
};

/// Fuzzes one target under `opts`.
TargetFuzzResult fuzz_target(const FuzzTarget& target,
                             const FuzzOptions& opts);

/// Aggregate over every fuzzed target, in run order.
struct FuzzReport {
  std::uint64_t seed = 0;
  std::size_t budget_runs = 0;
  bool replay_only = false;
  std::vector<TargetFuzzResult> targets;

  std::size_t total_runs() const;
  std::size_t total_violating_runs() const;
  std::size_t total_reproducers() const;
  bool ok() const { return total_violating_runs() == 0; }
  /// One line per target plus a totals line; reproducers detailed under
  /// their target's line.
  std::string str() const;
};

/// FUZZ_report.json: the campaign-artifact stamp fields plus per-target
/// rows and full reproducer texts. Deliberately carries NO timing fields,
/// so deterministic runs serialize byte-identically. Schema:
///   { "benchmark": "fuzz", "git_commit": ..., "build_type": ...,
///     "compiler": ..., "hardware_threads": N, "seed": N,
///     "budget_runs": N, "replay_only": true|false, "runs": N,
///     "violating_runs": N, "reproducers": N,
///     "targets": [ {"protocol": ..., "runs": N, "corpus_entries": N,
///                   "unique_signatures": N, "violating_runs": N,
///                   "skipped_inputs": N,
///                   "reproducers": [ {"input": ..., "violation": ...,
///                                     "found_at_run": N,
///                                     "shrink_steps": N,
///                                     "shrink_probes": N} ]} ] }
std::string fuzz_report_json(const FuzzReport& report,
                             const sim::CampaignStamp& stamp = {});

}  // namespace xchain::fuzz
