#include "fuzz/mutator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace xchain::fuzz {

namespace {

/// Dense working form of one party's plan.
struct Sketch {
  int variant = 0;
  std::vector<sim::ActionPolicy> acts;
};

Sketch sketch_of(const FuzzInput& in, std::size_t p, const Instance& shape) {
  const sim::DeviationPlan& plan = in.plan_of(p);
  return Sketch{plan.variant(), decode_plan(plan, shape.action_counts[p])};
}

void store(FuzzInput& in, std::size_t p, const Sketch& sk) {
  if (in.plans.size() <= p) in.plans.resize(p + 1);
  in.plans[p] = encode_plan(sk.acts, sk.variant);
}

/// The delay values mutation draws from: the strategy-space menu {Δ-1, Δ,
/// 2Δ} plus 1 tick (the smallest delay), deduplicated. Bump operators
/// then walk off-menu one tick at a time, which is how "past-Δ boundary"
/// values like Δ+1 arise.
std::vector<Tick> delay_menu(Tick delta) {
  std::vector<Tick> menu{1, delta - 1, delta, 2 * delta};
  menu.erase(std::remove_if(menu.begin(), menu.end(),
                            [](Tick d) { return d < 1; }),
             menu.end());
  std::sort(menu.begin(), menu.end());
  menu.erase(std::unique(menu.begin(), menu.end()), menu.end());
  return menu;
}

/// Parties with at least one deviation ordinal.
std::vector<std::size_t> actionable(const Instance& shape) {
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < shape.party_count(); ++p) {
    if (shape.action_counts[p] > 0) out.push_back(p);
  }
  return out;
}

}  // namespace

FuzzInput Mutator::mutate(const FuzzInput& parent, const Instance& shape,
                          const FuzzInput* crossover, Rng& rng) const {
  FuzzInput child = parent;
  // Mostly single-op children (small, attributable steps); occasionally
  // stack a second op so two-coordinate bugs stay reachable in one hop.
  const int ops = rng.chance(1, 4) ? 2 : 1;
  for (int i = 0; i < ops; ++i) mutate_once(child, shape, crossover, rng);
  return child;
}

void Mutator::mutate_once(FuzzInput& child, const Instance& shape,
                          const FuzzInput* crossover, Rng& rng) const {
  enum Op { kFlip, kBumpDelay, kHalt, kSplice, kVariant, kCross, kParam,
            kReset, kFault };
  const std::vector<std::size_t> parties = actionable(shape);

  // Weighted op menu, gated on applicability.
  std::vector<Op> menu;
  const auto add = [&](Op op, int weight) {
    for (int i = 0; i < weight; ++i) menu.push_back(op);
  };
  if (!parties.empty()) {
    add(kFlip, 3);
    add(kBumpDelay, 2);
    add(kHalt, 1);
    add(kReset, 1);
    if (parties.size() >= 2) add(kSplice, 1);
  }
  bool any_variants = false;
  for (const auto& vs : shape.variants) any_variants |= vs.size() > 1;
  if (any_variants) add(kVariant, 1);
  if (crossover != nullptr) add(kCross, 2);
  if (!target_.schema.specs().empty()) add(kParam, 2);
  add(kFault, 2);
  if (menu.empty()) return;

  const std::vector<Tick> delays = delay_menu(shape.delta);
  switch (menu[rng.below(menu.size())]) {
    case kFlip: {
      const std::size_t p = parties[rng.below(parties.size())];
      Sketch sk = sketch_of(child, p, shape);
      sim::ActionPolicy& pol = sk.acts[rng.below(sk.acts.size())];
      const std::uint64_t pick = rng.below(delays.size() + 2);
      if (pick == 0) {
        pol = {sim::ActionChoice::kPerform, 0};
      } else if (pick == 1) {
        pol = {sim::ActionChoice::kDrop, 0};
      } else {
        pol = {sim::ActionChoice::kDelay, delays[pick - 2]};
      }
      store(child, p, sk);
      break;
    }
    case kBumpDelay: {
      // Nudge an existing delay one tick up or down — this is what walks
      // values across the Δ and 2Δ boundaries one step at a time.
      std::vector<std::pair<std::size_t, std::size_t>> sites;
      for (const std::size_t p : parties) {
        const Sketch sk = sketch_of(child, p, shape);
        for (std::size_t o = 0; o < sk.acts.size(); ++o) {
          if (sk.acts[o].choice == sim::ActionChoice::kDelay) {
            sites.emplace_back(p, o);
          }
        }
      }
      if (sites.empty()) {
        // No delays to bump: plant one at the Δ-1 boundary instead.
        const std::size_t p = parties[rng.below(parties.size())];
        Sketch sk = sketch_of(child, p, shape);
        sk.acts[rng.below(sk.acts.size())] = {sim::ActionChoice::kDelay,
                                              delays.front()};
        store(child, p, sk);
        break;
      }
      const auto [p, o] = sites[rng.below(sites.size())];
      Sketch sk = sketch_of(child, p, shape);
      const Tick cap = 2 * shape.delta + 2;
      Tick d = sk.acts[o].delay + (rng.chance(1, 2) ? 1 : -1);
      d = std::clamp<Tick>(d, 1, cap);
      sk.acts[o] = {sim::ActionChoice::kDelay, d};
      store(child, p, sk);
      break;
    }
    case kHalt: {
      const std::size_t p = parties[rng.below(parties.size())];
      Sketch sk = sketch_of(child, p, shape);
      if (rng.chance(1, 3)) {
        // Clear every drop (halt suffixes included).
        for (sim::ActionPolicy& pol : sk.acts) {
          if (pol.choice == sim::ActionChoice::kDrop) {
            pol = {sim::ActionChoice::kPerform, 0};
          }
        }
      } else {
        const std::size_t k = rng.below(sk.acts.size());
        for (std::size_t o = k; o < sk.acts.size(); ++o) {
          sk.acts[o] = {sim::ActionChoice::kDrop, 0};
        }
      }
      store(child, p, sk);
      break;
    }
    case kSplice: {
      const std::size_t ia = rng.below(parties.size());
      std::size_t ib = rng.below(parties.size() - 1);
      if (ib >= ia) ++ib;
      const std::size_t a = parties[ia];
      const std::size_t b = parties[ib];
      Sketch src = sketch_of(child, a, shape);
      Sketch dst = sketch_of(child, b, shape);
      const std::size_t span = std::min(src.acts.size(), dst.acts.size());
      if (span == 0) break;
      std::size_t i = rng.below(span);
      std::size_t j = i + 1 + rng.below(span - i);
      for (std::size_t o = i; o < j; ++o) dst.acts[o] = src.acts[o];
      store(child, b, dst);
      break;
    }
    case kVariant: {
      std::vector<std::size_t> vp;
      for (std::size_t p = 0; p < shape.party_count(); ++p) {
        if (shape.variants[p].size() > 1) vp.push_back(p);
      }
      const std::size_t p = vp[rng.below(vp.size())];
      Sketch sk = sketch_of(child, p, shape);
      sk.variant = static_cast<int>(
          shape.variants[p][rng.below(shape.variants[p].size())]);
      store(child, p, sk);
      break;
    }
    case kCross: {
      // Uniform plan-level crossover with the donor input.
      const std::size_t n = shape.party_count();
      for (std::size_t p = 0; p < n; ++p) {
        if (rng.chance(1, 2)) {
          if (child.plans.size() <= p) child.plans.resize(p + 1);
          child.plans[p] = crossover->plan_of(p);
        }
      }
      break;
    }
    case kParam:
      mutate_param(child, rng);
      break;
    case kFault:
      mutate_fault(child, shape, rng);
      break;
    case kReset: {
      const std::size_t p = parties[rng.below(parties.size())];
      if (p < child.plans.size()) {
        child.plans[p] = sim::DeviationPlan::conforming();
      }
      break;
    }
  }
}

void Mutator::mutate_fault(FuzzInput& child, const Instance& shape,
                           Rng& rng) const {
  // All synthesized clauses target '*' so they apply on any chain roster;
  // windows are drawn inside the typical horizon (a few Δ) and lengths
  // straddle the tolerance boundary (outages both shorter and longer than
  // Δ), so mutation explores both recoverable and guarantee-voiding
  // substrates. Fault-only violations are reclassified by the pool, so
  // the latter cost nothing but coverage.
  using chain::FaultClause;
  const Tick delta = std::max<Tick>(shape.delta, 1);
  const std::size_t clause_count = child.faults.entries.size();
  const std::uint64_t mode =
      clause_count >= 4 ? 1 + rng.below(2) : rng.below(3);
  if (mode == 0) {
    FaultClause c;
    c.from = static_cast<Tick>(rng.below(
        static_cast<std::uint64_t>(6 * delta + 2)));
    c.to = c.from + static_cast<Tick>(rng.below(
                        static_cast<std::uint64_t>(2 * delta + 1)));
    switch (rng.below(3)) {
      case 0:
        c.kind = FaultClause::Kind::kOutage;
        break;
      case 1:
        c.kind = FaultClause::Kind::kSqueeze;
        c.cap = static_cast<int>(rng.below(3));  // 0..2 txs per block
        if (rng.chance(1, 2)) {
          c.spam = 1 + static_cast<int>(rng.below(3));
          c.spam_fee = static_cast<Amount>(rng.below(5));
        }
        if (rng.chance(1, 4)) c.mem = static_cast<int>(rng.below(4));
        break;
      default:
        c.kind = FaultClause::Kind::kDrop;
        c.permille = 1 + static_cast<int>(rng.below(1000));
        if (rng.chance(1, 2)) c.seed = 1 + rng.below(7);
        break;
    }
    child.faults.entries.emplace_back("*", c);
  } else if (mode == 1 && clause_count > 0) {
    child.faults.entries.erase(child.faults.entries.begin() +
                               static_cast<std::ptrdiff_t>(
                                   rng.below(clause_count)));
  } else {
    // Cycle the resilience policy: naive -> rebroadcast -> fee-escalate.
    using chain::ResiliencePolicy;
    switch (child.resilience.kind) {
      case ResiliencePolicy::Kind::kNaive:
        child.resilience.kind = ResiliencePolicy::Kind::kRebroadcast;
        break;
      case ResiliencePolicy::Kind::kRebroadcast:
        child.resilience.kind = ResiliencePolicy::Kind::kFeeEscalate;
        break;
      case ResiliencePolicy::Kind::kFeeEscalate:
        child.resilience = ResiliencePolicy{};
        break;
    }
  }
}

void Mutator::mutate_param(FuzzInput& child, Rng& rng) const {
  const sim::ParamSet ps = child.params(target_.schema);
  const std::vector<sim::ParamSpec>& specs = ps.specs();
  const sim::ParamSpec& spec = specs[rng.below(specs.size())];
  std::string next;
  switch (spec.type) {
    case sim::ParamType::kInt:
    case sim::ParamType::kAmount: {
      const std::int64_t cur = spec.type == sim::ParamType::kInt
                                   ? ps.get_int(spec.key)
                                   : ps.get_amount(spec.key);
      // Schema bounds, intersected with a fuzz window around the default
      // so worlds stay tractable (a 10^12-token principal is legal but
      // finds nothing a 10^6 one would not).
      std::int64_t lo = spec.has_min
                            ? static_cast<std::int64_t>(std::ceil(spec.min))
                            : 0;
      std::int64_t hi = spec.int_default * 2 + 8;
      if (spec.has_max) {
        hi = std::min(hi, static_cast<std::int64_t>(std::floor(spec.max)));
      }
      if (hi < lo) hi = lo;
      const std::int64_t spread = std::max<std::int64_t>(
          std::int64_t{1}, std::llabs(cur) / 8);
      std::int64_t step =
          1 + static_cast<std::int64_t>(
                  rng.below(static_cast<std::uint64_t>(spread)));
      std::int64_t value = rng.chance(1, 2) ? cur + step : cur - step;
      value = std::clamp(value, lo, hi);
      if (value == cur) value = cur < hi ? cur + 1 : (cur > lo ? cur - 1 : cur);
      if (value == cur) return;  // bounds pin the value; nothing to jitter
      next = std::to_string(value);
      break;
    }
    case sim::ParamType::kDouble: {
      const double cur = ps.get_double(spec.key);
      double value = cur == 0.0
                         ? static_cast<double>(rng.below(20)) / 10.0
                         : cur * (0.75 + static_cast<double>(rng.below(51)) /
                                             100.0);
      if (spec.has_min) value = std::max(value, spec.min);
      if (spec.has_max) value = std::min(value, spec.max);
      value = std::min(value, spec.double_default * 4.0 + 1.0);
      next = std::to_string(value);
      break;
    }
    case sim::ParamType::kString: {
      // The only string param in the registry is the auction bid list;
      // jitter it element-wise when it parses as a CSV of integers.
      std::vector<std::int64_t> bids;
      try {
        for (const std::string& v :
             sim::split_csv(spec.key, ps.get_string(spec.key))) {
          std::size_t pos = 0;
          bids.push_back(std::stoll(v, &pos));
          if (pos != v.size()) return;
        }
      } catch (const std::exception&) {
        return;
      }
      if (bids.empty()) return;
      const std::uint64_t mode = rng.below(5);
      if (mode == 0 && bids.size() < 4) {
        bids.push_back(std::max<std::int64_t>(
            std::int64_t{0},
            bids.back() + static_cast<std::int64_t>(rng.below(21)) - 10));
      } else if (mode == 1 && bids.size() > 1) {
        bids.pop_back();
      } else {
        std::int64_t& bid = bids[rng.below(bids.size())];
        bid += static_cast<std::int64_t>(rng.below(41)) - 20;
        bid = std::max<std::int64_t>(bid, std::int64_t{0});
      }
      for (std::size_t i = 0; i < bids.size(); ++i) {
        if (i) next += ',';
        next += std::to_string(bids[i]);
      }
      break;
    }
  }
  child.overrides.emplace_back(spec.key, next);  // last assignment wins
}

}  // namespace xchain::fuzz
