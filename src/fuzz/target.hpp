#pragma once

// Fuzz targets and the adapter-instance pool.
//
// A FuzzTarget is "something the fuzzer can run inputs against": a name,
// a parameter schema (the registry's, or empty for synthetic adapters),
// and a ParamSet -> adapter factory. Registry protocols and the planted
// self-test adapter share this one surface, so the harness, the shrinker,
// and the CLI never special-case either.
//
// Because a mutated input may override parameters, the adapter (and its
// expensive reusable world) depends on the input's override set. The
// InstancePool caches one Instance — adapter + ScheduleExecutor + the
// shape facts mutation needs (action counts, Δ, variant universes) — per
// distinct canonical override string. Plan-only mutation dominates fuzzing,
// so almost every run hits the pooled default-parameter instance.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/executor.hpp"
#include "fuzz/input.hpp"
#include "sim/param.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::fuzz {

/// One fuzzable protocol. `schema` may be empty (no tunable parameters);
/// `factory` must accept any ParamSet derived from `schema`.
struct FuzzTarget {
  std::string name;
  sim::ParamSet schema;
  std::function<std::unique_ptr<sim::ProtocolAdapter>(const sim::ParamSet&)>
      factory;

  /// The registry protocol `name` as a fuzz target. Throws
  /// sim::RegistryError on an unknown name.
  static FuzzTarget from_registry(
      const std::string& name,
      const sim::ProtocolRegistry& registry = sim::ProtocolRegistry::global());
};

/// One instantiated configuration of a target: the adapter, its executor,
/// and the shape facts the mutator and canonicalizer need.
struct Instance {
  sim::ParamSet params;
  std::string overrides_label;  ///< params.overrides_str() (+ environment)
  /// The input's chain environment, installed on the adapter before its
  /// world was built. Part of the cache key: the same overrides under
  /// different fault plans are different worlds.
  chain::ChainEnvironment env;
  std::unique_ptr<sim::ProtocolAdapter> adapter;
  std::unique_ptr<ScheduleExecutor> executor;
  Tick delta = 1;
  std::vector<int> action_counts;  ///< per party
  /// Distinct plan variants party p's plan space emits (always includes
  /// 0). Parties that deviate via protocol-specific variants — the
  /// auctioneer's seven declaration strategies — surface them here.
  std::vector<std::vector<int>> variants;

  std::size_t party_count() const { return action_counts.size(); }
};

/// Caches Instances per canonical override string. Throws sim::ParamError
/// on inputs whose overrides fail the schema.
class InstancePool {
 public:
  explicit InstancePool(const FuzzTarget& target) : target_(target) {}

  /// The instance for `in`'s override set (building it on first use).
  Instance& instance_for(const FuzzInput& in);

  /// Canonicalizes `in` against its own instance.
  FuzzInput canonical(const FuzzInput& in);

  /// Builds `in`'s schedule and executes it on its instance. When `in`
  /// injects faults and the run violates, each violation is re-checked on
  /// a faultless twin instance (same overrides, no environment): a
  /// violation that vanishes there was caused by the injected fault, not
  /// the deviation schedule, and is dropped as expected substrate damage
  /// (the within-envelope guarantees are pinned by dedicated tests, not
  /// the fuzzer).
  RunOutcome run(const FuzzInput& in);

  const FuzzTarget& target() const { return target_; }

 private:
  const FuzzTarget& target_;
  std::map<std::string, std::unique_ptr<Instance>> instances_;
};

}  // namespace xchain::fuzz
