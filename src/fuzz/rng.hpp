#pragma once

// Deterministic PRNG for the fuzz layer.
//
// The harness must replay byte-identically from a --seed across platforms
// and standard libraries, so it cannot use std::mt19937 + distribution
// objects (distributions are implementation-defined). SplitMix64 is the
// usual seeding/streaming primitive for this: tiny, fast, full-period over
// 2^64, and specified exactly by its reference constants.

#include <cstdint>
#include <string>

namespace xchain::fuzz {

/// SplitMix64 stream. Copyable: forking the state forks the stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniform bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, n); n == 0 returns 0. The modulo bias over a
  /// 64-bit stream is immaterial for mutation scheduling (n is tiny).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Uniform value in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

/// FNV-1a over a string — the per-target sub-seed derivation (seed ^
/// fnv(target name)), so adding a protocol to a multi-target run never
/// perturbs the streams of the others.
inline std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Order-sensitive accumulator for execution signatures (consult paths,
/// outcome digests). Boost-style hash_combine over 64 bits.
inline void sig_mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

}  // namespace xchain::fuzz
