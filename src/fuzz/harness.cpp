#include "fuzz/harness.hpp"

#include <chrono>
#include <cstdio>
#include <set>
#include <thread>

#include "fuzz/mutator.hpp"
#include "fuzz/rng.hpp"
#include "fuzz/shrink.hpp"

namespace xchain::fuzz {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Starter corpus beyond the user-provided seeds: the conforming
/// reference, every per-party sore-loser halt, every per-party boundary
/// delay (Δ — the smallest out-of-model lateness), and every
/// protocol-specific dishonesty variant.
std::vector<FuzzInput> starter_seeds(const FuzzTarget& target,
                                     InstancePool& pool) {
  std::vector<FuzzInput> seeds;
  FuzzInput base;
  base.protocol = target.name;
  seeds.push_back(base);
  const Instance& inst = pool.instance_for(base);
  for (std::size_t p = 0; p < inst.party_count(); ++p) {
    if (inst.action_counts[p] > 0) {
      FuzzInput halt = base;
      halt.plans.resize(p + 1);
      halt.plans[p] = sim::DeviationPlan::halt_after(0);
      seeds.push_back(halt);

      FuzzInput late = base;
      late.plans.resize(p + 1);
      late.plans[p] =
          sim::DeviationPlan::conforming().delayed(0, inst.delta);
      seeds.push_back(std::move(late));
    }
    for (const int v : inst.variants[p]) {
      if (v == 0) continue;
      FuzzInput var = base;
      var.plans.resize(p + 1);
      var.plans[p] = sim::DeviationPlan::conforming().with_variant(v);
      seeds.push_back(std::move(var));
    }
  }
  return seeds;
}

}  // namespace

TargetFuzzResult fuzz_target(const FuzzTarget& target,
                             const FuzzOptions& opts) {
  TargetFuzzResult res;
  res.protocol = target.name;

  InstancePool pool(target);
  Mutator mutator(target);
  Rng rng(opts.seed ^ fnv1a(target.name));

  using Clock = std::chrono::steady_clock;
  const bool timed = opts.budget_seconds > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             timed ? opts.budget_seconds : 0));
  const auto out_of_budget = [&] {
    return res.runs >= opts.budget_runs || (timed && Clock::now() >= deadline);
  };

  std::vector<FuzzInput> corpus;
  std::set<std::uint64_t> signatures;
  std::set<std::string> corpus_keys;   // canonical texts in `corpus`
  std::set<std::string> shrunk_from;   // violating inputs already shrunk
  std::set<std::string> repro_keys;    // minimized texts already recorded
  std::size_t shrinks = 0;

  // Executes one raw input: canonicalize, run, admit-on-novelty, and
  // shrink-and-record when it violates.
  const auto consider = [&](const FuzzInput& raw) {
    FuzzInput in;
    try {
      in = pool.canonical(raw);
    } catch (const sim::ParamError&) {
      ++res.skipped_inputs;
      return;
    } catch (const FuzzFormatError&) {
      ++res.skipped_inputs;
      return;
    }
    const RunOutcome out = pool.run(in);
    ++res.runs;
    if (signatures.insert(out.signature).second &&
        corpus_keys.insert(in.str()).second) {
      if (corpus.size() < opts.max_corpus) {
        corpus.push_back(in);
      } else {
        corpus[rng.below(corpus.size())] = in;
      }
    }
    if (!out.violating()) return;
    ++res.violating_runs;
    if (shrinks >= opts.max_shrinks ||
        res.reproducers.size() >= opts.max_reproducers ||
        !shrunk_from.insert(in.str()).second) {
      return;
    }
    ++shrinks;
    const ShrinkResult sr = shrink_input(in, pool);
    if (repro_keys.insert(sr.minimized.str()).second) {
      res.reproducers.push_back(Reproducer{sr.minimized.str(), sr.violation,
                                           res.runs, sr.steps, sr.probes});
    }
  };

  // Phase 1: replay the starter set and the provided seed corpus.
  for (const FuzzInput& seed : starter_seeds(target, pool)) {
    if (out_of_budget()) break;
    consider(seed);
  }
  for (const FuzzInput& seed : opts.seeds) {
    if (out_of_budget()) break;
    consider(seed);
  }

  // Phase 2: mutate until the budget is spent.
  if (!opts.replay_only) {
    FuzzInput base;
    base.protocol = target.name;
    while (!out_of_budget()) {
      // Copy the parent/donor out: consider() may grow or evict corpus
      // slots while the mutant is being built from them.
      const FuzzInput parent =
          corpus.empty() ? base : corpus[rng.below(corpus.size())];
      FuzzInput donor;
      const bool has_donor = corpus.size() >= 2;
      if (has_donor) donor = corpus[rng.below(corpus.size())];
      const Instance& shape = pool.instance_for(parent);
      consider(mutator.mutate(parent, shape, has_donor ? &donor : nullptr,
                              rng));
    }
  }

  res.corpus_entries = corpus.size();
  res.unique_signatures = signatures.size();
  res.corpus.reserve(corpus.size());
  for (const FuzzInput& in : corpus) res.corpus.push_back(in.str());
  return res;
}

std::string TargetFuzzResult::line() const {
  std::string out = protocol + ": " + std::to_string(runs) + " runs, " +
                    std::to_string(unique_signatures) + " signatures, " +
                    std::to_string(corpus_entries) + " corpus entries, " +
                    std::to_string(violating_runs) + " violating runs, " +
                    std::to_string(reproducers.size()) + " reproducers";
  if (skipped_inputs > 0) {
    out += " (" + std::to_string(skipped_inputs) + " inputs skipped)";
  }
  return out;
}

std::size_t FuzzReport::total_runs() const {
  std::size_t n = 0;
  for (const TargetFuzzResult& t : targets) n += t.runs;
  return n;
}

std::size_t FuzzReport::total_violating_runs() const {
  std::size_t n = 0;
  for (const TargetFuzzResult& t : targets) n += t.violating_runs;
  return n;
}

std::size_t FuzzReport::total_reproducers() const {
  std::size_t n = 0;
  for (const TargetFuzzResult& t : targets) n += t.reproducers.size();
  return n;
}

std::string FuzzReport::str() const {
  std::string out;
  for (const TargetFuzzResult& t : targets) {
    out += t.line() + "\n";
    for (const Reproducer& r : t.reproducers) {
      out += "  reproducer (violation: " + r.violation + "):\n";
      std::size_t start = 0;
      while (start < r.input.size()) {
        std::size_t nl = r.input.find('\n', start);
        if (nl == std::string::npos) nl = r.input.size();
        out += "    " + r.input.substr(start, nl - start) + "\n";
        start = nl + 1;
      }
    }
  }
  out += "fuzz: " + std::to_string(targets.size()) + " protocols, " +
         std::to_string(total_runs()) + " runs, " +
         std::to_string(total_violating_runs()) + " violating runs, " +
         std::to_string(total_reproducers()) + " reproducers";
  return out;
}

std::string fuzz_report_json(const FuzzReport& report,
                             const sim::CampaignStamp& stamp) {
  std::string out = "{\n";
  out += "  \"benchmark\": \"fuzz\",\n";
  out += "  \"git_commit\": \"" + json_escape(stamp.git_commit) + "\",\n";
  out += "  \"build_type\": \"" + json_escape(stamp.build_type) + "\",\n";
  out += "  \"compiler\": \"" + json_escape(stamp.compiler) + "\",\n";
  out += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"seed\": " + std::to_string(report.seed) + ",\n";
  out += "  \"budget_runs\": " + std::to_string(report.budget_runs) + ",\n";
  out += std::string("  \"replay_only\": ") +
         (report.replay_only ? "true" : "false") + ",\n";
  out += "  \"runs\": " + std::to_string(report.total_runs()) + ",\n";
  out += "  \"violating_runs\": " +
         std::to_string(report.total_violating_runs()) + ",\n";
  out += "  \"reproducers\": " + std::to_string(report.total_reproducers()) +
         ",\n";
  out += "  \"targets\": [";
  for (std::size_t i = 0; i < report.targets.size(); ++i) {
    const TargetFuzzResult& t = report.targets[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\n      \"protocol\": \"" + json_escape(t.protocol) + "\",";
    out += "\n      \"runs\": " + std::to_string(t.runs) + ",";
    out += "\n      \"corpus_entries\": " + std::to_string(t.corpus_entries) +
           ",";
    out += "\n      \"unique_signatures\": " +
           std::to_string(t.unique_signatures) + ",";
    out += "\n      \"violating_runs\": " + std::to_string(t.violating_runs) +
           ",";
    out += "\n      \"skipped_inputs\": " + std::to_string(t.skipped_inputs) +
           ",";
    out += "\n      \"reproducers\": [";
    for (std::size_t r = 0; r < t.reproducers.size(); ++r) {
      const Reproducer& rep = t.reproducers[r];
      out += r ? ",\n        {" : "\n        {";
      out += "\n          \"input\": \"" + json_escape(rep.input) + "\",";
      out += "\n          \"violation\": \"" + json_escape(rep.violation) +
             "\",";
      out += "\n          \"found_at_run\": " +
             std::to_string(rep.found_at_run) + ",";
      out += "\n          \"shrink_steps\": " +
             std::to_string(rep.shrink_steps) + ",";
      out += "\n          \"shrink_probes\": " +
             std::to_string(rep.shrink_probes);
      out += "\n        }";
    }
    out += t.reproducers.empty() ? "]" : "\n      ]";
    out += "\n    }";
  }
  out += report.targets.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace xchain::fuzz
