#pragma once

// Delta-debugging minimizer for violating fuzz inputs.
//
// Given an input whose run breaches the hedging audit, shrink_input()
// greedily reduces it while re-running the oracle ("does any violation
// survive?") after every candidate edit, until a full pass changes
// nothing. The pass order is fixed — chain environment stripped, whole
// plans to conforming, variants to honest, individual modifications to
// Perform, delays down toward Δ-1, parameter overrides back to defaults
// — so the minimizer is a
// deterministic function of the violating input alone: however a (seeded)
// mutation path found the bug, the same minimal reproducer comes out, and
// tests pin that canonical form byte-for-byte.

#include <cstddef>

#include "fuzz/input.hpp"
#include "fuzz/target.hpp"

namespace xchain::fuzz {

/// Outcome of minimizing one violating input.
struct ShrinkResult {
  FuzzInput minimized;          ///< canonical form
  std::string violation;        ///< first surviving violation, str() form
  std::size_t steps = 0;        ///< accepted reductions
  std::size_t probes = 0;       ///< oracle executions spent
};

/// Minimizes `found` (which must violate when run through `pool`).
/// Throws std::invalid_argument when it does not — a shrink request for a
/// clean input is a harness bug, not a quiet no-op.
ShrinkResult shrink_input(const FuzzInput& found, InstancePool& pool);

}  // namespace xchain::fuzz
