#include "fuzz/shrink.hpp"

#include <algorithm>
#include <stdexcept>

namespace xchain::fuzz {

namespace {

/// Smaller delay values to try for a delay of `d`, most-minimal first:
/// 1 tick, the last timely value Δ-1, and the boundary Δ itself.
std::vector<Tick> delay_candidates(Tick d, Tick delta) {
  std::vector<Tick> cands{1, delta - 1, delta};
  cands.erase(std::remove_if(cands.begin(), cands.end(),
                             [&](Tick c) { return c < 1 || c >= d; }),
              cands.end());
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  return cands;
}

}  // namespace

ShrinkResult shrink_input(const FuzzInput& found, InstancePool& pool) {
  ShrinkResult res;
  FuzzInput cur = pool.canonical(found);

  const auto violates = [&](const FuzzInput& in) {
    ++res.probes;
    return pool.run(in).violating();
  };
  if (!violates(cur)) {
    throw std::invalid_argument(
        "shrink_input: input does not violate (" + cur.str() + ")");
  }

  // Accepts `cand` as the new current input iff it is a genuine change
  // and the violation survives it.
  const auto try_accept = [&](FuzzInput cand) {
    cand = pool.canonical(cand);
    if (cand.str() == cur.str()) return false;
    if (!violates(cand)) return false;
    cur = std::move(cand);
    ++res.steps;
    return true;
  };

  // Greedy fixpoint over a FIXED pass order — determinism is what lets
  // tests pin the minimized form regardless of the mutation path that
  // found the bug.
  bool changed = true;
  while (changed) {
    changed = false;

    // Pass 0: strip the chain environment — fault clauses one at a time,
    // then the resilience policy. A minimized reproducer only carries the
    // substrate damage the violation actually needs (fault-ONLY
    // violations never reach the shrinker: InstancePool::run already
    // reclassifies them against the faultless twin).
    for (std::size_t i = 0; i < cur.faults.entries.size(); ++i) {
      FuzzInput cand = cur;
      cand.faults.entries.erase(cand.faults.entries.begin() +
                                static_cast<std::ptrdiff_t>(i));
      if (try_accept(std::move(cand))) {
        changed = true;
        --i;  // the list shifted left
      }
    }
    if (cur.resilience.active()) {
      FuzzInput cand = cur;
      cand.resilience = {};
      changed |= try_accept(std::move(cand));
    }

    // Pass 1: drop whole plans back to conforming.
    for (std::size_t p = 0; p < cur.plans.size(); ++p) {
      if (cur.plans[p].is_conforming()) continue;
      FuzzInput cand = cur;
      cand.plans[p] = sim::DeviationPlan::conforming();
      changed |= try_accept(std::move(cand));
    }

    // Pass 2: dishonest variants back to honest (keeping timing mods).
    for (std::size_t p = 0; p < cur.plans.size(); ++p) {
      if (cur.plans[p].variant() == 0) continue;
      FuzzInput cand = cur;
      cand.plans[p] = cur.plans[p].with_variant(0);
      changed |= try_accept(std::move(cand));
    }

    // Pass 3: individual modifications back to Perform.
    for (std::size_t p = 0; p < cur.plans.size(); ++p) {
      const Instance& inst = pool.instance_for(cur);
      if (p >= inst.action_counts.size()) break;
      const int actions = inst.action_counts[p];
      for (int o = 0; o < actions; ++o) {
        const sim::ActionPolicy pol = cur.plans[p].policy(o);
        if (pol.choice == sim::ActionChoice::kPerform) continue;
        std::vector<sim::ActionPolicy> acts = decode_plan(cur.plans[p], actions);
        acts[static_cast<std::size_t>(o)] = {sim::ActionChoice::kPerform, 0};
        FuzzInput cand = cur;
        cand.plans[p] = encode_plan(acts, cur.plans[p].variant());
        changed |= try_accept(std::move(cand));
      }
    }

    // Pass 4: delays down toward (and below) the Δ-1 boundary, smallest
    // surviving value first.
    for (std::size_t p = 0; p < cur.plans.size(); ++p) {
      const Instance& inst = pool.instance_for(cur);
      if (p >= inst.action_counts.size()) break;
      const int actions = inst.action_counts[p];
      for (int o = 0; o < actions; ++o) {
        const sim::ActionPolicy pol = cur.plans[p].policy(o);
        if (pol.choice != sim::ActionChoice::kDelay) continue;
        for (const Tick c : delay_candidates(pol.delay, inst.delta)) {
          std::vector<sim::ActionPolicy> acts =
              decode_plan(cur.plans[p], actions);
          acts[static_cast<std::size_t>(o)] = {sim::ActionChoice::kDelay, c};
          FuzzInput cand = cur;
          cand.plans[p] = encode_plan(acts, cur.plans[p].variant());
          if (try_accept(std::move(cand))) {
            changed = true;
            break;
          }
        }
      }
    }

    // Pass 5: parameter overrides back to their defaults (removal), else
    // halved toward the default.
    for (std::size_t i = 0; i < cur.overrides.size(); ++i) {
      {
        FuzzInput cand = cur;
        cand.overrides.erase(cand.overrides.begin() +
                             static_cast<std::ptrdiff_t>(i));
        if (try_accept(std::move(cand))) {
          changed = true;
          --i;  // the list shifted left
          continue;
        }
      }
      // Walk a numeric value halfway toward its default; the outer
      // fixpoint loop repeats the halving until it stops helping.
      const auto& [key, value] = cur.overrides[i];
      for (const sim::ParamSpec& spec : pool.target().schema.specs()) {
        if (spec.key != key) continue;
        if (spec.type == sim::ParamType::kInt ||
            spec.type == sim::ParamType::kAmount) {
          try {
            const std::int64_t v = std::stoll(value);
            const std::int64_t mid = v + (spec.int_default - v) / 2;
            if (mid != v) {
              FuzzInput cand = cur;
              cand.overrides[i].second = std::to_string(mid);
              changed |= try_accept(std::move(cand));
            }
          } catch (const std::exception&) {
          }
        }
        break;
      }
    }
  }

  RunOutcome out = pool.run(cur);
  ++res.probes;
  res.violation = out.violations.empty() ? "" : out.violations.front().str();
  res.minimized = std::move(cur);
  return res;
}

}  // namespace xchain::fuzz
