#include "fuzz/input.hpp"

#include <algorithm>
#include <cctype>

namespace xchain::fuzz {

namespace {

/// Parses a decimal integer (optional leading '-') at text[pos...],
/// advancing pos past it. Throws FuzzFormatError naming `what` when no
/// digits are present.
long long parse_int_at(const std::string& text, std::size_t& pos,
                       const char* what) {
  bool neg = false;
  std::size_t p = pos;
  if (p < text.size() && text[p] == '-') {
    neg = true;
    ++p;
  }
  const std::size_t digits = p;
  long long value = 0;
  while (p < text.size() && std::isdigit(static_cast<unsigned char>(text[p]))) {
    value = value * 10 + (text[p] - '0');
    ++p;
  }
  if (p == digits) {
    throw FuzzFormatError(std::string("plan: expected ") + what + " in '" +
                          text + "' at offset " + std::to_string(pos));
  }
  pos = p;
  return neg ? -value : value;
}

std::string trimmed(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

sim::DeviationPlan parse_plan(const std::string& text) {
  const std::string t = trimmed(text);
  if (t.empty()) throw FuzzFormatError("plan: empty plan text");

  // Optional "v<variant>:" prefix. No plan part starts with 'v', so a
  // leading 'v' is unambiguous.
  int variant = 0;
  std::size_t pos = 0;
  if (t[0] == 'v') {
    pos = 1;
    variant = static_cast<int>(parse_int_at(t, pos, "variant"));
    if (pos >= t.size() || t[pos] != ':') {
      throw FuzzFormatError("plan: expected ':' after variant in '" + t + "'");
    }
    if (variant == 0) {
      // str() never prints "v0:" — rejecting it keeps the text form of
      // every plan unique (one spelling per plan, same as the canonical
      // forms the shrinker pins).
      throw FuzzFormatError("plan: variant 0 is implicit, drop the 'v0:' in '" +
                            t + "'");
    }
    ++pos;
  }

  const std::string body = t.substr(pos);
  if (body.empty()) throw FuzzFormatError("plan: empty body in '" + t + "'");

  sim::DeviationPlan plan = sim::DeviationPlan::conforming();
  if (body != "conform") {
    // '.'-separated parts; "halt@k" may only appear once, as the last part
    // (the only place str() ever prints it).
    std::vector<int> seen;
    std::size_t start = 0;
    bool halted = false;
    while (start <= body.size()) {
      const std::size_t dot = body.find('.', start);
      const std::string part = body.substr(
          start, dot == std::string::npos ? std::string::npos : dot - start);
      if (part.empty()) {
        throw FuzzFormatError("plan: empty part in '" + t + "'");
      }
      if (halted) {
        throw FuzzFormatError("plan: 'halt@' must be the last part in '" + t +
                              "'");
      }
      std::size_t p = 0;
      if (part.rfind("halt@", 0) == 0) {
        p = 5;
        const long long k = parse_int_at(part, p, "halt ordinal");
        if (p != part.size() || k < 0) {
          throw FuzzFormatError("plan: bad halt part '" + part + "'");
        }
        // Rebuild preserving mods added so far (halt_after is a factory).
        sim::DeviationPlan halted_plan =
            sim::DeviationPlan::halt_after(static_cast<int>(k));
        for (const int o : seen) {
          const sim::ActionPolicy pol = plan.policy(o);
          halted_plan = pol.choice == sim::ActionChoice::kDrop
                            ? halted_plan.dropped(o)
                            : halted_plan.delayed(o, pol.delay);
        }
        plan = halted_plan;
        halted = true;
      } else if (part[0] == 'd') {
        p = 1;
        const long long o = parse_int_at(part, p, "delay ordinal");
        if (p >= part.size() || part[p] != '+') {
          throw FuzzFormatError("plan: expected '+' in delay part '" + part +
                                "'");
        }
        ++p;
        const long long d = parse_int_at(part, p, "delay ticks");
        if (p != part.size() || o < 0 || d < 1) {
          throw FuzzFormatError("plan: bad delay part '" + part + "'");
        }
        if (std::find(seen.begin(), seen.end(), static_cast<int>(o)) !=
            seen.end()) {
          throw FuzzFormatError("plan: duplicate ordinal " + std::to_string(o) +
                                " in '" + t + "'");
        }
        seen.push_back(static_cast<int>(o));
        plan = plan.delayed(static_cast<int>(o), static_cast<Tick>(d));
      } else if (part[0] == 'x') {
        p = 1;
        const long long o = parse_int_at(part, p, "drop ordinal");
        if (p != part.size() || o < 0) {
          throw FuzzFormatError("plan: bad drop part '" + part + "'");
        }
        if (std::find(seen.begin(), seen.end(), static_cast<int>(o)) !=
            seen.end()) {
          throw FuzzFormatError("plan: duplicate ordinal " + std::to_string(o) +
                                " in '" + t + "'");
        }
        seen.push_back(static_cast<int>(o));
        plan = plan.dropped(static_cast<int>(o));
      } else {
        throw FuzzFormatError("plan: unknown part '" + part + "' in '" + t +
                              "' (want conform, halt@k, d<o>+<t>, or x<o>)");
      }
      if (dot == std::string::npos) break;
      start = dot + 1;
    }
  }
  if (variant != 0) plan = plan.with_variant(variant);
  return plan;
}

std::vector<sim::ActionPolicy> decode_plan(const sim::DeviationPlan& plan,
                                           int action_count) {
  std::vector<sim::ActionPolicy> acts(
      static_cast<std::size_t>(std::max(action_count, 0)));
  for (int o = 0; o < action_count; ++o) {
    acts[static_cast<std::size_t>(o)] = plan.policy(o);
  }
  return acts;
}

sim::DeviationPlan encode_plan(const std::vector<sim::ActionPolicy>& acts,
                               int variant) {
  const int n = static_cast<int>(acts.size());
  // Maximal trailing run of Drops becomes the halt point; anything at or
  // past it needs no modification entry.
  int halt = n;
  while (halt > 0 && acts[static_cast<std::size_t>(halt - 1)].choice ==
                         sim::ActionChoice::kDrop) {
    --halt;
  }
  sim::DeviationPlan plan = halt < n ? sim::DeviationPlan::halt_after(halt)
                                     : sim::DeviationPlan::conforming();
  for (int o = 0; o < halt; ++o) {
    const sim::ActionPolicy& pol = acts[static_cast<std::size_t>(o)];
    if (pol.choice == sim::ActionChoice::kDrop) {
      plan = plan.dropped(o);
    } else if (pol.choice == sim::ActionChoice::kDelay && pol.delay >= 1) {
      plan = plan.delayed(o, pol.delay);
    }
  }
  if (variant != 0) plan = plan.with_variant(variant);
  return plan;
}

sim::DeviationPlan canonical_plan(const sim::DeviationPlan& plan,
                                  int action_count) {
  return encode_plan(decode_plan(plan, action_count), plan.variant());
}

FuzzInput FuzzInput::parse(const std::string& text) {
  FuzzInput in;
  std::vector<bool> have_plan;
  bool have_resilience = false;
  std::size_t start = 0;
  std::size_t lineno = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string raw = text.substr(
        start, nl == std::string::npos ? std::string::npos : nl - start);
    ++lineno;
    const std::string line = trimmed(raw);
    const auto fail = [&](const std::string& why) {
      throw FuzzFormatError("fuzz input line " + std::to_string(lineno) +
                            ": " + why + " ('" + line + "')");
    };
    if (!line.empty() && line[0] != '#') {
      const std::size_t sp = line.find(' ');
      const std::string word = line.substr(0, sp);
      const std::string rest =
          sp == std::string::npos ? "" : trimmed(line.substr(sp + 1));
      if (word == "protocol") {
        if (!in.protocol.empty()) fail("duplicate 'protocol' line");
        if (rest.empty()) fail("'protocol' needs a name");
        in.protocol = rest;
      } else if (word == "set") {
        const std::size_t eq = rest.find('=');
        if (eq == std::string::npos || eq == 0) {
          fail("'set' wants key=value");
        }
        in.overrides.emplace_back(trimmed(rest.substr(0, eq)),
                                  trimmed(rest.substr(eq + 1)));
      } else if (word == "plan") {
        const std::size_t sp2 = rest.find(' ');
        if (sp2 == std::string::npos) fail("'plan' wants: plan <party> <plan>");
        std::size_t pos = 0;
        const std::string idx_text = rest.substr(0, sp2);
        long long idx = -1;
        try {
          idx = parse_int_at(idx_text, pos, "party index");
        } catch (const FuzzFormatError&) {
          fail("bad party index '" + idx_text + "'");
        }
        if (pos != idx_text.size() || idx < 0 || idx > 1024) {
          fail("bad party index '" + idx_text + "'");
        }
        const std::size_t p = static_cast<std::size_t>(idx);
        if (p < have_plan.size() && have_plan[p]) {
          fail("duplicate plan for party " + std::to_string(idx));
        }
        if (p >= in.plans.size()) {
          in.plans.resize(p + 1);
          have_plan.resize(p + 1, false);
        }
        in.plans[p] = parse_plan(rest.substr(sp2 + 1));
        have_plan[p] = true;
      } else if (word == "fault") {
        const std::size_t sp2 = rest.find(' ');
        if (sp2 == std::string::npos) {
          fail("'fault' wants: fault <chain> <clause>");
        }
        try {
          const chain::FaultPlan one = chain::FaultPlan::parse(
              trimmed(rest.substr(0, sp2)) + ":" +
              trimmed(rest.substr(sp2 + 1)));
          in.faults.entries.insert(in.faults.entries.end(),
                                   one.entries.begin(), one.entries.end());
        } catch (const std::invalid_argument& e) {
          fail(std::string("bad fault clause: ") + e.what());
        }
      } else if (word == "resilience") {
        if (have_resilience) fail("duplicate 'resilience' line");
        if (rest.empty()) fail("'resilience' wants a policy");
        try {
          in.resilience = chain::ResiliencePolicy::parse(rest);
        } catch (const std::invalid_argument& e) {
          fail(std::string("bad resilience policy: ") + e.what());
        }
        have_resilience = true;
      } else {
        fail("unknown directive '" + word +
             "' (want protocol, set, plan, fault, resilience, or a # "
             "comment)");
      }
    }
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  if (in.protocol.empty()) {
    throw FuzzFormatError("fuzz input: missing 'protocol' line");
  }
  return in;
}

std::string FuzzInput::str() const {
  std::string out = "protocol " + protocol + "\n";
  for (const auto& [key, value] : overrides) {
    out += "set " + key + "=" + value + "\n";
  }
  for (const auto& [chain_name, clause] : faults.entries) {
    out += "fault " + chain_name + " " + clause.str() + "\n";
  }
  if (resilience.active()) {
    out += "resilience " + resilience.str() + "\n";
  }
  for (std::size_t p = 0; p < plans.size(); ++p) {
    if (plans[p].is_conforming()) continue;
    out += "plan " + std::to_string(p) + " " + plans[p].str() + "\n";
  }
  return out;
}

sim::ParamSet FuzzInput::params(const sim::ParamSet& schema) const {
  sim::ParamSet ps = schema;
  for (const auto& [key, value] : overrides) ps.set(key, value);
  return ps;
}

const sim::DeviationPlan& FuzzInput::plan_of(std::size_t p) const {
  static const sim::DeviationPlan kConforming =
      sim::DeviationPlan::conforming();
  return p < plans.size() ? plans[p] : kConforming;
}

FuzzInput canonical_input(const FuzzInput& in,
                          const sim::ProtocolAdapter& adapter,
                          const sim::ParamSet& schema) {
  FuzzInput out;
  out.protocol = in.protocol;
  const sim::ParamSet ps = in.params(schema);
  for (const sim::ParamSpec& spec : ps.specs()) {
    const std::string cur = ps.value_str(spec.key);
    if (cur != schema.value_str(spec.key)) {
      out.overrides.emplace_back(spec.key, cur);
    }
  }
  const std::size_t n = adapter.party_count();
  out.plans.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    out.plans[p] = canonical_plan(in.plan_of(p),
                                  adapter.action_count(static_cast<PartyId>(p)));
  }
  // Fault clauses and the resilience policy are already one-spelling-per-
  // value (the parsers reject every alternative form), so they pass
  // through unchanged.
  out.faults = in.faults;
  out.resilience = in.resilience;
  return out;
}

sim::Schedule schedule_of(const FuzzInput& in,
                          const sim::ProtocolAdapter& adapter,
                          const std::string& overrides_label) {
  sim::Schedule s;
  const std::size_t n = adapter.party_count();
  s.plans.reserve(n);
  for (std::size_t p = 0; p < n; ++p) s.plans.push_back(in.plan_of(p));
  s.label = adapter.name();
  for (std::size_t p = 0; p < n; ++p) {
    s.label += p == 0 ? '[' : ',';
    s.label += adapter.plan_label(static_cast<PartyId>(p), s.plans[p]);
  }
  s.label += ']';
  if (!overrides_label.empty()) s.label += " (" + overrides_label + ")";
  return s;
}

}  // namespace xchain::fuzz
