#pragma once

// Seeded mutation over fuzz inputs.
//
// Mutations operate on the dense per-ordinal decoding of each party's
// DeviationPlan (decode_plan/encode_plan in fuzz/input.hpp), since the
// sparse plan type has no API for removing a modification. The operator
// menu covers the axes the tentpole names: flip a single ordinal's policy
// between Perform/Delay/Drop, bump or shrink existing delays across the
// Δ boundary, set or clear halt suffixes, splice ordinal ranges between
// parties, cross over whole plans with another corpus entry, jitter
// ParamSet values within their schema bounds (and a fuzz-side window that
// keeps worlds tractable), reset a party to conforming, and perturb the
// chain environment (add/remove '*'-chain fault clauses, toggle the
// resilience policy). All randomness flows through the caller's Rng, so a
// (seed, corpus) pair replays byte-identically.

#include "fuzz/input.hpp"
#include "fuzz/rng.hpp"
#include "fuzz/target.hpp"

namespace xchain::fuzz {

/// Stateless mutation engine for one target's schema.
class Mutator {
 public:
  explicit Mutator(const FuzzTarget& target) : target_(target) {}

  /// A mutated copy of `parent`. `shape` must be `parent`'s Instance (its
  /// action counts, Δ, and variant universes drive the plan operators);
  /// `crossover` optionally donates plans. The result is NOT canonical —
  /// callers canonicalize against the child's own instance, which also
  /// clamps any ordinals a parameter change invalidated.
  FuzzInput mutate(const FuzzInput& parent, const Instance& shape,
                   const FuzzInput* crossover, Rng& rng) const;

 private:
  void mutate_once(FuzzInput& child, const Instance& shape,
                   const FuzzInput* crossover, Rng& rng) const;
  void mutate_param(FuzzInput& child, Rng& rng) const;
  void mutate_fault(FuzzInput& child, const Instance& shape, Rng& rng) const;

  const FuzzTarget& target_;
};

}  // namespace xchain::fuzz
