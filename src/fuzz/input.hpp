#pragma once

// Fuzz-input representation: (protocol, parameter overrides, one
// DeviationPlan per party), with a line-based text form that doubles as
// the corpus-file and minimized-reproducer format.
//
// The text grammar is deliberately the same one DeviationPlan::str()
// prints — "conform", "halt@k", "d<ordinal>+<ticks>", "x<ordinal>" joined
// with '.', an optional "v<variant>:" prefix — so a reproducer reads
// exactly like the schedule labels in sweep reports and round-trips
// through parse()/str() byte-identically:
//
//   # sore-loser walk-away after escrow
//   protocol two-party
//   set delta=3
//   plan 0 d2+6
//   plan 1 halt@2
//
// Missing `plan` lines mean the party conforms; `set` lines are
// schema-checked against the protocol's registered ParamSet before any
// run. canonical_input() reduces an input to the unique normal form the
// shrinker pins reproducers to: plans are re-encoded over the adapter's
// real action counts (out-of-range modifications drop, zero-tick delays
// become Perform, a maximal trailing run of Drops folds into the halt
// point) and overrides that merely restate a default disappear.
//
// Two further directives drive the chain fault layer (chain/fault.hpp):
//
//   fault <chain> <clause>     -- e.g. fault banana squeeze@4-10,cap=1
//   resilience <policy>        -- naive | rebroadcast | fee-escalate[:b,s,m]
//
// One `fault` line per clause (chain may be '*'); the clause grammar is
// FaultPlan's, already one-spelling-per-clause, so these lines round-trip
// like everything else. Violations that an injected fault causes (they
// vanish on a faultless twin of the same schedule) are expected substrate
// damage, not protocol bugs: InstancePool::run reclassifies them instead
// of reporting a violating run.

#include <string>
#include <utility>
#include <vector>

#include "chain/fault.hpp"
#include "sim/deviation.hpp"
#include "sim/param.hpp"
#include "sim/scenario.hpp"

namespace xchain::fuzz {

/// Malformed fuzz-input text (bad plan grammar, unknown directive,
/// missing protocol line). Parameter errors surface as sim::ParamError.
class FuzzFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses the DeviationPlan::str() grammar. Throws FuzzFormatError on
/// anything str() could not have printed (negative ordinals, zero delays,
/// duplicate parts for one ordinal, trailing garbage).
sim::DeviationPlan parse_plan(const std::string& text);

/// Dense per-ordinal view of a plan over a known script length — the form
/// mutation and shrinking operate on, since DeviationPlan itself has no
/// API for *removing* a modification.
std::vector<sim::ActionPolicy> decode_plan(const sim::DeviationPlan& plan,
                                           int action_count);

/// Rebuilds a DeviationPlan from a dense policy vector (plus variant) in
/// canonical form: delays < 1 become Perform, a maximal trailing run of
/// Drops becomes the halt point (never explicit x-mods), interior drops
/// stay x-mods. encode_plan(decode_plan(p, n), v) is the canonical form
/// of p over an n-action script.
sim::DeviationPlan encode_plan(const std::vector<sim::ActionPolicy>& acts,
                               int variant);

/// Canonical form of `plan` over an `action_count`-long script.
sim::DeviationPlan canonical_plan(const sim::DeviationPlan& plan,
                                  int action_count);

/// One fuzz input. `plans` is indexed by party and may be shorter than the
/// protocol's party count (missing tail = conforming parties).
struct FuzzInput {
  std::string protocol;
  /// (key, value) parameter overrides, in application order.
  std::vector<std::pair<std::string, std::string>> overrides;
  std::vector<sim::DeviationPlan> plans;
  /// Injected chain faults (`fault` lines, one clause per line) and the
  /// conforming parties' resilience policy (`resilience` line). Both
  /// default to inactive — the historical reliable substrate.
  chain::FaultPlan faults;
  chain::ResiliencePolicy resilience;

  /// The chain environment these fields describe (inactive when neither
  /// was set).
  chain::ChainEnvironment environment() const { return {faults, resilience}; }

  /// Parses the corpus-file text form. Throws FuzzFormatError on
  /// malformed lines; parameter values are NOT schema-checked here (the
  /// schema needs the registry — see params()).
  static FuzzInput parse(const std::string& text);

  /// The text form (round-trips through parse()).
  std::string str() const;

  /// Schema-checked ParamSet: `schema`'s defaults plus this input's
  /// overrides. Throws sim::ParamError on unknown keys / bad values.
  sim::ParamSet params(const sim::ParamSet& schema) const;

  /// The plan for party p (conforming when absent).
  const sim::DeviationPlan& plan_of(std::size_t p) const;
};

/// Canonical normal form against a concrete adapter + schema: plans are
/// truncated/extended to party_count() and canonicalized over each
/// party's action_count(); overrides are schema-validated, restated
/// defaults dropped, survivors emitted in schema declaration order. Two
/// semantically identical inputs canonicalize to the same str().
FuzzInput canonical_input(const FuzzInput& in,
                          const sim::ProtocolAdapter& adapter,
                          const sim::ParamSet& schema);

/// The runnable schedule for `in` on `adapter`: plans padded with
/// conforming entries to party_count(), labelled in the sweep engine's
/// "name[plan,plan,...]" convention with the overrides appended.
sim::Schedule schedule_of(const FuzzInput& in,
                          const sim::ProtocolAdapter& adapter,
                          const std::string& overrides_label);

}  // namespace xchain::fuzz
