#pragma once

// Planted-bug self-test target for the fuzz harness.
//
// End-to-end proof that the loop can actually find and minimize: a
// synthetic three-party protocol whose hedging bound breaks exactly when
// TWO cooperating plan entries line up — party 1 drops its ordinal 0 AND
// party 2 drops its ordinal 1 (neither alone trips it, so single-edit
// spaces cannot reach the bug and the shrinker must keep both entries).
// The victim, party 0, conforms and loses 5 coins against a floor of 0;
// the coins land on party 1, keeping flows zero-sum so only the planted
// breach — never the conservation check — fires.
//
// The adapter implements run() only (no tree hooks), which also keeps the
// executor's outcome-digest fallback path exercised. The canonical
// minimal reproducer is pinned here (and in tests): mutation path,
// budget, and seed must not change what the shrinker converges to.

#include <memory>
#include <string>

#include "fuzz/target.hpp"

namespace xchain::fuzz {

/// The planted violating adapter (3 parties, 2 ordinals each, Δ = 2).
std::unique_ptr<sim::ProtocolAdapter> make_selftest_adapter();

/// The self-test as a FuzzTarget (empty schema — no parameters).
FuzzTarget selftest_target();

/// The registry-style name of the self-test protocol.
std::string selftest_name();

/// The one canonical minimal reproducer the shrinker must emit:
///   protocol fuzz-selftest-trap
///   plan 1 x0
///   plan 2 halt@1
/// (party 1's drop is interior — ordinal 1 still performs — while party
/// 2's is a trailing suffix, so canonicalization folds it to halt@1).
std::string selftest_canonical_reproducer();

}  // namespace xchain::fuzz
