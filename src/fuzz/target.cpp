#include "fuzz/target.hpp"

#include <algorithm>

#include "fuzz/rng.hpp"
#include "sim/strategy_space.hpp"

namespace xchain::fuzz {

FuzzTarget FuzzTarget::from_registry(const std::string& name,
                                     const sim::ProtocolRegistry& registry) {
  const sim::ProtocolInfo& info = registry.info(name);
  FuzzTarget t;
  t.name = info.name;
  t.schema = info.defaults;
  t.factory = info.factory;
  return t;
}

Instance& InstancePool::instance_for(const FuzzInput& in) {
  // Key by the schema-normalized override string so "delta=2" on a
  // delta-2-default protocol shares the defaults instance — plus the
  // canonical environment text, since faults change the world itself.
  const sim::ParamSet params = in.params(target_.schema);
  const chain::ChainEnvironment env = in.environment();
  std::string key = params.overrides_str();
  if (env.active()) {
    if (!key.empty()) key += ' ';
    key += env.str();
  }
  auto it = instances_.find(key);
  if (it != instances_.end()) return *it->second;

  auto inst = std::make_unique<Instance>();
  inst->params = params;
  inst->overrides_label = key;
  inst->env = env;
  inst->adapter = target_.factory(params);
  if (env.active()) inst->adapter->set_environment(env);
  inst->delta = inst->adapter->delta();
  const std::size_t n = inst->adapter->party_count();
  inst->action_counts.resize(n);
  inst->variants.resize(n);
  // Variant universes come from the adapter's own (halt-only, tiny-cap)
  // plan space: parties whose deviations are protocol-specific variants
  // enumerate them there, everyone else only ever emits variant 0.
  sim::StrategySpace halt_only;
  for (std::size_t p = 0; p < n; ++p) {
    const PartyId pid = static_cast<PartyId>(p);
    inst->action_counts[p] = inst->adapter->action_count(pid);
    std::vector<int>& vs = inst->variants[p];
    vs.push_back(0);
    for (const sim::DeviationPlan& plan :
         inst->adapter->plan_space(pid, halt_only, 64).plans) {
      if (std::find(vs.begin(), vs.end(), plan.variant()) == vs.end()) {
        vs.push_back(plan.variant());
      }
    }
    std::sort(vs.begin(), vs.end());
  }
  inst->executor = std::make_unique<ScheduleExecutor>(*inst->adapter);
  Instance& ref = *inst;
  instances_.emplace(key, std::move(inst));
  return ref;
}

FuzzInput InstancePool::canonical(const FuzzInput& in) {
  Instance& inst = instance_for(in);
  return canonical_input(in, *inst.adapter, target_.schema);
}

RunOutcome InstancePool::run(const FuzzInput& in) {
  Instance& inst = instance_for(in);
  RunOutcome out = inst.executor->run(
      schedule_of(in, *inst.adapter, inst.overrides_label));
  if (!inst.env.active()) return out;
  // A fault run whose consult path matches the bare run's must not
  // collide with it in coverage space: the substrate behaved differently
  // even if the parties consulted the same decisions.
  sig_mix(out.signature, fnv1a(inst.overrides_label));
  if (out.violations.empty()) return out;

  // Fault attribution (the fuzz-side mirror of ScenarioRunner::sweep's
  // pass): replay the same schedule on a faultless twin instance and keep
  // only the violations that reproduce there — those are deviation bugs
  // even on a reliable substrate. Fault-only violations are what the
  // fault layer is DESIGNED to produce (e.g. a naive party starved by a
  // squeeze), so reporting them as fuzz findings would bury real signal.
  FuzzInput bare = in;
  bare.faults = {};
  bare.resilience = {};
  Instance& twin = instance_for(bare);
  const RunOutcome clean = twin.executor->run(
      schedule_of(bare, *twin.adapter, twin.overrides_label));
  std::vector<sim::Violation> kept;
  for (sim::Violation& v : out.violations) {
    bool on_twin = false;
    for (const sim::Violation& tv : clean.violations) {
      if (tv.party == v.party) {
        on_twin = true;
        break;
      }
    }
    if (on_twin) {
      kept.push_back(std::move(v));
    }
  }
  out.violations = std::move(kept);
  return out;
}

}  // namespace xchain::fuzz
