#include "fuzz/target.hpp"

#include <algorithm>

#include "sim/strategy_space.hpp"

namespace xchain::fuzz {

FuzzTarget FuzzTarget::from_registry(const std::string& name,
                                     const sim::ProtocolRegistry& registry) {
  const sim::ProtocolInfo& info = registry.info(name);
  FuzzTarget t;
  t.name = info.name;
  t.schema = info.defaults;
  t.factory = info.factory;
  return t;
}

Instance& InstancePool::instance_for(const FuzzInput& in) {
  // Key by the schema-normalized override string so "delta=2" on a
  // delta-2-default protocol shares the defaults instance.
  const sim::ParamSet params = in.params(target_.schema);
  const std::string key = params.overrides_str();
  auto it = instances_.find(key);
  if (it != instances_.end()) return *it->second;

  auto inst = std::make_unique<Instance>();
  inst->params = params;
  inst->overrides_label = key;
  inst->adapter = target_.factory(params);
  inst->delta = inst->adapter->delta();
  const std::size_t n = inst->adapter->party_count();
  inst->action_counts.resize(n);
  inst->variants.resize(n);
  // Variant universes come from the adapter's own (halt-only, tiny-cap)
  // plan space: parties whose deviations are protocol-specific variants
  // enumerate them there, everyone else only ever emits variant 0.
  sim::StrategySpace halt_only;
  for (std::size_t p = 0; p < n; ++p) {
    const PartyId pid = static_cast<PartyId>(p);
    inst->action_counts[p] = inst->adapter->action_count(pid);
    std::vector<int>& vs = inst->variants[p];
    vs.push_back(0);
    for (const sim::DeviationPlan& plan :
         inst->adapter->plan_space(pid, halt_only, 64).plans) {
      if (std::find(vs.begin(), vs.end(), plan.variant()) == vs.end()) {
        vs.push_back(plan.variant());
      }
    }
    std::sort(vs.begin(), vs.end());
  }
  inst->executor = std::make_unique<ScheduleExecutor>(*inst->adapter);
  Instance& ref = *inst;
  instances_.emplace(key, std::move(inst));
  return ref;
}

FuzzInput InstancePool::canonical(const FuzzInput& in) {
  Instance& inst = instance_for(in);
  return canonical_input(in, *inst.adapter, target_.schema);
}

RunOutcome InstancePool::run(const FuzzInput& in) {
  Instance& inst = instance_for(in);
  return inst.executor->run(
      schedule_of(in, *inst.adapter, inst.overrides_label));
}

}  // namespace xchain::fuzz
