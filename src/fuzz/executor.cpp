#include "fuzz/executor.hpp"

#include "fuzz/rng.hpp"

namespace xchain::fuzz {

namespace {

/// Digest of a run's audited outcomes: per-party coin/value deltas,
/// conformance flags, per-symbol movements (std::map, so iteration order
/// is deterministic), and the violation count.
void mix_outcomes(std::uint64_t& h, const RunOutcome& out) {
  for (const sim::PartyOutcome& po : out.outcomes) {
    sig_mix(h, po.conforming ? 1 : 2);
    sig_mix(h, static_cast<std::uint64_t>(po.payoff.coin_delta));
    sig_mix(h, static_cast<std::uint64_t>(po.payoff.value_delta));
    for (const auto& [symbol, amount] : po.payoff.by_symbol) {
      sig_mix(h, fnv1a(symbol));
      sig_mix(h, static_cast<std::uint64_t>(amount));
    }
  }
  sig_mix(h, out.violations.size());
}

}  // namespace

ScheduleExecutor::ScheduleExecutor(const sim::ProtocolAdapter& adapter)
    : adapter_(adapter), frame_(adapter.tree_frame()) {
  if (!frame_) return;
  for (sim::Party* p : frame_->actors) p->set_consult_log(&log_);
  // Normalize the world to a checkpointed start-of-tick-0 baseline. A
  // surviving snapshot stack's slot 0 is always that baseline; a fresh
  // (or legacy-invalidated) world lands on it via reset(), and we push
  // the one slot every later run rewinds to.
  if (frame_->chains->snap_depth() > 0) {
    rewind_to_start();
  } else {
    frame_->chains->reset();
    frame_->chains->snap_push();
    for (sim::Party* p : frame_->actors) {
      p->snapshot(chain::SnapshotOp::kPush, 0);
    }
  }
}

ScheduleExecutor::~ScheduleExecutor() {
  if (!frame_) return;
  for (sim::Party* p : frame_->actors) p->set_consult_log(nullptr);
}

void ScheduleExecutor::rewind_to_start() {
  frame_->chains->snap_rewind(0);
  for (sim::Party* p : frame_->actors) {
    p->snapshot(chain::SnapshotOp::kRestore, 0);
  }
}

RunOutcome ScheduleExecutor::run(const sim::Schedule& s) {
  RunOutcome out;
  std::uint64_t h = 0xf0225eedull;
  for (const sim::DeviationPlan& p : s.plans) {
    sig_mix(h, static_cast<std::uint64_t>(p.variant()));
  }
  if (frame_) {
    rewind_to_start();
    adapter_.tree_set_plans(s);
    log_.begin_run(frame_->actors.size());
    for (Tick t = 0; t < frame_->horizon; ++t) {
      for (sim::Party* p : frame_->actors) p->tick(*frame_->chains, t);
      frame_->chains->produce_all(t);
    }
    out.outcomes = adapter_.tree_collect(s);
    for (const sim::ConsultEntry& e : log_.entries()) {
      sig_mix(h, e.party);
      sig_mix(h, static_cast<std::uint64_t>(e.ordinal));
      sig_mix(h, static_cast<std::uint64_t>(e.pol.choice));
      sig_mix(h, static_cast<std::uint64_t>(e.pol.delay));
      sig_mix(h, static_cast<std::uint64_t>(e.tick));
    }
  } else {
    out.outcomes = adapter_.run(s);
  }
  out.conforming_audited =
      sim::audit_schedule(s.label, out.outcomes, out.violations);
  if (!frame_) mix_outcomes(h, out);
  out.signature = h;
  return out;
}

}  // namespace xchain::fuzz
