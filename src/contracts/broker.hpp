#pragma once

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/hashkey.hpp"
#include "graph/digraph.hpp"

namespace xchain::contracts {

/// Per-chain contract for the hedged broker protocol (paper §8).
///
/// Each of the two chains (tickets, coins) hosts two arcs of the broker
/// digraph: an *escrow arc* (X, A) funded with fresh assets by X, and a
/// *trading arc* (A, Y) that Alice funds *out of* the escrow bucket during
/// the trading phase (she brokers with assets she does not own). On the
/// coin chain the trade moves 100 of Carol's 101 escrowed coins toward
/// Bob; the residual coin is Alice's spread.
///
/// Premiums:
///  * the escrow premium E(X, A) is deposited by X and follows §7
///    semantics on the escrow arc (activation by redemption premiums,
///    refund on escrow, award to A if the asset never arrives);
///  * the trading premium T(A, Y) is deposited by Alice and mirrors the
///    escrow premium on the trading arc (refund on trade, award to Y if
///    the trade never happens after activation);
///  * redemption premiums per arc and per hashlock follow Equation 1, with
///    signature-authenticated paths, exactly as in §7.
///
/// Every asset bucket redeems to its arc's recipient once all three
/// hashkeys have been presented on that arc in time; at the final deadline
/// un-redeemed buckets refund to the *original owner* X (trading-phase
/// transfers are conditional).
class BrokerChainContract : public chain::SnapshotState<BrokerChainContract> {
 public:
  /// Selects which of the contract's two arcs an operation refers to.
  enum class Which : std::uint8_t { kEscrowArc = 0, kTradingArc = 1 };

  struct Hashlock {
    PartyId leader = kNoParty;
    crypto::Digest digest{};
  };

  struct Params {
    graph::Digraph g;
    /// Instance namespacing offset: arcs, hashlock leaders, and party_keys
    /// all speak protocol-local vertex ids; the contract translates
    /// senders (global - base) on entry and payout addresses (local +
    /// base) on exit. Base 0 = the historical private-world identity map.
    PartyId party_base = 0;
    graph::Arc escrow_arc{};   ///< (X, A)
    graph::Arc trading_arc{};  ///< (A, Y)
    chain::Symbol symbol;      ///< asset traded on this chain
    Amount escrow_amount = 0;  ///< e.g. 101 coins / all tickets
    Amount trading_amount = 0; ///< e.g. 100 coins / all tickets
    Amount premium_unit = 0;   ///< p
    Amount escrow_premium = 0; ///< E(X, A) = T(A)
    Amount trading_premium = 0;///< T(A, Y) = R_Y(Y)
    std::vector<Hashlock> hashlocks;            ///< one per party (all lead)
    std::vector<crypto::PublicKey> party_keys;  ///< by PartyId
    Tick delta = 1;
    Tick escrow_premium_deadline = 0;
    Tick trading_premium_deadline = 0;
    /// Start of the redemption-premium relay phase: a deposit whose path
    /// has |q| hops is timely until premium_base + |q| * delta (the §7.1
    /// per-path rule — keeps the backward flow all-or-nothing per
    /// leader). 0 means "flat redemption_premium_deadline only".
    Tick premium_base = 0;
    Tick redemption_premium_deadline = 0;
    Tick escrow_deadline = 0;
    Tick trading_deadline = 0;
    Tick hashkey_base = 0;
  };

  explicit BrokerChainContract(Params p);

  // -- Transactions ----------------------------------------------------------

  void deposit_escrow_premium(chain::TxContext& ctx);
  void deposit_trading_premium(chain::TxContext& ctx);
  void deposit_redemption_premium(chain::TxContext& ctx, Which arc,
                                  std::size_t leader_index,
                                  const graph::Path& q,
                                  const crypto::Signature& path_sig);

  /// X escrows the principal into the escrow bucket; refunds E(X, A).
  void escrow(chain::TxContext& ctx);

  /// Alice moves `trading_amount` from the escrow bucket into the trading
  /// bucket; refunds T(A, Y).
  void trade(chain::TxContext& ctx);

  void present_hashkey(chain::TxContext& ctx, Which arc,
                       std::size_t leader_index, const crypto::Hashkey& key);

  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse). The signature
  /// verification memo survives: it caches pure computation.
  void reset() override;

  // -- Public state -----------------------------------------------------------

  const Params& params() const { return p_; }
  bool escrowed() const { return escrowed_at_.has_value(); }
  bool traded() const { return traded_at_.has_value(); }
  std::optional<Tick> escrowed_at() const { return escrowed_at_; }

  bool escrow_premium_deposited() const { return ep_.deposited; }
  bool escrow_premium_refunded() const { return ep_.refunded; }
  bool escrow_premium_awarded() const { return ep_.awarded; }
  bool trading_premium_deposited() const { return tp_.deposited; }
  bool trading_premium_refunded() const { return tp_.refunded; }
  bool trading_premium_awarded() const { return tp_.awarded; }

  bool premium_activated(Which arc) const;
  bool redemption_premium_deposited(Which arc, std::size_t leader) const {
    return slot(arc, leader).deposited_at.has_value();
  }
  Amount redemption_premium_amount(Which arc, std::size_t leader) const {
    return slot(arc, leader).amount;
  }
  /// The (public) path a deposited redemption premium carried — what a
  /// relaying party extends during the backward flow.
  const graph::Path& redemption_premium_path(Which arc,
                                             std::size_t leader) const {
    return slot(arc, leader).path;
  }

  bool hashlock_open(Which arc, std::size_t leader) const {
    return keys_of(arc)[leader].has_value();
  }
  const std::optional<crypto::Hashkey>& presented_hashkey(
      Which arc, std::size_t leader) const {
    return keys_of(arc)[leader];
  }

  /// Asset currently in each bucket.
  Amount escrow_bucket() const { return escrow_bucket_; }
  Amount trading_bucket() const { return trading_bucket_; }
  bool bucket_redeemed(Which arc) const {
    return arc == Which::kEscrowArc ? escrow_redeemed_ : trading_redeemed_;
  }
  bool refunded() const { return refunded_; }

  Tick path_deadline(std::size_t len) const {
    return p_.hashkey_base + static_cast<Tick>(diam_ + len) * p_.delta;
  }

 private:
  struct SimplePremium {
    Amount amount = 0;
    PartyId payer = kNoParty;
    bool deposited = false;
    bool refunded = false;
    bool awarded = false;

    void state_hash_into(std::uint64_t& h) const {
      chain::state_hash_values(h, deposited, refunded, awarded);
    }
  };
  struct RedemptionSlot {
    Amount amount = 0;
    graph::Path path;
    std::optional<Tick> deposited_at;
    bool refunded = false;
    bool awarded = false;

    void state_hash_into(std::uint64_t& h) const {
      chain::state_hash_values(h, amount, path, deposited_at, refunded,
                               awarded);
    }
  };

  const graph::Arc& arc_of(Which a) const {
    return a == Which::kEscrowArc ? p_.escrow_arc : p_.trading_arc;
  }
  /// Local vertex id -> on-chain account (instance namespacing).
  chain::Address acct(PartyId local) const {
    return chain::Address::party(p_.party_base + local);
  }
  /// Global sender -> local vertex id (wraps harmlessly for foreign
  /// senders — the id can never match a local vertex).
  PartyId local_sender(const chain::TxContext& ctx) const;
  std::vector<RedemptionSlot>& slots_of(Which a) {
    return a == Which::kEscrowArc ? rp_escrow_ : rp_trading_;
  }
  const std::vector<RedemptionSlot>& slots_of(Which a) const {
    return a == Which::kEscrowArc ? rp_escrow_ : rp_trading_;
  }
  const RedemptionSlot& slot(Which a, std::size_t leader) const {
    return slots_of(a)[leader];
  }
  std::vector<std::optional<crypto::Hashkey>>& keys_of(Which a) {
    return a == Which::kEscrowArc ? keys_escrow_ : keys_trading_;
  }
  const std::vector<std::optional<crypto::Hashkey>>& keys_of(Which a) const {
    return a == Which::kEscrowArc ? keys_escrow_ : keys_trading_;
  }
  bool all_open(Which a) const;
  void pay_simple(chain::TxContext& ctx, SimplePremium& prem, PartyId to,
                  bool award, const char* label);
  void try_redeem(chain::TxContext& ctx, Which arc);

  Params p_;
  SymbolId sym_ = SymbolTable::intern(p_.symbol);
  std::size_t diam_;
  crypto::VerifyCache vcache_;
  /// Equation 1 amounts per (arc sender, deposit path) — pure in (g, p),
  /// so it survives reset() like the signature memo.
  std::map<std::pair<PartyId, graph::Path>, Amount> rp_amount_memo_;
  SimplePremium ep_;
  SimplePremium tp_;
  std::vector<RedemptionSlot> rp_escrow_;
  std::vector<RedemptionSlot> rp_trading_;
  std::vector<std::optional<crypto::Hashkey>> keys_escrow_;
  std::vector<std::optional<crypto::Hashkey>> keys_trading_;
  std::optional<Tick> escrowed_at_;
  std::optional<Tick> traded_at_;
  Amount escrow_bucket_ = 0;
  Amount trading_bucket_ = 0;
  bool escrow_redeemed_ = false;
  bool trading_redeemed_ = false;
  bool refunded_ = false;

  /// Every mutable member (exactly what reset() clears; the signature and
  /// Equation-1 memos cache pure computation and are deliberately absent).
  auto state_tie() {
    return std::tie(ep_, tp_, rp_escrow_, rp_trading_, keys_escrow_,
                    keys_trading_, escrowed_at_, traded_at_, escrow_bucket_,
                    trading_bucket_, escrow_redeemed_, trading_redeemed_,
                    refunded_);
  }
  friend chain::SnapshotState<BrokerChainContract>;
};

}  // namespace xchain::contracts
