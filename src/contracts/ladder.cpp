#include "contracts/ladder.hpp"

#include <stdexcept>

namespace xchain::contracts {

LadderContract::LadderContract(Params p) : p_(std::move(p)) {
  if (p_.rungs.empty()) {
    throw std::invalid_argument("LadderContract: at least the principal rung");
  }
  for (std::size_t j = 0; j + 1 < p_.rungs.size(); ++j) {
    if (p_.rungs[j].deposit_deadline <= p_.rungs[j + 1].deposit_deadline) {
      throw std::invalid_argument(
          "LadderContract: deadlines must decrease with rung index");
    }
  }
  for (std::size_t j = 0; j < p_.rungs.size(); ++j) {
    const auto& released_by = p_.rungs[j].released_by;
    if (released_by && *released_by >= j) {
      throw std::invalid_argument(
          "LadderContract: released_by must be a lower rung");
    }
  }
  rungs_.reserve(p_.rungs.size());
  for (const RungSpec& spec : p_.rungs) {
    rungs_.push_back(Rung{spec, {}, {}, {}});
  }
}

PartyId LadderContract::other_party(PartyId p) const {
  // Exactly two parties take part in a ladder: the principal owner and the
  // counterparty.
  const PartyId owner = rungs_[0].spec.depositor;
  return p == owner ? p_.counterparty : owner;
}

SymbolId LadderContract::symbol_of(std::size_t index,
                                   const chain::TxContext& ctx) const {
  return index == 0 ? sym_ : ctx.native_id();
}

void LadderContract::deposit(chain::TxContext& ctx, std::size_t index) {
  if (dead_ || index >= rungs_.size()) return;
  Rung& r = rungs_[index];
  if (ctx.sender() != r.spec.depositor || r.deposited_at) return;
  if (ctx.now() > r.spec.deposit_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "deposit_rejected",
               "rung " + std::to_string(index) + " past deadline");
    }
    return;
  }
  if (index + 1 < rungs_.size() && !rungs_[index + 1].deposited_at) {
    if (ctx.tracing()) {
      ctx.emit(id(), "deposit_rejected",
               "rung " + std::to_string(index) + " out of order");
    }
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(r.spec.depositor),
                             address(), symbol_of(index, ctx),
                             r.spec.amount)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "deposit_rejected",
               "rung " + std::to_string(index) + " insufficient balance");
    }
    return;
  }
  r.deposited_at = ctx.now();
  r.state = RungState::kHeld;
  if (ctx.tracing()) {
    ctx.emit(id(), index == 0 ? "escrowed" : "rung_deposited",
             "rung " + std::to_string(index) + " amount " +
                 std::to_string(r.spec.amount));
  }

  // RELEASE rule: this deposit may end higher rungs' guard duty.
  for (std::size_t j = index + 1; j < rungs_.size(); ++j) {
    if (rungs_[j].state == RungState::kHeld &&
        rungs_[j].spec.released_by == index) {
      resolve(ctx, j, rungs_[j].spec.depositor, RungState::kRefunded);
    }
  }
}

void LadderContract::redeem(chain::TxContext& ctx,
                            const crypto::Bytes& preimage) {
  if (dead_) return;
  Rung& principal = rungs_[0];
  if (principal.state != RungState::kHeld) return;
  if (ctx.now() > p_.redemption_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "redeem_rejected", "past redemption deadline");
    }
    return;
  }
  if (!crypto::opens(p_.hashlock, preimage)) {
    if (ctx.tracing()) ctx.emit(id(), "redeem_rejected", "bad preimage");
    return;
  }
  preimage_ = preimage;
  resolve(ctx, 0, p_.counterparty, RungState::kRedeemed);
  // FINAL rule: redemption refunds the counterparty's premium (rung 1).
  if (rungs_.size() > 1 && rungs_[1].state == RungState::kHeld) {
    resolve(ctx, 1, rungs_[1].spec.depositor, RungState::kRefunded);
  }
}

void LadderContract::resolve(chain::TxContext& ctx, std::size_t index,
                             PartyId to, RungState final_state) {
  Rung& r = rungs_[index];
  ctx.ledger().transfer(address(), chain::Address::party(to),
                        symbol_of(index, ctx), r.spec.amount);
  r.state = final_state;
  r.resolved_at = ctx.now();
  const char* kind = final_state == RungState::kRefunded    ? "rung_refunded"
                     : final_state == RungState::kForfeited ? "rung_forfeited"
                                                            : "redeemed";
  if (ctx.tracing()) {
    ctx.emit(id(), kind,
             "rung " + std::to_string(index) + " to " + std::to_string(to));
  }
}

void LadderContract::kill(chain::TxContext& ctx, std::size_t missing) {
  dead_ = true;
  if (ctx.tracing()) {
    ctx.emit(id(), "ladder_dead",
             "rung " + std::to_string(missing) + " missing at deadline");
  }
  // DEFAULT rule: refund every held rung, except a principal guard when
  // the principal itself defaulted — that one compensates the
  // counterparty.
  const bool principal_default = missing == 0;
  const PartyId defaulter = rungs_[missing].spec.depositor;
  for (std::size_t j = 0; j < rungs_.size(); ++j) {
    if (rungs_[j].state != RungState::kHeld) continue;
    if (principal_default && rungs_[j].spec.guards_principal) {
      resolve(ctx, j, other_party(defaulter), RungState::kForfeited);
    } else {
      resolve(ctx, j, rungs_[j].spec.depositor, RungState::kRefunded);
    }
  }
}

void LadderContract::on_block(chain::TxContext& ctx) {
  if (dead_) return;
  // DEFAULT: scan from the earliest deadline (highest rung) down; kill at
  // the first expired hole. (ORDER means nothing below a hole can exist.)
  for (std::size_t j = rungs_.size(); j-- > 0;) {
    const Rung& r = rungs_[j];
    if (!r.deposited_at && ctx.now() > r.spec.deposit_deadline) {
      kill(ctx, j);
      return;
    }
    if (!r.deposited_at) break;  // not yet due; nothing below is either
  }
  // FINAL: unredeemed principal past the redemption deadline.
  if (rungs_[0].state == RungState::kHeld &&
      ctx.now() > p_.redemption_deadline) {
    const PartyId owner = rungs_[0].spec.depositor;
    resolve(ctx, 0, owner, RungState::kRefunded);
    if (rungs_.size() > 1 && rungs_[1].state == RungState::kHeld) {
      resolve(ctx, 1, owner, RungState::kForfeited);
    }
    // Any still-held guard (released only by events that can no longer
    // happen) is refunded.
    for (std::size_t j = 2; j < rungs_.size(); ++j) {
      if (rungs_[j].state == RungState::kHeld) {
        resolve(ctx, j, rungs_[j].spec.depositor, RungState::kRefunded);
      }
    }
  }
}

void LadderContract::reset() {
  for (Rung& r : rungs_) {
    r.state = RungState::kEmpty;
    r.deposited_at.reset();
    r.resolved_at.reset();
  }
  dead_ = false;
  preimage_.reset();
}

}  // namespace xchain::contracts
