#include "contracts/sealed_auction.hpp"

#include <algorithm>

#include "crypto/sha256.hpp"

namespace xchain::contracts {

SealedCoinAuctionContract::SealedCoinAuctionContract(Params p)
    : p_(std::move(p)),
      commitments_(p_.terms.bidders.size()),
      revealed_(p_.terms.bidders.size()),
      keys_(p_.terms.bidders.size()) {}

crypto::Digest SealedCoinAuctionContract::commitment_of(
    Amount bid, const crypto::Bytes& nonce) {
  crypto::Sha256 h;
  crypto::Bytes msg;
  crypto::append_u64(msg, static_cast<std::uint64_t>(bid));
  crypto::append(msg, nonce);
  h.update(msg);
  return h.finish();
}

std::optional<std::size_t> SealedCoinAuctionContract::winner() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < revealed_.size(); ++i) {
    if (revealed_[i] && (!best || *revealed_[i] > *revealed_[*best])) {
      best = i;
    }
  }
  return best;
}

void SealedCoinAuctionContract::endow_premium(chain::TxContext& ctx) {
  if (ctx.sender() != p_.terms.auctioneer || premium_endowed_) return;
  if (ctx.now() > p_.terms.bid_deadline) return;
  const Amount total =
      p_.premium_per_bidder * static_cast<Amount>(commitments_.size());
  if (!ctx.ledger().transfer(chain::Address::party(p_.terms.auctioneer),
                             address(), ctx.native_id(), total)) {
    return;
  }
  premium_endowed_ = true;
  if (ctx.tracing()) ctx.emit(id(), "premium_endowed", std::to_string(total));
}

void SealedCoinAuctionContract::commit_bid(chain::TxContext& ctx,
                                           const crypto::Digest& commitment) {
  if (!premium_endowed_) {
    if (ctx.tracing()) ctx.emit(id(), "commit_rejected", "no premium endowment");
    return;
  }
  if (ctx.now() > p_.terms.bid_deadline) {
    if (ctx.tracing()) ctx.emit(id(), "commit_rejected", "past commit phase");
    return;
  }
  const auto it = std::find(p_.terms.bidders.begin(), p_.terms.bidders.end(),
                            ctx.sender());
  if (it == p_.terms.bidders.end()) return;
  const std::size_t i =
      static_cast<std::size_t>(it - p_.terms.bidders.begin());
  if (commitments_[i]) return;
  if (!ctx.ledger().transfer(chain::Address::party(ctx.sender()), address(),
                             ctx.native_id(), p_.collateral)) {
    if (ctx.tracing()) ctx.emit(id(), "commit_rejected", "insufficient collateral");
    return;
  }
  commitments_[i] = commitment;
  if (ctx.tracing()) {
    ctx.emit(id(), "bid_committed", "bidder " + std::to_string(i));
  }
}

void SealedCoinAuctionContract::reveal_bid(chain::TxContext& ctx, Amount bid,
                                           const crypto::Bytes& nonce) {
  const auto it = std::find(p_.terms.bidders.begin(), p_.terms.bidders.end(),
                            ctx.sender());
  if (it == p_.terms.bidders.end()) return;
  const std::size_t i =
      static_cast<std::size_t>(it - p_.terms.bidders.begin());
  if (!commitments_[i] || revealed_[i]) return;
  if (ctx.now() > p_.reveal_deadline) {
    if (ctx.tracing()) ctx.emit(id(), "reveal_rejected", "past reveal phase");
    return;
  }
  if (bid <= 0 || bid > p_.collateral ||
      commitment_of(bid, nonce) != *commitments_[i]) {
    if (ctx.tracing()) ctx.emit(id(), "reveal_rejected", "bad opening");
    return;
  }
  revealed_[i] = bid;
  // The uniform collateral hid the bid; refund the excess now.
  ctx.ledger().transfer(address(), chain::Address::party(ctx.sender()),
                        ctx.native_id(), p_.collateral - bid);
  if (ctx.tracing()) {
    ctx.emit(id(), "bid_revealed",
             "bidder " + std::to_string(i) + " bid " + std::to_string(bid));
  }
}

void SealedCoinAuctionContract::present_hashkey(chain::TxContext& ctx,
                                                std::size_t i,
                                                const crypto::Hashkey& key) {
  if (i >= keys_.size() || keys_[i] || settled_) return;
  if (!auction_hashkey_valid(p_.terms, i, key, ctx.now(), &vcache_)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "hashkey_rejected", "bidder " + std::to_string(i));
    }
    return;
  }
  keys_[i] = key;
  if (ctx.tracing()) {
    ctx.emit(id(), "hashkey_presented", "bidder " + std::to_string(i));
  }
}

void SealedCoinAuctionContract::on_block(chain::TxContext& ctx) {
  if (settled_ || ctx.now() <= p_.terms.commit_time) return;
  settled_ = true;

  const auto win = winner();
  bool only_winner_key = win.has_value() && keys_[*win].has_value();
  for (std::size_t i = 0; only_winner_key && i < keys_.size(); ++i) {
    if (i != *win && keys_[i]) only_winner_key = false;
  }

  // Unrevealed commitments drop out: their collateral is refunded in full
  // regardless of the outcome below.
  for (std::size_t i = 0; i < commitments_.size(); ++i) {
    if (commitments_[i] && !revealed_[i]) {
      ctx.ledger().transfer(address(),
                            chain::Address::party(p_.terms.bidders[i]),
                            ctx.native_id(), p_.collateral);
    }
  }

  if (only_winner_key) {
    clean_ = true;
    for (std::size_t i = 0; i < revealed_.size(); ++i) {
      if (!revealed_[i]) continue;
      const PartyId to =
          i == *win ? p_.terms.auctioneer : p_.terms.bidders[i];
      ctx.ledger().transfer(address(), chain::Address::party(to),
                            ctx.native_id(), *revealed_[i]);
    }
    if (premium_endowed_) {
      ctx.ledger().transfer(
          address(), chain::Address::party(p_.terms.auctioneer),
          ctx.native_id(),
          p_.premium_per_bidder * static_cast<Amount>(commitments_.size()));
    }
    if (ctx.tracing()) ctx.emit(id(), "settled", "winner paid");
    return;
  }

  Amount endowment_left =
      premium_endowed_
          ? p_.premium_per_bidder * static_cast<Amount>(commitments_.size())
          : 0;
  for (std::size_t i = 0; i < revealed_.size(); ++i) {
    if (!revealed_[i]) continue;
    ctx.ledger().transfer(address(),
                          chain::Address::party(p_.terms.bidders[i]),
                          ctx.native_id(), *revealed_[i]);
    if (endowment_left >= p_.premium_per_bidder) {
      ctx.ledger().transfer(address(),
                            chain::Address::party(p_.terms.bidders[i]),
                            ctx.native_id(), p_.premium_per_bidder);
      endowment_left -= p_.premium_per_bidder;
    }
  }
  if (endowment_left > 0) {
    ctx.ledger().transfer(address(),
                          chain::Address::party(p_.terms.auctioneer),
                          ctx.native_id(), endowment_left);
  }
  if (ctx.tracing()) {
    ctx.emit(id(), "settled", "bids refunded with premiums");
  }
}

void SealedCoinAuctionContract::reset() {
  premium_endowed_ = false;
  for (auto& c : commitments_) c.reset();
  for (auto& r : revealed_) r.reset();
  for (auto& k : keys_) k.reset();
  settled_ = false;
  clean_ = false;
}

}  // namespace xchain::contracts
