#pragma once

#include <optional>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/secret.hpp"

namespace xchain::contracts {

/// Premium-carrying escrow contract for the hedged two-party swap (paper
/// §5.2, Figure 1).
///
/// One instance lives on each chain. The instance escrows one party's
/// principal and holds the *counterparty's* premium in the chain's native
/// coin:
///
///   * apricot chain: Alice's principal + Bob's premium p_b,
///   * banana chain: Bob's principal + Alice's premium p_a + p_b.
///
/// Rules (verbatim from §5.2):
///   * premium refunds to the payer if the principal is never escrowed by
///     the escrow deadline;
///   * if the principal is escrowed and redeemed in time, the premium is
///     refunded (and the principal goes to the redeemer);
///   * if the principal is escrowed but NOT redeemed by the redemption
///     deadline, the premium is awarded to the principal's owner, and the
///     principal is refunded.
///
/// All deadlines are inclusive (timely iff block height <= deadline; the
/// timeout sweep fires at height > deadline).
class HedgedSwapContract : public chain::SnapshotState<HedgedSwapContract> {
 public:
  struct Params {
    PartyId principal_owner = kNoParty;  ///< escrows the principal
    PartyId premium_payer = kNoParty;    ///< deposits premium, redeems
    chain::Symbol principal_symbol;
    Amount principal_amount = 0;
    Amount premium_amount = 0;  ///< in the chain's native coin
    crypto::Digest hashlock{};
    Tick premium_deadline = 0;
    Tick escrow_deadline = 0;
    Tick redemption_deadline = 0;
  };

  explicit HedgedSwapContract(Params p) : p_(std::move(p)) {}

  /// Deposits the premium (sender must be the premium payer, before the
  /// premium deadline).
  void deposit_premium(chain::TxContext& ctx);

  /// Escrows the principal (sender must be the owner, before the escrow
  /// deadline).
  void escrow_principal(chain::TxContext& ctx);

  /// Redeems the principal with the hashlock preimage: principal moves to
  /// the premium payer and the premium is refunded to them. The preimage
  /// becomes public.
  void redeem(chain::TxContext& ctx, const crypto::Bytes& preimage);

  /// Timeout sweep:
  ///  * at the escrow deadline with no principal: refund the premium;
  ///  * at the redemption deadline with an unredeemed principal: refund the
  ///    principal to its owner and award them the premium.
  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse).
  void reset() override;

  /// The §5.2 deadline ladder in scheduled-step order — premium deposit,
  /// principal escrow, redemption — for Scheduler::validate_deadlines'
  /// ">= Delta per step" check.
  std::vector<Tick> deadline_schedule() const override {
    return {p_.premium_deadline, p_.escrow_deadline, p_.redemption_deadline};
  }

  // -- Public state ---------------------------------------------------------
  const Params& params() const { return p_; }
  bool premium_deposited() const { return premium_at_.has_value(); }
  bool escrowed() const { return escrowed_at_.has_value(); }
  bool redeemed() const { return redeemed_; }
  bool principal_refunded() const { return principal_refunded_; }
  bool premium_refunded() const { return premium_refunded_; }
  bool premium_awarded() const { return premium_awarded_; }

  const std::optional<crypto::Bytes>& revealed_preimage() const {
    return preimage_;
  }

  std::optional<Tick> premium_deposited_at() const { return premium_at_; }
  std::optional<Tick> escrowed_at() const { return escrowed_at_; }
  std::optional<Tick> principal_resolved_at() const {
    return principal_resolved_at_;
  }
  std::optional<Tick> premium_resolved_at() const {
    return premium_resolved_at_;
  }

 private:
  bool premium_resolved() const {
    return premium_refunded_ || premium_awarded_;
  }
  bool principal_resolved() const {
    return redeemed_ || principal_refunded_;
  }
  void resolve_premium(chain::TxContext& ctx, PartyId to, bool award);

  Params p_;
  SymbolId sym_ = SymbolTable::intern(p_.principal_symbol);
  std::optional<Tick> premium_at_;
  std::optional<Tick> escrowed_at_;
  std::optional<Tick> principal_resolved_at_;
  std::optional<Tick> premium_resolved_at_;
  bool redeemed_ = false;
  bool principal_refunded_ = false;
  bool premium_refunded_ = false;
  bool premium_awarded_ = false;
  std::optional<crypto::Bytes> preimage_;

  /// Every mutable member (exactly what reset() clears) — the checkpoint
  /// stack and the rewind-integrity hash both derive from this list.
  auto state_tie() {
    return std::tie(premium_at_, escrowed_at_, principal_resolved_at_,
                    premium_resolved_at_, redeemed_, principal_refunded_,
                    premium_refunded_, premium_awarded_, preimage_);
  }
  friend chain::SnapshotState<HedgedSwapContract>;
};

}  // namespace xchain::contracts
