#pragma once

#include <optional>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/secret.hpp"

namespace xchain::contracts {

/// Premium-ladder escrow contract for bootstrapped swaps (paper §6,
/// Figure 2).
///
/// One ladder lives on each chain. Rung 0 is the principal; rung j >= 1 is
/// a premium deposit; rungs are deposited highest-index (smallest amount)
/// first, and depositors alternate between the two parties.
///
/// Rules:
///
///  * ORDER:   rung j may be deposited only after rung j+1 (same chain).
///  * RELEASE: each premium rung j >= 2 declares `released_by`: the rung
///             whose (same-chain) deposit ends its guard duty and refunds
///             it. Ordinary rungs release on the next deposit ("once the
///             next round finishes, the previous round's premiums are
///             refunded"); the persistent follower guard A^(2) releases
///             only on the principal ("Alice's A^(2) should be refunded
///             after Alice deposits her principal").
///  * DEFAULT: if rung j is missing at its deadline, the ladder dies and
///             every held rung is refunded — except a rung flagged
///             `guards_principal` when the missing rung is the principal:
///             that rung (the principal owner's own deposit) is forfeited
///             to the counterparty ("If Alice does not deposit her
///             principal, Bob receives A^(2) as compensation for locking
///             up A^(1)"). Premium-phase defaults forfeit nothing: the
///             locked values there are the small, accepted residual risk
///             (§4, §5.2).
///  * FINAL:   rung 1 and the principal follow §5.2: redemption with the
///             preimage pays the counterparty and refunds rung 1; an
///             escrowed-but-unredeemed principal is refunded to its owner
///             and rung 1 is awarded to the owner.
///
/// A ladder with one premium rung is exactly the hedged two-party contract
/// of §5.2 (verified against HedgedSwapContract in the tests).
///
/// All deadlines are inclusive; sweeps fire the first block past them.
class LadderContract : public chain::SnapshotState<LadderContract> {
 public:
  /// Per-rung static configuration. Rung 0's amount is in
  /// `principal_symbol`; all other rungs are native-coin premiums.
  struct RungSpec {
    PartyId depositor = kNoParty;
    Amount amount = 0;
    Tick deposit_deadline = 0;
    /// Premium rungs (j >= 2): deposit of this rung index refunds the rung.
    std::optional<std::size_t> released_by;
    /// Forfeited to the counterparty if the principal (rung 0) defaults.
    bool guards_principal = false;
  };

  struct Params {
    /// rungs[0] = principal, rungs[1..r] = premiums; deadlines must be
    /// strictly decreasing in index (higher rungs are deposited earlier).
    std::vector<RungSpec> rungs;
    PartyId counterparty = kNoParty;  ///< redeems the principal
    chain::Symbol principal_symbol;
    crypto::Digest hashlock{};
    Tick redemption_deadline = 0;
  };

  explicit LadderContract(Params p);

  /// Deposits rung `index`. Requires: sender is the rung's depositor, rung
  /// `index + 1` already deposited, timely, ladder alive.
  void deposit(chain::TxContext& ctx, std::size_t index);

  /// Redeems the principal with the preimage (pays the counterparty,
  /// refunds rung 1, publishes the preimage).
  void redeem(chain::TxContext& ctx, const crypto::Bytes& preimage);

  /// Timeout sweep implementing DEFAULT and FINAL above.
  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse).
  void reset() override;

  /// The scheduled-step deadline ladder: rung deposits run highest index
  /// first (deposit deadlines are strictly decreasing in rung index), so
  /// the step order is the reversed rung list, followed by redemption.
  std::vector<Tick> deadline_schedule() const override {
    std::vector<Tick> ladder;
    ladder.reserve(p_.rungs.size() + 1);
    for (std::size_t j = p_.rungs.size(); j-- > 0;) {
      ladder.push_back(p_.rungs[j].deposit_deadline);
    }
    ladder.push_back(p_.redemption_deadline);
    return ladder;
  }

  // -- Public state ---------------------------------------------------------
  enum class RungState : std::uint8_t {
    kEmpty,      ///< not deposited
    kHeld,       ///< deposited, unresolved
    kRefunded,   ///< returned to depositor
    kForfeited,  ///< awarded to the other party
    kRedeemed,   ///< principal only: claimed by counterparty
  };

  const Params& params() const { return p_; }
  RungState rung_state(std::size_t index) const {
    return rungs_[index].state;
  }
  bool rung_deposited(std::size_t index) const {
    return rungs_[index].deposited_at.has_value();
  }
  std::optional<Tick> rung_deposited_at(std::size_t index) const {
    return rungs_[index].deposited_at;
  }
  std::optional<Tick> rung_resolved_at(std::size_t index) const {
    return rungs_[index].resolved_at;
  }
  bool dead() const { return dead_; }
  bool principal_redeemed() const {
    return rungs_[0].state == RungState::kRedeemed;
  }
  const std::optional<crypto::Bytes>& revealed_preimage() const {
    return preimage_;
  }

 private:
  struct Rung {
    RungSpec spec;
    RungState state = RungState::kEmpty;
    std::optional<Tick> deposited_at;
    std::optional<Tick> resolved_at;

    void state_hash_into(std::uint64_t& h) const {
      // spec is immutable configuration; only the live fields hash.
      chain::state_hash_values(h, state, deposited_at, resolved_at);
    }
  };

  SymbolId symbol_of(std::size_t index, const chain::TxContext& ctx) const;
  void resolve(chain::TxContext& ctx, std::size_t index, PartyId to,
               RungState final_state);
  void kill(chain::TxContext& ctx, std::size_t missing_index);
  PartyId other_party(PartyId p) const;

  Params p_;
  SymbolId sym_ = SymbolTable::intern(p_.principal_symbol);
  std::vector<Rung> rungs_;
  bool dead_ = false;
  std::optional<crypto::Bytes> preimage_;

  /// Every mutable member (exactly what reset() clears).
  auto state_tie() { return std::tie(rungs_, dead_, preimage_); }
  friend chain::SnapshotState<LadderContract>;
};

}  // namespace xchain::contracts
