#include "contracts/htlc.hpp"

namespace xchain::contracts {

void HtlcContract::fund(chain::TxContext& ctx) {
  if (ctx.sender() != p_.funder || funded() || resolved()) return;
  if (ctx.now() > p_.escrow_deadline) {
    if (ctx.tracing()) ctx.emit(id(), "fund_rejected", "past escrow deadline");
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(p_.funder), address(),
                             sym_, p_.amount)) {
    if (ctx.tracing()) ctx.emit(id(), "fund_rejected", "insufficient balance");
    return;
  }
  funded_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "escrowed", p_.symbol + ":" + std::to_string(p_.amount));
  }
}

void HtlcContract::redeem(chain::TxContext& ctx,
                          const crypto::Bytes& preimage) {
  if (!funded() || resolved()) return;
  if (ctx.now() > p_.timelock) {
    if (ctx.tracing()) ctx.emit(id(), "redeem_rejected", "past timelock");
    return;
  }
  if (!crypto::opens(p_.hashlock, preimage)) {
    if (ctx.tracing()) ctx.emit(id(), "redeem_rejected", "bad preimage");
    return;
  }
  preimage_ = preimage;
  ctx.ledger().transfer(address(), chain::Address::party(p_.counterparty),
                        sym_, p_.amount);
  redeemed_ = true;
  resolved_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "redeemed", "to " + std::to_string(p_.counterparty));
  }
}

void HtlcContract::on_block(chain::TxContext& ctx) {
  if (funded() && !resolved() && ctx.now() > p_.timelock) {
    ctx.ledger().transfer(address(), chain::Address::party(p_.funder), sym_,
                          p_.amount);
    refunded_ = true;
    resolved_at_ = ctx.now();
    if (ctx.tracing()) {
      ctx.emit(id(), "refunded", "to " + std::to_string(p_.funder));
    }
  }
}

void HtlcContract::reset() {
  funded_at_.reset();
  resolved_at_.reset();
  redeemed_ = false;
  refunded_ = false;
  preimage_.reset();
}

}  // namespace xchain::contracts
