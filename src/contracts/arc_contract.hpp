#pragma once

#include <map>
#include <optional>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/hashkey.hpp"
#include "crypto/secret.hpp"
#include "graph/digraph.hpp"

namespace xchain::contracts {

/// Escrow contract for one arc (u, v) of a hedged multi-party swap (paper
/// §7). It lives on the chain holding u's asset and manages:
///
///  * the principal: u's asset, redeemed to v when ALL leaders' hashkeys
///    have been presented in time, refunded to u otherwise;
///  * the escrow premium E(u, v) (Equation 2): deposited by u, *activated*
///    once every redemption premium has arrived on this arc, then awarded
///    to v if the asset is not escrowed in time (refunded to u the moment
///    the asset is escrowed, or if never activated);
///  * one redemption premium R_i(q, u) per leader (Equation 1): deposited
///    by v with a signature-authenticated path q (v = q.front(), leader =
///    q.back()); refunded to v when v presents leader i's hashkey on this
///    arc, awarded to u if that hashkey does not appear by the path's
///    deadline.
///
/// Hashkey and premium-path timeouts follow the paper's rule: a path of
/// length |q| expires at hashkey_base + (diam(G) + |q|) * Delta, where
/// hashkey_base is the start of the hashkey-release phase (the paper
/// measures from protocol start; with premium phases prepended, the engine
/// rebases — see DESIGN.md).
///
/// The contract enforces well-formedness everywhere (§3.2): premium
/// amounts must match Equation 1 exactly, paths must be real paths of G,
/// signatures must verify. This is what confines Byzantine parties to
/// sore-loser behaviour.
///
/// All deadlines are inclusive.
class MultiPartyArcContract
    : public chain::SnapshotState<MultiPartyArcContract> {
 public:
  struct Hashlock {
    PartyId leader = kNoParty;
    crypto::Digest digest{};
  };

  struct Params {
    graph::Digraph g;
    graph::Arc arc{};               ///< (u, v): u escrows for v
    chain::Symbol asset_symbol;
    Amount asset_amount = 0;
    Amount premium_unit = 0;        ///< p in Equations 1 and 2
    Amount escrow_premium = 0;      ///< E(u, v) from Equation 2
    std::vector<Hashlock> hashlocks;
    std::vector<crypto::PublicKey> party_keys;  ///< indexed by PartyId
    Tick delta = 1;
    /// Start of premium phase 2: a redemption premium with path |q| is
    /// timely until premium_base + |q| * delta (§7.1). 0 means "flat
    /// redemption_premium_deadline only" (direct constructions).
    Tick premium_base = 0;
    Tick redemption_premium_deadline = 0;  ///< end of premium phase 2
    Tick escrow_deadline = 0;              ///< end of base phase 1
    /// Per-arc asset-escrow deadline: base-phase-one start + (depth of the
    /// escrowing party in the leader-rooted escrow cascade + 1) * delta.
    /// The paper's phase-one schedule has the party at cascade depth k
    /// escrow at step k — giving every arc the SAME flat deadline would
    /// let a party escrow so late that the parties downstream of it run
    /// out of phase, forfeiting activated escrow premiums they could
    /// never have kept (their own escrow enablement lands past the flat
    /// deadline). 0 means "fall back to escrow_deadline" (tests that
    /// construct arcs directly keep the old flat behaviour).
    Tick asset_escrow_deadline = 0;
    Tick hashkey_base = 0;                 ///< start of base phase 2
  };

  explicit MultiPartyArcContract(Params p);

  // -- Transactions ----------------------------------------------------------

  /// u deposits E(u, v) (native coin). Timely until escrow_deadline (the
  /// engine's schedule has leaders deposit within Delta; the contract only
  /// needs a horizon after which deposits are pointless).
  void deposit_escrow_premium(chain::TxContext& ctx);

  /// v deposits the redemption premium for `leader_index` with path `q`
  /// and a signature over (leader_index, q). The amount is dictated by
  /// Equation 1 — the contract computes it and takes exactly that.
  void deposit_redemption_premium(chain::TxContext& ctx,
                                  std::size_t leader_index,
                                  const graph::Path& q,
                                  const crypto::Signature& path_sig);

  /// u escrows the principal. Refunds the escrow premium to u at the same
  /// moment (its purpose — compensating v if u never escrows — is spent).
  void escrow_asset(chain::TxContext& ctx);

  /// Anyone presents leader `leader_index`'s hashkey. Valid + timely
  /// presentation: marks the hashlock open, refunds v's matching
  /// redemption premium, and — once every hashlock is open — transfers the
  /// asset to v.
  void present_hashkey(chain::TxContext& ctx, std::size_t leader_index,
                       const crypto::Hashkey& key);

  /// Timeout sweep: premium refunds/awards and the final asset refund.
  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse). The signature
  /// verification memo survives: it caches pure computation.
  void reset() override;

  // -- Public state -----------------------------------------------------------

  const Params& params() const { return p_; }

  bool escrow_premium_deposited() const { return ep_deposited_.has_value(); }
  /// Activation (paper §7.1): all redemption premiums present on this arc.
  bool escrow_premium_activated() const;
  bool escrow_premium_refunded() const { return ep_refunded_; }
  bool escrow_premium_awarded() const { return ep_awarded_; }

  bool redemption_premium_deposited(std::size_t leader_index) const {
    return rp_[leader_index].deposited_at.has_value();
  }
  bool redemption_premium_refunded(std::size_t leader_index) const {
    return rp_[leader_index].refunded;
  }
  bool redemption_premium_awarded(std::size_t leader_index) const {
    return rp_[leader_index].awarded;
  }
  Amount redemption_premium_amount(std::size_t leader_index) const {
    return rp_[leader_index].amount;
  }
  /// The deposit's (public) path — what downstream parties extend when
  /// relaying the premium backward through the digraph.
  const graph::Path& redemption_premium_path(std::size_t leader_index) const {
    return rp_[leader_index].path;
  }

  bool escrowed() const { return escrowed_at_.has_value(); }
  std::optional<Tick> escrowed_at() const { return escrowed_at_; }
  bool redeemed() const { return redeemed_; }
  bool refunded() const { return refunded_; }
  std::optional<Tick> asset_resolved_at() const { return asset_resolved_at_; }

  bool hashlock_open(std::size_t leader_index) const {
    return hashkeys_[leader_index].has_value();
  }
  /// The hashkey that opened hashlock i, once presented — this is how the
  /// next party down the digraph learns the secret and its path.
  const std::optional<crypto::Hashkey>& presented_hashkey(
      std::size_t leader_index) const {
    return hashkeys_[leader_index];
  }

  /// Deadline for a path of length `len` (paper: (diam + |q|) * Delta).
  Tick path_deadline(std::size_t len) const {
    return p_.hashkey_base +
           static_cast<Tick>(diam_ + len) * p_.delta;
  }

 private:
  struct RedemptionPremium {
    Amount amount = 0;
    graph::Path path;
    std::optional<Tick> deposited_at;
    bool refunded = false;
    bool awarded = false;

    void state_hash_into(std::uint64_t& h) const {
      chain::state_hash_values(h, amount, path, deposited_at, refunded,
                               awarded);
    }
  };

  PartyId sender_of_arc() const { return p_.arc.from; }      // u
  PartyId recipient_of_arc() const { return p_.arc.to; }     // v
  bool all_hashlocks_open() const;
  void refund_escrow_premium(chain::TxContext& ctx, PartyId to, bool award);

  Params p_;
  SymbolId sym_ = SymbolTable::intern(p_.asset_symbol);
  std::size_t diam_;
  /// Memoized signature verification: reused worlds re-see the same
  /// deterministic hashkeys/path signatures every schedule.
  crypto::VerifyCache vcache_;
  /// Equation 1 amounts per deposit path (pure in (g, p), so it survives
  /// reset() like the signature memo).
  std::map<graph::Path, Amount> rp_amount_memo_;
  std::optional<Tick> ep_deposited_;
  bool ep_refunded_ = false;
  bool ep_awarded_ = false;
  std::vector<RedemptionPremium> rp_;
  std::optional<Tick> escrowed_at_;
  std::optional<Tick> asset_resolved_at_;
  bool redeemed_ = false;
  bool refunded_ = false;
  std::vector<std::optional<crypto::Hashkey>> hashkeys_;

  /// Every mutable member (exactly what reset() clears; the signature and
  /// Equation-1 memos cache pure computation and are deliberately absent).
  auto state_tie() {
    return std::tie(ep_deposited_, ep_refunded_, ep_awarded_, rp_,
                    escrowed_at_, asset_resolved_at_, redeemed_, refunded_,
                    hashkeys_);
  }
  friend chain::SnapshotState<MultiPartyArcContract>;
};

}  // namespace xchain::contracts
