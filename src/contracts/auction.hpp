#pragma once

#include <optional>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/hashkey.hpp"

namespace xchain::contracts {

/// Shared pieces of the two auction contracts (paper §9).
///
/// The auctioneer generates one secret per bidder; the hashkey k_i
/// identifies bidder i as the winner. A hashkey with path q times out
/// |q| * Delta after the declaration phase starts, so a key published on
/// one chain can always be forwarded to the other within the 3-Delta
/// challenge window (Lemma 7), but stale keys die.
struct AuctionTerms {
  PartyId auctioneer = kNoParty;
  std::vector<PartyId> bidders;
  /// hashlocks[i] commits to the secret identifying bidders[i] as winner.
  std::vector<crypto::Digest> hashlocks;
  std::vector<crypto::PublicKey> party_keys;  ///< by PartyId
  Tick delta = 1;
  Tick bid_deadline = 0;        ///< end of the bidding phase
  Tick declaration_start = 0;   ///< hashkey timeouts count from here
  Tick commit_time = 0;         ///< settlement sweeps fire past this
};

/// Validates a hashkey for bidder index `i` under `terms` at time `now`:
/// crypto chain, distinct path ending at the auctioneer, |q|-scaled
/// timeout. `vcache`, when given, memoizes the signature-chain check
/// (reused sweep worlds re-see identical hashkeys every schedule).
bool auction_hashkey_valid(const AuctionTerms& terms, std::size_t i,
                           const crypto::Hashkey& key, Tick now,
                           crypto::VerifyCache* vcache = nullptr);

/// Coin-chain auction contract: records bids, collects hashkeys, settles.
///
/// Settlement (paper §9, commit phase): if exactly the true winner's
/// hashkey arrived, the winning bid goes to the auctioneer, losers are
/// refunded, and the auctioneer's premium endowment (n * p) is returned.
/// Otherwise the auctioneer cheated or abandoned: every bid is refunded
/// and every bidder who bid receives premium p; the remainder of the
/// endowment returns to the auctioneer.
class CoinAuctionContract : public chain::SnapshotState<CoinAuctionContract> {
 public:
  struct Params {
    AuctionTerms terms;
    Amount premium_per_bidder = 0;  ///< p
  };

  explicit CoinAuctionContract(Params p);

  /// Auctioneer deposits n * p before bids can be accepted.
  void endow_premium(chain::TxContext& ctx);

  /// Bidder escrows `amount` native coins. Requires the premium endowment
  /// (so bidders are never exposed unhedged) and the bidding deadline.
  void place_bid(chain::TxContext& ctx, Amount amount);

  /// Anyone presents bidder `i`'s hashkey (timeliness per path length).
  void present_hashkey(chain::TxContext& ctx, std::size_t i,
                       const crypto::Hashkey& key);

  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse).
  void reset() override;

  // -- Public state -----------------------------------------------------------
  const Params& params() const { return p_; }
  bool premium_endowed() const { return premium_endowed_; }
  std::optional<Amount> bid_of(std::size_t i) const { return bids_[i]; }
  bool hashkey_received(std::size_t i) const {
    return keys_[i].has_value();
  }
  const std::optional<crypto::Hashkey>& presented_hashkey(
      std::size_t i) const {
    return keys_[i];
  }
  bool settled() const { return settled_; }
  /// True iff settlement concluded the auctioneer behaved (winner paid).
  bool completed_cleanly() const { return clean_; }
  /// Index of the highest bidder (first wins ties); nullopt if no bids.
  std::optional<std::size_t> winner() const;

 private:
  Params p_;
  crypto::VerifyCache vcache_;
  bool premium_endowed_ = false;
  std::vector<std::optional<Amount>> bids_;
  std::vector<std::optional<crypto::Hashkey>> keys_;
  bool settled_ = false;
  bool clean_ = false;

  /// Every mutable member (exactly what reset() clears).
  auto state_tie() {
    return std::tie(premium_endowed_, bids_, keys_, settled_, clean_);
  }
  friend chain::SnapshotState<CoinAuctionContract>;
};

/// Ticket-chain auction contract: holds the tickets, collects hashkeys.
/// Settlement: exactly one hashkey -> tickets to the matching bidder;
/// zero or more than one -> tickets back to the auctioneer.
class TicketAuctionContract
    : public chain::SnapshotState<TicketAuctionContract> {
 public:
  struct Params {
    AuctionTerms terms;
    chain::Symbol symbol;  ///< "ticket"
    Amount amount = 0;
  };

  explicit TicketAuctionContract(Params p);

  /// Auctioneer escrows the tickets before bidding ends.
  void escrow_tickets(chain::TxContext& ctx);

  void present_hashkey(chain::TxContext& ctx, std::size_t i,
                       const crypto::Hashkey& key);

  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse).
  void reset() override;

  // -- Public state -----------------------------------------------------------
  const Params& params() const { return p_; }
  bool escrowed() const { return escrowed_; }
  bool hashkey_received(std::size_t i) const {
    return keys_[i].has_value();
  }
  const std::optional<crypto::Hashkey>& presented_hashkey(
      std::size_t i) const {
    return keys_[i];
  }
  bool settled() const { return settled_; }
  /// The bidder the tickets went to, if any.
  std::optional<PartyId> awarded_to() const { return awarded_to_; }

 private:
  Params p_;
  SymbolId sym_ = SymbolTable::intern(p_.symbol);
  crypto::VerifyCache vcache_;
  bool escrowed_ = false;
  std::vector<std::optional<crypto::Hashkey>> keys_;
  bool settled_ = false;
  std::optional<PartyId> awarded_to_;

  /// Every mutable member (exactly what reset() clears).
  auto state_tie() {
    return std::tie(escrowed_, keys_, settled_, awarded_to_);
  }
  friend chain::SnapshotState<TicketAuctionContract>;
};

}  // namespace xchain::contracts
