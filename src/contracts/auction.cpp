#include "contracts/auction.hpp"

#include <algorithm>
#include <unordered_set>

namespace xchain::contracts {

bool auction_hashkey_valid(const AuctionTerms& terms, std::size_t i,
                           const crypto::Hashkey& key, Tick now,
                           crypto::VerifyCache* vcache) {
  if (i >= terms.hashlocks.size()) return false;
  // Timeout: |q| * Delta after the declaration phase starts.
  if (now > terms.declaration_start +
                static_cast<Tick>(key.path.size()) * terms.delta) {
    return false;
  }
  // The chain of custody must originate at the auctioneer.
  if (key.leader() != terms.auctioneer) return false;
  const auto key_of = [&terms](PartyId p) { return terms.party_keys[p]; };
  return vcache ? vcache->verify_hashkey(key, terms.hashlocks[i], key_of)
                : crypto::verify_hashkey(key, terms.hashlocks[i], key_of);
}

// ---------------------------------------------------------------------------
// Coin chain
// ---------------------------------------------------------------------------

CoinAuctionContract::CoinAuctionContract(Params p)
    : p_(std::move(p)),
      bids_(p_.terms.bidders.size()),
      keys_(p_.terms.bidders.size()) {}

std::optional<std::size_t> CoinAuctionContract::winner() const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < bids_.size(); ++i) {
    if (bids_[i] && (!best || *bids_[i] > *bids_[*best])) best = i;
  }
  return best;
}

void CoinAuctionContract::endow_premium(chain::TxContext& ctx) {
  if (ctx.sender() != p_.terms.auctioneer || premium_endowed_) return;
  if (ctx.now() > p_.terms.bid_deadline) return;
  const Amount total =
      p_.premium_per_bidder * static_cast<Amount>(bids_.size());
  if (!ctx.ledger().transfer(chain::Address::party(p_.terms.auctioneer),
                             address(), ctx.native_id(), total)) {
    return;
  }
  premium_endowed_ = true;
  if (ctx.tracing()) ctx.emit(id(), "premium_endowed", std::to_string(total));
}

void CoinAuctionContract::place_bid(chain::TxContext& ctx, Amount amount) {
  if (!premium_endowed_) {
    if (ctx.tracing()) ctx.emit(id(), "bid_rejected", "no premium endowment");
    return;
  }
  if (ctx.now() > p_.terms.bid_deadline) {
    if (ctx.tracing()) ctx.emit(id(), "bid_rejected", "past bidding phase");
    return;
  }
  const auto it = std::find(p_.terms.bidders.begin(), p_.terms.bidders.end(),
                            ctx.sender());
  if (it == p_.terms.bidders.end()) return;
  const std::size_t i =
      static_cast<std::size_t>(it - p_.terms.bidders.begin());
  if (bids_[i] || amount <= 0) return;
  if (!ctx.ledger().transfer(chain::Address::party(ctx.sender()), address(),
                             ctx.native_id(), amount)) {
    if (ctx.tracing()) ctx.emit(id(), "bid_rejected", "insufficient balance");
    return;
  }
  bids_[i] = amount;
  if (ctx.tracing()) {
    ctx.emit(id(), "bid_placed",
             "bidder " + std::to_string(i) + " amount " +
                 std::to_string(amount));
  }
}

void CoinAuctionContract::present_hashkey(chain::TxContext& ctx,
                                          std::size_t i,
                                          const crypto::Hashkey& key) {
  if (i >= keys_.size() || keys_[i] || settled_) return;
  if (!auction_hashkey_valid(p_.terms, i, key, ctx.now(), &vcache_)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "hashkey_rejected", "bidder " + std::to_string(i));
    }
    return;
  }
  keys_[i] = key;
  if (ctx.tracing()) {
    ctx.emit(id(), "hashkey_presented", "bidder " + std::to_string(i));
  }
}

void CoinAuctionContract::on_block(chain::TxContext& ctx) {
  if (settled_ || ctx.now() <= p_.terms.commit_time) return;
  settled_ = true;

  const auto win = winner();
  bool only_winner_key = win.has_value() && keys_[*win].has_value();
  for (std::size_t i = 0; only_winner_key && i < keys_.size(); ++i) {
    if (i != *win && keys_[i]) only_winner_key = false;
  }

  if (only_winner_key) {
    // All is well: winning bid to the auctioneer, losers refunded,
    // premium endowment returned.
    clean_ = true;
    for (std::size_t i = 0; i < bids_.size(); ++i) {
      if (!bids_[i]) continue;
      const PartyId to =
          i == *win ? p_.terms.auctioneer : p_.terms.bidders[i];
      ctx.ledger().transfer(address(), chain::Address::party(to),
                            ctx.native_id(), *bids_[i]);
    }
    if (premium_endowed_) {
      ctx.ledger().transfer(
          address(), chain::Address::party(p_.terms.auctioneer),
          ctx.native_id(),
          p_.premium_per_bidder * static_cast<Amount>(bids_.size()));
    }
    if (ctx.tracing()) ctx.emit(id(), "settled", "winner paid");
    return;
  }

  // The auctioneer cheated or walked away: refund every bid, and award
  // premium p to every bidder whose coins were locked up; the rest of the
  // endowment goes back to the auctioneer.
  Amount endowment_left =
      premium_endowed_
          ? p_.premium_per_bidder * static_cast<Amount>(bids_.size())
          : 0;
  for (std::size_t i = 0; i < bids_.size(); ++i) {
    if (!bids_[i]) continue;
    ctx.ledger().transfer(address(),
                          chain::Address::party(p_.terms.bidders[i]),
                          ctx.native_id(), *bids_[i]);
    if (endowment_left >= p_.premium_per_bidder) {
      ctx.ledger().transfer(address(),
                            chain::Address::party(p_.terms.bidders[i]),
                            ctx.native_id(), p_.premium_per_bidder);
      endowment_left -= p_.premium_per_bidder;
    }
  }
  if (endowment_left > 0) {
    ctx.ledger().transfer(address(),
                          chain::Address::party(p_.terms.auctioneer),
                          ctx.native_id(), endowment_left);
  }
  if (ctx.tracing()) {
    ctx.emit(id(), "settled", "bids refunded with premiums");
  }
}

void CoinAuctionContract::reset() {
  premium_endowed_ = false;
  for (auto& b : bids_) b.reset();
  for (auto& k : keys_) k.reset();
  settled_ = false;
  clean_ = false;
}

// ---------------------------------------------------------------------------
// Ticket chain
// ---------------------------------------------------------------------------

TicketAuctionContract::TicketAuctionContract(Params p)
    : p_(std::move(p)), keys_(p_.terms.bidders.size()) {}

void TicketAuctionContract::escrow_tickets(chain::TxContext& ctx) {
  if (ctx.sender() != p_.terms.auctioneer || escrowed_) return;
  if (ctx.now() > p_.terms.bid_deadline) return;
  if (!ctx.ledger().transfer(chain::Address::party(p_.terms.auctioneer),
                             address(), sym_, p_.amount)) {
    return;
  }
  escrowed_ = true;
  if (ctx.tracing()) {
    ctx.emit(id(), "escrowed", p_.symbol + ":" + std::to_string(p_.amount));
  }
}

void TicketAuctionContract::present_hashkey(chain::TxContext& ctx,
                                            std::size_t i,
                                            const crypto::Hashkey& key) {
  if (i >= keys_.size() || keys_[i] || settled_) return;
  if (!auction_hashkey_valid(p_.terms, i, key, ctx.now(), &vcache_)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "hashkey_rejected", "bidder " + std::to_string(i));
    }
    return;
  }
  keys_[i] = key;
  if (ctx.tracing()) {
    ctx.emit(id(), "hashkey_presented", "bidder " + std::to_string(i));
  }
}

void TicketAuctionContract::on_block(chain::TxContext& ctx) {
  if (settled_ || ctx.now() <= p_.terms.commit_time) return;
  settled_ = true;
  if (!escrowed_) return;

  std::optional<std::size_t> sole;
  int count = 0;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i]) {
      ++count;
      sole = i;
    }
  }
  if (count == 1) {
    awarded_to_ = p_.terms.bidders[*sole];
    ctx.ledger().transfer(address(), chain::Address::party(*awarded_to_),
                          sym_, p_.amount);
    if (ctx.tracing()) {
      ctx.emit(id(), "settled", "tickets to bidder " + std::to_string(*sole));
    }
  } else {
    ctx.ledger().transfer(address(),
                          chain::Address::party(p_.terms.auctioneer), sym_,
                          p_.amount);
    if (ctx.tracing()) ctx.emit(id(), "settled", "tickets refunded");
  }
}

void TicketAuctionContract::reset() {
  escrowed_ = false;
  for (auto& k : keys_) k.reset();
  settled_ = false;
  awarded_to_.reset();
}

}  // namespace xchain::contracts
