#include "contracts/arc_contract.hpp"

#include <algorithm>

#include "core/premiums.hpp"

namespace xchain::contracts {

MultiPartyArcContract::MultiPartyArcContract(Params p)
    : p_(std::move(p)),
      diam_(p_.g.diameter()),
      rp_(p_.hashlocks.size()),
      hashkeys_(p_.hashlocks.size()) {}

bool MultiPartyArcContract::escrow_premium_activated() const {
  return std::all_of(rp_.begin(), rp_.end(), [](const RedemptionPremium& r) {
    return r.deposited_at.has_value();
  });
}

bool MultiPartyArcContract::all_hashlocks_open() const {
  return std::all_of(hashkeys_.begin(), hashkeys_.end(),
                     [](const auto& k) { return k.has_value(); });
}

void MultiPartyArcContract::deposit_escrow_premium(chain::TxContext& ctx) {
  if (ctx.sender() != sender_of_arc() || ep_deposited_) return;
  if (ctx.now() > p_.escrow_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "escrow_premium_rejected", "too late");
    }
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(sender_of_arc()),
                             address(), ctx.native_id(),
                             p_.escrow_premium)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "escrow_premium_rejected", "insufficient balance");
    }
    return;
  }
  ep_deposited_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "escrow_premium_deposited",
             std::to_string(p_.escrow_premium));
  }
}

void MultiPartyArcContract::deposit_redemption_premium(
    chain::TxContext& ctx, std::size_t leader_index, const graph::Path& q,
    const crypto::Signature& path_sig) {
  if (leader_index >= rp_.size()) return;
  RedemptionPremium& slot = rp_[leader_index];
  if (ctx.sender() != recipient_of_arc() || slot.deposited_at) return;
  // Per-path-length deadline (the §7.1 rule, mirroring the hashkey
  // timeouts): a deposit whose path has |q| hops is timely until
  // premium_base + |q| * Delta. This keeps the backward premium flow
  // all-or-nothing per leader: a hop that arrives late is rejected HERE,
  // before it can extend activation past the window — otherwise a deviant
  // party delaying the flow could leave downstream arcs activated while
  // upstream arcs are not, putting conforming parties' escrow premiums at
  // risk for escrows they rightly never make. The flat phase deadline
  // stays as the overall horizon (|q| <= n makes it redundant for real
  // paths, but deposits must never outlive phase 2). premium_base == 0
  // means "flat deadline only" — directly-constructed contracts (tests)
  // keep the documented redemption_premium_deadline, exactly like the
  // asset_escrow_deadline fallback below.
  const Tick path_limit =
      p_.premium_base > 0
          ? p_.premium_base + static_cast<Tick>(q.size()) * p_.delta
          : p_.redemption_premium_deadline;
  if (ctx.now() > p_.redemption_premium_deadline ||
      ctx.now() > path_limit) {
    if (ctx.tracing()) {
      ctx.emit(id(), "redemption_premium_rejected", "too late");
    }
    return;
  }
  // Well-formedness (§3.2): the path must be a real path of G from v to
  // the leader, signed by the depositor.
  if (!p_.g.is_path(q) || q.front() != recipient_of_arc() ||
      q.back() != p_.hashlocks[leader_index].leader) {
    if (ctx.tracing()) {
      ctx.emit(id(), "redemption_premium_rejected", "bad path");
    }
    return;
  }
  if (!vcache_.verify_premium_path(p_.party_keys[ctx.sender()], leader_index,
                                   q, path_sig)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "redemption_premium_rejected", "bad signature");
    }
    return;
  }
  // Equation 1 dictates the amount; the beneficiary is u.
  const auto memo = rp_amount_memo_.find(q);
  const Amount amount =
      memo != rp_amount_memo_.end()
          ? memo->second
          : rp_amount_memo_
                .emplace(q, core::redemption_premium(p_.g, q, sender_of_arc(),
                                                     p_.premium_unit))
                .first->second;
  if (!ctx.ledger().transfer(chain::Address::party(recipient_of_arc()),
                             address(), ctx.native_id(), amount)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "redemption_premium_rejected", "insufficient balance");
    }
    return;
  }
  slot.amount = amount;
  slot.path = q;
  slot.deposited_at = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "redemption_premium_deposited",
             "leader " + std::to_string(leader_index) + " amount " +
                 std::to_string(amount));
  }
}

void MultiPartyArcContract::escrow_asset(chain::TxContext& ctx) {
  if (ctx.sender() != sender_of_arc() || escrowed_at_) return;
  const Tick asset_deadline = p_.asset_escrow_deadline > 0
                                  ? p_.asset_escrow_deadline
                                  : p_.escrow_deadline;
  if (ctx.now() > asset_deadline || ctx.now() > p_.escrow_deadline) {
    if (ctx.tracing()) ctx.emit(id(), "escrow_rejected", "too late");
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(sender_of_arc()),
                             address(), sym_, p_.asset_amount)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "escrow_rejected", "insufficient balance");
    }
    return;
  }
  escrowed_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "escrowed",
             p_.asset_symbol + ":" + std::to_string(p_.asset_amount));
  }
  // Lemma 1: "v's escrow premium E(v, w) is refunded as soon as v escrows
  // its asset on that arc."
  if (ep_deposited_ && !ep_refunded_ && !ep_awarded_) {
    refund_escrow_premium(ctx, sender_of_arc(), /*award=*/false);
  }
}

void MultiPartyArcContract::present_hashkey(chain::TxContext& ctx,
                                            std::size_t leader_index,
                                            const crypto::Hashkey& key) {
  if (leader_index >= hashkeys_.size() || hashkeys_[leader_index]) return;
  // Timeliness: (diam + |q|) * Delta from the hashkey base.
  if (ctx.now() > path_deadline(key.path.size())) {
    if (ctx.tracing()) ctx.emit(id(), "hashkey_rejected", "timed out");
    return;
  }
  // Structural validity: the path must run from this arc's recipient to
  // the leader along arcs of G.
  if (!p_.g.is_path(key.path) || key.presenter() != recipient_of_arc() ||
      key.leader() != p_.hashlocks[leader_index].leader) {
    if (ctx.tracing()) ctx.emit(id(), "hashkey_rejected", "bad path");
    return;
  }
  const auto key_of = [this](PartyId pid) { return p_.party_keys[pid]; };
  if (!vcache_.verify_hashkey(key, p_.hashlocks[leader_index].digest,
                              key_of)) {
    if (ctx.tracing()) ctx.emit(id(), "hashkey_rejected", "bad crypto");
    return;
  }
  hashkeys_[leader_index] = key;
  if (ctx.tracing()) {
    ctx.emit(id(), "hashkey_presented",
             "leader " + std::to_string(leader_index) + " path " +
                 graph::to_string(key.path));
  }

  // Lemma 1: "v's redemption premium R_i(q, u) is refunded as soon as v
  // sends hashkey k_i on that arc."
  RedemptionPremium& slot = rp_[leader_index];
  if (slot.deposited_at && !slot.refunded && !slot.awarded) {
    ctx.ledger().transfer(address(),
                          chain::Address::party(recipient_of_arc()),
                          ctx.native_id(), slot.amount);
    slot.refunded = true;
    if (ctx.tracing()) {
      ctx.emit(id(), "redemption_premium_refunded",
               "leader " + std::to_string(leader_index));
    }
  }

  // Redemption: all hashkeys collected -> the asset goes to v.
  if (escrowed_at_ && !redeemed_ && !refunded_ && all_hashlocks_open()) {
    ctx.ledger().transfer(address(),
                          chain::Address::party(recipient_of_arc()), sym_,
                          p_.asset_amount);
    redeemed_ = true;
    asset_resolved_at_ = ctx.now();
    if (ctx.tracing()) {
      ctx.emit(id(), "redeemed", "to " + std::to_string(recipient_of_arc()));
    }
  }
}

void MultiPartyArcContract::refund_escrow_premium(chain::TxContext& ctx,
                                                  PartyId to, bool award) {
  ctx.ledger().transfer(address(), chain::Address::party(to), ctx.native_id(),
                        p_.escrow_premium);
  (award ? ep_awarded_ : ep_refunded_) = true;
  if (ctx.tracing()) {
    ctx.emit(id(),
             award ? "escrow_premium_awarded" : "escrow_premium_refunded",
             "to " + std::to_string(to));
  }
}

void MultiPartyArcContract::on_block(chain::TxContext& ctx) {
  // Escrow premium resolution at the escrow deadline: if never activated,
  // refund to u; if activated and the asset never arrived, award to v.
  if (ep_deposited_ && !ep_refunded_ && !ep_awarded_ && !escrowed_at_ &&
      ctx.now() > p_.escrow_deadline) {
    if (escrow_premium_activated()) {
      refund_escrow_premium(ctx, recipient_of_arc(), /*award=*/true);
    } else {
      refund_escrow_premium(ctx, sender_of_arc(), /*award=*/false);
    }
  }
  // Redemption premiums: awarded to u when the hashkey misses the deadline
  // determined by the deposit's own path length.
  for (std::size_t i = 0; i < rp_.size(); ++i) {
    RedemptionPremium& slot = rp_[i];
    if (slot.deposited_at && !slot.refunded && !slot.awarded &&
        !hashkeys_[i] && ctx.now() > path_deadline(slot.path.size())) {
      ctx.ledger().transfer(address(), chain::Address::party(sender_of_arc()),
                            ctx.native_id(), slot.amount);
      slot.awarded = true;
      if (ctx.tracing()) {
        ctx.emit(id(), "redemption_premium_awarded",
                 "leader " + std::to_string(i) + " to " +
                     std::to_string(sender_of_arc()));
      }
    }
  }
  // Asset refund: after the longest possible hashkey deadline, an
  // unredeemed asset returns to u.
  if (escrowed_at_ && !redeemed_ && !refunded_ &&
      ctx.now() > path_deadline(p_.g.size())) {
    ctx.ledger().transfer(address(), chain::Address::party(sender_of_arc()),
                          sym_, p_.asset_amount);
    refunded_ = true;
    asset_resolved_at_ = ctx.now();
    if (ctx.tracing()) {
      ctx.emit(id(), "refunded", "to " + std::to_string(sender_of_arc()));
    }
  }
}

void MultiPartyArcContract::reset() {
  ep_deposited_.reset();
  ep_refunded_ = false;
  ep_awarded_ = false;
  for (RedemptionPremium& slot : rp_) {
    slot.amount = 0;
    slot.path.clear();
    slot.deposited_at.reset();
    slot.refunded = false;
    slot.awarded = false;
  }
  escrowed_at_.reset();
  asset_resolved_at_.reset();
  redeemed_ = false;
  refunded_ = false;
  for (auto& k : hashkeys_) k.reset();
}

}  // namespace xchain::contracts
