#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"

namespace xchain::contracts {

/// Door account on the locking (source) chain of an XChainBridge-style
/// witness bridge. The door escrows everything the source side puts at
/// risk: the user's principal (the asset being bridged), the user's hedge
/// premium, and one bond per witness — the witnesses' premium escrow per
/// the paper's construction, sized so that forfeited bonds always cover
/// the user's worst-case reward outlay plus the premium floor.
///
/// Lifecycle (all deadlines inclusive, timeout sweeps fire at height >
/// deadline):
///   1. user deposits the premium (hedged mode only);
///   2. each witness posts its bond;
///   3. the user commits the principal — rejected in hedged mode unless
///      the premium is in and at least `quorum` bonds are posted (for the
///      account-create flavor the witness reward pool rides the commit);
///   4. witnesses report the destination-chain outcome back: a settle
///      report carries (success, attester set) read off the destination
///      contract after it resolved. Reports are honest by construction —
///      deviation plans only retime or drop them — and monotone (any
///      post-resolution report carries the final attester set), so the
///      door unions the masks and takes "any success report" as success.
///
/// Timeout sweeps:
///   * past the commit deadline with no commit: every bond refunds; the
///     premium refunds to the user unless a bond quorum had formed — the
///     witnesses did their part and the user walked away, so the premium
///     splits among the bonded witnesses (integer share, remainder back
///     to the user);
///   * past the settle deadline after a commit: on success the principal
///     stays in the door (it backs the wrapped issuance), the premium
///     refunds, and every bond refunds; on failure the principal and
///     premium refund to the user, bonds of reported attesters refund,
///     and the remaining bonds forfeit to the user — the paper's premium
///     compensation for the aborted transfer.
class BridgeDoorContract : public chain::SnapshotState<BridgeDoorContract> {
 public:
  struct Params {
    PartyId user = 0;
    /// Instance namespacing offset: witnesses are parties
    /// party_base+1 .. party_base+n_witnesses (base 0 = the historical
    /// private-world ids). Attester bitmasks stay base-relative (bit 0 =
    /// the first witness), so masks travel unchanged between the door and
    /// claim contracts of one instance.
    PartyId party_base = 0;
    int n_witnesses = 0;  ///< witnesses are parties party_base+1..+n
    int quorum = 0;       ///< k of n attestations complete the transfer
    bool hedged = true;   ///< false: no premium, no bonds (baseline)
    /// Account-create flavor: the witness reward pool (reward_amount *
    /// n_witnesses, in this chain's native coin) rides the commit and is
    /// paid to reported attesters at a successful settle.
    bool rewards_at_door = false;
    chain::Symbol principal_symbol;
    Amount principal_amount = 0;
    Amount premium_amount = 0;  ///< user's premium, native coin
    Amount bond_amount = 0;     ///< per-witness bond, native coin
    Amount reward_amount = 0;   ///< per attester (rewards_at_door only)
    Tick premium_deadline = 0;
    Tick bond_deadline = 0;
    Tick commit_deadline = 0;
    Tick settle_deadline = 0;
  };

  explicit BridgeDoorContract(Params p) : p_(std::move(p)) {}

  /// User's premium deposit (hedged mode, before the premium deadline).
  void deposit_premium(chain::TxContext& ctx);

  /// Witness bond (hedged mode, before the bond deadline, once each).
  void post_bond(chain::TxContext& ctx);

  /// User's principal commit. Hedged mode requires the premium and a bond
  /// quorum; the account-create flavor additionally escrows the reward
  /// pool alongside the principal.
  void commit(chain::TxContext& ctx);

  /// Witness settle report: the destination contract's outcome (success
  /// flag + attester bitmask, bit w-1 for witness w) as the sender
  /// observed it. Accepted from registered witnesses after a commit,
  /// through the settle deadline; masks union monotonically.
  void report_settle(chain::TxContext& ctx, bool success,
                     std::uint64_t attester_mask);

  /// Commit-deadline and settle-deadline sweeps (see class comment).
  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse).
  void reset() override;

  /// Scheduled-step ladder for Scheduler::validate_deadlines: premium,
  /// bonds, commit, settle (the unhedged baseline has no premium/bond
  /// steps).
  std::vector<Tick> deadline_schedule() const override {
    if (p_.hedged) {
      return {p_.premium_deadline, p_.bond_deadline, p_.commit_deadline,
              p_.settle_deadline};
    }
    return {p_.commit_deadline, p_.settle_deadline};
  }

  // -- Public state ---------------------------------------------------------
  const Params& params() const { return p_; }
  bool premium_deposited() const { return premium_at_.has_value(); }
  bool committed() const { return committed_at_.has_value(); }
  std::optional<Tick> committed_at() const { return committed_at_; }
  int bonds_posted() const { return popcount(bonds_mask_); }
  bool bond_posted(PartyId w) const { return bit_set(bonds_mask_, w); }
  std::uint64_t bonds_mask() const { return bonds_mask_; }
  bool settled() const { return settled_; }
  bool settle_success() const { return settle_success_; }
  bool principal_refunded() const { return principal_refunded_; }
  std::uint64_t reported_mask() const { return reported_mask_; }
  bool premium_refunded() const { return premium_refunded_; }
  bool premium_split() const { return premium_split_; }
  int bonds_forfeited() const { return popcount(forfeited_mask_); }
  bool bond_forfeited(PartyId w) const { return bit_set(forfeited_mask_, w); }

 private:
  static int popcount(std::uint64_t m) {
    int n = 0;
    for (; m; m &= m - 1) ++n;
    return n;
  }
  bool bit_set(std::uint64_t m, PartyId w) const {
    return is_witness(w) && (m >> (w - p_.party_base - 1)) & 1;
  }
  bool is_witness(PartyId w) const {
    return w > p_.party_base &&
           w <= p_.party_base + static_cast<PartyId>(p_.n_witnesses);
  }
  /// The party owning base-relative attester bit `bit`.
  PartyId witness_at(int bit) const { return p_.party_base + 1 + bit; }
  std::uint64_t witness_mask() const {
    return p_.n_witnesses >= 64 ? ~0ull : (1ull << p_.n_witnesses) - 1;
  }
  Amount reward_pool() const {
    return p_.rewards_at_door ? p_.reward_amount * p_.n_witnesses : 0;
  }
  void refund_bonds(chain::TxContext& ctx, std::uint64_t mask);
  void refund_premium(chain::TxContext& ctx);
  void resolve_no_commit(chain::TxContext& ctx);
  void resolve_settle(chain::TxContext& ctx);

  Params p_;
  SymbolId sym_ = SymbolTable::intern(p_.principal_symbol);
  std::optional<Tick> premium_at_;
  std::optional<Tick> committed_at_;
  std::uint64_t bonds_mask_ = 0;
  std::uint64_t reported_mask_ = 0;
  std::uint64_t forfeited_mask_ = 0;
  bool success_reported_ = false;
  bool commit_window_closed_ = false;
  bool settled_ = false;
  bool settle_success_ = false;
  bool principal_refunded_ = false;
  bool premium_refunded_ = false;
  bool premium_split_ = false;

  /// Every mutable member (exactly what reset() clears) — the checkpoint
  /// stack and the rewind-integrity hash both derive from this list.
  auto state_tie() {
    return std::tie(premium_at_, committed_at_, bonds_mask_, reported_mask_,
                    forfeited_mask_, success_reported_, commit_window_closed_,
                    settled_, settle_success_, principal_refunded_,
                    premium_refunded_, premium_split_);
  }
  friend chain::SnapshotState<BridgeDoorContract>;
};

/// Claim contract on the issuing (destination) chain. For a transfer the
/// user creates the claim — depositing the witness reward pool — and a
/// quorum of witness attestations of the source-chain commit releases the
/// wrapped asset; for account-create the claim is pre-created (the user
/// has no destination-chain presence yet: the reward pool rides the door
/// commit instead) and the attestation quorum funds the new account.
///
/// Rewards are deliberately eager in the transfer flavor: every accepted
/// attestation collects `reward_amount` from the pool immediately, quorum
/// or not — the SoK bridge-attack surface of reward collection without
/// completion. The unhedged baseline demonstrably loses the user money
/// when witnesses stall short of quorum; the hedge's bond forfeitures on
/// the door make the user whole.
///
/// The attest deadline is inclusive; the timeout sweep marks an
/// unresolved claim failed and refunds the pool remainder to the user
/// (also after success, so late-but-timely attesters keep collecting
/// until the window closes).
class BridgeClaimContract : public chain::SnapshotState<BridgeClaimContract> {
 public:
  struct Params {
    PartyId user = 0;
    /// Instance namespacing offset, mirroring BridgeDoorContract::Params.
    PartyId party_base = 0;
    int n_witnesses = 0;
    int quorum = 0;
    /// Transfer: the user creates the claim and funds the reward pool.
    /// Account-create: pre-created, no pool on this chain.
    bool user_creates = true;
    chain::Symbol wrapped_symbol;
    Amount transfer_amount = 0;
    Amount reward_amount = 0;  ///< eager, per attestation (user_creates)
    Tick create_deadline = 0;
    Tick attest_deadline = 0;
  };

  explicit BridgeClaimContract(Params p) : p_(std::move(p)) {}

  /// User creates the claim id and deposits the reward pool
  /// (reward_amount * n_witnesses, native coin).
  void create(chain::TxContext& ctx);

  /// Witness attestation of the source-chain commit. Accepted from any
  /// registered witness once, through the attest deadline, while the
  /// claim is open — including after quorum resolution, so every timely
  /// attester collects its eager reward. The quorum-th attestation
  /// releases `transfer_amount` of the wrapped asset to the user.
  void attest(chain::TxContext& ctx);

  /// Attest-deadline sweep: marks an unresolved claim failed; refunds the
  /// pool remainder to the user either way.
  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse).
  void reset() override;

  std::vector<Tick> deadline_schedule() const override {
    if (p_.user_creates) return {p_.create_deadline, p_.attest_deadline};
    return {p_.attest_deadline};
  }

  // -- Public state ---------------------------------------------------------
  const Params& params() const { return p_; }
  bool created() const { return created_; }
  std::uint64_t attester_mask() const { return attest_mask_; }
  int attester_count() const {
    int n = 0;
    for (std::uint64_t m = attest_mask_; m; m &= m - 1) ++n;
    return n;
  }
  bool attested(PartyId w) const {
    return is_witness(w) && (attest_mask_ >> (w - p_.party_base - 1)) & 1;
  }
  /// Quorum reached, wrapped asset released.
  bool resolved() const { return resolved_; }
  /// Attest window closed short of quorum.
  bool failed() const { return failed_; }
  /// resolved() or failed() — the settle reports' trigger.
  bool outcome_known() const { return resolved_ || failed_; }
  bool closed() const { return closed_; }

 private:
  bool is_witness(PartyId w) const {
    return w > p_.party_base &&
           w <= p_.party_base + static_cast<PartyId>(p_.n_witnesses);
  }
  Amount reward_pool() const {
    return p_.user_creates ? p_.reward_amount * p_.n_witnesses : 0;
  }

  Params p_;
  SymbolId wrapped_ = SymbolTable::intern(p_.wrapped_symbol);
  bool created_ = !p_.user_creates;
  std::uint64_t attest_mask_ = 0;
  Amount rewards_paid_ = 0;
  bool resolved_ = false;
  bool failed_ = false;
  bool closed_ = false;

  auto state_tie() {
    return std::tie(created_, attest_mask_, rewards_paid_, resolved_, failed_,
                    closed_);
  }
  friend chain::SnapshotState<BridgeClaimContract>;
};

}  // namespace xchain::contracts
