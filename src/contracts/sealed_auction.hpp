#pragma once

#include <optional>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "contracts/auction.hpp"
#include "crypto/secret.hpp"

namespace xchain::contracts {

/// Sealed-bid variant of the coin-chain auction contract — the two-round
/// commit-reveal scheme the paper's footnote 8 names as the realistic
/// extension ("the bidders might use a two-round commit-reveal scheme to
/// keep their bids secret from one another, a topic beyond this paper's
/// scope").
///
/// Phases (each Delta, prepended to the §9 schedule):
///   commit:  each bidder escrows a fixed collateral M alongside
///            H(bid || nonce) — the uniform collateral hides the bid;
///   reveal:  each bidder opens (bid, nonce); bid must be in (0, M];
///            the unbid excess M - bid is refunded immediately;
///   then declaration / challenge / commit proceed exactly as in the open
///   auction over the *revealed* bids.
///
/// A bidder who commits but never reveals simply drops out: its collateral
/// is refunded at settlement (it cannot lock anyone else up, so §9.2's
/// "bidders pay no premiums" reasoning still applies — withholding a
/// reveal is like withholding a bid).
class SealedCoinAuctionContract
    : public chain::SnapshotState<SealedCoinAuctionContract> {
 public:
  struct Params {
    AuctionTerms terms;             ///< commit ends at terms.bid_deadline
    Amount premium_per_bidder = 0;  ///< p
    Amount collateral = 0;          ///< M, escrowed with each commitment
    Tick reveal_deadline = 0;       ///< end of the reveal phase
  };

  explicit SealedCoinAuctionContract(Params p);

  /// Auctioneer deposits n * p before commitments can be accepted.
  void endow_premium(chain::TxContext& ctx);

  /// Bidder escrows the collateral M and records H(bid || nonce).
  void commit_bid(chain::TxContext& ctx, const crypto::Digest& commitment);

  /// Bidder opens its commitment; the excess collateral refunds at once.
  void reveal_bid(chain::TxContext& ctx, Amount bid,
                  const crypto::Bytes& nonce);

  /// Same as the open auction (hashkeys identify the declared winner).
  void present_hashkey(chain::TxContext& ctx, std::size_t i,
                       const crypto::Hashkey& key);

  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse).
  void reset() override;

  // -- Public state -----------------------------------------------------------
  const Params& params() const { return p_; }
  bool premium_endowed() const { return premium_endowed_; }
  bool committed(std::size_t i) const { return commitments_[i].has_value(); }
  std::optional<Amount> revealed_bid(std::size_t i) const {
    return revealed_[i];
  }
  bool hashkey_received(std::size_t i) const { return keys_[i].has_value(); }
  const std::optional<crypto::Hashkey>& presented_hashkey(
      std::size_t i) const {
    return keys_[i];
  }
  bool settled() const { return settled_; }
  bool completed_cleanly() const { return clean_; }
  /// Highest *revealed* bidder.
  std::optional<std::size_t> winner() const;

  /// The canonical commitment digest: SHA-256(bid_be64 || nonce).
  static crypto::Digest commitment_of(Amount bid,
                                      const crypto::Bytes& nonce);

 private:
  Params p_;
  crypto::VerifyCache vcache_;
  bool premium_endowed_ = false;
  std::vector<std::optional<crypto::Digest>> commitments_;
  std::vector<std::optional<Amount>> revealed_;
  std::vector<std::optional<crypto::Hashkey>> keys_;
  bool settled_ = false;
  bool clean_ = false;

  /// Every mutable member (exactly what reset() clears).
  auto state_tie() {
    return std::tie(premium_endowed_, commitments_, revealed_, keys_,
                    settled_, clean_);
  }
  friend chain::SnapshotState<SealedCoinAuctionContract>;
};

}  // namespace xchain::contracts
