#include "contracts/bridge.hpp"

#include <string>

namespace xchain::contracts {

// ---------------------------------------------------------------------------
// BridgeDoorContract
// ---------------------------------------------------------------------------

void BridgeDoorContract::deposit_premium(chain::TxContext& ctx) {
  if (!p_.hedged || ctx.sender() != p_.user || premium_deposited()) return;
  if (ctx.now() > p_.premium_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "premium_rejected", "past premium deadline");
    }
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(p_.user), address(),
                             ctx.native_id(), p_.premium_amount)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "premium_rejected", "insufficient balance");
    }
    return;
  }
  premium_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "premium_deposited", std::to_string(p_.premium_amount));
  }
}

void BridgeDoorContract::post_bond(chain::TxContext& ctx) {
  const PartyId w = ctx.sender();
  if (!p_.hedged || !is_witness(w) || bond_posted(w)) return;
  if (ctx.now() > p_.bond_deadline) {
    if (ctx.tracing()) ctx.emit(id(), "bond_rejected", "past bond deadline");
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(w), address(),
                             ctx.native_id(), p_.bond_amount)) {
    if (ctx.tracing()) ctx.emit(id(), "bond_rejected", "insufficient balance");
    return;
  }
  bonds_mask_ |= 1ull << (w - p_.party_base - 1);
  if (ctx.tracing()) {
    ctx.emit(id(), "bond_posted", "witness " + std::to_string(w));
  }
}

void BridgeDoorContract::commit(chain::TxContext& ctx) {
  if (ctx.sender() != p_.user || committed() || commit_window_closed_) return;
  if (ctx.now() > p_.commit_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "commit_rejected", "past commit deadline");
    }
    return;
  }
  if (p_.hedged &&
      (!premium_deposited() || bonds_posted() < p_.quorum)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "commit_rejected", "premium or bond quorum missing");
    }
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(p_.user), address(), sym_,
                             p_.principal_amount)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "commit_rejected", "insufficient principal");
    }
    return;
  }
  if (p_.rewards_at_door &&
      !ctx.ledger().transfer(chain::Address::party(p_.user), address(),
                             ctx.native_id(), reward_pool())) {
    // Unwind the principal: a commit without its reward pool is no commit.
    ctx.ledger().transfer(address(), chain::Address::party(p_.user), sym_,
                          p_.principal_amount);
    if (ctx.tracing()) {
      ctx.emit(id(), "commit_rejected", "insufficient reward pool");
    }
    return;
  }
  committed_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "committed",
             p_.principal_symbol + ":" + std::to_string(p_.principal_amount));
  }
}

void BridgeDoorContract::report_settle(chain::TxContext& ctx, bool success,
                                       std::uint64_t attester_mask) {
  if (!is_witness(ctx.sender()) || !committed() || settled_) return;
  if (ctx.now() > p_.settle_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "report_rejected", "past settle deadline");
    }
    return;
  }
  success_reported_ = success_reported_ || success;
  reported_mask_ |= attester_mask & witness_mask();
  if (ctx.tracing()) {
    ctx.emit(id(), "settle_reported",
             "witness " + std::to_string(ctx.sender()) +
                 (success ? " success" : " failure"));
  }
}

void BridgeDoorContract::refund_bonds(chain::TxContext& ctx,
                                      std::uint64_t mask) {
  for (int bit = 0; bit < p_.n_witnesses; ++bit) {
    if ((mask >> bit) & 1) {
      ctx.ledger().transfer(address(), chain::Address::party(witness_at(bit)),
                            ctx.native_id(), p_.bond_amount);
    }
  }
}

void BridgeDoorContract::refund_premium(chain::TxContext& ctx) {
  if (!premium_deposited() || premium_refunded_ || premium_split_) return;
  ctx.ledger().transfer(address(), chain::Address::party(p_.user),
                        ctx.native_id(), p_.premium_amount);
  premium_refunded_ = true;
}

void BridgeDoorContract::resolve_no_commit(chain::TxContext& ctx) {
  commit_window_closed_ = true;
  const int bonded = bonds_posted();
  if (premium_deposited() && bonded >= p_.quorum) {
    // The witnesses held up their side and the user walked away: the
    // premium is theirs (integer split, remainder back to the user).
    const Amount share = p_.premium_amount / bonded;
    for (int bit = 0; bit < p_.n_witnesses; ++bit) {
      if ((bonds_mask_ >> bit) & 1) {
        ctx.ledger().transfer(address(), chain::Address::party(witness_at(bit)),
                              ctx.native_id(), share);
      }
    }
    const Amount remainder = p_.premium_amount - share * bonded;
    if (remainder > 0) {
      ctx.ledger().transfer(address(), chain::Address::party(p_.user),
                            ctx.native_id(), remainder);
    }
    premium_split_ = true;
    if (ctx.tracing()) {
      ctx.emit(id(), "premium_split",
               "among " + std::to_string(bonded) + " bonded witnesses");
    }
  } else {
    refund_premium(ctx);
  }
  refund_bonds(ctx, bonds_mask_);
  if (ctx.tracing()) ctx.emit(id(), "commit_window_closed", "no commit");
}

void BridgeDoorContract::resolve_settle(chain::TxContext& ctx) {
  settled_ = true;
  settle_success_ = success_reported_;
  refund_premium(ctx);
  if (settle_success_) {
    // Principal stays in the door backing the wrapped issuance; every
    // bond refunds (non-attesters did no harm on a completed transfer).
    refund_bonds(ctx, bonds_mask_);
    if (p_.rewards_at_door) {
      Amount paid = 0;
      for (int bit = 0; bit < p_.n_witnesses; ++bit) {
        if ((reported_mask_ >> bit) & 1) {
          ctx.ledger().transfer(address(),
                                chain::Address::party(witness_at(bit)),
                                ctx.native_id(), p_.reward_amount);
          paid += p_.reward_amount;
        }
      }
      if (reward_pool() > paid) {
        ctx.ledger().transfer(address(), chain::Address::party(p_.user),
                              ctx.native_id(), reward_pool() - paid);
      }
    }
    if (ctx.tracing()) ctx.emit(id(), "settled", "success");
  } else {
    ctx.ledger().transfer(address(), chain::Address::party(p_.user), sym_,
                          p_.principal_amount);
    principal_refunded_ = true;
    if (p_.rewards_at_door && reward_pool() > 0) {
      ctx.ledger().transfer(address(), chain::Address::party(p_.user),
                            ctx.native_id(), reward_pool());
    }
    // Reported attesters kept their side: bonds refund. The rest forfeit
    // to the user — the premium compensation of the paper's construction.
    refund_bonds(ctx, bonds_mask_ & reported_mask_);
    forfeited_mask_ = bonds_mask_ & ~reported_mask_;
    if (forfeited_mask_ != 0) {
      ctx.ledger().transfer(address(), chain::Address::party(p_.user),
                            ctx.native_id(),
                            p_.bond_amount * bonds_forfeited());
    }
    if (ctx.tracing()) {
      ctx.emit(id(), "settled",
               "failure, " + std::to_string(bonds_forfeited()) +
                   " bonds forfeited");
    }
  }
}

void BridgeDoorContract::on_block(chain::TxContext& ctx) {
  if (!committed() && !commit_window_closed_ &&
      ctx.now() > p_.commit_deadline) {
    resolve_no_commit(ctx);
  }
  if (committed() && !settled_ && ctx.now() > p_.settle_deadline) {
    resolve_settle(ctx);
  }
}

void BridgeDoorContract::reset() {
  premium_at_.reset();
  committed_at_.reset();
  bonds_mask_ = 0;
  reported_mask_ = 0;
  forfeited_mask_ = 0;
  success_reported_ = false;
  commit_window_closed_ = false;
  settled_ = false;
  settle_success_ = false;
  principal_refunded_ = false;
  premium_refunded_ = false;
  premium_split_ = false;
}

// ---------------------------------------------------------------------------
// BridgeClaimContract
// ---------------------------------------------------------------------------

void BridgeClaimContract::create(chain::TxContext& ctx) {
  if (!p_.user_creates || ctx.sender() != p_.user || created_) return;
  if (ctx.now() > p_.create_deadline) {
    if (ctx.tracing()) ctx.emit(id(), "create_rejected", "past deadline");
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(p_.user), address(),
                             ctx.native_id(), reward_pool())) {
    if (ctx.tracing()) {
      ctx.emit(id(), "create_rejected", "insufficient reward pool");
    }
    return;
  }
  created_ = true;
  if (ctx.tracing()) {
    ctx.emit(id(), "claim_created", "pool " + std::to_string(reward_pool()));
  }
}

void BridgeClaimContract::attest(chain::TxContext& ctx) {
  const PartyId w = ctx.sender();
  if (!is_witness(w) || !created_ || failed_ || attested(w)) return;
  if (ctx.now() > p_.attest_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "attest_rejected", "past attest deadline");
    }
    return;
  }
  attest_mask_ |= 1ull << (w - p_.party_base - 1);
  if (p_.user_creates && p_.reward_amount > 0) {
    // Eager reward: collected on acceptance, quorum or not (the bridge
    // attack surface the hedge compensates for).
    ctx.ledger().transfer(address(), chain::Address::party(w),
                          ctx.native_id(), p_.reward_amount);
    rewards_paid_ += p_.reward_amount;
  }
  if (ctx.tracing()) {
    ctx.emit(id(), "attested", "witness " + std::to_string(w));
  }
  if (!resolved_ && attester_count() >= p_.quorum) {
    ctx.ledger().transfer(address(), chain::Address::party(p_.user), wrapped_,
                          p_.transfer_amount);
    resolved_ = true;
    if (ctx.tracing()) {
      ctx.emit(id(), "claim_resolved",
               "quorum of " + std::to_string(p_.quorum));
    }
  }
}

void BridgeClaimContract::on_block(chain::TxContext& ctx) {
  if (closed_ || ctx.now() <= p_.attest_deadline) return;
  closed_ = true;
  if (!resolved_) failed_ = true;
  const Amount remainder = reward_pool() - rewards_paid_;
  if (created_ && remainder > 0) {
    ctx.ledger().transfer(address(), chain::Address::party(p_.user),
                          ctx.native_id(), remainder);
  }
  if (ctx.tracing()) {
    ctx.emit(id(), "claim_closed", failed_ ? "failed" : "completed");
  }
}

void BridgeClaimContract::reset() {
  created_ = !p_.user_creates;
  attest_mask_ = 0;
  rewards_paid_ = 0;
  resolved_ = false;
  failed_ = false;
  closed_ = false;
}

}  // namespace xchain::contracts
