#pragma once

#include <optional>
#include <string>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/secret.hpp"

namespace xchain::contracts {

/// Hashed timelock contract — the escrow primitive of the base two-party
/// swap (paper §5.1, [Nolan '13]).
///
/// Lifecycle: the funder escrows the principal; if the counterparty submits
/// the hashlock preimage before the timelock, the principal transfers to
/// the counterparty (and the preimage becomes public on this chain);
/// otherwise the principal is refunded at the timelock.
///
/// Deadlines are inclusive: an action is timely iff it lands in a block
/// with height <= deadline; the timeout sweep fires at height > deadline.
/// (Inclusive deadlines make the paper's schedule work at any Delta >= 1
/// tick, since reacting to block t lands in block t+1.)
class HtlcContract : public chain::SnapshotState<HtlcContract> {
 public:
  struct Params {
    PartyId funder = kNoParty;        ///< escrows the principal
    PartyId counterparty = kNoParty;  ///< receives it on redemption
    chain::Symbol symbol;
    Amount amount = 0;
    crypto::Digest hashlock{};
    Tick escrow_deadline = 0;  ///< funding timely iff height <= this
    Tick timelock = 0;         ///< redemption iff height <= this; then refund
  };

  explicit HtlcContract(Params p) : p_(std::move(p)) {}

  /// Escrows the principal. Requires: sender is the funder, not yet funded,
  /// before the escrow deadline, and sufficient balance.
  void fund(chain::TxContext& ctx);

  /// Redeems with `preimage`. Pays the counterparty and publishes the
  /// preimage. Requires: funded, unresolved, before the timelock, and
  /// SHA-256(preimage) == hashlock. Any sender may submit (the contract
  /// pays the fixed counterparty regardless).
  void redeem(chain::TxContext& ctx, const crypto::Bytes& preimage);

  /// Timeout sweep: refunds the principal at/after the timelock.
  void on_block(chain::TxContext& ctx) override;

  /// Restores the just-constructed state (world reuse).
  void reset() override;

  // -- Public state (anyone may read) --------------------------------------
  const Params& params() const { return p_; }
  bool funded() const { return funded_at_.has_value(); }
  bool redeemed() const { return redeemed_; }
  bool refunded() const { return refunded_; }
  bool resolved() const { return redeemed_ || refunded_; }

  /// The preimage, public once redeemed — how Bob learns s in step (4).
  const std::optional<crypto::Bytes>& revealed_preimage() const {
    return preimage_;
  }

  std::optional<Tick> funded_at() const { return funded_at_; }
  std::optional<Tick> resolved_at() const { return resolved_at_; }

 private:
  Params p_;
  SymbolId sym_ = SymbolTable::intern(p_.symbol);
  std::optional<Tick> funded_at_;
  std::optional<Tick> resolved_at_;
  bool redeemed_ = false;
  bool refunded_ = false;
  std::optional<crypto::Bytes> preimage_;

  /// Every mutable member (exactly what reset() clears).
  auto state_tie() {
    return std::tie(funded_at_, resolved_at_, redeemed_, refunded_,
                    preimage_);
  }
  friend chain::SnapshotState<HtlcContract>;
};

}  // namespace xchain::contracts
