#include "contracts/hedged_swap.hpp"

namespace xchain::contracts {

void HedgedSwapContract::deposit_premium(chain::TxContext& ctx) {
  if (ctx.sender() != p_.premium_payer || premium_deposited()) return;
  if (ctx.now() > p_.premium_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "premium_rejected", "past premium deadline");
    }
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(p_.premium_payer),
                             address(), ctx.native_id(),
                             p_.premium_amount)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "premium_rejected", "insufficient balance");
    }
    return;
  }
  premium_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "premium_deposited", std::to_string(p_.premium_amount));
  }
}

void HedgedSwapContract::escrow_principal(chain::TxContext& ctx) {
  if (ctx.sender() != p_.principal_owner || escrowed()) return;
  if (ctx.now() > p_.escrow_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "escrow_rejected", "past escrow deadline");
    }
    return;
  }
  if (!ctx.ledger().transfer(chain::Address::party(p_.principal_owner),
                             address(), sym_, p_.principal_amount)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "escrow_rejected", "insufficient balance");
    }
    return;
  }
  escrowed_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "escrowed",
             p_.principal_symbol + ":" + std::to_string(p_.principal_amount));
  }
}

void HedgedSwapContract::redeem(chain::TxContext& ctx,
                                const crypto::Bytes& preimage) {
  if (!escrowed() || principal_resolved()) return;
  if (ctx.now() > p_.redemption_deadline) {
    if (ctx.tracing()) {
      ctx.emit(id(), "redeem_rejected", "past redemption deadline");
    }
    return;
  }
  if (!crypto::opens(p_.hashlock, preimage)) {
    if (ctx.tracing()) ctx.emit(id(), "redeem_rejected", "bad preimage");
    return;
  }
  preimage_ = preimage;
  ctx.ledger().transfer(address(), chain::Address::party(p_.premium_payer),
                        sym_, p_.principal_amount);
  redeemed_ = true;
  principal_resolved_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "redeemed", "to " + std::to_string(p_.premium_payer));
  }
  if (premium_deposited() && !premium_resolved()) {
    resolve_premium(ctx, p_.premium_payer, /*award=*/false);
  }
}

void HedgedSwapContract::resolve_premium(chain::TxContext& ctx, PartyId to,
                                         bool award) {
  ctx.ledger().transfer(address(), chain::Address::party(to), ctx.native_id(),
                        p_.premium_amount);
  (award ? premium_awarded_ : premium_refunded_) = true;
  premium_resolved_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), award ? "premium_awarded" : "premium_refunded",
             "to " + std::to_string(to));
  }
}

void HedgedSwapContract::on_block(chain::TxContext& ctx) {
  // No principal by the escrow deadline: the premium's purpose is gone.
  if (premium_deposited() && !premium_resolved() && !escrowed() &&
      ctx.now() > p_.escrow_deadline) {
    resolve_premium(ctx, p_.premium_payer, /*award=*/false);
  }
  // Principal escrowed but never redeemed: refund it and award the premium
  // to the locked-up owner.
  if (escrowed() && !principal_resolved() &&
      ctx.now() > p_.redemption_deadline) {
    ctx.ledger().transfer(address(),
                          chain::Address::party(p_.principal_owner), sym_,
                          p_.principal_amount);
    principal_refunded_ = true;
    principal_resolved_at_ = ctx.now();
    if (ctx.tracing()) {
      ctx.emit(id(), "refunded", "to " + std::to_string(p_.principal_owner));
    }
    if (premium_deposited() && !premium_resolved()) {
      resolve_premium(ctx, p_.principal_owner, /*award=*/true);
    }
  }
}

void HedgedSwapContract::reset() {
  premium_at_.reset();
  escrowed_at_.reset();
  principal_resolved_at_.reset();
  premium_resolved_at_.reset();
  redeemed_ = false;
  principal_refunded_ = false;
  premium_refunded_ = false;
  premium_awarded_ = false;
  preimage_.reset();
}

}  // namespace xchain::contracts
