#include "contracts/broker.hpp"

#include <algorithm>

#include "core/premiums.hpp"

namespace xchain::contracts {

BrokerChainContract::BrokerChainContract(Params p)
    : p_(std::move(p)),
      diam_(p_.g.diameter()),
      rp_escrow_(p_.hashlocks.size()),
      rp_trading_(p_.hashlocks.size()),
      keys_escrow_(p_.hashlocks.size()),
      keys_trading_(p_.hashlocks.size()) {
  ep_.amount = p_.escrow_premium;
  ep_.payer = p_.escrow_arc.from;
  tp_.amount = p_.trading_premium;
  tp_.payer = p_.trading_arc.from;
}

PartyId BrokerChainContract::local_sender(const chain::TxContext& ctx) const {
  return ctx.sender() - p_.party_base;
}

bool BrokerChainContract::premium_activated(Which arc) const {
  const auto& slots = slots_of(arc);
  return std::all_of(slots.begin(), slots.end(), [](const auto& s) {
    return s.deposited_at.has_value();
  });
}

bool BrokerChainContract::all_open(Which a) const {
  const auto& keys = keys_of(a);
  return std::all_of(keys.begin(), keys.end(),
                     [](const auto& k) { return k.has_value(); });
}

void BrokerChainContract::deposit_escrow_premium(chain::TxContext& ctx) {
  if (local_sender(ctx) != ep_.payer || ep_.deposited) return;
  if (ctx.now() > p_.escrow_premium_deadline) return;
  if (!ctx.ledger().transfer(acct(ep_.payer), address(),
                             ctx.native_id(), ep_.amount)) {
    return;
  }
  ep_.deposited = true;
  if (ctx.tracing()) {
    ctx.emit(id(), "escrow_premium_deposited", std::to_string(ep_.amount));
  }
}

void BrokerChainContract::deposit_trading_premium(chain::TxContext& ctx) {
  if (local_sender(ctx) != tp_.payer || tp_.deposited) return;
  if (ctx.now() > p_.trading_premium_deadline) return;
  if (!ctx.ledger().transfer(acct(tp_.payer), address(),
                             ctx.native_id(), tp_.amount)) {
    return;
  }
  tp_.deposited = true;
  if (ctx.tracing()) {
    ctx.emit(id(), "trading_premium_deposited", std::to_string(tp_.amount));
  }
}

void BrokerChainContract::deposit_redemption_premium(
    chain::TxContext& ctx, Which arc, std::size_t leader_index,
    const graph::Path& q, const crypto::Signature& path_sig) {
  if (leader_index >= p_.hashlocks.size()) return;
  RedemptionSlot& slot = slots_of(arc)[leader_index];
  const graph::Arc& a = arc_of(arc);
  const PartyId sender = local_sender(ctx);
  if (sender != a.to || slot.deposited_at) return;
  // Per-path-length deadline (§7.1, as in the multi-party arc contract): a
  // late hop is rejected before it can extend activation past its window,
  // so a deviant party delaying the backward flow can never leave the
  // premium lattice asymmetrically activated. premium_base == 0 falls
  // back to the flat deadline (directly-constructed contracts).
  const Tick path_limit =
      p_.premium_base > 0
          ? p_.premium_base + static_cast<Tick>(q.size()) * p_.delta
          : p_.redemption_premium_deadline;
  if (ctx.now() > p_.redemption_premium_deadline ||
      ctx.now() > path_limit) {
    if (ctx.tracing()) {
      ctx.emit(id(), "redemption_premium_rejected", "too late");
    }
    return;
  }
  if (!p_.g.is_path(q) || q.front() != a.to ||
      q.back() != p_.hashlocks[leader_index].leader) {
    if (ctx.tracing()) {
      ctx.emit(id(), "redemption_premium_rejected", "bad path");
    }
    return;
  }
  if (!vcache_.verify_premium_path(p_.party_keys[sender], leader_index,
                                   q, path_sig)) {
    if (ctx.tracing()) {
      ctx.emit(id(), "redemption_premium_rejected", "bad signature");
    }
    return;
  }
  const std::pair<PartyId, graph::Path> memo_key{a.from, q};
  const auto memo = rp_amount_memo_.find(memo_key);
  const Amount amount =
      memo != rp_amount_memo_.end()
          ? memo->second
          : rp_amount_memo_
                .emplace(memo_key, core::redemption_premium(
                                       p_.g, q, a.from, p_.premium_unit))
                .first->second;
  if (!ctx.ledger().transfer(acct(a.to), address(),
                             ctx.native_id(), amount)) {
    return;
  }
  slot.amount = amount;
  slot.path = q;
  slot.deposited_at = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "redemption_premium_deposited",
             "arc " + std::to_string(static_cast<int>(arc)) + " leader " +
                 std::to_string(leader_index) + " amount " +
                 std::to_string(amount));
  }
}

void BrokerChainContract::escrow(chain::TxContext& ctx) {
  if (local_sender(ctx) != p_.escrow_arc.from || escrowed_at_) return;
  if (ctx.now() > p_.escrow_deadline) return;
  if (!ctx.ledger().transfer(acct(p_.escrow_arc.from),
                             address(), sym_, p_.escrow_amount)) {
    return;
  }
  escrowed_at_ = ctx.now();
  escrow_bucket_ = p_.escrow_amount;
  if (ctx.tracing()) {
    ctx.emit(id(), "escrowed",
             p_.symbol + ":" + std::to_string(p_.escrow_amount));
  }
  if (ep_.deposited && !ep_.refunded && !ep_.awarded) {
    pay_simple(ctx, ep_, ep_.payer, /*award=*/false, "escrow_premium");
  }
}

void BrokerChainContract::trade(chain::TxContext& ctx) {
  if (local_sender(ctx) != p_.trading_arc.from || traded_at_) return;
  if (ctx.now() > p_.trading_deadline) return;
  if (escrow_bucket_ < p_.trading_amount) {
    if (ctx.tracing()) {
      ctx.emit(id(), "trade_rejected", "escrow bucket underfunded");
    }
    return;
  }
  escrow_bucket_ -= p_.trading_amount;
  trading_bucket_ += p_.trading_amount;
  traded_at_ = ctx.now();
  if (ctx.tracing()) {
    ctx.emit(id(), "traded", std::to_string(p_.trading_amount));
  }
  if (tp_.deposited && !tp_.refunded && !tp_.awarded) {
    pay_simple(ctx, tp_, tp_.payer, /*award=*/false, "trading_premium");
  }
}

void BrokerChainContract::present_hashkey(chain::TxContext& ctx, Which arc,
                                          std::size_t leader_index,
                                          const crypto::Hashkey& key) {
  if (leader_index >= p_.hashlocks.size()) return;
  auto& keys = keys_of(arc);
  if (keys[leader_index]) return;
  const graph::Arc& a = arc_of(arc);
  if (ctx.now() > path_deadline(key.path.size())) {
    if (ctx.tracing()) ctx.emit(id(), "hashkey_rejected", "timed out");
    return;
  }
  if (!p_.g.is_path(key.path) || key.presenter() != a.to ||
      key.leader() != p_.hashlocks[leader_index].leader) {
    if (ctx.tracing()) ctx.emit(id(), "hashkey_rejected", "bad path");
    return;
  }
  const auto key_of = [this](PartyId pid) { return p_.party_keys[pid]; };
  if (!vcache_.verify_hashkey(key, p_.hashlocks[leader_index].digest,
                              key_of)) {
    if (ctx.tracing()) ctx.emit(id(), "hashkey_rejected", "bad crypto");
    return;
  }
  keys[leader_index] = key;
  if (ctx.tracing()) {
    ctx.emit(id(), "hashkey_presented",
             "arc " + std::to_string(static_cast<int>(arc)) + " leader " +
                 std::to_string(leader_index));
  }

  RedemptionSlot& slot = slots_of(arc)[leader_index];
  if (slot.deposited_at && !slot.refunded && !slot.awarded) {
    ctx.ledger().transfer(address(), acct(a.to),
                          ctx.native_id(), slot.amount);
    slot.refunded = true;
    if (ctx.tracing()) {
      ctx.emit(id(), "redemption_premium_refunded",
               "arc " + std::to_string(static_cast<int>(arc)) + " leader " +
                   std::to_string(leader_index));
    }
  }
  try_redeem(ctx, arc);
}

void BrokerChainContract::try_redeem(chain::TxContext& ctx, Which arc) {
  if (refunded_ || !all_open(arc)) return;
  if (arc == Which::kEscrowArc && !escrow_redeemed_ && escrowed_at_) {
    escrow_redeemed_ = true;
    if (escrow_bucket_ > 0) {
      ctx.ledger().transfer(address(), acct(p_.escrow_arc.to),
                            sym_, escrow_bucket_);
      escrow_bucket_ = 0;
    }
    if (ctx.tracing()) ctx.emit(id(), "redeemed", "escrow arc");
  }
  if (arc == Which::kTradingArc && !trading_redeemed_ && traded_at_) {
    trading_redeemed_ = true;
    ctx.ledger().transfer(address(), acct(p_.trading_arc.to),
                          sym_, trading_bucket_);
    trading_bucket_ = 0;
    if (ctx.tracing()) ctx.emit(id(), "redeemed", "trading arc");
  }
}

void BrokerChainContract::pay_simple(chain::TxContext& ctx,
                                     SimplePremium& prem, PartyId to,
                                     bool award, const char* label) {
  ctx.ledger().transfer(address(), acct(to), ctx.native_id(),
                        prem.amount);
  (award ? prem.awarded : prem.refunded) = true;
  if (ctx.tracing()) {
    ctx.emit(id(), std::string(label) + (award ? "_awarded" : "_refunded"),
             "to " + std::to_string(to));
  }
}

void BrokerChainContract::on_block(chain::TxContext& ctx) {
  // Escrow premium at the escrow deadline.
  if (ep_.deposited && !ep_.refunded && !ep_.awarded && !escrowed_at_ &&
      ctx.now() > p_.escrow_deadline) {
    if (premium_activated(Which::kEscrowArc)) {
      pay_simple(ctx, ep_, p_.escrow_arc.to, /*award=*/true,
                 "escrow_premium");
    } else {
      pay_simple(ctx, ep_, ep_.payer, /*award=*/false, "escrow_premium");
    }
  }
  // Trading premium at the trading deadline.
  if (tp_.deposited && !tp_.refunded && !tp_.awarded && !traded_at_ &&
      ctx.now() > p_.trading_deadline) {
    if (premium_activated(Which::kTradingArc)) {
      pay_simple(ctx, tp_, p_.trading_arc.to, /*award=*/true,
                 "trading_premium");
    } else {
      pay_simple(ctx, tp_, tp_.payer, /*award=*/false, "trading_premium");
    }
  }
  // Redemption premiums past their per-path deadlines.
  for (Which arc : {Which::kEscrowArc, Which::kTradingArc}) {
    auto& slots = slots_of(arc);
    const auto& keys = keys_of(arc);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      RedemptionSlot& s = slots[i];
      if (s.deposited_at && !s.refunded && !s.awarded && !keys[i] &&
          ctx.now() > path_deadline(s.path.size())) {
        ctx.ledger().transfer(address(), acct(arc_of(arc).from),
                              ctx.native_id(), s.amount);
        s.awarded = true;
        if (ctx.tracing()) {
          ctx.emit(id(), "redemption_premium_awarded",
                   "arc " + std::to_string(static_cast<int>(arc)) +
                       " leader " + std::to_string(i));
        }
      }
    }
  }
  // Final refund of whatever assets remain, to the original owner.
  if (!refunded_ && escrowed_at_ &&
      ctx.now() > path_deadline(p_.g.size())) {
    const Amount remainder = escrow_bucket_ + trading_bucket_;
    if (remainder > 0) {
      ctx.ledger().transfer(address(), acct(p_.escrow_arc.from),
                            sym_, remainder);
      escrow_bucket_ = trading_bucket_ = 0;
      refunded_ = true;
      if (ctx.tracing()) {
        ctx.emit(id(), "refunded",
                 "to " + std::to_string(p_.escrow_arc.from));
      }
    }
  }
}

void BrokerChainContract::reset() {
  const auto clear_simple = [](SimplePremium& prem) {
    prem.deposited = false;
    prem.refunded = false;
    prem.awarded = false;
  };
  clear_simple(ep_);
  clear_simple(tp_);
  for (auto* slots : {&rp_escrow_, &rp_trading_}) {
    for (RedemptionSlot& s : *slots) {
      s.amount = 0;
      s.path.clear();
      s.deposited_at.reset();
      s.refunded = false;
      s.awarded = false;
    }
  }
  for (auto* keys : {&keys_escrow_, &keys_trading_}) {
    for (auto& k : *keys) k.reset();
  }
  escrowed_at_.reset();
  traded_at_.reset();
  escrow_bucket_ = 0;
  trading_bucket_ = 0;
  escrow_redeemed_ = false;
  trading_redeemed_ = false;
  refunded_ = false;
}

}  // namespace xchain::contracts
