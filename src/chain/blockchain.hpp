#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "chain/address.hpp"
#include "chain/event.hpp"
#include "chain/fault.hpp"
#include "chain/ledger.hpp"
#include "chain/snapshot.hpp"
#include "common/types.hpp"

namespace xchain::chain {

class Blockchain;

/// How much human-readable trace a chain records. Sweep runs execute
/// millions of transactions whose traces nobody reads; kOff stops the
/// per-transaction string traffic (event logs and submit-site note labels)
/// without touching protocol behaviour. Tests and examples keep kFull.
enum class TraceMode : std::uint8_t { kFull, kOff };

/// Execution context handed to contract code while a transaction (or the
/// per-block timeout sweep) runs. It exposes *only this chain's* state —
/// contracts cannot observe other chains (paper §3.1); cross-chain
/// information travels exclusively via parties re-submitting it.
class TxContext {
 public:
  /// Height of the block being produced.
  Tick now() const { return now_; }

  /// The party that signed the transaction (kNoParty during the timeout
  /// sweep, which models anyone triggering an expired refund).
  PartyId sender() const { return sender_; }

  ChainId chain_id() const;

  /// Mutable same-chain balance book.
  Ledger& ledger();

  /// The chain's native currency symbol (used for premiums).
  const Symbol& native() const;

  /// Interned handle for the native symbol — the hot-path spelling.
  SymbolId native_id() const;

  /// False when the chain runs traceless (TraceMode::kOff): callers should
  /// skip building emit() arguments entirely.
  bool tracing() const;

  /// Appends to the chain's public event log (no-op when traceless).
  void emit(ContractId contract, std::string kind, std::string detail = "");

 private:
  friend class Blockchain;
  TxContext(Blockchain& bc, PartyId sender, Tick now)
      : bc_(bc), sender_(sender), now_(now) {}

  Blockchain& bc_;
  PartyId sender_;
  Tick now_;
};

/// A signed transaction: a deterministic state transition applied when the
/// next block is produced. The closure body is the "contract call payload";
/// it invokes typed methods on contract objects, which validate sender,
/// amounts, and deadlines themselves.
struct Transaction {
  PartyId sender = kNoParty;
  std::string note;  ///< trace label, e.g. "alice: escrow principal"
  std::function<void(TxContext&)> effect;
  /// Inclusion priority under a capacity squeeze (FaultPlan). Fees are
  /// *virtual*: they order block selection but are never debited, so the
  /// audit's conservation invariant is untouched. Higher wins; ties break
  /// by submission order (older first).
  Amount fee = 0;
  /// Record an inclusion/drop/eviction status for this tx (resilient
  /// parties set this so they can observe and react; anonymous protocol
  /// traffic stays untracked and free).
  bool track = false;
  /// @{ Internal, assigned by Blockchain::submit — leave defaulted.
  std::uint64_t seq = 0;  ///< chain-wide submission ordinal (per run)
  bool fresh = true;      ///< submitted since the last produced block
  /// @}
};

/// Lifecycle of a tracked transaction (Transaction::track).
enum class TxStatus : std::uint8_t {
  kUnknown,   ///< never tracked on this chain (or statuses were reset)
  kPending,   ///< sitting in the mempool
  kIncluded,  ///< applied in a produced block
  kDropped,   ///< discarded by a seeded submission-drop fault
  kEvicted,   ///< pushed out of a bounded mempool by higher-fee traffic
};

/// Base class for blockchain-resident programs (paper §3.1: passive,
/// public, deterministic, trusted). Derived classes expose typed methods
/// that require a TxContext&, so their state can only change inside block
/// production.
class Contract {
 public:
  Contract() = default;
  virtual ~Contract() = default;

  Contract(const Contract&) = delete;
  Contract& operator=(const Contract&) = delete;

  ContractId id() const { return id_; }
  ChainId chain_id() const { return chain_; }

  /// The contract's escrow account.
  Address address() const { return Address::contract(id_); }

  /// Invoked once per produced block, after transactions are applied.
  /// Contracts process expired timelocks here (refunds, premium awards) —
  /// modelling the convention that the entitled party always triggers an
  /// expired refund, which is their dominant strategy.
  virtual void on_block(TxContext& ctx) { (void)ctx; }

  /// Restores the contract to its just-constructed state. Reusable worlds
  /// (MultiChain::reset) call this once per schedule so sweep workers can
  /// re-run protocols on one arena-style world instead of redeploying.
  /// Contracts deployed on reusable chains must override this to clear
  /// every mutable member; pure caches of deterministic computation may
  /// survive.
  virtual void reset() {}

  /// Layered-checkpoint hook (the tree executor's tick-granular rewind,
  /// Blockchain::snap_push/snap_rewind). Contract implementers: derive
  /// from chain::SnapshotState<Self> instead of Contract directly and
  /// list every mutable member in state_tie() — exactly the members
  /// reset() clears. The default throws: a contract that supports only
  /// reset() must fail loudly if deployed on a tree-swept world, never
  /// silently carry state across branches.
  virtual void snapshot(SnapshotOp op, std::size_t depth) {
    (void)op;
    (void)depth;
    throw std::logic_error(
        "Contract::snapshot: contract does not support checkpoint "
        "stacking (derive from chain::SnapshotState and list mutable "
        "members in state_tie())");
  }

  /// Mixes this contract's mutable state into the rewind integrity hash.
  /// Provided by SnapshotState from the same state_tie().
  virtual void state_hash(std::uint64_t& h) const { (void)h; }

  /// The contract's claimed deadline ladder, in scheduled-step order, for
  /// Scheduler::validate_deadlines: consecutive entries (and the first
  /// entry, measured from tick 0) must sit >= Delta apart, the spacing the
  /// timing contract's "Delta-1 delays are always timely" guarantee rests
  /// on. Contracts making no sequential-spacing claim (e.g. the base
  /// §5.1 HTLC, whose coinciding timelocks are the paper's deliberate
  /// vulnerability) return the default empty ladder.
  virtual std::vector<Tick> deadline_schedule() const { return {}; }

 protected:
  /// SnapshotState hook for base-class mutable members (none here).
  void snapshot_members(SnapshotOp, std::size_t) {}
  void state_hash_members(std::uint64_t&) const {}

 private:
  friend class Blockchain;
  ContractId id_ = 0;
  ChainId chain_ = 0;
};

/// One simulated blockchain: a ledger, a contract registry, a mempool, and
/// an event log. Blocks are produced by the simulation scheduler at every
/// tick; a transaction submitted during tick t is included in block t and
/// visible to all parties from tick t+1 on.
class Blockchain {
 public:
  /// Observer invoked once per applied transaction (chain id, signer,
  /// block height). An external instrument — not chain state: reset() and
  /// snapshots leave it untouched. The load generator uses it to map
  /// inclusions back to protocol instances for latency percentiles.
  using InclusionObserver = std::function<void(ChainId, PartyId, Tick)>;

  Blockchain(ChainId id, std::string name, Symbol native);

  ChainId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Symbol& native() const { return native_; }
  SymbolId native_id() const { return native_id_; }

  TraceMode trace() const { return trace_; }
  void set_trace(TraceMode mode) { trace_ = mode; }
  bool tracing() const { return trace_ == TraceMode::kFull; }

  /// Read-only ledger view (public state).
  const Ledger& ledger() const { return ledger_; }

  /// Setup-only mutable ledger access for minting initial endowments.
  Ledger& ledger_for_setup() { return ledger_; }

  /// Height of the most recently produced block (-1 before the first).
  Tick height() const { return height_; }

  /// Public event log.
  const EventLog& events() const { return events_; }

  /// Queues a transaction for the next block and returns its submission
  /// id (the handle tx_status()/bump_fee() key on when tx.track is set).
  /// Throws std::logic_error on a halted or finalized chain — submitting
  /// past the end of the simulated timeline is a caller bug, never a
  /// silent no-op.
  std::uint64_t submit(Transaction tx);

  /// Status of a tracked submission (TxStatus::kUnknown for untracked
  /// ids or after reset()).
  TxStatus tx_status(std::uint64_t id) const;

  /// Raises a pending tracked transaction's fee to max(current, fee);
  /// returns false when the tx is no longer in the mempool.
  bool bump_fee(std::uint64_t id, Amount fee);

  /// Permanently stops the chain: produce_block becomes invalid and
  /// submit throws. Models an operator-level chain death (distinct from a
  /// FaultPlan outage, which parties may keep submitting through).
  void halt() { halted_ = true; }
  bool halted() const { return halted_; }

  /// Marks the simulated timeline complete: submit throws from here on.
  /// Worlds call this after their final tick; reset() re-opens the chain.
  void finalize() { finalized_ = true; }
  bool finalized() const { return finalized_; }

  /// Installs this chain's compiled fault clauses (empty = the reliable
  /// fast path, byte-identical to the historical substrate).
  void set_faults(ChainFaults faults) { faults_ = std::move(faults); }
  const ChainFaults& faults() const { return faults_; }

  /// The resubmission policy parties on this chain should follow (the
  /// chain is just the carrier: MultiChain::set_environment fans the
  /// world's policy out here so party code can read it per submission).
  void set_resilience(const ResiliencePolicy& policy) { resilience_ = policy; }
  const ResiliencePolicy& resilience() const { return resilience_; }

  /// Number of transactions applied over the chain's lifetime (zeroed by
  /// reset(), so reused worlds report per-run counts).
  std::size_t applied_tx_count() const { return applied_tx_count_; }

  /// Installs (or clears, with an empty function) the per-inclusion
  /// observer. At most one; the previous observer is replaced.
  void set_inclusion_observer(InclusionObserver obs) {
    on_included_ = std::move(obs);
  }

  /// Deployed-contract introspection (Scheduler::validate_deadlines).
  std::size_t contract_count() const { return contracts_.size(); }
  const Contract& contract_at(std::size_t i) const { return *contracts_.at(i); }

  /// Deploys a contract; returns a stable reference. Deployment happens at
  /// protocol setup (parties pre-agree on contracts, paper §4); funding
  /// operations are transactions.
  template <class C, class... Args>
  C& deploy(Args&&... args) {
    auto owned = std::make_unique<C>(std::forward<Args>(args)...);
    C& ref = *owned;
    register_contract(std::move(owned));
    return ref;
  }

  /// Applies all queued transactions, then runs every contract's timeout
  /// sweep, as the block at height `now`.
  void produce_block(Tick now);

  /// Captures the ledger state as the baseline reset() returns to.
  void checkpoint() { ledger_.checkpoint(); }

  /// Rolls the chain back to its checkpoint: ledger balances, height,
  /// event log, mempool, tx count, and every contract's state.
  void reset();

  /// Layered checkpoint stack (tree executor). snap_push() snapshots the
  /// live chain — ledger, height, tx count, every contract — as one more
  /// depth; snap_rewind(d) restores depth d and truncates above it.
  /// Callable only at a tick boundary on a traceless chain: the mempool
  /// must be empty (block production consumed it) and the event log stays
  /// empty under TraceMode::kOff, so neither is part of a snapshot.
  void snap_push();
  void snap_rewind(std::size_t depth);
  std::size_t snap_depth() const { return ledger_.snap_depth(); }

  /// Order-sensitive hash of the live chain state (ledger + height + tx
  /// count + contracts) — the rewind integrity check.
  void state_hash(std::uint64_t& h) const;

 private:
  friend class TxContext;

  void register_contract(std::unique_ptr<Contract> c);

  /// produce_block's general path: bounded capacity, spam injection,
  /// seeded drops, fee-ordered selection, carry-over and eviction. Only
  /// taken when this chain has fault clauses installed.
  void produce_block_faulted(Tick now);

  /// Records `status` for tx if it is tracked.
  void record_status(const Transaction& tx, TxStatus status);

  /// Re-opens the chain and forgets per-run fault runtime: submission
  /// ordinals, tracked statuses, halt/finalize flags. Shared by reset()
  /// and snap_rewind() (the fuzz executor's rewind-to-clean-state path).
  void reset_fault_runtime();

  ChainId id_;
  std::string name_;
  Symbol native_;
  SymbolId native_id_;
  TraceMode trace_ = TraceMode::kFull;
  Ledger ledger_;
  Tick height_ = -1;
  std::vector<Transaction> mempool_;
  std::vector<Transaction> batch_;  ///< produce_block scratch, capacity reused
  std::vector<std::unique_ptr<Contract>> contracts_;
  EventLog events_;
  std::size_t applied_tx_count_ = 0;
  /// snap_push() counters stack ({height, applied_tx_count} per depth);
  /// the ledger and contracts keep their own synchronized stacks.
  std::vector<std::pair<Tick, std::size_t>> snap_counters_;
  ChainFaults faults_;
  ResiliencePolicy resilience_;
  InclusionObserver on_included_;
  bool halted_ = false;
  bool finalized_ = false;
  std::uint64_t next_seq_ = 0;
  /// (submission id, status) for tracked txs. submit() assigns strictly
  /// increasing ids and appends, so the vector stays sorted by id and
  /// tx_status()/record_status() binary-search it — under load-generator
  /// traffic thousands of tracked entries coexist per chain.
  std::vector<std::pair<std::uint64_t, TxStatus>> tx_status_;
  /// produce_block_faulted scratch (selection / eviction index vectors and
  /// flags), members so their capacity survives across blocks.
  std::vector<std::size_t> sel_order_;
  std::vector<char> sel_flags_;
};

/// The collection of independent chains in a simulation, advanced in
/// lockstep by the scheduler. Chains share nothing but the clock.
class MultiChain {
 public:
  /// Creates a chain whose native currency is named after the chain,
  /// e.g. "apricot" -> native symbol "apricot-coin".
  Blockchain& add_chain(const std::string& name);

  /// Returns the chain named `name`, creating it on first use — the
  /// shared-world path: every protocol instance bound to one MultiChain
  /// resolves its chains by name, so all two-party instances compete on
  /// the same "apricot"/"banana" pair instead of private worlds.
  Blockchain& get_or_add_chain(const std::string& name);

  Blockchain& at(ChainId id) { return *chains_.at(id); }
  const Blockchain& at(ChainId id) const { return *chains_.at(id); }

  std::size_t count() const { return chains_.size(); }

  /// Trace mode applied to every chain, current and future.
  void set_trace(TraceMode mode);
  TraceMode trace() const { return trace_; }

  /// Installs a chain environment — fault plan (matched per chain by
  /// name / '*') and resilience policy — on every chain, current and
  /// future. The default-constructed environment restores the reliable
  /// substrate exactly.
  void set_environment(const ChainEnvironment& env);
  const ChainEnvironment& environment() const { return env_; }

  /// Installs an inclusion observer on every chain, current and future
  /// (see Blockchain::set_inclusion_observer).
  void set_inclusion_observer(Blockchain::InclusionObserver obs);

  /// Marks every chain's timeline complete (Blockchain::finalize).
  void finalize_all();

  /// Produces the block at height `now` on every chain.
  void produce_all(Tick now);

  /// Checkpoints / resets every chain — the world-reuse pair: checkpoint
  /// once after setup (endowments minted, contracts deployed), reset
  /// before each subsequent run.
  void checkpoint();
  void reset();

  /// Layered checkpoint stack over every chain (see Blockchain). The tree
  /// executor pushes once per executed tick and rewinds on backtrack;
  /// depths advance in lockstep across chains.
  void snap_push();
  void snap_rewind(std::size_t depth);
  std::size_t snap_depth() const;

  /// Order-sensitive hash over every chain's live state.
  std::uint64_t state_hash() const;

  /// Concatenated event logs of all chains, sorted by (tick, chain).
  EventLog all_events() const;

 private:
  std::vector<std::unique_ptr<Blockchain>> chains_;
  TraceMode trace_ = TraceMode::kFull;
  ChainEnvironment env_;
  Blockchain::InclusionObserver observer_;
};

}  // namespace xchain::chain
