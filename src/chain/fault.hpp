#pragma once

// Chain-level fault injection (the robustness layer).
//
// Every audited schedule used to run on a perfectly reliable substrate:
// unbounded block space, no outages, next-block inclusion for every
// submission. The sore-loser scenario arises *endogenously* when that
// assumption breaks — a timely party crowded out of a full block or
// stalled by an outage misses an inclusive deadline through no deviation
// of its own. A FaultPlan is the chain-side sibling of sim::DeviationPlan:
// a composable, deterministic description of per-chain unreliability that
// sweeps and campaigns can enumerate the same way they enumerate party
// deviations.
//
// Grammar (one spelling per plan, parse/str round-trips canonically):
//
//   spec    := entry (';' entry)*
//   entry   := <chain> ':' clause        -- <chain> is a chain name or '*'
//   clause  := 'outage@' A '-' B                         no blocks, ticks A..B
//            | 'squeeze@' A '-' B ',cap=' N              at most N txs/block
//              [',spam=' N ',fee=' N] [',mem=' N]        + synthetic load
//            | 'drop@' A '-' B ',p=' N [',seed=' N]      drop fresh txs, N permille
//
// All windows are inclusive tick ranges. Unmatched chain names are
// silently ignored — campaigns sweep one fault spec across protocols with
// different chain rosters, and '*' targets every chain.
//
// Determinism: drops are a pure function of (clause seed, chain id, block
// height, tx sequence number) — no mutable RNG state — so a run replays
// byte-identically regardless of thread count or rewind depth.
//
// Tolerance envelope: the hedged contracts provision inclusive deadlines
// spaced >= Delta per scheduled step, so a conforming party has Delta - 1
// ticks of slack per step. within_tolerance(delta) marks the fault plans
// that stay inside that slack — outages shorter than Delta and squeezes
// that still admit at least one transaction per block (recoverable by fee
// escalation). Probabilistic drops are never within tolerance: no finite
// fee outbids an adversary that discards the transaction outright, only
// rebroadcast recovers, and a seeded stream can drop every rebroadcast.
// The audit promise is: conforming parties running an adequate
// ResiliencePolicy keep their hedged floors against every within-envelope
// fault plan.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace xchain::chain {

class MultiChain;

/// One injected fault over an inclusive tick window of one chain.
struct FaultClause {
  enum class Kind : std::uint8_t { kOutage, kSqueeze, kDrop };

  Kind kind = Kind::kOutage;
  Tick from = 0;  ///< first affected tick (inclusive)
  Tick to = 0;    ///< last affected tick (inclusive)

  // kSqueeze
  int cap = 0;         ///< max transactions included per block (>= 0)
  int spam = 0;        ///< synthetic competing txs injected per block
  Amount spam_fee = 0; ///< fee carried by each synthetic tx
  int mem = -1;        ///< mempool carry-over limit, -1 = unbounded

  // kDrop
  int permille = 0;       ///< drop probability for freshly submitted txs
  std::uint64_t seed = 0; ///< stream selector for the drop hash

  bool active(Tick now) const { return now >= from && now <= to; }
  Tick length() const { return to - from + 1; }

  /// Canonical clause text (the grammar above, without the chain prefix).
  std::string str() const;

  friend bool operator==(const FaultClause&, const FaultClause&) = default;
};

/// Per-chain compiled view: the clauses whose chain pattern matched one
/// concrete Blockchain. This is what Blockchain executes against.
struct ChainFaults {
  std::vector<FaultClause> clauses;

  bool empty() const { return clauses.empty(); }

  /// True when any outage window covers `now` (the block is skipped).
  bool outage_at(Tick now) const;

  /// Effective per-block capacity at `now`: the tightest active squeeze
  /// cap, or -1 when no squeeze is active (unbounded).
  int cap_at(Tick now) const;

  /// Mempool carry-over limit at `now` (-1 = unbounded).
  int mem_at(Tick now) const;

  /// True when any drop window covers `now`.
  bool drops_at(Tick now) const;

  /// Deterministic drop decision for a fresh tx (see file comment).
  bool should_drop(ChainId chain, Tick now, std::uint64_t tx_seq) const;

  /// Invokes `fn(spam_count, spam_fee)` for each active squeeze with
  /// spam > 0, in clause order.
  template <class Fn>
  void each_spam(Tick now, Fn&& fn) const {
    for (const FaultClause& c : clauses) {
      if (c.kind == FaultClause::Kind::kSqueeze && c.active(now) &&
          c.spam > 0) {
        fn(c.spam, c.spam_fee);
      }
    }
  }
};

/// A full fault plan: (chain pattern, clause) pairs in spec order.
struct FaultPlan {
  std::vector<std::pair<std::string, FaultClause>> entries;

  bool empty() const { return entries.empty(); }

  /// Parses the spec grammar; throws std::invalid_argument with the
  /// offending fragment on malformed input. Empty spec = empty plan.
  static FaultPlan parse(const std::string& spec);

  /// Canonical spec text ("" for the empty plan); parse/str round-trips.
  std::string str() const;

  /// True when every clause stays inside the protocol's Delta slack (see
  /// file comment): outages strictly shorter than `delta` ticks, squeezes
  /// with cap >= 1, and no drop clauses.
  bool within_tolerance(Tick delta) const;

  /// Clauses applying to the chain named `name` (exact match or '*').
  ChainFaults for_chain(const std::string& name) const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// How a party handles its submitted-but-not-included transactions.
///
/// kNaive is fire-and-forget (the historical behavior): submit once,
/// never look back — under faults the transaction may be crowded out past
/// its deadline or silently dropped. kRebroadcast resubmits a dropped or
/// evicted transaction at its original fee. kFeeEscalate additionally
/// raises the fee linearly with waiting time (deadline-aware priority
/// bumping), so a conforming party outbids bounded synthetic congestion
/// before its inclusive deadline lapses.
struct ResiliencePolicy {
  enum class Kind : std::uint8_t { kNaive, kRebroadcast, kFeeEscalate };

  Kind kind = Kind::kNaive;
  Amount base_fee = 0;  ///< fee attached at first submission
  Amount fee_step = 1;  ///< kFeeEscalate: fee increase per waited tick
  Amount max_fee = 64;  ///< kFeeEscalate: escalation ceiling

  bool active() const { return kind != Kind::kNaive; }

  /// Fee for a transaction decided at `decided`, (re)submitted at `now`.
  Amount fee_at(Tick decided, Tick now) const {
    if (kind != Kind::kFeeEscalate) return base_fee;
    const Tick waited = now > decided ? now - decided : 0;
    const Amount fee = base_fee + fee_step * static_cast<Amount>(waited);
    return fee < max_fee ? fee : max_fee;
  }

  /// Parses "naive", "rebroadcast", or "fee-escalate[:base,step,max]";
  /// throws std::invalid_argument otherwise.
  static ResiliencePolicy parse(const std::string& text);

  /// Canonical text; parse/str round-trips ("fee-escalate" keeps its
  /// short spelling when the numeric knobs are at their defaults).
  std::string str() const;

  friend bool operator==(const ResiliencePolicy&,
                         const ResiliencePolicy&) = default;
};

/// The chain-side execution environment of a run: which faults are
/// injected and how parties defend. Adapters carry one and install it on
/// their world's chains; the default (empty plan, naive policy) is
/// byte-identical to the historical fault-free substrate.
struct ChainEnvironment {
  FaultPlan faults;
  ResiliencePolicy resilience;

  /// True when this environment changes anything about execution.
  bool active() const { return !faults.empty() || resilience.active(); }

  /// Applies the plan and policy to every chain (by name / '*' match).
  void install(MultiChain& chains) const;

  /// Canonical one-line key, e.g. "faults=banana:squeeze@4-10,cap=1
  /// resilience=fee-escalate"; "" when inactive. Used for instance-cache
  /// keying and report labeling.
  std::string str() const;

  friend bool operator==(const ChainEnvironment&,
                         const ChainEnvironment&) = default;
};

}  // namespace xchain::chain
