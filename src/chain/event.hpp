#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace xchain::chain {

/// An entry in a chain's public event log. Contracts emit events on state
/// transitions; parties (and tests) observe protocol progress through them.
struct Event {
  Tick tick = 0;
  ChainId chain = 0;
  ContractId contract = 0;
  std::string kind;    ///< e.g. "escrowed", "redeemed", "premium_paid"
  std::string detail;  ///< free-form context for traces

  std::string str() const {
    return "[t=" + std::to_string(tick) + " chain=" + std::to_string(chain) +
           " c=" + std::to_string(contract) + "] " + kind +
           (detail.empty() ? "" : (" " + detail));
  }
};

using EventLog = std::vector<Event>;

}  // namespace xchain::chain
