#include "chain/fault.hpp"

#include <cctype>
#include <stdexcept>

#include "chain/blockchain.hpp"

namespace xchain::chain {

namespace {

/// Parses a non-negative decimal integer at text[pos...], advancing pos.
/// Throws std::invalid_argument naming `what` when no digits are present.
long long parse_uint_at(const std::string& text, std::size_t& pos,
                        const char* what) {
  const std::size_t digits = pos;
  long long value = 0;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos]))) {
    value = value * 10 + (text[pos] - '0');
    ++pos;
  }
  if (pos == digits) {
    throw std::invalid_argument(std::string("fault spec: expected ") + what +
                                " in '" + text + "' at offset " +
                                std::to_string(digits));
  }
  return value;
}

/// Consumes ",key=" at text[pos...]; throws when absent (the grammar is
/// order-strict so every plan has exactly one spelling).
void expect_key(const std::string& text, std::size_t& pos, const char* key) {
  const std::string want = std::string(",") + key + "=";
  if (text.compare(pos, want.size(), want) != 0) {
    throw std::invalid_argument("fault spec: expected '" + want + "' in '" +
                                text + "' at offset " + std::to_string(pos));
  }
  pos += want.size();
}

/// True when ",key=" occurs at text[pos...] (lookahead only).
bool peek_key(const std::string& text, std::size_t pos, const char* key) {
  const std::string want = std::string(",") + key + "=";
  return text.compare(pos, want.size(), want) == 0;
}

/// Parses "A-B" (inclusive window) into clause.from/.to.
void parse_window(const std::string& text, std::size_t& pos,
                  FaultClause& clause) {
  clause.from = static_cast<Tick>(parse_uint_at(text, pos, "window start"));
  if (pos >= text.size() || text[pos] != '-') {
    throw std::invalid_argument("fault spec: expected '-' in window of '" +
                                text + "'");
  }
  ++pos;
  clause.to = static_cast<Tick>(parse_uint_at(text, pos, "window end"));
  if (clause.to < clause.from) {
    throw std::invalid_argument("fault spec: window ends before it starts in '" +
                                text + "'");
  }
}

FaultClause parse_clause(const std::string& text) {
  FaultClause clause;
  std::size_t pos = 0;
  if (text.rfind("outage@", 0) == 0) {
    clause.kind = FaultClause::Kind::kOutage;
    pos = 7;
    parse_window(text, pos, clause);
  } else if (text.rfind("squeeze@", 0) == 0) {
    clause.kind = FaultClause::Kind::kSqueeze;
    pos = 8;
    parse_window(text, pos, clause);
    expect_key(text, pos, "cap");
    clause.cap = static_cast<int>(parse_uint_at(text, pos, "cap"));
    if (peek_key(text, pos, "spam")) {
      expect_key(text, pos, "spam");
      clause.spam = static_cast<int>(parse_uint_at(text, pos, "spam"));
      if (clause.spam < 1) {
        throw std::invalid_argument(
            "fault spec: spam=0 is implicit, drop the key in '" + text + "'");
      }
      expect_key(text, pos, "fee");
      clause.spam_fee =
          static_cast<Amount>(parse_uint_at(text, pos, "spam fee"));
    }
    if (peek_key(text, pos, "mem")) {
      expect_key(text, pos, "mem");
      clause.mem = static_cast<int>(parse_uint_at(text, pos, "mem limit"));
    }
  } else if (text.rfind("drop@", 0) == 0) {
    clause.kind = FaultClause::Kind::kDrop;
    pos = 5;
    parse_window(text, pos, clause);
    expect_key(text, pos, "p");
    clause.permille = static_cast<int>(parse_uint_at(text, pos, "permille"));
    if (clause.permille < 1 || clause.permille > 1000) {
      throw std::invalid_argument(
          "fault spec: drop probability must be 1..1000 permille in '" + text +
          "'");
    }
    if (peek_key(text, pos, "seed")) {
      expect_key(text, pos, "seed");
      clause.seed =
          static_cast<std::uint64_t>(parse_uint_at(text, pos, "seed"));
      if (clause.seed == 0) {
        throw std::invalid_argument(
            "fault spec: seed=0 is implicit, drop the key in '" + text + "'");
      }
    }
  } else {
    throw std::invalid_argument(
        "fault spec: unknown clause '" + text +
        "' (want outage@A-B, squeeze@A-B,cap=N[,spam=N,fee=N][,mem=N], or "
        "drop@A-B,p=N[,seed=N])");
  }
  if (pos != text.size()) {
    throw std::invalid_argument("fault spec: trailing junk in '" + text +
                                "' at offset " + std::to_string(pos));
  }
  return clause;
}

/// SplitMix64 finalizer — the stateless drop hash's mixing primitive.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string FaultClause::str() const {
  // Append-only string building (GCC 12's bogus -Wrestrict fires on
  // inlined operator+ chains in -Werror builds, GCC PR 105651).
  std::string out;
  switch (kind) {
    case Kind::kOutage:
      out = "outage@";
      break;
    case Kind::kSqueeze:
      out = "squeeze@";
      break;
    case Kind::kDrop:
      out = "drop@";
      break;
  }
  out += std::to_string(from);
  out += '-';
  out += std::to_string(to);
  if (kind == Kind::kSqueeze) {
    out += ",cap=";
    out += std::to_string(cap);
    if (spam > 0) {
      out += ",spam=";
      out += std::to_string(spam);
      out += ",fee=";
      out += std::to_string(spam_fee);
    }
    if (mem >= 0) {
      out += ",mem=";
      out += std::to_string(mem);
    }
  } else if (kind == Kind::kDrop) {
    out += ",p=";
    out += std::to_string(permille);
    if (seed != 0) {
      out += ",seed=";
      out += std::to_string(seed);
    }
  }
  return out;
}

bool ChainFaults::outage_at(Tick now) const {
  for (const FaultClause& c : clauses) {
    if (c.kind == FaultClause::Kind::kOutage && c.active(now)) return true;
  }
  return false;
}

int ChainFaults::cap_at(Tick now) const {
  int cap = -1;
  for (const FaultClause& c : clauses) {
    if (c.kind == FaultClause::Kind::kSqueeze && c.active(now)) {
      if (cap < 0 || c.cap < cap) cap = c.cap;
    }
  }
  return cap;
}

int ChainFaults::mem_at(Tick now) const {
  int mem = -1;
  for (const FaultClause& c : clauses) {
    if (c.kind == FaultClause::Kind::kSqueeze && c.active(now) && c.mem >= 0) {
      if (mem < 0 || c.mem < mem) mem = c.mem;
    }
  }
  return mem;
}

bool ChainFaults::drops_at(Tick now) const {
  for (const FaultClause& c : clauses) {
    if (c.kind == FaultClause::Kind::kDrop && c.active(now)) return true;
  }
  return false;
}

bool ChainFaults::should_drop(ChainId chain, Tick now,
                              std::uint64_t tx_seq) const {
  for (const FaultClause& c : clauses) {
    if (c.kind != FaultClause::Kind::kDrop || !c.active(now)) continue;
    // Pure function of (seed, chain, height, seq): replays byte-identically
    // across thread counts and rewind depths with no RNG state to reset.
    std::uint64_t h = 0xd6e8feb86659fd93ull ^ c.seed;
    h = mix64(h + static_cast<std::uint64_t>(chain) * 0x9e3779b97f4a7c15ull);
    h = mix64(h + static_cast<std::uint64_t>(now));
    h = mix64(h + tx_seq);
    if (h % 1000 < static_cast<std::uint64_t>(c.permille)) return true;
  }
  return false;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start < spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string entry = spec.substr(
        start, semi == std::string::npos ? std::string::npos : semi - start);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument(
          "fault spec: entry '" + entry +
          "' wants '<chain>:<clause>' (chain name or '*')");
    }
    plan.entries.emplace_back(entry.substr(0, colon),
                              parse_clause(entry.substr(colon + 1)));
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return plan;
}

std::string FaultPlan::str() const {
  std::string out;
  for (const auto& [chain, clause] : entries) {
    if (!out.empty()) out += ';';
    out += chain;
    out += ':';
    out += clause.str();
  }
  return out;
}

bool FaultPlan::within_tolerance(Tick delta) const {
  for (const auto& [chain, clause] : entries) {
    (void)chain;
    switch (clause.kind) {
      case FaultClause::Kind::kOutage:
        // Outage must stay strictly inside the Delta slack the deadlines
        // are provisioned with (ISSUE: outage < Delta).
        if (clause.length() >= delta) return false;
        break;
      case FaultClause::Kind::kSqueeze:
        // A cap-0 squeeze blocks all inclusion while timeouts keep firing
        // — strictly worse than an outage, never recoverable by fees.
        if (clause.cap < 1) return false;
        break;
      case FaultClause::Kind::kDrop:
        // No finite fee outbids a discard; a seeded stream can drop every
        // rebroadcast, so drops are unbounded-loss by construction.
        return false;
    }
  }
  return true;
}

ChainFaults FaultPlan::for_chain(const std::string& name) const {
  ChainFaults out;
  for (const auto& [chain, clause] : entries) {
    if (chain == "*" || chain == name) out.clauses.push_back(clause);
  }
  return out;
}

ResiliencePolicy ResiliencePolicy::parse(const std::string& text) {
  ResiliencePolicy p;
  if (text == "naive") return p;
  if (text == "rebroadcast") {
    p.kind = Kind::kRebroadcast;
    return p;
  }
  if (text.rfind("fee-escalate", 0) == 0) {
    p.kind = Kind::kFeeEscalate;
    if (text.size() == 12) return p;
    if (text[12] == ':') {
      std::size_t pos = 13;
      p.base_fee = static_cast<Amount>(parse_uint_at(text, pos, "base fee"));
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        p.fee_step = static_cast<Amount>(parse_uint_at(text, pos, "fee step"));
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          p.max_fee = static_cast<Amount>(parse_uint_at(text, pos, "max fee"));
        }
      }
      if (pos == text.size()) {
        if (p == ResiliencePolicy{Kind::kFeeEscalate}) {
          throw std::invalid_argument(
              "resilience: default knobs are implicit, write 'fee-escalate' "
              "instead of '" + text + "'");
        }
        return p;
      }
    }
  }
  throw std::invalid_argument(
      "resilience: unknown policy '" + text +
      "' (want naive, rebroadcast, or fee-escalate[:base[,step[,max]]])");
}

std::string ResiliencePolicy::str() const {
  switch (kind) {
    case Kind::kNaive:
      return "naive";
    case Kind::kRebroadcast:
      return "rebroadcast";
    case Kind::kFeeEscalate:
      break;
  }
  std::string out = "fee-escalate";
  const ResiliencePolicy defaults{Kind::kFeeEscalate};
  if (base_fee != defaults.base_fee || fee_step != defaults.fee_step ||
      max_fee != defaults.max_fee) {
    out += ':';
    out += std::to_string(base_fee);
    out += ',';
    out += std::to_string(fee_step);
    out += ',';
    out += std::to_string(max_fee);
  }
  return out;
}

void ChainEnvironment::install(MultiChain& chains) const {
  chains.set_environment(*this);
}

std::string ChainEnvironment::str() const {
  std::string out;
  if (!faults.empty()) {
    out += "faults=";
    out += faults.str();
  }
  if (resilience.active()) {
    if (!out.empty()) out += ' ';
    out += "resilience=";
    out += resilience.str();
  }
  return out;
}

}  // namespace xchain::chain
