#pragma once

#include <string>
#include <tuple>
#include <vector>

#include "chain/address.hpp"
#include "common/symbol.hpp"
#include "common/types.hpp"

namespace xchain::chain {

/// Names an asset kind on a chain, e.g. "apricot", "banana", "ticket", or
/// the chain's native coin used for premiums.
using Symbol = std::string;

/// Per-chain balance book: (address, symbol) -> amount.
///
/// Storage is dense, the way production chain runtimes key hot state:
/// party and contract ids index rows directly, and each distinct symbol
/// occupies a small per-ledger column (mapped from its global SymbolId), so
/// the hot path — contract-driven transfers during block production — is a
/// handful of array indexings with no hashing or string traffic. (The old
/// representation was an unordered_map over (Address, string) keys with a
/// weak XOR/shift hash; the dense book replaced it outright.)
///
/// All mutation happens inside transaction execution (the chain runtime
/// constructs the only mutable references); reads are free for everyone,
/// matching the public-ledger model of §3.1.
class Ledger {
 public:
  /// Balance of `who` in `sym` (0 if never touched).
  Amount balance(const Address& who, SymbolId sym) const;
  Amount balance(const Address& who, const Symbol& sym) const {
    return balance(who, SymbolTable::intern(sym));
  }

  /// Creates `amount` units of `sym` at `who` out of thin air. Used only
  /// for world setup (initial endowments), never by contracts.
  void mint(const Address& who, SymbolId sym, Amount amount);
  void mint(const Address& who, const Symbol& sym, Amount amount) {
    mint(who, SymbolTable::intern(sym), amount);
  }

  /// Moves `amount` of `sym` from `from` to `to`. Returns false (and moves
  /// nothing) if `from`'s balance is insufficient or amount is negative.
  bool transfer(const Address& from, const Address& to, SymbolId sym,
                Amount amount);
  bool transfer(const Address& from, const Address& to, const Symbol& sym,
                Amount amount) {
    return transfer(from, to, SymbolTable::intern(sym), amount);
  }

  /// Every (address, symbol, amount) triple with nonzero balance, in
  /// deterministic order — (kind, id, symbol name) ascending, exactly the
  /// order the pre-dense map-and-sort implementation produced. Used by
  /// payoff accounting and traces.
  std::vector<std::tuple<Address, Symbol, Amount>> holdings() const;

  /// Calls `fn(SymbolId, Amount)` for each nonzero holding of `who`, in
  /// symbol-name order — the allocation-free spine of holdings().
  template <class F>
  void for_each_holding(const Address& who, F&& fn) const {
    const std::vector<Amount>* row = row_of(who);
    if (!row) return;
    for (const std::uint32_t col : cols_by_name_) {
      if (col < row->size() && (*row)[col] != 0) {
        fn(symbols_[col], (*row)[col]);
      }
    }
  }

  /// Captures the current balances as the checkpoint restore() returns to.
  void checkpoint();

  /// Restores the balances captured by checkpoint() (empties the book if
  /// checkpoint() was never called). Part of the arena-style world-reuse
  /// path: sweep workers reset one world per schedule instead of
  /// rebuilding chains from scratch.
  void restore();

 private:
  /// Rows indexed by party id / contract id respectively; cells indexed by
  /// per-ledger column. Rows and columns grow on demand and may be ragged
  /// (a row only reaches as far as the last column it ever touched).
  using Book = std::vector<std::vector<Amount>>;

  const std::vector<Amount>* row_of(const Address& who) const;
  Amount* cell(const Address& who, std::uint32_t col);
  std::uint32_t column_of(SymbolId sym);

  Book party_;
  Book contract_;
  /// SymbolId::value() -> column (kNoColumn when absent from this ledger).
  std::vector<std::uint32_t> col_of_;
  std::vector<SymbolId> symbols_;           ///< column -> symbol
  std::vector<std::uint32_t> cols_by_name_; ///< columns, symbol-name order

  Book saved_party_;
  Book saved_contract_;

  static constexpr std::uint32_t kNoColumn = 0xffffffffu;
};

}  // namespace xchain::chain
