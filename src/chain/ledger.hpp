#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "chain/address.hpp"
#include "common/symbol.hpp"
#include "common/types.hpp"

namespace xchain::chain {

/// Names an asset kind on a chain, e.g. "apricot", "banana", "ticket", or
/// the chain's native coin used for premiums.
using Symbol = std::string;

/// Per-chain balance book: (address, symbol) -> amount.
///
/// Storage is dense, the way production chain runtimes key hot state:
/// party and contract ids index rows directly, and each distinct symbol
/// occupies a small per-ledger column (mapped from its global SymbolId), so
/// the hot path — contract-driven transfers during block production — is a
/// handful of array indexings with no hashing or string traffic. (The old
/// representation was an unordered_map over (Address, string) keys with a
/// weak XOR/shift hash; the dense book replaced it outright.)
///
/// All mutation happens inside transaction execution (the chain runtime
/// constructs the only mutable references); reads are free for everyone,
/// matching the public-ledger model of §3.1.
class Ledger {
 public:
  /// Balance of `who` in `sym` (0 if never touched).
  Amount balance(const Address& who, SymbolId sym) const;
  Amount balance(const Address& who, const Symbol& sym) const {
    return balance(who, SymbolTable::intern(sym));
  }

  /// Creates `amount` units of `sym` at `who` out of thin air. Used only
  /// for world setup (initial endowments), never by contracts.
  void mint(const Address& who, SymbolId sym, Amount amount);
  void mint(const Address& who, const Symbol& sym, Amount amount) {
    mint(who, SymbolTable::intern(sym), amount);
  }

  /// Moves `amount` of `sym` from `from` to `to`. Returns false (and moves
  /// nothing) if `from`'s balance is insufficient or amount is negative.
  bool transfer(const Address& from, const Address& to, SymbolId sym,
                Amount amount);
  bool transfer(const Address& from, const Address& to, const Symbol& sym,
                Amount amount) {
    return transfer(from, to, SymbolTable::intern(sym), amount);
  }

  /// Every (address, symbol, amount) triple with nonzero balance, in
  /// deterministic order — (kind, id, symbol name) ascending, exactly the
  /// order the pre-dense map-and-sort implementation produced. Used by
  /// payoff accounting and traces.
  std::vector<std::tuple<Address, Symbol, Amount>> holdings() const;

  /// Calls `fn(SymbolId, Amount)` for each nonzero holding of `who`, in
  /// symbol-name order — the allocation-free spine of holdings().
  template <class F>
  void for_each_holding(const Address& who, F&& fn) const {
    const std::vector<Amount>* row = row_of(who);
    if (!row) return;
    for (const std::uint32_t col : cols_by_name_) {
      if (col < row->size() && (*row)[col] != 0) {
        fn(symbols_[col], (*row)[col]);
      }
    }
  }

  /// Captures the current balances as the checkpoint restore() returns to.
  void checkpoint();

  /// Restores the balances captured by checkpoint(). Part of the
  /// arena-style world-reuse path: sweep workers reset one world per
  /// schedule instead of rebuilding chains from scratch. Calling restore()
  /// without a prior checkpoint() throws std::logic_error — it used to
  /// silently empty the balance book, a semantic hole that became live the
  /// moment checkpoints stack (a missed baseline would quietly zero every
  /// endowment instead of failing the sweep loudly). Jumping back to the
  /// baseline also invalidates (clears) the layered snapshot stack: its
  /// undo records describe history the restore just discarded, and a
  /// world alternating legacy runs with tree sweeps must not accumulate
  /// an ever-growing log.
  void restore();

  /// Layered checkpoint stack, independent of the checkpoint()/restore()
  /// baseline: the tree executor pushes one snapshot per executed tick and
  /// rewinds to arbitrary depths on backtrack. Implemented as an undo log,
  /// not copies: a push records a watermark (O(1)), mutations append their
  /// previous value while the stack is live, and a rewind plays the log
  /// backwards — so cost scales with the balances actually written, never
  /// with the size of the book. (The copy-per-push predecessor was the
  /// single largest line item of a tree sweep's executed runs.)
  void snap_push();
  /// Restores the balances snapshotted at `depth` (< snap_depth()) and
  /// makes it the top: snap_depth() becomes depth + 1.
  void snap_rewind(std::size_t depth);
  std::size_t snap_depth() const { return snap_depth_; }

  /// Order-sensitive 64-bit hash of every balance cell (the rewind
  /// integrity check of the tree executor).
  void state_hash(std::uint64_t& h) const;

 private:
  /// Rows indexed by party id / contract id respectively; cells indexed by
  /// per-ledger column. Rows and columns grow on demand and may be ragged
  /// (a row only reaches as far as the last column it ever touched).
  using Book = std::vector<std::vector<Amount>>;

  const std::vector<Amount>* row_of(const Address& who) const;
  Amount* cell(const Address& who, std::uint32_t col);
  std::uint32_t column_of(SymbolId sym);

  Book party_;
  Book contract_;
  /// SymbolId::value() -> column (kNoColumn when absent from this ledger).
  std::vector<std::uint32_t> col_of_;
  std::vector<SymbolId> symbols_;           ///< column -> symbol
  std::vector<std::uint32_t> cols_by_name_; ///< columns, symbol-name order

  Book saved_party_;
  Book saved_contract_;
  bool checkpointed_ = false;

  /// One reversible mutation, recorded while the snapshot stack is live.
  /// Books only grow during execution, so three kinds suffice: a cell's
  /// previous value, a row's previous length, a book's previous row count.
  struct Undo {
    enum class Kind : std::uint8_t { kCell, kRowSize, kBookSize };
    Kind kind;
    std::uint8_t book;  ///< 0 = party_, 1 = contract_
    std::uint32_t row = 0;
    std::uint32_t col = 0;
    Amount old = 0;  ///< previous cell value / previous size
  };

  std::vector<Undo> undo_;
  /// undo_ watermark per snapshot depth; slots above the live depth keep
  /// their capacity and are overwritten in place by later pushes.
  std::vector<std::size_t> marks_;
  std::size_t snap_depth_ = 0;

  static constexpr std::uint32_t kNoColumn = 0xffffffffu;
};

}  // namespace xchain::chain
