#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "chain/address.hpp"
#include "common/types.hpp"

namespace xchain::chain {

/// Names an asset kind on a chain, e.g. "apricot", "banana", "ticket", or
/// the chain's native coin used for premiums.
using Symbol = std::string;

/// Per-chain balance book: (address, symbol) -> amount.
///
/// All mutation happens inside transaction execution (the chain runtime
/// constructs the only mutable references); reads are free for everyone,
/// matching the public-ledger model of §3.1.
class Ledger {
 public:
  /// Balance of `who` in `sym` (0 if never touched).
  Amount balance(const Address& who, const Symbol& sym) const;

  /// Creates `amount` units of `sym` at `who` out of thin air. Used only
  /// for world setup (initial endowments), never by contracts.
  void mint(const Address& who, const Symbol& sym, Amount amount);

  /// Moves `amount` of `sym` from `from` to `to`. Returns false (and moves
  /// nothing) if `from`'s balance is insufficient or amount is negative.
  bool transfer(const Address& from, const Address& to, const Symbol& sym,
                Amount amount);

  /// Every (address, symbol, amount) triple with nonzero balance, in
  /// deterministic order — used by payoff accounting.
  std::vector<std::tuple<Address, Symbol, Amount>> holdings() const;

 private:
  struct Key {
    Address who;
    Symbol sym;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<Address>{}(k.who) ^
             (std::hash<std::string>{}(k.sym) << 1);
    }
  };
  std::unordered_map<Key, Amount, KeyHash> balances_;
};

}  // namespace xchain::chain
