#include "chain/ledger.hpp"

#include <algorithm>
#include <stdexcept>

#include "chain/snapshot.hpp"

namespace xchain::chain {

const std::vector<Amount>* Ledger::row_of(const Address& who) const {
  const Book& book = who.kind == Address::Kind::kParty ? party_ : contract_;
  if (who.id >= book.size()) return nullptr;
  return &book[who.id];
}

Amount* Ledger::cell(const Address& who, std::uint32_t col) {
  const std::uint8_t which = who.kind == Address::Kind::kParty ? 0 : 1;
  Book& book = which == 0 ? party_ : contract_;
  // Every cell() caller writes through the returned pointer, so while the
  // snapshot stack is live this is the one choke point that must log the
  // previous value (and any structural growth) for snap_rewind().
  const bool logging = snap_depth_ > 0;
  if (who.id >= book.size()) {
    if (logging) {
      undo_.push_back({Undo::Kind::kBookSize, which, 0, 0,
                       static_cast<Amount>(book.size())});
    }
    book.resize(who.id + 1);
  }
  std::vector<Amount>& row = book[who.id];
  if (col >= row.size()) {
    if (logging) {
      undo_.push_back({Undo::Kind::kRowSize, which,
                       static_cast<std::uint32_t>(who.id), 0,
                       static_cast<Amount>(row.size())});
    }
    row.resize(col + 1, 0);
  }
  if (logging) {
    undo_.push_back({Undo::Kind::kCell, which,
                     static_cast<std::uint32_t>(who.id), col, row[col]});
  }
  return &row[col];
}

std::uint32_t Ledger::column_of(SymbolId sym) {
  if (sym.value() < col_of_.size() && col_of_[sym.value()] != kNoColumn) {
    return col_of_[sym.value()];
  }
  if (sym.value() >= col_of_.size()) {
    col_of_.resize(sym.value() + 1, kNoColumn);
  }
  const auto col = static_cast<std::uint32_t>(symbols_.size());
  col_of_[sym.value()] = col;
  symbols_.push_back(sym);
  // Keep the name-ordered column list sorted so holdings() stays in the
  // deterministic (kind, id, symbol name) order the map-era code produced.
  // Columns are few per ledger; re-sorting on insert is cold-path work.
  cols_by_name_.push_back(col);
  std::sort(cols_by_name_.begin(), cols_by_name_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return SymbolTable::name(symbols_[a]) <
                     SymbolTable::name(symbols_[b]);
            });
  return col;
}

Amount Ledger::balance(const Address& who, SymbolId sym) const {
  if (!sym.valid() || sym.value() >= col_of_.size()) return 0;
  const std::uint32_t col = col_of_[sym.value()];
  if (col == kNoColumn) return 0;
  const std::vector<Amount>* row = row_of(who);
  return row && col < row->size() ? (*row)[col] : 0;
}

void Ledger::mint(const Address& who, SymbolId sym, Amount amount) {
  *cell(who, column_of(sym)) += amount;
}

bool Ledger::transfer(const Address& from, const Address& to, SymbolId sym,
                      Amount amount) {
  if (amount < 0) return false;
  if (amount == 0) return true;
  if (balance(from, sym) < amount) return false;
  const std::uint32_t col = column_of(sym);
  *cell(from, col) -= amount;
  *cell(to, col) += amount;
  return true;
}

std::vector<std::tuple<Address, Symbol, Amount>> Ledger::holdings() const {
  std::vector<std::tuple<Address, Symbol, Amount>> out;
  const auto scan = [&](const Book& book, Address::Kind kind) {
    for (std::size_t id = 0; id < book.size(); ++id) {
      const Address who{kind, id};
      for (const std::uint32_t col : cols_by_name_) {
        if (col < book[id].size() && book[id][col] != 0) {
          out.emplace_back(who, SymbolTable::name(symbols_[col]),
                           book[id][col]);
        }
      }
    }
  };
  scan(party_, Address::Kind::kParty);
  scan(contract_, Address::Kind::kContract);
  return out;
}

void Ledger::checkpoint() {
  saved_party_ = party_;
  saved_contract_ = contract_;
  checkpointed_ = true;
}

void Ledger::restore() {
  if (!checkpointed_) {
    throw std::logic_error(
        "Ledger::restore() without a prior checkpoint() — this would "
        "silently empty the balance book");
  }
  // Columns interned after the checkpoint keep their mapping (it is pure
  // naming); only balances roll back. Rows that grew since the checkpoint
  // shrink back, so restored state is exactly the checkpointed book.
  party_ = saved_party_;
  contract_ = saved_contract_;
  // The layered stack's undo records describe the history this jump just
  // discarded; applying them afterwards would corrupt the book, and a
  // world alternating legacy runs with tree sweeps must not accumulate an
  // ever-growing log. Invalidate the stack wholesale.
  undo_.clear();
  marks_.clear();
  snap_depth_ = 0;
}

void Ledger::snap_push() {
  if (snap_depth_ < marks_.size()) {
    marks_[snap_depth_] = undo_.size();
  } else {
    marks_.push_back(undo_.size());
  }
  ++snap_depth_;
}

void Ledger::snap_rewind(std::size_t depth) {
  // Play the log backwards to the watermark recorded when `depth` was
  // pushed: a cell's final value is the oldest record in the undone range
  // (its value at the start of tick `depth`), and size records shrink
  // structures back in step. Books never shrink outside this function, so
  // every record indexes in-bounds state when its turn comes.
  const std::size_t mark = marks_.at(depth);
  for (std::size_t i = undo_.size(); i-- > mark;) {
    const Undo& u = undo_[i];
    Book& book = u.book == 0 ? party_ : contract_;
    switch (u.kind) {
      case Undo::Kind::kCell:
        book[u.row][u.col] = u.old;
        break;
      case Undo::Kind::kRowSize:
        book[u.row].resize(static_cast<std::size_t>(u.old));
        break;
      case Undo::Kind::kBookSize:
        book.resize(static_cast<std::size_t>(u.old));
        break;
    }
  }
  undo_.resize(mark);
  snap_depth_ = depth + 1;
}

void Ledger::state_hash(std::uint64_t& h) const {
  const auto scan = [&](const Book& book) {
    state_hash_mix(h, book.size());
    for (const auto& row : book) {
      state_hash_mix(h, row.size());
      for (const Amount a : row) {
        state_hash_mix(h, static_cast<std::uint64_t>(a));
      }
    }
  };
  scan(party_);
  scan(contract_);
}

}  // namespace xchain::chain
