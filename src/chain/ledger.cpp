#include "chain/ledger.hpp"

#include <algorithm>

namespace xchain::chain {

Amount Ledger::balance(const Address& who, const Symbol& sym) const {
  const auto it = balances_.find(Key{who, sym});
  return it == balances_.end() ? 0 : it->second;
}

void Ledger::mint(const Address& who, const Symbol& sym, Amount amount) {
  balances_[Key{who, sym}] += amount;
}

bool Ledger::transfer(const Address& from, const Address& to,
                      const Symbol& sym, Amount amount) {
  if (amount < 0) return false;
  if (amount == 0) return true;
  auto it = balances_.find(Key{from, sym});
  if (it == balances_.end() || it->second < amount) return false;
  it->second -= amount;
  balances_[Key{to, sym}] += amount;
  return true;
}

std::vector<std::tuple<Address, Symbol, Amount>> Ledger::holdings() const {
  std::vector<std::tuple<Address, Symbol, Amount>> out;
  out.reserve(balances_.size());
  for (const auto& [key, amount] : balances_) {
    if (amount != 0) out.emplace_back(key.who, key.sym, amount);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    const auto& [aw, as, aa] = a;
    const auto& [bw, bs, ba] = b;
    if (aw.kind != bw.kind) return aw.kind < bw.kind;
    if (aw.id != bw.id) return aw.id < bw.id;
    return as < bs;
  });
  return out;
}

}  // namespace xchain::chain
