#include "chain/ledger.hpp"

#include <algorithm>

namespace xchain::chain {

const std::vector<Amount>* Ledger::row_of(const Address& who) const {
  const Book& book = who.kind == Address::Kind::kParty ? party_ : contract_;
  if (who.id >= book.size()) return nullptr;
  return &book[who.id];
}

Amount* Ledger::cell(const Address& who, std::uint32_t col) {
  Book& book = who.kind == Address::Kind::kParty ? party_ : contract_;
  if (who.id >= book.size()) book.resize(who.id + 1);
  std::vector<Amount>& row = book[who.id];
  if (col >= row.size()) row.resize(col + 1, 0);
  return &row[col];
}

std::uint32_t Ledger::column_of(SymbolId sym) {
  if (sym.value() < col_of_.size() && col_of_[sym.value()] != kNoColumn) {
    return col_of_[sym.value()];
  }
  if (sym.value() >= col_of_.size()) {
    col_of_.resize(sym.value() + 1, kNoColumn);
  }
  const auto col = static_cast<std::uint32_t>(symbols_.size());
  col_of_[sym.value()] = col;
  symbols_.push_back(sym);
  // Keep the name-ordered column list sorted so holdings() stays in the
  // deterministic (kind, id, symbol name) order the map-era code produced.
  // Columns are few per ledger; re-sorting on insert is cold-path work.
  cols_by_name_.push_back(col);
  std::sort(cols_by_name_.begin(), cols_by_name_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return SymbolTable::name(symbols_[a]) <
                     SymbolTable::name(symbols_[b]);
            });
  return col;
}

Amount Ledger::balance(const Address& who, SymbolId sym) const {
  if (!sym.valid() || sym.value() >= col_of_.size()) return 0;
  const std::uint32_t col = col_of_[sym.value()];
  if (col == kNoColumn) return 0;
  const std::vector<Amount>* row = row_of(who);
  return row && col < row->size() ? (*row)[col] : 0;
}

void Ledger::mint(const Address& who, SymbolId sym, Amount amount) {
  *cell(who, column_of(sym)) += amount;
}

bool Ledger::transfer(const Address& from, const Address& to, SymbolId sym,
                      Amount amount) {
  if (amount < 0) return false;
  if (amount == 0) return true;
  if (balance(from, sym) < amount) return false;
  const std::uint32_t col = column_of(sym);
  *cell(from, col) -= amount;
  *cell(to, col) += amount;
  return true;
}

std::vector<std::tuple<Address, Symbol, Amount>> Ledger::holdings() const {
  std::vector<std::tuple<Address, Symbol, Amount>> out;
  const auto scan = [&](const Book& book, Address::Kind kind) {
    for (std::size_t id = 0; id < book.size(); ++id) {
      const Address who{kind, id};
      for (const std::uint32_t col : cols_by_name_) {
        if (col < book[id].size() && book[id][col] != 0) {
          out.emplace_back(who, SymbolTable::name(symbols_[col]),
                           book[id][col]);
        }
      }
    }
  };
  scan(party_, Address::Kind::kParty);
  scan(contract_, Address::Kind::kContract);
  return out;
}

void Ledger::checkpoint() {
  saved_party_ = party_;
  saved_contract_ = contract_;
}

void Ledger::restore() {
  // Columns interned after the checkpoint keep their mapping (it is pure
  // naming); only balances roll back. Rows that grew since the checkpoint
  // shrink back, so restored state is exactly the checkpointed book.
  party_ = saved_party_;
  contract_ = saved_contract_;
}

}  // namespace xchain::chain
