#include "chain/blockchain.hpp"

#include <algorithm>

namespace xchain::chain {

ChainId TxContext::chain_id() const { return bc_.id(); }

Ledger& TxContext::ledger() { return bc_.ledger_; }

const Symbol& TxContext::native() const { return bc_.native(); }

SymbolId TxContext::native_id() const { return bc_.native_id(); }

bool TxContext::tracing() const { return bc_.tracing(); }

void TxContext::emit(ContractId contract, std::string kind,
                     std::string detail) {
  if (!bc_.tracing()) return;
  bc_.events_.push_back(
      Event{now_, bc_.id(), contract, std::move(kind), std::move(detail)});
}

Blockchain::Blockchain(ChainId id, std::string name, Symbol native)
    : id_(id),
      name_(std::move(name)),
      native_(std::move(native)),
      native_id_(SymbolTable::intern(native_)) {}

std::uint64_t Blockchain::submit(Transaction tx) {
  if (halted_ || finalized_) {
    // Append-only string building (GCC 12 -Wrestrict, PR 105651).
    std::string what = "Blockchain::submit: chain '";
    what += name_;
    what += halted_ ? "' is halted" : "' has finalized its timeline";
    what += " — no future block can include this transaction";
    if (!tx.note.empty()) {
      what += " (";
      what += tx.note;
      what += ')';
    }
    throw std::logic_error(what);
  }
  tx.seq = next_seq_++;
  tx.fresh = true;
  const std::uint64_t id = tx.seq;
  if (tx.track) tx_status_.emplace_back(id, TxStatus::kPending);
  mempool_.push_back(std::move(tx));
  return id;
}

TxStatus Blockchain::tx_status(std::uint64_t id) const {
  // tx_status_ is sorted by id: submit() hands out strictly increasing
  // ids and appends. Load-generator chains carry thousands of tracked
  // entries, so the lookup must not be linear.
  const auto it = std::lower_bound(
      tx_status_.begin(), tx_status_.end(), id,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  if (it != tx_status_.end() && it->first == id) return it->second;
  return TxStatus::kUnknown;
}

bool Blockchain::bump_fee(std::uint64_t id, Amount fee) {
  // The mempool stays seq-ascending through every path (submission
  // appends, carry-over and eviction compact in place), so the pending
  // entry is binary-searchable by its submission id.
  const auto it = std::lower_bound(
      mempool_.begin(), mempool_.end(), id,
      [](const Transaction& tx, std::uint64_t key) { return tx.seq < key; });
  if (it == mempool_.end() || it->seq != id || !it->track) return false;
  if (fee > it->fee) it->fee = fee;
  return true;
}

void Blockchain::record_status(const Transaction& tx, TxStatus status) {
  if (!tx.track) return;
  const auto it = std::lower_bound(
      tx_status_.begin(), tx_status_.end(), tx.seq,
      [](const auto& entry, std::uint64_t key) { return entry.first < key; });
  if (it != tx_status_.end() && it->first == tx.seq) {
    it->second = status;
    return;
  }
  // Tracked txs were registered at submit(); reaching here means the
  // statuses were cleared mid-flight. Insert in place to keep the vector
  // sorted for the binary searches above.
  tx_status_.emplace(it, tx.seq, status);
}

void Blockchain::reset_fault_runtime() {
  next_seq_ = 0;
  tx_status_.clear();
  halted_ = false;
  finalized_ = false;
}

void Blockchain::register_contract(std::unique_ptr<Contract> c) {
  c->id_ = contracts_.size();
  c->chain_ = id_;
  contracts_.push_back(std::move(c));
}

void Blockchain::produce_block(Tick now) {
  if (!faults_.empty()) {
    produce_block_faulted(now);
    return;
  }
  height_ = now;
  // Apply queued transactions in submission order (contracts can rely on
  // arrival order, paper §3.2 footnote). The batch/mempool pair ping-pongs
  // so both keep their capacity across blocks.
  batch_.clear();
  batch_.swap(mempool_);
  for (Transaction& tx : batch_) {
    TxContext ctx(*this, tx.sender, now);
    tx.effect(ctx);
    ++applied_tx_count_;
    record_status(tx, TxStatus::kIncluded);
    if (on_included_) on_included_(id_, tx.sender, now);
  }
  // Timeout sweep: contracts resolve expired timelocks.
  TxContext sweep(*this, kNoParty, now);
  for (auto& c : contracts_) {
    c->on_block(sweep);
  }
}

void Blockchain::produce_block_faulted(Tick now) {
  if (faults_.outage_at(now)) {
    // Full outage: no block at this tick. Height freezes, queued
    // transactions park in the mempool, and — because the timeout sweep
    // belongs to block production — timelocks do not fire either. Parties
    // may keep submitting (unlike halt()): their transactions wait out
    // the outage.
    for (Transaction& tx : mempool_) tx.fresh = false;
    return;
  }
  height_ = now;

  // 1. Seeded submission drops hit fresh (submitted-since-last-block)
  //    transactions only; carried-over entries already survived the hop.
  if (faults_.drops_at(now)) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < mempool_.size(); ++i) {
      Transaction& tx = mempool_[i];
      if (tx.fresh && faults_.should_drop(id_, now, tx.seq)) {
        record_status(tx, TxStatus::kDropped);
      } else {
        if (kept != i) mempool_[kept] = std::move(tx);
        ++kept;
      }
    }
    mempool_.resize(kept);
  }

  // 2. Synthetic congestion: spam competes for block space at its fee
  //    but never carries over — squeezed blocks see fresh pressure each
  //    tick, unselected spam evaporates below.
  const std::size_t real_count = mempool_.size();
  faults_.each_spam(now, [&](int count, Amount fee) {
    for (int i = 0; i < count; ++i) {
      Transaction spam;
      spam.sender = kNoParty;
      if (tracing()) spam.note = "fault: spam";
      spam.effect = [](TxContext&) {};
      spam.fee = fee;
      spam.seq = next_seq_++;
      mempool_.push_back(std::move(spam));
    }
  });

  // 3. Fee-priority selection under the active capacity: the top `cap`
  //    by (fee desc, submission order asc) — older submissions win fee
  //    ties, which is what lets an escalating party overtake same-fee
  //    spam — applied in submission order (arrival order within a block
  //    is what contracts rely on, paper §3.2 footnote). One shared-chain
  //    tick sees the whole tick's traffic at once, so selection is a
  //    partial nth_element partition plus a sort of only the selected
  //    cap indices, not a full sort of the mempool.
  const int cap = faults_.cap_at(now);
  sel_order_.resize(mempool_.size());
  for (std::size_t i = 0; i < sel_order_.size(); ++i) sel_order_[i] = i;
  if (cap >= 0 && static_cast<std::size_t>(cap) < sel_order_.size()) {
    std::nth_element(
        sel_order_.begin(), sel_order_.begin() + cap, sel_order_.end(),
        [&](std::size_t a, std::size_t b) {
          if (mempool_[a].fee != mempool_[b].fee) {
            return mempool_[a].fee > mempool_[b].fee;
          }
          return mempool_[a].seq < mempool_[b].seq;
        });
    sel_order_.resize(static_cast<std::size_t>(cap));
    std::sort(sel_order_.begin(), sel_order_.end());
  }
  sel_flags_.assign(mempool_.size(), 0);
  for (const std::size_t i : sel_order_) sel_flags_[i] = 1;

  batch_.clear();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < mempool_.size(); ++i) {
    Transaction& tx = mempool_[i];
    if (sel_flags_[i]) {
      batch_.push_back(std::move(tx));
    } else if (i < real_count) {
      tx.fresh = false;
      if (kept != i) mempool_[kept] = std::move(tx);
      ++kept;
    }
    // Unselected spam (i >= real_count) evaporates.
  }
  mempool_.resize(kept);

  // 4. Bounded mempool: carry-overs beyond the active mem limit are
  //    evicted lowest priority first (fee asc, youngest submission
  //    first), mirroring the selection order. Only the `excess` evictees
  //    need ordering — another nth_element partition.
  const int mem = faults_.mem_at(now);
  if (mem >= 0 && mempool_.size() > static_cast<std::size_t>(mem)) {
    sel_order_.resize(mempool_.size());
    for (std::size_t i = 0; i < sel_order_.size(); ++i) sel_order_[i] = i;
    const std::size_t excess = mempool_.size() - static_cast<std::size_t>(mem);
    std::nth_element(
        sel_order_.begin(), sel_order_.begin() + static_cast<std::ptrdiff_t>(excess),
        sel_order_.end(), [&](std::size_t a, std::size_t b) {
          if (mempool_[a].fee != mempool_[b].fee) {
            return mempool_[a].fee < mempool_[b].fee;
          }
          return mempool_[a].seq > mempool_[b].seq;
        });
    sel_flags_.assign(mempool_.size(), 0);
    for (std::size_t k = 0; k < excess; ++k) sel_flags_[sel_order_[k]] = 1;
    std::size_t survivors = 0;
    for (std::size_t i = 0; i < mempool_.size(); ++i) {
      Transaction& tx = mempool_[i];
      if (sel_flags_[i]) {
        record_status(tx, TxStatus::kEvicted);
      } else {
        if (survivors != i) mempool_[survivors] = std::move(tx);
        ++survivors;
      }
    }
    mempool_.resize(survivors);
  }

  // 5. Apply the selected block, then the timeout sweep — identical to
  //    the fast path from here on.
  for (Transaction& tx : batch_) {
    TxContext ctx(*this, tx.sender, now);
    tx.effect(ctx);
    ++applied_tx_count_;
    record_status(tx, TxStatus::kIncluded);
    if (on_included_) on_included_(id_, tx.sender, now);
  }
  TxContext sweep(*this, kNoParty, now);
  for (auto& c : contracts_) {
    c->on_block(sweep);
  }
}

void Blockchain::reset() {
  ledger_.restore();
  height_ = -1;
  mempool_.clear();
  events_.clear();
  applied_tx_count_ = 0;
  reset_fault_runtime();
  for (auto& c : contracts_) c->reset();
}

void Blockchain::snap_push() {
  // Tick-boundary-only, traceless-only: the mempool was consumed by block
  // production and the event log never grows under TraceMode::kOff, so
  // neither needs to be part of a snapshot.
  if (!mempool_.empty() || tracing()) {
    throw std::logic_error(
        "Blockchain::snap_push: checkpoints stack only at tick boundaries "
        "of traceless chains");
  }
  const std::size_t depth = ledger_.snap_depth();
  ledger_.snap_push();
  if (depth < snap_counters_.size()) {
    snap_counters_[depth] = {height_, applied_tx_count_};
  } else {
    snap_counters_.emplace_back(height_, applied_tx_count_);
  }
  for (auto& c : contracts_) c->snapshot(SnapshotOp::kPush, depth);
}

void Blockchain::snap_rewind(std::size_t depth) {
  ledger_.snap_rewind(depth);
  height_ = snap_counters_.at(depth).first;
  applied_tx_count_ = snap_counters_.at(depth).second;
  mempool_.clear();
  // Fault runtime (submission ordinals, tracked statuses, halt flags) is
  // per-run state: rewinding to a snapshot restarts the run from that
  // point, and the fuzz executor's rewind-to-slot-0 relies on this being
  // equivalent to reset() for replay determinism. Fault-active sweeps run
  // on the brute executor (one rewind target at the clean state), so
  // mid-run snapshot layering never coexists with a live fault runtime.
  reset_fault_runtime();
  // kRestore leaves the stack at depth + 1, matching the ledger.
  for (auto& c : contracts_) c->snapshot(SnapshotOp::kRestore, depth);
}

void Blockchain::state_hash(std::uint64_t& h) const {
  ledger_.state_hash(h);
  state_hash_mix(h, static_cast<std::uint64_t>(height_));
  state_hash_mix(h, applied_tx_count_);
  for (const auto& c : contracts_) c->state_hash(h);
}

Blockchain& MultiChain::add_chain(const std::string& name) {
  const ChainId id = static_cast<ChainId>(chains_.size());
  chains_.push_back(
      std::make_unique<Blockchain>(id, name, name + "-coin"));
  chains_.back()->set_trace(trace_);
  chains_.back()->set_faults(env_.faults.for_chain(name));
  chains_.back()->set_resilience(env_.resilience);
  chains_.back()->set_inclusion_observer(observer_);
  return *chains_.back();
}

Blockchain& MultiChain::get_or_add_chain(const std::string& name) {
  for (auto& c : chains_) {
    if (c->name() == name) return *c;
  }
  return add_chain(name);
}

void MultiChain::set_inclusion_observer(Blockchain::InclusionObserver obs) {
  observer_ = std::move(obs);
  for (auto& c : chains_) c->set_inclusion_observer(observer_);
}

void MultiChain::set_trace(TraceMode mode) {
  trace_ = mode;
  for (auto& c : chains_) c->set_trace(mode);
}

void MultiChain::set_environment(const ChainEnvironment& env) {
  env_ = env;
  for (auto& c : chains_) {
    c->set_faults(env_.faults.for_chain(c->name()));
    c->set_resilience(env_.resilience);
  }
}

void MultiChain::finalize_all() {
  for (auto& c : chains_) c->finalize();
}

void MultiChain::produce_all(Tick now) {
  for (auto& c : chains_) c->produce_block(now);
}

void MultiChain::checkpoint() {
  for (auto& c : chains_) c->checkpoint();
}

void MultiChain::reset() {
  for (auto& c : chains_) c->reset();
}

void MultiChain::snap_push() {
  for (auto& c : chains_) c->snap_push();
}

void MultiChain::snap_rewind(std::size_t depth) {
  for (auto& c : chains_) c->snap_rewind(depth);
}

std::size_t MultiChain::snap_depth() const {
  return chains_.empty() ? 0 : chains_.front()->snap_depth();
}

std::uint64_t MultiChain::state_hash() const {
  std::uint64_t h = kStateHashSeed;
  for (const auto& c : chains_) c->state_hash(h);
  return h;
}

EventLog MultiChain::all_events() const {
  EventLog all;
  for (const auto& c : chains_) {
    all.insert(all.end(), c->events().begin(), c->events().end());
  }
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    if (a.tick != b.tick) return a.tick < b.tick;
    return a.chain < b.chain;
  });
  return all;
}

}  // namespace xchain::chain
