#include "chain/blockchain.hpp"

#include <algorithm>

namespace xchain::chain {

ChainId TxContext::chain_id() const { return bc_.id(); }

Ledger& TxContext::ledger() { return bc_.ledger_; }

const Symbol& TxContext::native() const { return bc_.native(); }

SymbolId TxContext::native_id() const { return bc_.native_id(); }

bool TxContext::tracing() const { return bc_.tracing(); }

void TxContext::emit(ContractId contract, std::string kind,
                     std::string detail) {
  if (!bc_.tracing()) return;
  bc_.events_.push_back(
      Event{now_, bc_.id(), contract, std::move(kind), std::move(detail)});
}

Blockchain::Blockchain(ChainId id, std::string name, Symbol native)
    : id_(id),
      name_(std::move(name)),
      native_(std::move(native)),
      native_id_(SymbolTable::intern(native_)) {}

void Blockchain::submit(Transaction tx) { mempool_.push_back(std::move(tx)); }

void Blockchain::register_contract(std::unique_ptr<Contract> c) {
  c->id_ = contracts_.size();
  c->chain_ = id_;
  contracts_.push_back(std::move(c));
}

void Blockchain::produce_block(Tick now) {
  height_ = now;
  // Apply queued transactions in submission order (contracts can rely on
  // arrival order, paper §3.2 footnote). The batch/mempool pair ping-pongs
  // so both keep their capacity across blocks.
  batch_.clear();
  batch_.swap(mempool_);
  for (Transaction& tx : batch_) {
    TxContext ctx(*this, tx.sender, now);
    tx.effect(ctx);
    ++applied_tx_count_;
  }
  // Timeout sweep: contracts resolve expired timelocks.
  TxContext sweep(*this, kNoParty, now);
  for (auto& c : contracts_) {
    c->on_block(sweep);
  }
}

void Blockchain::reset() {
  ledger_.restore();
  height_ = -1;
  mempool_.clear();
  events_.clear();
  applied_tx_count_ = 0;
  for (auto& c : contracts_) c->reset();
}

void Blockchain::snap_push() {
  // Tick-boundary-only, traceless-only: the mempool was consumed by block
  // production and the event log never grows under TraceMode::kOff, so
  // neither needs to be part of a snapshot.
  if (!mempool_.empty() || tracing()) {
    throw std::logic_error(
        "Blockchain::snap_push: checkpoints stack only at tick boundaries "
        "of traceless chains");
  }
  const std::size_t depth = ledger_.snap_depth();
  ledger_.snap_push();
  if (depth < snap_counters_.size()) {
    snap_counters_[depth] = {height_, applied_tx_count_};
  } else {
    snap_counters_.emplace_back(height_, applied_tx_count_);
  }
  for (auto& c : contracts_) c->snapshot(SnapshotOp::kPush, depth);
}

void Blockchain::snap_rewind(std::size_t depth) {
  ledger_.snap_rewind(depth);
  height_ = snap_counters_.at(depth).first;
  applied_tx_count_ = snap_counters_.at(depth).second;
  mempool_.clear();
  // kRestore leaves the stack at depth + 1, matching the ledger.
  for (auto& c : contracts_) c->snapshot(SnapshotOp::kRestore, depth);
}

void Blockchain::state_hash(std::uint64_t& h) const {
  ledger_.state_hash(h);
  state_hash_mix(h, static_cast<std::uint64_t>(height_));
  state_hash_mix(h, applied_tx_count_);
  for (const auto& c : contracts_) c->state_hash(h);
}

Blockchain& MultiChain::add_chain(const std::string& name) {
  const ChainId id = static_cast<ChainId>(chains_.size());
  chains_.push_back(
      std::make_unique<Blockchain>(id, name, name + "-coin"));
  chains_.back()->set_trace(trace_);
  return *chains_.back();
}

void MultiChain::set_trace(TraceMode mode) {
  trace_ = mode;
  for (auto& c : chains_) c->set_trace(mode);
}

void MultiChain::produce_all(Tick now) {
  for (auto& c : chains_) c->produce_block(now);
}

void MultiChain::checkpoint() {
  for (auto& c : chains_) c->checkpoint();
}

void MultiChain::reset() {
  for (auto& c : chains_) c->reset();
}

void MultiChain::snap_push() {
  for (auto& c : chains_) c->snap_push();
}

void MultiChain::snap_rewind(std::size_t depth) {
  for (auto& c : chains_) c->snap_rewind(depth);
}

std::size_t MultiChain::snap_depth() const {
  return chains_.empty() ? 0 : chains_.front()->snap_depth();
}

std::uint64_t MultiChain::state_hash() const {
  std::uint64_t h = kStateHashSeed;
  for (const auto& c : chains_) c->state_hash(h);
  return h;
}

EventLog MultiChain::all_events() const {
  EventLog all;
  for (const auto& c : chains_) {
    all.insert(all.end(), c->events().begin(), c->events().end());
  }
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    if (a.tick != b.tick) return a.tick < b.tick;
    return a.chain < b.chain;
  });
  return all;
}

}  // namespace xchain::chain
