#include "chain/blockchain.hpp"

#include <algorithm>

namespace xchain::chain {

ChainId TxContext::chain_id() const { return bc_.id(); }

Ledger& TxContext::ledger() { return bc_.ledger_; }

const Symbol& TxContext::native() const { return bc_.native(); }

void TxContext::emit(ContractId contract, std::string kind,
                     std::string detail) {
  bc_.events_.push_back(
      Event{now_, bc_.id(), contract, std::move(kind), std::move(detail)});
}

Blockchain::Blockchain(ChainId id, std::string name, Symbol native)
    : id_(id), name_(std::move(name)), native_(std::move(native)) {}

void Blockchain::submit(Transaction tx) { mempool_.push_back(std::move(tx)); }

void Blockchain::register_contract(std::unique_ptr<Contract> c) {
  c->id_ = contracts_.size();
  c->chain_ = id_;
  contracts_.push_back(std::move(c));
}

void Blockchain::produce_block(Tick now) {
  height_ = now;
  // Apply queued transactions in submission order (contracts can rely on
  // arrival order, paper §3.2 footnote).
  std::vector<Transaction> batch;
  batch.swap(mempool_);
  for (Transaction& tx : batch) {
    TxContext ctx(*this, tx.sender, now);
    tx.effect(ctx);
    ++applied_tx_count_;
  }
  // Timeout sweep: contracts resolve expired timelocks.
  TxContext sweep(*this, kNoParty, now);
  for (auto& c : contracts_) {
    c->on_block(sweep);
  }
}

Blockchain& MultiChain::add_chain(const std::string& name) {
  const ChainId id = static_cast<ChainId>(chains_.size());
  chains_.push_back(
      std::make_unique<Blockchain>(id, name, name + "-coin"));
  return *chains_.back();
}

void MultiChain::produce_all(Tick now) {
  for (auto& c : chains_) c->produce_block(now);
}

EventLog MultiChain::all_events() const {
  EventLog all;
  for (const auto& c : chains_) {
    all.insert(all.end(), c->events().begin(), c->events().end());
  }
  std::stable_sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    if (a.tick != b.tick) return a.tick < b.tick;
    return a.chain < b.chain;
  });
  return all;
}

}  // namespace xchain::chain
