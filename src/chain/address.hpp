#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"

namespace xchain::chain {

/// An on-chain account: either a party's wallet or a contract's escrow
/// account. Escrowing an asset is modelled the way real chains do it —
/// transferring ownership to the contract's address (paper §4).
struct Address {
  enum class Kind : std::uint8_t { kParty, kContract };

  Kind kind = Kind::kParty;
  std::uint64_t id = 0;

  static Address party(PartyId p) { return {Kind::kParty, p}; }
  static Address contract(ContractId c) { return {Kind::kContract, c}; }

  friend bool operator==(const Address&, const Address&) = default;

  /// Human-readable form for traces, e.g. "party:0" / "contract:3".
  std::string str() const {
    return (kind == Kind::kParty ? "party:" : "contract:") +
           std::to_string(id);
  }
};

}  // namespace xchain::chain

template <>
struct std::hash<xchain::chain::Address> {
  std::size_t operator()(const xchain::chain::Address& a) const noexcept {
    return std::hash<std::uint64_t>{}(
        (a.id << 1) | static_cast<std::uint64_t>(a.kind));
  }
};
