#pragma once

// Layered state snapshots for the checkpoint *stack* (tree-executor
// substrate).
//
// The scenario tree executor (sim/scenario.cpp) rolls a reusable world
// back to the start of an arbitrary tick instead of to one post-setup
// baseline, so every stateful object in a world — ledgers, contracts,
// protocol actors — keeps a stack of snapshots of its mutable members,
// one per executed tick. The helpers here make that mechanical:
//
//   * a class lists its mutable members once, as a std::tie, and a
//     TieStack of the matching value types gives push / restore /
//     truncate over them;
//   * all three operations funnel through one SnapshotOp dispatch, so
//     the owning class implements a single virtual;
//   * restore copies values back into live members and truncate only
//     shrinks the logical depth — slots above the live depth keep their
//     heap capacity and are overwritten in place by the next push, so
//     the steady-state DFS walk (push / rewind / push ...) allocates
//     nothing once the stack has reached its high-water depth (the slab
//     reuse idiom production chain runtimes use for ledger deltas).
//
// state_hash_mix / hash_tie provide the matching order-sensitive 64-bit
// state hash (FNV-1a over the same tied members), which the tree
// executor uses as an integrity check: the hash recorded when a
// checkpoint is pushed must equal the hash recomputed after rewinding to
// it, so an actor or contract whose snapshot misses a mutable member
// fails loudly instead of silently corrupting the sweep.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace xchain::chain {

class Contract;

/// The one-virtual snapshot protocol: push the live state, restore the
/// live state from depth `d` (leaving depths 0..d intact), or truncate
/// the stack to depth `d` (discarding snapshots at d and above).
enum class SnapshotOp : std::uint8_t { kPush, kRestore, kTruncate };

/// 64-bit FNV-1a mix step for state hashing.
inline void state_hash_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

constexpr std::uint64_t kStateHashSeed = 0xcbf29ce484222325ull;

namespace detail {

template <class T>
void hash_value(std::uint64_t& h, const T& v) {
  if constexpr (std::is_enum_v<T>) {
    state_hash_mix(h, static_cast<std::uint64_t>(v));
  } else if constexpr (std::is_integral_v<T>) {
    state_hash_mix(h, static_cast<std::uint64_t>(v));
  } else if constexpr (requires { v.state_hash_into(h); }) {
    // Aggregates opt in with a member hook (e.g. a contract's per-leader
    // premium record) — see state_hash_values below.
    v.state_hash_into(h);
  } else if constexpr (requires {
                         v.secret;
                         v.path;
                         v.sigs;
                       }) {
    // crypto::Hashkey, matched structurally so the crypto layer need not
    // depend on this header.
    hash_value(h, v.secret);
    hash_value(h, v.path);
    hash_value(h, v.sigs);
  } else if constexpr (requires {
                         v.e;
                         v.s;
                       }) {
    // crypto::Signature, likewise structural.
    hash_value(h, v.e);
    hash_value(h, v.s);
  } else if constexpr (requires {
                         v.has_value();
                         *v;
                       } && !requires { v.begin(); }) {
    // optional-like
    state_hash_mix(h, v.has_value() ? 1 : 0);
    if (v.has_value()) hash_value(h, *v);
  } else if constexpr (requires { std::tuple_size<T>::value; }) {
    // pair/tuple/array-like with structured element access
    std::apply([&](const auto&... es) { (hash_value(h, es), ...); }, v);
  } else {
    // Containers of hashable elements (vector<char>, map<K, V>, ...).
    state_hash_mix(h, static_cast<std::uint64_t>(v.size()));
    for (const auto& e : v) hash_value(h, e);
  }
}

}  // namespace detail

/// A stack of value-snapshots of a fixed set of lvalues, addressed by the
/// std::tie the owner passes to every call (always the same members, in
/// the same order). Logical depth is tracked separately from the backing
/// vector so truncation keeps slot capacity for reuse.
template <class... Ts>
class TieStack {
 public:
  using Tie = std::tuple<Ts&...>;

  std::size_t depth() const { return depth_; }

  void apply(SnapshotOp op, std::size_t d, Tie tie) {
    switch (op) {
      case SnapshotOp::kPush:
        if (depth_ < slots_.size()) {
          slots_[depth_] = tie;  // overwrite a retired slot in place
        } else {
          slots_.emplace_back(tie);
        }
        ++depth_;
        break;
      case SnapshotOp::kRestore:
        tie = slots_[d];
        depth_ = d + 1;
        break;
      case SnapshotOp::kTruncate:
        depth_ = d;
        break;
    }
  }

  /// Order-sensitive hash of the LIVE tied values (not the stack).
  void hash(std::uint64_t& h, std::tuple<const Ts&...> tie) const {
    std::apply([&](const Ts&... vs) { (detail::hash_value(h, vs), ...); },
               tie);
  }

 private:
  std::vector<std::tuple<Ts...>> slots_;
  std::size_t depth_ = 0;
};

/// Order-sensitive hash of a tuple of (references to) hashable values.
template <class... Ts>
void hash_tie(std::uint64_t& h, const std::tuple<Ts...>& tie) {
  std::apply([&](const auto&... vs) { (detail::hash_value(h, vs), ...); },
             tie);
}

/// Hashes a flat list of values — the body of a struct's state_hash_into
/// hook:
///
///   struct Rung {
///     ...
///     void state_hash_into(std::uint64_t& h) const {
///       chain::state_hash_values(h, state, deposited_at, resolved_at);
///     }
///   };
template <class... Vs>
void state_hash_values(std::uint64_t& h, const Vs&... vs) {
  (detail::hash_value(h, vs), ...);
}

namespace detail {

template <class Tie>
struct TieStackFor;
template <class... Ts>
struct TieStackFor<std::tuple<Ts&...>> {
  using type = TieStack<Ts...>;
};

struct ErasedStack {
  virtual ~ErasedStack() = default;
};
template <class S>
struct StackHolder final : ErasedStack {
  S stack;
};

}  // namespace detail

/// CRTP mixin implementing the snapshot protocol for any class whose base
/// declares `virtual void snapshot(SnapshotOp, std::size_t)` and
/// `virtual void state_hash(std::uint64_t&) const` (chain::Contract,
/// sim::Party). The derived class lists its mutable members ONCE:
///
///   class ArcContract : public chain::SnapshotState<ArcContract> {
///     auto state_tie() { return std::tie(phase_, escrowed_, ...); }
///     friend chain::SnapshotState<ArcContract>;
///   };
///
/// Every member named in state_tie() is snapshotted and hashed; a member
/// left out is exactly the bug the executor's rewind-integrity hash
/// exists to catch, so keep the tie exhaustive over mutable state.
template <class D, class Base = Contract>
class SnapshotState : public Base {
 public:
  using Base::Base;

  void snapshot(SnapshotOp op, std::size_t depth) override {
    // snapshot_members is the base's own mutable state (e.g. a Party's
    // pending-action queue) — a plain hook, so the unported-class guard
    // in the base's virtual snapshot() is not inherited here.
    this->snapshot_members(op, depth);
    auto tie = static_cast<D*>(this)->state_tie();
    using Stack = typename detail::TieStackFor<decltype(tie)>::type;
    // Lazily created and type-erased: D is incomplete while this base is
    // instantiated, so the stack's concrete type can only be named inside
    // function bodies (instantiated once D is complete). One allocation
    // per object, first push only.
    if (!stack_) stack_ = std::make_unique<detail::StackHolder<Stack>>();
    static_cast<detail::StackHolder<Stack>&>(*stack_).stack.apply(op, depth,
                                                                  tie);
  }

  void state_hash(std::uint64_t& h) const override {
    this->state_hash_members(h);
    // state_tie() only reads through the references here; the const_cast
    // spares every derived class a second, const overload.
    hash_tie(h, const_cast<D*>(static_cast<const D*>(this))->state_tie());
  }

 private:
  std::unique_ptr<detail::ErasedStack> stack_;
};

}  // namespace xchain::chain
