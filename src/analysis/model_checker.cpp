#include "analysis/model_checker.hpp"

#include <functional>

#include "sim/plan_space.hpp"

namespace xchain::analysis {

namespace {

using sim::DeviationPlan;
using sim::for_each_plan_combination;

/// The checker's historical plan space keeps the redundant halt@actions
/// encoding (tests pin the resulting scenario counts).
std::vector<DeviationPlan> plan_space(int actions) {
  return sim::plan_space(actions, /*include_full_halt=*/true);
}

// GCC 12's libstdc++ trips -Wrestrict on the inlined std::string
// operator+ chain below (bogus "accessing 9223372036854775810 or more
// bytes" — GCC PR 105651, fixed in GCC 13). The library builds with
// -Werror, so suppress the false positive for just this function.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ < 13
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
std::string scenario_name(const std::vector<DeviationPlan>& plans) {
  std::string s;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    if (i > 0) s += ",";
    s += "p" + std::to_string(i) + "=" + plans[i].str();
  }
  return s;
}
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ < 13
#pragma GCC diagnostic pop
#endif

bool lost(const core::PayoffDelta& d, const std::string& sym) {
  const auto it = d.by_symbol.find(sym);
  return it != d.by_symbol.end() && it->second < 0;
}

bool gained(const core::PayoffDelta& d, const std::string& sym) {
  const auto it = d.by_symbol.find(sym);
  return it != d.by_symbol.end() && it->second > 0;
}

}  // namespace

std::string CheckReport::summary() const {
  std::string s = protocol + ": " + std::to_string(scenarios_explored) +
                  " scenarios, " + std::to_string(events_observed) +
                  " events, " + std::to_string(violations.size()) +
                  " violations";
  for (std::size_t i = 0; i < violations.size() && i < 5; ++i) {
    s += "\n  [" + violations[i].property + "] " + violations[i].scenario +
         ": " + violations[i].detail;
  }
  return s;
}

// ---------------------------------------------------------------------------
// Two-party (§5)
// ---------------------------------------------------------------------------

namespace {

CheckReport check_two_party_impl(const core::TwoPartyConfig& cfg,
                                 bool hedged) {
  CheckReport report;
  report.protocol = hedged ? "hedged-two-party" : "base-two-party";
  const int actions =
      hedged ? core::kHedgedTwoPartyActions : core::kBaseTwoPartyActions;
  const auto space = plan_space(actions);

  for_each_plan_combination({space, space}, [&](const auto& plans) {
    const auto r = hedged
                       ? core::run_hedged_two_party(cfg, plans[0], plans[1])
                       : core::run_base_two_party(cfg, plans[0], plans[1]);
    ++report.scenarios_explored;
    report.events_observed += r.events.size();
    const std::string name = scenario_name(plans);
    auto violate = [&](std::string property, std::string detail) {
      report.violations.push_back(
          Violation{name, std::move(property), std::move(detail)});
    };

    if (plans[0].is_conforming() && plans[1].is_conforming()) {
      if (!r.swapped) violate("liveness", "conforming run did not swap");
      if (r.alice.coin_delta != 0 || r.bob.coin_delta != 0) {
        violate("liveness", "conforming run did not refund premiums");
      }
    }
    if (r.alice.coin_delta + r.bob.coin_delta != 0) {
      violate("zero-sum", "premium flows do not balance");
    }
    if (plans[0].is_conforming()) {
      if (lost(r.alice, "apricot") && !gained(r.alice, "banana")) {
        violate("safety", "compliant alice lost principal uncompensated");
      }
      if (r.alice.coin_delta < 0) {
        violate("no-loss", "compliant alice lost coins");
      }
      if (r.alice_lockup > 0 && r.alice.coin_delta <= 0) {
        violate("hedged", "alice locked " + std::to_string(r.alice_lockup) +
                              " ticks without compensation");
      }
    }
    if (plans[1].is_conforming()) {
      if (lost(r.bob, "banana") && !gained(r.bob, "apricot")) {
        violate("safety", "compliant bob lost principal uncompensated");
      }
      if (r.bob.coin_delta < 0) {
        violate("no-loss", "compliant bob lost coins");
      }
      if (r.bob_lockup > 0 && r.bob.coin_delta <= 0) {
        violate("hedged", "bob locked " + std::to_string(r.bob_lockup) +
                              " ticks without compensation");
      }
    }
  });
  return report;
}

}  // namespace

CheckReport check_hedged_two_party(const core::TwoPartyConfig& cfg) {
  return check_two_party_impl(cfg, /*hedged=*/true);
}

CheckReport check_base_two_party(const core::TwoPartyConfig& cfg) {
  return check_two_party_impl(cfg, /*hedged=*/false);
}

// ---------------------------------------------------------------------------
// Bootstrap (§6)
// ---------------------------------------------------------------------------

CheckReport check_bootstrap(const core::BootstrapConfig& cfg) {
  CheckReport report;
  report.protocol =
      "bootstrap-" + std::to_string(cfg.rounds) + "-rounds";
  const auto space = plan_space(core::bootstrap_action_count(cfg.rounds));

  for_each_plan_combination({space, space}, [&](const auto& plans) {
    const auto r = core::run_bootstrap_swap(cfg, plans[0], plans[1]);
    ++report.scenarios_explored;
    report.events_observed += r.events.size();
    const std::string name = scenario_name(plans);
    auto violate = [&](std::string property, std::string detail) {
      report.violations.push_back(
          Violation{name, std::move(property), std::move(detail)});
    };

    if (plans[0].is_conforming() && plans[1].is_conforming() && !r.swapped) {
      violate("liveness", "conforming run did not swap");
    }
    if (r.alice.coin_delta + r.bob.coin_delta != 0) {
      violate("zero-sum", "premium flows do not balance");
    }
    if (plans[0].is_conforming()) {
      if (r.alice.coin_delta < 0) violate("no-loss", "alice lost coins");
      if (r.alice_lockup > 0 && r.alice.coin_delta <= 0) {
        violate("hedged", "alice principal locked uncompensated");
      }
    }
    if (plans[1].is_conforming()) {
      if (r.bob.coin_delta < 0) violate("no-loss", "bob lost coins");
      if (r.bob_lockup > 0 && r.bob.coin_delta <= 0) {
        violate("hedged", "bob principal locked uncompensated");
      }
    }
  });
  return report;
}

// ---------------------------------------------------------------------------
// Multi-party (§7)
// ---------------------------------------------------------------------------

CheckReport check_multi_party(const core::MultiPartyConfig& cfg) {
  CheckReport report;
  report.protocol = "multi-party-n" + std::to_string(cfg.g.size()) + "-m" +
                    std::to_string(cfg.g.arc_count());
  const int actions = cfg.hedged ? core::kMultiPartyHedgedActions
                                 : core::kMultiPartyBaseActions;
  const std::vector<std::vector<DeviationPlan>> spaces(
      cfg.g.size(), plan_space(actions));

  for_each_plan_combination(spaces, [&](const auto& plans) {
    const auto r = core::run_multi_party_swap(cfg, plans);
    ++report.scenarios_explored;
    report.events_observed += r.events.size();
    const std::string name = scenario_name(plans);
    auto violate = [&](std::string property, std::string detail) {
      report.violations.push_back(
          Violation{name, std::move(property), std::move(detail)});
    };

    bool all_conform = true;
    Amount total = 0;
    for (std::size_t v = 0; v < plans.size(); ++v) {
      total += r.payoffs[v].coin_delta;
      all_conform &= plans[v].is_conforming();
    }
    if (all_conform && !r.all_redeemed) {
      violate("liveness", "conforming run did not complete");
    }
    if (total != 0) violate("zero-sum", "premium flows do not balance");
    for (std::size_t v = 0; v < plans.size(); ++v) {
      if (!plans[v].is_conforming()) continue;
      if (r.payoffs[v].coin_delta < 0) {
        violate("no-loss",
                "compliant party " + std::to_string(v) + " lost coins");
      }
      // Lemma 6: at least p per locked-and-refunded escrowed asset.
      const Amount floor =
          cfg.premium_unit * static_cast<Amount>(r.assets_refunded[v]);
      if (cfg.hedged && r.payoffs[v].coin_delta < floor) {
        violate("hedged", "party " + std::to_string(v) + " got " +
                              std::to_string(r.payoffs[v].coin_delta) +
                              " < " + std::to_string(floor));
      }
    }
  });
  return report;
}

// ---------------------------------------------------------------------------
// Broker (§8)
// ---------------------------------------------------------------------------

CheckReport check_broker(const core::BrokerConfig& cfg) {
  CheckReport report;
  report.protocol = "broker";
  const auto space = plan_space(core::kBrokerActions);

  for_each_plan_combination({space, space, space}, [&](const auto& plans) {
    const auto r = core::run_broker_deal(cfg, plans[0], plans[1], plans[2]);
    ++report.scenarios_explored;
    report.events_observed += r.events.size();
    const std::string name = scenario_name(plans);
    auto violate = [&](std::string property, std::string detail) {
      report.violations.push_back(
          Violation{name, std::move(property), std::move(detail)});
    };

    const core::PayoffDelta* payoffs[3] = {&r.alice, &r.bob, &r.carol};
    if (plans[0].is_conforming() && plans[1].is_conforming() &&
        plans[2].is_conforming() && !r.completed) {
      violate("liveness", "conforming deal did not complete");
    }
    Amount total = 0;
    for (int v = 0; v < 3; ++v) total += payoffs[v]->coin_delta;
    if (total != 0) violate("zero-sum", "premium flows do not balance");
    for (int v = 0; v < 3; ++v) {
      if (!plans[static_cast<std::size_t>(v)].is_conforming()) continue;
      if (payoffs[v]->coin_delta < 0) {
        violate("no-loss",
                "compliant party " + std::to_string(v) + " lost coins");
      }
    }
    // Safety: compliant Bob never loses tickets without coins; compliant
    // Carol never loses coins without tickets.
    if (plans[1].is_conforming() && lost(r.bob, "ticket") &&
        !gained(r.bob, "coin")) {
      violate("safety", "bob's tickets taken without payment");
    }
    if (plans[2].is_conforming() && lost(r.carol, "coin") &&
        !gained(r.carol, "ticket")) {
      violate("safety", "carol's coins taken without tickets");
    }
    // Hedged: locked-and-refunded principals are compensated.
    if (plans[1].is_conforming() && r.bob_lockup > 0 &&
        payoffs[1]->coin_delta <= 0) {
      violate("hedged", "bob locked without compensation");
    }
    if (plans[2].is_conforming() && r.carol_lockup > 0 &&
        payoffs[2]->coin_delta <= 0) {
      violate("hedged", "carol locked without compensation");
    }
  });
  return report;
}

// ---------------------------------------------------------------------------
// Auction (§9)
// ---------------------------------------------------------------------------

CheckReport check_auction(const core::AuctionConfig& cfg) {
  CheckReport report;
  report.protocol =
      "auction-n" + std::to_string(cfg.bids.size());

  const std::vector<core::AuctioneerStrategy> alice_space = {
      core::AuctioneerStrategy::kHonest,
      core::AuctioneerStrategy::kNoSetup,
      core::AuctioneerStrategy::kAbandon,
      core::AuctioneerStrategy::kDeclareLoser,
      core::AuctioneerStrategy::kCoinOnly,
      core::AuctioneerStrategy::kTicketOnly,
      core::AuctioneerStrategy::kSplit,
  };
  const std::vector<core::BidderStrategy> bidder_space = {
      core::BidderStrategy::kConform,
      core::BidderStrategy::kNoBid,
      core::BidderStrategy::kNoForward,
  };

  const std::size_t n = cfg.bids.size();
  std::vector<std::size_t> index(n, 0);
  auto next_vector = [&]() -> bool {
    for (std::size_t i = 0; i < n; ++i) {
      if (++index[i] < bidder_space.size()) return true;
      index[i] = 0;
    }
    return false;
  };

  do {
    std::vector<core::BidderStrategy> bidders;
    for (std::size_t i = 0; i < n; ++i) bidders.push_back(bidder_space[index[i]]);
    for (const auto alice : alice_space) {
      const auto r = core::run_auction(cfg, alice, bidders);
      ++report.scenarios_explored;
      report.events_observed += r.events.size();

      std::string name = "alice=" + std::to_string(static_cast<int>(alice));
      for (std::size_t i = 0; i < n; ++i) {
        name += ",b" + std::to_string(i) + "=" +
                std::to_string(static_cast<int>(bidders[i]));
      }
      auto violate = [&](std::string property, std::string detail) {
        report.violations.push_back(
            Violation{name, std::move(property), std::move(detail)});
      };

      bool all_conform = alice == core::AuctioneerStrategy::kHonest;
      for (auto b : bidders) all_conform &= b == core::BidderStrategy::kConform;
      if (all_conform && !r.completed) {
        violate("liveness", "honest auction did not complete");
      }
      // Lemma 8: a compliant bidder's bid cannot be stolen — if it lost
      // coins, it received the tickets.
      for (std::size_t i = 0; i < n; ++i) {
        if (bidders[i] != core::BidderStrategy::kConform) continue;
        if (r.bidders[i].coin_delta < 0 && !gained(r.bidders[i], "ticket")) {
          violate("lemma-8", "bidder " + std::to_string(i) +
                                 " paid without tickets");
        }
      }
    }
  } while (next_vector());
  return report;
}

}  // namespace xchain::analysis
