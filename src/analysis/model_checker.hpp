#pragma once

#include <string>
#include <vector>

#include "core/auction.hpp"
#include "core/bootstrap.hpp"
#include "core/broker.hpp"
#include "core/multi_party.hpp"
#include "core/two_party.hpp"

namespace xchain::analysis {

/// One property violation found during exploration.
struct Violation {
  std::string scenario;  ///< which strategy combination
  std::string property;  ///< which invariant failed
  std::string detail;
};

/// Result of exhaustively exploring one protocol's strategy space.
///
/// This is the repository's analogue of the paper's TLA+ model checking
/// (§10): because the contracts enforce ordering, timing, and
/// well-formedness, a Byzantine party's only residual freedom is *which
/// prefix of its protocol actions it performs* (plus, for the auctioneer,
/// which of the finitely many legal declarations it makes). The strategy
/// product is therefore finite and every combination can be executed and
/// checked against the paper's lemmas — including combinations with
/// several simultaneous deviators, which the unit tests do not sweep.
struct CheckReport {
  std::string protocol;
  std::size_t scenarios_explored = 0;
  std::size_t events_observed = 0;  ///< total on-chain state transitions
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Hedged two-party swap (§5.2). Properties checked on every plan pair:
///  * liveness: both conform -> swapped, premiums refunded;
///  * safety: a compliant party that loses its principal gains the
///    counterpart's;
///  * hedged (Definition 1): a compliant party whose principal was locked
///    up and refunded nets positive premium compensation;
///  * compliant parties never lose coins; premium flows are zero-sum.
CheckReport check_hedged_two_party(const core::TwoPartyConfig& cfg);

/// The *base* swap of §5.1 — the negative control. Expected to FAIL the
/// hedged property (that is the paper's motivating flaw); the report's
/// violations list the lock-up-without-compensation scenarios found.
CheckReport check_base_two_party(const core::TwoPartyConfig& cfg);

/// Bootstrapped swap (§6), all plan pairs for the given round count.
CheckReport check_bootstrap(const core::BootstrapConfig& cfg);

/// Multi-party swap (§7): the full product of per-party plans (Lemmas 1-6
/// as invariants). Exponential in the party count — intended for n <= 4.
CheckReport check_multi_party(const core::MultiPartyConfig& cfg);

/// Broker deal (§8): the full product of per-party plans.
CheckReport check_broker(const core::BrokerConfig& cfg);

/// Auction (§9): every auctioneer strategy crossed with every bidder
/// strategy vector (Lemma 8 as the invariant).
CheckReport check_auction(const core::AuctionConfig& cfg);

}  // namespace xchain::analysis
