#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace xchain {

/// Identifies a protocol participant (Alice, Bob, ...). Party ids double as
/// digraph vertex ids in multi-party swaps (paper §7 uses party and vertex
/// interchangeably).
using PartyId = std::uint32_t;

/// Sentinel for "no party".
inline constexpr PartyId kNoParty = std::numeric_limits<PartyId>::max();

/// Asset / premium amounts in a common value unit (paper §4 treats all
/// premiums as if denominated in one currency). Signed so payoffs can be
/// negative.
using Amount = std::int64_t;

/// Simulation time in ticks. The synchrony bound Delta is a configurable
/// number of ticks; contract timeouts are multiples of Delta.
using Tick = std::int64_t;

/// Identifies one of the simulated blockchains.
using ChainId = std::uint32_t;

/// Identifies a contract instance on some chain.
using ContractId = std::uint64_t;

}  // namespace xchain
