#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace xchain {

/// Interned handle for an asset-symbol name ("apricot", "banana-coin",
/// "ticket", ...). Production chain runtimes key hot state by small
/// integers, not strings (cf. rippled's ledger-object indices); SymbolId is
/// that handle here. Ids are dense, process-wide, and stable for the
/// process lifetime, so they can index vectors directly.
class SymbolId {
 public:
  constexpr SymbolId() = default;

  /// False for a default-constructed (never interned) id.
  constexpr bool valid() const { return v_ != kInvalid; }

  /// Dense index in [0, SymbolTable::size()).
  constexpr std::uint32_t value() const { return v_; }

  friend constexpr bool operator==(SymbolId, SymbolId) = default;

 private:
  friend class SymbolTable;
  explicit constexpr SymbolId(std::uint32_t v) : v_(v) {}

  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t v_ = kInvalid;
};

/// Process-wide symbol interner. Thread-safe: sweeps intern symbols from
/// worker threads while building per-worker worlds. Interning is O(1)
/// amortized; `name()` lookups return references that stay valid forever
/// (storage never moves or shrinks).
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it on first sight.
  static SymbolId intern(std::string_view name);

  /// The name behind an id. Precondition: `id.valid()`.
  static const std::string& name(SymbolId id);

  /// Number of symbols interned so far (ids are < size()).
  static std::size_t size();
};

}  // namespace xchain

template <>
struct std::hash<xchain::SymbolId> {
  std::size_t operator()(const xchain::SymbolId& s) const noexcept {
    return std::hash<std::uint32_t>{}(s.value());
  }
};
