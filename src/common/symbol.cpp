#include "common/symbol.hpp"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace xchain {

namespace {

/// Interner storage. A deque gives reference stability for name(); the map
/// keys are views into the deque entries, so each name is stored once.
struct Store {
  std::shared_mutex mu;
  std::deque<std::string> names;
  std::unordered_map<std::string_view, std::uint32_t> index;
};

Store& store() {
  static Store s;
  return s;
}

}  // namespace

SymbolId SymbolTable::intern(std::string_view name) {
  Store& s = store();
  {
    std::shared_lock lock(s.mu);
    const auto it = s.index.find(name);
    if (it != s.index.end()) return SymbolId(it->second);
  }
  std::unique_lock lock(s.mu);
  const auto it = s.index.find(name);  // raced inserts resolve here
  if (it != s.index.end()) return SymbolId(it->second);
  const auto id = static_cast<std::uint32_t>(s.names.size());
  s.names.emplace_back(name);
  s.index.emplace(s.names.back(), id);
  return SymbolId(id);
}

const std::string& SymbolTable::name(SymbolId id) {
  Store& s = store();
  std::shared_lock lock(s.mu);
  return s.names[id.value()];
}

std::size_t SymbolTable::size() {
  Store& s = store();
  std::shared_lock lock(s.mu);
  return s.names.size();
}

}  // namespace xchain
