#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace xchain::graph {

/// A vertex id; in swap digraphs, vertices are parties.
using Vertex = PartyId;

/// A directed arc (u, v): in swap digraphs, "u transfers an asset to v".
struct Arc {
  Vertex from;
  Vertex to;

  friend bool operator==(const Arc&, const Arc&) = default;
};

/// A path q = (u_0, ..., u_k): consecutive pairs (u_i, u_{i+1}) are arcs
/// and vertices are distinct. Hashkey and redemption-premium paths run
/// *from* the presenting party u_0 *to* the leader u_k following asset-flow
/// arcs (paper §7: "q is a path from v to L_i in G"); the hashkey itself
/// propagates against that direction, prepending vertices as it goes.
using Path = std::vector<Vertex>;

/// Concatenation v || q = (v, u_0, ..., u_k) (paper §7 notation).
Path concat(Vertex v, const Path& q);

/// A directed graph over vertices 0..n-1 with no parallel arcs or
/// self-loops. Swap digraphs (paper §7) are strongly connected, but the
/// class itself supports arbitrary digraphs so tests can probe the
/// algorithms on degenerate inputs.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t n) : out_(n), in_(n) {}

  /// Number of vertices.
  std::size_t size() const { return out_.size(); }

  /// Number of arcs.
  std::size_t arc_count() const;

  /// Adds arc (u, v). Ignores duplicates; rejects self-loops.
  void add_arc(Vertex u, Vertex v);

  /// True iff (u, v) is an arc.
  bool has_arc(Vertex u, Vertex v) const;

  /// Vertices w with (v, w) an arc, in insertion order.
  const std::vector<Vertex>& out_neighbors(Vertex v) const { return out_[v]; }

  /// Vertices u with (u, v) an arc, in insertion order.
  const std::vector<Vertex>& in_neighbors(Vertex v) const { return in_[v]; }

  /// All arcs in deterministic (from, insertion) order.
  std::vector<Arc> arcs() const;

  /// True iff `q` is a path: each (q[i], q[i+1]) is an arc and vertices are
  /// distinct.
  bool is_path(const Path& q) const;

  /// True iff v || q is a cycle in the paper's sense: q is a path, the
  /// connecting pair (v, q.front()) is an arc, and the walk's endpoints
  /// coincide (v == q.back()). Equation 1's base case tests this.
  bool closes_cycle(Vertex v, const Path& q) const;

  // -- Classic digraph algorithms used by the protocols --------------------

  /// Strongly connected components (Tarjan). Returns component index per
  /// vertex; components are numbered in reverse topological order.
  std::vector<int> scc() const;

  /// True iff the digraph is strongly connected (swap digraph requirement).
  bool strongly_connected() const;

  /// True iff the digraph restricted to `kept` (vertices NOT deleted) is
  /// acyclic — the feedback-vertex-set test.
  bool acyclic_when_removed(const std::vector<bool>& removed) const;

  /// True iff `candidates` is a feedback vertex set: deleting them leaves
  /// the digraph acyclic (the paper requires leaders to form an FVS).
  bool is_feedback_vertex_set(const std::vector<Vertex>& candidates) const;

  /// A minimum feedback vertex set, found by exhaustive search over subset
  /// sizes. Exponential in n; intended for protocol-sized graphs (n <~ 20).
  std::vector<Vertex> minimum_feedback_vertex_set() const;

  /// A (not necessarily minimum) feedback vertex set found greedily:
  /// repeatedly remove the vertex on the most cycles (by degree heuristic).
  /// Linear-ish; used when n is large.
  std::vector<Vertex> greedy_feedback_vertex_set() const;

  /// Diameter: max over ordered vertex pairs of shortest directed path
  /// length. Finite for strongly connected digraphs. Returns 0 for n <= 1.
  std::size_t diameter() const;

  /// Every simple directed path from `from` to `to` (consecutive pairs are
  /// arcs). Exponential in the worst case; protocol graphs are small.
  /// Returned in lexicographic order of vertex sequence.
  std::vector<Path> simple_paths(Vertex from, Vertex to) const;

  // -- Standard shapes used in tests and benchmarks ------------------------

  /// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
  static Digraph cycle(std::size_t n);

  /// Complete digraph: every ordered pair is an arc.
  static Digraph complete(std::size_t n);

  /// Two parties exchanging assets: arcs (0,1) and (1,0).
  static Digraph two_party();

  /// The paper's Figure 3a digraph: A=0, B=1, C=2, arcs A->B, B->A, B->C,
  /// C->A.
  static Digraph figure3a();

 private:
  std::vector<std::vector<Vertex>> out_;
  std::vector<std::vector<Vertex>> in_;
};

/// Renders a path as "(A,B,C)" using letters for small ids, for logs/tests.
std::string to_string(const Path& q);

}  // namespace xchain::graph
