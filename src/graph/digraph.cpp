#include "graph/digraph.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <stack>

namespace xchain::graph {

Path concat(Vertex v, const Path& q) {
  Path out;
  out.reserve(q.size() + 1);
  out.push_back(v);
  out.insert(out.end(), q.begin(), q.end());
  return out;
}

std::size_t Digraph::arc_count() const {
  std::size_t n = 0;
  for (const auto& adj : out_) n += adj.size();
  return n;
}

void Digraph::add_arc(Vertex u, Vertex v) {
  if (u == v) return;
  if (has_arc(u, v)) return;
  out_[u].push_back(v);
  in_[v].push_back(u);
}

bool Digraph::has_arc(Vertex u, Vertex v) const {
  if (u >= size() || v >= size()) return false;
  const auto& adj = out_[u];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

std::vector<Arc> Digraph::arcs() const {
  std::vector<Arc> all;
  all.reserve(arc_count());
  for (Vertex u = 0; u < size(); ++u) {
    for (Vertex v : out_[u]) all.push_back(Arc{u, v});
  }
  return all;
}

bool Digraph::is_path(const Path& q) const {
  if (q.empty()) return false;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i] >= size()) return false;
    for (std::size_t j = i + 1; j < q.size(); ++j) {
      if (q[i] == q[j]) return false;
    }
  }
  for (std::size_t i = 0; i + 1 < q.size(); ++i) {
    if (!has_arc(q[i], q[i + 1])) return false;
  }
  return true;
}

bool Digraph::closes_cycle(Vertex v, const Path& q) const {
  // v || q = (v, u_0, ..., u_k) is a cycle iff q is a path, v == u_k, and
  // the connecting pair (v, u_0) is an arc.
  return !q.empty() && q.back() == v && is_path(q) && has_arc(v, q.front());
}

std::vector<int> Digraph::scc() const {
  const std::size_t n = size();
  std::vector<int> comp(n, -1), low(n, 0), num(n, -1);
  std::vector<bool> on_stack(n, false);
  std::stack<Vertex> stk;
  int counter = 0, comp_count = 0;

  // Iterative Tarjan to avoid recursion-depth limits on large graphs.
  struct Frame {
    Vertex v;
    std::size_t next_child;
  };
  for (Vertex root = 0; root < n; ++root) {
    if (num[root] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    num[root] = low[root] = counter++;
    stk.push(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next_child < out_[f.v].size()) {
        const Vertex w = out_[f.v][f.next_child++];
        if (num[w] == -1) {
          num[w] = low[w] = counter++;
          stk.push(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], num[w]);
        }
      } else {
        if (low[f.v] == num[f.v]) {
          while (true) {
            const Vertex w = stk.top();
            stk.pop();
            on_stack[w] = false;
            comp[w] = comp_count;
            if (w == f.v) break;
          }
          ++comp_count;
        }
        const Vertex done = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[done]);
        }
      }
    }
  }
  return comp;
}

bool Digraph::strongly_connected() const {
  if (size() <= 1) return true;
  const auto comp = scc();
  return std::all_of(comp.begin(), comp.end(),
                     [&](int c) { return c == comp[0]; });
}

bool Digraph::acyclic_when_removed(const std::vector<bool>& removed) const {
  // Kahn's algorithm on the induced subgraph.
  const std::size_t n = size();
  std::vector<int> indeg(n, 0);
  std::size_t live = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (removed[v]) continue;
    ++live;
    for (Vertex u : in_[v]) {
      if (!removed[u]) ++indeg[v];
    }
  }
  std::deque<Vertex> ready;
  for (Vertex v = 0; v < n; ++v) {
    if (!removed[v] && indeg[v] == 0) ready.push_back(v);
  }
  std::size_t processed = 0;
  while (!ready.empty()) {
    const Vertex v = ready.front();
    ready.pop_front();
    ++processed;
    for (Vertex w : out_[v]) {
      if (!removed[w] && --indeg[w] == 0) ready.push_back(w);
    }
  }
  return processed == live;
}

bool Digraph::is_feedback_vertex_set(
    const std::vector<Vertex>& candidates) const {
  std::vector<bool> removed(size(), false);
  for (Vertex v : candidates) {
    if (v >= size()) return false;
    removed[v] = true;
  }
  return acyclic_when_removed(removed);
}

std::vector<Vertex> Digraph::minimum_feedback_vertex_set() const {
  const std::size_t n = size();
  std::vector<bool> removed(n, false);
  if (acyclic_when_removed(removed)) return {};

  // Try all subsets in increasing size order; n is protocol-scale (<~20).
  for (std::size_t k = 1; k <= n; ++k) {
    std::vector<Vertex> pick(k);
    std::function<std::vector<Vertex>(std::size_t, Vertex)> search =
        [&](std::size_t depth, Vertex start) -> std::vector<Vertex> {
      if (depth == k) {
        return is_feedback_vertex_set(pick) ? pick : std::vector<Vertex>{};
      }
      for (Vertex v = start; v < n; ++v) {
        pick[depth] = v;
        auto found = search(depth + 1, v + 1);
        if (!found.empty()) return found;
      }
      return {};
    };
    auto found = search(0, 0);
    if (!found.empty()) return found;
  }
  return {};  // unreachable: removing all vertices leaves an acyclic graph
}

std::vector<Vertex> Digraph::greedy_feedback_vertex_set() const {
  std::vector<bool> removed(size(), false);
  std::vector<Vertex> fvs;
  while (!acyclic_when_removed(removed)) {
    // Remove the live vertex maximizing min(in-degree, out-degree), a
    // standard heuristic for hitting many cycles at once.
    Vertex best = kNoParty;
    std::size_t best_score = 0;
    for (Vertex v = 0; v < size(); ++v) {
      if (removed[v]) continue;
      std::size_t din = 0, dout = 0;
      for (Vertex u : in_[v]) din += !removed[u];
      for (Vertex w : out_[v]) dout += !removed[w];
      const std::size_t score = std::min(din, dout) + 1;
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
    removed[best] = true;
    fvs.push_back(best);
  }
  std::sort(fvs.begin(), fvs.end());
  return fvs;
}

std::size_t Digraph::diameter() const {
  const std::size_t n = size();
  if (n <= 1) return 0;
  std::size_t diam = 0;
  std::vector<int> dist(n);
  for (Vertex s = 0; s < n; ++s) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[s] = 0;
    std::deque<Vertex> queue{s};
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop_front();
      for (Vertex w : out_[v]) {
        if (dist[w] == -1) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
    for (Vertex v = 0; v < n; ++v) {
      if (dist[v] > 0) diam = std::max(diam, static_cast<std::size_t>(dist[v]));
    }
  }
  return diam;
}

std::vector<Path> Digraph::simple_paths(Vertex from, Vertex to) const {
  std::vector<Path> result;
  Path current{from};
  std::vector<bool> visited(size(), false);
  visited[from] = true;

  std::function<void(Vertex)> dfs = [&](Vertex v) {
    if (v == to) {
      result.push_back(current);
      return;
    }
    // Paths follow arc direction: the vertex after v is an out-neighbor.
    std::vector<Vertex> nexts = out_[v];
    std::sort(nexts.begin(), nexts.end());
    for (Vertex w : nexts) {
      if (visited[w]) continue;
      visited[w] = true;
      current.push_back(w);
      dfs(w);
      current.pop_back();
      visited[w] = false;
    }
  };
  dfs(from);
  std::sort(result.begin(), result.end());
  return result;
}

Digraph Digraph::cycle(std::size_t n) {
  Digraph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_arc(v, v + 1);
  if (n > 1) g.add_arc(static_cast<Vertex>(n - 1), 0);
  return g;
}

Digraph Digraph::complete(std::size_t n) {
  Digraph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      if (u != v) g.add_arc(u, v);
    }
  }
  return g;
}

Digraph Digraph::two_party() {
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  return g;
}

Digraph Digraph::figure3a() {
  Digraph g(3);
  g.add_arc(0, 1);  // A -> B
  g.add_arc(1, 0);  // B -> A
  g.add_arc(1, 2);  // B -> C
  g.add_arc(2, 0);  // C -> A
  return g;
}

std::string to_string(const Path& q) {
  std::string out = "(";
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (i > 0) out += ",";
    if (q[i] < 26) {
      out += static_cast<char>('A' + q[i]);
    } else {
      out += std::to_string(q[i]);
    }
  }
  out += ")";
  return out;
}

}  // namespace xchain::graph
