#include "core/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "contracts/ladder.hpp"
#include "crypto/secret.hpp"
#include "sim/party.hpp"
#include "sim/scheduler.hpp"

namespace xchain::core {

namespace {

constexpr PartyId kAlice = 0;
constexpr PartyId kBob = 1;

/// Apricot-chain rung j belongs to Alice iff j is even (she owns the
/// principal, rung 0); banana-chain rung j belongs to Bob iff j is even.
PartyId apricot_depositor(int j) { return j % 2 == 0 ? kAlice : kBob; }
PartyId banana_depositor(int j) { return j % 2 == 0 ? kBob : kAlice; }

/// One step of the interleaved global schedule (Figure 2).
struct GlobalAction {
  enum class Kind { kDeposit, kRedeem } kind;
  ChainId chain;      // 0 = apricot, 1 = banana
  std::size_t rung;   // for deposits
  PartyId actor;
};

/// The full schedule: for j = r..1 deposit banana rung j then apricot rung
/// j; escrow principals (apricot then banana); Alice redeems banana
/// (revealing s); Bob redeems apricot.
std::vector<GlobalAction> make_schedule(int rounds) {
  std::vector<GlobalAction> seq;
  for (int j = rounds; j >= 1; --j) {
    seq.push_back({GlobalAction::Kind::kDeposit, 1,
                   static_cast<std::size_t>(j), banana_depositor(j)});
    seq.push_back({GlobalAction::Kind::kDeposit, 0,
                   static_cast<std::size_t>(j), apricot_depositor(j)});
  }
  seq.push_back({GlobalAction::Kind::kDeposit, 0, 0, kAlice});
  seq.push_back({GlobalAction::Kind::kDeposit, 1, 0, kBob});
  seq.push_back({GlobalAction::Kind::kRedeem, 1, 0, kAlice});
  seq.push_back({GlobalAction::Kind::kRedeem, 0, 0, kBob});
  return seq;
}

/// A party following the global schedule: it waits until every earlier
/// action is visible on-chain, then performs its own next action (if its
/// deviation plan still allows).
class LadderParty : public chain::SnapshotState<LadderParty, sim::Party> {
 public:
  LadderParty(PartyId id, std::string name, sim::DeviationPlan plan,
              const std::vector<GlobalAction>& schedule,
              contracts::LadderContract& apricot,
              contracts::LadderContract& banana, crypto::Secret secret)
      : chain::SnapshotState<LadderParty, sim::Party>(id, std::move(name),
                                                      plan),
        schedule_(schedule),
        apricot_(apricot),
        banana_(banana),
        secret_(std::move(secret)),
        submitted_(schedule.size(), 0) {}

  void step(chain::MultiChain& chains, Tick now) override {
    for (std::size_t g = 0; g < schedule_.size(); ++g) {
      const GlobalAction& action = schedule_[g];
      if (done(action)) continue;
      // The first pending action: ours to perform, or wait for its owner.
      if (action.actor == id() && !submitted_[g]) {
        submitted_[g] = 1;
        act(chains, now, own_ordinal(g),
            [this, &action](chain::MultiChain& ch) {
              submit_action(ch, action);
            });
      }
      return;
    }
  }

 private:
  contracts::LadderContract& ladder(ChainId c) {
    return c == 0 ? apricot_ : banana_;
  }

  bool done(const GlobalAction& a) {
    return a.kind == GlobalAction::Kind::kDeposit
               ? ladder(a.chain).rung_deposited(a.rung)
               : ladder(a.chain).principal_redeemed();
  }

  /// This party's action index among its own schedule entries.
  int own_ordinal(std::size_t upto) const {
    int n = 0;
    for (std::size_t g = 0; g < upto; ++g) {
      if (schedule_[g].actor == id()) ++n;
    }
    return n;
  }

  void submit_action(chain::MultiChain& chains, const GlobalAction& act) {
    contracts::LadderContract& target = ladder(act.chain);
    if (act.kind == GlobalAction::Kind::kDeposit) {
      submit(chains, act.chain,
             [&act] { return "deposit rung " + std::to_string(act.rung); },
             [&target, rung = act.rung](chain::TxContext& ctx) {
               target.deposit(ctx, rung);
             });
    } else {
      // Alice redeems with her secret; Bob with the preimage Alice
      // revealed on the banana chain.
      crypto::Bytes preimage =
          id() == kAlice
              ? secret_.value()
              : banana_.revealed_preimage().value_or(crypto::Bytes{});
      submit(chains, act.chain, "redeem principal",
             [&target, p = std::move(preimage)](chain::TxContext& ctx) {
               target.redeem(ctx, p);
             });
    }
  }

  const std::vector<GlobalAction>& schedule_;
  contracts::LadderContract& apricot_;
  contracts::LadderContract& banana_;
  crypto::Secret secret_;
  std::vector<char> submitted_;

  auto state_tie() { return std::tie(submitted_); }
  friend chain::SnapshotState<LadderParty, sim::Party>;
};

Tick premium_lockup_of(const contracts::LadderContract& c) {
  Tick max_lockup = 0;
  for (std::size_t j = 1; j < c.params().rungs.size(); ++j) {
    const auto dep = c.rung_deposited_at(j);
    const auto res = c.rung_resolved_at(j);
    if (dep && res) max_lockup = std::max(max_lockup, *res - *dep);
  }
  return max_lockup;
}

Tick principal_lockup_of(const contracts::LadderContract& c) {
  using RS = contracts::LadderContract::RungState;
  if (c.rung_state(0) != RS::kRefunded) return 0;
  return *c.rung_resolved_at(0) - *c.rung_deposited_at(0);
}

}  // namespace

BootstrapSchedule bootstrap_amounts(const BootstrapConfig& cfg) {
  if (cfg.rounds < 1) {
    throw std::invalid_argument("bootstrap_amounts: rounds >= 1");
  }
  if (cfg.apricot_premiums.empty() && cfg.banana_premiums.empty()) {
    return bootstrap_schedule(cfg.alice_tokens, cfg.bob_tokens, cfg.factor,
                              cfg.rounds);
  }
  // Explicit premium rungs: the geometric ladder (and its factor > 1
  // requirement) does not apply — only the principals come from the config.
  const auto rounds = static_cast<std::size_t>(cfg.rounds);
  if (cfg.apricot_premiums.size() != rounds ||
      cfg.banana_premiums.size() != rounds) {
    throw std::invalid_argument(
        "bootstrap premium overrides must list one amount per round on both "
        "chains");
  }
  BootstrapSchedule amounts;
  amounts.rounds = cfg.rounds;
  amounts.factor = cfg.factor;
  amounts.apricot.push_back(cfg.alice_tokens);
  amounts.banana.push_back(cfg.bob_tokens);
  amounts.apricot.insert(amounts.apricot.end(), cfg.apricot_premiums.begin(),
                         cfg.apricot_premiums.end());
  amounts.banana.insert(amounts.banana.end(), cfg.banana_premiums.begin(),
                        cfg.banana_premiums.end());
  return amounts;
}

struct BootstrapWorld::Impl {
  BootstrapConfig cfg;
  BootstrapSchedule amounts;
  chain::MultiChain chains;
  contracts::LadderContract* apricot_ladder = nullptr;
  contracts::LadderContract* banana_ladder = nullptr;
  crypto::Secret secret;
  std::vector<GlobalAction> schedule;
  std::unique_ptr<PayoffTracker> tracker;
  std::unique_ptr<LadderParty> tree_alice;
  std::unique_ptr<LadderParty> tree_bob;
  sim::TreeFrame frame;
};

BootstrapWorld::BootstrapWorld(const BootstrapConfig& cfg,
                               chain::TraceMode trace)
    : impl_(std::make_unique<Impl>()) {
  if (cfg.rounds < 1) {
    throw std::invalid_argument("run_bootstrap_swap: rounds >= 1");
  }
  Impl& w = *impl_;
  w.cfg = cfg;
  const Tick d = cfg.delta;
  const int r = cfg.rounds;
  w.amounts = bootstrap_amounts(cfg);
  const BootstrapSchedule& amounts = w.amounts;

  chain::MultiChain& chains = w.chains;
  chains.set_trace(trace);
  chain::Blockchain& apricot = chains.add_chain("apricot");
  chain::Blockchain& banana = chains.add_chain("banana");

  // Ladder deadlines follow the interleaved schedule: global step k (from
  // 1) has deadline k*Delta. Banana rung j is step 2(r-j)+1, apricot rung j
  // is step 2(r-j)+2; principals are steps 2r+1 (apricot) and 2r+2
  // (banana); redemptions at (2r+3) and (2r+4).
  auto apricot_deadline = [&](int j) {
    return j == 0 ? (2 * r + 1) * d : (2 * (r - j) + 2) * d;
  };
  auto banana_deadline = [&](int j) {
    return j == 0 ? (2 * r + 2) * d : (2 * (r - j) + 1) * d;
  };

  crypto::Rng rng("bootstrap-swap");
  w.secret = crypto::Secret::random(rng);
  const crypto::Secret& secret = w.secret;

  contracts::LadderContract::Params ap;
  contracts::LadderContract::Params bp;
  for (int j = 0; j <= r; ++j) {
    contracts::LadderContract::RungSpec a{apricot_depositor(j),
                                          amounts.apricot[j],
                                          apricot_deadline(j), {}, false};
    contracts::LadderContract::RungSpec b{banana_depositor(j),
                                          amounts.banana[j],
                                          banana_deadline(j), {}, false};
    // RELEASE wiring (§6): banana guards release on the next deposit;
    // apricot guards likewise, except A^(2) — the follower's persistent
    // premium — which survives to guard Alice's principal escrow and is
    // forfeited to Bob if the principal defaults.
    if (j >= 2) {
      b.released_by = static_cast<std::size_t>(j - 1);
      if (j == 2) {
        a.released_by = 0;
        a.guards_principal = true;
      } else {
        a.released_by = static_cast<std::size_t>(j - 1);
      }
    }
    ap.rungs.push_back(a);
    bp.rungs.push_back(b);
  }
  ap.counterparty = kBob;
  ap.principal_symbol = "apricot";
  ap.hashlock = secret.hashlock();
  ap.redemption_deadline = (2 * r + 4) * d;
  bp.counterparty = kAlice;
  bp.principal_symbol = "banana";
  bp.hashlock = secret.hashlock();
  bp.redemption_deadline = (2 * r + 3) * d;

  w.apricot_ladder = &apricot.deploy<contracts::LadderContract>(ap);
  w.banana_ladder = &banana.deploy<contracts::LadderContract>(bp);

  // Endowments: principals plus exactly the premium coins each party needs.
  apricot.ledger_for_setup().mint(chain::Address::party(kAlice), "apricot",
                                  cfg.alice_tokens);
  banana.ledger_for_setup().mint(chain::Address::party(kBob), "banana",
                                 cfg.bob_tokens);
  for (int j = 1; j <= r; ++j) {
    apricot.ledger_for_setup().mint(
        chain::Address::party(apricot_depositor(j)), apricot.native(),
        amounts.apricot[j]);
    banana.ledger_for_setup().mint(
        chain::Address::party(banana_depositor(j)), banana.native(),
        amounts.banana[j]);
  }

  w.schedule = make_schedule(r);
  chains.checkpoint();
  w.tracker = std::make_unique<PayoffTracker>(chains, 2);
}

BootstrapWorld::~BootstrapWorld() = default;
BootstrapWorld::BootstrapWorld(BootstrapWorld&&) noexcept = default;
BootstrapWorld& BootstrapWorld::operator=(BootstrapWorld&&) noexcept =
    default;

void BootstrapWorld::set_environment(const chain::ChainEnvironment& env) {
  impl_->chains.set_environment(env);
}

BootstrapResult BootstrapWorld::run(sim::DeviationPlan alice,
                                    sim::DeviationPlan bob) {
  Impl& w = *impl_;
  const Tick d = w.cfg.delta;
  const int r = w.cfg.rounds;
  w.chains.reset();

  LadderParty a(kAlice, "alice", alice, w.schedule, *w.apricot_ladder,
                *w.banana_ladder, w.secret);
  LadderParty b(kBob, "bob", bob, w.schedule, *w.apricot_ladder,
                *w.banana_ladder, crypto::Secret{});
  sim::Scheduler sched(w.chains);
  sched.add_party(a);
  sched.add_party(b);
#ifndef NDEBUG
  // The §6 ladder interleaves the two chains' deposits Delta apart, so each
  // single chain's consecutive deadlines sit 2*Delta apart; debug builds
  // re-check that spacing on every run.
  sched.validate_deadlines(d);
#endif
  sched.run_until((2 * r + 4) * d + 2);

  w.chains.finalize_all();
  return tree_collect();
}

sim::TreeFrame& BootstrapWorld::tree_frame() {
  Impl& w = *impl_;
  if (!w.tree_alice) {
    w.tree_alice = std::make_unique<LadderParty>(
        kAlice, "alice", sim::DeviationPlan::conforming(), w.schedule,
        *w.apricot_ladder, *w.banana_ladder, w.secret);
    w.tree_bob = std::make_unique<LadderParty>(
        kBob, "bob", sim::DeviationPlan::conforming(), w.schedule,
        *w.apricot_ladder, *w.banana_ladder, crypto::Secret{});
    w.frame.chains = &w.chains;
    w.frame.actors = {w.tree_alice.get(), w.tree_bob.get()};
    w.frame.horizon = (2 * w.cfg.rounds + 4) * w.cfg.delta + 2;
  }
  return w.frame;
}

void BootstrapWorld::tree_set_plans(
    const std::vector<sim::DeviationPlan>& plans) {
  impl_->tree_alice->set_plan(plans.at(0));
  impl_->tree_bob->set_plan(plans.at(1));
}

BootstrapResult BootstrapWorld::tree_collect() const {
  const Impl& w = *impl_;
  const contracts::LadderContract& apricot_ladder = *w.apricot_ladder;
  const contracts::LadderContract& banana_ladder = *w.banana_ladder;

  BootstrapResult out;
  out.swapped = apricot_ladder.principal_redeemed() &&
                banana_ladder.principal_redeemed();
  out.alice = w.tracker->delta(w.chains, kAlice);
  out.bob = w.tracker->delta(w.chains, kBob);
  out.initial_risk_apricot = w.amounts.initial_risk_apricot();
  out.initial_risk_banana = w.amounts.initial_risk_banana();
  out.max_premium_lockup = std::max(premium_lockup_of(apricot_ladder),
                                    premium_lockup_of(banana_ladder));
  out.alice_lockup = principal_lockup_of(apricot_ladder);
  out.bob_lockup = principal_lockup_of(banana_ladder);
  out.events = w.chains.all_events();
  return out;
}

BootstrapResult run_bootstrap_swap(const BootstrapConfig& cfg,
                                   sim::DeviationPlan alice,
                                   sim::DeviationPlan bob) {
  return BootstrapWorld(cfg).run(alice, bob);
}

}  // namespace xchain::core
