#pragma once

#include <memory>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "core/payoff.hpp"
#include "core/premiums.hpp"
#include "sim/deviation.hpp"
#include "sim/tree.hpp"

namespace xchain::core {

/// Configuration of a bootstrapped hedged swap (paper §6, Figure 2):
/// `rounds` rounds of premium deposits precede the principal swap, each
/// round's deposits protected by the previous round's smaller deposits.
struct BootstrapConfig {
  Amount alice_tokens = 1'000'000;  ///< A, on the apricot chain
  Amount bob_tokens = 1'000'000;    ///< B, on the banana chain
  double factor = 100.0;            ///< P (premium = value / P)
  int rounds = 2;                   ///< r >= 1
  Tick delta = 2;                   ///< synchrony bound in ticks

  /// Optional explicit premium-rung amounts, one per round (index 0 is
  /// rung 1), overriding the geometric `factor` ladder — e.g. rungs priced
  /// by the CRR model (§4). Both lists must be set together, `rounds` long.
  std::vector<Amount> apricot_premiums;
  std::vector<Amount> banana_premiums;
};

struct BootstrapResult {
  bool swapped = false;

  PayoffDelta alice;
  PayoffDelta bob;

  /// The unprotected first deposits — the construction's residual risk.
  Amount initial_risk_apricot = 0;
  Amount initial_risk_banana = 0;

  /// Longest time any *premium* rung stayed locked before being refunded
  /// or forfeited, in ticks. The paper claims this is independent of the
  /// number of bootstrapping rounds ("the duration of the premium lock-up
  /// risk is one atomic swap execution plus Delta").
  Tick max_premium_lockup = 0;

  /// Ticks each principal spent escrowed before refund (0 if redeemed).
  Tick alice_lockup = 0;
  Tick bob_lockup = 0;

  chain::EventLog events;
};

/// Per-party action count (for deviation sweeps): r premium deposits, one
/// principal escrow, one redemption.
inline int bootstrap_action_count(int rounds) { return rounds + 2; }

/// The ladder amounts a config produces: the geometric bootstrap_schedule
/// of §6 unless the config carries explicit premium overrides. Shared by
/// run_bootstrap_swap and the scenario-sweep adapter so both always agree
/// on the rung values.
BootstrapSchedule bootstrap_amounts(const BootstrapConfig& cfg);

/// Runs the r-round bootstrapped hedged swap. Each party's deviation plan
/// indexes its own actions in protocol order (Alice: her premium rungs in
/// global order, escrow A, redeem banana; Bob symmetric).
///
/// With rounds = 1 this protocol *is* the hedged two-party swap of §5.2
/// with p_b = A/P and p_a + p_b = (A+B)/P — a correspondence the tests
/// verify against run_hedged_two_party.
BootstrapResult run_bootstrap_swap(const BootstrapConfig& cfg,
                                   sim::DeviationPlan alice,
                                   sim::DeviationPlan bob);

/// Reusable world for the bootstrapped ladder swap: both chains, both
/// ladder contracts, and endowments built once; every run() rolls back to
/// the post-setup checkpoint and replays one schedule. run_bootstrap_swap
/// delegates to a fresh world; sweep workers keep one per adapter clone.
class BootstrapWorld {
 public:
  explicit BootstrapWorld(const BootstrapConfig& cfg,
                          chain::TraceMode trace = chain::TraceMode::kFull);
  ~BootstrapWorld();
  BootstrapWorld(BootstrapWorld&&) noexcept;
  BootstrapWorld& operator=(BootstrapWorld&&) noexcept;

  /// Resets the world and executes one schedule.
  BootstrapResult run(sim::DeviationPlan alice, sim::DeviationPlan bob);

  /// Installs a chain environment (fault plan + resilience policy); call
  /// once after construction. See TwoPartyWorld::set_environment.
  void set_environment(const chain::ChainEnvironment& env);

  /// Tree-executor access (sim/tree.hpp): persistent actors, built on the
  /// first call; plans index Alice, Bob in order.
  sim::TreeFrame& tree_frame();
  void tree_set_plans(const std::vector<sim::DeviationPlan>& plans);
  BootstrapResult tree_collect() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xchain::core
