#pragma once

#include <memory>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "core/binding.hpp"
#include "core/payoff.hpp"
#include "sim/deviation.hpp"
#include "sim/tree.hpp"

namespace xchain::core {

/// The three-party brokered sale of paper §8 (after Herlihy–Liskov–Shrira):
/// Alice brokers Bob's tickets to Carol, paying Bob `purchase_price` coins
/// out of Carol's `sale_price` escrow and pocketing the spread.
struct BrokerConfig {
  Amount ticket_count = 10;
  Amount sale_price = 101;      ///< Carol's escrow (coins)
  Amount purchase_price = 100;  ///< what Bob receives (coins)
  Amount premium_unit = 1;      ///< p
  Tick delta = 1;
};

struct BrokerResult {
  bool completed = false;  ///< all four arc buckets redeemed

  PayoffDelta alice;
  PayoffDelta bob;
  PayoffDelta carol;

  /// Ticks assets spent escrowed before being *refunded* (0 otherwise).
  Tick bob_lockup = 0;    ///< tickets
  Tick carol_lockup = 0;  ///< coins

  chain::EventLog events;
};

/// Deviation ordinals, phase-level:
///   Alice: 0 = trading premiums, 1 = redemption premiums,
///          2 = trades (A1/A2), 3 = hashkey release + relays (A3)
///   Bob:   0 = escrow premium, 1 = redemption premiums,
///          2 = escrow tickets (B1), 3 = hashkey release + relays (B2)
///   Carol: symmetric to Bob (C1 / C2).
inline constexpr int kBrokerActions = 4;

/// Runs the hedged broker protocol with per-party deviation plans.
BrokerResult run_broker_deal(const BrokerConfig& cfg,
                             sim::DeviationPlan alice, sim::DeviationPlan bob,
                             sim::DeviationPlan carol);

/// Reusable world for the brokered sale: both chains, both contracts,
/// premium tables, secrets, and signature caches built once; every run()
/// rolls back to the post-setup checkpoint and replays one schedule.
/// run_broker_deal delegates to a fresh world; sweep workers keep one per
/// adapter clone.
class BrokerWorld {
 public:
  explicit BrokerWorld(const BrokerConfig& cfg,
                       chain::TraceMode trace = chain::TraceMode::kFull);

  /// Bound form (core/binding.hpp): deploys the instance onto the shared
  /// MultiChain at `binding.party_base` / `binding.start`. Bound worlds
  /// are driven through tree_frame()'s actors — run() throws.
  BrokerWorld(const BrokerConfig& cfg, const WorldBinding& binding,
              chain::TraceMode trace = chain::TraceMode::kOff);

  ~BrokerWorld();
  BrokerWorld(BrokerWorld&&) noexcept;
  BrokerWorld& operator=(BrokerWorld&&) noexcept;

  /// Resets the world and executes one schedule.
  BrokerResult run(sim::DeviationPlan alice, sim::DeviationPlan bob,
                   sim::DeviationPlan carol);

  /// Installs a chain environment (fault plan + resilience policy); call
  /// once after construction. See TwoPartyWorld::set_environment.
  void set_environment(const chain::ChainEnvironment& env);

  /// Tree-executor access (sim/tree.hpp): persistent actors, built on the
  /// first call; plans index Alice, Bob, Carol in order.
  sim::TreeFrame& tree_frame();
  void tree_set_plans(const std::vector<sim::DeviationPlan>& plans);
  BrokerResult tree_collect() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xchain::core
