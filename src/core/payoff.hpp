#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"

namespace xchain::core {

/// A party's holdings across all chains at one instant: symbol -> amount.
using Holdings = std::map<chain::Symbol, Amount>;

/// Net change of a party's holdings over a protocol run.
struct PayoffDelta {
  /// Per-symbol deltas (tokens and native coins alike).
  Holdings by_symbol;

  /// Net premium/native-coin payoff summed across chains (the unit the
  /// paper's lemmas are stated in; all native coins valued at par, §4).
  Amount coin_delta = 0;

  /// Total valued payoff with every symbol at par.
  Amount value_delta = 0;

  std::string str() const;
};

/// Captures party balances across chains so deltas can be computed after a
/// run. Snapshots are interned-symbol flat vectors read straight off the
/// dense ledgers — no string traffic until a delta materializes its
/// by_symbol map (and then only for symbols that actually changed).
class PayoffTracker {
 public:
  /// Snapshots balances of parties [0, party_count) over all chains.
  PayoffTracker(const chain::MultiChain& chains, std::size_t party_count);

  /// Snapshots balances of parties [first, first + party_count) — the
  /// namespaced-instance form: a load instance's parties live at a
  /// non-zero account base on the shared chains.
  PayoffTracker(const chain::MultiChain& chains, PartyId first,
                std::size_t party_count);

  /// Delta of `party`'s holdings between the snapshot and now. `party` is
  /// the same (global) id space the snapshot used.
  /// Native-coin symbols are those ending in "-coin" (MultiChain naming).
  PayoffDelta delta(const chain::MultiChain& chains, PartyId party) const;

 private:
  /// One party's balances at the snapshot, summed across chains.
  using Snapshot = std::vector<std::pair<SymbolId, Amount>>;

  static void accumulate(Snapshot& into, SymbolId sym, Amount amount);
  Snapshot snapshot_of(const chain::MultiChain& chains, PartyId party) const;

  PartyId first_ = 0;
  std::size_t party_count_;
  std::vector<Snapshot> initial_;
};

}  // namespace xchain::core
