#pragma once

#include "common/types.hpp"

namespace xchain::core {

/// Cox–Ross–Rubinstein binomial option pricing [CRR '79], the model the
/// paper cites (§4) for estimating premiums.
struct CrrParams {
  double spot = 100.0;        ///< current asset value
  double strike = 100.0;      ///< exercise price
  double rate = 0.0;          ///< continuously compounded risk-free rate
  double volatility = 0.2;    ///< annualized sigma
  double expiry = 1.0;        ///< time to expiry in years
  int steps = 256;            ///< binomial tree depth
  bool is_call = true;        ///< call or put
  bool american = false;      ///< early exercise allowed
};

/// Prices the option by backward induction on the recombining binomial
/// tree with u = exp(sigma * sqrt(dt)), d = 1/u.
double crr_price(const CrrParams& p);

/// Premium estimate for a sore-loser escrow (paper §4): a counterparty who
/// may abandon the protocol holds, in effect, an American option on the
/// escrowed asset over the lock-up window ("this choice is called an
/// American call option", §1 fn. 1). We price the at-the-money American
/// put on the asset over the lock-up duration — the value of the right to
/// walk away if the asset depreciates — and round up to a whole coin.
///
/// `lockup_ticks` and `ticks_per_year` convert simulation time to year
/// fractions.
Amount sore_loser_premium(Amount asset_value, double volatility,
                          double rate, Tick lockup_ticks,
                          double ticks_per_year, int steps = 256);

}  // namespace xchain::core
