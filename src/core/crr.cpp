#include "core/crr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace xchain::core {

double crr_price(const CrrParams& p) {
  if (p.steps <= 0 || p.expiry <= 0.0 || p.volatility <= 0.0) {
    throw std::invalid_argument("crr_price: steps, expiry, volatility > 0");
  }
  const double dt = p.expiry / p.steps;
  const double u = std::exp(p.volatility * std::sqrt(dt));
  const double d = 1.0 / u;
  const double growth = std::exp(p.rate * dt);
  const double q = (growth - d) / (u - d);  // risk-neutral up probability
  if (q <= 0.0 || q >= 1.0) {
    throw std::invalid_argument("crr_price: arbitrage-free bounds violated");
  }
  const double discount = 1.0 / growth;

  auto payoff = [&](double s) {
    return p.is_call ? std::max(s - p.strike, 0.0)
                     : std::max(p.strike - s, 0.0);
  };

  // Terminal layer.
  std::vector<double> values(p.steps + 1);
  for (int i = 0; i <= p.steps; ++i) {
    const double s = p.spot * std::pow(u, p.steps - i) * std::pow(d, i);
    values[i] = payoff(s);
  }
  // Backward induction.
  for (int step = p.steps - 1; step >= 0; --step) {
    for (int i = 0; i <= step; ++i) {
      double v = discount * (q * values[i] + (1.0 - q) * values[i + 1]);
      if (p.american) {
        const double s = p.spot * std::pow(u, step - i) * std::pow(d, i);
        v = std::max(v, payoff(s));
      }
      values[i] = v;
    }
  }
  return values[0];
}

Amount sore_loser_premium(Amount asset_value, double volatility, double rate,
                          Tick lockup_ticks, double ticks_per_year,
                          int steps) {
  if (asset_value <= 0 || lockup_ticks <= 0 || ticks_per_year <= 0) return 0;
  CrrParams p;
  p.spot = static_cast<double>(asset_value);
  p.strike = p.spot;
  p.rate = rate;
  p.volatility = volatility;
  p.expiry = static_cast<double>(lockup_ticks) / ticks_per_year;
  p.steps = steps;
  p.is_call = false;
  p.american = true;
  return static_cast<Amount>(std::ceil(crr_price(p)));
}

}  // namespace xchain::core
