#include "core/bridge.hpp"

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "contracts/bridge.hpp"
#include "sim/party.hpp"
#include "sim/scheduler.hpp"

namespace xchain::core {

namespace {

constexpr PartyId kUser = 0;

// ---------------------------------------------------------------------------
// Actors. Ordinal layout depends on the configuration:
//   user    (transfer, hedged):   0 create claim, 1 premium, 2 commit
//   user    (transfer, baseline): 0 create claim, 1 commit
//   user    (acct-create, hedged):   0 premium, 1 commit
//   user    (acct-create, baseline): 0 commit
//   witness (hedged):   0 bond, 1 attest, 2 settle report
//   witness (baseline): 0 attest, 1 settle report
// ---------------------------------------------------------------------------

class BridgeUser : public chain::SnapshotState<BridgeUser, sim::Party> {
 public:
  BridgeUser(const BridgeConfig& cfg, sim::DeviationPlan plan,
             contracts::BridgeDoorContract& door,
             contracts::BridgeClaimContract& claim)
      : chain::SnapshotState<BridgeUser, sim::Party>(kUser, "user",
                                                     std::move(plan)),
        cfg_(cfg),
        door_(door),
        claim_(claim) {}

  void step(chain::MultiChain& chains, Tick now) override {
    int ord = 0;
    if (cfg_.variant == BridgeVariant::kTransfer) {
      // Create the claim id on the issuing chain (funding the witness
      // reward pool) at protocol start.
      if (!did_create_) {
        did_create_ = true;
        act(chains, now, ord, [this](chain::MultiChain& ch) {
          submit(ch, claim_.chain_id(), "create claim",
                 [this](chain::TxContext& ctx) { claim_.create(ctx); });
        });
      }
      ++ord;
    }
    if (cfg_.hedged()) {
      // Deposit the premium on the door at protocol start.
      if (!did_premium_) {
        did_premium_ = true;
        act(chains, now, ord, [this](chain::MultiChain& ch) {
          submit(ch, door_.chain_id(), "deposit premium",
                 [this](chain::TxContext& ctx) {
                   door_.deposit_premium(ctx);
                 });
        });
      }
      ++ord;
    }
    // Commit the principal once the witnesses are on the hook: a bond
    // quorum in hedged mode, the created claim otherwise. (A compliant
    // user truncates if the quorum never forms.)
    const bool ready =
        cfg_.hedged() ? door_.bonds_posted() >= cfg_.quorum
                      : (cfg_.variant != BridgeVariant::kTransfer ||
                         claim_.created());
    if (!did_commit_ && ready) {
      did_commit_ = true;
      act(chains, now, ord, [this](chain::MultiChain& ch) {
        submit(ch, door_.chain_id(), "commit principal",
               [this](chain::TxContext& ctx) { door_.commit(ctx); });
      });
    }
  }

 private:
  const BridgeConfig cfg_;
  contracts::BridgeDoorContract& door_;
  contracts::BridgeClaimContract& claim_;
  bool did_create_ = false;
  bool did_premium_ = false;
  bool did_commit_ = false;

  auto state_tie() { return std::tie(did_create_, did_premium_, did_commit_); }
  friend chain::SnapshotState<BridgeUser, sim::Party>;
};

class BridgeWitness : public chain::SnapshotState<BridgeWitness, sim::Party> {
 public:
  BridgeWitness(const BridgeConfig& cfg, PartyId id, sim::DeviationPlan plan,
                contracts::BridgeDoorContract& door,
                contracts::BridgeClaimContract& claim)
      : chain::SnapshotState<BridgeWitness, sim::Party>(
            id, "witness-" + std::to_string(id), std::move(plan)),
        cfg_(cfg),
        door_(door),
        claim_(claim) {}

  void step(chain::MultiChain& chains, Tick now) override {
    int ord = 0;
    if (cfg_.hedged()) {
      // Bond on the door once the user's premium (and, for transfers,
      // the claim id) is visible — the witness's own escrow at stake.
      const bool bond_ready = door_.premium_deposited() &&
                              (cfg_.variant != BridgeVariant::kTransfer ||
                               claim_.created());
      if (!did_bond_ && bond_ready) {
        did_bond_ = true;
        act(chains, now, ord, [this](chain::MultiChain& ch) {
          submit(ch, door_.chain_id(), "post bond",
                 [this](chain::TxContext& ctx) { door_.post_bond(ctx); });
        });
      }
      ++ord;
    }
    // Attest on the issuing chain once the source-chain commit is final.
    if (!did_attest_ && door_.committed()) {
      did_attest_ = true;
      act(chains, now, ord, [this](chain::MultiChain& ch) {
        submit(ch, claim_.chain_id(), "attest commit",
               [this](chain::TxContext& ctx) { claim_.attest(ctx); });
      });
    }
    ++ord;
    // Report the issuing-chain outcome back to the door once it is known.
    // The report's content is read off the claim contract at execution
    // time — honest by construction, deviations only retime or drop it.
    // A witness that has an attestation in flight waits for it to land
    // before reporting: reporting early would carry a mask that excludes
    // its own vote, and each witness reports exactly once.
    const bool own_attest_final = !did_attest_ || claim_.attested(account_id());
    if (!did_settle_ && door_.committed() && claim_.outcome_known() &&
        own_attest_final) {
      did_settle_ = true;
      act(chains, now, ord, [this](chain::MultiChain& ch) {
        submit(ch, door_.chain_id(), "report settle",
               [this](chain::TxContext& ctx) {
                 door_.report_settle(ctx, claim_.resolved(),
                                     claim_.attester_mask());
               });
      });
    }
  }

 private:
  const BridgeConfig cfg_;
  contracts::BridgeDoorContract& door_;
  contracts::BridgeClaimContract& claim_;
  bool did_bond_ = false;
  bool did_attest_ = false;
  bool did_settle_ = false;

  auto state_tie() { return std::tie(did_bond_, did_attest_, did_settle_); }
  friend chain::SnapshotState<BridgeWitness, sim::Party>;
};

}  // namespace

struct BridgeWorld::Impl {
  BridgeConfig cfg;
  /// Private worlds own their chains; bound worlds alias the shared
  /// MultiChain and leave own_chains empty.
  chain::MultiChain own_chains;
  chain::MultiChain* chains = &own_chains;
  bool bound = false;
  PartyId base = 0;  ///< first global party id (0 when private)
  Tick start = 0;    ///< deadline-ladder offset (0 when private)
  contracts::BridgeDoorContract* door = nullptr;
  contracts::BridgeClaimContract* claim = nullptr;
  std::unique_ptr<PayoffTracker> tracker;
  // Persistent actors for the schedule-tree executor (transfer variant;
  // nullptr until the first tree_frame() call).
  std::unique_ptr<BridgeUser> tree_user;
  std::vector<std::unique_ptr<BridgeWitness>> tree_witnesses;
  sim::TreeFrame frame;
};

BridgeWorld::BridgeWorld(const BridgeConfig& cfg, chain::TraceMode trace)
    : BridgeWorld(cfg, WorldBinding{}, trace) {}

BridgeWorld::BridgeWorld(const BridgeConfig& cfg, const WorldBinding& binding,
                         chain::TraceMode trace)
    : impl_(std::make_unique<Impl>()) {
  Impl& w = *impl_;
  w.cfg = cfg;
  w.bound = binding.bound();
  w.base = binding.party_base;
  w.start = binding.start;
  const Tick d = cfg.delta;
  const Tick t0 = w.start;
  const bool acct = cfg.variant == BridgeVariant::kAccountCreate;
  chain::MultiChain& chains = w.bound ? *binding.chains : w.own_chains;
  w.chains = &chains;
  if (!w.bound) chains.set_trace(trace);
  chain::Blockchain& locking = w.bound ? chains.get_or_add_chain("locking")
                                       : chains.add_chain("locking");
  chain::Blockchain& issuing = w.bound ? chains.get_or_add_chain("issuing")
                                       : chains.add_chain("issuing");

  const PartyId user = w.base + kUser;
  // The user's principal — the asset being bridged — lives on the locking
  // chain; its wrapped counterpart is pre-minted to the claim contract.
  locking.ledger_for_setup().mint(chain::Address::party(user), "bridged",
                                  cfg.transfer_amount);
  // Native-coin endowments: the user's premium (and, for account-create,
  // the reward pool) on the locking chain; one bond per witness; for a
  // transfer the reward pool is the user's issuing-chain stake.
  const Amount user_locking =
      (cfg.hedged() ? cfg.premium_unit : 0) + (acct ? cfg.reward_pool() : 0);
  if (user_locking > 0) {
    locking.ledger_for_setup().mint(chain::Address::party(user),
                                    locking.native(), user_locking);
  }
  if (cfg.hedged()) {
    for (PartyId v = 1; v <= static_cast<PartyId>(cfg.n_witnesses); ++v) {
      locking.ledger_for_setup().mint(chain::Address::party(w.base + v),
                                      locking.native(), cfg.bond_amount());
    }
  }
  if (!acct) {
    issuing.ledger_for_setup().mint(chain::Address::party(user),
                                    issuing.native(), cfg.reward_pool());
  }

  // Deadline ladder, spaced >= Delta per scheduled step: premium at D,
  // bonds at 2D, commit at 3D, attestations at 4D on the issuing chain,
  // and the settle window at 6D — wide enough for the failure path's
  // reports (claim timeout lands at 4D+1, is observed at 4D+2, and a
  // timely-delayed report still submits by 5D+1 <= 6D). Bound instances
  // shift the whole ladder to their arrival tick.
  impl_->door = &locking.deploy<contracts::BridgeDoorContract>(
      contracts::BridgeDoorContract::Params{
          user, /*party_base=*/w.base, cfg.n_witnesses, cfg.quorum,
          cfg.hedged(),
          /*rewards_at_door=*/acct, "bridged", cfg.transfer_amount,
          cfg.premium_unit, cfg.bond_amount(),
          /*reward_amount=*/acct ? cfg.witness_reward : 0,
          /*premium_deadline=*/t0 + d, /*bond_deadline=*/t0 + 2 * d,
          /*commit_deadline=*/t0 + 3 * d, /*settle_deadline=*/t0 + 6 * d});
  impl_->claim = &issuing.deploy<contracts::BridgeClaimContract>(
      contracts::BridgeClaimContract::Params{
          user, /*party_base=*/w.base, cfg.n_witnesses, cfg.quorum,
          /*user_creates=*/!acct, "wrapped", cfg.transfer_amount,
          /*reward_amount=*/acct ? 0 : cfg.witness_reward,
          /*create_deadline=*/t0 + d, /*attest_deadline=*/t0 + 4 * d});
  issuing.ledger_for_setup().mint(impl_->claim->address(), "wrapped",
                                  cfg.transfer_amount);

  if (!w.bound) chains.checkpoint();
  impl_->tracker =
      std::make_unique<PayoffTracker>(chains, w.base, cfg.party_count());
}

BridgeWorld::~BridgeWorld() = default;
BridgeWorld::BridgeWorld(BridgeWorld&&) noexcept = default;
BridgeWorld& BridgeWorld::operator=(BridgeWorld&&) noexcept = default;

void BridgeWorld::set_environment(const chain::ChainEnvironment& env) {
  impl_->chains->set_environment(env);
}

BridgeResult BridgeWorld::run(const std::vector<sim::DeviationPlan>& plans) {
  Impl& w = *impl_;
  if (w.bound) {
    throw std::logic_error(
        "BridgeWorld::run: bound worlds are driven by the load scheduler");
  }
  w.chains->reset();

  BridgeUser user(w.cfg, plans.at(0), *w.door, *w.claim);
  std::vector<std::unique_ptr<BridgeWitness>> witnesses;
  sim::Scheduler sched(*w.chains);
  sched.add_party(user);
  for (PartyId i = 1; i <= static_cast<PartyId>(w.cfg.n_witnesses); ++i) {
    witnesses.push_back(std::make_unique<BridgeWitness>(
        w.cfg, i, plans.at(static_cast<std::size_t>(i)), *w.door, *w.claim));
    sched.add_party(*witnesses.back());
  }
#ifndef NDEBUG
  // The ladder must leave Delta between consecutive scheduled steps or
  // the protocol's tolerance claims are vacuous; debug builds check it on
  // every run.
  sched.validate_deadlines(w.cfg.delta);
#endif
  sched.run_until(6 * w.cfg.delta + 2);

  w.chains->finalize_all();
  return tree_collect();
}

sim::TreeFrame& BridgeWorld::tree_frame() {
  Impl& w = *impl_;
  if (!w.tree_user) {
    w.tree_user = std::make_unique<BridgeUser>(
        w.cfg, sim::DeviationPlan::conforming(), *w.door, *w.claim);
    w.tree_user->set_account_base(w.base);
    w.frame.chains = w.chains;
    w.frame.actors = {w.tree_user.get()};
    for (PartyId i = 1; i <= static_cast<PartyId>(w.cfg.n_witnesses); ++i) {
      w.tree_witnesses.push_back(std::make_unique<BridgeWitness>(
          w.cfg, i, sim::DeviationPlan::conforming(), *w.door, *w.claim));
      w.tree_witnesses.back()->set_account_base(w.base);
      w.frame.actors.push_back(w.tree_witnesses.back().get());
    }
    w.frame.horizon = w.start + 6 * w.cfg.delta + 2;
  }
  return w.frame;
}

void BridgeWorld::tree_set_plans(
    const std::vector<sim::DeviationPlan>& plans) {
  Impl& w = *impl_;
  w.tree_user->set_plan(plans.at(0));
  for (PartyId i = 1; i <= static_cast<PartyId>(w.cfg.n_witnesses); ++i) {
    w.tree_witnesses[static_cast<std::size_t>(i - 1)]->set_plan(
        plans.at(static_cast<std::size_t>(i)));
  }
}

BridgeResult BridgeWorld::tree_collect() const {
  const Impl& w = *impl_;
  BridgeResult r;
  r.committed = w.door->committed();
  r.transfer_completed = w.claim->resolved();
  r.principal_refunded = w.door->principal_refunded();
  r.attesters = w.claim->attester_count();
  r.bonds_posted = w.door->bonds_posted();
  r.bonds_forfeited = w.door->bonds_forfeited();
  for (PartyId p = 0; p < static_cast<PartyId>(w.cfg.party_count()); ++p) {
    r.payoffs.push_back(w.tracker->delta(*w.chains, w.base + p));
  }
  r.events = w.chains->all_events();
  return r;
}

BridgeResult run_bridge(const BridgeConfig& cfg,
                        const std::vector<sim::DeviationPlan>& plans) {
  return BridgeWorld(cfg).run(plans);
}

}  // namespace xchain::core
