#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace xchain::core {

/// Arc-indexed premium table.
using ArcPremiums = std::map<std::pair<graph::Vertex, graph::Vertex>, Amount>;

/// Equation 1 (paper §7.1): the amount of redemption premium R_i(q, v) —
/// the premium party v receives when a premium whose path is `q` sits on
/// one of v's outgoing arcs.
///
///   R_i(q, v) = p                                 if v || q is a cycle
///   R_i(q, v) = p + sum over in-arcs (u, v) of R_i(v || q, u)  otherwise
///
/// If v appears strictly inside q (so v || q is neither a path nor a
/// cycle), v will not re-deposit and the premium is just p. Each asset is
/// assumed to carry the same base premium `p` (as in the paper).
Amount redemption_premium(const graph::Digraph& g, const graph::Path& q,
                          graph::Vertex v, Amount p);

/// R(L): a leader's total redemption premium — the sum of the premiums the
/// leader deposits on its incoming arcs with the initial path (L).
Amount leader_redemption_premium(const graph::Digraph& g,
                                 graph::Vertex leader, Amount p);

/// Every redemption premium R_i(q, u) that party v deposits for leader
/// `leader`'s hashkey, keyed by the incoming arc (u, v) it goes to. `q` is
/// the path v observed (empty for the leader itself, which starts the
/// backward flow with path (L)).
/// Used by the protocol engine; exposed for tests.
struct RedemptionDeposit {
  graph::Arc arc;       ///< the incoming arc (u, v) the premium goes to
  graph::Path path;     ///< the deposit's path (v || q)
  Amount amount = 0;
};
std::vector<RedemptionDeposit> redemption_deposits_for(
    const graph::Digraph& g, graph::Vertex v, const graph::Path& q_seen,
    Amount p);

/// Equation 2 (paper §7.1): escrow premiums for every arc, given the leader
/// set (a feedback vertex set):
///
///   E(u, v) = R(L)                      if v is leader L
///   E(u, v) = sum over (v, w) of E(v, w)  otherwise
///
/// Well-defined because leaders break every cycle.
ArcPremiums escrow_premiums(const graph::Digraph& g,
                            const std::vector<graph::Vertex>& leaders,
                            Amount p);

/// Total premium a leader must deposit up front (its redemption premiums on
/// all incoming arcs) — the quantity the paper says is linear in n for
/// unique-path digraphs and exponential for complete digraphs (§7 end).
Amount leader_total_deposit(const graph::Digraph& g, graph::Vertex leader,
                            Amount p);

// ---------------------------------------------------------------------------
// §8.2: broker / multi-round trading premiums
// ---------------------------------------------------------------------------

/// Premiums for an r-round brokered deal (paper §8.2):
///
///   escrow phase:   E(v, w)   = T_1(w)
///   round k < r:    T_k(v, w) = T_{k+1}(w)
///   round r:        T_r(v, w) = R_w(w)
///
/// where T_k(w) sums w's round-k outgoing premiums and R_w(w) is w's
/// leader redemption premium (every party leads in brokered deals).
///
/// `escrow_transfers` are the escrow-phase arcs; `trading_rounds[k-1]` the
/// round-k trades. Returns one ArcPremiums per phase: index 0 = escrow
/// premiums, index k = round-k trading premiums.
std::vector<ArcPremiums> broker_premiums(
    const graph::Digraph& g,
    const std::vector<graph::Arc>& escrow_transfers,
    const std::vector<std::vector<graph::Arc>>& trading_rounds, Amount p);

// ---------------------------------------------------------------------------
// §6: premium bootstrapping
// ---------------------------------------------------------------------------

/// The ladder of premiums for an r-round bootstrapped two-party swap of A
/// apricot tokens against B banana tokens with premium factor P (> 1).
///
/// On the apricot chain, rung j carries a_j = A / P^j; on the banana chain
/// b_j = (j*A + B) / P^j (rung 0 is the principal itself). Rung j is
/// deposited by Alice on the apricot chain iff j is even, and by Alice on
/// the banana chain iff j is odd (depositors alternate; Alice owns both
/// principals' premium obligations on the banana side because her premium
/// there is p_a + p_b, §5.2).
struct BootstrapSchedule {
  int rounds = 0;                  ///< r
  double factor = 0;               ///< P
  std::vector<Amount> apricot;     ///< a_0 = A, a_1, ..., a_r
  std::vector<Amount> banana;      ///< b_0 = B, b_1, ..., b_r

  /// The unprotected first deposits (the residual sore-loser exposure):
  /// a_r and b_r.
  Amount initial_risk_apricot() const { return apricot.back(); }
  Amount initial_risk_banana() const { return banana.back(); }
};

/// Computes the ladder amounts (rounded up so premiums never under-cover).
BootstrapSchedule bootstrap_schedule(Amount a, Amount b, double factor,
                                     int rounds);

/// Smallest r such that the initial (unprotected) premium on both chains is
/// at most `max_initial_risk` — the paper's log_P((A+B)/p) bound. Returns
/// the r that reproduces "1% premiums + $4 initial risk hedge a $1M swap
/// with 3 rounds".
int bootstrap_rounds_needed(Amount a, Amount b, double factor,
                            Amount max_initial_risk);

}  // namespace xchain::core
