#include "core/premiums.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace xchain::core {

namespace {

bool contains(const graph::Path& q, graph::Vertex v) {
  return std::find(q.begin(), q.end(), v) != q.end();
}

}  // namespace

Amount redemption_premium(const graph::Digraph& g, const graph::Path& q,
                          graph::Vertex v, Amount p) {
  // Base cases: v || q closes a cycle (v is the leader), or v already lies
  // on q (v will not re-deposit). Either way v's net exposure is covered by
  // a single p.
  if (contains(q, v)) return p;
  Amount total = p;
  const graph::Path vq = graph::concat(v, q);
  for (graph::Vertex u : g.in_neighbors(v)) {
    total += redemption_premium(g, vq, u, p);
  }
  return total;
}

Amount leader_redemption_premium(const graph::Digraph& g,
                                 graph::Vertex leader, Amount p) {
  Amount total = 0;
  const graph::Path start{leader};
  for (graph::Vertex u : g.in_neighbors(leader)) {
    total += redemption_premium(g, start, u, p);
  }
  return total;
}

std::vector<RedemptionDeposit> redemption_deposits_for(
    const graph::Digraph& g, graph::Vertex v, const graph::Path& q_seen,
    Amount p) {
  std::vector<RedemptionDeposit> deposits;
  const graph::Path vq =
      q_seen.empty() ? graph::Path{v} : graph::concat(v, q_seen);
  if (!g.is_path(vq) && !(q_seen.empty())) return deposits;
  for (graph::Vertex u : g.in_neighbors(v)) {
    deposits.push_back(
        RedemptionDeposit{graph::Arc{u, v}, vq,
                          redemption_premium(g, vq, u, p)});
  }
  return deposits;
}

Amount leader_total_deposit(const graph::Digraph& g, graph::Vertex leader,
                            Amount p) {
  return leader_redemption_premium(g, leader, p);
}

ArcPremiums escrow_premiums(const graph::Digraph& g,
                            const std::vector<graph::Vertex>& leaders,
                            Amount p) {
  if (!g.is_feedback_vertex_set(leaders)) {
    throw std::invalid_argument(
        "escrow_premiums: leaders must form a feedback vertex set");
  }
  std::vector<bool> is_leader(g.size(), false);
  for (graph::Vertex l : leaders) is_leader[l] = true;

  // R(L) per leader, memoized.
  std::vector<Amount> r_of(g.size(), -1);
  auto leader_r = [&](graph::Vertex l) {
    if (r_of[l] < 0) r_of[l] = leader_redemption_premium(g, l, p);
    return r_of[l];
  };

  // out_sum(v) = sum over (v, w) of E(v, w); acyclic over followers.
  std::vector<Amount> memo(g.size(), -1);
  std::function<Amount(graph::Vertex)> out_sum = [&](graph::Vertex v) {
    if (memo[v] >= 0) return memo[v];
    Amount total = 0;
    for (graph::Vertex w : g.out_neighbors(v)) {
      total += is_leader[w] ? leader_r(w) : out_sum(w);
    }
    return memo[v] = total;
  };

  ArcPremiums out;
  for (const graph::Arc& arc : g.arcs()) {
    out[{arc.from, arc.to}] =
        is_leader[arc.to] ? leader_r(arc.to) : out_sum(arc.to);
  }
  return out;
}

std::vector<ArcPremiums> broker_premiums(
    const graph::Digraph& g,
    const std::vector<graph::Arc>& escrow_transfers,
    const std::vector<std::vector<graph::Arc>>& trading_rounds, Amount p) {
  const std::size_t r = trading_rounds.size();
  std::vector<ArcPremiums> result(r + 1);

  // Backward from the last round: T_r(v, w) = R_w(w).
  for (std::size_t k = r; k >= 1; --k) {
    for (const graph::Arc& arc : trading_rounds[k - 1]) {
      Amount t;
      if (k == r) {
        t = leader_redemption_premium(g, arc.to, p);
      } else {
        // T_k(v, w) = T_{k+1}(w) = sum of w's round-(k+1) premiums.
        t = 0;
        for (const graph::Arc& next : trading_rounds[k]) {
          if (next.from == arc.to) t += result[k + 1].at({next.from,
                                                          next.to});
        }
      }
      result[k][{arc.from, arc.to}] = t;
    }
  }
  // Escrow phase: E(v, w) = T_1(w).
  for (const graph::Arc& arc : escrow_transfers) {
    Amount t = 0;
    if (r > 0) {
      for (const graph::Arc& first : trading_rounds[0]) {
        if (first.from == arc.to) t += result[1].at({first.from, first.to});
      }
    } else {
      t = leader_redemption_premium(g, arc.to, p);
    }
    result[0][{arc.from, arc.to}] = t;
  }
  return result;
}

BootstrapSchedule bootstrap_schedule(Amount a, Amount b, double factor,
                                     int rounds) {
  if (factor <= 1.0) {
    throw std::invalid_argument("bootstrap_schedule: factor must exceed 1");
  }
  if (rounds < 0) {
    throw std::invalid_argument("bootstrap_schedule: rounds must be >= 0");
  }
  BootstrapSchedule s;
  s.rounds = rounds;
  s.factor = factor;
  s.apricot.push_back(a);
  s.banana.push_back(b);
  double pj = 1.0;
  for (int j = 1; j <= rounds; ++j) {
    pj *= factor;
    s.apricot.push_back(static_cast<Amount>(
        std::ceil(static_cast<double>(a) / pj)));
    s.banana.push_back(static_cast<Amount>(
        std::ceil((static_cast<double>(j) * a + b) / pj)));
  }
  return s;
}

int bootstrap_rounds_needed(Amount a, Amount b, double factor,
                            Amount max_initial_risk) {
  for (int r = 0;; ++r) {
    const BootstrapSchedule s = bootstrap_schedule(a, b, factor, r);
    if (s.initial_risk_apricot() <= max_initial_risk &&
        s.initial_risk_banana() <= max_initial_risk) {
      return r;
    }
    if (r > 64) {
      throw std::invalid_argument(
          "bootstrap_rounds_needed: target risk unreachable");
    }
  }
}

}  // namespace xchain::core
