#include "core/broker.hpp"

#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "contracts/broker.hpp"
#include "core/premiums.hpp"
#include "crypto/hashkey.hpp"
#include "crypto/secret.hpp"
#include "sim/party.hpp"
#include "sim/scheduler.hpp"

namespace xchain::core {

namespace {

using contracts::BrokerChainContract;
using Which = BrokerChainContract::Which;

constexpr PartyId kAlice = 0;
constexpr PartyId kBob = 1;
constexpr PartyId kCarol = 2;

/// The broker digraph (Figure 4a): arcs A->B, A->C, B->A, C->A.
graph::Digraph broker_digraph() {
  graph::Digraph g(3);
  g.add_arc(kAlice, kBob);
  g.add_arc(kAlice, kCarol);
  g.add_arc(kBob, kAlice);
  g.add_arc(kCarol, kAlice);
  return g;
}

/// One arc as hosted by a contract, with its role.
struct HostedArc {
  BrokerChainContract* contract = nullptr;
  Which which = Which::kEscrowArc;
  graph::Arc arc{};
};

struct Setup {
  graph::Digraph g;
  BrokerChainContract* ticket = nullptr;
  BrokerChainContract* coin = nullptr;
  std::vector<crypto::Secret> secrets;  ///< per party (all lead)
  std::vector<HostedArc> arcs;          ///< all four arcs
  crypto::SigningCache* sign_cache = nullptr;
  Tick hashkey_base = 0;

  std::vector<HostedArc> incoming(PartyId v) const {
    std::vector<HostedArc> out;
    for (const HostedArc& a : arcs) {
      if (a.arc.to == v) out.push_back(a);
    }
    return out;
  }
  std::vector<HostedArc> outgoing(PartyId v) const {
    std::vector<HostedArc> out;
    for (const HostedArc& a : arcs) {
      if (a.arc.from == v) out.push_back(a);
    }
    return out;
  }
};

/// Shared relay behaviour plus per-role protocol actions.
class BrokerParty : public sim::Party {
 public:
  BrokerParty(PartyId id, std::string name, const Setup& s,
              sim::DeviationPlan plan)
      : sim::Party(id, std::move(name), plan), s_(s), relayed_(3, 0) {}

  void step(chain::MultiChain& chains, Tick now) override {
    simple_premiums(chains, now);
    redemption_premiums(chains, now);
    principal_moves(chains, now);
    release_own_key(chains, now);
    relay_keys(chains, now);
  }

 protected:
  virtual void simple_premiums(chain::MultiChain& chains, Tick now) = 0;
  virtual void principal_moves(chain::MultiChain& chains, Tick now) = 0;
  virtual bool ready_to_release(Tick now) const = 0;

  bool all_simple_premiums_deposited() const {
    return s_.ticket->escrow_premium_deposited() &&
           s_.ticket->trading_premium_deposited() &&
           s_.coin->escrow_premium_deposited() &&
           s_.coin->trading_premium_deposited();
  }

  /// Redemption premiums follow the §7.1 backward relay flow, exactly as
  /// in the multi-party engine: every party (all three lead) starts its
  /// own premium on its incoming arcs once the simple premiums are in, and
  /// relays the first sighting of another leader's premium from an
  /// outgoing arc onto its incoming arcs with the path extended by itself.
  /// (An earlier version deposited all premiums in one burst over
  /// precomputed shortest paths; the relay discipline is what guarantees a
  /// party is never exposed for a premium its downstream never matched —
  /// the late-delay/selective-drop sweeps falsified the burst shortcut.)
  void redemption_premiums(chain::MultiChain& chains, Tick now) {
    if (!all_simple_premiums_deposited()) return;
    if (!did_own_premium_) {
      did_own_premium_ = true;
      act(chains, now, 1, [this](chain::MultiChain& ch) {
        deposit_premium_on_incoming(ch, id(), graph::Path{id()});
      });
    }
    for (PartyId leader = 0; leader < 3; ++leader) {
      if (leader == id() || premium_relayed_[leader]) continue;
      for (const HostedArc& a : s_.outgoing(id())) {
        if (!a.contract->redemption_premium_deposited(a.which, leader)) {
          continue;
        }
        premium_relayed_[leader] = 1;
        const graph::Path vq = graph::concat(
            id(), a.contract->redemption_premium_path(a.which, leader));
        if (s_.g.is_path(vq)) {
          act(chains, now, 1, [this, leader, vq](chain::MultiChain& ch) {
            deposit_premium_on_incoming(ch, leader, vq);
          });
        }
        break;
      }
    }
  }

  void deposit_premium_on_incoming(chain::MultiChain& chains, PartyId leader,
                                   const graph::Path& q) {
    for (const HostedArc& a : s_.incoming(id())) {
      const crypto::Signature& sig =
          s_.sign_cache->premium_path_sig(keys(), id(), leader, q);
      submit(chains, a.contract->chain_id(), "redemption premium",
             [c = a.contract, w = a.which, leader, q,
              sig](chain::TxContext& ctx) {
               c->deposit_redemption_premium(ctx, w, leader, q, sig);
             });
    }
  }

  void release_own_key(chain::MultiChain& chains, Tick now) {
    if (released_ || now < s_.hashkey_base || !ready_to_release(now)) return;
    released_ = true;
    act(chains, now, 3, [this](chain::MultiChain& ch) {
      const crypto::Hashkey& key = s_.sign_cache->leader_hashkey(
          id(), s_.secrets[id()].value(), id(), keys());
      present_on_incoming(ch, id(), key);
    });
  }

  void relay_keys(chain::MultiChain& chains, Tick now) {
    for (PartyId leader = 0; leader < 3; ++leader) {
      if (relayed_[leader]) continue;
      for (const HostedArc& a : s_.outgoing(id())) {
        if (!a.contract->hashlock_open(a.which, leader)) continue;
        const crypto::Hashkey& seen =
            *a.contract->presented_hashkey(a.which, leader);
        if (std::find(seen.path.begin(), seen.path.end(), id()) !=
            seen.path.end()) {
          continue;
        }
        relayed_[leader] = 1;
        // The extended key lives in the world's SigningCache, so the
        // (possibly delayed) submission captures a stable reference.
        const crypto::Hashkey& ext =
            s_.sign_cache->extended_hashkey(leader, seen, id(), keys());
        act(chains, now, 3, [this, leader, &ext](chain::MultiChain& ch) {
          present_on_incoming(ch, leader, ext);
        });
        break;
      }
    }
  }

  /// `key` lives in the world's SigningCache (stable across the run), so
  /// the closures capture it by reference.
  void present_on_incoming(chain::MultiChain& chains, PartyId leader,
                           const crypto::Hashkey& key) {
    for (const HostedArc& a : s_.incoming(id())) {
      submit(chains, a.contract->chain_id(), "present hashkey",
             [c = a.contract, w = a.which, leader,
              &key](chain::TxContext& ctx) {
               c->present_hashkey(ctx, w, leader, key);
             });
    }
  }

  const Setup& s_;
  bool did_own_premium_ = false;
  bool released_ = false;
  std::vector<char> premium_relayed_ = std::vector<char>(3, 0);  ///< per leader
  std::vector<char> relayed_;  ///< per leader (hashkeys)
};

/// Alice: trading premiums, the two trades, releases k_A after both.
/// The snapshot mixin sits on the most-derived class so state_tie() can
/// cover both the shared BrokerParty flags (protected) and its own.
class AliceBroker : public chain::SnapshotState<AliceBroker, BrokerParty> {
 public:
  using chain::SnapshotState<AliceBroker, BrokerParty>::SnapshotState;

 private:
  void simple_premiums(chain::MultiChain& chains, Tick now) override {
    if (did_trading_premiums_) return;
    if (!s_.ticket->escrow_premium_deposited() ||
        !s_.coin->escrow_premium_deposited()) {
      return;
    }
    did_trading_premiums_ = true;
    act(chains, now, 0, [this](chain::MultiChain& ch) {
      for (BrokerChainContract* c : {s_.ticket, s_.coin}) {
        submit(ch, c->chain_id(), "trading premium",
               [c](chain::TxContext& ctx) { c->deposit_trading_premium(ctx); });
      }
    });
  }

  // A1 depends on B1; A2 depends on C1 (Figure 4b) — each trade also needs
  // its own arc's activation so the trading premium protection is live.
  void principal_moves(chain::MultiChain& chains, Tick now) override {
    if (!traded_tickets_ && s_.ticket->escrowed() &&
        s_.ticket->premium_activated(Which::kTradingArc)) {
      traded_tickets_ = true;
      act(chains, now, 2, [this](chain::MultiChain& ch) {
        submit(ch, s_.ticket->chain_id(), "trade tickets (A1)",
               [c = s_.ticket](chain::TxContext& ctx) { c->trade(ctx); });
      });
    }
    if (!traded_coins_ && s_.coin->escrowed() &&
        s_.coin->premium_activated(Which::kTradingArc)) {
      traded_coins_ = true;
      act(chains, now, 2, [this](chain::MultiChain& ch) {
        submit(ch, s_.coin->chain_id(), "trade coins (A2)",
               [c = s_.coin](chain::TxContext& ctx) { c->trade(ctx); });
      });
    }
  }

  bool ready_to_release(Tick now) const override {
    // Normal: both trades done. Recovery (§7 Lemma 4 analogue): past the
    // trading deadline nothing can change — Alice escrows no assets of her
    // own, so releasing k_A is free and recovers her premium deposits.
    return (s_.ticket->traded() && s_.coin->traded()) ||
           now > s_.ticket->params().trading_deadline;
  }

  bool did_trading_premiums_ = false;
  bool traded_tickets_ = false;
  bool traded_coins_ = false;

  auto state_tie() {
    return std::tie(did_own_premium_, released_, premium_relayed_, relayed_,
                    did_trading_premiums_, traded_tickets_, traded_coins_);
  }
  friend chain::SnapshotState<AliceBroker, BrokerParty>;
};

/// Bob and Carol: escrow premium at start, escrow the principal once their
/// arc is activated, release their key once the trade destined for them
/// has happened.
class SellerBroker : public chain::SnapshotState<SellerBroker, BrokerParty> {
 public:
  SellerBroker(PartyId id, std::string name, const Setup& s,
               sim::DeviationPlan plan, BrokerChainContract* own_chain,
               BrokerChainContract* paid_on)
      : chain::SnapshotState<SellerBroker, BrokerParty>(id, std::move(name), s,
                                                        plan),
        own_(own_chain),
        paid_on_(paid_on) {}

 private:
  void simple_premiums(chain::MultiChain& chains, Tick now) override {
    if (did_escrow_premium_) return;
    did_escrow_premium_ = true;
    act(chains, now, 0, [this](chain::MultiChain& ch) {
      submit(ch, own_->chain_id(), "escrow premium",
             [c = own_](chain::TxContext& ctx) {
               c->deposit_escrow_premium(ctx);
             });
    });
  }

  void principal_moves(chain::MultiChain& chains, Tick now) override {
    if (did_escrow_ || !own_->premium_activated(Which::kEscrowArc)) return;
    did_escrow_ = true;
    act(chains, now, 2, [this](chain::MultiChain& ch) {
      submit(ch, own_->chain_id(), "escrow principal",
             [c = own_](chain::TxContext& ctx) { c->escrow(ctx); });
    });
  }

  // B2 / C2: release once the asset owed to this party sits in the trading
  // bucket (withholding the key is the §8 safety valve). Recovery: if this
  // party never escrowed and the escrow deadline has passed, its asset is
  // not at stake and releasing recovers its redemption premium deposits.
  bool ready_to_release(Tick now) const override {
    return paid_on_->traded() ||
           (now > own_->params().escrow_deadline && !own_->escrowed());
  }

  BrokerChainContract* own_;      ///< chain where this party escrows
  BrokerChainContract* paid_on_;  ///< chain whose trading arc pays them
  bool did_escrow_premium_ = false;
  bool did_escrow_ = false;

  auto state_tie() {
    return std::tie(did_own_premium_, released_, premium_relayed_, relayed_,
                    did_escrow_premium_, did_escrow_);
  }
  friend chain::SnapshotState<SellerBroker, BrokerParty>;
};

Tick lockup_of(const BrokerChainContract& c) {
  if (!c.refunded() || !c.escrowed_at()) return 0;
  // Refund happens in the final sweep; approximate lock-up as escrow ->
  // final deadline sweep.
  return c.path_deadline(c.params().g.size()) + 1 - *c.escrowed_at();
}

}  // namespace

struct BrokerWorld::Impl {
  BrokerConfig cfg;
  Setup s;
  /// Private worlds own their chains; bound worlds alias the shared
  /// MultiChain and leave own_chains empty.
  chain::MultiChain own_chains;
  chain::MultiChain* chains = &own_chains;
  bool bound = false;
  PartyId base = 0;  ///< first global party id (0 when private)
  crypto::SigningCache sign_cache;
  std::unique_ptr<PayoffTracker> tracker;
  Tick horizon = 0;
  std::unique_ptr<AliceBroker> tree_alice;
  std::unique_ptr<SellerBroker> tree_bob;
  std::unique_ptr<SellerBroker> tree_carol;
  sim::TreeFrame frame;
};

BrokerWorld::BrokerWorld(const BrokerConfig& cfg, chain::TraceMode trace)
    : BrokerWorld(cfg, WorldBinding{}, trace) {}

BrokerWorld::BrokerWorld(const BrokerConfig& cfg, const WorldBinding& binding,
                         chain::TraceMode trace)
    : impl_(std::make_unique<Impl>()) {
  Impl& w = *impl_;
  w.cfg = cfg;
  w.bound = binding.bound();
  w.base = binding.party_base;
  const Tick d = cfg.delta;
  const Tick t0 = binding.start;
  Setup& s = w.s;
  s.g = broker_digraph();
  s.sign_cache = &w.sign_cache;

  chain::MultiChain& chains = w.bound ? *binding.chains : w.own_chains;
  w.chains = &chains;
  if (!w.bound) chains.set_trace(trace);
  chain::Blockchain& ticket_chain =
      w.bound ? chains.get_or_add_chain("ticketchain")
              : chains.add_chain("ticketchain");
  chain::Blockchain& coin_chain = w.bound
                                      ? chains.get_or_add_chain("coinchain")
                                      : chains.add_chain("coinchain");

  crypto::Rng rng(w.bound ? "broker-deal:" + binding.tag
                          : std::string("broker-deal"));
  std::vector<crypto::PublicKey> pub_keys;
  const char* names[3] = {"alice", "bob", "carol"};
  for (int i = 0; i < 3; ++i) {
    s.secrets.push_back(crypto::Secret::random(rng));
    pub_keys.push_back(crypto::keygen_cached(names[i]).pub);
  }
  std::vector<BrokerChainContract::Hashlock> hashlocks;
  for (int i = 0; i < 3; ++i) {
    hashlocks.push_back(
        {static_cast<PartyId>(i), s.secrets[i].hashlock()});
  }

  // §8.2 premium amounts from the r = 1 broker formula.
  const auto phases = broker_premiums(
      s.g, {{kBob, kAlice}, {kCarol, kAlice}},
      {{{kAlice, kCarol}, {kAlice, kBob}}}, cfg.premium_unit);
  const Amount e_ba = phases[0].at({kBob, kAlice});
  const Amount e_ca = phases[0].at({kCarol, kAlice});
  const Amount t_ac = phases[1].at({kAlice, kCarol});
  const Amount t_ab = phases[1].at({kAlice, kBob});

  // Schedule (inclusive deadlines, Δ per observation hop): escrow premiums
  // land by Δ, trading premiums by 2Δ; the redemption premiums then flow
  // backward from each leader with the §7.1 per-path budget — a deposit
  // with |q| hops by 2Δ + |q|·Δ, the longest broker path being |q| = 3.
  // Principals escrow once their arc's activation is visible (by 5Δ),
  // Alice trades once escrow + trading activation are visible (by 6Δ), and
  // the hashkey phase starts after the trading deadline.
  s.hashkey_base = t0 + 6 * d;
  auto common = [&](BrokerChainContract::Params& p) {
    p.g = s.g;
    p.party_base = w.base;
    p.premium_unit = cfg.premium_unit;
    p.hashlocks = hashlocks;
    p.party_keys = pub_keys;
    p.delta = d;
    p.escrow_premium_deadline = t0 + d;
    p.trading_premium_deadline = t0 + 2 * d;
    p.premium_base = t0 + 2 * d;
    p.redemption_premium_deadline = t0 + 5 * d;
    p.escrow_deadline = t0 + 5 * d;
    p.trading_deadline = t0 + 6 * d;
    p.hashkey_base = s.hashkey_base;
  };

  BrokerChainContract::Params tp;
  tp.escrow_arc = {kBob, kAlice};
  tp.trading_arc = {kAlice, kCarol};
  tp.symbol = "ticket";
  tp.escrow_amount = cfg.ticket_count;
  tp.trading_amount = cfg.ticket_count;
  tp.escrow_premium = e_ba;
  tp.trading_premium = t_ac;
  common(tp);
  s.ticket = &ticket_chain.deploy<BrokerChainContract>(tp);

  BrokerChainContract::Params cp;
  cp.escrow_arc = {kCarol, kAlice};
  cp.trading_arc = {kAlice, kBob};
  cp.symbol = "coin";
  cp.escrow_amount = cfg.sale_price;
  cp.trading_amount = cfg.purchase_price;
  cp.escrow_premium = e_ca;
  cp.trading_premium = t_ab;
  common(cp);
  s.coin = &coin_chain.deploy<BrokerChainContract>(cp);

  s.arcs = {
      {s.ticket, Which::kEscrowArc, {kBob, kAlice}},
      {s.ticket, Which::kTradingArc, {kAlice, kCarol}},
      {s.coin, Which::kEscrowArc, {kCarol, kAlice}},
      {s.coin, Which::kTradingArc, {kAlice, kBob}},
  };

  // Endowments: assets plus ample premium coin on both chains.
  constexpr Amount kCoinBudget = 1'000'000;
  ticket_chain.ledger_for_setup().mint(chain::Address::party(w.base + kBob),
                                       "ticket", cfg.ticket_count);
  coin_chain.ledger_for_setup().mint(chain::Address::party(w.base + kCarol),
                                     "coin", cfg.sale_price);
  for (PartyId v = 0; v < 3; ++v) {
    ticket_chain.ledger_for_setup().mint(chain::Address::party(w.base + v),
                                         ticket_chain.native(), kCoinBudget);
    coin_chain.ledger_for_setup().mint(chain::Address::party(w.base + v),
                                       coin_chain.native(), kCoinBudget);
  }

  w.horizon = s.hashkey_base + (s.g.diameter() + 3 + 1) * d + 2;
  if (!w.bound) chains.checkpoint();
  w.tracker = std::make_unique<PayoffTracker>(chains, w.base, 3);
}

BrokerWorld::~BrokerWorld() = default;
BrokerWorld::BrokerWorld(BrokerWorld&&) noexcept = default;
BrokerWorld& BrokerWorld::operator=(BrokerWorld&&) noexcept = default;

void BrokerWorld::set_environment(const chain::ChainEnvironment& env) {
  impl_->chains->set_environment(env);
}

BrokerResult BrokerWorld::run(sim::DeviationPlan alice, sim::DeviationPlan bob,
                              sim::DeviationPlan carol) {
  Impl& w = *impl_;
  Setup& s = w.s;
  if (w.bound) {
    throw std::logic_error(
        "BrokerWorld::run: bound worlds are driven by the load scheduler");
  }
  w.chains->reset();

  AliceBroker a(kAlice, "alice", s, alice);
  SellerBroker b(kBob, "bob", s, bob, s.ticket, s.coin);
  SellerBroker c(kCarol, "carol", s, carol, s.coin, s.ticket);
  sim::Scheduler sched(*w.chains);
  sched.add_party(a);
  sched.add_party(b);
  sched.add_party(c);
  sched.run_until(w.horizon);

  w.chains->finalize_all();
  return tree_collect();
}

sim::TreeFrame& BrokerWorld::tree_frame() {
  Impl& w = *impl_;
  Setup& s = w.s;
  if (!w.tree_alice) {
    w.tree_alice = std::make_unique<AliceBroker>(
        kAlice, "alice", s, sim::DeviationPlan::conforming());
    w.tree_bob = std::make_unique<SellerBroker>(
        kBob, "bob", s, sim::DeviationPlan::conforming(), s.ticket, s.coin);
    w.tree_carol = std::make_unique<SellerBroker>(
        kCarol, "carol", s, sim::DeviationPlan::conforming(), s.coin,
        s.ticket);
    w.tree_alice->set_account_base(w.base);
    w.tree_bob->set_account_base(w.base);
    w.tree_carol->set_account_base(w.base);
    w.frame.chains = w.chains;
    w.frame.actors = {w.tree_alice.get(), w.tree_bob.get(),
                      w.tree_carol.get()};
    w.frame.horizon = w.horizon;
  }
  return w.frame;
}

void BrokerWorld::tree_set_plans(
    const std::vector<sim::DeviationPlan>& plans) {
  impl_->tree_alice->set_plan(plans.at(0));
  impl_->tree_bob->set_plan(plans.at(1));
  impl_->tree_carol->set_plan(plans.at(2));
}

BrokerResult BrokerWorld::tree_collect() const {
  const Impl& w = *impl_;
  const Setup& s = w.s;

  BrokerResult out;
  out.completed = s.ticket->bucket_redeemed(Which::kEscrowArc) &&
                  s.ticket->bucket_redeemed(Which::kTradingArc) &&
                  s.coin->bucket_redeemed(Which::kEscrowArc) &&
                  s.coin->bucket_redeemed(Which::kTradingArc);
  out.alice = w.tracker->delta(*w.chains, w.base + kAlice);
  out.bob = w.tracker->delta(*w.chains, w.base + kBob);
  out.carol = w.tracker->delta(*w.chains, w.base + kCarol);
  out.bob_lockup = lockup_of(*s.ticket);
  out.carol_lockup = lockup_of(*s.coin);
  out.events = w.chains->all_events();
  return out;
}

BrokerResult run_broker_deal(const BrokerConfig& cfg, sim::DeviationPlan alice,
                             sim::DeviationPlan bob,
                             sim::DeviationPlan carol) {
  return BrokerWorld(cfg).run(alice, bob, carol);
}

}  // namespace xchain::core
