#pragma once

#include <string>

#include "chain/blockchain.hpp"
#include "common/types.hpp"

namespace xchain::core {

/// Binds one protocol instance into a shared MultiChain — the load
/// generator's namespacing contract. A default-constructed binding (null
/// chains) means the historical private world: the world owns its chains,
/// party ids start at 0, and deadlines count from tick 0.
///
/// A bound world instead:
///   * resolves its chains by name on the shared MultiChain
///     (get_or_add_chain), so every instance of a protocol family competes
///     for the same block space;
///   * offsets every party id by `party_base`, giving the instance a
///     disjoint ledger-row range (no cross-instance balance bleed) while
///     protocol-local vertex/ordinal logic keeps small ids;
///   * offsets its whole deadline ladder by `start`, the instance's
///     arrival tick under the load generator's seeded arrival process;
///   * never checkpoints, resets, or finalizes the shared chains — the
///     load scheduler owns their lifecycle.
struct WorldBinding {
  chain::MultiChain* chains = nullptr;
  PartyId party_base = 0;  ///< first global party id of this instance
  Tick start = 0;          ///< arrival tick; deadline ladder offset
  std::string tag;         ///< instance label (rng seeds, diagnostics)

  bool bound() const { return chains != nullptr; }
};

}  // namespace xchain::core
