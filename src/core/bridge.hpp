#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "core/binding.hpp"
#include "core/payoff.hpp"
#include "sim/deviation.hpp"
#include "sim/tree.hpp"

namespace xchain::core {

/// Which XChainBridge-style flow the bridge world runs.
enum class BridgeVariant {
  /// Value transfer: the user creates a claim on the issuing chain
  /// (funding the witness reward pool there), commits the principal to
  /// the locking-chain door, and a k-of-n attestation quorum releases the
  /// wrapped asset. Witness rewards are eager per attestation.
  kTransfer,
  /// Account-create: the user has no issuing-chain presence yet — the
  /// reward pool rides the door commit on the locking chain, and the
  /// attestation quorum funds the freshly-created account with the
  /// wrapped asset. Rewards split among reported attesters at settle.
  kAccountCreate,
};

/// Parameters of a witness-bridge run: party 0 is the user, parties
/// 1..n_witnesses are the witnesses. premium_unit = 0 disables the hedge
/// entirely (no premium, no bonds) — the unhedged baseline the paper's
/// construction is measured against.
struct BridgeConfig {
  BridgeVariant variant = BridgeVariant::kTransfer;
  int n_witnesses = 3;
  int quorum = 2;              ///< k attestations complete the transfer
  Amount transfer_amount = 100;
  Amount witness_reward = 2;   ///< per accepted attestation
  Amount premium_unit = 2;     ///< user's premium; 0 = unhedged baseline
  Tick delta = 2;              ///< synchrony bound in ticks (>= 1)

  bool hedged() const { return premium_unit > 0; }
  int party_count() const { return 1 + n_witnesses; }
  /// Witness bond, sized so that on a failed transfer the >= (quorum - j)
  /// forfeited bonds always cover the user's eager-reward outlay (at most
  /// (quorum - 1) * witness_reward) plus the premium floor.
  Amount bond_amount() const {
    return hedged() ? premium_unit + (quorum - 1) * witness_reward : 0;
  }
  Amount reward_pool() const { return witness_reward * n_witnesses; }

  /// Deviation ordinals. Transfer user: create claim [, premium], commit.
  /// Account-create user: [premium,] commit. Witness: [bond,] attest,
  /// settle report.
  int user_actions() const {
    return (variant == BridgeVariant::kTransfer ? 2 : 1) + (hedged() ? 1 : 0);
  }
  int witness_actions() const { return hedged() ? 3 : 2; }
};

/// Result of one bridge run.
struct BridgeResult {
  bool committed = false;           ///< principal accepted by the door
  bool transfer_completed = false;  ///< quorum reached, wrapped delivered
  bool principal_refunded = false;  ///< door settle failed after a commit
  int attesters = 0;                ///< accepted attestations
  int bonds_posted = 0;
  int bonds_forfeited = 0;

  /// Per-party payoffs: [0] the user, [1..n] the witnesses.
  std::vector<PayoffDelta> payoffs;

  /// Merged event log of both chains, for traces and tests.
  chain::EventLog events;
};

/// Reusable world for the witness bridge (both variants): chains,
/// contracts, and endowments are built once; every run() rolls the world
/// back to the post-setup checkpoint and replays a schedule. The transfer
/// path is tree-capable (persistent SnapshotState actors); account-create
/// runs brute.
class BridgeWorld {
 public:
  explicit BridgeWorld(const BridgeConfig& cfg,
                       chain::TraceMode trace = chain::TraceMode::kFull);

  /// Bound form (core/binding.hpp): deploys the instance onto the shared
  /// MultiChain at `binding.party_base` / `binding.start`. Bound worlds
  /// are driven through tree_frame()'s actors — run() throws.
  BridgeWorld(const BridgeConfig& cfg, const WorldBinding& binding,
              chain::TraceMode trace = chain::TraceMode::kOff);

  ~BridgeWorld();
  BridgeWorld(BridgeWorld&&) noexcept;
  BridgeWorld& operator=(BridgeWorld&&) noexcept;

  /// Resets the world and executes one schedule (plans[0] the user,
  /// plans[1..n] the witnesses).
  BridgeResult run(const std::vector<sim::DeviationPlan>& plans);

  /// Installs a chain environment (fault plan + resilience policy) on the
  /// world's chains. Call once, right after construction; fault-active
  /// worlds must run through run() (the brute executor).
  void set_environment(const chain::ChainEnvironment& env);

  /// Tree-executor access (sim/tree.hpp), transfer variant only.
  sim::TreeFrame& tree_frame();
  void tree_set_plans(const std::vector<sim::DeviationPlan>& plans);
  BridgeResult tree_collect() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience wrapper: a fresh world per call.
BridgeResult run_bridge(const BridgeConfig& cfg,
                        const std::vector<sim::DeviationPlan>& plans);

}  // namespace xchain::core
