#include "core/multi_party.hpp"

#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>

#include "contracts/arc_contract.hpp"
#include "core/premiums.hpp"
#include "crypto/hashkey.hpp"
#include "crypto/secret.hpp"
#include "sim/party.hpp"
#include "sim/scheduler.hpp"

namespace xchain::core {

namespace {

using contracts::MultiPartyArcContract;
using graph::Arc;
using graph::Digraph;
using graph::Vertex;

/// Everything static a run needs, shared by all actors.
struct Setup {
  const MultiPartyConfig* cfg = nullptr;
  std::vector<Vertex> leaders;
  std::vector<crypto::Secret> secrets;  ///< per leader index
  std::map<std::pair<Vertex, Vertex>, MultiPartyArcContract*> arcs;
  /// Signature/hashkey memo shared by all parties of this world: signing is
  /// deterministic, so reused worlds pay each signature once.
  crypto::SigningCache* sign_cache = nullptr;
  // Phase start ticks (phase k spans [start[k], start[k+1])).
  Tick t2 = 0;  ///< redemption premium phase
  Tick t3 = 0;  ///< asset escrow phase (base phase one)
  Tick t4 = 0;  ///< hashkey phase (base phase two)
  Tick horizon = 0;

  MultiPartyArcContract& at(Vertex u, Vertex v) const {
    return *arcs.at({u, v});
  }
  bool is_leader(Vertex v) const {
    return std::find(leaders.begin(), leaders.end(), v) != leaders.end();
  }
  int leader_index_of(Vertex v) const {
    for (std::size_t i = 0; i < leaders.size(); ++i) {
      if (leaders[i] == v) return static_cast<int>(i);
    }
    return -1;
  }
};

/// One swap participant, leader or follower, running the four phases with
/// compliance conditions from §7 (and the truncations from Lemmas 2-5).
class SwapParty : public chain::SnapshotState<SwapParty, sim::Party> {
 public:
  SwapParty(PartyId id, const Setup& s, sim::DeviationPlan plan)
      : chain::SnapshotState<SwapParty, sim::Party>(
            id, "party-" + std::to_string(id), plan),
        s_(s),
        premium_seen_(s.leaders.size(), 0),
        hashkey_done_(s.leaders.size(), 0) {}

  void step(chain::MultiChain& chains, Tick now) override {
    const bool hedged = s_.cfg->hedged;
    if (hedged) {
      // Phase 1 runs in [0, t2) ONLY: a conforming party whose incoming
      // escrow premiums arrive after the phase closed (an upstream party
      // acted late) truncates instead of depositing — §7's truncation
      // rule. Depositing late would leave its arc activatable while the
      // backward premium flow no longer fits before t3, putting a
      // conforming party's escrow premium at risk for an escrow it will
      // rightly never make. Eager and timely-delayed runs always decide
      // before t2, so this gate only fires against late deviators.
      if (now < s_.t2) phase1_escrow_premiums(chains, now);
      if (now >= s_.t2) phase2_redemption_premiums(chains, now);
    }
    if (now >= s_.t3) phase3_escrow_assets(chains, now);
    if (now >= s_.t4) phase4_hashkeys(chains, now);
  }

 private:
  const Digraph& g() const { return s_.cfg->g; }

  bool all_incoming_escrow_premiums() const {
    for (Vertex u : g().in_neighbors(id())) {
      if (!s_.at(u, id()).escrow_premium_deposited()) return false;
    }
    return true;
  }

  // Ordinals of this party's scheduled actions (base runs only the last
  // two phases).
  int premium_relay_ordinal() const { return 1; }
  int escrow_ordinal() const { return s_.cfg->hedged ? 2 : 0; }
  int hashkey_ordinal() const { return s_.cfg->hedged ? 3 : 1; }

  // Phase 1: leaders deposit outgoing escrow premiums immediately;
  // followers once every incoming escrow premium is present.
  void phase1_escrow_premiums(chain::MultiChain& chains, Tick now) {
    if (did_escrow_premiums_) return;
    if (!s_.is_leader(id()) && !all_incoming_escrow_premiums()) return;
    did_escrow_premiums_ = true;
    act(chains, now, 0, [this](chain::MultiChain& ch) {
      for (Vertex w : g().out_neighbors(id())) {
        MultiPartyArcContract& c = s_.at(id(), w);
        submit(ch, c.chain_id(), "escrow premium",
               [&c](chain::TxContext& ctx) { c.deposit_escrow_premium(ctx); });
      }
    });
  }

  // Phase 2: a leader whose phase 1 succeeded starts the backward flow for
  // its own hashkey (path (L) on every incoming arc); every party relays
  // the first premium for hashkey i seen on an outgoing arc.
  void phase2_redemption_premiums(chain::MultiChain& chains, Tick now) {
    const int own = s_.leader_index_of(id());
    if (own >= 0 && !started_own_premiums_ && all_incoming_escrow_premiums()) {
      started_own_premiums_ = true;
      act(chains, now, premium_relay_ordinal(),
          [this, own](chain::MultiChain& ch) {
            deposit_premiums_on_incoming(ch, static_cast<std::size_t>(own),
                                         graph::Path{id()});
          });
    }
    for (std::size_t i = 0; i < s_.leaders.size(); ++i) {
      if (premium_seen_[i]) continue;
      // First premium for k_i on any outgoing arc (deterministic order);
      // later sightings are ignored, per §7.1.
      for (Vertex w : g().out_neighbors(id())) {
        const MultiPartyArcContract& c = s_.at(id(), w);
        if (!c.redemption_premium_deposited(i)) continue;
        premium_seen_[i] = 1;
        // The deposit's (public) path starts at w; prepend this vertex:
        // "if v || q is a path, then deposits premium R_i(v || q, u) on
        // every incoming arc".
        const graph::Path vq =
            graph::concat(id(), c.redemption_premium_path(i));
        if (g().is_path(vq)) {
          act(chains, now, premium_relay_ordinal(),
              [this, i, vq](chain::MultiChain& ch) {
                deposit_premiums_on_incoming(ch, i, vq);
              });
        }
        break;
      }
    }
  }

  void deposit_premiums_on_incoming(chain::MultiChain& chains, std::size_t i,
                                    const graph::Path& path) {
    for (Vertex u : g().in_neighbors(id())) {
      MultiPartyArcContract& c = s_.at(u, id());
      const crypto::Signature& sig =
          s_.sign_cache->premium_path_sig(keys(), id(), i, path);
      submit(chains, c.chain_id(), "redemption premium",
             [&c, i, path, sig](chain::TxContext& ctx) {
               c.deposit_redemption_premium(ctx, i, path, sig);
             });
    }
  }

  // Phase 3 (base phase one): leaders escrow on activated outgoing arcs;
  // followers wait for all incoming assets first.
  void phase3_escrow_assets(chain::MultiChain& chains, Tick now) {
    if (did_escrow_assets_) return;
    if (!s_.is_leader(id())) {
      for (Vertex u : g().in_neighbors(id())) {
        if (!s_.at(u, id()).escrowed()) return;
      }
    }
    did_escrow_assets_ = true;
    act(chains, now, escrow_ordinal(), [this](chain::MultiChain& ch) {
      for (Vertex w : g().out_neighbors(id())) {
        MultiPartyArcContract& c = s_.at(id(), w);
        // Hedged runs escrow only where the premium protection is active
        // (Lemma 3: "the leader v escrows assets on the outgoing arcs whose
        // escrow premiums are activated").
        if (s_.cfg->hedged && !c.escrow_premium_activated()) continue;
        submit(ch, c.chain_id(), "escrow asset",
               [&c](chain::TxContext& ctx) { c.escrow_asset(ctx); });
      }
    });
  }

  // Phase 4 (base phase two): leaders whose incoming arcs all carry assets
  // release their hashkey there; everyone relays the first sighting of
  // each hashkey from an outgoing arc to all incoming arcs.
  void phase4_hashkeys(chain::MultiChain& chains, Tick now) {
    const int own = s_.leader_index_of(id());
    if (own >= 0 && !released_own_key_) {
      bool all_in = true;
      for (Vertex u : g().in_neighbors(id())) {
        if (!s_.at(u, id()).escrowed()) all_in = false;
      }
      // Normal release: every incoming arc carries an asset. Recovery
      // release (§7: "truncated versions of the base protocol phases to
      // recover their premiums", Lemma 4): if this leader escrowed
      // nothing — certain once the escrow deadline has passed — releasing
      // the secret is free and refunds its redemption premium deposits.
      bool escrowed_none = now > s_.t4;  // escrow deadline == t4
      for (Vertex w : g().out_neighbors(id())) {
        if (s_.at(id(), w).escrowed()) escrowed_none = false;
      }
      if (all_in || escrowed_none) {
        released_own_key_ = true;
        act(chains, now, hashkey_ordinal(),
            [this, own](chain::MultiChain& ch) {
              const crypto::Hashkey& key = s_.sign_cache->leader_hashkey(
                  static_cast<std::size_t>(own), s_.secrets[own].value(),
                  id(), keys());
              present_on_incoming(ch, static_cast<std::size_t>(own), key);
            });
      }
    }
    for (std::size_t i = 0; i < s_.leaders.size(); ++i) {
      if (hashkey_done_[i]) continue;
      for (Vertex w : g().out_neighbors(id())) {
        const MultiPartyArcContract& c = s_.at(id(), w);
        if (!c.hashlock_open(i)) continue;
        const crypto::Hashkey& seen = *c.presented_hashkey(i);
        // Extend only if this vertex is not already on the path.
        if (std::find(seen.path.begin(), seen.path.end(), id()) !=
            seen.path.end()) {
          continue;
        }
        hashkey_done_[i] = 1;
        // The extended key lives in the world's SigningCache, so the
        // (possibly delayed) submission captures a stable reference.
        const crypto::Hashkey& ext =
            s_.sign_cache->extended_hashkey(i, seen, id(), keys());
        act(chains, now, hashkey_ordinal(),
            [this, i, &ext](chain::MultiChain& ch) {
              present_on_incoming(ch, i, ext);
            });
        break;
      }
    }
  }

  void present_on_incoming(chain::MultiChain& chains, std::size_t i,
                           const crypto::Hashkey& key) {
    // `key` lives in the world's SigningCache (stable for the world's
    // lifetime), so the closures capture it by reference.
    for (Vertex u : g().in_neighbors(id())) {
      MultiPartyArcContract& c = s_.at(u, id());
      submit(chains, c.chain_id(), "present hashkey",
             [&c, i, &key](chain::TxContext& ctx) {
               c.present_hashkey(ctx, i, key);
             });
    }
  }

  const Setup& s_;
  bool did_escrow_premiums_ = false;
  bool started_own_premiums_ = false;
  bool did_escrow_assets_ = false;
  bool released_own_key_ = false;
  std::vector<char> premium_seen_;   ///< per leader index
  std::vector<char> hashkey_done_;   ///< per leader index

  auto state_tie() {
    return std::tie(did_escrow_premiums_, started_own_premiums_,
                    did_escrow_assets_, released_own_key_, premium_seen_,
                    hashkey_done_);
  }
  friend chain::SnapshotState<SwapParty, sim::Party>;
};

}  // namespace

struct MultiPartyWorld::Impl {
  MultiPartyConfig cfg;
  Setup s;
  chain::MultiChain chains;
  crypto::SigningCache sign_cache;
  std::unique_ptr<PayoffTracker> tracker;
  std::vector<std::unique_ptr<SwapParty>> tree_parties;
  sim::TreeFrame frame;
};

MultiPartyWorld::MultiPartyWorld(const MultiPartyConfig& cfg,
                                 chain::TraceMode trace)
    : impl_(std::make_unique<Impl>()) {
  impl_->cfg = cfg;
  const Digraph& g = impl_->cfg.g;
  const std::size_t n = g.size();
  if (n < 2 || !g.strongly_connected()) {
    throw std::invalid_argument("multi-party swap: need a strongly "
                                "connected digraph on >= 2 vertices");
  }

  Setup& s = impl_->s;
  s.cfg = &impl_->cfg;
  s.sign_cache = &impl_->sign_cache;
  s.leaders =
      cfg.leaders.empty() ? g.minimum_feedback_vertex_set() : cfg.leaders;
  if (!g.is_feedback_vertex_set(s.leaders)) {
    throw std::invalid_argument(
        "multi-party swap: leaders must form a feedback vertex set");
  }

  const Tick d = cfg.delta;
  const Tick phase_len = static_cast<Tick>(n) * d;
  if (cfg.hedged) {
    s.t2 = phase_len;
    s.t3 = 2 * phase_len;
  } else {
    s.t2 = 0;
    s.t3 = 0;
  }
  s.t4 = s.t3 + phase_len;
  const std::size_t diam = g.diameter();
  s.horizon = s.t4 + static_cast<Tick>(diam + n) * d + 2;

  // One chain per party; party i's token lives on chain i.
  chain::MultiChain& chains = impl_->chains;
  chains.set_trace(trace);
  std::vector<crypto::PublicKey> keys;
  for (Vertex v = 0; v < n; ++v) {
    chains.add_chain("chain-" + std::to_string(v));
    keys.push_back(crypto::keygen_cached("party-" + std::to_string(v)).pub);
  }

  crypto::Rng rng("multi-party-swap");
  for (std::size_t i = 0; i < s.leaders.size(); ++i) {
    s.secrets.push_back(crypto::Secret::random(rng));
  }
  std::vector<MultiPartyArcContract::Hashlock> hashlocks;
  for (std::size_t i = 0; i < s.leaders.size(); ++i) {
    hashlocks.push_back({s.leaders[i], s.secrets[i].hashlock()});
  }

  const ArcPremiums escrow_p =
      cfg.hedged ? escrow_premiums(g, s.leaders, cfg.premium_unit)
                 : ArcPremiums{};

  // Escrow-cascade depth per party: leaders escrow at base-phase-one step
  // 0, a follower one step after the last of its in-neighbours (it waits
  // for every incoming asset). Well-founded because the leaders form a
  // feedback vertex set — the follower-only subgraph is acyclic — so a
  // fixpoint is reached within n sweeps.
  std::vector<Tick> depth(n, 0);
  for (std::size_t sweep_i = 0; sweep_i < n; ++sweep_i) {
    for (Vertex v = 0; v < n; ++v) {
      if (s.is_leader(v)) continue;
      Tick longest = 0;
      for (Vertex u : g.in_neighbors(v)) {
        longest = std::max(longest, depth[u]);
      }
      depth[v] = longest + 1;
    }
  }

  for (const Arc& arc : g.arcs()) {
    chain::Blockchain& bc = chains.at(arc.from);
    MultiPartyArcContract::Params p;
    p.g = g;
    p.arc = arc;
    p.asset_symbol = "token-" + std::to_string(arc.from);
    p.asset_amount = cfg.asset_amount;
    p.premium_unit = cfg.premium_unit;
    p.escrow_premium = cfg.hedged ? escrow_p.at({arc.from, arc.to}) : 0;
    p.hashlocks = hashlocks;
    p.party_keys = keys;
    p.delta = d;
    p.premium_base = s.t2;
    p.redemption_premium_deadline = s.t3;
    p.escrow_deadline = s.t4;
    p.asset_escrow_deadline = s.t3 + (depth[arc.from] + 1) * d;
    p.hashkey_base = s.t4;
    s.arcs[{arc.from, arc.to}] = &bc.deploy<MultiPartyArcContract>(p);
  }

  // Endowments: each party gets tokens for its outgoing arcs plus an ample
  // native-coin budget on every chain (payoffs are deltas, so the budget
  // size is immaterial — it only must cover worst-case premiums).
  constexpr Amount kCoinBudget = 1'000'000'000'000;
  for (Vertex v = 0; v < n; ++v) {
    chains.at(v).ledger_for_setup().mint(
        chain::Address::party(v), "token-" + std::to_string(v),
        static_cast<Amount>(g.out_neighbors(v).size()) * cfg.asset_amount);
    for (Vertex c = 0; c < n; ++c) {
      chains.at(c).ledger_for_setup().mint(chain::Address::party(v),
                                           chains.at(c).native(),
                                           kCoinBudget);
    }
  }

  chains.checkpoint();
  impl_->tracker = std::make_unique<PayoffTracker>(chains, n);
}

MultiPartyWorld::~MultiPartyWorld() = default;
MultiPartyWorld::MultiPartyWorld(MultiPartyWorld&&) noexcept = default;
MultiPartyWorld& MultiPartyWorld::operator=(MultiPartyWorld&&) noexcept =
    default;

void MultiPartyWorld::set_environment(const chain::ChainEnvironment& env) {
  impl_->chains.set_environment(env);
}

MultiPartyResult MultiPartyWorld::run(
    const std::vector<sim::DeviationPlan>& plans) {
  Impl& w = *impl_;
  const Digraph& g = w.cfg.g;
  const std::size_t n = g.size();
  if (plans.size() != n) {
    throw std::invalid_argument("multi-party swap: one plan per party");
  }
  w.chains.reset();

  std::vector<std::unique_ptr<SwapParty>> parties;
  sim::Scheduler sched(w.chains);
  for (Vertex v = 0; v < n; ++v) {
    parties.push_back(std::make_unique<SwapParty>(v, w.s, plans[v]));
    sched.add_party(*parties.back());
  }
  sched.run_until(w.s.horizon);

  w.chains.finalize_all();
  return tree_collect();
}

sim::TreeFrame& MultiPartyWorld::tree_frame() {
  Impl& w = *impl_;
  if (w.tree_parties.empty()) {
    const std::size_t n = w.cfg.g.size();
    w.frame.chains = &w.chains;
    for (Vertex v = 0; v < n; ++v) {
      w.tree_parties.push_back(std::make_unique<SwapParty>(
          v, w.s, sim::DeviationPlan::conforming()));
      w.frame.actors.push_back(w.tree_parties.back().get());
    }
    w.frame.horizon = w.s.horizon;
  }
  return w.frame;
}

void MultiPartyWorld::tree_set_plans(
    const std::vector<sim::DeviationPlan>& plans) {
  Impl& w = *impl_;
  for (std::size_t v = 0; v < w.tree_parties.size(); ++v) {
    w.tree_parties[v]->set_plan(plans.at(v));
  }
}

MultiPartyResult MultiPartyWorld::tree_collect() const {
  const Impl& w = *impl_;
  const Digraph& g = w.cfg.g;
  const std::size_t n = g.size();

  MultiPartyResult out;
  out.all_redeemed = true;
  out.payoffs.reserve(n);
  out.assets_escrowed.assign(n, 0);
  out.assets_refunded.assign(n, 0);
  out.assets_received.assign(n, 0);
  for (const Arc& arc : g.arcs()) {
    const MultiPartyArcContract& c = w.s.at(arc.from, arc.to);
    out.all_redeemed &= c.redeemed();
    out.assets_escrowed[arc.from] += c.escrowed() ? 1 : 0;
    out.assets_refunded[arc.from] += c.refunded() ? 1 : 0;
    out.assets_received[arc.to] += c.redeemed() ? 1 : 0;
  }
  for (Vertex v = 0; v < n; ++v) {
    out.payoffs.push_back(w.tracker->delta(w.chains, v));
  }
  out.events = w.chains.all_events();
  return out;
}

MultiPartyResult run_multi_party_swap(
    const MultiPartyConfig& cfg, const std::vector<sim::DeviationPlan>& plans) {
  return MultiPartyWorld(cfg).run(plans);
}

}  // namespace xchain::core
