#pragma once

#include <memory>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "core/payoff.hpp"
#include "sim/deviation.hpp"
#include "sim/tree.hpp"

namespace xchain::core {

/// What the auctioneer does at the declaration phase (paper §9). The smart
/// contracts confine her to publishing (or withholding) hashkeys, so this
/// enumerates her whole behaviour space.
enum class AuctioneerStrategy {
  kHonest,        ///< publish the true winner's hashkey on both chains
  kNoSetup,       ///< never escrow tickets / endow premiums
  kAbandon,       ///< set up, then walk away before declaring
  kDeclareLoser,  ///< publish the lowest bidder's hashkey on both chains
  kCoinOnly,      ///< publish the winner's key on the coin chain only
  kTicketOnly,    ///< publish the winner's key on the ticket chain only
  kSplit,         ///< winner's key on the coin chain, loser's on tickets
};

/// A bidder's behaviour, as a named shorthand. Bidders execute
/// sim::DeviationPlans over their scheduled-action ordinals (open: 0 = bid,
/// 1 = forward; sealed: 0 = commit, 1 = reveal, 2 = forward) — these enums
/// are the halt-style plans by legacy name, kept for tests and the model
/// checker; bidder_plan_of() maps them onto plans.
enum class BidderStrategy {
  kConform,         ///< bid, and forward one-sided hashkeys in the challenge
  kNoBid,           ///< sit out (arguably a favour, §9.2)
  kNoForward,       ///< bid, but shirk the challenge-phase forwarding duty
  kCommitNoReveal,  ///< sealed variant only: commit, never open the bid
};

/// The halt-style DeviationPlan a legacy BidderStrategy names.
sim::DeviationPlan bidder_plan_of(BidderStrategy strategy, bool sealed);

struct AuctionConfig {
  Amount ticket_count = 10;
  /// One entry per bidder (party ids 1..n); 0 means that bidder has no
  /// budget to bid with.
  std::vector<Amount> bids = {100, 80};
  Amount premium_unit = 2;  ///< p; the auctioneer endows n * p
  Tick delta = 2;
  /// Sealed variant only: the uniform collateral M escrowed with each
  /// commitment (hides the bid; must cover the largest bid).
  Amount collateral = 150;
};

struct AuctionResult {
  /// Settlement concluded with the winner paying (coin side clean).
  bool completed = false;
  /// Which party received the tickets (auctioneer if refunded).
  PartyId tickets_to = kNoParty;

  PayoffDelta auctioneer;
  std::vector<PayoffDelta> bidders;

  chain::EventLog events;
};

/// Runs the hedged auction (paper §9): bidding (Delta), declaration
/// (Delta), challenge (3 * Delta), commit.
AuctionResult run_auction(const AuctionConfig& cfg, AuctioneerStrategy alice,
                          const std::vector<BidderStrategy>& bidders);

/// Runs the *sealed-bid* hedged auction — the commit-reveal extension the
/// paper's footnote 8 points to: commit (Delta), reveal (Delta), then the
/// §9 declaration / challenge / commit over the revealed bids. Bids stay
/// hidden behind uniform collateral until the reveal phase.
AuctionResult run_sealed_auction(const AuctionConfig& cfg,
                                 AuctioneerStrategy alice,
                                 const std::vector<BidderStrategy>& bidders);

/// Reusable world for the ticket auction (open or sealed-bid): chains,
/// contracts, endowments, bidder secrets, and signature caches built once;
/// every run() rolls back to the post-setup checkpoint and replays one
/// strategy combination. The free functions above delegate to a fresh
/// world; sweep workers keep one per adapter clone.
class AuctionWorld {
 public:
  AuctionWorld(const AuctionConfig& cfg, bool sealed,
               chain::TraceMode trace = chain::TraceMode::kFull);
  ~AuctionWorld();
  AuctionWorld(AuctionWorld&&) noexcept;
  AuctionWorld& operator=(AuctionWorld&&) noexcept;

  /// Resets the world and executes one schedule: the auctioneer's
  /// declaration strategy plus one deviation plan per bidder (delays land
  /// their submissions at the shifted tick; the contracts' inclusive
  /// deadlines decide whether a late bid/reveal/forward still counts).
  AuctionResult run(AuctioneerStrategy alice,
                    const std::vector<sim::DeviationPlan>& bidder_plans);

  /// Installs a chain environment (fault plan + resilience policy); call
  /// once after construction. See TwoPartyWorld::set_environment.
  void set_environment(const chain::ChainEnvironment& env);

  /// Legacy strategy-enum form: maps each BidderStrategy onto its
  /// halt-style plan via bidder_plan_of().
  AuctionResult run(AuctioneerStrategy alice,
                    const std::vector<BidderStrategy>& bidders);

  /// Tree-executor access (sim/tree.hpp): persistent actors, built on the
  /// first call; the auctioneer's strategy is installed per schedule like
  /// the bidders' plans.
  sim::TreeFrame& tree_frame();
  void tree_set_plans(AuctioneerStrategy alice,
                      const std::vector<sim::DeviationPlan>& bidder_plans);
  AuctionResult tree_collect() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xchain::core
