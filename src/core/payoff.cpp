#include "core/payoff.hpp"

namespace xchain::core {

namespace {

bool is_native_coin(const chain::Symbol& sym) {
  static constexpr std::string_view kSuffix = "-coin";
  return sym.size() >= kSuffix.size() &&
         sym.compare(sym.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
             0;
}

}  // namespace

std::string PayoffDelta::str() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [sym, amt] : by_symbol) {
    if (amt == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += sym + ": " + std::to_string(amt);
  }
  out += "}";
  return out;
}

PayoffTracker::PayoffTracker(const chain::MultiChain& chains,
                             std::size_t party_count)
    : PayoffTracker(chains, /*first=*/0, party_count) {}

PayoffTracker::PayoffTracker(const chain::MultiChain& chains, PartyId first,
                             std::size_t party_count)
    : first_(first), party_count_(party_count) {
  initial_.reserve(party_count_);
  for (std::size_t p = 0; p < party_count_; ++p) {
    initial_.push_back(snapshot_of(chains, first_ + static_cast<PartyId>(p)));
  }
}

void PayoffTracker::accumulate(Snapshot& into, SymbolId sym, Amount amount) {
  // Linear scan: a party holds a handful of symbols at most, and the flat
  // vector beats any node container at that size.
  for (auto& [s, a] : into) {
    if (s == sym) {
      a += amount;
      return;
    }
  }
  into.emplace_back(sym, amount);
}

PayoffTracker::Snapshot PayoffTracker::snapshot_of(
    const chain::MultiChain& chains, PartyId party) const {
  Snapshot snap;
  const chain::Address addr = chain::Address::party(party);
  for (ChainId c = 0; c < chains.count(); ++c) {
    chains.at(c).ledger().for_each_holding(
        addr, [&](SymbolId sym, Amount amount) {
          accumulate(snap, sym, amount);
        });
  }
  return snap;
}

PayoffDelta PayoffTracker::delta(const chain::MultiChain& chains,
                                 PartyId party) const {
  PayoffDelta d;
  Snapshot diff = snapshot_of(chains, party);
  for (const auto& [sym, amt] : initial_.at(party - first_)) {
    accumulate(diff, sym, -amt);
  }
  for (const auto& [sym, amt] : diff) {
    if (amt == 0) continue;
    const std::string& name = SymbolTable::name(sym);
    d.by_symbol[name] += amt;
    d.value_delta += amt;
    if (is_native_coin(name)) d.coin_delta += amt;
  }
  return d;
}

}  // namespace xchain::core
