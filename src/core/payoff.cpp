#include "core/payoff.hpp"

namespace xchain::core {

namespace {

bool is_native_coin(const chain::Symbol& sym) {
  static constexpr std::string_view kSuffix = "-coin";
  return sym.size() >= kSuffix.size() &&
         sym.compare(sym.size() - kSuffix.size(), kSuffix.size(), kSuffix) ==
             0;
}

}  // namespace

std::string PayoffDelta::str() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [sym, amt] : by_symbol) {
    if (amt == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += sym + ": " + std::to_string(amt);
  }
  out += "}";
  return out;
}

PayoffTracker::PayoffTracker(const chain::MultiChain& chains,
                             std::size_t party_count)
    : party_count_(party_count) {
  initial_.reserve(party_count_);
  for (PartyId p = 0; p < party_count_; ++p) {
    initial_.push_back(holdings_of(chains, p));
  }
}

Holdings PayoffTracker::holdings_of(const chain::MultiChain& chains,
                                    PartyId party) const {
  Holdings h;
  const chain::Address addr = chain::Address::party(party);
  for (ChainId c = 0; c < chains.count(); ++c) {
    for (const auto& [who, sym, amount] : chains.at(c).ledger().holdings()) {
      if (who == addr) h[sym] += amount;
    }
  }
  return h;
}

PayoffDelta PayoffTracker::delta(const chain::MultiChain& chains,
                                 PartyId party) const {
  PayoffDelta d;
  const Holdings now = holdings_of(chains, party);
  const Holdings& before = initial_.at(party);
  for (const auto& [sym, amt] : now) d.by_symbol[sym] += amt;
  for (const auto& [sym, amt] : before) d.by_symbol[sym] -= amt;
  std::erase_if(d.by_symbol, [](const auto& kv) { return kv.second == 0; });
  for (const auto& [sym, amt] : d.by_symbol) {
    d.value_delta += amt;
    if (is_native_coin(sym)) d.coin_delta += amt;
  }
  return d;
}

}  // namespace xchain::core
