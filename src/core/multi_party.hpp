#pragma once

#include <memory>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "core/payoff.hpp"
#include "graph/digraph.hpp"
#include "sim/deviation.hpp"
#include "sim/tree.hpp"

namespace xchain::core {

/// Configuration of a multi-party swap on digraph G (paper §7). Every arc
/// (u, v) carries one asset of `asset_amount` units of u's token; premiums
/// are `premium_unit` (the paper's uniform p).
struct MultiPartyConfig {
  graph::Digraph g;
  /// Leaders must form a feedback vertex set; empty -> minimum FVS.
  std::vector<graph::Vertex> leaders;
  Amount asset_amount = 100;
  Amount premium_unit = 1;
  Tick delta = 1;
  /// false runs the *base* protocol of Herlihy '18 (phases 3-4 only, no
  /// premiums) — the unhedged baseline the paper transforms.
  bool hedged = true;
};

/// Outcome of one run.
struct MultiPartyResult {
  bool all_redeemed = false;  ///< every arc's asset reached its recipient

  std::vector<PayoffDelta> payoffs;     ///< per party
  std::vector<int> assets_escrowed;     ///< outgoing arcs the party escrowed
  std::vector<int> assets_refunded;     ///< of those, later refunded (locked)
  std::vector<int> assets_received;     ///< incoming arcs redeemed to party

  chain::EventLog events;
};

/// Per-party deviation ordinals (phase-level, matching the paper's lemma
/// structure):
///   hedged: 0 = escrow premium deposits, 1 = redemption premium deposits,
///           2 = asset escrows, 3 = hashkey release/propagation.
///   base:   0 = asset escrows, 1 = hashkey release/propagation.
inline constexpr int kMultiPartyHedgedActions = 4;
inline constexpr int kMultiPartyBaseActions = 2;

/// Runs the swap with one deviation plan per party (plans.size() ==
/// g.size()). Throws std::invalid_argument on malformed configs (graph not
/// strongly connected, leaders not an FVS, plan count mismatch).
MultiPartyResult run_multi_party_swap(
    const MultiPartyConfig& cfg,
    const std::vector<sim::DeviationPlan>& plans);

/// Reusable world for the multi-party swap: one chain per party, all arc
/// contracts, endowments, leader secrets, and signature caches built once;
/// every run() rolls back to the post-setup checkpoint and replays one
/// deviation schedule. run_multi_party_swap delegates to a fresh world;
/// sweep workers keep one per adapter clone. Throws std::invalid_argument
/// on malformed configs, exactly like the free function.
class MultiPartyWorld {
 public:
  explicit MultiPartyWorld(const MultiPartyConfig& cfg,
                           chain::TraceMode trace = chain::TraceMode::kFull);
  ~MultiPartyWorld();
  MultiPartyWorld(MultiPartyWorld&&) noexcept;
  MultiPartyWorld& operator=(MultiPartyWorld&&) noexcept;

  /// Resets the world and executes one schedule (one plan per party).
  MultiPartyResult run(const std::vector<sim::DeviationPlan>& plans);

  /// Installs a chain environment (fault plan + resilience policy); call
  /// once after construction. See TwoPartyWorld::set_environment.
  void set_environment(const chain::ChainEnvironment& env);

  /// Tree-executor access (sim/tree.hpp): persistent actors, built on the
  /// first call; the executor owns the tick loop.
  sim::TreeFrame& tree_frame();
  void tree_set_plans(const std::vector<sim::DeviationPlan>& plans);
  MultiPartyResult tree_collect() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xchain::core
