#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "core/binding.hpp"
#include "core/payoff.hpp"
#include "sim/deviation.hpp"
#include "sim/tree.hpp"

namespace xchain::core {

/// Parameters of an Alice <-> Bob cross-chain swap (paper §5): A apricot
/// tokens against B banana tokens, premiums p_a and p_b, and the synchrony
/// bound Delta in ticks.
struct TwoPartyConfig {
  Amount alice_tokens = 100;  ///< A
  Amount bob_tokens = 100;    ///< B
  Amount premium_a = 2;       ///< p_a (Alice's own premium component)
  Amount premium_b = 1;       ///< p_b (Bob's premium)
  Tick delta = 2;             ///< Delta in ticks (>= 1)
};

/// Result of one protocol run.
struct TwoPartyResult {
  bool swapped = false;  ///< both principals redeemed

  PayoffDelta alice;
  PayoffDelta bob;

  /// Ticks each party's principal spent escrowed before being *refunded*
  /// (0 if never escrowed or if redeemed — the sore-loser lock-up metric).
  Tick alice_lockup = 0;
  Tick bob_lockup = 0;

  /// Merged event log of both chains, for traces and tests.
  chain::EventLog events;
};

/// Runs the *base* (unhedged) two-party atomic swap of §5.1:
/// Alice escrows with timelock 3*Delta, Bob with 2*Delta, secrets flow back.
/// Deviation plans index each party's protocol actions in order:
///   Alice: 0 = escrow principal, 1 = redeem Bob's escrow (reveal s)
///   Bob:   0 = escrow principal, 1 = redeem Alice's escrow
TwoPartyResult run_base_two_party(const TwoPartyConfig& cfg,
                                  sim::DeviationPlan alice,
                                  sim::DeviationPlan bob);

/// Runs the *hedged* two-party atomic swap of §5.2 / Figure 1:
/// premium distribution (Alice deposits p_a + p_b on the banana contract,
/// Bob deposits p_b on the apricot contract) followed by the base swap with
/// premium-aware contracts.
/// Action ordinals:
///   Alice: 0 = deposit premium, 1 = escrow principal, 2 = redeem (reveal s)
///   Bob:   0 = deposit premium, 1 = escrow principal, 2 = redeem
TwoPartyResult run_hedged_two_party(const TwoPartyConfig& cfg,
                                    sim::DeviationPlan alice,
                                    sim::DeviationPlan bob);

/// Number of deviation-relevant actions per role (for model checking).
inline constexpr int kBaseTwoPartyActions = 2;
inline constexpr int kHedgedTwoPartyActions = 3;

/// Reusable world for the hedged two-party swap: chains, contracts, and
/// endowments are built once; every run() rolls the world back to that
/// checkpoint and replays a schedule on it. A world constructed per call is
/// exactly run_hedged_two_party (the free function delegates here); sweep
/// workers instead keep one world per adapter clone and run thousands of
/// schedules on it, skipping per-schedule chain construction entirely.
class TwoPartyWorld {
 public:
  explicit TwoPartyWorld(const TwoPartyConfig& cfg,
                         chain::TraceMode trace = chain::TraceMode::kFull);

  /// Bound form (core/binding.hpp): deploys the instance onto the shared
  /// MultiChain at `binding.party_base` / `binding.start`. Bound worlds
  /// are driven through tree_frame()'s actors by the load scheduler —
  /// run() (which resets and finalizes chains) throws.
  TwoPartyWorld(const TwoPartyConfig& cfg, const WorldBinding& binding,
                chain::TraceMode trace = chain::TraceMode::kOff);

  ~TwoPartyWorld();
  TwoPartyWorld(TwoPartyWorld&&) noexcept;
  TwoPartyWorld& operator=(TwoPartyWorld&&) noexcept;

  /// Resets the world and executes one schedule.
  TwoPartyResult run(sim::DeviationPlan alice, sim::DeviationPlan bob);

  /// Installs a chain environment (fault plan + resilience policy) on the
  /// world's chains. Call once, right after construction: fault state is
  /// configuration, not snapshotted world state, so it survives the
  /// per-run reset. Fault-active worlds must run through run() (the brute
  /// executor); the tree executor's snapshot layering does not admit
  /// carried-over mempools.
  void set_environment(const chain::ChainEnvironment& env);

  /// Tree-executor access (sim/tree.hpp): the first call builds the
  /// world's persistent, snapshot-capable actors; the executor owns the
  /// tick loop, plan installation goes through tree_set_plans() and
  /// result assembly through tree_collect().
  sim::TreeFrame& tree_frame();
  void tree_set_plans(const std::vector<sim::DeviationPlan>& plans);
  TwoPartyResult tree_collect() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace xchain::core
