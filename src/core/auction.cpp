#include "core/auction.hpp"

#include <memory>
#include <stdexcept>
#include <tuple>

#include "contracts/auction.hpp"
#include "contracts/sealed_auction.hpp"
#include "crypto/hashkey.hpp"
#include "crypto/secret.hpp"
#include "sim/party.hpp"
#include "sim/scheduler.hpp"

namespace xchain::core {

namespace {

using contracts::AuctionTerms;
using contracts::CoinAuctionContract;
using contracts::TicketAuctionContract;

constexpr PartyId kAlice = 0;

struct Setup {
  CoinAuctionContract* coin = nullptr;
  TicketAuctionContract* ticket = nullptr;
  ChainId coin_chain = 0;
  ChainId ticket_chain = 0;
  std::vector<crypto::Secret> secrets;  ///< per bidder index
  crypto::SigningCache* sign_cache = nullptr;
  Tick declaration_start = 0;
};

class Auctioneer : public chain::SnapshotState<Auctioneer, sim::Party> {
 public:
  Auctioneer(const Setup& s, AuctioneerStrategy strategy,
             const std::vector<Amount>& bids)
      : chain::SnapshotState<Auctioneer, sim::Party>(kAlice, "alice"), s_(s),
        strategy_(strategy), bids_(bids) {}

  /// Tree executor: the strategy is schedule configuration (part of the
  /// trie's variant root), not run state — it is swapped per schedule and
  /// deliberately absent from state_tie().
  void set_strategy(AuctioneerStrategy strategy) { strategy_ = strategy; }

  void step(chain::MultiChain& chains, Tick now) override {
    if (strategy_ == AuctioneerStrategy::kNoSetup) return;
    if (!did_setup_) {
      did_setup_ = true;
      submit(chains, s_.ticket_chain, "escrow tickets",
             [c = s_.ticket](chain::TxContext& ctx) {
               c->escrow_tickets(ctx);
             });
      submit(chains, s_.coin_chain, "endow premium",
             [c = s_.coin](chain::TxContext& ctx) { c->endow_premium(ctx); });
    }
    if (strategy_ == AuctioneerStrategy::kAbandon) return;
    // Declaration phase: inspect bids, publish per strategy. (At Delta = 1
    // the bids only become visible one tick into the phase; wait for them —
    // the |q| * Delta hashkey timeout still accommodates the declaration.)
    if (!declared_ && now >= s_.declaration_start) {
      const auto win = s_.coin->winner();
      if (!win) return;  // no bids visible (yet): nothing to declare
      declared_ = true;
      const std::size_t lose = lowest_bidder().value_or(*win);
      switch (strategy_) {
        case AuctioneerStrategy::kHonest:
          publish(chains, *win, s_.coin_chain);
          publish(chains, *win, s_.ticket_chain);
          break;
        case AuctioneerStrategy::kDeclareLoser:
          publish(chains, lose, s_.coin_chain);
          publish(chains, lose, s_.ticket_chain);
          break;
        case AuctioneerStrategy::kCoinOnly:
          publish(chains, *win, s_.coin_chain);
          break;
        case AuctioneerStrategy::kTicketOnly:
          publish(chains, *win, s_.ticket_chain);
          break;
        case AuctioneerStrategy::kSplit:
          publish(chains, *win, s_.coin_chain);
          publish(chains, lose, s_.ticket_chain);
          break;
        default:
          break;
      }
    }
  }

 private:
  std::optional<std::size_t> lowest_bidder() const {
    std::optional<std::size_t> low;
    for (std::size_t i = 0; i < bids_.size(); ++i) {
      const auto b = s_.coin->bid_of(i);
      if (b && (!low || *b < *s_.coin->bid_of(*low))) low = i;
    }
    return low;
  }

  void publish(chain::MultiChain& chains, std::size_t bidder_index,
               ChainId chain) {
    // The cached hashkey outlives the run: closures take it by reference.
    const crypto::Hashkey& key = s_.sign_cache->leader_hashkey(
        bidder_index, s_.secrets[bidder_index].value(), kAlice, keys());
    if (chain == s_.coin_chain) {
      submit(chains, chain, "declare on coin chain",
             [c = s_.coin, bidder_index, &key](chain::TxContext& ctx) {
               c->present_hashkey(ctx, bidder_index, key);
             });
    } else {
      submit(chains, chain, "declare on ticket chain",
             [c = s_.ticket, bidder_index, &key](chain::TxContext& ctx) {
               c->present_hashkey(ctx, bidder_index, key);
             });
    }
  }

  const Setup& s_;
  AuctioneerStrategy strategy_;
  std::vector<Amount> bids_;
  bool did_setup_ = false;
  bool declared_ = false;

  auto state_tie() { return std::tie(did_setup_, declared_); }
  friend chain::SnapshotState<Auctioneer, sim::Party>;
};

class Bidder : public chain::SnapshotState<Bidder, sim::Party> {
 public:
  Bidder(PartyId id, const Setup& s, sim::DeviationPlan plan, Amount bid)
      : chain::SnapshotState<Bidder, sim::Party>(
            id, "bidder-" + std::to_string(id), plan),
        s_(s), bid_(bid), forwarded_(s.secrets.size(), 0) {}

  void step(chain::MultiChain& chains, Tick now) override {
    // Ordinal 0: bid once the auctioneer's setup (tickets + premium) is
    // visible.
    if (!did_bid_ && s_.ticket->escrowed() && s_.coin->premium_endowed() &&
        bid_ > 0) {
      did_bid_ = true;
      act(chains, now, 0, [this](chain::MultiChain& ch) {
        submit(ch, s_.coin_chain, "place bid",
               [c = s_.coin, amount = bid_](chain::TxContext& ctx) {
                 c->place_bid(ctx, amount);
               });
      });
    }
    // Ordinal 1, challenge phase (Lemma 7): a hashkey on one contract but
    // not the other gets extended and forwarded.
    for (std::size_t i = 0; i < s_.secrets.size(); ++i) {
      if (forwarded_[i]) continue;
      const bool on_coin = s_.coin->hashkey_received(i);
      const bool on_ticket = s_.ticket->hashkey_received(i);
      if (on_coin == on_ticket) continue;
      const crypto::Hashkey& seen = on_coin
                                        ? *s_.coin->presented_hashkey(i)
                                        : *s_.ticket->presented_hashkey(i);
      if (std::find(seen.path.begin(), seen.path.end(), id()) !=
          seen.path.end()) {
        continue;
      }
      forwarded_[i] = 1;
      // The extended key lives in the world's SigningCache, so a delayed
      // submission captures a stable reference.
      const crypto::Hashkey& extended =
          s_.sign_cache->extended_hashkey(i, seen, id(), keys());
      act(chains, now, 1,
          [this, i, on_coin, &extended](chain::MultiChain& ch) {
            if (on_coin) {
              submit(ch, s_.ticket_chain, "forward hashkey",
                     [c = s_.ticket, i, &extended](chain::TxContext& ctx) {
                       c->present_hashkey(ctx, i, extended);
                     });
            } else {
              submit(ch, s_.coin_chain, "forward hashkey",
                     [c = s_.coin, i, &extended](chain::TxContext& ctx) {
                       c->present_hashkey(ctx, i, extended);
                     });
            }
          });
    }
  }

 private:
  const Setup& s_;
  Amount bid_;
  bool did_bid_ = false;
  std::vector<char> forwarded_;

  auto state_tie() { return std::tie(did_bid_, forwarded_); }
  friend chain::SnapshotState<Bidder, sim::Party>;
};

// ---------------------------------------------------------------------------
// Sealed-bid variant (footnote 8 extension)
// ---------------------------------------------------------------------------

struct SealedSetup {
  contracts::SealedCoinAuctionContract* coin = nullptr;
  contracts::TicketAuctionContract* ticket = nullptr;
  ChainId coin_chain = 0;
  ChainId ticket_chain = 0;
  std::vector<crypto::Secret> secrets;
  crypto::SigningCache* sign_cache = nullptr;
  Tick declaration_start = 0;
  Tick reveal_deadline = 0;
};

class SealedAuctioneer
    : public chain::SnapshotState<SealedAuctioneer, sim::Party> {
 public:
  SealedAuctioneer(const SealedSetup& s, AuctioneerStrategy strategy)
      : chain::SnapshotState<SealedAuctioneer, sim::Party>(kAlice, "alice"),
        s_(s), strategy_(strategy) {}

  void set_strategy(AuctioneerStrategy strategy) { strategy_ = strategy; }

  void step(chain::MultiChain& chains, Tick now) override {
    if (strategy_ == AuctioneerStrategy::kNoSetup) return;
    if (!did_setup_) {
      did_setup_ = true;
      submit(chains, s_.ticket_chain, "escrow tickets",
             [c = s_.ticket](chain::TxContext& ctx) {
               c->escrow_tickets(ctx);
             });
      submit(chains, s_.coin_chain, "endow premium",
             [c = s_.coin](chain::TxContext& ctx) { c->endow_premium(ctx); });
    }
    if (strategy_ == AuctioneerStrategy::kAbandon) return;
    if (!declared_ && now >= s_.declaration_start) {
      const auto win = s_.coin->winner();
      if (!win) return;
      declared_ = true;
      const std::size_t target = strategy_ == AuctioneerStrategy::kDeclareLoser
                                     ? lowest_revealed().value_or(*win)
                                     : *win;
      const bool to_coin = strategy_ != AuctioneerStrategy::kTicketOnly;
      const bool to_ticket = strategy_ != AuctioneerStrategy::kCoinOnly;
      if (to_coin) {
        const crypto::Hashkey& key = s_.sign_cache->leader_hashkey(
            target, s_.secrets[target].value(), kAlice, keys());
        submit(chains, s_.coin_chain, "declare (coin)",
               [c = s_.coin, target, &key](chain::TxContext& ctx) {
                 c->present_hashkey(ctx, target, key);
               });
      }
      if (to_ticket) {
        const std::size_t t =
            strategy_ == AuctioneerStrategy::kSplit
                ? lowest_revealed().value_or(target)
                : target;
        const crypto::Hashkey& tk = s_.sign_cache->leader_hashkey(
            t, s_.secrets[t].value(), kAlice, keys());
        submit(chains, s_.ticket_chain, "declare (ticket)",
               [c = s_.ticket, t, &tk](chain::TxContext& ctx) {
                 c->present_hashkey(ctx, t, tk);
               });
      }
    }
  }

 private:
  std::optional<std::size_t> lowest_revealed() const {
    std::optional<std::size_t> low;
    for (std::size_t i = 0; i < s_.secrets.size(); ++i) {
      const auto b = s_.coin->revealed_bid(i);
      if (b && (!low || *b < *s_.coin->revealed_bid(*low))) low = i;
    }
    return low;
  }

  const SealedSetup& s_;
  AuctioneerStrategy strategy_;
  bool did_setup_ = false;
  bool declared_ = false;

  auto state_tie() { return std::tie(did_setup_, declared_); }
  friend chain::SnapshotState<SealedAuctioneer, sim::Party>;
};

class SealedBidder : public chain::SnapshotState<SealedBidder, sim::Party> {
 public:
  SealedBidder(PartyId id, const SealedSetup& s, sim::DeviationPlan plan,
               Amount bid)
      : chain::SnapshotState<SealedBidder, sim::Party>(
            id, "bidder-" + std::to_string(id), plan),
        s_(s), bid_(bid),
        nonce_(crypto::Secret::from_label("nonce-" + name()).value()),
        forwarded_(s.secrets.size(), 0) {}

  void step(chain::MultiChain& chains, Tick now) override {
    // A budget-less bidder has no protocol role at all (historical
    // sealed-variant behaviour: it neither commits nor forwards).
    if (bid_ <= 0) return;
    // Ordinal 0: commit once the auctioneer's setup is visible.
    if (!committed_ && s_.ticket->escrowed() && s_.coin->premium_endowed()) {
      committed_ = true;
      act(chains, now, 0, [this](chain::MultiChain& ch) {
        const auto digest =
            contracts::SealedCoinAuctionContract::commitment_of(bid_, nonce_);
        submit(ch, s_.coin_chain, "commit bid",
               [c = s_.coin, digest](chain::TxContext& ctx) {
                 c->commit_bid(ctx, digest);
               });
      });
    }
    // Ordinal 1: reveal once the commit phase has closed.
    if (!revealed_ && committed_ &&
        now > s_.coin->params().terms.bid_deadline) {
      revealed_ = true;
      act(chains, now, 1, [this](chain::MultiChain& ch) {
        submit(ch, s_.coin_chain, "reveal bid",
               [c = s_.coin, b = bid_, nn = nonce_](
                   chain::TxContext& ctx) { c->reveal_bid(ctx, b, nn); });
      });
    }
    // Ordinal 2: challenge-phase forwarding.
    for (std::size_t i = 0; i < s_.secrets.size(); ++i) {
      if (forwarded_[i]) continue;
      const bool on_coin = s_.coin->hashkey_received(i);
      const bool on_ticket = s_.ticket->hashkey_received(i);
      if (on_coin == on_ticket) continue;
      const crypto::Hashkey& seen = on_coin
                                        ? *s_.coin->presented_hashkey(i)
                                        : *s_.ticket->presented_hashkey(i);
      if (std::find(seen.path.begin(), seen.path.end(), id()) !=
          seen.path.end()) {
        continue;
      }
      forwarded_[i] = 1;
      const crypto::Hashkey& ext =
          s_.sign_cache->extended_hashkey(i, seen, id(), keys());
      act(chains, now, 2, [this, i, on_coin, &ext](chain::MultiChain& ch) {
        if (on_coin) {
          submit(ch, s_.ticket_chain, "forward",
                 [c = s_.ticket, i, &ext](chain::TxContext& ctx) {
                   c->present_hashkey(ctx, i, ext);
                 });
        } else {
          submit(ch, s_.coin_chain, "forward",
                 [c = s_.coin, i, &ext](chain::TxContext& ctx) {
                   c->present_hashkey(ctx, i, ext);
                 });
        }
      });
    }
  }

 private:
  const SealedSetup& s_;
  Amount bid_;
  crypto::Bytes nonce_;
  bool committed_ = false;
  bool revealed_ = false;
  std::vector<char> forwarded_;

  auto state_tie() { return std::tie(committed_, revealed_, forwarded_); }
  friend chain::SnapshotState<SealedBidder, sim::Party>;
};

}  // namespace

struct AuctionWorld::Impl {
  AuctionConfig cfg;
  bool sealed = false;
  chain::MultiChain chains;
  crypto::SigningCache sign_cache;
  Setup s;         ///< open variant
  SealedSetup ss;  ///< sealed variant
  std::unique_ptr<PayoffTracker> tracker;
  // Persistent tree-executor actors (one variant populated, per `sealed`).
  std::unique_ptr<Auctioneer> tree_alice;
  std::vector<std::unique_ptr<Bidder>> tree_bidders;
  std::unique_ptr<SealedAuctioneer> tree_sealed_alice;
  std::vector<std::unique_ptr<SealedBidder>> tree_sealed_bidders;
  sim::TreeFrame frame;
};

AuctionWorld::AuctionWorld(const AuctionConfig& cfg, bool sealed,
                           chain::TraceMode trace)
    : impl_(std::make_unique<Impl>()) {
  Impl& w = *impl_;
  w.cfg = cfg;
  w.sealed = sealed;
  const std::size_t n = cfg.bids.size();
  const Tick d = cfg.delta;

  w.chains.set_trace(trace);
  chain::Blockchain& ticket_chain = w.chains.add_chain("ticketchain");
  chain::Blockchain& coin_chain = w.chains.add_chain("coinchain");

  AuctionTerms terms;
  terms.auctioneer = kAlice;
  crypto::Rng rng(sealed ? "sealed-auction" : "auction");
  std::vector<crypto::PublicKey> keys(n + 1);
  keys[kAlice] = crypto::keygen_cached("alice").pub;
  std::vector<crypto::Secret> secrets;
  for (std::size_t i = 0; i < n; ++i) {
    const PartyId pid = static_cast<PartyId>(i + 1);
    terms.bidders.push_back(pid);
    keys[pid] = crypto::keygen_cached("bidder-" + std::to_string(pid)).pub;
    secrets.push_back(crypto::Secret::random(rng));
    terms.hashlocks.push_back(secrets.back().hashlock());
  }
  terms.party_keys = keys;
  terms.delta = d;

  if (sealed) {
    SealedSetup& s = w.ss;
    s.ticket_chain = ticket_chain.id();
    s.coin_chain = coin_chain.id();
    // Declare only once the reveals are FINAL: the reveal deadline is
    // inclusive (a reveal submitted at 2Δ still lands in block 2Δ), so the
    // earliest tick the declaration can be based on complete information is
    // 2Δ + 1. Declaring at 2Δ — as the eager schedule used to — silently
    // relied on every bidder revealing early; a timely-but-last-moment
    // reveal would arrive after an honest declaration and settle the coin
    // contract for a different winner, costing the HONEST auctioneer her
    // premium endowment. The |q|·Δ hashkey timeouts (counted from the
    // contract's declaration_start = 2Δ) still accommodate the shift.
    s.declaration_start = 2 * d + 1;
    s.reveal_deadline = 2 * d;
    s.secrets = std::move(secrets);
    s.sign_cache = &w.sign_cache;

    terms.bid_deadline = d;  // commit phase
    terms.declaration_start = 2 * d;
    terms.commit_time = 6 * d;

    s.coin = &coin_chain.deploy<contracts::SealedCoinAuctionContract>(
        contracts::SealedCoinAuctionContract::Params{
            terms, cfg.premium_unit, cfg.collateral, s.reveal_deadline});
    s.ticket = &ticket_chain.deploy<contracts::TicketAuctionContract>(
        contracts::TicketAuctionContract::Params{terms, "ticket",
                                                 cfg.ticket_count});

    ticket_chain.ledger_for_setup().mint(chain::Address::party(kAlice),
                                         "ticket", cfg.ticket_count);
    coin_chain.ledger_for_setup().mint(
        chain::Address::party(kAlice), coin_chain.native(),
        cfg.premium_unit * static_cast<Amount>(n));
    for (std::size_t i = 0; i < n; ++i) {
      coin_chain.ledger_for_setup().mint(
          chain::Address::party(static_cast<PartyId>(i + 1)),
          coin_chain.native(), cfg.collateral);
    }
  } else {
    Setup& s = w.s;
    s.ticket_chain = ticket_chain.id();
    s.coin_chain = coin_chain.id();
    // Declare only once the bids are FINAL (inclusive bid deadline Δ + one
    // tick of visibility — see the sealed variant's comment; at Δ = 1 this
    // matches the old effective behaviour, where the auctioneer found no
    // visible bid at tick Δ and declared at Δ + 1 anyway).
    s.declaration_start = d + 1;
    s.secrets = std::move(secrets);
    s.sign_cache = &w.sign_cache;

    terms.bid_deadline = d;
    terms.declaration_start = d;
    terms.commit_time = 5 * d;

    s.coin = &coin_chain.deploy<CoinAuctionContract>(
        CoinAuctionContract::Params{terms, cfg.premium_unit});
    s.ticket = &ticket_chain.deploy<TicketAuctionContract>(
        TicketAuctionContract::Params{terms, "ticket", cfg.ticket_count});

    ticket_chain.ledger_for_setup().mint(chain::Address::party(kAlice),
                                         "ticket", cfg.ticket_count);
    coin_chain.ledger_for_setup().mint(
        chain::Address::party(kAlice), coin_chain.native(),
        cfg.premium_unit * static_cast<Amount>(n));
    for (std::size_t i = 0; i < n; ++i) {
      coin_chain.ledger_for_setup().mint(
          chain::Address::party(static_cast<PartyId>(i + 1)),
          coin_chain.native(), cfg.bids[i]);
    }
  }

  w.chains.checkpoint();
  w.tracker = std::make_unique<PayoffTracker>(w.chains, n + 1);
}

AuctionWorld::~AuctionWorld() = default;
AuctionWorld::AuctionWorld(AuctionWorld&&) noexcept = default;
AuctionWorld& AuctionWorld::operator=(AuctionWorld&&) noexcept = default;

sim::DeviationPlan bidder_plan_of(BidderStrategy strategy, bool sealed) {
  switch (strategy) {
    case BidderStrategy::kConform: return sim::DeviationPlan::conforming();
    case BidderStrategy::kNoBid: return sim::DeviationPlan::halt_after(0);
    case BidderStrategy::kCommitNoReveal:
      return sim::DeviationPlan::halt_after(1);
    default:  // kNoForward: everything but the challenge-phase duty
      return sim::DeviationPlan::halt_after(sealed ? 2 : 1);
  }
}

void AuctionWorld::set_environment(const chain::ChainEnvironment& env) {
  impl_->chains.set_environment(env);
}

AuctionResult AuctionWorld::run(
    AuctioneerStrategy alice,
    const std::vector<sim::DeviationPlan>& bidder_plans) {
  Impl& w = *impl_;
  const std::size_t n = w.cfg.bids.size();
  if (bidder_plans.size() != n) {
    throw std::invalid_argument(w.sealed
                                    ? "run_sealed_auction: one plan per "
                                      "bidder"
                                    : "run_auction: one plan per bidder");
  }
  const Tick d = w.cfg.delta;
  w.chains.reset();

  sim::Scheduler sched(w.chains);
  if (w.sealed) {
    SealedAuctioneer a(w.ss, alice);
    std::vector<std::unique_ptr<SealedBidder>> bs;
    sched.add_party(a);
    for (std::size_t i = 0; i < n; ++i) {
      bs.push_back(std::make_unique<SealedBidder>(
          static_cast<PartyId>(i + 1), w.ss, bidder_plans[i],
          w.cfg.bids[i]));
      sched.add_party(*bs.back());
    }
    sched.run_until(6 * d + 2);
  } else {
    Auctioneer a(w.s, alice, w.cfg.bids);
    std::vector<std::unique_ptr<Bidder>> bs;
    sched.add_party(a);
    for (std::size_t i = 0; i < n; ++i) {
      bs.push_back(std::make_unique<Bidder>(static_cast<PartyId>(i + 1), w.s,
                                            bidder_plans[i], w.cfg.bids[i]));
      sched.add_party(*bs.back());
    }
    sched.run_until(5 * d + 2);
  }

  w.chains.finalize_all();
  return tree_collect();
}

sim::TreeFrame& AuctionWorld::tree_frame() {
  Impl& w = *impl_;
  if (w.frame.chains == nullptr) {
    const std::size_t n = w.cfg.bids.size();
    w.frame.chains = &w.chains;
    if (w.sealed) {
      w.tree_sealed_alice =
          std::make_unique<SealedAuctioneer>(w.ss, AuctioneerStrategy::kHonest);
      w.frame.actors.push_back(w.tree_sealed_alice.get());
      for (std::size_t i = 0; i < n; ++i) {
        w.tree_sealed_bidders.push_back(std::make_unique<SealedBidder>(
            static_cast<PartyId>(i + 1), w.ss, sim::DeviationPlan::conforming(),
            w.cfg.bids[i]));
        w.frame.actors.push_back(w.tree_sealed_bidders.back().get());
      }
      w.frame.horizon = 6 * w.cfg.delta + 2;
    } else {
      w.tree_alice = std::make_unique<Auctioneer>(
          w.s, AuctioneerStrategy::kHonest, w.cfg.bids);
      w.frame.actors.push_back(w.tree_alice.get());
      for (std::size_t i = 0; i < n; ++i) {
        w.tree_bidders.push_back(std::make_unique<Bidder>(
            static_cast<PartyId>(i + 1), w.s, sim::DeviationPlan::conforming(),
            w.cfg.bids[i]));
        w.frame.actors.push_back(w.tree_bidders.back().get());
      }
      w.frame.horizon = 5 * w.cfg.delta + 2;
    }
  }
  return w.frame;
}

void AuctionWorld::tree_set_plans(
    AuctioneerStrategy alice,
    const std::vector<sim::DeviationPlan>& bidder_plans) {
  Impl& w = *impl_;
  if (w.sealed) {
    w.tree_sealed_alice->set_strategy(alice);
    for (std::size_t i = 0; i < w.tree_sealed_bidders.size(); ++i) {
      w.tree_sealed_bidders[i]->set_plan(bidder_plans.at(i));
    }
  } else {
    w.tree_alice->set_strategy(alice);
    for (std::size_t i = 0; i < w.tree_bidders.size(); ++i) {
      w.tree_bidders[i]->set_plan(bidder_plans.at(i));
    }
  }
}

AuctionResult AuctionWorld::tree_collect() const {
  const Impl& w = *impl_;
  const std::size_t n = w.cfg.bids.size();

  AuctionResult out;
  if (w.sealed) {
    out.completed = w.ss.coin->completed_cleanly();
    out.tickets_to = w.ss.ticket->awarded_to().value_or(kAlice);
  } else {
    out.completed = w.s.coin->completed_cleanly();
    out.tickets_to = w.s.ticket->awarded_to().value_or(kAlice);
  }
  out.auctioneer = w.tracker->delta(w.chains, kAlice);
  for (std::size_t i = 0; i < n; ++i) {
    out.bidders.push_back(
        w.tracker->delta(w.chains, static_cast<PartyId>(i + 1)));
  }
  out.events = w.chains.all_events();
  return out;
}

AuctionResult AuctionWorld::run(AuctioneerStrategy alice,
                                const std::vector<BidderStrategy>& bidders) {
  std::vector<sim::DeviationPlan> plans;
  plans.reserve(bidders.size());
  for (const BidderStrategy s : bidders) {
    plans.push_back(bidder_plan_of(s, impl_->sealed));
  }
  return run(alice, plans);
}

AuctionResult run_sealed_auction(const AuctionConfig& cfg,
                                 AuctioneerStrategy alice,
                                 const std::vector<BidderStrategy>& bidders) {
  return AuctionWorld(cfg, /*sealed=*/true).run(alice, bidders);
}

AuctionResult run_auction(const AuctionConfig& cfg, AuctioneerStrategy alice,
                          const std::vector<BidderStrategy>& bidders) {
  return AuctionWorld(cfg, /*sealed=*/false).run(alice, bidders);
}

}  // namespace xchain::core
