#include "core/two_party.hpp"

#include <memory>
#include <tuple>

#include "contracts/hedged_swap.hpp"
#include "contracts/htlc.hpp"
#include "crypto/secret.hpp"
#include "sim/party.hpp"
#include "sim/scheduler.hpp"

namespace xchain::core {

namespace {

constexpr PartyId kAlice = 0;
constexpr PartyId kBob = 1;

Tick lockup_of(std::optional<Tick> start, std::optional<Tick> end,
               bool refunded) {
  if (!refunded || !start || !end) return 0;
  return *end - *start;
}

// ---------------------------------------------------------------------------
// Base protocol actors (§5.1).
// ---------------------------------------------------------------------------

class BaseAlice : public sim::Party {
 public:
  BaseAlice(sim::DeviationPlan plan, contracts::HtlcContract& mine,
            contracts::HtlcContract& bobs, crypto::Secret secret)
      : sim::Party(kAlice, "alice", plan),
        mine_(mine),
        bobs_(bobs),
        secret_(std::move(secret)) {}

  void step(chain::MultiChain& chains, Tick now) override {
    // Action 0: escrow the principal at protocol start.
    if (!did_escrow_) {
      did_escrow_ = true;
      act(chains, now, 0, [this](chain::MultiChain& ch) {
        submit(ch, mine_.chain_id(), "escrow principal",
               [this](chain::TxContext& ctx) { mine_.fund(ctx); });
      });
    }
    // Action 1: once Bob's escrow appears, redeem it (revealing s).
    if (!did_redeem_ && bobs_.funded()) {
      did_redeem_ = true;
      act(chains, now, 1, [this](chain::MultiChain& ch) {
        submit(ch, bobs_.chain_id(), "redeem bob's escrow",
               [this](chain::TxContext& ctx) {
                 bobs_.redeem(ctx, secret_.value());
               });
      });
    }
  }

 private:
  contracts::HtlcContract& mine_;
  contracts::HtlcContract& bobs_;
  crypto::Secret secret_;
  bool did_escrow_ = false;
  bool did_redeem_ = false;
};

class BaseBob : public sim::Party {
 public:
  BaseBob(sim::DeviationPlan plan, contracts::HtlcContract& mine,
          contracts::HtlcContract& alices)
      : sim::Party(kBob, "bob", plan), mine_(mine), alices_(alices) {}

  void step(chain::MultiChain& chains, Tick now) override {
    // Action 0: escrow once Alice's escrow is visible.
    if (!did_escrow_ && alices_.funded()) {
      did_escrow_ = true;
      act(chains, now, 0, [this](chain::MultiChain& ch) {
        submit(ch, mine_.chain_id(), "escrow principal",
               [this](chain::TxContext& ctx) { mine_.fund(ctx); });
      });
    }
    // Action 1: once s is public (Alice redeemed), redeem Alice's escrow.
    if (!did_redeem_ && mine_.revealed_preimage()) {
      did_redeem_ = true;
      act(chains, now, 1, [this](chain::MultiChain& ch) {
        submit(ch, alices_.chain_id(), "redeem alice's escrow",
               [this](chain::TxContext& ctx) {
                 alices_.redeem(ctx, *mine_.revealed_preimage());
               });
      });
    }
  }

 private:
  contracts::HtlcContract& mine_;
  contracts::HtlcContract& alices_;
  bool did_escrow_ = false;
  bool did_redeem_ = false;
};

// ---------------------------------------------------------------------------
// Hedged protocol actors (§5.2, Figure 1).
// ---------------------------------------------------------------------------

class HedgedAlice : public chain::SnapshotState<HedgedAlice, sim::Party> {
 public:
  HedgedAlice(sim::DeviationPlan plan, contracts::HedgedSwapContract& apricot,
              contracts::HedgedSwapContract& banana, crypto::Secret secret)
      : chain::SnapshotState<HedgedAlice, sim::Party>(kAlice, "alice", plan),
        apricot_(apricot),
        banana_(banana),
        secret_(std::move(secret)) {}

  void step(chain::MultiChain& chains, Tick now) override {
    // Action 0: deposit premium p_a + p_b on the banana contract at start.
    if (!did_premium_) {
      did_premium_ = true;
      act(chains, now, 0, [this](chain::MultiChain& ch) {
        submit(ch, banana_.chain_id(), "deposit premium",
               [this](chain::TxContext& ctx) { banana_.deposit_premium(ctx); });
      });
    }
    // Action 1: once Bob's premium is on the apricot contract, escrow the
    // principal there. (If Bob's premium never appears, a compliant Alice
    // truncates: she never escrows.)
    if (!did_escrow_ && apricot_.premium_deposited()) {
      did_escrow_ = true;
      act(chains, now, 1, [this](chain::MultiChain& ch) {
        submit(ch, apricot_.chain_id(), "escrow principal",
               [this](chain::TxContext& ctx) {
                 apricot_.escrow_principal(ctx);
               });
      });
    }
    // Action 2: once Bob's principal is escrowed, redeem it (revealing s).
    if (!did_redeem_ && banana_.escrowed()) {
      did_redeem_ = true;
      act(chains, now, 2, [this](chain::MultiChain& ch) {
        submit(ch, banana_.chain_id(), "redeem bob's escrow",
               [this](chain::TxContext& ctx) {
                 banana_.redeem(ctx, secret_.value());
               });
      });
    }
  }

 private:
  contracts::HedgedSwapContract& apricot_;
  contracts::HedgedSwapContract& banana_;
  crypto::Secret secret_;
  bool did_premium_ = false;
  bool did_escrow_ = false;
  bool did_redeem_ = false;

  auto state_tie() { return std::tie(did_premium_, did_escrow_, did_redeem_); }
  friend chain::SnapshotState<HedgedAlice, sim::Party>;
};

class HedgedBob : public chain::SnapshotState<HedgedBob, sim::Party> {
 public:
  HedgedBob(sim::DeviationPlan plan, contracts::HedgedSwapContract& apricot,
            contracts::HedgedSwapContract& banana)
      : chain::SnapshotState<HedgedBob, sim::Party>(kBob, "bob", plan),
        apricot_(apricot),
        banana_(banana) {}

  void step(chain::MultiChain& chains, Tick now) override {
    // Action 0: deposit premium p_b on the apricot contract once Alice's
    // premium is visible on the banana contract.
    if (!did_premium_ && banana_.premium_deposited()) {
      did_premium_ = true;
      act(chains, now, 0, [this](chain::MultiChain& ch) {
        submit(ch, apricot_.chain_id(), "deposit premium",
               [this](chain::TxContext& ctx) {
                 apricot_.deposit_premium(ctx);
               });
      });
    }
    // Action 1: escrow once Alice's principal is escrowed.
    if (!did_escrow_ && apricot_.escrowed()) {
      did_escrow_ = true;
      act(chains, now, 1, [this](chain::MultiChain& ch) {
        submit(ch, banana_.chain_id(), "escrow principal",
               [this](chain::TxContext& ctx) {
                 banana_.escrow_principal(ctx);
               });
      });
    }
    // Action 2: once s is public, redeem Alice's escrow.
    if (!did_redeem_ && banana_.revealed_preimage()) {
      did_redeem_ = true;
      act(chains, now, 2, [this](chain::MultiChain& ch) {
        submit(ch, apricot_.chain_id(), "redeem alice's escrow",
               [this](chain::TxContext& ctx) {
                 apricot_.redeem(ctx, *banana_.revealed_preimage());
               });
      });
    }
  }

 private:
  contracts::HedgedSwapContract& apricot_;
  contracts::HedgedSwapContract& banana_;
  bool did_premium_ = false;
  bool did_escrow_ = false;
  bool did_redeem_ = false;

  auto state_tie() { return std::tie(did_premium_, did_escrow_, did_redeem_); }
  friend chain::SnapshotState<HedgedBob, sim::Party>;
};

}  // namespace

TwoPartyResult run_base_two_party(const TwoPartyConfig& cfg,
                                  sim::DeviationPlan alice,
                                  sim::DeviationPlan bob) {
  const Tick d = cfg.delta;
  chain::MultiChain chains;
  chain::Blockchain& apricot = chains.add_chain("apricot");
  chain::Blockchain& banana = chains.add_chain("banana");

  apricot.ledger_for_setup().mint(chain::Address::party(kAlice), "apricot",
                                  cfg.alice_tokens);
  banana.ledger_for_setup().mint(chain::Address::party(kBob), "banana",
                                 cfg.bob_tokens);

  crypto::Rng rng("two-party-base");
  const crypto::Secret secret = crypto::Secret::random(rng);

  // §5.1: Alice's contract has timelock t_A = 3*Delta, Bob's t_B = 2*Delta.
  auto& alice_c = apricot.deploy<contracts::HtlcContract>(
      contracts::HtlcContract::Params{kAlice, kBob, "apricot",
                                      cfg.alice_tokens, secret.hashlock(),
                                      /*escrow_deadline=*/d,
                                      /*timelock=*/3 * d});
  auto& bob_c = banana.deploy<contracts::HtlcContract>(
      contracts::HtlcContract::Params{kBob, kAlice, "banana", cfg.bob_tokens,
                                      secret.hashlock(),
                                      /*escrow_deadline=*/2 * d,
                                      /*timelock=*/2 * d});

  PayoffTracker tracker(chains, 2);
  BaseAlice a(alice, alice_c, bob_c, secret);
  BaseBob b(bob, bob_c, alice_c);
  sim::Scheduler sched(chains);
  sched.add_party(a);
  sched.add_party(b);
  sched.run_until(3 * d + 2);

  TwoPartyResult r;
  r.swapped = alice_c.redeemed() && bob_c.redeemed();
  r.alice = tracker.delta(chains, kAlice);
  r.bob = tracker.delta(chains, kBob);
  r.alice_lockup = lockup_of(alice_c.funded_at(), alice_c.resolved_at(),
                             alice_c.refunded());
  r.bob_lockup =
      lockup_of(bob_c.funded_at(), bob_c.resolved_at(), bob_c.refunded());
  r.events = chains.all_events();
  return r;
}

struct TwoPartyWorld::Impl {
  TwoPartyConfig cfg;
  /// Private worlds own their chains; bound worlds alias the shared
  /// MultiChain and leave own_chains empty.
  chain::MultiChain own_chains;
  chain::MultiChain* chains = &own_chains;
  bool bound = false;
  PartyId base = 0;  ///< first global party id (0 when private)
  Tick start = 0;    ///< deadline-ladder offset (0 when private)
  contracts::HedgedSwapContract* apricot_c = nullptr;
  contracts::HedgedSwapContract* banana_c = nullptr;
  crypto::Secret secret;
  std::unique_ptr<PayoffTracker> tracker;
  // Persistent actors for the schedule-tree executor (nullptr until the
  // first tree_frame() call; their mutable state rides the snapshot stack).
  std::unique_ptr<HedgedAlice> tree_alice;
  std::unique_ptr<HedgedBob> tree_bob;
  sim::TreeFrame frame;
};

TwoPartyWorld::TwoPartyWorld(const TwoPartyConfig& cfg,
                             chain::TraceMode trace)
    : TwoPartyWorld(cfg, WorldBinding{}, trace) {}

TwoPartyWorld::TwoPartyWorld(const TwoPartyConfig& cfg,
                             const WorldBinding& binding,
                             chain::TraceMode trace)
    : impl_(std::make_unique<Impl>()) {
  Impl& w = *impl_;
  w.cfg = cfg;
  w.bound = binding.bound();
  w.base = binding.party_base;
  w.start = binding.start;
  const Tick d = cfg.delta;
  const Tick t0 = w.start;
  chain::MultiChain& chains = w.bound ? *binding.chains : w.own_chains;
  w.chains = &chains;
  if (!w.bound) chains.set_trace(trace);
  chain::Blockchain& apricot = w.bound ? chains.get_or_add_chain("apricot")
                                       : chains.add_chain("apricot");
  chain::Blockchain& banana = w.bound ? chains.get_or_add_chain("banana")
                                      : chains.add_chain("banana");

  const PartyId alice = w.base + kAlice;
  const PartyId bob = w.base + kBob;
  apricot.ledger_for_setup().mint(chain::Address::party(alice), "apricot",
                                  cfg.alice_tokens);
  banana.ledger_for_setup().mint(chain::Address::party(bob), "banana",
                                 cfg.bob_tokens);
  // Premiums are paid in the escrow chain's native coin: Alice needs
  // p_a + p_b on the banana chain, Bob needs p_b on the apricot chain.
  banana.ledger_for_setup().mint(chain::Address::party(alice),
                                 banana.native(),
                                 cfg.premium_a + cfg.premium_b);
  apricot.ledger_for_setup().mint(chain::Address::party(bob),
                                  apricot.native(), cfg.premium_b);

  crypto::Rng rng(w.bound ? "two-party-hedged:" + binding.tag
                          : std::string("two-party-hedged"));
  impl_->secret = crypto::Secret::random(rng);

  // §5.2 schedule: premiums at Delta / 2*Delta, principals at 3*Delta /
  // 4*Delta, redemptions at t_A = 5*Delta (banana) and t_B = 6*Delta
  // (apricot). Bound instances shift the whole ladder to their arrival.
  impl_->apricot_c = &apricot.deploy<contracts::HedgedSwapContract>(
      contracts::HedgedSwapContract::Params{
          /*principal_owner=*/alice, /*premium_payer=*/bob, "apricot",
          cfg.alice_tokens, cfg.premium_b, impl_->secret.hashlock(),
          /*premium_deadline=*/t0 + 2 * d, /*escrow_deadline=*/t0 + 3 * d,
          /*redemption_deadline=*/t0 + 6 * d});
  impl_->banana_c = &banana.deploy<contracts::HedgedSwapContract>(
      contracts::HedgedSwapContract::Params{
          /*principal_owner=*/bob, /*premium_payer=*/alice, "banana",
          cfg.bob_tokens, cfg.premium_a + cfg.premium_b,
          impl_->secret.hashlock(),
          /*premium_deadline=*/t0 + d, /*escrow_deadline=*/t0 + 4 * d,
          /*redemption_deadline=*/t0 + 5 * d});

  // Shared chains are never checkpointed: the load scheduler owns their
  // lifecycle and worlds bound to them cannot be reset or finalized.
  if (!w.bound) chains.checkpoint();
  impl_->tracker = std::make_unique<PayoffTracker>(chains, w.base, 2);
}

TwoPartyWorld::~TwoPartyWorld() = default;
TwoPartyWorld::TwoPartyWorld(TwoPartyWorld&&) noexcept = default;
TwoPartyWorld& TwoPartyWorld::operator=(TwoPartyWorld&&) noexcept = default;

void TwoPartyWorld::set_environment(const chain::ChainEnvironment& env) {
  impl_->chains->set_environment(env);
}

TwoPartyResult TwoPartyWorld::run(sim::DeviationPlan alice,
                                  sim::DeviationPlan bob) {
  Impl& w = *impl_;
  if (w.bound) {
    throw std::logic_error(
        "TwoPartyWorld::run: bound worlds are driven by the load scheduler");
  }
  w.chains->reset();

  HedgedAlice a(alice, *w.apricot_c, *w.banana_c, w.secret);
  HedgedBob b(bob, *w.apricot_c, *w.banana_c);
  sim::Scheduler sched(*w.chains);
  sched.add_party(a);
  sched.add_party(b);
#ifndef NDEBUG
  // §5.2's deadlines must leave Delta between consecutive scheduled steps
  // or the protocol's tolerance claims are vacuous; debug builds check the
  // ladder on every run (release sweeps skip the redundant pass).
  sched.validate_deadlines(w.cfg.delta);
#endif
  sched.run_until(6 * w.cfg.delta + 2);

  // The run is over: no further submissions are meaningful, and a party
  // (or test) that tries anyway should fail loudly rather than mutate a
  // world whose results were already collected.
  w.chains->finalize_all();
  return tree_collect();
}

sim::TreeFrame& TwoPartyWorld::tree_frame() {
  Impl& w = *impl_;
  if (!w.tree_alice) {
    w.tree_alice = std::make_unique<HedgedAlice>(
        sim::DeviationPlan::conforming(), *w.apricot_c, *w.banana_c, w.secret);
    w.tree_bob = std::make_unique<HedgedBob>(sim::DeviationPlan::conforming(),
                                             *w.apricot_c, *w.banana_c);
    w.tree_alice->set_account_base(w.base);
    w.tree_bob->set_account_base(w.base);
    w.frame.chains = w.chains;
    w.frame.actors = {w.tree_alice.get(), w.tree_bob.get()};
    w.frame.horizon = w.start + 6 * w.cfg.delta + 2;
  }
  return w.frame;
}

void TwoPartyWorld::tree_set_plans(
    const std::vector<sim::DeviationPlan>& plans) {
  impl_->tree_alice->set_plan(plans.at(0));
  impl_->tree_bob->set_plan(plans.at(1));
}

TwoPartyResult TwoPartyWorld::tree_collect() const {
  const Impl& w = *impl_;
  const contracts::HedgedSwapContract& apricot_c = *w.apricot_c;
  const contracts::HedgedSwapContract& banana_c = *w.banana_c;

  TwoPartyResult r;
  r.swapped = apricot_c.redeemed() && banana_c.redeemed();
  r.alice = w.tracker->delta(*w.chains, w.base + kAlice);
  r.bob = w.tracker->delta(*w.chains, w.base + kBob);
  r.alice_lockup = lockup_of(apricot_c.escrowed_at(),
                             apricot_c.principal_resolved_at(),
                             apricot_c.principal_refunded());
  r.bob_lockup = lockup_of(banana_c.escrowed_at(),
                           banana_c.principal_resolved_at(),
                           banana_c.principal_refunded());
  r.events = w.chains->all_events();
  return r;
}

TwoPartyResult run_hedged_two_party(const TwoPartyConfig& cfg,
                                    sim::DeviationPlan alice,
                                    sim::DeviationPlan bob) {
  return TwoPartyWorld(cfg).run(alice, bob);
}

}  // namespace xchain::core
