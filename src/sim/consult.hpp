#pragma once

// Consultation log: which plan coordinates an execution actually read.
//
// The schedule-tree executor (sim/scenario.cpp) dedups and prefix-shares
// runs by the *decisions they consulted*, not by their raw schedule
// index: by determinism, two schedules that agree on every (party,
// ordinal) policy a run reads — and on the engine variant — produce
// identical executions, even if they differ on coordinates the run never
// reached (a dropped escrow makes the redeem ordinal moot, etc.). Each
// executed run records its consultations here, in order; the executor
// builds its memo-trie from the log and diffs a new schedule against the
// last executed run's log to find the first divergent tick to resume
// from.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/deviation.hpp"

namespace xchain::sim {

/// One first-consultation: party `party` read its policy for `ordinal`
/// (answer `pol`) during tick `tick`. Only the first read per (party,
/// ordinal) is logged — the policy is constant within a run, so repeats
/// carry no information.
struct ConsultEntry {
  PartyId party = kNoParty;
  int ordinal = 0;
  ActionPolicy pol{};
  Tick tick = 0;
};

/// Per-run consultation log, owned by the tree executor and shared with
/// every Party of the world via Party::set_consult_log(). Entries are
/// appended in consultation order, so ticks are nondecreasing and any
/// tick-prefix of the log is a prefix of the entry list.
class ConsultLog {
 public:
  const std::vector<ConsultEntry>& entries() const { return entries_; }

  /// Clears the log for a fresh run of a world with `n_parties` parties.
  void begin_run(std::size_t n_parties) {
    entries_.clear();
    seen_.assign(n_parties, 0);
  }

  /// Prepares the log for a run resumed from the start of tick `resume`:
  /// entries recorded before that tick stand (the prefix replays
  /// identically), later ones are dropped and their seen-bits rebuilt.
  void begin_resumed_run(Tick resume) {
    std::size_t kept = 0;
    while (kept < entries_.size() && entries_[kept].tick < resume) ++kept;
    entries_.resize(kept);
    for (auto& bits : seen_) bits = 0;
    for (const ConsultEntry& e : entries_) mark_seen(e.party, e.ordinal);
  }

  /// Records a consultation (first one per (party, ordinal) wins).
  void record(PartyId party, int ordinal, ActionPolicy pol, Tick now) {
    if (ordinal >= 0 && ordinal < 64) {
      const std::uint64_t bit = 1ull << ordinal;
      if (seen_[party] & bit) return;
      seen_[party] |= bit;
    } else {
      // Out-of-range ordinals fall back to a scan; duplicates would only
      // deepen the executor's trie, never corrupt it, but keep the log
      // canonical anyway.
      for (const ConsultEntry& e : entries_) {
        if (e.party == party && e.ordinal == ordinal) return;
      }
    }
    entries_.push_back(ConsultEntry{party, ordinal, pol, now});
  }

 private:
  void mark_seen(PartyId party, int ordinal) {
    if (ordinal >= 0 && ordinal < 64) seen_[party] |= 1ull << ordinal;
  }

  std::vector<ConsultEntry> entries_;
  std::vector<std::uint64_t> seen_;  ///< per-party first-consult bitmask
};

}  // namespace xchain::sim
