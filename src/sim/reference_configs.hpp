#pragma once

#include "core/auction.hpp"
#include "core/bootstrap.hpp"
#include "core/broker.hpp"
#include "core/multi_party.hpp"
#include "core/two_party.hpp"
#include "graph/digraph.hpp"

namespace xchain::sim {

/// Canonical paper-parameter protocol configurations, shared by the
/// scenario-sweep tests and benchmarks so both always audit and measure the
/// same schedule space (the numbers mirror the seed unit-test fixtures:
/// A=100 apricot vs B=50 banana with p_a=2, p_b=1; Figure 3a with uniform
/// p=1; a 10-ticket auction with bids 100/80 and p=2; the §8 broker deal
/// with a 1-coin spread; a 2-round $1M/$1M bootstrap at P=100; a CRR-priced
/// single-rung ladder over $100k/$100k).

inline core::TwoPartyConfig reference_two_party_config() {
  core::TwoPartyConfig cfg;
  cfg.alice_tokens = 100;
  cfg.bob_tokens = 50;
  cfg.premium_a = 2;
  cfg.premium_b = 1;
  cfg.delta = 2;
  return cfg;
}

inline core::MultiPartyConfig reference_multi_party_config(
    graph::Digraph g = graph::Digraph::figure3a()) {
  core::MultiPartyConfig cfg;
  cfg.g = std::move(g);
  cfg.asset_amount = 100;
  cfg.premium_unit = 1;
  cfg.delta = 1;
  cfg.hedged = true;
  return cfg;
}

inline core::AuctionConfig reference_auction_config() {
  core::AuctionConfig cfg;
  cfg.ticket_count = 10;
  cfg.bids = {100, 80};
  cfg.premium_unit = 2;
  cfg.delta = 2;
  cfg.collateral = 150;
  return cfg;
}

inline core::BrokerConfig reference_broker_config() {
  core::BrokerConfig cfg;
  cfg.ticket_count = 10;
  cfg.sale_price = 101;
  cfg.purchase_price = 100;
  cfg.premium_unit = 1;
  cfg.delta = 1;
  return cfg;
}

inline core::BootstrapConfig reference_bootstrap_config(int rounds = 2) {
  core::BootstrapConfig cfg;
  cfg.alice_tokens = 1'000'000;
  cfg.bob_tokens = 1'000'000;
  cfg.factor = 100.0;
  cfg.rounds = rounds;
  cfg.delta = 2;
  return cfg;
}

/// Principals for the CRR-priced ladder: $100k a side, Delta = 2 ticks
/// (the §4 market parameters live in CrrLadderAdapter::Market defaults).
inline core::BootstrapConfig reference_crr_ladder_config() {
  core::BootstrapConfig cfg;
  cfg.alice_tokens = 100'000;
  cfg.bob_tokens = 100'000;
  cfg.rounds = 1;
  cfg.delta = 2;
  return cfg;
}

}  // namespace xchain::sim
