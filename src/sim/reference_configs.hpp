#pragma once

#include "core/auction.hpp"
#include "core/bootstrap.hpp"
#include "core/broker.hpp"
#include "core/multi_party.hpp"
#include "core/two_party.hpp"
#include "graph/digraph.hpp"
#include "sim/registry.hpp"

namespace xchain::sim {

/// Canonical paper-parameter protocol configurations, shared by the
/// scenario-sweep tests and benchmarks so both always audit and measure the
/// same schedule space. Since the protocol-registry redesign these are thin
/// shims over ProtocolRegistry::global() defaults: the canonical numbers
/// live in the registry's ParamSpec declarations (sim/registry.cpp), and
/// tests/registry_campaign_test.cpp pins that they still byte-match the
/// historical structs (A=100 apricot vs B=50 banana with p_a=2, p_b=1;
/// Figure 3a with uniform p=1; a 10-ticket auction with bids 100/80 and
/// p=2; the §8 broker deal with a 1-coin spread; a 2-round $1M/$1M
/// bootstrap at P=100; a CRR-priced single-rung ladder over $100k/$100k).

inline core::TwoPartyConfig reference_two_party_config() {
  return two_party_config_from(ProtocolRegistry::global().defaults("two-party"));
}

inline core::MultiPartyConfig reference_multi_party_config(
    graph::Digraph g = graph::Digraph::figure3a()) {
  return multi_party_config_from(
      ProtocolRegistry::global().defaults("multi-party-fig3a"), std::move(g));
}

inline core::AuctionConfig reference_auction_config() {
  return auction_config_from(
      ProtocolRegistry::global().defaults("auction-open"));
}

inline core::BrokerConfig reference_broker_config() {
  return broker_config_from(ProtocolRegistry::global().defaults("broker"));
}

inline core::BootstrapConfig reference_bootstrap_config(int rounds = 2) {
  ParamSet p = ProtocolRegistry::global().defaults("bootstrap");
  p.set("rounds", std::to_string(rounds));
  return bootstrap_config_from(p);
}

/// Principals for the CRR-priced ladder: $100k a side, Delta = 2 ticks
/// (the §4 market parameters live in the crr-ladder schema defaults,
/// mirroring CrrMarket's).
inline core::BootstrapConfig reference_crr_ladder_config() {
  return crr_principals_from(
      ProtocolRegistry::global().defaults("crr-ladder"));
}

}  // namespace xchain::sim
