#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/payoff.hpp"

namespace xchain::sim {

/// The paper's hedging guarantee (Definition 1) instantiated for one party
/// in one finished run: a conforming party must end no worse off than its
/// earned premium compensation. The protocol adapter fills in the numbers —
/// the audit only compares them against the observed payoff.
struct HedgeBound {
  /// Premium-compensation floor on the party's native-coin delta. 0 for a
  /// party that was never harmed; each locked-and-refunded principal raises
  /// it by the premium the paper awards for that lock-up.
  Amount min_coin_delta = 0;

  /// Coins the party may legitimately spend in exchange for goods (e.g. the
  /// winning bid in the ticket auction). The coin delta is allowed to dip
  /// to `min_coin_delta - spend_allowance` only when `goods_received`.
  Amount spend_allowance = 0;
  bool goods_received = false;
};

/// One party's end-of-run state as seen by the audit.
struct PartyOutcome {
  std::string name;
  bool conforming = true;
  core::PayoffDelta payoff;
  HedgeBound bound;
};

/// A schedule on which the hedging bound failed for a conforming party.
struct Violation {
  std::string schedule;  ///< label of the offending schedule
  std::string party;
  Amount coin_delta = 0;    ///< observed
  Amount required_min = 0;  ///< the floor that was breached
  std::string detail;

  /// True when the loss is attributed to the injected chain faults rather
  /// than any party's deviation: the same schedule re-audits clean on a
  /// faultless twin world (ScenarioRunner::sweep's attribution pass).
  /// Within the fault plan's tolerance envelope this still breaches the
  /// paper's guarantee — the substrate stayed inside the slack the
  /// deadlines are provisioned for — so fault-caused violations keep
  /// failing sweeps; the flag tells the reader which knob to blame.
  bool fault_caused = false;

  std::string str() const;
};

/// Audits one schedule's outcomes against each conforming party's
/// HedgeBound, and checks that native-coin flows are zero-sum across
/// parties when `check_conservation` (premiums only move between parties;
/// contracts never strand coins). Appends any violations to `out` and
/// returns the number of conforming parties audited.
std::size_t audit_schedule(const std::string& schedule_label,
                           const std::vector<PartyOutcome>& outcomes,
                           std::vector<Violation>& out,
                           bool check_conservation = true);

}  // namespace xchain::sim
