#pragma once

// Typed protocol parameters and grid expansion.
//
// The paper's guarantee (Definition 1 and the per-protocol lemmas) is
// quantified over *all* protocol parameters, so the sweep layer must be
// drivable over configuration space, not just deviation-schedule space. A
// ParamSet is a protocol's declared parameter schema — every parameter has
// a type, a default, optional bounds, and a description — plus the current
// values; assignment is always by (key, string-value) pair so campaign
// specs, CLI flags, and JSON all speak the same language, and every
// malformed assignment fails with a descriptive ParamError, never UB. A
// ParamGrid is a set of axes (`key=a,b,c`) expanded into the cross product
// of ParamSets, with an explicit cap and truncation report so exponential
// grids degrade loudly instead of hanging.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace xchain::sim {

/// Any malformed parameter operation: unknown key, unparsable value, or a
/// value outside the declared bounds. The message names the parameter and
/// what was expected.
class ParamError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Parameter value type. kInt and kAmount share integer storage; the
/// distinction documents intent (counts vs token amounts) in --list output.
enum class ParamType { kInt, kAmount, kDouble, kString };

std::string param_type_name(ParamType t);

/// One declared parameter: type, default, optional numeric bounds, and a
/// one-line description (surfaced by `xchain-sweep --list`).
struct ParamSpec {
  std::string key;
  ParamType type = ParamType::kInt;
  std::string description;

  // Defaults (the one matching `type` is authoritative).
  std::int64_t int_default = 0;
  double double_default = 0.0;
  std::string string_default;

  // Inclusive numeric bounds; ignored for kString.
  bool has_min = false, has_max = false;
  double min = 0.0, max = 0.0;

  static ParamSpec integer(std::string key, std::int64_t def,
                           std::string description);
  static ParamSpec amount(std::string key, Amount def,
                          std::string description);
  static ParamSpec real(std::string key, double def, std::string description);
  static ParamSpec text(std::string key, std::string def,
                        std::string description);

  /// Builder-style inclusive bounds (numeric types only).
  ParamSpec& at_least(double lo);
  ParamSpec& at_most(double hi);
  ParamSpec& between(double lo, double hi);

  /// Human-readable default for --list output.
  std::string default_str() const;
  /// "[lo, hi]" / "[lo, +inf)" / "" when unbounded.
  std::string bounds_str() const;
};

/// A schema-checked set of parameter values. Constructed from a protocol's
/// declared ParamSpecs (each value starts at its default); `set()` parses
/// and validates one assignment. All getters throw ParamError on an
/// unknown key, so a typo'd read is as loud as a typo'd write.
class ParamSet {
 public:
  ParamSet() = default;
  explicit ParamSet(std::vector<ParamSpec> specs);

  /// Parses `value` according to the key's declared type and bounds.
  /// Throws ParamError (naming the key, the expectation, and — for an
  /// unknown key — the valid keys) on any mismatch.
  void set(const std::string& key, const std::string& value);

  std::int64_t get_int(const std::string& key) const;
  Amount get_amount(const std::string& key) const;
  double get_double(const std::string& key) const;
  const std::string& get_string(const std::string& key) const;

  bool has(const std::string& key) const;
  const std::vector<ParamSpec>& specs() const { return specs_; }

  /// True iff `key` was explicitly set() since construction.
  bool is_set(const std::string& key) const;

  /// "k=v" pairs for every non-default value, in declaration order —
  /// the campaign report's per-configuration label ("" when all-default).
  std::string overrides_str() const;

  /// Current value of `key` rendered as a string (default or override).
  std::string value_str(const std::string& key) const;

 private:
  struct Slot {
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
    bool overridden = false;
  };

  std::size_t index_of(const std::string& key) const;

  std::vector<ParamSpec> specs_;
  std::vector<Slot> values_;
};

/// Splits "a, b,c" into trimmed items. Empty items ("3,", "3,,5", "")
/// throw ParamError naming `what` — a stray comma is a typo to surface,
/// not a shorter list to sweep. Shared by grid axes and the auction bid
/// list so every CSV in the layer has the same strictness.
std::vector<std::string> split_csv(const std::string& what,
                                   const std::string& csv);

/// One grid axis: every value `key` takes across the campaign.
struct GridAxis {
  std::string key;
  std::vector<std::string> values;
};

/// The expansion of a ParamGrid: one ParamSet per grid point, plus an
/// explicit record of truncation so capped campaigns never silently pose
/// as exhaustive ones.
struct GridExpansion {
  std::vector<ParamSet> points;
  std::size_t total_points = 0;  ///< full cross-product size
  bool truncated() const { return points.size() < total_points; }
  /// "" when complete; one line naming the cap and the dropped count.
  std::string truncation_report() const;
};

/// A cross product of per-key value lists over one protocol's ParamSet.
/// Axes added for the same key merge (their value lists concatenate), so
/// repeated `--grid k=...` flags compose.
class ParamGrid {
 public:
  /// Adds axis `key` = `values` (non-empty). Validation against a schema
  /// happens at expand() time, when the schema is known.
  void add_axis(const std::string& key, std::vector<std::string> values);

  /// Parses "a,b,c" into an axis for `key`.
  void add_axis_csv(const std::string& key, const std::string& csv);

  bool empty() const { return axes_.empty(); }
  const std::vector<GridAxis>& axes() const { return axes_; }

  /// Expands the cross product over `defaults` (each point = defaults +
  /// one value per axis), in row-major order with the FIRST axis varying
  /// slowest. Every value is validated through ParamSet::set, so a bad
  /// grid fails before any sweep runs. At most `cap` points are
  /// materialized; the full size is reported in GridExpansion.
  GridExpansion expand(const ParamSet& defaults, std::size_t cap = 4096) const;

 private:
  std::vector<GridAxis> axes_;
};

}  // namespace xchain::sim
