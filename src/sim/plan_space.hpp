#pragma once

#include <functional>
#include <vector>

#include "sim/deviation.hpp"

namespace xchain::sim {

/// The plan space for a role with `actions` protocol actions: conforming
/// plus every distinct halting point halt@0..halt@(actions-1). With
/// `include_full_halt`, also appends halt@actions — behaviourally identical
/// to conforming (the party performs its whole script), kept by sweeps that
/// want a uniform halting encoding (the model checker's historical space).
inline std::vector<DeviationPlan> plan_space(int actions,
                                             bool include_full_halt = false) {
  std::vector<DeviationPlan> plans{DeviationPlan::conforming()};
  for (int k = 0; k < actions + (include_full_halt ? 1 : 0); ++k) {
    plans.push_back(DeviationPlan::halt_after(k));
  }
  return plans;
}

/// Iterates the cartesian product of per-role plan spaces, odometer-style
/// with role 0 as the least significant digit. Shared by the model checker
/// (src/analysis) and the scenario-sweep engine (src/sim/scenario.hpp) so
/// the schedule space is enumerated one way everywhere.
inline void for_each_plan_combination(
    const std::vector<std::vector<DeviationPlan>>& spaces,
    const std::function<void(const std::vector<DeviationPlan>&)>& fn) {
  std::vector<std::size_t> index(spaces.size(), 0);
  while (true) {
    std::vector<DeviationPlan> combo;
    combo.reserve(spaces.size());
    for (std::size_t i = 0; i < spaces.size(); ++i) {
      combo.push_back(spaces[i][index[i]]);
    }
    fn(combo);
    std::size_t i = 0;
    for (; i < spaces.size(); ++i) {
      if (++index[i] < spaces[i].size()) break;
      index[i] = 0;
    }
    if (i == spaces.size()) return;
  }
}

}  // namespace xchain::sim
