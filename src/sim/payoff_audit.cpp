#include "sim/payoff_audit.hpp"

namespace xchain::sim {

std::string Violation::str() const {
  // Append-only string building (GCC 12 -Wrestrict, PR 105651).
  std::string out = schedule;
  out += ": ";
  out += party;
  out += " ended at ";
  out += std::to_string(coin_delta);
  out += " coins, floor ";
  out += std::to_string(required_min);
  if (!detail.empty()) {
    out += " (";
    out += detail;
    out += ')';
  }
  if (fault_caused) out += " [chain-fault]";
  return out;
}

std::size_t audit_schedule(const std::string& schedule_label,
                           const std::vector<PartyOutcome>& outcomes,
                           std::vector<Violation>& out,
                           bool check_conservation) {
  std::size_t audited = 0;
  Amount total = 0;
  for (const PartyOutcome& o : outcomes) {
    total += o.payoff.coin_delta;
    if (!o.conforming) continue;
    ++audited;

    Amount floor = o.bound.min_coin_delta;
    if (o.bound.goods_received) {
      floor -= o.bound.spend_allowance;
    }
    if (o.payoff.coin_delta < floor) {
      out.push_back({schedule_label, o.name, o.payoff.coin_delta, floor,
                     o.bound.goods_received
                         ? "spent more than allowance over premium floor"
                         : "lost more than earned premiums"});
    } else if (!o.bound.goods_received && o.payoff.coin_delta < 0) {
      // A conforming party that received nothing must never end coin-
      // negative, whatever floor the adapter computed (defence in depth
      // against adapters under-reporting entitlements).
      out.push_back({schedule_label, o.name, o.payoff.coin_delta, 0,
                     "coin-negative without goods"});
    }
  }
  if (check_conservation && total != 0) {
    out.push_back({schedule_label, "<all>", total, 0,
                   "native-coin flows not zero-sum across parties"});
  }
  return audited;
}

}  // namespace xchain::sim
