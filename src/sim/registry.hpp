#pragma once

// Protocol registry: stable names -> ProtocolAdapter factories.
//
// Every protocol family the sweep engine covers registers itself here under
// a stable name (`two-party`, `multi-party-ring`, `multi-party-fig3a`,
// `auction-open`, `auction-sealed`, `broker`, `bootstrap`, `crr-ladder`,
// `bridge-transfer`, `bridge-account-create`) together with its declared
// ParamSet schema. Campaign specs, the
// `xchain-sweep` CLI, tests, and benches all resolve protocols through the
// registry, so a new ring size or premium split is a parameter assignment,
// not a C++ edit in three places. The reference configurations of
// `sim/reference_configs.hpp` are thin shims over the registry defaults —
// the canonical numbers live in the ParamSpec defaults declared here.

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/auction.hpp"
#include "core/bootstrap.hpp"
#include "core/broker.hpp"
#include "core/multi_party.hpp"
#include "core/two_party.hpp"
#include "graph/digraph.hpp"
#include "sim/param.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {

/// Unknown protocol name (the message lists the registered names).
class RegistryError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// One registered protocol: its stable name, a one-line description, its
/// declared parameter schema (with the canonical reference defaults), and
/// the factory that instantiates an adapter from a validated ParamSet.
struct ProtocolInfo {
  std::string name;
  std::string description;
  ParamSet defaults;
  std::function<std::unique_ptr<ProtocolAdapter>(const ParamSet&)> factory;
};

/// Name -> factory map over every sweepable protocol. `global()` holds the
/// built-in families; tests may build private registries to exercise
/// campaign plumbing against synthetic protocols. Lookups throw
/// RegistryError with the registered names on a miss — never UB.
class ProtocolRegistry {
 public:
  /// The process-wide registry with all built-in protocols registered.
  /// Built on first use (thread-safe); immutable afterwards.
  static const ProtocolRegistry& global();

  /// Registers a protocol; throws RegistryError on a duplicate name.
  void add(ProtocolInfo info);

  bool contains(const std::string& name) const;
  const ProtocolInfo& info(const std::string& name) const;

  /// A fresh copy of `name`'s schema, every value at its default.
  ParamSet defaults(const std::string& name) const;

  /// Instantiates `name` from `params` (must have been derived from
  /// defaults(name), so every key is schema-checked).
  std::unique_ptr<ProtocolAdapter> make(const std::string& name,
                                        const ParamSet& params) const;
  /// Instantiates `name` from its defaults.
  std::unique_ptr<ProtocolAdapter> make(const std::string& name) const;

  /// Registered names, in registration order.
  std::vector<std::string> names() const;
  const std::vector<ProtocolInfo>& protocols() const { return protocols_; }

 private:
  std::vector<ProtocolInfo> protocols_;
};

// Core-config builders from validated ParamSets — the bridge between the
// registry's declarative schemas and the engines' config structs. Exposed
// so reference_configs.hpp (and any caller that needs the struct rather
// than the adapter) derives the exact same numbers from the same defaults.
core::TwoPartyConfig two_party_config_from(const ParamSet& p);
core::MultiPartyConfig multi_party_config_from(const ParamSet& p,
                                               graph::Digraph g);
core::AuctionConfig auction_config_from(const ParamSet& p);
core::BrokerConfig broker_config_from(const ParamSet& p);
core::BootstrapConfig bootstrap_config_from(const ParamSet& p);
/// Shared by both bridge variants; rejects quorum > n_witnesses (an
/// unreachable attestation quorum is a configuration error, not a
/// sore-loser attack) with ParamError.
core::BridgeConfig bridge_config_from(const ParamSet& p,
                                      core::BridgeVariant variant);
/// Principal/delta half of the crr-ladder schema (premium rungs are priced
/// by the CRR market below).
core::BootstrapConfig crr_principals_from(const ParamSet& p);
CrrMarket crr_market_from(const ParamSet& p);

}  // namespace xchain::sim
