#pragma once

// Bounded adversary-strategy spaces for the scenario sweep.
//
// The paper's guarantee (Definition 1) quantifies over *any* sore-loser
// deviation. Halting is only one axis of that space: a party can also act
// *late* — timely-but-last-moment (still compliant: every contract deadline
// is inclusive and provisioned with >= Δ of slack per scheduled step), or
// just past a deadline (the timing-griefing move cross-chain MEV work
// highlights). A StrategySpace names which per-ordinal action choices the
// plan-space enumerator may combine:
//
//   halt-only      {Perform} plus the suffix-of-Drops halt plans — exactly
//                  the historical schedule space, byte-identical reports.
//   timely-delays  adds Delay(d) for d in {Δ-1} (empty when Δ == 1): the
//                  largest delay still inside the synchrony bound. These
//                  parties remain conforming and MUST sweep clean.
//   late-delays    adds Delay(d) for d in {Δ-1, Δ, 2Δ}: delays >= Δ step
//                  outside the timing model, so such plans are treated as
//                  deviations — their delayed submissions may land past a
//                  contract deadline, and the audit then expects the
//                  counterparties to be premium-compensated, exactly as for
//                  a halt.
//
// Delay menus are derived per protocol instance from its configured Δ
// (ProtocolAdapter::delta()), so "one tick before the bound" means the same
// thing whatever delta a campaign grid assigns. Enumerated spaces are
// bounded like ParamGrid expansions: an explicit per-party plan cap plus a
// per-sweep schedule budget, with truncation reported loudly in the sweep
// report instead of silently posing as exhaustive.

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/deviation.hpp"

namespace xchain::sim {

/// Which adversary strategies a sweep enumerates, plus the bounds that keep
/// the enlarged spaces tractable.
struct StrategySpace {
  enum class Kind { kHaltOnly, kTimelyDelays, kLateDelays };

  Kind kind = Kind::kHaltOnly;

  /// Cap on one party's enumerated plan list (halt-only spaces are never
  /// capped — back-compat). Truncation is reported in the sweep report.
  std::size_t max_plans_per_party = 64;

  /// Budget on the whole cross-product schedule space of one sweep. When
  /// the per-party lists would multiply past this, they are trimmed to the
  /// largest uniform per-party size that fits (halt plans sort first, so
  /// halt coverage survives trimming longest). Reported as truncation.
  std::size_t max_schedules = 20000;

  bool halt_only() const { return kind == Kind::kHaltOnly; }

  static const char* kind_name(Kind k) {
    switch (k) {
      case Kind::kHaltOnly: return "halt-only";
      case Kind::kTimelyDelays: return "timely-delays";
      default: return "late-delays";
    }
  }
  std::string name() const { return kind_name(kind); }

  /// Parses a `--strategies=` value ("halt-only" / "timely-delays" /
  /// "late-delays"); nullopt on anything else.
  static std::optional<StrategySpace> parse(const std::string& name) {
    for (const Kind k : {Kind::kHaltOnly, Kind::kTimelyDelays,
                         Kind::kLateDelays}) {
      if (name == kind_name(k)) return StrategySpace{k};
    }
    return std::nullopt;
  }

  /// The per-ordinal delay menu for a protocol with synchrony bound
  /// `delta`, in ticks: {Δ-1} for timely, {Δ-1, Δ, 2Δ} for late, zeros
  /// removed (a 0-tick delay is Perform). Empty for halt-only — and for
  /// timely-delays at Δ == 1, where no non-zero delay stays inside the
  /// bound.
  std::vector<Tick> delay_menu(Tick delta) const {
    std::vector<Tick> menu;
    if (kind == Kind::kHaltOnly) return menu;
    if (delta > 1) menu.push_back(delta - 1);
    if (kind == Kind::kLateDelays) {
      menu.push_back(delta);
      menu.push_back(2 * delta);
    }
    return menu;
  }
};

/// One party's enumerated plan list plus the size the list would have had
/// uncapped (saturating) — the ParamGrid-style loud-truncation pair.
struct PartyPlanSpace {
  std::vector<DeviationPlan> plans;
  std::size_t full_size = 0;

  bool truncated() const { return plans.size() < full_size; }
};

/// Generic per-party plan space for a role with `actions` scheduled-action
/// ordinals under `space`, capped at `cap` plans. Enumeration order (which
/// caps therefore trim from the back):
///   1. conform, halt@0 .. halt@(actions-1)   — the historical list;
///   2. single-modification plans: each ordinal delayed by each menu value
///      (ordinal-major), then each non-suffix single drop;
///   3. multi-modification combinations, odometer-style with ordinal 0 as
///      the least significant digit over {Perform, Delay(menu...), Drop},
///      skipping plans already emitted by 1-2 (pure halt patterns and
///      single modifications).
/// The uncapped size of this space is (|menu| + 2)^actions.
inline PartyPlanSpace party_plan_space(
    int actions, Tick delta, const StrategySpace& space,
    std::size_t cap = std::numeric_limits<std::size_t>::max()) {
  PartyPlanSpace out;
  const std::vector<Tick> menu = space.delay_menu(delta);
  const std::size_t choices = menu.size() + 2;  // Perform, delays..., Drop

  // Uncapped size: halt-only spaces are 1 + actions; delay spaces are the
  // full per-ordinal cross product (which the halt plans embed).
  if (menu.empty()) {
    out.full_size = 1 + static_cast<std::size_t>(actions);
  } else {
    out.full_size = 1;
    for (int a = 0; a < actions; ++a) {
      if (out.full_size >
          std::numeric_limits<std::size_t>::max() / choices) {
        out.full_size = std::numeric_limits<std::size_t>::max();
        break;
      }
      out.full_size *= choices;
    }
  }

  const auto push = [&](DeviationPlan plan) {
    if (out.plans.size() >= cap) return false;
    out.plans.push_back(std::move(plan));
    return true;
  };

  // Layer 1: the historical halt-only list.
  if (!push(DeviationPlan::conforming())) return out;
  for (int k = 0; k < actions; ++k) {
    if (!push(DeviationPlan::halt_after(k))) return out;
  }
  if (menu.empty() || actions == 0) return out;

  // Layer 2: single modifications.
  for (int o = 0; o < actions; ++o) {
    for (const Tick d : menu) {
      if (!push(DeviationPlan::conforming().delayed(o, d))) return out;
    }
  }
  // A lone drop of the LAST ordinal replays halt@(actions-1); skip it.
  for (int o = 0; o + 1 < actions; ++o) {
    if (!push(DeviationPlan::conforming().dropped(o))) return out;
  }

  // Layer 3: multi-modification combinations. Digits per ordinal:
  // 0 = Perform, 1..|menu| = Delay(menu[digit-1]), |menu|+1 = Drop.
  std::vector<std::size_t> digit(static_cast<std::size_t>(actions), 0);
  while (true) {
    // Advance the odometer (ordinal 0 least significant).
    std::size_t i = 0;
    for (; i < digit.size(); ++i) {
      if (++digit[i] < choices) break;
      digit[i] = 0;
    }
    if (i == digit.size()) break;

    int mods = 0;
    for (const std::size_t dg : digit) mods += dg != 0;
    if (mods < 2) continue;  // layer 2 (or conform) already emitted these

    // Pure perform-prefix + drop-suffix patterns are the halt plans.
    bool halt_style = true;
    bool seen_drop = false;
    for (const std::size_t dg : digit) {
      if (dg == choices - 1) {
        seen_drop = true;
      } else if (dg != 0 || seen_drop) {
        halt_style = false;
        break;
      }
    }
    if (halt_style) continue;

    DeviationPlan plan = DeviationPlan::conforming();
    for (int o = 0; o < actions; ++o) {
      const std::size_t dg = digit[static_cast<std::size_t>(o)];
      if (dg == 0) continue;
      plan = dg == choices - 1
                 ? plan.dropped(o)
                 : plan.delayed(o, menu[dg - 1]);
    }
    if (!push(std::move(plan))) return out;
  }
  return out;
}

}  // namespace xchain::sim
