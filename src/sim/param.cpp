#include "sim/param.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace xchain::sim {

namespace {

std::string join_keys(const std::vector<ParamSpec>& specs) {
  std::string out;
  for (const ParamSpec& s : specs) {
    if (!out.empty()) out += ", ";
    out += s.key;
  }
  return out.empty() ? "<none>" : out;
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
    throw ParamError("param '" + key + "': '" + value +
                     "' is not an integer");
  }
  return static_cast<std::int64_t>(v);
}

double parse_double(const std::string& key, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v)) {
    throw ParamError("param '" + key + "': '" + value +
                     "' is not a finite number");
  }
  return v;
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Renders doubles compactly but distinctly: %.10g keeps enough precision
/// that distinct grid values get distinct labels (and tiny values render
/// as "1e-07", not a truncated "0").
std::string double_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

std::string param_type_name(ParamType t) {
  switch (t) {
    case ParamType::kInt: return "int";
    case ParamType::kAmount: return "amount";
    case ParamType::kDouble: return "double";
    case ParamType::kString: return "string";
  }
  return "?";
}

ParamSpec ParamSpec::integer(std::string key, std::int64_t def,
                             std::string description) {
  ParamSpec s;
  s.key = std::move(key);
  s.type = ParamType::kInt;
  s.int_default = def;
  s.description = std::move(description);
  return s;
}

ParamSpec ParamSpec::amount(std::string key, Amount def,
                            std::string description) {
  ParamSpec s = integer(std::move(key), def, std::move(description));
  s.type = ParamType::kAmount;
  return s;
}

ParamSpec ParamSpec::real(std::string key, double def,
                          std::string description) {
  ParamSpec s;
  s.key = std::move(key);
  s.type = ParamType::kDouble;
  s.double_default = def;
  s.description = std::move(description);
  return s;
}

ParamSpec ParamSpec::text(std::string key, std::string def,
                          std::string description) {
  ParamSpec s;
  s.key = std::move(key);
  s.type = ParamType::kString;
  s.string_default = std::move(def);
  s.description = std::move(description);
  return s;
}

ParamSpec& ParamSpec::at_least(double lo) {
  has_min = true;
  min = lo;
  return *this;
}

ParamSpec& ParamSpec::at_most(double hi) {
  has_max = true;
  max = hi;
  return *this;
}

ParamSpec& ParamSpec::between(double lo, double hi) {
  return at_least(lo).at_most(hi);
}

std::string ParamSpec::default_str() const {
  switch (type) {
    case ParamType::kInt:
    case ParamType::kAmount: return std::to_string(int_default);
    case ParamType::kDouble: return double_str(double_default);
    case ParamType::kString: return string_default;
  }
  return "";
}

std::string ParamSpec::bounds_str() const {
  if (type == ParamType::kString || (!has_min && !has_max)) return "";
  const std::string lo = has_min ? double_str(min) : "-inf";
  const std::string hi = has_max ? double_str(max) : "+inf";
  return (has_min ? "[" : "(") + lo + ", " + hi + (has_max ? "]" : ")");
}

ParamSet::ParamSet(std::vector<ParamSpec> specs) : specs_(std::move(specs)) {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    for (std::size_t j = i + 1; j < specs_.size(); ++j) {
      if (specs_[i].key == specs_[j].key) {
        throw ParamError("duplicate param spec '" + specs_[i].key + "'");
      }
    }
  }
  values_.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    values_[i].i = specs_[i].int_default;
    values_[i].d = specs_[i].double_default;
    values_[i].s = specs_[i].string_default;
  }
}

std::size_t ParamSet::index_of(const std::string& key) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].key == key) return i;
  }
  throw ParamError("unknown param '" + key + "' (valid: " +
                   join_keys(specs_) + ")");
}

bool ParamSet::has(const std::string& key) const {
  for (const ParamSpec& s : specs_) {
    if (s.key == key) return true;
  }
  return false;
}

bool ParamSet::is_set(const std::string& key) const {
  return values_[index_of(key)].overridden;
}

void ParamSet::set(const std::string& key, const std::string& value) {
  const std::size_t i = index_of(key);
  const ParamSpec& spec = specs_[i];
  Slot& slot = values_[i];
  switch (spec.type) {
    case ParamType::kInt:
    case ParamType::kAmount: {
      const std::int64_t v = parse_int(key, value);
      if ((spec.has_min && static_cast<double>(v) < spec.min) ||
          (spec.has_max && static_cast<double>(v) > spec.max)) {
        throw ParamError("param '" + key + "': " + value +
                         " is outside bounds " + spec.bounds_str());
      }
      slot.i = v;
      break;
    }
    case ParamType::kDouble: {
      const double v = parse_double(key, value);
      if ((spec.has_min && v < spec.min) || (spec.has_max && v > spec.max)) {
        throw ParamError("param '" + key + "': " + value +
                         " is outside bounds " + spec.bounds_str());
      }
      slot.d = v;
      break;
    }
    case ParamType::kString:
      slot.s = value;
      break;
  }
  slot.overridden = true;
}

std::int64_t ParamSet::get_int(const std::string& key) const {
  const std::size_t i = index_of(key);
  if (specs_[i].type != ParamType::kInt &&
      specs_[i].type != ParamType::kAmount) {
    throw ParamError("param '" + key + "' is " +
                     param_type_name(specs_[i].type) + ", not int");
  }
  return values_[i].i;
}

Amount ParamSet::get_amount(const std::string& key) const {
  return static_cast<Amount>(get_int(key));
}

double ParamSet::get_double(const std::string& key) const {
  const std::size_t i = index_of(key);
  if (specs_[i].type != ParamType::kDouble) {
    throw ParamError("param '" + key + "' is " +
                     param_type_name(specs_[i].type) + ", not double");
  }
  return values_[i].d;
}

const std::string& ParamSet::get_string(const std::string& key) const {
  const std::size_t i = index_of(key);
  if (specs_[i].type != ParamType::kString) {
    throw ParamError("param '" + key + "' is " +
                     param_type_name(specs_[i].type) + ", not string");
  }
  return values_[i].s;
}

std::string ParamSet::value_str(const std::string& key) const {
  const std::size_t i = index_of(key);
  switch (specs_[i].type) {
    case ParamType::kInt:
    case ParamType::kAmount: return std::to_string(values_[i].i);
    case ParamType::kDouble: return double_str(values_[i].d);
    case ParamType::kString: return values_[i].s;
  }
  return "";
}

std::string ParamSet::overrides_str() const {
  std::string out;
  for (const ParamSpec& spec : specs_) {
    if (!is_set(spec.key)) continue;
    if (!out.empty()) out += " ";
    out += spec.key + "=" + value_str(spec.key);
  }
  return out;
}

std::string GridExpansion::truncation_report() const {
  if (!truncated()) return "";
  return "grid truncated: " + std::to_string(total_points) +
         " points exceed the cap, only the first " +
         std::to_string(points.size()) + " expanded";
}

void ParamGrid::add_axis(const std::string& key,
                         std::vector<std::string> values) {
  if (values.empty()) {
    throw ParamError("grid axis '" + key + "' has no values");
  }
  for (GridAxis& axis : axes_) {
    if (axis.key == key) {
      axis.values.insert(axis.values.end(),
                         std::make_move_iterator(values.begin()),
                         std::make_move_iterator(values.end()));
      return;
    }
  }
  axes_.push_back({key, std::move(values)});
}

std::vector<std::string> split_csv(const std::string& what,
                                   const std::string& csv) {
  std::vector<std::string> values;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = trim(
        csv.substr(start, comma == std::string::npos ? comma : comma - start));
    if (item.empty()) {
      throw ParamError("'" + what + "': empty item in value list '" + csv +
                       "' (want e.g. a,b,c)");
    }
    values.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

void ParamGrid::add_axis_csv(const std::string& key, const std::string& csv) {
  add_axis(key, split_csv("grid axis " + key, csv));
}

GridExpansion ParamGrid::expand(const ParamSet& defaults,
                                std::size_t cap) const {
  // Validate every axis value up front: a capped expansion must still
  // reject a bad value that only the truncated tail would have reached.
  for (const GridAxis& axis : axes_) {
    ParamSet probe = defaults;
    for (const std::string& value : axis.values) {
      probe.set(axis.key, value);
    }
  }

  GridExpansion out;
  out.total_points = 1;
  for (const GridAxis& axis : axes_) {
    // Overflow-safe product: grids are user input.
    if (out.total_points >
        std::numeric_limits<std::size_t>::max() / axis.values.size()) {
      throw ParamError("grid size overflows");
    }
    out.total_points *= axis.values.size();
  }

  const std::size_t n = std::min(out.total_points, cap);
  out.points.reserve(n);
  // Row-major with the first axis varying slowest, mirroring the order the
  // axes were declared — campaign reports stay in spec order.
  std::vector<std::size_t> idx(axes_.size(), 0);
  for (std::size_t p = 0; p < n; ++p) {
    ParamSet point = defaults;
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      point.set(axes_[a].key, axes_[a].values[idx[a]]);
    }
    out.points.push_back(std::move(point));
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++idx[a] < axes_[a].values.size()) break;
      idx[a] = 0;
    }
  }
  return out;
}

}  // namespace xchain::sim
