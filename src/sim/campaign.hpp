#pragma once

// Declarative sweep campaigns: many protocol configurations, one run.
//
// A CampaignSpec lists (protocol name, fixed overrides, parameter grid)
// entries; Campaign::run() resolves every entry through a ProtocolRegistry,
// expands each grid into its cross product of ParamSets (capped, with an
// explicit truncation report), runs the full deviation-schedule sweep on
// every resulting configuration, and aggregates a CampaignReport whose
// per-configuration order is deterministic — entry order, then grid
// row-major order — whatever the worker-thread count. This is the
// substrate the `xchain-sweep` CLI, the CI campaign artifact, and future
// fuzzing/scaling work all drive through: the paper's guarantee is
// quantified over all protocol parameters, and a campaign is how a slice
// of that quantifier gets audited in one command.

#include <cstddef>
#include <string>
#include <vector>

#include "sim/param.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {

/// One campaign line: a registered protocol, fixed parameter overrides
/// (applied to every grid point), and a grid of swept axes (empty grid =
/// the single overridden-defaults configuration).
struct CampaignEntry {
  std::string protocol;
  std::vector<std::pair<std::string, std::string>> overrides;
  ParamGrid grid;
};

/// What to run: entries, sweep options shared by every configuration, and
/// the per-entry grid-expansion cap.
struct CampaignSpec {
  std::vector<CampaignEntry> entries;
  SweepOptions sweep;
  std::size_t max_configs_per_entry = 4096;

  /// Chain environment (fault plan + party resilience policy) installed on
  /// every configuration's adapter before its sweep — the `--faults=` /
  /// `--resilience=` axis. Inactive by default: campaigns without faults
  /// produce byte-identical reports and JSON artifacts to builds that
  /// predate the fault layer.
  chain::ChainEnvironment environment;
};

/// One configuration's sweep outcome. `protocol` is the registry name;
/// `params` the non-default assignments ("" = pure defaults); the nested
/// SweepReport carries the adapter-level protocol label, violations, and
/// any strategy-space truncation notices.
struct ConfigResult {
  std::string protocol;
  std::string params;
  SweepReport report;

  /// "name[params]: N schedules, ..." — one line, campaign-report form.
  std::string line() const;
};

/// One configuration's dry-run row: how many schedules a sweep WOULD run.
struct DryRunConfig {
  std::string protocol;
  std::string params;
  std::size_t schedules = 0;

  std::string line() const;
};

/// What `xchain-sweep --dry-run` prints: per-configuration schedule counts
/// (plan-space size after the max-deviators filter) without running any.
struct DryRunReport {
  std::vector<DryRunConfig> configs;
  /// Grid-expansion truncation notices, as in CampaignReport.
  std::vector<std::string> truncations;

  std::size_t total_schedules() const;
  std::string str() const;
};

/// Aggregate of a whole campaign, in deterministic configuration order.
struct CampaignReport {
  std::vector<ConfigResult> configs;
  /// Truncation notices: capped grids (one per affected entry) plus any
  /// strategy-space truncations, prefixed with their configuration.
  std::vector<std::string> truncations;
  /// The adversary-strategy space every configuration was swept with —
  /// recorded here so serializers can never mislabel a report's coverage.
  StrategySpace strategies;
  /// The chain environment every configuration ran under (inactive when
  /// the campaign injected no faults); campaign_json only emits the fault
  /// fields when active, keeping fault-free artifacts byte-identical.
  chain::ChainEnvironment environment;
  /// Worker threads the campaign actually used.
  unsigned workers = 1;

  std::size_t configurations() const { return configs.size(); }
  std::size_t total_schedules() const;
  std::size_t total_conforming_audited() const;
  std::size_t total_violations() const;
  /// Executor statistics summed over every configuration (see SweepReport:
  /// brute-force sweeps report nodes_executed == schedules and zero dedup
  /// hits, tree sweeps report the shared-prefix savings).
  std::size_t total_nodes_executed() const;
  std::size_t total_schedules_covered() const;
  std::size_t total_dedup_hits() const;
  /// Violations the attribution pass blamed on injected chain faults
  /// (always 0 when the environment is inactive).
  std::size_t total_fault_caused() const;
  bool ok() const { return total_violations() == 0; }

  /// One line per configuration plus a totals line (and any truncation
  /// notices); violations are detailed under their configuration's line.
  std::string str() const;
};

/// Build-provenance stamp for campaign JSON artifacts — the same fields
/// BENCH_scenario_sweep.json carries, so per-commit CI artifacts from both
/// pipelines are attributable the same way.
struct CampaignStamp {
  std::string git_commit = "unknown";
  std::string build_type = "unknown";
  std::string compiler = "unknown";
};

/// Serializes a report (plus stamp and hardware_threads) as JSON. Schema:
///   { "benchmark": "campaign", "git_commit": ..., "build_type": ...,
///     "compiler": ..., "hardware_threads": N, "strategies": "halt-only" |
///     "timely-delays" | "late-delays", "configurations": N,
///     "schedules_run": N, "conforming_audited": N, "nodes_executed": N,
///     "schedules_covered": N, "dedup_hits": N, "violations": N,
///     "truncations": ["..."],
///     "configs": [ {"protocol": ..., "params": ..., "adapter": ...,
///                   "schedules": N, "conforming_audited": N,
///                   "violations": N, "violation_details": ["..."]} ] }
/// `strategies` names the report's swept StrategySpace (delay menus and
/// caps are documented in sim/strategy_space.hpp, `xchain-sweep --list`).
/// When the campaign's chain environment is active the artifact addition-
/// ally carries top-level "faults" / "resilience" strings, a top-level
/// "fault_caused" total, and a per-config "fault_caused" count; all of
/// them are omitted for fault-free campaigns so existing artifacts keep
/// their exact bytes.
std::string campaign_json(const CampaignReport& report,
                          const CampaignStamp& stamp = {});

/// Expands and runs one campaign. Configurations are distributed over
/// `spec.sweep.threads` workers (0 = one per hardware thread), each worker
/// sweeping whole configurations serially with its own registry-built
/// adapter — worker threads are reused across configurations instead of
/// being respawned per sweep. A single-configuration campaign degrades to
/// one sharded sweep at the requested thread count. Either way the report
/// is identical to the serial campaign's. Throws RegistryError/ParamError
/// on an unknown protocol or malformed grid before any sweep runs, and
/// std::invalid_argument on malformed SweepOptions.
class Campaign {
 public:
  explicit Campaign(CampaignSpec spec,
                    const ProtocolRegistry& registry =
                        ProtocolRegistry::global())
      : spec_(std::move(spec)), registry_(registry) {}
  /// The registry must outlive the campaign (run() reads it); a temporary
  /// would dangle, so rvalue registries are rejected at compile time.
  Campaign(CampaignSpec, ProtocolRegistry&&) = delete;

  CampaignReport run() const;

  /// Expands the spec and counts each configuration's schedules (the
  /// plan-space size after the max-deviators filter) without running any —
  /// the `--dry-run` path. Same validation/throwing behaviour as run().
  DryRunReport dry_run() const;

 private:
  CampaignSpec spec_;
  const ProtocolRegistry& registry_;
};

}  // namespace xchain::sim
