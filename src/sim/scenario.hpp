#pragma once

// Adversarial scenario-sweep engine.
//
// The paper's central claim is quantitative: under *any* sore-loser
// deviation, every conforming party ends no worse off than its premium
// compensation (Definition 1 and the per-protocol lemmas). A handful of
// hand-picked deviations cannot establish that — this module enumerates the
// whole schedule space instead.
//
// A ProtocolAdapter describes one protocol engine: how many parties it has,
// how many deviation ordinals each party's script exposes, and which
// protocol-specific dishonesty variants exist beyond generic halting (e.g.
// the auctioneer's seven declaration strategies). ScenarioRunner takes an
// adapter, enumerates the cross product of per-party DeviationPlan
// {conform, halt@0..halt@k-1} choices times the dishonesty variants, runs
// every schedule through the engine (each run drives a fresh MultiChain via
// Scheduler), and feeds each final state to payoff_audit, which flags any
// schedule where a conforming party loses more than its earned premiums.
//
// Adapters for the three protocol families — two-party hedged swap (§5),
// multi-party ARC swap (§7), ticket auction open + sealed (§9) — live at
// the bottom of this header. Future fuzzing / scaling PRs should drive new
// engines through the same interface.

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/auction.hpp"
#include "core/multi_party.hpp"
#include "core/two_party.hpp"
#include "sim/deviation.hpp"
#include "sim/payoff_audit.hpp"

namespace xchain::sim {

/// One fully-specified adversarial schedule: a deviation plan per party
/// plus a protocol-specific dishonesty variant index.
struct Schedule {
  std::vector<DeviationPlan> plans;
  int variant = 0;
  std::string label;
};

/// How ScenarioRunner talks to one protocol engine. run() must execute the
/// schedule on fresh state (a new MultiChain advanced by Scheduler) so
/// schedules never contaminate each other.
class ProtocolAdapter {
 public:
  virtual ~ProtocolAdapter() = default;

  virtual std::string name() const = 0;
  virtual std::size_t party_count() const = 0;

  /// Number of deviation ordinals in party p's script; enumeration tries
  /// halt@0 .. halt@(count-1) plus conforming. (halt@count would repeat
  /// conforming: the party performs its whole script.)
  virtual int action_count(PartyId p) const = 0;

  /// Protocol-specific dishonesty variants (variant 0 must be "honest").
  virtual int variant_count() const { return 1; }
  virtual std::string variant_label(int variant) const {
    return variant == 0 ? "honest" : "variant-" + std::to_string(variant);
  }
  /// Whether the variant leaves every party's conformity to its plan alone
  /// (false marks the variant's owner — by convention party 0 — deviant).
  virtual bool variant_conforming(int variant) const { return variant == 0; }

  virtual std::vector<PartyOutcome> run(const Schedule& s) const = 0;
};

/// Result of sweeping one adapter's schedule space.
struct SweepReport {
  std::string protocol;
  std::size_t schedules_run = 0;
  std::size_t conforming_audited = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::string str() const;
};

/// Enumerates and audits deviation schedules for one protocol.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ProtocolAdapter& adapter)
      : adapter_(adapter) {}

  /// All schedules with at most `max_deviators` deviating parties
  /// (-1 = unbounded, the full cross product). A dishonest variant counts
  /// as one deviator.
  std::vector<Schedule> enumerate(int max_deviators = -1) const;

  /// Runs and audits every enumerated schedule.
  SweepReport sweep(int max_deviators = -1) const;

 private:
  const ProtocolAdapter& adapter_;
};

// ---------------------------------------------------------------------------
// Concrete adapters
// ---------------------------------------------------------------------------

/// Hedged two-party swap (§5.2, Figure 1). Bound: a conforming party whose
/// principal was locked up and refunded earns at least the counterparty's
/// premium (p_b for Alice, p_a for Bob).
class TwoPartySwapAdapter final : public ProtocolAdapter {
 public:
  explicit TwoPartySwapAdapter(core::TwoPartyConfig cfg) : cfg_(cfg) {}

  std::string name() const override { return "hedged-two-party"; }
  std::size_t party_count() const override { return 2; }
  int action_count(PartyId) const override {
    return core::kHedgedTwoPartyActions;
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override;

 private:
  core::TwoPartyConfig cfg_;
};

/// Multi-party ARC swap on a digraph (§7). Bound (Lemma 6): a conforming
/// party earns at least premium_unit per locked-and-refunded asset.
class MultiPartySwapAdapter final : public ProtocolAdapter {
 public:
  explicit MultiPartySwapAdapter(core::MultiPartyConfig cfg)
      : cfg_(std::move(cfg)) {}

  std::string name() const override {
    return std::string(cfg_.hedged ? "hedged" : "base") + "-multi-party-n" +
           std::to_string(cfg_.g.size());
  }
  std::size_t party_count() const override { return cfg_.g.size(); }
  int action_count(PartyId) const override {
    return cfg_.hedged ? core::kMultiPartyHedgedActions
                       : core::kMultiPartyBaseActions;
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override;

 private:
  core::MultiPartyConfig cfg_;
};

/// Ticket auction (§9), open or sealed-bid. Party 0 is the auctioneer: her
/// whole behaviour space is the AuctioneerStrategy enum, modelled as
/// variants rather than halt points. Bidder halt ordinals map onto
/// BidderStrategy (open: 0 = bid, 1 = forward; sealed: 0 = commit,
/// 1 = reveal, 2 = forward). Bound (Lemma 8): a conforming bidder's coins
/// move only against the tickets, and never by more than its bid.
class TicketAuctionAdapter final : public ProtocolAdapter {
 public:
  TicketAuctionAdapter(core::AuctionConfig cfg, bool sealed)
      : cfg_(std::move(cfg)), sealed_(sealed) {}

  std::string name() const override {
    return sealed_ ? "sealed-ticket-auction" : "ticket-auction";
  }
  std::size_t party_count() const override { return cfg_.bids.size() + 1; }
  int action_count(PartyId p) const override {
    if (p == 0) return 0;  // the auctioneer deviates via variants only
    return sealed_ ? 3 : 2;
  }
  int variant_count() const override { return 7; }
  std::string variant_label(int variant) const override;
  std::vector<PartyOutcome> run(const Schedule& s) const override;

 private:
  core::AuctionConfig cfg_;
  bool sealed_;
};

}  // namespace xchain::sim
