#pragma once

// Adversarial scenario-sweep engine.
//
// The paper's central claim is quantitative: under *any* sore-loser
// deviation, every conforming party ends no worse off than its premium
// compensation (Definition 1 and the per-protocol lemmas). A handful of
// hand-picked deviations cannot establish that — this module enumerates
// whole adversary-strategy spaces instead.
//
// A deviation schedule assigns every party a DeviationPlan: one ActionPolicy
// — Perform, Delay(d ticks), or Drop — per scheduled-action ordinal, with
// halting as the suffix-of-Drops special case and protocol-specific
// dishonesty (e.g. the auctioneer's seven declaration strategies) folded in
// as variant-tagged plans rather than side knobs. Which plans are
// enumerated is a first-class sweep dimension, the StrategySpace
// (sim/strategy_space.hpp): halt-only reproduces the historical schedule
// space byte-identically; timely-delays adds last-moment-but-compliant
// lateness (which must sweep clean — a timely-delayed party is still
// conforming and keeps its hedged floor); late-delays adds delays at and
// past the synchrony bound, whose submissions can land past contract
// deadlines — the audit then treats the delayer as the sore loser and
// checks that everyone else is premium-compensated. Enlarged spaces are
// bounded (per-party plan cap + schedule budget) with ParamGrid-style loud
// truncation reports.
//
// A ProtocolAdapter describes one protocol engine: how many parties it has,
// how many deviation ordinals each party's script exposes, its synchrony
// bound Δ (from which delay menus derive), and — when the generic generator
// doesn't fit — the party's plan space itself. ScenarioRunner takes an
// adapter, enumerates the cross product of per-party plan spaces, runs
// every schedule through the engine (by default each adapter resets one
// reusable traceless world per schedule; set_world_reuse(false) rebuilds a
// fresh traced MultiChain per run instead), and feeds each final state to
// payoff_audit, which flags any schedule where a conforming party loses
// more than its earned premiums.
//
// Serial sweeps default to the prefix-sharing *schedule-tree executor*
// instead of replaying every schedule from tick 0. Each tree-capable
// adapter keeps one set of persistent actors (sim/tree.hpp TreeFrame); the
// executor snapshots the whole world — ledgers, contracts, actors — at
// every tick boundary onto a layered checkpoint stack
// (Blockchain::snap_push / snap_rewind, chain/snapshot.hpp), logs which
// (party, ordinal) plan coordinates each run actually consulted
// (sim/consult.hpp), and memoizes finished runs in a trie keyed by those
// consulted decisions. A new schedule first walks the trie: reaching a
// leaf means some already-executed schedule made identical consulted
// decisions under the same engine variants, so by determinism the outcome
// is the cached one (a dedup hit — only the conforming flags, which depend
// on unconsulted plan coordinates, are recomputed). Otherwise the executor
// diffs the schedule against the last executed run's consult log and
// resumes from the first divergent tick via the snapshot stack, executing
// only the un-shared suffix. Rewinds are integrity-checked by a 64-bit
// state hash recorded at each push: a contract or actor whose state_tie()
// misses a mutable member fails loudly instead of silently corrupting the
// sweep. The tree report is identical, schedule for schedule, to the
// brute-force replay's (pinned by tests/tree_equivalence_test.cpp);
// SweepOptions.executor forces either engine.
//
// Sweeps are parallelizable: sweep(SweepOptions{.threads = N}) partitions
// the enumerated schedule space into contiguous shards, runs the shards on
// a worker pool (each worker drives its own adapter clone so per-run chain
// state never crosses threads), and merges the per-shard results in shard
// order — the merged report is identical, schedule for schedule, to the
// serial sweep's, whatever the strategy space.
//
// Adapters for all the protocol families — two-party hedged swap (§5),
// multi-party ARC swap (§7), ticket auction open + sealed (§9), the
// three-party brokered sale (§8), the bootstrapped premium-ladder swap
// (§6), and the CRR-priced ladder (§4 + §6) — live at the bottom of this
// header, but new engines should NOT be hand-wired to these classes:
// register a named factory in sim/registry.hpp instead. The registry maps
// stable protocol names to ParamSet-driven adapter factories, and the
// campaign layer (sim/campaign.hpp, the `xchain-sweep` CLI, CI) sweeps
// whole configuration × strategy grids through it with zero recompilation —
// that is the entry point future fuzzing / scaling PRs should drive.

#include <cstddef>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "chain/fault.hpp"
#include "common/types.hpp"
#include "core/auction.hpp"
#include "core/binding.hpp"
#include "core/bootstrap.hpp"
#include "core/bridge.hpp"
#include "core/broker.hpp"
#include "core/multi_party.hpp"
#include "core/two_party.hpp"
#include "sim/deviation.hpp"
#include "sim/payoff_audit.hpp"
#include "sim/strategy_space.hpp"
#include "sim/tree.hpp"

namespace xchain::sim {

/// One fully-specified adversarial schedule: a deviation plan per party.
/// Protocol-specific dishonesty rides on the plans' variant tags.
struct Schedule {
  std::vector<DeviationPlan> plans;
  std::string label;
};

/// One protocol instance bound into a shared MultiChain — what
/// ProtocolAdapter::bind_instance returns and the load generator
/// (src/load/) drives. The instance owns its (bound) world; the load
/// scheduler ticks the actors each round and, once the global tick reaches
/// end_tick(), collects the per-party outcomes for the payoff audit. All
/// plans are conforming: under load, every violation is the substrate's
/// fault, never a party's.
class LoadInstance {
 public:
  virtual ~LoadInstance() = default;

  /// Actors in scheduler add-order; tick each exactly once per round.
  virtual const std::vector<Party*>& actors() const = 0;

  /// Exclusive global end tick: the instance is complete once the load
  /// scheduler has produced the block at end_tick() - 1.
  virtual Tick end_tick() const = 0;

  /// End-of-run outcomes under the all-conforming schedule.
  virtual std::vector<PartyOutcome> collect() const = 0;
};

/// How ScenarioRunner talks to one protocol engine. run() must execute the
/// schedule on clean state so schedules never contaminate each other — by
/// default each adapter instance lazily builds ONE reusable, traceless
/// world (chains + contracts + endowments) and rolls it back to its
/// post-setup checkpoint per schedule, which is what makes deep sweeps
/// cheap; set_world_reuse(false) switches run() to the legacy path that
/// rebuilds a fresh, fully-traced world per schedule (the equivalence
/// tests pin that both paths report identical results).
class ProtocolAdapter {
 public:
  virtual ~ProtocolAdapter() = default;

  virtual std::string name() const = 0;
  virtual std::size_t party_count() const = 0;

  /// Debug/equivalence knob: false makes every run() rebuild a fresh
  /// fully-traced world per schedule instead of resetting a reused one.
  void set_world_reuse(bool on) { world_reuse_ = on; }
  bool world_reuse() const { return world_reuse_; }

  /// Chain-side execution environment (chain/fault.hpp): the fault plan
  /// injected into this adapter's chains and the resilience policy its
  /// parties follow. Installed on the world when it is (re)built, so set
  /// it before the first run; the default inactive environment keeps the
  /// substrate byte-identical to the historical reliable one. Active
  /// environments are brute-executor only — carried-over mempool entries
  /// break the tree executor's tick-boundary snapshot invariant — and
  /// clone() copies the environment, so parallel shards inject
  /// identically.
  void set_environment(chain::ChainEnvironment env) { env_ = std::move(env); }
  const chain::ChainEnvironment& environment() const { return env_; }

  /// Number of deviation ordinals in party p's script; the generic plan
  /// space tries halt@0 .. halt@(count-1) plus conforming, and delay/drop
  /// combinations over the same ordinals. (halt@count would repeat
  /// conforming: the party performs its whole script.)
  virtual int action_count(PartyId p) const = 0;

  /// The configured synchrony bound Δ in ticks — the unit strategy-space
  /// delay menus are derived from ({Δ-1} timely, {Δ-1, Δ, 2Δ} late).
  virtual Tick delta() const { return 1; }

  /// Party p's enumerated plan space under `strategies`, at most `cap`
  /// plans. Default: the generic generator over action_count(p) and
  /// delta(). Adapters whose parties deviate through protocol-specific
  /// variants (the auctioneer) override this to emit variant-tagged plans.
  virtual PartyPlanSpace plan_space(
      PartyId p, const StrategySpace& strategies,
      std::size_t cap = std::numeric_limits<std::size_t>::max()) const {
    return party_plan_space(action_count(p), delta(), strategies, cap);
  }

  /// How party p's plan renders inside a schedule label. Default: the
  /// plan's own str(); adapters with variant plans give them names.
  virtual std::string plan_label(PartyId p, const DeviationPlan& plan) const {
    (void)p;
    return plan.str();
  }

  /// An independent adapter driving the same protocol with the same
  /// parameters. Parallel sweeps give every worker thread its own clone:
  /// adapters cache a reusable world (stateful chains) on themselves, so
  /// workers must never share one instance. Cloning copies configuration
  /// only — each clone builds its own world on first run().
  virtual std::unique_ptr<ProtocolAdapter> clone() const = 0;

  virtual std::vector<PartyOutcome> run(const Schedule& s) const = 0;

  /// Binds one all-conforming instance of this protocol onto the shared
  /// MultiChain described by `binding` (core/binding.hpp) and returns it
  /// for the load generator to drive. The instance's ledger rows live at
  /// [binding.party_base, party_base + party_count()) and its deadline
  /// ladder starts at binding.start; the adapter itself is not captured
  /// (the instance copies what it needs). Adapters without a bound world
  /// form throw.
  virtual std::unique_ptr<LoadInstance> bind_instance(
      const core::WorldBinding& binding) const {
    (void)binding;
    throw std::logic_error(name() + ": bind_instance not implemented");
  }

  /// --- Schedule-tree executor hooks ---------------------------------------
  /// The reusable world's tree frame (persistent actors + chains + horizon),
  /// built on first use, or nullptr when the adapter cannot be tree-swept
  /// (no engine support, or world reuse disabled — the tree is meaningless
  /// on throwaway worlds). When this returns non-null, tree_set_plans /
  /// tree_collect must be implemented; they are const for the same reason
  /// run() is (the world is a mutable cache on a logically-const adapter).
  virtual TreeFrame* tree_frame() const { return nullptr; }
  /// Installs one schedule's plans (and variant knobs, e.g. the
  /// auctioneer's declaration strategy) on the frame's persistent actors.
  virtual void tree_set_plans(const Schedule& s) const {
    (void)s;
    throw std::logic_error(name() + ": tree executor hooks not implemented");
  }
  /// Maps the world's current end-of-run state to per-party outcomes — the
  /// tree analogue of run()'s result assembly, sharing its code.
  virtual std::vector<PartyOutcome> tree_collect(const Schedule& s) const {
    (void)s;
    throw std::logic_error(name() + ": tree executor hooks not implemented");
  }

 private:
  bool world_reuse_ = true;
  chain::ChainEnvironment env_;
};

/// Lazily-built per-adapter world cache. Deliberately NOT copied by the
/// copy/assign operations: every adapter clone builds its own world, so
/// parallel workers never share chain state. `mutable` because the world
/// is a cache the logically-const run() path fills and reuses.
template <class W>
class WorldCache {
 public:
  WorldCache() = default;
  WorldCache(const WorldCache&) {}
  WorldCache& operator=(const WorldCache&) {
    w_.reset();
    return *this;
  }
  WorldCache(WorldCache&&) noexcept = default;
  WorldCache& operator=(WorldCache&&) noexcept = default;

  /// The cached world, built by `make` (returning std::unique_ptr<W>) on
  /// first use.
  template <class Make>
  W& ensure(Make&& make) const {
    if (!w_) w_ = make();
    return *w_;
  }

 private:
  mutable std::unique_ptr<W> w_;
};

/// Result of sweeping one adapter's schedule space.
struct SweepReport {
  std::string protocol;
  std::size_t schedules_run = 0;
  std::size_t conforming_audited = 0;
  std::vector<Violation> violations;

  /// Strategy-space truncation notices (ParamGrid-style): non-empty iff
  /// the enumerated space was capped below its full size. Halt-only
  /// sweeps are never truncated.
  std::vector<std::string> truncations;

  /// Worker threads actually used (small spaces clamp below the request:
  /// a worker only pays for itself over a batch of schedules).
  unsigned workers = 1;

  /// --- Executor statistics -------------------------------------------------
  /// Deliberately NOT part of line()/str(): those summary strings are
  /// pinned by tests and aggregated verbatim by campaign reports. Benches
  /// and campaign JSON export these fields instead.
  ///
  /// Schedules the executor actually ran on a world. Tree sweeps run one
  /// per distinct consulted-decision path; brute sweeps run every
  /// schedule, so nodes_executed == schedules_run there.
  std::size_t nodes_executed = 0;
  /// Schedules whose outcomes were produced and audited (executed plus
  /// dedup-served) — always equal to schedules_run; reported separately so
  /// JSON consumers need not know the identity.
  std::size_t schedules_covered = 0;
  /// Schedules served from a memo-trie leaf without touching the world
  /// (== schedules_run - nodes_executed; 0 on the brute path).
  std::size_t dedup_hits = 0;

  /// Violations attributed to the injected chain faults rather than any
  /// party's deviation (Violation::fault_caused — the schedule re-audits
  /// clean on a faultless twin world). Like the executor statistics this
  /// is NOT part of line()/str()'s pinned summary; campaign JSON exports
  /// it when an environment is active.
  std::size_t fault_caused = 0;

  bool ok() const { return violations.empty(); }

  /// One-line summary ("<protocol>: N schedules, ... V violations") — the
  /// per-protocol form campaign reports aggregate. Pinned in
  /// tests/strategy_sweep_test.cpp; campaign/CLI output depends on it.
  std::string line() const;
  /// line() plus one indented line per violation and per truncation.
  std::string str() const;
};

/// Which engine executes a sweep's schedules.
enum class SweepExecutor {
  /// Serial sweeps of tree-capable adapters use the schedule-tree
  /// executor; everything else (parallel shards, adapters without tree
  /// support, world reuse off) brute-force replays every schedule.
  kAuto,
  /// Force the schedule-tree executor (always serial). Throws
  /// std::invalid_argument when the adapter is not tree-capable.
  kTree,
  /// Force brute-force replay of every schedule.
  kBrute,
};

/// How to run a sweep.
struct SweepOptions {
  /// Schedules with more deviating parties are skipped (-1 = unbounded,
  /// the full cross product). Any non-reference plan — halt, delay, drop,
  /// or dishonest variant — counts its party as one deviator.
  int max_deviators = -1;

  /// Worker threads. 1 = serial; 0 = one per hardware thread. The result
  /// is bit-identical whatever the count.
  unsigned threads = 1;

  /// Which adversary strategies to enumerate (and the bounds on the
  /// enlarged spaces). Defaults to halt-only: byte-identical to the
  /// historical sweeps.
  StrategySpace strategies;

  /// Execution engine. The report is identical whichever engine runs
  /// (pinned by tests/tree_equivalence_test.cpp) — only the executor
  /// statistics and the wall-clock differ.
  SweepExecutor executor = SweepExecutor::kAuto;
};

/// Rejects malformed options (max_deviators below -1, zero strategy-space
/// caps) with std::invalid_argument instead of letting them skip every
/// schedule silently. Called by ScenarioRunner::sweep and Campaign::run.
void validate_sweep_options(const SweepOptions& opts);

/// Enumerates and audits deviation schedules for one protocol.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ProtocolAdapter& adapter)
      : adapter_(adapter) {}

  /// All halt-only schedules with at most `max_deviators` deviating
  /// parties (-1 = unbounded, the full cross product).
  std::vector<Schedule> enumerate(int max_deviators = -1) const;

  /// All schedules of `opts`' strategy space within its deviator bound.
  std::vector<Schedule> enumerate(const SweepOptions& opts) const;

  /// How many schedules sweep(opts) would run, without running any — the
  /// `xchain-sweep --dry-run` number (decodes the space, applies the
  /// max_deviators filter, skips execution). When `truncations` is given,
  /// the strategy-space truncation notices a real sweep would report are
  /// appended to it — a dry run must be as loud about capping as the run
  /// it previews.
  std::size_t schedule_count(const SweepOptions& opts,
                             std::vector<std::string>* truncations =
                                 nullptr) const;

  /// Runs and audits every enumerated schedule serially.
  SweepReport sweep(int max_deviators = -1) const;

  /// Runs and audits every enumerated schedule, sharded over
  /// `opts.threads` workers. Violations arrive in enumeration order
  /// regardless of thread count.
  SweepReport sweep(const SweepOptions& opts) const;

 private:
  const ProtocolAdapter& adapter_;
};

// ---------------------------------------------------------------------------
// Concrete adapters
// ---------------------------------------------------------------------------

/// Hedged two-party swap (§5.2, Figure 1). Bound: a conforming party whose
/// principal was locked up and refunded earns at least the counterparty's
/// premium (p_b for Alice, p_a for Bob).
class TwoPartySwapAdapter final : public ProtocolAdapter {
 public:
  explicit TwoPartySwapAdapter(core::TwoPartyConfig cfg) : cfg_(cfg) {}

  std::string name() const override { return "hedged-two-party"; }
  std::size_t party_count() const override { return 2; }
  int action_count(PartyId) const override {
    return core::kHedgedTwoPartyActions;
  }
  Tick delta() const override { return cfg_.delta; }
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<TwoPartySwapAdapter>(*this);
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override;
  std::unique_ptr<LoadInstance> bind_instance(
      const core::WorldBinding& binding) const override;
  TreeFrame* tree_frame() const override;
  void tree_set_plans(const Schedule& s) const override;
  std::vector<PartyOutcome> tree_collect(const Schedule& s) const override;

 private:
  core::TwoPartyWorld& world() const;
  std::vector<PartyOutcome> outcomes_from(const core::TwoPartyResult& r,
                                          const Schedule& s) const;

  core::TwoPartyConfig cfg_;
  WorldCache<core::TwoPartyWorld> world_;
};

/// Multi-party ARC swap on a digraph (§7). Bound (Lemma 6): a conforming
/// party earns at least premium_unit per locked-and-refunded asset.
class MultiPartySwapAdapter final : public ProtocolAdapter {
 public:
  explicit MultiPartySwapAdapter(core::MultiPartyConfig cfg)
      : cfg_(std::move(cfg)) {}

  std::string name() const override {
    return std::string(cfg_.hedged ? "hedged" : "base") + "-multi-party-n" +
           std::to_string(cfg_.g.size());
  }
  std::size_t party_count() const override { return cfg_.g.size(); }
  int action_count(PartyId) const override {
    return cfg_.hedged ? core::kMultiPartyHedgedActions
                       : core::kMultiPartyBaseActions;
  }
  Tick delta() const override { return cfg_.delta; }
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<MultiPartySwapAdapter>(*this);
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override;
  TreeFrame* tree_frame() const override;
  void tree_set_plans(const Schedule& s) const override;
  std::vector<PartyOutcome> tree_collect(const Schedule& s) const override;

 private:
  core::MultiPartyWorld& world() const;
  std::vector<PartyOutcome> outcomes_from(const core::MultiPartyResult& r,
                                          const Schedule& s) const;

  core::MultiPartyConfig cfg_;
  WorldCache<core::MultiPartyWorld> world_;
};

/// Ticket auction (§9), open or sealed-bid. Party 0 is the auctioneer: the
/// smart contracts confine her to publishing (or withholding) hashkeys, so
/// her whole behaviour space is the seven declaration strategies — folded
/// into the plan space as variant-tagged plans (variant 0 = honest) rather
/// than halt ordinals. Bidder ordinals: open 0 = bid, 1 = forward; sealed
/// 0 = commit, 1 = reveal, 2 = forward. Bound (Lemma 8): a conforming
/// bidder's coins move only against the tickets, and never by more than
/// its bid.
class TicketAuctionAdapter final : public ProtocolAdapter {
 public:
  TicketAuctionAdapter(core::AuctionConfig cfg, bool sealed)
      : cfg_(std::move(cfg)), sealed_(sealed) {}

  std::string name() const override {
    return sealed_ ? "sealed-ticket-auction" : "ticket-auction";
  }
  std::size_t party_count() const override { return cfg_.bids.size() + 1; }
  int action_count(PartyId p) const override {
    if (p == 0) return 0;  // the auctioneer deviates via variants only
    return sealed_ ? 3 : 2;
  }
  Tick delta() const override { return cfg_.delta; }
  /// Party 0's space is the seven variant-tagged auctioneer plans; bidders
  /// use the generic generator.
  PartyPlanSpace plan_space(PartyId p, const StrategySpace& strategies,
                            std::size_t cap) const override;
  std::string plan_label(PartyId p,
                         const DeviationPlan& plan) const override;
  /// The auctioneer's declaration-strategy name for a variant tag.
  static std::string variant_label(int variant);
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<TicketAuctionAdapter>(*this);
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override;
  TreeFrame* tree_frame() const override;
  void tree_set_plans(const Schedule& s) const override;
  std::vector<PartyOutcome> tree_collect(const Schedule& s) const override;

 private:
  core::AuctionWorld& world() const;
  std::vector<PartyOutcome> outcomes_from(const core::AuctionResult& r,
                                          const Schedule& s) const;

  core::AuctionConfig cfg_;
  bool sealed_;
  WorldCache<core::AuctionWorld> world_;
};

/// Three-party brokered sale (§8, after Herlihy–Liskov–Shrira): Alice
/// brokers Bob's tickets to Carol. Bound (§8.2): a conforming seller whose
/// principal was locked up and refunded earns at least the base premium p;
/// Alice escrows nothing, so her floor is breaking even.
class BrokerDealAdapter final : public ProtocolAdapter {
 public:
  explicit BrokerDealAdapter(core::BrokerConfig cfg) : cfg_(cfg) {}

  std::string name() const override { return "hedged-broker"; }
  std::size_t party_count() const override { return 3; }
  int action_count(PartyId) const override { return core::kBrokerActions; }
  Tick delta() const override { return cfg_.delta; }
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<BrokerDealAdapter>(*this);
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override;
  std::unique_ptr<LoadInstance> bind_instance(
      const core::WorldBinding& binding) const override;
  TreeFrame* tree_frame() const override;
  void tree_set_plans(const Schedule& s) const override;
  std::vector<PartyOutcome> tree_collect(const Schedule& s) const override;

 private:
  core::BrokerWorld& world() const;
  std::vector<PartyOutcome> outcomes_from(const core::BrokerResult& r,
                                          const Schedule& s) const;

  core::BrokerConfig cfg_;
  WorldCache<core::BrokerWorld> world_;
};

/// Bootstrapped premium-ladder swap (§6, Figure 2), driven through the
/// LadderContract pair. Bound (§6 via §5.2): a conforming party whose
/// principal was locked up and refunded is awarded the rung-1 premium on
/// its own chain (net of the rung-1 premium it forfeits on the
/// counterparty's chain when both principals were escrowed — the exact
/// two-party floors p_b and p_a generalized to the ladder amounts).
/// Deliberately final: parallel workers clone adapters by value, so ladder
/// variants (like the CRR-priced one) are expressed as config factories,
/// never as subclasses that could slice through the base clone().
class BootstrapSwapAdapter final : public ProtocolAdapter {
 public:
  explicit BootstrapSwapAdapter(core::BootstrapConfig cfg,
                                std::string name = "");

  std::string name() const override { return name_; }
  std::size_t party_count() const override { return 2; }
  int action_count(PartyId) const override {
    return core::bootstrap_action_count(cfg_.rounds);
  }
  Tick delta() const override { return cfg_.delta; }
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<BootstrapSwapAdapter>(*this);
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override;
  TreeFrame* tree_frame() const override;
  void tree_set_plans(const Schedule& s) const override;
  std::vector<PartyOutcome> tree_collect(const Schedule& s) const override;

  const core::BootstrapConfig& config() const { return cfg_; }

 private:
  core::BootstrapWorld& world() const;
  std::vector<PartyOutcome> outcomes_from(const core::BootstrapResult& r,
                                          const Schedule& s) const;

  core::BootstrapConfig cfg_;
  std::string name_;
  WorldCache<core::BootstrapWorld> world_;
  Amount alice_floor_ = 0;  ///< apricot rung-1 premium (Bob's deposit)
  Amount bob_floor_ = 0;    ///< banana rung-1 minus apricot rung-1
};

/// Witness/attestation bridge (XChainBridge-style door account + claim
/// contract), value-transfer or account-create flavor, hedged with the
/// paper's premium construction: the user's premium and the witness bonds
/// escrow on the locking-chain door, the witness reward pool escrows on
/// the issuing side. Bound: a conforming user recovers
/// principal-or-premium — the wrapped asset on a completed transfer (the
/// reward pool is the legitimate spend), at least the premium when a
/// commit was stranded by a witness stall or quorum failure (funded by
/// the forfeited bonds); a conforming witness nets at least its
/// attestation cost — the reward on a completed transfer, break-even
/// otherwise. The transfer path is tree-capable; account-create sweeps
/// brute.
class BridgeAdapter final : public ProtocolAdapter {
 public:
  explicit BridgeAdapter(core::BridgeConfig cfg) : cfg_(cfg) {}

  std::string name() const override {
    return cfg_.variant == core::BridgeVariant::kTransfer
               ? "bridge-transfer"
               : "bridge-account-create";
  }
  std::size_t party_count() const override {
    return static_cast<std::size_t>(cfg_.party_count());
  }
  int action_count(PartyId p) const override {
    return p == 0 ? cfg_.user_actions() : cfg_.witness_actions();
  }
  Tick delta() const override { return cfg_.delta; }
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<BridgeAdapter>(*this);
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override;
  std::unique_ptr<LoadInstance> bind_instance(
      const core::WorldBinding& binding) const override;
  TreeFrame* tree_frame() const override;
  void tree_set_plans(const Schedule& s) const override;
  std::vector<PartyOutcome> tree_collect(const Schedule& s) const override;

  const core::BridgeConfig& config() const { return cfg_; }

 private:
  core::BridgeWorld& world() const;
  std::vector<PartyOutcome> outcomes_from(const core::BridgeResult& r,
                                          const Schedule& s) const;

  core::BridgeConfig cfg_;
  WorldCache<core::BridgeWorld> world_;
};

/// Market parameters for CRR premium pricing (§4).
struct CrrMarket {
  double volatility = 0.8;       ///< annualized sigma (crypto-grade)
  double rate = 0.0;             ///< risk-free rate
  double ticks_per_year = 1460;  ///< tick = 6h (paper's Delta = 12h)
};

/// A single-rung ladder whose premiums are priced by the
/// Cox–Ross–Rubinstein model (§4) instead of the geometric bootstrap
/// factor: p_b prices the walk-away option on Alice's principal over its
/// lock-up window, p_a on Bob's, and the banana rung carries p_a + p_b per
/// §5.2. Wires the CRR engine (core/crr.*) and the ladder contract
/// (contracts/ladder.*) into the sweep as the "crr-ladder" protocol.
BootstrapSwapAdapter make_crr_ladder_adapter(core::BootstrapConfig cfg,
                                             const CrrMarket& market = {});

}  // namespace xchain::sim
