#include "sim/scenario.hpp"

#include <stdexcept>

#include "sim/plan_space.hpp"

namespace xchain::sim {

namespace {

/// Streams every schedule within the deviator budget to `fn`, without
/// materializing the cross product (it is exponential in the party count).
void for_each_schedule(const ProtocolAdapter& adapter, int max_deviators,
                       const std::function<void(const Schedule&)>& fn) {
  const std::size_t n = adapter.party_count();
  std::vector<std::vector<DeviationPlan>> spaces;
  for (std::size_t p = 0; p < n; ++p) {
    spaces.push_back(plan_space(adapter.action_count(static_cast<PartyId>(p))));
  }

  for (int variant = 0; variant < adapter.variant_count(); ++variant) {
    const int variant_deviators = adapter.variant_conforming(variant) ? 0 : 1;
    for_each_plan_combination(spaces, [&](const auto& plans) {
      int deviators = variant_deviators;
      for (const DeviationPlan& plan : plans) {
        if (!plan.is_conforming()) ++deviators;
      }
      if (max_deviators >= 0 && deviators > max_deviators) return;

      Schedule s;
      s.variant = variant;
      s.plans = plans;
      s.label = adapter.name() + "[" + adapter.variant_label(variant);
      for (std::size_t p = 0; p < n; ++p) {
        s.label += (p == 0 ? "|" : ",") + plans[p].str();
      }
      s.label += "]";
      fn(s);
    });
  }
}

}  // namespace

std::string SweepReport::str() const {
  std::string s = protocol + ": " + std::to_string(schedules_run) +
                  " schedules, " + std::to_string(conforming_audited) +
                  " conforming-party audits, " +
                  std::to_string(violations.size()) + " violations";
  for (const Violation& v : violations) {
    s += "\n  " + v.str();
  }
  return s;
}

std::vector<Schedule> ScenarioRunner::enumerate(int max_deviators) const {
  std::vector<Schedule> schedules;
  for_each_schedule(adapter_, max_deviators,
                    [&](const Schedule& s) { schedules.push_back(s); });
  return schedules;
}

SweepReport ScenarioRunner::sweep(int max_deviators) const {
  SweepReport report;
  report.protocol = adapter_.name();
  for_each_schedule(adapter_, max_deviators, [&](const Schedule& s) {
    const std::vector<PartyOutcome> outcomes = adapter_.run(s);
    report.conforming_audited +=
        audit_schedule(s.label, outcomes, report.violations);
    ++report.schedules_run;
  });
  return report;
}

// ---------------------------------------------------------------------------
// Two-party swap
// ---------------------------------------------------------------------------

std::vector<PartyOutcome> TwoPartySwapAdapter::run(const Schedule& s) const {
  if (s.plans.size() != 2) {
    throw std::invalid_argument("two-party schedule needs 2 plans");
  }
  const core::TwoPartyResult r =
      core::run_hedged_two_party(cfg_, s.plans[0], s.plans[1]);

  PartyOutcome alice{"alice", s.plans[0].is_conforming(), r.alice, {}};
  if (r.alice_lockup > 0) alice.bound.min_coin_delta = cfg_.premium_b;
  PartyOutcome bob{"bob", s.plans[1].is_conforming(), r.bob, {}};
  if (r.bob_lockup > 0) bob.bound.min_coin_delta = cfg_.premium_a;
  return {std::move(alice), std::move(bob)};
}

// ---------------------------------------------------------------------------
// Multi-party ARC swap
// ---------------------------------------------------------------------------

std::vector<PartyOutcome> MultiPartySwapAdapter::run(
    const Schedule& s) const {
  const core::MultiPartyResult r = core::run_multi_party_swap(cfg_, s.plans);

  std::vector<PartyOutcome> outcomes;
  for (std::size_t v = 0; v < cfg_.g.size(); ++v) {
    PartyOutcome o{"party-" + std::to_string(v), s.plans[v].is_conforming(),
                   r.payoffs[v], {}};
    if (cfg_.hedged) {
      o.bound.min_coin_delta = cfg_.premium_unit * r.assets_refunded[v];
    }
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

// ---------------------------------------------------------------------------
// Ticket auction
// ---------------------------------------------------------------------------

namespace {

core::AuctioneerStrategy auctioneer_of(int variant) {
  switch (variant) {
    case 0: return core::AuctioneerStrategy::kHonest;
    case 1: return core::AuctioneerStrategy::kNoSetup;
    case 2: return core::AuctioneerStrategy::kAbandon;
    case 3: return core::AuctioneerStrategy::kDeclareLoser;
    case 4: return core::AuctioneerStrategy::kCoinOnly;
    case 5: return core::AuctioneerStrategy::kTicketOnly;
    default: return core::AuctioneerStrategy::kSplit;
  }
}

/// Maps a bidder's halt point onto its BidderStrategy. The bidder script
/// is: bid/commit (0), [sealed: reveal (1)], forward one-sided keys (last).
core::BidderStrategy bidder_of(const DeviationPlan& plan, bool sealed) {
  if (plan.is_conforming()) return core::BidderStrategy::kConform;
  switch (plan.halt_point()) {
    case 0: return core::BidderStrategy::kNoBid;
    case 1:
      return sealed ? core::BidderStrategy::kCommitNoReveal
                    : core::BidderStrategy::kNoForward;
    default: return core::BidderStrategy::kNoForward;
  }
}

}  // namespace

std::string TicketAuctionAdapter::variant_label(int variant) const {
  switch (variant) {
    case 0: return "honest";
    case 1: return "no-setup";
    case 2: return "abandon";
    case 3: return "declare-loser";
    case 4: return "coin-only";
    case 5: return "ticket-only";
    default: return "split";
  }
}

std::vector<PartyOutcome> TicketAuctionAdapter::run(const Schedule& s) const {
  if (s.plans.size() != party_count()) {
    throw std::invalid_argument("auction schedule plan count mismatch");
  }
  std::vector<core::BidderStrategy> bidders;
  for (std::size_t i = 1; i < s.plans.size(); ++i) {
    bidders.push_back(bidder_of(s.plans[i], sealed_));
  }
  const core::AuctioneerStrategy strat = auctioneer_of(s.variant);
  const core::AuctionResult r = sealed_
                                    ? core::run_sealed_auction(cfg_, strat,
                                                               bidders)
                                    : core::run_auction(cfg_, strat, bidders);

  std::vector<PartyOutcome> outcomes;
  outcomes.push_back({"auctioneer",
                      s.variant == 0 && s.plans[0].is_conforming(),
                      r.auctioneer,
                      {}});
  for (std::size_t i = 0; i < bidders.size(); ++i) {
    PartyOutcome o{"bidder-" + std::to_string(i + 1),
                   s.plans[i + 1].is_conforming(), r.bidders[i], {}};
    const auto it = o.payoff.by_symbol.find("ticket");
    if (it != o.payoff.by_symbol.end() && it->second > 0) {
      o.bound.goods_received = true;
      o.bound.spend_allowance = cfg_.bids[i];  // never pay above the bid
    } else if (o.conforming && s.variant != 0 &&
               strat != core::AuctioneerStrategy::kNoSetup && !r.completed &&
               cfg_.bids[i] > 0) {
      // §9.2: a conforming bidder locked its bid (the auctioneer did set
      // up, so bidding happened) and the deviant auctioneer killed the
      // auction without shipping it tickets — it is owed the premium p.
      o.bound.min_coin_delta = cfg_.premium_unit;
    }
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

}  // namespace xchain::sim
