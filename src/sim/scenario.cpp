#include "sim/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <iterator>
#include <stdexcept>
#include <thread>

#include "core/crr.hpp"

namespace xchain::sim {

namespace {

/// Mixed-radix view of one adapter's raw schedule space (party 0's plan
/// least significant — exactly the order the serial enumeration visits).
/// Random access by raw index lets parallel shards be plain index ranges,
/// so no path ever materializes the cross product (it is exponential in
/// the party count).
///
/// Construction applies the strategy-space bounds: halt-only spaces are
/// enumerated whole (back-compat, never truncated); delay spaces cap each
/// party's plan list and then trim all lists to the largest uniform
/// per-party size whose cross product fits the schedule budget, recording
/// ParamGrid-style truncation notices. Per-party lists put the halt-only
/// plans first, so halt coverage survives trimming longest.
class ScheduleSpace {
 public:
  ScheduleSpace(const ProtocolAdapter& adapter, const StrategySpace& strategies)
      : adapter_(adapter) {
    const std::size_t n = adapter.party_count();
    std::vector<PartyPlanSpace> raw;
    raw.reserve(n);
    const std::size_t cap = strategies.halt_only()
                                ? std::numeric_limits<std::size_t>::max()
                                : strategies.max_plans_per_party;
    for (std::size_t p = 0; p < n; ++p) {
      raw.push_back(
          adapter.plan_space(static_cast<PartyId>(p), strategies, cap));
    }

    if (!strategies.halt_only()) {
      const auto product_at = [&](std::size_t uniform) {
        std::size_t prod = 1;
        for (const PartyPlanSpace& r : raw) {
          const std::size_t s =
              std::max<std::size_t>(std::min(r.plans.size(), uniform), 1);
          if (prod > strategies.max_schedules / s + 1) {
            return std::numeric_limits<std::size_t>::max();
          }
          prod *= s;
        }
        return prod;
      };
      std::size_t uniform = 0;
      for (const PartyPlanSpace& r : raw) {
        uniform = std::max(uniform, r.plans.size());
      }
      while (uniform > 1 && product_at(uniform) > strategies.max_schedules) {
        --uniform;
      }
      for (PartyPlanSpace& r : raw) {
        if (r.plans.size() > uniform) r.plans.resize(uniform);
      }
      for (std::size_t p = 0; p < raw.size(); ++p) {
        if (!raw[p].truncated()) continue;
        truncations_.push_back(
            adapter.name() + ": strategy space '" + strategies.name() +
            "' truncated: party " + std::to_string(p) + " sweeping " +
            std::to_string(raw[p].plans.size()) + " of " +
            std::to_string(raw[p].full_size) + " plans (caps: " +
            std::to_string(strategies.max_plans_per_party) +
            " plans/party, " + std::to_string(strategies.max_schedules) +
            " schedules)");
      }
    }

    spaces_.reserve(raw.size());
    for (PartyPlanSpace& r : raw) spaces_.push_back(std::move(r.plans));
    raw_size_ = 1;
    for (const auto& space : spaces_) raw_size_ *= space.size();
  }

  /// Raw combination count, before any max_deviators filtering.
  std::size_t raw_size() const { return raw_size_; }

  /// Truncation notices from the strategy-space bounds ([] when whole).
  const std::vector<std::string>& truncations() const { return truncations_; }

  /// Decodes raw index `index` into `out`, reusing out's plan storage.
  /// Returns false (leaving `out` unspecified) when the combination
  /// exceeds the deviator budget. Labels are built separately (and only
  /// when needed — per schedule they would dominate the decode cost) via
  /// fill_label().
  bool make(std::size_t index, int max_deviators, Schedule& out,
            bool with_label) const {
    std::size_t rest = index;
    int deviators = 0;
    out.plans.clear();
    out.plans.reserve(spaces_.size());
    for (const auto& space : spaces_) {
      const DeviationPlan& plan = space[rest % space.size()];
      rest /= space.size();
      if (!plan.is_conforming()) ++deviators;
      out.plans.push_back(plan);
    }
    if (max_deviators >= 0 && deviators > max_deviators) return false;

    if (with_label) {
      fill_label(out);
    } else {
      out.label.clear();
    }
    return true;
  }

  /// Builds the human-readable label for a decoded schedule.
  void fill_label(Schedule& out) const {
    out.label = adapter_.name();
    for (std::size_t p = 0; p < out.plans.size(); ++p) {
      // Appended in steps: `const char* + std::string&&` trips the GCC-12
      // -Wrestrict false positive (PR 105651) under -Werror.
      out.label += p == 0 ? '[' : ',';
      out.label +=
          adapter_.plan_label(static_cast<PartyId>(p), out.plans[p]);
    }
    out.label += "]";
  }

 private:
  const ProtocolAdapter& adapter_;
  std::vector<std::vector<DeviationPlan>> spaces_;
  std::vector<std::string> truncations_;
  std::size_t raw_size_ = 0;
};

/// One contiguous slice of the schedule space, swept independently. Shards
/// carry no protocol name: they are merged into the caller's SweepReport.
struct ShardResult {
  std::size_t schedules_run = 0;
  std::size_t conforming_audited = 0;
  std::vector<Violation> violations;
};

void sweep_range(const ProtocolAdapter& adapter, const ScheduleSpace& space,
                 int max_deviators, std::size_t begin, std::size_t end,
                 ShardResult& out) {
  Schedule s;
  for (std::size_t i = begin; i < end; ++i) {
    // Decode without the label: on a reused world the label strings would
    // be a large fraction of the per-schedule cost, and the audit only
    // needs them on (rare) violations — fill them in after the fact.
    if (!space.make(i, max_deviators, s, /*with_label=*/false)) continue;
    const std::vector<PartyOutcome> outcomes = adapter.run(s);
    const std::size_t before = out.violations.size();
    out.conforming_audited += audit_schedule(s.label, outcomes, out.violations);
    if (out.violations.size() != before) {
      space.fill_label(s);
      for (std::size_t v = before; v < out.violations.size(); ++v) {
        out.violations[v].schedule = s.label;
      }
    }
    ++out.schedules_run;
  }
}

}  // namespace

std::string SweepReport::line() const {
  return protocol + ": " + std::to_string(schedules_run) + " schedules, " +
         std::to_string(conforming_audited) + " conforming-party audits, " +
         std::to_string(violations.size()) + " violations";
}

std::string SweepReport::str() const {
  std::string s = line();
  for (const std::string& t : truncations) {
    s += "\n  " + t;
  }
  for (const Violation& v : violations) {
    s += "\n  " + v.str();
  }
  return s;
}

void validate_sweep_options(const SweepOptions& opts) {
  if (opts.max_deviators < -1) {
    throw std::invalid_argument(
        "SweepOptions.max_deviators must be >= -1 (-1 = unbounded), got " +
        std::to_string(opts.max_deviators));
  }
  if (opts.strategies.max_plans_per_party == 0) {
    throw std::invalid_argument(
        "StrategySpace.max_plans_per_party must be >= 1");
  }
  if (opts.strategies.max_schedules == 0) {
    throw std::invalid_argument("StrategySpace.max_schedules must be >= 1");
  }
}

std::vector<Schedule> ScenarioRunner::enumerate(int max_deviators) const {
  return enumerate(SweepOptions{max_deviators, /*threads=*/1, {}});
}

std::vector<Schedule> ScenarioRunner::enumerate(
    const SweepOptions& opts) const {
  validate_sweep_options(opts);
  const ScheduleSpace space(adapter_, opts.strategies);
  std::vector<Schedule> schedules;
  Schedule s;
  for (std::size_t i = 0; i < space.raw_size(); ++i) {
    if (space.make(i, opts.max_deviators, s, /*with_label=*/true)) {
      schedules.push_back(std::move(s));
    }
  }
  return schedules;
}

std::size_t ScenarioRunner::schedule_count(
    const SweepOptions& opts, std::vector<std::string>* truncations) const {
  validate_sweep_options(opts);
  const ScheduleSpace space(adapter_, opts.strategies);
  if (truncations) {
    truncations->insert(truncations->end(), space.truncations().begin(),
                        space.truncations().end());
  }
  if (opts.max_deviators < 0) return space.raw_size();
  std::size_t count = 0;
  Schedule s;
  for (std::size_t i = 0; i < space.raw_size(); ++i) {
    if (space.make(i, opts.max_deviators, s, /*with_label=*/false)) ++count;
  }
  return count;
}

SweepReport ScenarioRunner::sweep(int max_deviators) const {
  return sweep(SweepOptions{max_deviators, /*threads=*/1, {}});
}

SweepReport ScenarioRunner::sweep(const SweepOptions& opts) const {
  validate_sweep_options(opts);
  SweepReport report;
  report.protocol = adapter_.name();

  const ScheduleSpace space(adapter_, opts.strategies);
  report.truncations = space.truncations();
  unsigned threads = opts.threads != 0
                         ? opts.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  // Spawning a worker only pays for itself over a batch of schedules:
  // clamp so each worker gets at least ~16, degrading small spaces toward
  // the serial path instead of paying thread/clone overhead for microwork.
  constexpr std::size_t kMinSchedulesPerWorker = 16;
  threads = static_cast<unsigned>(std::min<std::size_t>(
      threads,
      std::max<std::size_t>(space.raw_size() / kMinSchedulesPerWorker, 1)));
  report.workers = threads;

  if (threads <= 1) {
    ShardResult all;
    sweep_range(adapter_, space, opts.max_deviators, 0, space.raw_size(),
                all);
    report.schedules_run = all.schedules_run;
    report.conforming_audited = all.conforming_audited;
    report.violations = std::move(all.violations);
    return report;
  }

  // Contiguous raw-index shards, several per worker so uneven
  // per-schedule run costs balance out; workers claim shards through an
  // atomic cursor and decode each index on the fly (constant memory).
  // Merging in shard order reproduces the serial enumeration order
  // exactly, so the report is bit-identical to the serial path's whatever
  // the thread count or claiming order.
  const std::size_t shard_count =
      std::min(space.raw_size(), static_cast<std::size_t>(threads) * 8);
  std::vector<ShardResult> shards(shard_count);
  std::atomic<std::size_t> next_shard{0};
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      try {
        // A private engine per worker: chains built by run() are stateful,
        // and a future adapter may keep per-run scratch state on itself.
        const std::unique_ptr<ProtocolAdapter> engine = adapter_.clone();
        const ScheduleSpace worker_space(*engine, opts.strategies);
        for (std::size_t shard = next_shard.fetch_add(1);
             shard < shard_count; shard = next_shard.fetch_add(1)) {
          const std::size_t begin = shard * space.raw_size() / shard_count;
          const std::size_t end =
              (shard + 1) * space.raw_size() / shard_count;
          sweep_range(*engine, worker_space, opts.max_deviators, begin, end,
                      shards[shard]);
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  for (ShardResult& shard : shards) {
    report.schedules_run += shard.schedules_run;
    report.conforming_audited += shard.conforming_audited;
    report.violations.insert(report.violations.end(),
                             std::make_move_iterator(shard.violations.begin()),
                             std::make_move_iterator(shard.violations.end()));
  }
  return report;
}

// ---------------------------------------------------------------------------
// Two-party swap
// ---------------------------------------------------------------------------

std::vector<PartyOutcome> TwoPartySwapAdapter::run(const Schedule& s) const {
  if (s.plans.size() != 2) {
    throw std::invalid_argument("two-party schedule needs 2 plans");
  }
  const core::TwoPartyResult r =
      world_reuse()
          ? world_
                .ensure([this] {
                  return std::make_unique<core::TwoPartyWorld>(
                      cfg_, chain::TraceMode::kOff);
                })
                .run(s.plans[0], s.plans[1])
          : core::run_hedged_two_party(cfg_, s.plans[0], s.plans[1]);

  PartyOutcome alice{"alice", s.plans[0].conforms_within(cfg_.delta), r.alice,
                     {}};
  if (r.alice_lockup > 0) alice.bound.min_coin_delta = cfg_.premium_b;
  PartyOutcome bob{"bob", s.plans[1].conforms_within(cfg_.delta), r.bob, {}};
  if (r.bob_lockup > 0) bob.bound.min_coin_delta = cfg_.premium_a;
  return {std::move(alice), std::move(bob)};
}

// ---------------------------------------------------------------------------
// Multi-party ARC swap
// ---------------------------------------------------------------------------

std::vector<PartyOutcome> MultiPartySwapAdapter::run(
    const Schedule& s) const {
  const core::MultiPartyResult r =
      world_reuse()
          ? world_
                .ensure([this] {
                  return std::make_unique<core::MultiPartyWorld>(
                      cfg_, chain::TraceMode::kOff);
                })
                .run(s.plans)
          : core::run_multi_party_swap(cfg_, s.plans);

  std::vector<PartyOutcome> outcomes;
  for (std::size_t v = 0; v < cfg_.g.size(); ++v) {
    PartyOutcome o{"party-" + std::to_string(v),
                   s.plans[v].conforms_within(cfg_.delta), r.payoffs[v], {}};
    if (cfg_.hedged) {
      o.bound.min_coin_delta = cfg_.premium_unit * r.assets_refunded[v];
    }
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

// ---------------------------------------------------------------------------
// Ticket auction
// ---------------------------------------------------------------------------

namespace {

core::AuctioneerStrategy auctioneer_of(int variant) {
  switch (variant) {
    case 0: return core::AuctioneerStrategy::kHonest;
    case 1: return core::AuctioneerStrategy::kNoSetup;
    case 2: return core::AuctioneerStrategy::kAbandon;
    case 3: return core::AuctioneerStrategy::kDeclareLoser;
    case 4: return core::AuctioneerStrategy::kCoinOnly;
    case 5: return core::AuctioneerStrategy::kTicketOnly;
    default: return core::AuctioneerStrategy::kSplit;
  }
}

}  // namespace

std::string TicketAuctionAdapter::variant_label(int variant) {
  switch (variant) {
    case 0: return "honest";
    case 1: return "no-setup";
    case 2: return "abandon";
    case 3: return "declare-loser";
    case 4: return "coin-only";
    case 5: return "ticket-only";
    default: return "split";
  }
}

PartyPlanSpace TicketAuctionAdapter::plan_space(
    PartyId p, const StrategySpace& strategies, std::size_t cap) const {
  if (p != 0) return ProtocolAdapter::plan_space(p, strategies, cap);
  // The auctioneer's behaviour space is her seven declaration strategies,
  // variant-tagged onto otherwise-conforming plans (she has no halt/delay
  // ordinals of her own: the contracts confine her to publishing or
  // withholding hashkeys). Enumerated in the historical variant order.
  PartyPlanSpace out;
  out.full_size = 7;
  for (int variant = 0; variant < 7 && out.plans.size() < cap; ++variant) {
    out.plans.push_back(
        DeviationPlan::conforming().with_variant(variant));
  }
  return out;
}

std::string TicketAuctionAdapter::plan_label(
    PartyId p, const DeviationPlan& plan) const {
  if (p == 0) return variant_label(plan.variant());
  return plan.str();
}

std::vector<PartyOutcome> TicketAuctionAdapter::run(const Schedule& s) const {
  if (s.plans.size() != party_count()) {
    throw std::invalid_argument("auction schedule plan count mismatch");
  }
  const std::vector<sim::DeviationPlan> bidder_plans(s.plans.begin() + 1,
                                                     s.plans.end());
  const int variant = s.plans[0].variant();
  const core::AuctioneerStrategy strat = auctioneer_of(variant);
  const core::AuctionResult r =
      world_reuse()
          ? world_
                .ensure([this] {
                  return std::make_unique<core::AuctionWorld>(
                      cfg_, sealed_, chain::TraceMode::kOff);
                })
                .run(strat, bidder_plans)
          : core::AuctionWorld(cfg_, sealed_).run(strat, bidder_plans);

  std::vector<PartyOutcome> outcomes;
  outcomes.push_back(
      {"auctioneer", s.plans[0].conforms_within(cfg_.delta), r.auctioneer,
       {}});
  for (std::size_t i = 0; i < bidder_plans.size(); ++i) {
    PartyOutcome o{"bidder-" + std::to_string(i + 1),
                   s.plans[i + 1].conforms_within(cfg_.delta), r.bidders[i],
                   {}};
    const auto it = o.payoff.by_symbol.find("ticket");
    if (it != o.payoff.by_symbol.end() && it->second > 0) {
      o.bound.goods_received = true;
      o.bound.spend_allowance = cfg_.bids[i];  // never pay above the bid
    } else if (o.conforming && variant != 0 &&
               strat != core::AuctioneerStrategy::kNoSetup && !r.completed &&
               cfg_.bids[i] > 0) {
      // §9.2: a conforming bidder locked its bid (the auctioneer did set
      // up, so bidding happened) and the deviant auctioneer killed the
      // auction without shipping it tickets — it is owed the premium p.
      o.bound.min_coin_delta = cfg_.premium_unit;
    }
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

// ---------------------------------------------------------------------------
// Brokered sale
// ---------------------------------------------------------------------------

std::vector<PartyOutcome> BrokerDealAdapter::run(const Schedule& s) const {
  if (s.plans.size() != 3) {
    throw std::invalid_argument("broker schedule needs 3 plans");
  }
  const core::BrokerResult r =
      world_reuse()
          ? world_
                .ensure([this] {
                  return std::make_unique<core::BrokerWorld>(
                      cfg_, chain::TraceMode::kOff);
                })
                .run(s.plans[0], s.plans[1], s.plans[2])
          : core::run_broker_deal(cfg_, s.plans[0], s.plans[1], s.plans[2]);

  // Alice never escrows a principal of her own (§8: she brokers other
  // people's assets), so her hedge floor is breaking even. Bob and Carol
  // are sellers: a locked-and-refunded principal earns at least the base
  // premium p (§8.2's single-round formula compensates every lock-up with
  // at least one premium unit).
  PartyOutcome alice{"alice", s.plans[0].conforms_within(cfg_.delta), r.alice,
                     {}};
  PartyOutcome bob{"bob", s.plans[1].conforms_within(cfg_.delta), r.bob, {}};
  if (r.bob_lockup > 0) bob.bound.min_coin_delta = cfg_.premium_unit;
  PartyOutcome carol{"carol", s.plans[2].conforms_within(cfg_.delta), r.carol,
                     {}};
  if (r.carol_lockup > 0) carol.bound.min_coin_delta = cfg_.premium_unit;
  return {std::move(alice), std::move(bob), std::move(carol)};
}

// ---------------------------------------------------------------------------
// Bootstrapped premium ladder, geometric or CRR-priced
// ---------------------------------------------------------------------------

BootstrapSwapAdapter::BootstrapSwapAdapter(core::BootstrapConfig cfg,
                                           std::string name)
    : cfg_(std::move(cfg)),
      name_(name.empty()
                ? "bootstrap-ladder-r" + std::to_string(cfg_.rounds)
                : std::move(name)) {
  // Floors from the effective ladder: an unredeemed escrowed principal is
  // refunded together with the rung-1 award on its own chain (§6 FINAL,
  // mirroring §5.2's p_b for Alice). Bob's banana rung-1 carries p_a + p_b,
  // but when both principals were locked, Alice's refund claims the apricot
  // rung-1 that Bob deposited — so his guaranteed net is the difference,
  // exactly the two-party p_a.
  const core::BootstrapSchedule amounts = core::bootstrap_amounts(cfg_);
  alice_floor_ = amounts.apricot[1];
  bob_floor_ = std::max<Amount>(amounts.banana[1] - amounts.apricot[1], 0);
}

std::vector<PartyOutcome> BootstrapSwapAdapter::run(const Schedule& s) const {
  if (s.plans.size() != 2) {
    throw std::invalid_argument("bootstrap schedule needs 2 plans");
  }
  const core::BootstrapResult r =
      world_reuse()
          ? world_
                .ensure([this] {
                  return std::make_unique<core::BootstrapWorld>(
                      cfg_, chain::TraceMode::kOff);
                })
                .run(s.plans[0], s.plans[1])
          : core::run_bootstrap_swap(cfg_, s.plans[0], s.plans[1]);

  PartyOutcome alice{"alice", s.plans[0].conforms_within(cfg_.delta), r.alice,
                     {}};
  if (r.alice_lockup > 0) alice.bound.min_coin_delta = alice_floor_;
  PartyOutcome bob{"bob", s.plans[1].conforms_within(cfg_.delta), r.bob, {}};
  if (r.bob_lockup > 0) bob.bound.min_coin_delta = bob_floor_;
  return {std::move(alice), std::move(bob)};
}

BootstrapSwapAdapter make_crr_ladder_adapter(core::BootstrapConfig cfg,
                                             const CrrMarket& m) {
  // CRR-prices the single premium rung pair of a one-round ladder: p_b for
  // Alice's principal lock-up, p_a for Bob's, banana rung = p_a + p_b
  // (§5.2). The lock-up windows mirror the two-party deadlines: Alice's
  // principal is at risk for up to 6 Delta ticks, Bob's for 5 Delta.
  cfg.rounds = 1;
  const Amount p_b = std::max<Amount>(
      core::sore_loser_premium(cfg.alice_tokens, m.volatility, m.rate,
                               6 * cfg.delta, m.ticks_per_year),
      1);
  const Amount p_a = std::max<Amount>(
      core::sore_loser_premium(cfg.bob_tokens, m.volatility, m.rate,
                               5 * cfg.delta, m.ticks_per_year),
      1);
  cfg.apricot_premiums = {p_b};
  cfg.banana_premiums = {p_a + p_b};
  return BootstrapSwapAdapter(std::move(cfg), "crr-ladder");
}

}  // namespace xchain::sim
