#include "sim/scenario.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <iterator>
#include <limits>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

#include "chain/snapshot.hpp"
#include "core/crr.hpp"
#include "sim/consult.hpp"

namespace xchain::sim {

namespace {

/// Mixed-radix view of one adapter's raw schedule space (party 0's plan
/// least significant — exactly the order the serial enumeration visits).
/// Random access by raw index lets parallel shards be plain index ranges,
/// so no path ever materializes the cross product (it is exponential in
/// the party count).
///
/// Construction applies the strategy-space bounds: halt-only spaces are
/// enumerated whole (back-compat, never truncated); delay spaces cap each
/// party's plan list and then trim all lists to the largest uniform
/// per-party size whose cross product fits the schedule budget, recording
/// ParamGrid-style truncation notices. Per-party lists put the halt-only
/// plans first, so halt coverage survives trimming longest.
class ScheduleSpace {
 public:
  ScheduleSpace(const ProtocolAdapter& adapter, const StrategySpace& strategies)
      : adapter_(adapter) {
    const std::size_t n = adapter.party_count();
    std::vector<PartyPlanSpace> raw;
    raw.reserve(n);
    const std::size_t cap = strategies.halt_only()
                                ? std::numeric_limits<std::size_t>::max()
                                : strategies.max_plans_per_party;
    for (std::size_t p = 0; p < n; ++p) {
      raw.push_back(
          adapter.plan_space(static_cast<PartyId>(p), strategies, cap));
    }

    if (!strategies.halt_only()) {
      const auto product_at = [&](std::size_t uniform) {
        std::size_t prod = 1;
        for (const PartyPlanSpace& r : raw) {
          const std::size_t s =
              std::max<std::size_t>(std::min(r.plans.size(), uniform), 1);
          if (prod > strategies.max_schedules / s + 1) {
            return std::numeric_limits<std::size_t>::max();
          }
          prod *= s;
        }
        return prod;
      };
      std::size_t uniform = 0;
      for (const PartyPlanSpace& r : raw) {
        uniform = std::max(uniform, r.plans.size());
      }
      while (uniform > 1 && product_at(uniform) > strategies.max_schedules) {
        --uniform;
      }
      for (PartyPlanSpace& r : raw) {
        if (r.plans.size() > uniform) r.plans.resize(uniform);
      }
      for (std::size_t p = 0; p < raw.size(); ++p) {
        if (!raw[p].truncated()) continue;
        truncations_.push_back(
            adapter.name() + ": strategy space '" + strategies.name() +
            "' truncated: party " + std::to_string(p) + " sweeping " +
            std::to_string(raw[p].plans.size()) + " of " +
            std::to_string(raw[p].full_size) + " plans (caps: " +
            std::to_string(strategies.max_plans_per_party) +
            " plans/party, " + std::to_string(strategies.max_schedules) +
            " schedules)");
      }
    }

    spaces_.reserve(raw.size());
    for (PartyPlanSpace& r : raw) spaces_.push_back(std::move(r.plans));
    raw_size_ = 1;
    for (const auto& space : spaces_) raw_size_ *= space.size();
  }

  /// Raw combination count, before any max_deviators filtering.
  std::size_t raw_size() const { return raw_size_; }

  /// The bounded per-party plan lists (index-decoded by make()); the tree
  /// executor's depth-first exploration walks these directly.
  const std::vector<std::vector<DeviationPlan>>& plan_lists() const {
    return spaces_;
  }

  /// Truncation notices from the strategy-space bounds ([] when whole).
  const std::vector<std::string>& truncations() const { return truncations_; }

  /// Decodes raw index `index` into `out`, reusing out's plan storage.
  /// Returns false (leaving `out` unspecified) when the combination
  /// exceeds the deviator budget. Labels are built separately (and only
  /// when needed — per schedule they would dominate the decode cost) via
  /// fill_label().
  bool make(std::size_t index, int max_deviators, Schedule& out,
            bool with_label) const {
    std::size_t rest = index;
    int deviators = 0;
    // Copy-assign into existing plan slots. A clear()-and-push_back loop
    // frees and reallocates every plan's modifier list on every decode;
    // with the tree executor serving most schedules straight from the
    // memo-trie, those per-decode allocations are a measurable slice of
    // the whole sweep loop.
    out.plans.resize(spaces_.size());
    for (std::size_t p = 0; p < spaces_.size(); ++p) {
      const auto& space = spaces_[p];
      const DeviationPlan& plan = space[rest % space.size()];
      rest /= space.size();
      if (!plan.is_conforming()) ++deviators;
      out.plans[p] = plan;
    }
    if (max_deviators >= 0 && deviators > max_deviators) return false;

    if (with_label) {
      fill_label(out);
    } else {
      out.label.clear();
    }
    return true;
  }

  /// Builds the human-readable label for a decoded schedule.
  void fill_label(Schedule& out) const {
    out.label = adapter_.name();
    for (std::size_t p = 0; p < out.plans.size(); ++p) {
      // Appended in steps: `const char* + std::string&&` trips the GCC-12
      // -Wrestrict false positive (PR 105651) under -Werror.
      out.label += p == 0 ? '[' : ',';
      out.label +=
          adapter_.plan_label(static_cast<PartyId>(p), out.plans[p]);
    }
    out.label += "]";
  }

 private:
  const ProtocolAdapter& adapter_;
  std::vector<std::vector<DeviationPlan>> spaces_;
  std::vector<std::string> truncations_;
  std::size_t raw_size_ = 0;
};

/// One contiguous slice of the schedule space, swept independently. Shards
/// carry no protocol name: they are merged into the caller's SweepReport.
struct ShardResult {
  std::size_t schedules_run = 0;
  std::size_t conforming_audited = 0;
  std::vector<Violation> violations;
  /// Raw schedule-space index per violation (aligned with `violations`) —
  /// what the fault-attribution pass re-runs on the faultless twin.
  std::vector<std::size_t> violation_raw;
};

void sweep_range(const ProtocolAdapter& adapter, const ScheduleSpace& space,
                 int max_deviators, std::size_t begin, std::size_t end,
                 ShardResult& out) {
  Schedule s;
  for (std::size_t i = begin; i < end; ++i) {
    // Decode without the label: on a reused world the label strings would
    // be a large fraction of the per-schedule cost, and the audit only
    // needs them on (rare) violations — fill them in after the fact.
    if (!space.make(i, max_deviators, s, /*with_label=*/false)) continue;
    const std::vector<PartyOutcome> outcomes = adapter.run(s);
    const std::size_t before = out.violations.size();
    out.conforming_audited += audit_schedule(s.label, outcomes, out.violations);
    if (out.violations.size() != before) {
      space.fill_label(s);
      for (std::size_t v = before; v < out.violations.size(); ++v) {
        out.violations[v].schedule = s.label;
        out.violation_raw.push_back(i);
      }
    }
    ++out.schedules_run;
  }
}

/// Fault-attribution pass: every violating schedule re-runs on a
/// *faultless twin* — a clone of the adapter with the environment removed
/// (same config, fresh reliable world). A violation whose party audits
/// clean on the twin was caused by the injected chain faults, not by any
/// deviation, and is flagged fault_caused (it still fails the sweep; see
/// Violation::fault_caused). Violations are rare, so the twin's extra
/// runs are noise next to the sweep itself.
void attribute_faults(const ProtocolAdapter& adapter,
                      const ScheduleSpace& space,
                      const std::vector<std::size_t>& violation_raw,
                      SweepReport& report) {
  if (report.violations.empty()) return;
  const std::unique_ptr<ProtocolAdapter> twin = adapter.clone();
  twin->set_environment({});
  Schedule s;
  std::vector<Violation> twin_violations;
  std::size_t last_raw = std::numeric_limits<std::size_t>::max();
  for (std::size_t v = 0; v < report.violations.size(); ++v) {
    const std::size_t raw = violation_raw.at(v);
    if (raw != last_raw) {
      twin_violations.clear();
      space.make(raw, /*max_deviators=*/-1, s, /*with_label=*/false);
      audit_schedule(s.label, twin->run(s), twin_violations);
      last_raw = raw;
    }
    Violation& violation = report.violations[v];
    bool on_twin = false;
    for (const Violation& tv : twin_violations) {
      if (tv.party == violation.party) {
        on_twin = true;
        break;
      }
    }
    violation.fault_caused = !on_twin;
    if (violation.fault_caused) ++report.fault_caused;
  }
}

/// Prefix-sharing schedule-tree executor (the serial sweep's default
/// engine). One instance drives one adapter's TreeFrame through a whole
/// sweep:
///
///   * every executed run logs the (party, ordinal) plan coordinates it
///     actually consulted (ConsultLog, recorded inside Party::act);
///   * finished runs are memoized in a trie keyed by (engine-variant
///     vector, consulted decisions in consultation order) — a schedule
///     whose trie walk reaches a leaf is, by determinism, guaranteed the
///     cached outcomes without touching the world (a dedup hit);
///   * a schedule that must execute is diffed against the last executed
///     run's consult log: everything before the first divergent consult
///     replays identically, so the executor rewinds the world (layered
///     checkpoint stack, one slot per tick) to that tick and runs only the
///     suffix.
///
/// Invariant: snapshot slot t holds the world state at the START of tick
/// t, so snap_depth() == t+1 right after tick t's slot is pushed and
/// rewinding to slot t resumes execution at tick t. Rewinds are
/// integrity-checked against 64-bit world state hashes recorded on
/// sampled *verification runs* (see kVerifyEvery), so a contract or actor
/// whose state_tie() misses a mutable member aborts the sweep instead of
/// corrupting it — at a per-tick cost paid on a fraction of runs rather
/// than all of them.
class TreeExecutor {
 public:
  TreeExecutor(const ProtocolAdapter& adapter, TreeFrame& frame)
      : adapter_(adapter), frame_(frame) {
    for (Party* p : frame_.actors) p->set_consult_log(&log_);
    // The world may arrive dirty: a previous tree sweep leaves end-of-run
    // state behind, with its snapshot stack intact. Slot 0 of a surviving
    // stack is always the clean start-of-tick-0 baseline, so rewind to it.
    // When there is no stack — a fresh world, or one whose stack a legacy
    // run() invalidated (MultiChain::reset's restore() clears it, since
    // the undo log cannot describe history across a baseline jump) — the
    // post-setup reset() lands on the same baseline.
    if (frame_.chains->snap_depth() > 0) {
      rewind_to(0, /*integrity_check=*/false);
    } else {
      frame_.chains->reset();
    }
    // Slot 0 backs every full replay and is never overwritten once
    // created, so its hash stays fresh for the whole sweep.
    hashes_.assign(1, world_hash());
    hashed_to_ = 1;
  }

  ~TreeExecutor() {
    for (Party* p : frame_.actors) p->set_consult_log(nullptr);
  }

  TreeExecutor(const TreeExecutor&) = delete;
  TreeExecutor& operator=(const TreeExecutor&) = delete;

  std::size_t nodes_executed() const { return nodes_executed_; }

  /// Produces the outcomes of the schedule with raw index `raw` (decoded
  /// into `s` by the caller). Dedup hits are the common case and must
  /// cost no allocations and no copies: conformance flags are patched in
  /// place on the leaf's stored outcomes and a reference to them is
  /// returned. After explore() the leaf comes from an O(1) table lookup;
  /// otherwise (filtered sweeps) the memo-trie is walked and a miss
  /// executes the (shared-prefix-skipping) run into `scratch`.
  const std::vector<PartyOutcome>& run_one(std::size_t raw, const Schedule& s,
                                           std::vector<PartyOutcome>& scratch) {
    if (!leaf_of_.empty()) {
      TrieNode* node = leaf_of_[raw];
      patch_conformance(s, node->outcomes);
      return node->outcomes;
    }
    key_.clear();
    for (const DeviationPlan& p : s.plans) key_.push_back(p.variant());
    TrieNode* node = &roots_[key_];
    while (!node->leaf && node->party != kNoParty) {
      const ActionPolicy pol = s.plans[node->party].policy(node->ordinal);
      TrieNode* child = nullptr;
      for (auto& e : node->edges) {
        if (e.first == pol) {
          child = e.second.get();
          break;
        }
      }
      if (!child) break;
      node = child;
    }
    if (node->leaf) {
      patch_conformance(s, node->outcomes);
      return node->outcomes;
    }

    Tick resume = 0;
    if (has_last_ && last_key_ == key_) resume = divergence_tick(s);
    execute(s, resume);
    ++nodes_executed_;
    scratch = adapter_.tree_collect(s);
    memoize(scratch);
    return scratch;
  }

  /// Pre-populates the trie by a depth-first walk of the schedule tree:
  /// every distinct consulted-decision path executes exactly once, and
  /// each path resumes from its branch point (rewind to the branch tick,
  /// run only the new suffix) — so total tick work is proportional to the
  /// size of the TREE, not leaves x horizon. After exploration every
  /// run_one() is a trie hit. Only sound for unfiltered sweeps: a
  /// deviator budget couples parties globally (the count of deviating
  /// plans), which per-branch candidate sets cannot express — filtered
  /// sweeps use the lazy run_one() path instead.
  void explore(const std::vector<std::vector<DeviationPlan>>& lists) {
    lists_ = &lists;
    const std::size_t n = lists.size();
    // Raw-index strides matching ScheduleSpace::make's decode (party 0 is
    // the fastest-varying digit). Every leaf learns the exact set of
    // plan-index combinations it covers, so leaf_of_ maps each raw index
    // straight to its leaf and run_one() never walks the trie again.
    strides_.assign(n, 1);
    std::size_t total = 1;
    for (std::size_t p = 0; p < n; ++p) {
      strides_[p] = total;
      total *= lists[p].size();
    }
    leaf_of_.assign(total, nullptr);
    // Engine-variant classes per party, in first-seen (= enumeration)
    // order. Variants steer engines outside the consultation mechanism,
    // so each cross-product choice of classes is its own tree.
    std::vector<std::vector<std::pair<int, std::vector<int>>>> classes(n);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t i = 0; i < lists[p].size(); ++i) {
        const int v = lists[p][i].variant();
        auto it = std::find_if(classes[p].begin(), classes[p].end(),
                               [v](const auto& c) { return c.first == v; });
        if (it == classes[p].end()) {
          classes[p].push_back({v, {}});
          it = std::prev(classes[p].end());
        }
        it->second.push_back(static_cast<int>(i));
      }
    }
    std::vector<std::size_t> pick(n, 0);
    while (true) {
      std::vector<std::vector<int>> cand(n);
      for (std::size_t p = 0; p < n; ++p) {
        cand[p] = classes[p][pick[p]].second;
      }
      dfs(cand, 0, -1);
      std::size_t p = 0;
      for (; p < n; ++p) {
        if (++pick[p] < classes[p].size()) break;
        pick[p] = 0;
      }
      if (p == n) break;
    }
    // The branch partition argument says the leaves' coverage sets tile
    // the whole space; a hole here means a completeness bug, and serving
    // it silently would mis-attribute outcomes.
    for (const TrieNode* node : leaf_of_) {
      if (node == nullptr) {
        throw std::logic_error(
            adapter_.name() +
            ": tree exploration left part of the schedule space uncovered");
      }
    }
  }

 private:
  /// One memo-trie node: the question "which policy does `party`'s plan
  /// give ordinal `ordinal`?", one edge per answer seen so far. Leaves
  /// carry the outcomes of the run that ended there. Roots live in a map
  /// keyed by the schedule's variant vector: variants steer engines
  /// outside the consultation mechanism (the auctioneer's declaration
  /// strategy), so runs under different variants never share nodes.
  struct TrieNode {
    PartyId party = kNoParty;
    int ordinal = -1;
    bool leaf = false;
    std::vector<PartyOutcome> outcomes;
    std::vector<std::pair<ActionPolicy, std::unique_ptr<TrieNode>>> edges;
  };

  std::uint64_t world_hash() const {
    std::uint64_t h = frame_.chains->state_hash();
    for (const Party* p : frame_.actors) p->state_hash(h);
    return h;
  }

  /// Hashing every pushed slot would cost a full world walk per executed
  /// tick — more than the execution itself. Instead, every kVerifyEvery-th
  /// executed run (and the first few, so broken snapshots fail in the
  /// smallest reproducer) is a *verification run*: its pushes record the
  /// world hash, and any later rewind into a still-fresh hashed slot
  /// recomputes and compares. hashed_to_ tracks how many leading slots
  /// hold fresh hashes (a hashless push over a slot stales it and
  /// everything above).
  static constexpr std::size_t kVerifyEvery = 32;

  bool verifying() const {
    return nodes_executed_ < 2 || nodes_executed_ % kVerifyEvery == 0;
  }

  void push_slot(Tick t, bool with_hash) {
    const std::size_t d = static_cast<std::size_t>(t);
    frame_.chains->snap_push();
    for (Party* p : frame_.actors) {
      p->snapshot(chain::SnapshotOp::kPush, d);
    }
    if (with_hash && hashed_to_ >= d) {
      if (hashes_.size() <= d) hashes_.resize(d + 1);
      hashes_[d] = world_hash();
      hashed_to_ = d + 1;
    } else if (hashed_to_ > d) {
      hashed_to_ = d;
    }
  }

  void rewind_to(Tick t, bool integrity_check) {
    const std::size_t d = static_cast<std::size_t>(t);
    frame_.chains->snap_rewind(d);
    for (Party* p : frame_.actors) {
      p->snapshot(chain::SnapshotOp::kRestore, d);
    }
    if (integrity_check && d < hashed_to_ && world_hash() != hashes_[d]) {
      throw std::logic_error(
          adapter_.name() + ": tree executor state hash mismatch after "
          "rewind to tick " + std::to_string(t) +
          " — a contract or actor snapshot misses a mutable member (its "
          "state_tie() must list exactly the members reset() clears)");
    }
  }

  /// One depth-first exploration step. `cand[p]` lists the indices (into
  /// lists_[p]) of party p's plans compatible with the current path prefix;
  /// each party's representative — the first candidate — executes from tick
  /// `from` (the world holds the prefix state; positions <= from_pos of the
  /// consult log are the prefix and belong to ancestor frames). The run is
  /// memoized, then its NEW consult positions are walked deepest-first: at
  /// each, the consulted party's still-viable candidates are partitioned by
  /// their answer, and every class other than the taken one becomes a child
  /// branch — rewind to the consult's tick, re-run with a representative of
  /// the class, recurse. Deepest-first order keeps every rewind target
  /// inside the shared prefix of the snapshot stack.
  void dfs(const std::vector<std::vector<int>>& cand, Tick from,
           std::ptrdiff_t from_pos) {
    Schedule s;
    s.plans.reserve(cand.size());
    for (std::size_t p = 0; p < cand.size(); ++p) {
      s.plans.push_back(
          (*lists_)[p][static_cast<std::size_t>(cand[p].front())]);
    }
    key_.clear();
    for (const DeviationPlan& pl : s.plans) key_.push_back(pl.variant());
    execute(s, from);
    ++nodes_executed_;
    TrieNode* const leaf = memoize(adapter_.tree_collect(s));

    // Branch exploration rewrites log_, so walk a copy of this run's path.
    const std::vector<ConsultEntry> path = log_.entries();
    // Viability filter: does plan `pl` of `party` agree with every answer
    // the path consulted from that party before position `upto`?
    const auto viable = [&](PartyId party, const DeviationPlan& pl,
                            std::size_t upto) {
      for (std::size_t j = 0; j < upto; ++j) {
        if (path[j].party != party) continue;
        if (pl.policy(path[j].ordinal) != path[j].pol) return false;
      }
      return true;
    };

    // This leaf serves exactly the cross-product of each party's
    // candidates that agree with the complete path — record it so
    // run_one() resolves raw indices with one table load. (Distinct
    // leaves differ at their first divergent consulted answer, so the
    // sets written here never collide.)
    {
      std::vector<std::vector<int>> covered(cand.size());
      for (std::size_t p = 0; p < cand.size(); ++p) {
        for (const int idx : cand[p]) {
          if (viable(static_cast<PartyId>(p),
                     (*lists_)[p][static_cast<std::size_t>(idx)],
                     path.size())) {
            covered[p].push_back(idx);
          }
        }
      }
      std::vector<std::size_t> at(cand.size(), 0);
      while (true) {
        std::size_t raw = 0;
        for (std::size_t p = 0; p < cand.size(); ++p) {
          raw += static_cast<std::size_t>(covered[p][at[p]]) * strides_[p];
        }
        leaf_of_[raw] = leaf;
        std::size_t p = 0;
        for (; p < cand.size(); ++p) {
          if (++at[p] < covered[p].size()) break;
          at[p] = 0;
        }
        if (p == cand.size()) break;
      }
    }
    for (std::size_t i = path.size(); i-- > 0;) {
      if (static_cast<std::ptrdiff_t>(i) <= from_pos) break;
      const ConsultEntry& e = path[i];
      const auto& plans = (*lists_)[e.party];
      std::vector<int> pool;
      for (const int idx : cand[e.party]) {
        if (viable(e.party, plans[static_cast<std::size_t>(idx)], i)) {
          pool.push_back(idx);
        }
      }
      std::vector<ActionPolicy> seen{e.pol};
      for (const int idx : pool) {
        const ActionPolicy alt =
            plans[static_cast<std::size_t>(idx)].policy(e.ordinal);
        if (std::find(seen.begin(), seen.end(), alt) != seen.end()) continue;
        seen.push_back(alt);
        std::vector<std::vector<int>> nc(cand.size());
        for (std::size_t q = 0; q < cand.size(); ++q) {
          if (q == static_cast<std::size_t>(e.party)) {
            for (const int pi : pool) {
              if (plans[static_cast<std::size_t>(pi)].policy(e.ordinal) ==
                  alt) {
                nc[q].push_back(pi);
              }
            }
          } else {
            for (const int qi : cand[q]) {
              if (viable(static_cast<PartyId>(q),
                         (*lists_)[q][static_cast<std::size_t>(qi)], i)) {
                nc[q].push_back(qi);
              }
            }
          }
        }
        dfs(nc, e.tick, static_cast<std::ptrdiff_t>(i));
      }
    }
  }

  /// First tick at which `s` answers a consulted coordinate differently
  /// from the last executed run — the resume point. No divergence cannot
  /// happen on a trie miss (identical consulted answers would have reached
  /// the leaf); replay in full if it somehow does.
  Tick divergence_tick(const Schedule& s) const {
    for (const ConsultEntry& e : log_.entries()) {
      if (s.plans[e.party].policy(e.ordinal) != e.pol) return e.tick;
    }
    return 0;
  }

  void execute(const Schedule& s, Tick resume) {
    if (frame_.chains->snap_depth() > static_cast<std::size_t>(resume)) {
      rewind_to(resume, /*integrity_check=*/true);
    }
    adapter_.tree_set_plans(s);
    if (resume == 0) {
      log_.begin_run(frame_.actors.size());
    } else {
      // Entries before the resume tick stand: the restored state already
      // reflects those decisions (and their queued delayed actions), and
      // their answers agree with `s` by choice of the resume point.
      log_.begin_resumed_run(resume);
    }
    const bool with_hash = verifying();
    for (Tick t = resume; t < frame_.horizon; ++t) {
      if (frame_.chains->snap_depth() <= static_cast<std::size_t>(t)) {
        push_slot(t, with_hash);
      }
      for (Party* p : frame_.actors) p->tick(*frame_.chains, t);
      frame_.chains->produce_all(t);
    }
    last_key_ = key_;
    has_last_ = true;
  }

  /// Records the just-executed run in the trie (returning its leaf),
  /// verifying determinism: runs sharing a decision prefix must consult
  /// the same coordinate next.
  TrieNode* memoize(const std::vector<PartyOutcome>& out) {
    TrieNode* node = &roots_[key_];
    for (const ConsultEntry& e : log_.entries()) {
      if (node->leaf ||
          (node->party != kNoParty &&
           (node->party != e.party || node->ordinal != e.ordinal))) {
        throw std::logic_error(
            adapter_.name() +
            ": tree executor consult sequence diverged between runs "
            "sharing a decision prefix — engine is not deterministic in "
            "its consulted plan coordinates");
      }
      node->party = e.party;
      node->ordinal = e.ordinal;
      TrieNode* child = nullptr;
      for (auto& edge : node->edges) {
        if (edge.first == e.pol) {
          child = edge.second.get();
          break;
        }
      }
      if (!child) {
        node->edges.emplace_back(e.pol, std::make_unique<TrieNode>());
        child = node->edges.back().second.get();
      }
      node = child;
    }
    if (node->party != kNoParty || node->leaf) {
      throw std::logic_error(
          adapter_.name() +
          ": tree executor run consulted a strict prefix of an earlier "
          "run with equal answers — engine is not deterministic");
    }
    node->leaf = true;
    node->outcomes = out;
    return node;
  }

  /// Conformance flags depend on plan coordinates a run may never consult
  /// (a halted party's later ordinals, say), so they are the one outcome
  /// field that can differ between schedules sharing a leaf — recompute
  /// them per schedule. Everything else is determined by the executed
  /// path: adapters keep their HedgeBound terms path-determined (see
  /// TicketAuctionAdapter::outcomes_from).
  void patch_conformance(const Schedule& s,
                         std::vector<PartyOutcome>& out) const {
    const Tick delta = adapter_.delta();
    for (std::size_t p = 0; p < out.size(); ++p) {
      out[p].conforming = s.plans[p].conforms_within(delta);
    }
  }

  const ProtocolAdapter& adapter_;
  TreeFrame& frame_;
  ConsultLog log_;
  std::map<std::vector<int>, TrieNode> roots_;
  const std::vector<std::vector<DeviationPlan>>* lists_ = nullptr;
  std::vector<TrieNode*> leaf_of_;  ///< raw index -> leaf, after explore()
  std::vector<std::size_t> strides_;  ///< raw-index stride per party
  std::vector<std::uint64_t> hashes_;  ///< world hash per snapshot slot
  std::size_t hashed_to_ = 0;  ///< leading slots whose hashes are fresh
  std::vector<int> key_;               ///< current schedule's variant vector
  std::vector<int> last_key_;          ///< last executed run's variant vector
  bool has_last_ = false;
  std::size_t nodes_executed_ = 0;
};

}  // namespace

std::string SweepReport::line() const {
  return protocol + ": " + std::to_string(schedules_run) + " schedules, " +
         std::to_string(conforming_audited) + " conforming-party audits, " +
         std::to_string(violations.size()) + " violations";
}

std::string SweepReport::str() const {
  std::string s = line();
  for (const std::string& t : truncations) {
    s += "\n  " + t;
  }
  for (const Violation& v : violations) {
    s += "\n  " + v.str();
  }
  return s;
}

void validate_sweep_options(const SweepOptions& opts) {
  if (opts.max_deviators < -1) {
    throw std::invalid_argument(
        "SweepOptions.max_deviators must be >= -1 (-1 = unbounded), got " +
        std::to_string(opts.max_deviators));
  }
  if (opts.strategies.max_plans_per_party == 0) {
    throw std::invalid_argument(
        "StrategySpace.max_plans_per_party must be >= 1");
  }
  if (opts.strategies.max_schedules == 0) {
    throw std::invalid_argument("StrategySpace.max_schedules must be >= 1");
  }
}

std::vector<Schedule> ScenarioRunner::enumerate(int max_deviators) const {
  return enumerate(SweepOptions{max_deviators, /*threads=*/1, {}});
}

std::vector<Schedule> ScenarioRunner::enumerate(
    const SweepOptions& opts) const {
  validate_sweep_options(opts);
  const ScheduleSpace space(adapter_, opts.strategies);
  std::vector<Schedule> schedules;
  Schedule s;
  for (std::size_t i = 0; i < space.raw_size(); ++i) {
    if (space.make(i, opts.max_deviators, s, /*with_label=*/true)) {
      schedules.push_back(std::move(s));
    }
  }
  return schedules;
}

std::size_t ScenarioRunner::schedule_count(
    const SweepOptions& opts, std::vector<std::string>* truncations) const {
  validate_sweep_options(opts);
  const ScheduleSpace space(adapter_, opts.strategies);
  if (truncations) {
    truncations->insert(truncations->end(), space.truncations().begin(),
                        space.truncations().end());
  }
  if (opts.max_deviators < 0) return space.raw_size();
  std::size_t count = 0;
  Schedule s;
  for (std::size_t i = 0; i < space.raw_size(); ++i) {
    if (space.make(i, opts.max_deviators, s, /*with_label=*/false)) ++count;
  }
  return count;
}

SweepReport ScenarioRunner::sweep(int max_deviators) const {
  return sweep(SweepOptions{max_deviators, /*threads=*/1, {}});
}

SweepReport ScenarioRunner::sweep(const SweepOptions& opts) const {
  validate_sweep_options(opts);
  SweepReport report;
  report.protocol = adapter_.name();

  const ScheduleSpace space(adapter_, opts.strategies);
  report.truncations = space.truncations();
  unsigned threads = opts.threads != 0
                         ? opts.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  // Spawning a worker only pays for itself over a batch of schedules:
  // clamp so each worker gets at least ~16, degrading small spaces toward
  // the serial path instead of paying thread/clone overhead for microwork.
  constexpr std::size_t kMinSchedulesPerWorker = 16;
  threads = static_cast<unsigned>(std::min<std::size_t>(
      threads,
      std::max<std::size_t>(space.raw_size() / kMinSchedulesPerWorker, 1)));
  report.workers = threads;

  // An active chain environment forces the brute executor: faults carry
  // mempool contents across blocks, and the tree executor's layered
  // snapshots require an empty mempool at every branch point. It also
  // requires world reuse — the legacy fresh-world run paths build their
  // chains outside the adapter's environment hook and would silently
  // sweep a reliable world.
  const bool env_active = adapter_.environment().active();
  if (env_active && !adapter_.world_reuse()) {
    throw std::invalid_argument(
        "a chain environment (faults/resilience) needs world reuse, but "
        "adapter '" +
        adapter_.name() + "' has world reuse disabled");
  }
  if (env_active && opts.executor == SweepExecutor::kTree) {
    throw std::invalid_argument(
        "SweepOptions.executor = kTree, but adapter '" + adapter_.name() +
        "' has an active chain environment (fault-injected sweeps run on "
        "the brute executor)");
  }
  const bool tree_capable = !env_active && adapter_.world_reuse() &&
                            adapter_.tree_frame() != nullptr;
  if (opts.executor == SweepExecutor::kTree && !tree_capable) {
    throw std::invalid_argument(
        "SweepOptions.executor = kTree, but adapter '" + adapter_.name() +
        "' is not tree-capable (needs world reuse and tree hooks)");
  }
  const bool use_tree =
      opts.executor == SweepExecutor::kTree ||
      (opts.executor == SweepExecutor::kAuto && threads <= 1 && tree_capable);

  if (use_tree) {
    // The tree executor is inherently serial (one world, one snapshot
    // stack); kTree overrides any thread request.
    report.workers = 1;
    TreeExecutor exec(adapter_, *adapter_.tree_frame());
    // Unfiltered sweeps pre-populate the trie depth-first (each distinct
    // decision path executes once, from its branch point); the schedule
    // loop below then only audits trie hits. A deviator budget couples
    // parties globally, so filtered sweeps skip exploration and let
    // run_one() execute lazily instead.
    if (opts.max_deviators < 0 && space.raw_size() > 0) {
      exec.explore(space.plan_lists());
    }
    Schedule s;
    std::vector<PartyOutcome> scratch;
    for (std::size_t i = 0; i < space.raw_size(); ++i) {
      if (!space.make(i, opts.max_deviators, s, /*with_label=*/false)) {
        continue;
      }
      const std::vector<PartyOutcome>& outcomes = exec.run_one(i, s, scratch);
      const std::size_t before = report.violations.size();
      report.conforming_audited +=
          audit_schedule(s.label, outcomes, report.violations);
      if (report.violations.size() != before) {
        space.fill_label(s);
        for (std::size_t v = before; v < report.violations.size(); ++v) {
          report.violations[v].schedule = s.label;
        }
      }
      ++report.schedules_run;
    }
    report.nodes_executed = exec.nodes_executed();
    report.dedup_hits = report.schedules_run - report.nodes_executed;
    report.schedules_covered = report.schedules_run;
    return report;
  }

  if (threads <= 1) {
    ShardResult all;
    sweep_range(adapter_, space, opts.max_deviators, 0, space.raw_size(),
                all);
    report.schedules_run = all.schedules_run;
    report.conforming_audited = all.conforming_audited;
    report.violations = std::move(all.violations);
    report.nodes_executed = report.schedules_run;
    report.schedules_covered = report.schedules_run;
    if (env_active) {
      attribute_faults(adapter_, space, all.violation_raw, report);
    }
    return report;
  }

  // Contiguous raw-index shards, several per worker so uneven
  // per-schedule run costs balance out; workers claim shards through an
  // atomic cursor and decode each index on the fly (constant memory).
  // Merging in shard order reproduces the serial enumeration order
  // exactly, so the report is bit-identical to the serial path's whatever
  // the thread count or claiming order.
  const std::size_t shard_count =
      std::min(space.raw_size(), static_cast<std::size_t>(threads) * 8);
  std::vector<ShardResult> shards(shard_count);
  std::atomic<std::size_t> next_shard{0};
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      try {
        // A private engine per worker: chains built by run() are stateful,
        // and a future adapter may keep per-run scratch state on itself.
        const std::unique_ptr<ProtocolAdapter> engine = adapter_.clone();
        const ScheduleSpace worker_space(*engine, opts.strategies);
        for (std::size_t shard = next_shard.fetch_add(1);
             shard < shard_count; shard = next_shard.fetch_add(1)) {
          const std::size_t begin = shard * space.raw_size() / shard_count;
          const std::size_t end =
              (shard + 1) * space.raw_size() / shard_count;
          sweep_range(*engine, worker_space, opts.max_deviators, begin, end,
                      shards[shard]);
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  std::vector<std::size_t> violation_raw;
  for (ShardResult& shard : shards) {
    report.schedules_run += shard.schedules_run;
    report.conforming_audited += shard.conforming_audited;
    report.violations.insert(report.violations.end(),
                             std::make_move_iterator(shard.violations.begin()),
                             std::make_move_iterator(shard.violations.end()));
    violation_raw.insert(violation_raw.end(), shard.violation_raw.begin(),
                         shard.violation_raw.end());
  }
  report.nodes_executed = report.schedules_run;
  report.schedules_covered = report.schedules_run;
  if (env_active) {
    // The twin runs serially on the caller's adapter clone: violations are
    // rare, and a deterministic single-threaded pass keeps the report
    // byte-identical whatever the worker count.
    attribute_faults(adapter_, space, violation_raw, report);
  }
  return report;
}

// ---------------------------------------------------------------------------
// Bound instances (load generation)
// ---------------------------------------------------------------------------

namespace {

/// Generic LoadInstance over a bound world (core/binding.hpp): owns the
/// world, exposes its tree frame's persistent actors and horizon to the
/// load scheduler, and maps the end-of-run result through the owning
/// adapter's outcome assembly under the all-conforming schedule. The
/// collect functor captures an adapter copy by value, so the instance
/// outlives whoever bound it.
template <class World, class Result>
class BoundWorldInstance final : public LoadInstance {
 public:
  using CollectFn = std::function<std::vector<PartyOutcome>(const Result&)>;

  BoundWorldInstance(std::unique_ptr<World> world, std::size_t parties,
                     CollectFn collect)
      : world_(std::move(world)), collect_(std::move(collect)) {
    TreeFrame& frame = world_->tree_frame();
    world_->tree_set_plans(
        std::vector<DeviationPlan>(parties, DeviationPlan::conforming()));
    actors_ = frame.actors;
    end_ = frame.horizon;
  }

  const std::vector<Party*>& actors() const override { return actors_; }
  Tick end_tick() const override { return end_; }
  std::vector<PartyOutcome> collect() const override {
    return collect_(world_->tree_collect());
  }

 private:
  std::unique_ptr<World> world_;
  CollectFn collect_;
  std::vector<Party*> actors_;
  Tick end_ = 0;
};

/// The all-conforming schedule a bound instance is audited under.
Schedule conforming_schedule(std::size_t parties, std::string label) {
  Schedule s;
  s.plans.assign(parties, DeviationPlan::conforming());
  s.label = std::move(label);
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// Two-party swap
// ---------------------------------------------------------------------------

core::TwoPartyWorld& TwoPartySwapAdapter::world() const {
  return world_.ensure([this] {
    auto w =
        std::make_unique<core::TwoPartyWorld>(cfg_, chain::TraceMode::kOff);
    if (environment().active()) w->set_environment(environment());
    return w;
  });
}

std::vector<PartyOutcome> TwoPartySwapAdapter::outcomes_from(
    const core::TwoPartyResult& r, const Schedule& s) const {
  PartyOutcome alice{"alice", s.plans[0].conforms_within(cfg_.delta), r.alice,
                     {}};
  if (r.alice_lockup > 0) alice.bound.min_coin_delta = cfg_.premium_b;
  PartyOutcome bob{"bob", s.plans[1].conforms_within(cfg_.delta), r.bob, {}};
  if (r.bob_lockup > 0) bob.bound.min_coin_delta = cfg_.premium_a;
  return {std::move(alice), std::move(bob)};
}

std::vector<PartyOutcome> TwoPartySwapAdapter::run(const Schedule& s) const {
  if (s.plans.size() != 2) {
    throw std::invalid_argument("two-party schedule needs 2 plans");
  }
  const core::TwoPartyResult r =
      world_reuse()
          ? world().run(s.plans[0], s.plans[1])
          : core::run_hedged_two_party(cfg_, s.plans[0], s.plans[1]);
  return outcomes_from(r, s);
}

std::unique_ptr<LoadInstance> TwoPartySwapAdapter::bind_instance(
    const core::WorldBinding& binding) const {
  auto w = std::make_unique<core::TwoPartyWorld>(cfg_, binding);
  return std::make_unique<
      BoundWorldInstance<core::TwoPartyWorld, core::TwoPartyResult>>(
      std::move(w), party_count(),
      [a = *this, s = conforming_schedule(2, binding.tag)](
          const core::TwoPartyResult& r) { return a.outcomes_from(r, s); });
}

TreeFrame* TwoPartySwapAdapter::tree_frame() const {
  if (!world_reuse()) return nullptr;
  return &world().tree_frame();
}

void TwoPartySwapAdapter::tree_set_plans(const Schedule& s) const {
  world().tree_set_plans(s.plans);
}

std::vector<PartyOutcome> TwoPartySwapAdapter::tree_collect(
    const Schedule& s) const {
  return outcomes_from(world().tree_collect(), s);
}

// ---------------------------------------------------------------------------
// Multi-party ARC swap
// ---------------------------------------------------------------------------

core::MultiPartyWorld& MultiPartySwapAdapter::world() const {
  return world_.ensure([this] {
    auto w =
        std::make_unique<core::MultiPartyWorld>(cfg_, chain::TraceMode::kOff);
    if (environment().active()) w->set_environment(environment());
    return w;
  });
}

std::vector<PartyOutcome> MultiPartySwapAdapter::outcomes_from(
    const core::MultiPartyResult& r, const Schedule& s) const {
  std::vector<PartyOutcome> outcomes;
  for (std::size_t v = 0; v < cfg_.g.size(); ++v) {
    PartyOutcome o{"party-" + std::to_string(v),
                   s.plans[v].conforms_within(cfg_.delta), r.payoffs[v], {}};
    if (cfg_.hedged) {
      o.bound.min_coin_delta = cfg_.premium_unit * r.assets_refunded[v];
    }
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

std::vector<PartyOutcome> MultiPartySwapAdapter::run(
    const Schedule& s) const {
  const core::MultiPartyResult r =
      world_reuse() ? world().run(s.plans)
                    : core::run_multi_party_swap(cfg_, s.plans);
  return outcomes_from(r, s);
}

TreeFrame* MultiPartySwapAdapter::tree_frame() const {
  if (!world_reuse()) return nullptr;
  return &world().tree_frame();
}

void MultiPartySwapAdapter::tree_set_plans(const Schedule& s) const {
  world().tree_set_plans(s.plans);
}

std::vector<PartyOutcome> MultiPartySwapAdapter::tree_collect(
    const Schedule& s) const {
  return outcomes_from(world().tree_collect(), s);
}

// ---------------------------------------------------------------------------
// Ticket auction
// ---------------------------------------------------------------------------

namespace {

core::AuctioneerStrategy auctioneer_of(int variant) {
  switch (variant) {
    case 0: return core::AuctioneerStrategy::kHonest;
    case 1: return core::AuctioneerStrategy::kNoSetup;
    case 2: return core::AuctioneerStrategy::kAbandon;
    case 3: return core::AuctioneerStrategy::kDeclareLoser;
    case 4: return core::AuctioneerStrategy::kCoinOnly;
    case 5: return core::AuctioneerStrategy::kTicketOnly;
    default: return core::AuctioneerStrategy::kSplit;
  }
}

}  // namespace

std::string TicketAuctionAdapter::variant_label(int variant) {
  switch (variant) {
    case 0: return "honest";
    case 1: return "no-setup";
    case 2: return "abandon";
    case 3: return "declare-loser";
    case 4: return "coin-only";
    case 5: return "ticket-only";
    default: return "split";
  }
}

PartyPlanSpace TicketAuctionAdapter::plan_space(
    PartyId p, const StrategySpace& strategies, std::size_t cap) const {
  if (p != 0) return ProtocolAdapter::plan_space(p, strategies, cap);
  // The auctioneer's behaviour space is her seven declaration strategies,
  // variant-tagged onto otherwise-conforming plans (she has no halt/delay
  // ordinals of her own: the contracts confine her to publishing or
  // withholding hashkeys). Enumerated in the historical variant order.
  PartyPlanSpace out;
  out.full_size = 7;
  for (int variant = 0; variant < 7 && out.plans.size() < cap; ++variant) {
    out.plans.push_back(
        DeviationPlan::conforming().with_variant(variant));
  }
  return out;
}

std::string TicketAuctionAdapter::plan_label(
    PartyId p, const DeviationPlan& plan) const {
  if (p == 0) return variant_label(plan.variant());
  return plan.str();
}

core::AuctionWorld& TicketAuctionAdapter::world() const {
  return world_.ensure([this] {
    auto w = std::make_unique<core::AuctionWorld>(cfg_, sealed_,
                                                  chain::TraceMode::kOff);
    if (environment().active()) w->set_environment(environment());
    return w;
  });
}

std::vector<PartyOutcome> TicketAuctionAdapter::outcomes_from(
    const core::AuctionResult& r, const Schedule& s) const {
  const int variant = s.plans[0].variant();
  const core::AuctioneerStrategy strat = auctioneer_of(variant);
  std::vector<PartyOutcome> outcomes;
  outcomes.push_back(
      {"auctioneer", s.plans[0].conforms_within(cfg_.delta), r.auctioneer,
       {}});
  for (std::size_t i = 0; i + 1 < s.plans.size(); ++i) {
    PartyOutcome o{"bidder-" + std::to_string(i + 1),
                   s.plans[i + 1].conforms_within(cfg_.delta), r.bidders[i],
                   {}};
    const auto it = o.payoff.by_symbol.find("ticket");
    if (it != o.payoff.by_symbol.end() && it->second > 0) {
      o.bound.goods_received = true;
      o.bound.spend_allowance = cfg_.bids[i];  // never pay above the bid
    } else if (variant != 0 && strat != core::AuctioneerStrategy::kNoSetup &&
               !r.completed && cfg_.bids[i] > 0) {
      // §9.2: a bidder locked its bid (the auctioneer did set up, so
      // bidding happened) and the deviant auctioneer killed the auction
      // without shipping it tickets — a conforming bidder is owed the
      // premium p. The floor is attached whether or not the bidder itself
      // conformed: the audit only reads conforming parties' bounds, and
      // keeping every bound term path-determined (variant + run result +
      // config, never the bidder's own plan) is what lets the tree
      // executor serve cached outcomes to schedules differing only in
      // never-consulted plan coordinates.
      o.bound.min_coin_delta = cfg_.premium_unit;
    }
    outcomes.push_back(std::move(o));
  }
  return outcomes;
}

std::vector<PartyOutcome> TicketAuctionAdapter::run(const Schedule& s) const {
  if (s.plans.size() != party_count()) {
    throw std::invalid_argument("auction schedule plan count mismatch");
  }
  const std::vector<sim::DeviationPlan> bidder_plans(s.plans.begin() + 1,
                                                     s.plans.end());
  const core::AuctioneerStrategy strat = auctioneer_of(s.plans[0].variant());
  const core::AuctionResult r =
      world_reuse() ? world().run(strat, bidder_plans)
                    : core::AuctionWorld(cfg_, sealed_).run(strat,
                                                            bidder_plans);
  return outcomes_from(r, s);
}

TreeFrame* TicketAuctionAdapter::tree_frame() const {
  if (!world_reuse()) return nullptr;
  return &world().tree_frame();
}

void TicketAuctionAdapter::tree_set_plans(const Schedule& s) const {
  world().tree_set_plans(
      auctioneer_of(s.plans[0].variant()),
      std::vector<sim::DeviationPlan>(s.plans.begin() + 1, s.plans.end()));
}

std::vector<PartyOutcome> TicketAuctionAdapter::tree_collect(
    const Schedule& s) const {
  return outcomes_from(world().tree_collect(), s);
}

// ---------------------------------------------------------------------------
// Brokered sale
// ---------------------------------------------------------------------------

core::BrokerWorld& BrokerDealAdapter::world() const {
  return world_.ensure([this] {
    auto w = std::make_unique<core::BrokerWorld>(cfg_, chain::TraceMode::kOff);
    if (environment().active()) w->set_environment(environment());
    return w;
  });
}

std::vector<PartyOutcome> BrokerDealAdapter::outcomes_from(
    const core::BrokerResult& r, const Schedule& s) const {
  // Alice never escrows a principal of her own (§8: she brokers other
  // people's assets), so her hedge floor is breaking even. Bob and Carol
  // are sellers: a locked-and-refunded principal earns at least the base
  // premium p (§8.2's single-round formula compensates every lock-up with
  // at least one premium unit).
  PartyOutcome alice{"alice", s.plans[0].conforms_within(cfg_.delta), r.alice,
                     {}};
  // A seller's lock-up earns the premium floor only when the sale failed
  // for them: principal locked, refunded, AND the counter-asset never
  // arrived. A deviator can strand the two chains half-done — e.g. Carol
  // delaying her relays just past the ticket chain's path deadline while
  // every coin-chain bucket still redeems — leaving Bob with both his
  // refunded tickets and the full purchase price. He is then strictly
  // better off than on completion, so no premium is owed (fuzz-found).
  const auto was_paid = [](const core::PayoffDelta& d, const char* symbol) {
    const auto it = d.by_symbol.find(symbol);
    return it != d.by_symbol.end() && it->second > 0;
  };
  PartyOutcome bob{"bob", s.plans[1].conforms_within(cfg_.delta), r.bob, {}};
  if (r.bob_lockup > 0 && !was_paid(r.bob, "coin")) {
    bob.bound.min_coin_delta = cfg_.premium_unit;
  }
  PartyOutcome carol{"carol", s.plans[2].conforms_within(cfg_.delta), r.carol,
                     {}};
  if (r.carol_lockup > 0 && !was_paid(r.carol, "ticket")) {
    carol.bound.min_coin_delta = cfg_.premium_unit;
  }
  return {std::move(alice), std::move(bob), std::move(carol)};
}

std::vector<PartyOutcome> BrokerDealAdapter::run(const Schedule& s) const {
  if (s.plans.size() != 3) {
    throw std::invalid_argument("broker schedule needs 3 plans");
  }
  const core::BrokerResult r =
      world_reuse()
          ? world().run(s.plans[0], s.plans[1], s.plans[2])
          : core::run_broker_deal(cfg_, s.plans[0], s.plans[1], s.plans[2]);
  return outcomes_from(r, s);
}

std::unique_ptr<LoadInstance> BrokerDealAdapter::bind_instance(
    const core::WorldBinding& binding) const {
  auto w = std::make_unique<core::BrokerWorld>(cfg_, binding);
  return std::make_unique<
      BoundWorldInstance<core::BrokerWorld, core::BrokerResult>>(
      std::move(w), party_count(),
      [a = *this, s = conforming_schedule(3, binding.tag)](
          const core::BrokerResult& r) { return a.outcomes_from(r, s); });
}

TreeFrame* BrokerDealAdapter::tree_frame() const {
  if (!world_reuse()) return nullptr;
  return &world().tree_frame();
}

void BrokerDealAdapter::tree_set_plans(const Schedule& s) const {
  world().tree_set_plans(s.plans);
}

std::vector<PartyOutcome> BrokerDealAdapter::tree_collect(
    const Schedule& s) const {
  return outcomes_from(world().tree_collect(), s);
}

// ---------------------------------------------------------------------------
// Bootstrapped premium ladder, geometric or CRR-priced
// ---------------------------------------------------------------------------

BootstrapSwapAdapter::BootstrapSwapAdapter(core::BootstrapConfig cfg,
                                           std::string name)
    : cfg_(std::move(cfg)),
      name_(name.empty()
                ? "bootstrap-ladder-r" + std::to_string(cfg_.rounds)
                : std::move(name)) {
  // Floors from the effective ladder: an unredeemed escrowed principal is
  // refunded together with the rung-1 award on its own chain (§6 FINAL,
  // mirroring §5.2's p_b for Alice). Bob's banana rung-1 carries p_a + p_b,
  // but when both principals were locked, Alice's refund claims the apricot
  // rung-1 that Bob deposited — so his guaranteed net is the difference,
  // exactly the two-party p_a.
  const core::BootstrapSchedule amounts = core::bootstrap_amounts(cfg_);
  alice_floor_ = amounts.apricot[1];
  bob_floor_ = std::max<Amount>(amounts.banana[1] - amounts.apricot[1], 0);
}

core::BootstrapWorld& BootstrapSwapAdapter::world() const {
  return world_.ensure([this] {
    auto w =
        std::make_unique<core::BootstrapWorld>(cfg_, chain::TraceMode::kOff);
    if (environment().active()) w->set_environment(environment());
    return w;
  });
}

std::vector<PartyOutcome> BootstrapSwapAdapter::outcomes_from(
    const core::BootstrapResult& r, const Schedule& s) const {
  PartyOutcome alice{"alice", s.plans[0].conforms_within(cfg_.delta), r.alice,
                     {}};
  if (r.alice_lockup > 0) alice.bound.min_coin_delta = alice_floor_;
  PartyOutcome bob{"bob", s.plans[1].conforms_within(cfg_.delta), r.bob, {}};
  if (r.bob_lockup > 0) bob.bound.min_coin_delta = bob_floor_;
  return {std::move(alice), std::move(bob)};
}

std::vector<PartyOutcome> BootstrapSwapAdapter::run(const Schedule& s) const {
  if (s.plans.size() != 2) {
    throw std::invalid_argument("bootstrap schedule needs 2 plans");
  }
  const core::BootstrapResult r =
      world_reuse() ? world().run(s.plans[0], s.plans[1])
                    : core::run_bootstrap_swap(cfg_, s.plans[0], s.plans[1]);
  return outcomes_from(r, s);
}

TreeFrame* BootstrapSwapAdapter::tree_frame() const {
  if (!world_reuse()) return nullptr;
  return &world().tree_frame();
}

void BootstrapSwapAdapter::tree_set_plans(const Schedule& s) const {
  world().tree_set_plans(s.plans);
}

std::vector<PartyOutcome> BootstrapSwapAdapter::tree_collect(
    const Schedule& s) const {
  return outcomes_from(world().tree_collect(), s);
}

// ---------------------------------------------------------------------------
// Witness/attestation bridge
// ---------------------------------------------------------------------------

core::BridgeWorld& BridgeAdapter::world() const {
  return world_.ensure([this] {
    auto w = std::make_unique<core::BridgeWorld>(cfg_, chain::TraceMode::kOff);
    if (environment().active()) w->set_environment(environment());
    return w;
  });
}

std::vector<PartyOutcome> BridgeAdapter::outcomes_from(
    const core::BridgeResult& r, const Schedule& s) const {
  // Every bound term is path-determined (variant + run result + config,
  // never the party's own plan) — required for tree-executor dedup
  // correctness, same as the auction adapters.
  std::vector<PartyOutcome> out;
  PartyOutcome user{"user", s.plans[0].conforms_within(cfg_.delta),
                    r.payoffs[0], {}};
  if (r.transfer_completed) {
    // The wrapped asset arrived; the witness reward pool is the user's
    // legitimate spend in exchange for it.
    user.bound.goods_received = true;
    user.bound.spend_allowance = cfg_.reward_pool();
  } else if (r.committed && cfg_.hedged()) {
    // Stranded commit (witness stall / quorum failure): the forfeited
    // bonds must cover the eager-reward outlay plus the premium floor.
    user.bound.min_coin_delta = cfg_.premium_unit;
  }
  out.push_back(std::move(user));
  for (PartyId w = 1; w <= static_cast<PartyId>(cfg_.n_witnesses); ++w) {
    const std::size_t i = static_cast<std::size_t>(w);
    PartyOutcome o{"witness-" + std::to_string(w),
                   s.plans[i].conforms_within(cfg_.delta), r.payoffs[i], {}};
    // On a completed transfer every conforming witness attested in time
    // and collected its reward; otherwise break-even (a conforming
    // witness's bond always returns — its own settle report carries the
    // attester set that clears it).
    if (r.transfer_completed) o.bound.min_coin_delta = cfg_.witness_reward;
    out.push_back(std::move(o));
  }
  return out;
}

std::vector<PartyOutcome> BridgeAdapter::run(const Schedule& s) const {
  if (s.plans.size() != party_count()) {
    throw std::invalid_argument(name() + " schedule needs " +
                                std::to_string(party_count()) + " plans");
  }
  const core::BridgeResult r = world_reuse() ? world().run(s.plans)
                                             : core::run_bridge(cfg_, s.plans);
  return outcomes_from(r, s);
}

std::unique_ptr<LoadInstance> BridgeAdapter::bind_instance(
    const core::WorldBinding& binding) const {
  // Transfer variant only: account-create has no persistent-actor path.
  if (cfg_.variant != core::BridgeVariant::kTransfer) {
    throw std::logic_error(name() + ": bind_instance not implemented");
  }
  auto w = std::make_unique<core::BridgeWorld>(cfg_, binding);
  return std::make_unique<
      BoundWorldInstance<core::BridgeWorld, core::BridgeResult>>(
      std::move(w), party_count(),
      [a = *this, s = conforming_schedule(party_count(), binding.tag)](
          const core::BridgeResult& r) { return a.outcomes_from(r, s); });
}

TreeFrame* BridgeAdapter::tree_frame() const {
  // Transfer path only: account-create sweeps brute.
  if (!world_reuse() || cfg_.variant != core::BridgeVariant::kTransfer) {
    return nullptr;
  }
  return &world().tree_frame();
}

void BridgeAdapter::tree_set_plans(const Schedule& s) const {
  world().tree_set_plans(s.plans);
}

std::vector<PartyOutcome> BridgeAdapter::tree_collect(
    const Schedule& s) const {
  return outcomes_from(world().tree_collect(), s);
}

BootstrapSwapAdapter make_crr_ladder_adapter(core::BootstrapConfig cfg,
                                             const CrrMarket& m) {
  // CRR-prices the single premium rung pair of a one-round ladder: p_b for
  // Alice's principal lock-up, p_a for Bob's, banana rung = p_a + p_b
  // (§5.2). The lock-up windows mirror the two-party deadlines: Alice's
  // principal is at risk for up to 6 Delta ticks, Bob's for 5 Delta.
  cfg.rounds = 1;
  const Amount p_b = std::max<Amount>(
      core::sore_loser_premium(cfg.alice_tokens, m.volatility, m.rate,
                               6 * cfg.delta, m.ticks_per_year),
      1);
  const Amount p_a = std::max<Amount>(
      core::sore_loser_premium(cfg.bob_tokens, m.volatility, m.rate,
                               5 * cfg.delta, m.ticks_per_year),
      1);
  cfg.apricot_premiums = {p_b};
  cfg.banana_premiums = {p_a + p_b};
  return BootstrapSwapAdapter(std::move(cfg), "crr-ladder");
}

}  // namespace xchain::sim
