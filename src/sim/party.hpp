#pragma once

#include <string>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/schnorr.hpp"

namespace xchain::sim {

/// An active protocol participant. Parties are the only *active* entities
/// in the model (paper §3.1): once per tick they observe public chain state
/// and submit transactions; contracts do the rest.
class Party {
 public:
  Party(PartyId id, std::string name)
      : id_(id), name_(std::move(name)), keys_(crypto::keygen(name_)) {}
  virtual ~Party() = default;

  Party(const Party&) = delete;
  Party& operator=(const Party&) = delete;

  PartyId id() const { return id_; }
  const std::string& name() const { return name_; }
  const crypto::KeyPair& keys() const { return keys_; }
  chain::Address address() const { return chain::Address::party(id_); }

  /// Observe-and-act hook, called once per tick before block production.
  /// Transactions submitted here are applied in this tick's blocks.
  virtual void step(chain::MultiChain& chains, Tick now) = 0;

 private:
  PartyId id_;
  std::string name_;
  crypto::KeyPair keys_;
};

}  // namespace xchain::sim
