#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/schnorr.hpp"
#include "sim/consult.hpp"
#include "sim/deviation.hpp"

namespace xchain::sim {

class Party;

/// Deferred chain mutations, the load generator's determinism seam. When a
/// party carries a TxSink, everything it would do to a chain — submit a
/// transaction, bump a pending fee — is recorded here instead of applied,
/// and the chains stay strictly read-only while the party ticks. The load
/// scheduler ticks instance shards on worker threads (reads race-free by
/// construction), then drains each instance's sink serially in instance-id
/// order, so submission ordinals — and therefore fee-tie ordering, block
/// selection, and every downstream audit — are identical at any thread
/// count. Drained submissions patch their real ids back into the party's
/// outstanding set (Party::resolve_submission).
class TxSink {
 public:
  void clear() {
    submits_.clear();
    bumps_.clear();
  }
  bool empty() const { return submits_.empty() && bumps_.empty(); }

  /// Applies every recorded mutation in record order, then clears.
  void drain();

 private:
  friend class Party;
  struct DeferredSubmit {
    chain::Blockchain* bc;
    chain::Transaction tx;
    Party* party;          ///< null for untracked fire-and-forget traffic
    std::size_t slot;      ///< outstanding_ index to patch with the real id
  };
  struct DeferredBump {
    chain::Blockchain* bc;
    std::uint64_t id;
    Amount fee;
  };
  std::vector<DeferredSubmit> submits_;
  std::vector<DeferredBump> bumps_;
};

/// An active protocol participant. Parties are the only *active* entities
/// in the model (paper §3.1): once per tick they observe public chain state
/// and submit transactions; contracts do the rest.
///
/// Every party carries a DeviationPlan. Engine code marks each scheduled
/// action's decision point with act(): the plan then performs the action
/// immediately, queues it `delay` ticks into the future (the Scheduler
/// flushes the queue, via tick(), before the party's next step()), or
/// drops it — so halting, timely lateness, and past-deadline
/// timing-griefing all flow through one per-ordinal mechanism instead of
/// per-engine strategy enums.
///
/// Parties are rebuilt per sweep schedule (their deviation plan changes),
/// so construction sits on the sweep hot path: key pairs come from the
/// process-wide keygen cache, the submit() helper below builds trace notes
/// only on chains that actually record them, and the conforming fast path
/// of act() adds no allocation over a direct submit.
class Party {
 public:
  Party(PartyId id, std::string name)
      : id_(id), name_(std::move(name)), keys_(crypto::keygen_cached(name_)) {}
  Party(PartyId id, std::string name, DeviationPlan plan)
      : id_(id),
        name_(std::move(name)),
        keys_(crypto::keygen_cached(name_)),
        plan_(std::move(plan)) {}
  virtual ~Party() = default;

  Party(const Party&) = delete;
  Party& operator=(const Party&) = delete;

  PartyId id() const { return id_; }
  const std::string& name() const { return name_; }
  const crypto::KeyPair& keys() const { return keys_; }
  const DeviationPlan& plan() const { return plan_; }
  chain::Address address() const { return chain::Address::party(account_id()); }

  /// The party's on-chain identity: its protocol-local id offset by the
  /// instance's account base. Private-world protocols keep base 0, where
  /// account_id() == id(); instances bound to a shared MultiChain get
  /// disjoint base ranges so ledger rows and tx senders never collide
  /// across instances while vertex/ordinal logic keeps the local id.
  PartyId account_id() const { return account_base_ + id_; }
  PartyId account_base() const { return account_base_; }
  void set_account_base(PartyId base) { account_base_ = base; }

  /// Attaches (or detaches, with null) the deferred-submission sink — see
  /// TxSink. While attached, this party never mutates a chain directly.
  void set_tx_sink(TxSink* sink) { sink_ = sink; }

  /// Patches the real submission id into an outstanding entry once the
  /// sink drains its deferred submit (TxSink::drain).
  void resolve_submission(std::size_t slot, std::uint64_t id) {
    outstanding_.at(slot).id = id;
  }

  /// One scheduler tick: outstanding (submitted-but-unconfirmed)
  /// transactions are serviced per the chain's ResiliencePolicy, delayed
  /// actions that have come due are submitted next (in the order they
  /// were decided), then the party observes and acts. Called by the
  /// Scheduler; engines override step(), not this.
  void tick(chain::MultiChain& chains, Tick now) {
    now_ = now;
    if (!outstanding_.empty()) service_outstanding(chains, now);
    if (!pending_.empty()) flush_due(chains, now);
    step(chains, now);
  }

  /// Observe-and-act hook, called once per tick before block production.
  /// Transactions submitted here are applied in this tick's blocks.
  virtual void step(chain::MultiChain& chains, Tick now) = 0;

  /// Swaps in a new deviation plan (tree executor: persistent actors are
  /// built once per world and re-planned per schedule).
  void set_plan(DeviationPlan plan) { plan_ = std::move(plan); }

  /// Points act() at the executor's consultation log (null — the default —
  /// records nothing and costs one branch).
  void set_consult_log(ConsultLog* log) { consults_ = log; }

  /// Layered-checkpoint hook, mirroring chain::Contract::snapshot: actors
  /// that participate in tree sweeps derive from
  /// chain::SnapshotState<Self, Party> and list their mutable members in
  /// state_tie() (the base's pending-action queue is handled here). The
  /// default throws so a stateful actor class that never opted in fails
  /// loudly instead of leaking state across branches.
  virtual void snapshot(chain::SnapshotOp op, std::size_t depth) {
    (void)op;
    (void)depth;
    throw std::logic_error(
        "Party::snapshot: party does not support checkpoint stacking "
        "(derive from chain::SnapshotState<Self, Party> and list mutable "
        "members in state_tie())");
  }

  /// Mixes this party's mutable state into the rewind integrity hash.
  virtual void state_hash(std::uint64_t& h) const { state_hash_members(h); }

 protected:
  /// Decision point for the scheduled action `ordinal`, to be reached when
  /// (and only when) the action's guard first holds. Applies the party's
  /// plan: Perform runs `perform(chains)` immediately, Delay(d) queues it
  /// for tick now + d, Drop discards it. Returns false only for Drop, so
  /// callers can distinguish "will happen" from "never will"; either way
  /// the decision is made exactly once — callers flip their did-flags
  /// regardless of the result.
  template <class Fn, class = std::enable_if_t<
                          std::is_invocable_v<Fn&, chain::MultiChain&>>>
  bool act(chain::MultiChain& chains, Tick now, int ordinal, Fn&& perform) {
    const ActionPolicy pol = plan_.policy(ordinal);
    if (consults_) consults_->record(id_, ordinal, pol, now);
    if (pol.choice == ActionChoice::kDrop) return false;
    if (pol.choice == ActionChoice::kDelay && pol.delay > 0) {
      pending_.push_back({now + pol.delay, std::forward<Fn>(perform)});
      return true;
    }
    perform(chains);
    return true;
  }

  /// Submits `effect` to `chain` signed by this party. The trace note
  /// ("<name>: <what>") is only materialized when the chain traces —
  /// sweep runs at TraceMode::kOff never touch the strings.
  void submit(chain::MultiChain& chains, ChainId chain, const char* what,
              std::function<void(chain::TxContext&)> effect) const {
    chain::Blockchain& bc = chains.at(chain);
    chain::Transaction tx;
    tx.sender = account_id();
    if (bc.tracing()) tx.note = name_ + ": " + what;
    tx.effect = std::move(effect);
    dispatch(bc, std::move(tx));
  }

  /// Same, for labels that are themselves costly to build: `label` (any
  /// callable returning a string) only runs on traced chains.
  template <class LabelFn,
            class = std::enable_if_t<std::is_invocable_v<LabelFn&>>>
  void submit(chain::MultiChain& chains, ChainId chain, LabelFn&& label,
              std::function<void(chain::TxContext&)> effect) const {
    chain::Blockchain& bc = chains.at(chain);
    chain::Transaction tx;
    tx.sender = account_id();
    if (bc.tracing()) tx.note = name_ + ": " + label();
    tx.effect = std::move(effect);
    dispatch(bc, std::move(tx));
  }

  /// SnapshotState hooks for the base's own mutable state: the pending
  /// (delayed) action queue and the outstanding (resilience-tracked)
  /// submissions. The queued closures snapshot by value — they capture
  /// plain data — and hash by due-tick (the closure bodies are determined
  /// by the decision that queued them, which the due tick and queue
  /// position pin down); outstanding entries hash by their scalar fields
  /// for the same reason.
  void snapshot_members(chain::SnapshotOp op, std::size_t depth) {
    pending_stack_.apply(op, depth, std::tie(pending_));
    outstanding_stack_.apply(op, depth, std::tie(outstanding_));
  }
  void state_hash_members(std::uint64_t& h) const {
    chain::state_hash_mix(h, pending_.size());
    for (const Pending& p : pending_) {
      chain::state_hash_mix(h, static_cast<std::uint64_t>(p.due));
    }
    chain::state_hash_mix(h, outstanding_.size());
    for (const Outstanding& o : outstanding_) {
      chain::state_hash_mix(h, o.id);
      chain::state_hash_mix(h, static_cast<std::uint64_t>(o.chain));
      chain::state_hash_mix(h, static_cast<std::uint64_t>(o.decided));
    }
  }

 private:
  struct Pending {
    Tick due;
    std::function<void(chain::MultiChain&)> fn;
  };

  /// One fire-and-watch submission (any active ResiliencePolicy): enough
  /// to resubmit the identical payload if the chain drops or evicts it.
  struct Outstanding {
    std::uint64_t id = 0;  ///< current submission id on the chain
    ChainId chain = 0;
    Tick decided = 0;  ///< tick of the first submission (escalation base)
    std::string note;
    std::function<void(chain::TxContext&)> effect;
  };

  /// Hands a fully built transaction to the chain — or, with a TxSink
  /// attached, records it for the serial merge phase. Under an active
  /// ResiliencePolicy the submission is tracked and remembered for
  /// servicing; the naive policy is the historical fire-and-forget.
  void dispatch(chain::Blockchain& bc, chain::Transaction tx) const {
    const chain::ResiliencePolicy& pol = bc.resilience();
    if (!pol.active()) {
      if (sink_) {
        sink_->submits_.push_back({&bc, std::move(tx), nullptr, 0});
      } else {
        bc.submit(std::move(tx));
      }
      return;
    }
    tx.track = true;
    tx.fee = pol.fee_at(now_, now_);
    Outstanding o;
    o.chain = bc.id();
    o.decided = now_;
    o.note = tx.note;
    o.effect = tx.effect;  // copy; the original moves into the mempool
    if (sink_) {
      outstanding_.push_back(std::move(o));  // id patched at drain
      sink_->submits_.push_back({&bc, std::move(tx),
                                 const_cast<Party*>(this),
                                 outstanding_.size() - 1});
    } else {
      o.id = bc.submit(std::move(tx));
      outstanding_.push_back(std::move(o));
    }
  }

  /// Reacts to the fate of tracked submissions: confirmed entries are
  /// forgotten, dropped/evicted ones are resubmitted (at an escalated fee
  /// under kFeeEscalate), and still-pending ones get their priority
  /// bumped as the deadline nears. Runs before flush_due so a resubmission
  /// decided this tick still lands in this tick's block.
  void service_outstanding(chain::MultiChain& chains, Tick now) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < outstanding_.size(); ++i) {
      Outstanding& o = outstanding_[i];
      chain::Blockchain& bc = chains.at(o.chain);
      const chain::ResiliencePolicy& pol = bc.resilience();
      bool keep = true;
      switch (bc.tx_status(o.id)) {
        case chain::TxStatus::kIncluded:
        case chain::TxStatus::kUnknown:
          keep = false;  // confirmed (or statuses were reset: stale entry)
          break;
        case chain::TxStatus::kPending:
          if (pol.kind == chain::ResiliencePolicy::Kind::kFeeEscalate) {
            const Amount fee = pol.fee_at(o.decided, now);
            if (sink_) {
              sink_->bumps_.push_back({&bc, o.id, fee});
            } else {
              bc.bump_fee(o.id, fee);
            }
          }
          break;
        case chain::TxStatus::kDropped:
        case chain::TxStatus::kEvicted: {
          chain::Transaction tx;
          tx.sender = account_id();
          tx.note = o.note;
          tx.effect = o.effect;
          tx.fee = pol.fee_at(o.decided, now);
          tx.track = true;
          if (sink_) {
            // The entry survives compaction at index `kept`; the real id
            // lands there when the sink drains.
            sink_->submits_.push_back({&bc, std::move(tx), this, kept});
          } else {
            o.id = bc.submit(std::move(tx));
          }
          break;
        }
      }
      if (keep) {
        if (kept != i) outstanding_[kept] = std::move(outstanding_[i]);
        ++kept;
      }
    }
    outstanding_.resize(kept);
  }

  void flush_due(chain::MultiChain& chains, Tick now) {
    // Due actions run in decision order; the queue is tiny (one entry per
    // delayed ordinal of one party), so compaction beats cleverness.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].due <= now) {
        pending_[i].fn(chains);
      } else {
        if (kept != i) pending_[kept] = std::move(pending_[i]);
        ++kept;
      }
    }
    pending_.resize(kept);
  }

  PartyId id_;
  std::string name_;
  const crypto::KeyPair& keys_;
  PartyId account_base_ = 0;
  TxSink* sink_ = nullptr;
  DeviationPlan plan_;
  std::vector<Pending> pending_;
  ConsultLog* consults_ = nullptr;
  chain::TieStack<std::vector<Pending>> pending_stack_;
  /// Tick being executed — set by tick() so the const submit() helpers
  /// can stamp decision times; 0 covers setup-phase submissions.
  Tick now_ = 0;
  /// Mutable because submissions happen inside const engine helpers; the
  /// tracked set is logically bookkeeping about an already-made decision.
  mutable std::vector<Outstanding> outstanding_;
  chain::TieStack<std::vector<Outstanding>> outstanding_stack_;
};

inline void TxSink::drain() {
  for (DeferredSubmit& s : submits_) {
    const std::uint64_t id = s.bc->submit(std::move(s.tx));
    if (s.party) s.party->resolve_submission(s.slot, id);
  }
  // Bumps commute with the submissions above (max-of-fees on ids from
  // earlier ticks), so relative order between the two lists is free.
  for (const DeferredBump& b : bumps_) {
    b.bc->bump_fee(b.id, b.fee);
  }
  clear();
}

}  // namespace xchain::sim
