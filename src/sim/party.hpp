#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/schnorr.hpp"
#include "sim/consult.hpp"
#include "sim/deviation.hpp"

namespace xchain::sim {

/// An active protocol participant. Parties are the only *active* entities
/// in the model (paper §3.1): once per tick they observe public chain state
/// and submit transactions; contracts do the rest.
///
/// Every party carries a DeviationPlan. Engine code marks each scheduled
/// action's decision point with act(): the plan then performs the action
/// immediately, queues it `delay` ticks into the future (the Scheduler
/// flushes the queue, via tick(), before the party's next step()), or
/// drops it — so halting, timely lateness, and past-deadline
/// timing-griefing all flow through one per-ordinal mechanism instead of
/// per-engine strategy enums.
///
/// Parties are rebuilt per sweep schedule (their deviation plan changes),
/// so construction sits on the sweep hot path: key pairs come from the
/// process-wide keygen cache, the submit() helper below builds trace notes
/// only on chains that actually record them, and the conforming fast path
/// of act() adds no allocation over a direct submit.
class Party {
 public:
  Party(PartyId id, std::string name)
      : id_(id), name_(std::move(name)), keys_(crypto::keygen_cached(name_)) {}
  Party(PartyId id, std::string name, DeviationPlan plan)
      : id_(id),
        name_(std::move(name)),
        keys_(crypto::keygen_cached(name_)),
        plan_(std::move(plan)) {}
  virtual ~Party() = default;

  Party(const Party&) = delete;
  Party& operator=(const Party&) = delete;

  PartyId id() const { return id_; }
  const std::string& name() const { return name_; }
  const crypto::KeyPair& keys() const { return keys_; }
  const DeviationPlan& plan() const { return plan_; }
  chain::Address address() const { return chain::Address::party(id_); }

  /// One scheduler tick: delayed actions that have come due are submitted
  /// first (in the order they were decided), then the party observes and
  /// acts. Called by the Scheduler; engines override step(), not this.
  void tick(chain::MultiChain& chains, Tick now) {
    if (!pending_.empty()) flush_due(chains, now);
    step(chains, now);
  }

  /// Observe-and-act hook, called once per tick before block production.
  /// Transactions submitted here are applied in this tick's blocks.
  virtual void step(chain::MultiChain& chains, Tick now) = 0;

  /// Swaps in a new deviation plan (tree executor: persistent actors are
  /// built once per world and re-planned per schedule).
  void set_plan(DeviationPlan plan) { plan_ = std::move(plan); }

  /// Points act() at the executor's consultation log (null — the default —
  /// records nothing and costs one branch).
  void set_consult_log(ConsultLog* log) { consults_ = log; }

  /// Layered-checkpoint hook, mirroring chain::Contract::snapshot: actors
  /// that participate in tree sweeps derive from
  /// chain::SnapshotState<Self, Party> and list their mutable members in
  /// state_tie() (the base's pending-action queue is handled here). The
  /// default throws so a stateful actor class that never opted in fails
  /// loudly instead of leaking state across branches.
  virtual void snapshot(chain::SnapshotOp op, std::size_t depth) {
    (void)op;
    (void)depth;
    throw std::logic_error(
        "Party::snapshot: party does not support checkpoint stacking "
        "(derive from chain::SnapshotState<Self, Party> and list mutable "
        "members in state_tie())");
  }

  /// Mixes this party's mutable state into the rewind integrity hash.
  virtual void state_hash(std::uint64_t& h) const { state_hash_members(h); }

 protected:
  /// Decision point for the scheduled action `ordinal`, to be reached when
  /// (and only when) the action's guard first holds. Applies the party's
  /// plan: Perform runs `perform(chains)` immediately, Delay(d) queues it
  /// for tick now + d, Drop discards it. Returns false only for Drop, so
  /// callers can distinguish "will happen" from "never will"; either way
  /// the decision is made exactly once — callers flip their did-flags
  /// regardless of the result.
  template <class Fn, class = std::enable_if_t<
                          std::is_invocable_v<Fn&, chain::MultiChain&>>>
  bool act(chain::MultiChain& chains, Tick now, int ordinal, Fn&& perform) {
    const ActionPolicy pol = plan_.policy(ordinal);
    if (consults_) consults_->record(id_, ordinal, pol, now);
    if (pol.choice == ActionChoice::kDrop) return false;
    if (pol.choice == ActionChoice::kDelay && pol.delay > 0) {
      pending_.push_back({now + pol.delay, std::forward<Fn>(perform)});
      return true;
    }
    perform(chains);
    return true;
  }

  /// Submits `effect` to `chain` signed by this party. The trace note
  /// ("<name>: <what>") is only materialized when the chain traces —
  /// sweep runs at TraceMode::kOff never touch the strings.
  void submit(chain::MultiChain& chains, ChainId chain, const char* what,
              std::function<void(chain::TxContext&)> effect) const {
    chain::Blockchain& bc = chains.at(chain);
    chain::Transaction tx;
    tx.sender = id_;
    if (bc.tracing()) tx.note = name_ + ": " + what;
    tx.effect = std::move(effect);
    bc.submit(std::move(tx));
  }

  /// Same, for labels that are themselves costly to build: `label` (any
  /// callable returning a string) only runs on traced chains.
  template <class LabelFn,
            class = std::enable_if_t<std::is_invocable_v<LabelFn&>>>
  void submit(chain::MultiChain& chains, ChainId chain, LabelFn&& label,
              std::function<void(chain::TxContext&)> effect) const {
    chain::Blockchain& bc = chains.at(chain);
    chain::Transaction tx;
    tx.sender = id_;
    if (bc.tracing()) tx.note = name_ + ": " + label();
    tx.effect = std::move(effect);
    bc.submit(std::move(tx));
  }

  /// SnapshotState hooks for the base's own mutable state: the pending
  /// (delayed) action queue. The queued closures snapshot by value —
  /// they capture plain data — and hash by due-tick (the closure bodies
  /// are determined by the decision that queued them, which the due tick
  /// and queue position pin down).
  void snapshot_members(chain::SnapshotOp op, std::size_t depth) {
    pending_stack_.apply(op, depth, std::tie(pending_));
  }
  void state_hash_members(std::uint64_t& h) const {
    chain::state_hash_mix(h, pending_.size());
    for (const Pending& p : pending_) {
      chain::state_hash_mix(h, static_cast<std::uint64_t>(p.due));
    }
  }

 private:
  struct Pending {
    Tick due;
    std::function<void(chain::MultiChain&)> fn;
  };

  void flush_due(chain::MultiChain& chains, Tick now) {
    // Due actions run in decision order; the queue is tiny (one entry per
    // delayed ordinal of one party), so compaction beats cleverness.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].due <= now) {
        pending_[i].fn(chains);
      } else {
        if (kept != i) pending_[kept] = std::move(pending_[i]);
        ++kept;
      }
    }
    pending_.resize(kept);
  }

  PartyId id_;
  std::string name_;
  const crypto::KeyPair& keys_;
  DeviationPlan plan_;
  std::vector<Pending> pending_;
  ConsultLog* consults_ = nullptr;
  chain::TieStack<std::vector<Pending>> pending_stack_;
};

}  // namespace xchain::sim
