#pragma once

#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "crypto/schnorr.hpp"

namespace xchain::sim {

/// An active protocol participant. Parties are the only *active* entities
/// in the model (paper §3.1): once per tick they observe public chain state
/// and submit transactions; contracts do the rest.
///
/// Parties are rebuilt per sweep schedule (their deviation plan changes),
/// so construction sits on the sweep hot path: key pairs come from the
/// process-wide keygen cache, and the submit() helper below builds trace
/// notes only on chains that actually record them.
class Party {
 public:
  Party(PartyId id, std::string name)
      : id_(id), name_(std::move(name)), keys_(crypto::keygen_cached(name_)) {}
  virtual ~Party() = default;

  Party(const Party&) = delete;
  Party& operator=(const Party&) = delete;

  PartyId id() const { return id_; }
  const std::string& name() const { return name_; }
  const crypto::KeyPair& keys() const { return keys_; }
  chain::Address address() const { return chain::Address::party(id_); }

  /// Observe-and-act hook, called once per tick before block production.
  /// Transactions submitted here are applied in this tick's blocks.
  virtual void step(chain::MultiChain& chains, Tick now) = 0;

 protected:
  /// Submits `effect` to `chain` signed by this party. The trace note
  /// ("<name>: <what>") is only materialized when the chain traces —
  /// sweep runs at TraceMode::kOff never touch the strings.
  void submit(chain::MultiChain& chains, ChainId chain, const char* what,
              std::function<void(chain::TxContext&)> effect) const {
    chain::Blockchain& bc = chains.at(chain);
    chain::Transaction tx;
    tx.sender = id_;
    if (bc.tracing()) tx.note = name_ + ": " + what;
    tx.effect = std::move(effect);
    bc.submit(std::move(tx));
  }

  /// Same, for labels that are themselves costly to build: `label` (any
  /// callable returning a string) only runs on traced chains.
  template <class LabelFn,
            class = std::enable_if_t<std::is_invocable_v<LabelFn&>>>
  void submit(chain::MultiChain& chains, ChainId chain, LabelFn&& label,
              std::function<void(chain::TxContext&)> effect) const {
    chain::Blockchain& bc = chains.at(chain);
    chain::Transaction tx;
    tx.sender = id_;
    if (bc.tracing()) tx.note = name_ + ": " + label();
    tx.effect = std::move(effect);
    bc.submit(std::move(tx));
  }

 private:
  PartyId id_;
  std::string name_;
  const crypto::KeyPair& keys_;
};

}  // namespace xchain::sim
