#include "sim/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <thread>

namespace xchain::sim {

namespace {

/// One expanded configuration awaiting its sweep. The adapter is built at
/// expansion time so factory-level validation (e.g. a malformed auction
/// bid list) fails before any sweep runs, not minutes into the campaign.
struct PendingConfig {
  std::string protocol;
  ParamSet params;
  std::unique_ptr<ProtocolAdapter> adapter;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ConfigResult::line() const {
  std::string head = protocol;
  if (!params.empty()) head += "[" + params + "]";
  return head + ": " + report.line();
}

std::string DryRunConfig::line() const {
  std::string head = protocol;
  if (!params.empty()) head += "[" + params + "]";
  return head + ": " + std::to_string(schedules) + " schedules";
}

std::size_t DryRunReport::total_schedules() const {
  std::size_t n = 0;
  for (const DryRunConfig& c : configs) n += c.schedules;
  return n;
}

std::string DryRunReport::str() const {
  std::string out;
  for (const std::string& t : truncations) {
    if (!t.empty()) out += t + "\n";
  }
  for (const DryRunConfig& c : configs) out += c.line() + "\n";
  out += "campaign (dry run): " + std::to_string(configs.size()) +
         " configurations, " + std::to_string(total_schedules()) +
         " schedules";
  return out;
}

std::size_t CampaignReport::total_schedules() const {
  std::size_t n = 0;
  for (const ConfigResult& c : configs) n += c.report.schedules_run;
  return n;
}

std::size_t CampaignReport::total_conforming_audited() const {
  std::size_t n = 0;
  for (const ConfigResult& c : configs) n += c.report.conforming_audited;
  return n;
}

std::size_t CampaignReport::total_violations() const {
  std::size_t n = 0;
  for (const ConfigResult& c : configs) n += c.report.violations.size();
  return n;
}

std::size_t CampaignReport::total_nodes_executed() const {
  std::size_t n = 0;
  for (const ConfigResult& c : configs) n += c.report.nodes_executed;
  return n;
}

std::size_t CampaignReport::total_schedules_covered() const {
  std::size_t n = 0;
  for (const ConfigResult& c : configs) n += c.report.schedules_covered;
  return n;
}

std::size_t CampaignReport::total_dedup_hits() const {
  std::size_t n = 0;
  for (const ConfigResult& c : configs) n += c.report.dedup_hits;
  return n;
}

std::size_t CampaignReport::total_fault_caused() const {
  std::size_t n = 0;
  for (const ConfigResult& c : configs) n += c.report.fault_caused;
  return n;
}

std::string CampaignReport::str() const {
  std::string out;
  for (const std::string& t : truncations) {
    if (!t.empty()) out += t + "\n";
  }
  for (const ConfigResult& c : configs) {
    out += c.line() + "\n";
    for (const Violation& v : c.report.violations) {
      out += "  " + v.str() + "\n";
    }
  }
  out += "campaign: " + std::to_string(configurations()) +
         " configurations, " + std::to_string(total_schedules()) +
         " schedules, " + std::to_string(total_conforming_audited()) +
         " conforming-party audits, " + std::to_string(total_violations()) +
         " violations";
  return out;
}

// GCC 12's libstdc++ trips -Wrestrict on inlined std::string operator+
// chains (bogus "accessing 9223372036854775810 or more bytes" — GCC PR
// 105651, fixed in GCC 13). The library builds with -Werror, so suppress
// the false positive for just this function, exactly as in
// analysis/model_checker.cpp.
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ < 13
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif
std::string campaign_json(const CampaignReport& report,
                          const CampaignStamp& stamp) {
  std::string out = "{\n";
  out += "  \"benchmark\": \"campaign\",\n";
  out += "  \"git_commit\": \"" + json_escape(stamp.git_commit) + "\",\n";
  out += "  \"build_type\": \"" + json_escape(stamp.build_type) + "\",\n";
  out += "  \"compiler\": \"" + json_escape(stamp.compiler) + "\",\n";
  out += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"strategies\": \"" + json_escape(report.strategies.name()) +
         "\",\n";
  if (report.environment.active()) {
    out += "  \"faults\": \"" + json_escape(report.environment.faults.str()) +
           "\",\n";
    out += "  \"resilience\": \"" +
           json_escape(report.environment.resilience.str()) + "\",\n";
    out += "  \"fault_caused\": " +
           std::to_string(report.total_fault_caused()) + ",\n";
  }
  out += "  \"workers\": " + std::to_string(report.workers) + ",\n";
  out += "  \"configurations\": " + std::to_string(report.configurations()) +
         ",\n";
  out += "  \"schedules_run\": " + std::to_string(report.total_schedules()) +
         ",\n";
  out += "  \"conforming_audited\": " +
         std::to_string(report.total_conforming_audited()) + ",\n";
  out += "  \"nodes_executed\": " +
         std::to_string(report.total_nodes_executed()) + ",\n";
  out += "  \"schedules_covered\": " +
         std::to_string(report.total_schedules_covered()) + ",\n";
  out += "  \"dedup_hits\": " + std::to_string(report.total_dedup_hits()) +
         ",\n";
  out +=
      "  \"violations\": " + std::to_string(report.total_violations()) + ",\n";
  out += "  \"truncations\": [";
  bool first = true;
  for (const std::string& t : report.truncations) {
    if (t.empty()) continue;
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(t) + "\"";
    first = false;
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"configs\": [\n";
  for (std::size_t i = 0; i < report.configs.size(); ++i) {
    const ConfigResult& c = report.configs[i];
    out += "    {\"protocol\": \"" + json_escape(c.protocol) + "\", ";
    out += "\"params\": \"" + json_escape(c.params) + "\", ";
    out += "\"adapter\": \"" + json_escape(c.report.protocol) + "\", ";
    out += "\"schedules\": " + std::to_string(c.report.schedules_run) + ", ";
    out += "\"conforming_audited\": " +
           std::to_string(c.report.conforming_audited) + ", ";
    out += "\"violations\": " + std::to_string(c.report.violations.size());
    if (report.environment.active()) {
      out += ", \"fault_caused\": " + std::to_string(c.report.fault_caused);
    }
    if (!c.report.violations.empty()) {
      out += ", \"violation_details\": [";
      for (std::size_t v = 0; v < c.report.violations.size(); ++v) {
        if (v > 0) out += ", ";
        out += "\"" + json_escape(c.report.violations[v].str()) + "\"";
      }
      out += "]";
    }
    out += "}";
    out += i + 1 < report.configs.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}
#if defined(__GNUC__) && !defined(__clang__) && __GNUC__ < 13
#pragma GCC diagnostic pop
#endif

namespace {

/// Phase 1 of run()/dry_run(): resolve + expand every entry up front, so
/// an unknown protocol or malformed grid fails before the first schedule
/// runs. Grid-truncation notices land in `truncations`.
std::vector<PendingConfig> expand_entries(
    const CampaignSpec& spec, const ProtocolRegistry& registry,
    std::vector<std::string>& truncations) {
  std::vector<PendingConfig> pending;
  for (const CampaignEntry& entry : spec.entries) {
    ParamSet defaults = registry.defaults(entry.protocol);
    for (const auto& [key, value] : entry.overrides) {
      defaults.set(key, value);
    }
    GridExpansion expansion =
        entry.grid.expand(defaults, spec.max_configs_per_entry);
    if (expansion.truncated()) {
      truncations.push_back(entry.protocol + ": " +
                            expansion.truncation_report());
    }
    for (ParamSet& point : expansion.points) {
      PendingConfig cfg;
      cfg.protocol = entry.protocol;
      cfg.adapter = registry.make(entry.protocol, point);
      // Install the campaign's chain environment before the first run:
      // worker clones copy it, and their worlds build with it in place.
      if (spec.environment.active()) {
        cfg.adapter->set_environment(spec.environment);
      }
      cfg.params = std::move(point);
      pending.push_back(std::move(cfg));
    }
  }
  return pending;
}

/// Folds per-configuration strategy-space truncation notices into the
/// campaign-level list (prefixed with the configuration), in report order.
void collect_strategy_truncations(CampaignReport& report) {
  for (const ConfigResult& c : report.configs) {
    for (const std::string& t : c.report.truncations) {
      std::string head = c.protocol;
      if (!c.params.empty()) head += "[" + c.params + "]";
      report.truncations.push_back(head + ": " + t);
    }
  }
}

}  // namespace

DryRunReport Campaign::dry_run() const {
  validate_sweep_options(spec_.sweep);
  if (spec_.entries.empty()) {
    throw ParamError("campaign spec has no entries");
  }
  DryRunReport report;
  for (PendingConfig& cfg :
       expand_entries(spec_, registry_, report.truncations)) {
    DryRunConfig row;
    row.protocol = cfg.protocol;
    row.params = cfg.params.overrides_str();
    std::vector<std::string> truncations;
    row.schedules =
        ScenarioRunner(*cfg.adapter).schedule_count(spec_.sweep, &truncations);
    std::string head = row.protocol;
    if (!row.params.empty()) head += "[" + row.params + "]";
    for (const std::string& t : truncations) {
      report.truncations.push_back(head + ": " + t);
    }
    report.configs.push_back(std::move(row));
  }
  return report;
}

CampaignReport Campaign::run() const {
  validate_sweep_options(spec_.sweep);
  if (spec_.entries.empty()) {
    throw ParamError("campaign spec has no entries");
  }

  CampaignReport report;
  report.strategies = spec_.sweep.strategies;
  report.environment = spec_.environment;
  std::vector<PendingConfig> pending =
      expand_entries(spec_, registry_, report.truncations);

  report.configs.resize(pending.size());

  // Phase 2: sweep every configuration. A single configuration gets the
  // whole thread budget via the sharded sweep; with several, whole
  // configurations are the unit of work — one pool of workers is reused
  // across all of them (results land at their pending index, so the report
  // order is deterministic whatever the claiming order).
  const auto sweep_one = [](const PendingConfig& cfg,
                            const SweepOptions& opts) {
    ConfigResult result;
    result.protocol = cfg.protocol;
    result.params = cfg.params.overrides_str();
    result.report = ScenarioRunner(*cfg.adapter).sweep(opts);
    return result;
  };

  unsigned threads = spec_.sweep.threads != 0
                         ? spec_.sweep.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  if (pending.size() == 1) {
    report.configs[0] = sweep_one(pending[0], spec_.sweep);
    report.workers = report.configs[0].report.workers;
    collect_strategy_truncations(report);
    return report;
  }

  // One worker per configuration, with any leftover thread budget pushed
  // down into each configuration's sharded sweep (the parallel sweep is
  // bit-identical to serial, so the report stays deterministic).
  const unsigned outer = static_cast<unsigned>(
      std::min<std::size_t>(threads, pending.size()));
  const unsigned inner =
      std::max(1u, threads / static_cast<unsigned>(pending.size()));
  threads = outer;
  report.workers = std::max(1u, threads);
  const SweepOptions per_config{spec_.sweep.max_deviators, inner,
                                spec_.sweep.strategies};
  if (threads <= 1) {
    for (std::size_t i = 0; i < pending.size(); ++i) {
      report.configs[i] = sweep_one(pending[i], per_config);
    }
    collect_strategy_truncations(report);
    return report;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = next.fetch_add(1); i < pending.size();
             i = next.fetch_add(1)) {
          report.configs[i] = sweep_one(pending[i], per_config);
        }
      } catch (...) {
        errors[t] = std::current_exception();
      }
    });
  }
  for (std::thread& th : pool) th.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  collect_strategy_truncations(report);
  return report;
}

}  // namespace xchain::sim
