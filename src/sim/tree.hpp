#pragma once

// Tree-executor view of a reusable world.
//
// The schedule-tree executor (sim/scenario.cpp) does not replay every
// schedule from tick 0: it keeps one set of *persistent* actors per
// world, snapshots the whole world (chains + actors) at every tick
// boundary via the layered checkpoint stack, and rewinds to the deepest
// shared prefix when moving from one schedule to the next. TreeFrame is
// the minimal surface an engine world must expose for that: the chain
// substrate, the actors in scheduler order, and the run horizon. The
// executor owns the tick loop; engines keep owning setup, plan
// installation, and result assembly.

#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "sim/party.hpp"

namespace xchain::sim {

/// What the schedule-tree executor drives directly. Built once per world
/// (the actors persist across runs — their mutable state rides the
/// snapshot stack); `actors` is in scheduler add-order, `horizon` the
/// exclusive end tick of a run.
struct TreeFrame {
  chain::MultiChain* chains = nullptr;
  std::vector<Party*> actors;
  Tick horizon = 0;
};

}  // namespace xchain::sim
