#include "sim/registry.hpp"

namespace xchain::sim {

namespace {

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out.empty() ? "<none>" : out;
}

/// Parses a "100,80" bid list (auction schemas keep the per-bidder bid
/// vector as one string param so the bidder count itself is sweepable).
std::vector<Amount> parse_bids(const std::string& csv) {
  std::vector<Amount> out;
  for (const std::string& v : split_csv("param bids", csv)) {
    std::size_t pos = 0;
    long long parsed = 0;
    try {
      parsed = std::stoll(v, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != v.size()) {
      throw ParamError("param 'bids': '" + v +
                       "' is not an integer (want e.g. bids=100,80)");
    }
    if (parsed < 0) {
      throw ParamError("param 'bids': bids must be non-negative");
    }
    out.push_back(static_cast<Amount>(parsed));
  }
  return out;
}

// Shared scalar schema fragments. Bounds keep sweeps inside the regime the
// engines are specified for (e.g. delta >= 1 ticks, ring sizes that keep
// the exhaustive 5^n schedule space tractable).

ParamSet two_party_schema() {
  return ParamSet({
      ParamSpec::amount("alice_tokens", 100, "A: apricot principal")
          .at_least(1),
      ParamSpec::amount("bob_tokens", 50, "B: banana principal").at_least(1),
      ParamSpec::amount("premium_a", 2, "p_a: Alice's premium component")
          .at_least(0),
      ParamSpec::amount("premium_b", 1, "p_b: Bob's premium").at_least(0),
      ParamSpec::integer("delta", 2, "synchrony bound in ticks").at_least(1),
  });
}

std::vector<ParamSpec> multi_party_scalars() {
  return {
      ParamSpec::amount("asset_amount", 100, "units per swapped asset")
          .at_least(1),
      ParamSpec::amount("premium_unit", 1, "p: uniform premium per asset")
          .at_least(0),
      ParamSpec::integer("delta", 1, "synchrony bound in ticks").at_least(1),
      ParamSpec::integer("hedged", 1, "1 = hedged (§7), 0 = base baseline")
          .between(0, 1),
  };
}

ParamSet auction_schema() {
  return ParamSet({
      ParamSpec::amount("ticket_count", 10, "tickets on sale").at_least(1),
      ParamSpec::text("bids", "100,80",
                      "per-bidder bids, comma-separated (sets bidder count)"),
      ParamSpec::amount("premium_unit", 2, "p: auctioneer endows n*p")
          .at_least(0),
      ParamSpec::integer("delta", 2, "synchrony bound in ticks").at_least(1),
      ParamSpec::amount("collateral", 150,
                        "sealed only: uniform commitment collateral M")
          .at_least(0),
  });
}

ParamSet broker_schema() {
  return ParamSet({
      ParamSpec::amount("ticket_count", 10, "tickets Bob sells").at_least(1),
      ParamSpec::amount("sale_price", 101, "Carol's coin escrow").at_least(1),
      ParamSpec::amount("purchase_price", 100, "what Bob receives")
          .at_least(1),
      ParamSpec::amount("premium_unit", 1, "p: base premium").at_least(0),
      ParamSpec::integer("delta", 1, "synchrony bound in ticks").at_least(1),
  });
}

ParamSet bootstrap_schema() {
  return ParamSet({
      ParamSpec::amount("alice_tokens", 1'000'000, "A: apricot principal")
          .at_least(1),
      ParamSpec::amount("bob_tokens", 1'000'000, "B: banana principal")
          .at_least(1),
      ParamSpec::real("factor", 100.0, "P: premium = value / P").at_least(1),
      ParamSpec::integer("rounds", 2, "r: bootstrap rounds").between(1, 16),
      ParamSpec::integer("delta", 2, "synchrony bound in ticks").at_least(1),
  });
}

ParamSet crr_ladder_schema() {
  return ParamSet({
      ParamSpec::amount("alice_tokens", 100'000, "A: apricot principal")
          .at_least(1),
      ParamSpec::amount("bob_tokens", 100'000, "B: banana principal")
          .at_least(1),
      ParamSpec::integer("delta", 2, "synchrony bound in ticks").at_least(1),
      ParamSpec::real("volatility", 0.8, "annualized sigma").at_least(0),
      ParamSpec::real("rate", 0.0, "risk-free rate").at_least(0),
      ParamSpec::real("ticks_per_year", 1460, "tick granularity (6h default)")
          .at_least(1),
  });
}

ParamSet bridge_schema() {
  return ParamSet({
      ParamSpec::integer("n_witnesses", 3, "n: witness parties")
          .between(1, 8),
      ParamSpec::integer("quorum", 2, "k: attestations completing the claim")
          .between(1, 8),
      ParamSpec::amount("transfer_amount", 100, "bridged principal")
          .at_least(1),
      ParamSpec::amount("witness_reward", 2, "reward per attestation")
          .between(1, 100),
      ParamSpec::amount("premium_unit", 2,
                        "user's hedge premium (bonds scale with it)")
          .between(1, 100),
      ParamSpec::integer("delta", 2, "synchrony bound in ticks")
          .between(1, 4),
  });
}

ProtocolRegistry build_global() {
  ProtocolRegistry r;
  r.add({"two-party", "hedged two-party swap (§5.2, Figure 1)",
         two_party_schema(), [](const ParamSet& p) {
           return std::make_unique<TwoPartySwapAdapter>(
               two_party_config_from(p));
         }});
  {
    std::vector<ParamSpec> specs = {
        ParamSpec::integer("n", 3, "ring size (parties on the cycle)")
            .between(2, 10)};
    for (ParamSpec& s : multi_party_scalars()) specs.push_back(std::move(s));
    r.add({"multi-party-ring", "ARC multi-party swap on a directed n-cycle (§7)",
           ParamSet(std::move(specs)), [](const ParamSet& p) {
             return std::make_unique<MultiPartySwapAdapter>(
                 multi_party_config_from(
                     p, graph::Digraph::cycle(
                            static_cast<std::size_t>(p.get_int("n")))));
           }});
  }
  r.add({"multi-party-fig3a", "ARC multi-party swap on the Figure 3a digraph",
         ParamSet(multi_party_scalars()), [](const ParamSet& p) {
           return std::make_unique<MultiPartySwapAdapter>(
               multi_party_config_from(p, graph::Digraph::figure3a()));
         }});
  r.add({"auction-open", "open-bid ticket auction (§9)", auction_schema(),
         [](const ParamSet& p) {
           return std::make_unique<TicketAuctionAdapter>(
               auction_config_from(p), /*sealed=*/false);
         }});
  r.add({"auction-sealed", "sealed-bid ticket auction (§9, footnote 8)",
         auction_schema(), [](const ParamSet& p) {
           return std::make_unique<TicketAuctionAdapter>(
               auction_config_from(p), /*sealed=*/true);
         }});
  r.add({"broker", "three-party brokered sale (§8)", broker_schema(),
         [](const ParamSet& p) {
           return std::make_unique<BrokerDealAdapter>(broker_config_from(p));
         }});
  r.add({"bootstrap", "bootstrapped premium-ladder swap (§6, Figure 2)",
         bootstrap_schema(), [](const ParamSet& p) {
           return std::make_unique<BootstrapSwapAdapter>(
               bootstrap_config_from(p));
         }});
  r.add({"bridge-transfer",
         "hedged witness-bridge value transfer (XChainBridge-style door + "
         "k-of-n attestation claim)",
         bridge_schema(), [](const ParamSet& p) {
           return std::make_unique<BridgeAdapter>(
               bridge_config_from(p, core::BridgeVariant::kTransfer));
         }});
  r.add({"bridge-account-create",
         "hedged witness-bridge account create (reward split among "
         "attesting witnesses)",
         bridge_schema(), [](const ParamSet& p) {
           return std::make_unique<BridgeAdapter>(
               bridge_config_from(p, core::BridgeVariant::kAccountCreate));
         }});
  r.add({"crr-ladder", "single-rung ladder with CRR-priced premiums (§4+§6)",
         crr_ladder_schema(), [](const ParamSet& p) {
           return std::make_unique<BootstrapSwapAdapter>(
               make_crr_ladder_adapter(crr_principals_from(p),
                                       crr_market_from(p)));
         }});
  return r;
}

}  // namespace

const ProtocolRegistry& ProtocolRegistry::global() {
  static const ProtocolRegistry registry = build_global();
  return registry;
}

void ProtocolRegistry::add(ProtocolInfo info) {
  if (contains(info.name)) {
    throw RegistryError("protocol '" + info.name + "' already registered");
  }
  if (!info.factory) {
    throw RegistryError("protocol '" + info.name + "' has no factory");
  }
  protocols_.push_back(std::move(info));
}

bool ProtocolRegistry::contains(const std::string& name) const {
  for (const ProtocolInfo& p : protocols_) {
    if (p.name == name) return true;
  }
  return false;
}

const ProtocolInfo& ProtocolRegistry::info(const std::string& name) const {
  for (const ProtocolInfo& p : protocols_) {
    if (p.name == name) return p;
  }
  throw RegistryError("unknown protocol '" + name + "' (registered: " +
                      join(names()) + ")");
}

ParamSet ProtocolRegistry::defaults(const std::string& name) const {
  return info(name).defaults;
}

std::unique_ptr<ProtocolAdapter> ProtocolRegistry::make(
    const std::string& name, const ParamSet& params) const {
  return info(name).factory(params);
}

std::unique_ptr<ProtocolAdapter> ProtocolRegistry::make(
    const std::string& name) const {
  const ProtocolInfo& p = info(name);
  return p.factory(p.defaults);
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(protocols_.size());
  for (const ProtocolInfo& p : protocols_) out.push_back(p.name);
  return out;
}

core::TwoPartyConfig two_party_config_from(const ParamSet& p) {
  core::TwoPartyConfig cfg;
  cfg.alice_tokens = p.get_amount("alice_tokens");
  cfg.bob_tokens = p.get_amount("bob_tokens");
  cfg.premium_a = p.get_amount("premium_a");
  cfg.premium_b = p.get_amount("premium_b");
  cfg.delta = p.get_int("delta");
  return cfg;
}

core::MultiPartyConfig multi_party_config_from(const ParamSet& p,
                                               graph::Digraph g) {
  core::MultiPartyConfig cfg;
  cfg.g = std::move(g);
  cfg.asset_amount = p.get_amount("asset_amount");
  cfg.premium_unit = p.get_amount("premium_unit");
  cfg.delta = p.get_int("delta");
  cfg.hedged = p.get_int("hedged") != 0;
  return cfg;
}

core::AuctionConfig auction_config_from(const ParamSet& p) {
  core::AuctionConfig cfg;
  cfg.ticket_count = p.get_amount("ticket_count");
  cfg.bids = parse_bids(p.get_string("bids"));
  cfg.premium_unit = p.get_amount("premium_unit");
  cfg.delta = p.get_int("delta");
  cfg.collateral = p.get_amount("collateral");
  return cfg;
}

core::BrokerConfig broker_config_from(const ParamSet& p) {
  core::BrokerConfig cfg;
  cfg.ticket_count = p.get_amount("ticket_count");
  cfg.sale_price = p.get_amount("sale_price");
  cfg.purchase_price = p.get_amount("purchase_price");
  cfg.premium_unit = p.get_amount("premium_unit");
  cfg.delta = p.get_int("delta");
  // §8 precondition: the broker's spread is non-negative. With
  // purchase_price > sale_price a fully conforming run leaves Alice below
  // her break-even hedge floor by construction — a pricing choice, not a
  // sore-loser attack — so reject the configuration up front (the fuzzer
  // jitters parameters and must see this as invalid, not as a violation).
  if (cfg.purchase_price > cfg.sale_price) {
    throw ParamError("param 'purchase_price': " +
                     std::to_string(cfg.purchase_price) +
                     " exceeds sale_price " + std::to_string(cfg.sale_price) +
                     " (the broker spread must be non-negative)");
  }
  return cfg;
}

core::BootstrapConfig bootstrap_config_from(const ParamSet& p) {
  core::BootstrapConfig cfg;
  cfg.alice_tokens = p.get_amount("alice_tokens");
  cfg.bob_tokens = p.get_amount("bob_tokens");
  cfg.factor = p.get_double("factor");
  cfg.rounds = static_cast<int>(p.get_int("rounds"));
  cfg.delta = p.get_int("delta");
  return cfg;
}

core::BridgeConfig bridge_config_from(const ParamSet& p,
                                      core::BridgeVariant variant) {
  core::BridgeConfig cfg;
  cfg.variant = variant;
  cfg.n_witnesses = static_cast<int>(p.get_int("n_witnesses"));
  cfg.quorum = static_cast<int>(p.get_int("quorum"));
  cfg.transfer_amount = p.get_amount("transfer_amount");
  cfg.witness_reward = p.get_amount("witness_reward");
  cfg.premium_unit = p.get_amount("premium_unit");
  cfg.delta = p.get_int("delta");
  // An attestation quorum no witness set can reach strands every claim by
  // construction — a configuration error, not a sore-loser attack; the
  // fuzzer jitters parameters and must see this as invalid, not as a
  // violation.
  if (cfg.quorum > cfg.n_witnesses) {
    throw ParamError("param 'quorum': " + std::to_string(cfg.quorum) +
                     " exceeds n_witnesses " +
                     std::to_string(cfg.n_witnesses) +
                     " (the attestation quorum must be reachable)");
  }
  return cfg;
}

core::BootstrapConfig crr_principals_from(const ParamSet& p) {
  core::BootstrapConfig cfg;
  cfg.alice_tokens = p.get_amount("alice_tokens");
  cfg.bob_tokens = p.get_amount("bob_tokens");
  cfg.rounds = 1;
  cfg.delta = p.get_int("delta");
  return cfg;
}

CrrMarket crr_market_from(const ParamSet& p) {
  CrrMarket m;
  m.volatility = p.get_double("volatility");
  m.rate = p.get_double("rate");
  m.ticks_per_year = p.get_double("ticks_per_year");
  return m;
}

}  // namespace xchain::sim
