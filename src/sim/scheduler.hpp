#pragma once

#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "sim/party.hpp"

namespace xchain::sim {

/// Synchronous round scheduler (paper §3.1).
///
/// Each tick t:
///   1. every party observes state up to block t-1 and submits transactions
///      (in party-id order; order within a tick never matters because
///      submissions land in the same block);
///   2. every chain produces block t.
///
/// A state change made in block t is therefore observed and reacted to by
/// every party at tick t+1 — the propagation bound Delta is any number of
/// ticks >= 1, and protocol schedules express their timeouts as multiples
/// of it.
class Scheduler {
 public:
  explicit Scheduler(chain::MultiChain& chains) : chains_(chains) {}

  /// Convenience: applies `trace` to every chain before driving them.
  /// Sweep worlds pass TraceMode::kOff so runs stop recording events and
  /// per-transaction note strings; tests and examples keep kFull.
  Scheduler(chain::MultiChain& chains, chain::TraceMode trace)
      : chains_(chains) {
    chains_.set_trace(trace);
  }

  /// Registers a party (non-owning; the protocol engine owns its actors).
  void add_party(Party& p) { parties_.push_back(&p); }

  /// Runs ticks [now, horizon).
  void run_until(Tick horizon) {
    for (; now_ < horizon; ++now_) {
      for (Party* p : parties_) {
        p->step(chains_, now_);
      }
      chains_.produce_all(now_);
    }
  }

  /// The next tick to execute.
  Tick now() const { return now_; }

 private:
  chain::MultiChain& chains_;
  std::vector<Party*> parties_;
  Tick now_ = 0;
};

}  // namespace xchain::sim
