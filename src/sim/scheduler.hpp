#pragma once

#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "sim/party.hpp"

namespace xchain::sim {

/// Synchronous round scheduler (paper §3.1).
///
/// Each tick t:
///   1. every party runs tick(): delayed actions that have come due are
///      submitted first, then the party observes state up to block t-1 and
///      submits new transactions (in party-id order; order within a tick
///      never matters because submissions land in the same block);
///   2. every chain produces block t.
///
/// A state change made in block t is therefore observed and reacted to by
/// every party at tick t+1 — the propagation bound Delta is any number of
/// ticks >= 1, and protocol schedules express their timeouts as multiples
/// of it.
///
/// Timing contract (what the strategy-space delay menus lean on):
///   - Contract deadlines are INCLUSIVE: a transaction submitted at tick t
///     with deadline D is accepted iff t <= D (contracts reject with
///     `now() > deadline`). The timeout sweep that refunds/awards expired
///     escrows runs after transactions, so a deadline-tick submission
///     still lands.
///   - Protocol schedules space consecutive deadlines >= Delta apart, and
///     a conforming party reacts one tick after the enabling block. A
///     party that delays every action by at most Delta-1 ticks past its
///     enablement therefore still meets every deadline ("timely" delays,
///     StrategySpace::kTimelyDelays); a delay >= Delta can push a
///     submission past its deadline, where the contract ignores it and the
///     party is treated as a sore loser (kLateDelays).
///   - A delayed action is DECIDED when its guard first holds and
///     submitted when it comes due; contracts re-validate everything at
///     execution time, so a submission whose window closed (or whose
///     prerequisites changed) while it sat in the queue is rejected as a
///     no-op, never UB.
class Scheduler {
 public:
  explicit Scheduler(chain::MultiChain& chains) : chains_(chains) {}

  /// Convenience: applies `trace` to every chain before driving them.
  /// Sweep worlds pass TraceMode::kOff so runs stop recording events and
  /// per-transaction note strings; tests and examples keep kFull.
  Scheduler(chain::MultiChain& chains, chain::TraceMode trace)
      : chains_(chains) {
    chains_.set_trace(trace);
  }

  /// Registers a party (non-owning; the protocol engine owns its actors).
  void add_party(Party& p) { parties_.push_back(&p); }

  /// Runs ticks [now, horizon).
  void run_until(Tick horizon) {
    for (; now_ < horizon; ++now_) {
      for (Party* p : parties_) {
        p->tick(chains_, now_);
      }
      chains_.produce_all(now_);
    }
  }

  /// Checks every deployed contract's claimed deadline ladder
  /// (chain::Contract::deadline_schedule) against the timing contract
  /// above: deadlines must be spaced >= `delta` per scheduled step, the
  /// first one measured from tick 0. Throws std::logic_error naming the
  /// chain, contract, step, and offending pair — a protocol whose
  /// deadlines are packed tighter than Delta silently voids the
  /// "Delta-1 delays are always timely" guarantee every timely-delay
  /// sweep and fault-tolerance envelope leans on, so debug builds of the
  /// hedged worlds call this right after deployment.
  void validate_deadlines(Tick delta) const {
    for (ChainId c = 0; c < static_cast<ChainId>(chains_.count()); ++c) {
      const chain::Blockchain& bc = chains_.at(c);
      for (std::size_t i = 0; i < bc.contract_count(); ++i) {
        const std::vector<Tick> ladder =
            bc.contract_at(i).deadline_schedule();
        Tick prev = 0;
        for (std::size_t step = 0; step < ladder.size(); ++step) {
          if (ladder[step] - prev < delta) {
            // Append-only string building (GCC 12 -Wrestrict, PR 105651).
            std::string what =
                "Scheduler::validate_deadlines: contract ";
            what += std::to_string(i);
            what += " on chain '";
            what += bc.name();
            what += "' places deadline ";
            what += std::to_string(ladder[step]);
            what += " (step ";
            what += std::to_string(step);
            what += ") only ";
            what += std::to_string(ladder[step] - prev);
            what += " ticks after ";
            what += step == 0 ? "the protocol start" : "its predecessor";
            what += "; the inclusive-deadline timing contract requires >= ";
            what += std::to_string(delta);
            what += " (Delta) per scheduled step";
            throw std::logic_error(what);
          }
          prev = ladder[step];
        }
      }
    }
  }

  /// The next tick to execute.
  Tick now() const { return now_; }

 private:
  chain::MultiChain& chains_;
  std::vector<Party*> parties_;
  Tick now_ = 0;
};

}  // namespace xchain::sim
