#pragma once

#include <vector>

#include "chain/blockchain.hpp"
#include "common/types.hpp"
#include "sim/party.hpp"

namespace xchain::sim {

/// Synchronous round scheduler (paper §3.1).
///
/// Each tick t:
///   1. every party runs tick(): delayed actions that have come due are
///      submitted first, then the party observes state up to block t-1 and
///      submits new transactions (in party-id order; order within a tick
///      never matters because submissions land in the same block);
///   2. every chain produces block t.
///
/// A state change made in block t is therefore observed and reacted to by
/// every party at tick t+1 — the propagation bound Delta is any number of
/// ticks >= 1, and protocol schedules express their timeouts as multiples
/// of it.
///
/// Timing contract (what the strategy-space delay menus lean on):
///   - Contract deadlines are INCLUSIVE: a transaction submitted at tick t
///     with deadline D is accepted iff t <= D (contracts reject with
///     `now() > deadline`). The timeout sweep that refunds/awards expired
///     escrows runs after transactions, so a deadline-tick submission
///     still lands.
///   - Protocol schedules space consecutive deadlines >= Delta apart, and
///     a conforming party reacts one tick after the enabling block. A
///     party that delays every action by at most Delta-1 ticks past its
///     enablement therefore still meets every deadline ("timely" delays,
///     StrategySpace::kTimelyDelays); a delay >= Delta can push a
///     submission past its deadline, where the contract ignores it and the
///     party is treated as a sore loser (kLateDelays).
///   - A delayed action is DECIDED when its guard first holds and
///     submitted when it comes due; contracts re-validate everything at
///     execution time, so a submission whose window closed (or whose
///     prerequisites changed) while it sat in the queue is rejected as a
///     no-op, never UB.
class Scheduler {
 public:
  explicit Scheduler(chain::MultiChain& chains) : chains_(chains) {}

  /// Convenience: applies `trace` to every chain before driving them.
  /// Sweep worlds pass TraceMode::kOff so runs stop recording events and
  /// per-transaction note strings; tests and examples keep kFull.
  Scheduler(chain::MultiChain& chains, chain::TraceMode trace)
      : chains_(chains) {
    chains_.set_trace(trace);
  }

  /// Registers a party (non-owning; the protocol engine owns its actors).
  void add_party(Party& p) { parties_.push_back(&p); }

  /// Runs ticks [now, horizon).
  void run_until(Tick horizon) {
    for (; now_ < horizon; ++now_) {
      for (Party* p : parties_) {
        p->tick(chains_, now_);
      }
      chains_.produce_all(now_);
    }
  }

  /// The next tick to execute.
  Tick now() const { return now_; }

 private:
  chain::MultiChain& chains_;
  std::vector<Party*> parties_;
  Tick now_ = 0;
};

}  // namespace xchain::sim
