#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace xchain::sim {

/// What a party does with one scheduled protocol action.
///
/// Smart contracts enforce ordering, amounts, and well-formedness (paper
/// §3.2), so a Byzantine party's generic moves are *when* moves: perform an
/// enabled action immediately, sit on it for a number of ticks (the
/// timing-griefing lever the contracts' Δ-spaced deadlines exist for), or
/// never perform it at all — the classic sore-loser walk-away.
enum class ActionChoice : std::uint8_t { kPerform, kDelay, kDrop };

/// Per-ordinal policy: Perform, Delay(delay ticks past enablement), Drop.
struct ActionPolicy {
  ActionChoice choice = ActionChoice::kPerform;
  Tick delay = 0;  ///< meaningful only for kDelay (>= 1)

  friend bool operator==(const ActionPolicy&, const ActionPolicy&) = default;
};

/// A party's complete deviation plan: one ActionPolicy per scheduled-action
/// ordinal, plus an optional protocol-specific dishonesty *variant* tag.
///
/// The representation is sparse so the (dominant) halt-only plans stay
/// allocation-free on the sweep hot path: a halt point (ordinals >= halt_
/// are dropped — the classic suffix-of-Drops sore-loser move), a variant
/// tag, and an ordinal-sorted list of explicit modifications (delays and
/// non-suffix drops). Every unlisted ordinal below the halt point is
/// Perform.
///
/// Variants fold protocol-specific dishonesty (e.g. the auctioneer's seven
/// declaration strategies, §9) into the same enumerated plan space instead
/// of a side knob on the schedule: variant 0 is honest, anything else marks
/// the plan non-conforming and is interpreted by the owning adapter.
class DeviationPlan {
 public:
  /// Performs every action immediately: the reference compliant party.
  static DeviationPlan conforming() { return DeviationPlan(); }

  /// Performs actions with ordinal < k, then halts. halt_after(0) never
  /// acts at all.
  static DeviationPlan halt_after(int k) {
    DeviationPlan p;
    p.halt_ = k;
    return p;
  }

  /// Copy of this plan with action `ordinal` delayed by `ticks` past its
  /// enablement (ticks == 0 means Perform and leaves the plan unchanged).
  DeviationPlan delayed(int ordinal, Tick ticks) const {
    DeviationPlan p = *this;
    if (ticks > 0) p.set_mod(ordinal, ticks);
    return p;
  }

  /// Copy of this plan with action `ordinal` dropped (without touching
  /// later ordinals — the non-suffix generalization of halting).
  DeviationPlan dropped(int ordinal) const {
    DeviationPlan p = *this;
    p.set_mod(ordinal, kDropMark);
    return p;
  }

  /// Copy of this plan tagged with a protocol-specific dishonesty variant
  /// (0 = honest). Interpretation belongs to the owning protocol adapter.
  DeviationPlan with_variant(int variant) const {
    DeviationPlan p = *this;
    p.variant_ = variant;
    return p;
  }

  /// The policy applied to the action with ordinal `o`.
  ActionPolicy policy(int o) const {
    if (o >= halt_) return {ActionChoice::kDrop, 0};
    for (const auto& [ordinal, delay] : mods_) {
      if (ordinal == o) {
        return delay == kDropMark ? ActionPolicy{ActionChoice::kDrop, 0}
                                  : ActionPolicy{ActionChoice::kDelay, delay};
      }
      if (ordinal > o) break;  // mods_ is ordinal-sorted
    }
    return {ActionChoice::kPerform, 0};
  }

  /// True iff the action with this ordinal is (eventually) performed.
  bool allows(int o) const { return policy(o).choice != ActionChoice::kDrop; }

  /// The reference plan: every action performed immediately, honest
  /// variant. This is what "deviator" counting is measured against.
  bool is_conforming() const {
    return halt_ == kNoHalt && variant_ == 0 && mods_.empty();
  }

  /// Paper-compliance under the synchrony bound `delta`: an honest-variant
  /// plan that drops nothing and delays every action by less than delta is
  /// still conforming — acting timely-but-last-moment is within the timing
  /// model the contracts' deadlines are provisioned for (inclusive
  /// deadlines spaced >= delta apart per scheduled step). Delays >= delta
  /// step outside the model: such a party gambles on landing past a
  /// deadline and must be treated as a (potential) sore loser.
  bool conforms_within(Tick delta) const {
    if (halt_ != kNoHalt || variant_ != 0) return false;
    for (const auto& [ordinal, delay] : mods_) {
      (void)ordinal;
      if (delay == kDropMark || delay >= delta) return false;
    }
    return true;
  }

  /// True iff some action is delayed or dropped (halt or variant aside).
  bool has_mods() const { return !mods_.empty(); }

  int variant() const { return variant_; }

  /// Number of actions performed before halting (INT_MAX if no halt
  /// suffix). Meaningful for halt-style plans; delay/drop mods below the
  /// halt point are not reflected here.
  int halt_point() const { return halt_; }

  /// Renders the full policy. "conform" and "halt@k" keep their historical
  /// spellings; richer plans list their modifications in ordinal order —
  /// "d<ordinal>+<ticks>" for a delay, "x<ordinal>" for a non-suffix drop —
  /// joined with '.', with any halt suffix appended ("d1+2.halt@2") and a
  /// non-zero variant prefixed as "v<variant>:".
  std::string str() const {
    std::string body;
    for (const auto& [ordinal, delay] : mods_) {
      if (!body.empty()) body += '.';
      if (delay == kDropMark) {
        body += 'x';
        body += std::to_string(ordinal);
      } else {
        body += 'd';
        body += std::to_string(ordinal);
        body += '+';
        body += std::to_string(delay);
      }
    }
    if (halt_ != kNoHalt) {
      if (!body.empty()) body += '.';
      body += "halt@" + std::to_string(halt_);
    }
    if (body.empty()) body = "conform";
    if (variant_ != 0) {
      // Appends-only on purpose: the `"v" + ... + ":" + body` spelling
      // trips GCC 12's bogus -Wrestrict on inlined operator+ chains
      // (GCC PR 105651) in -Werror library builds.
      std::string tagged = "v";
      tagged += std::to_string(variant_);
      tagged += ':';
      tagged += body;
      return tagged;
    }
    return body;
  }

  friend bool operator==(const DeviationPlan&, const DeviationPlan&) = default;

 private:
  static constexpr int kNoHalt = std::numeric_limits<int>::max();
  static constexpr Tick kDropMark = -1;

  void set_mod(int ordinal, Tick delay) {
    const auto at = std::lower_bound(
        mods_.begin(), mods_.end(), ordinal,
        [](const auto& mod, int o) { return mod.first < o; });
    if (at != mods_.end() && at->first == ordinal) {
      at->second = delay;
    } else {
      mods_.insert(at, {ordinal, delay});
    }
  }

  int halt_ = kNoHalt;
  int variant_ = 0;
  /// (ordinal, delay) with delay == kDropMark meaning Drop; ordinal-sorted,
  /// only non-Perform entries below the halt point are stored.
  std::vector<std::pair<int, Tick>> mods_;
};

}  // namespace xchain::sim
