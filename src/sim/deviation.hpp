#pragma once

#include <limits>
#include <string>

namespace xchain::sim {

/// A party's deviation plan.
///
/// Smart contracts enforce ordering, timing, and well-formedness (paper
/// §3.2), so a Byzantine party's only generic move is to *stop* performing
/// protocol actions at some point — the sore loser move. A plan records how
/// many of its scheduled actions a party performs before walking away.
/// Protocol-specific dishonesty that remains expressible (e.g. the
/// auctioneer publishing the wrong winner's hashkey) is modelled by
/// dedicated knobs on the relevant protocol engine.
class DeviationPlan {
 public:
  /// Performs every action: a compliant party.
  static DeviationPlan conforming() {
    return DeviationPlan(std::numeric_limits<int>::max());
  }

  /// Performs actions with ordinal < k, then halts. halt_after(0) never
  /// acts at all.
  static DeviationPlan halt_after(int k) { return DeviationPlan(k); }

  /// True iff the action with this ordinal should be performed.
  bool allows(int action_ordinal) const { return action_ordinal < limit_; }

  bool is_conforming() const {
    return limit_ == std::numeric_limits<int>::max();
  }

  /// Number of actions performed before halting (INT_MAX if conforming).
  int halt_point() const { return limit_; }

  std::string str() const {
    return is_conforming() ? "conform" : ("halt@" + std::to_string(limit_));
  }

  friend bool operator==(const DeviationPlan&, const DeviationPlan&) = default;

 private:
  explicit DeviationPlan(int limit) : limit_(limit) {}
  int limit_;
};

}  // namespace xchain::sim
