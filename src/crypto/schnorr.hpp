#pragma once

#include <cstdint>
#include <string_view>

#include "crypto/bytes.hpp"

namespace xchain::crypto {

/// Schnorr signatures over the quadratic-residue subgroup of Z_p^*, where
/// p = 2q + 1 is a safe prime near 2^61 and the generator g = 4 has prime
/// order q.
///
/// This is a *structurally faithful* signature scheme — key generation,
/// deterministic nonces, Fiat–Shamir challenge via SHA-256, public
/// verification — with toy (64-bit) parameters. The protocols in this
/// repository only need public verifiability of hashkey path signatures
/// (paper §7: sigma = sig(...sig(s_i, u_i)..., u_0)); the reduced key size
/// changes the security margin, not the protocol behaviour.
struct GroupParams {
  std::uint64_t p;  ///< safe prime modulus
  std::uint64_t q;  ///< subgroup order, p = 2q + 1
  std::uint64_t g;  ///< generator of the order-q subgroup
};

/// The process-wide group parameters (computed once, deterministically).
const GroupParams& group();

/// (a * b) mod m without overflow.
std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m);

/// (base ^ exp) mod m.
std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

/// Deterministic Miller–Rabin, exact for all 64-bit inputs.
bool is_prime_u64(std::uint64_t n);

/// A private signing key (a scalar in [1, q)).
struct PrivateKey {
  std::uint64_t x = 0;
};

/// A public verification key (group element g^x).
struct PublicKey {
  std::uint64_t y = 0;

  friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

/// A Schnorr signature: Fiat–Shamir challenge `e` and response `s`.
struct Signature {
  std::uint64_t e = 0;
  std::uint64_t s = 0;

  friend bool operator==(const Signature&, const Signature&) = default;

  /// Canonical byte encoding (16 bytes, big-endian e then s); used when a
  /// signature is itself the message of an outer signature in a path chain.
  Bytes encode() const;
};

/// A signing/verification key pair.
struct KeyPair {
  PrivateKey priv;
  PublicKey pub;
};

/// Derives a key pair deterministically from a seed label, e.g. "alice".
KeyPair keygen(std::string_view seed);

/// Memoized keygen: identical result, but each seed's modular
/// exponentiation runs once per process. Protocol actors are rebuilt per
/// sweep schedule, so their key derivation sits on the hot path.
/// Thread-safe; the reference stays valid for the process lifetime.
const KeyPair& keygen_cached(std::string_view seed);

/// Signs `message` with deterministic (derandomized) nonce.
Signature sign(const PrivateKey& key, const PublicKey& pub,
               const Bytes& message);

/// Verifies `sig` on `message` under `pub`.
bool verify(const PublicKey& pub, const Bytes& message, const Signature& sig);

}  // namespace xchain::crypto
