#include "crypto/rng.hpp"

#include "crypto/sha256.hpp"

namespace xchain::crypto {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng::Rng(std::string_view label) {
  const Digest d = sha256(label);
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed = (seed << 8) | d[i];
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t v = next_u64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(v));
      v >>= 8;
    }
  }
  return out;
}

}  // namespace xchain::crypto
