#pragma once

#include <cstdint>
#include <string_view>

#include "crypto/bytes.hpp"

namespace xchain::crypto {

/// Deterministic pseudo-random generator (xoshiro256**, seeded via
/// splitmix64). Determinism matters: every protocol run, test, and benchmark
/// in this repository is reproducible from its seed.
class Rng {
 public:
  /// Seeds from a 64-bit value.
  explicit Rng(std::uint64_t seed);

  /// Seeds from a string label (hashed to a seed); convenient for deriving
  /// independent per-party streams: Rng("alice"), Rng("bob"), ...
  explicit Rng(std::string_view label);

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound); bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Fills and returns `n` random bytes.
  Bytes next_bytes(std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace xchain::crypto
