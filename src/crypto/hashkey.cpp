#include "crypto/hashkey.hpp"

#include <unordered_set>

#include "crypto/sha256.hpp"

namespace xchain::crypto {

Hashkey make_leader_hashkey(const Bytes& secret, PartyId leader,
                            const KeyPair& leader_keys) {
  Hashkey key;
  key.secret = secret;
  key.path = {leader};
  key.sigs = {sign(leader_keys.priv, leader_keys.pub, secret)};
  return key;
}

Hashkey extend_hashkey(const Hashkey& base, PartyId party,
                       const KeyPair& party_keys) {
  Hashkey key;
  key.secret = base.secret;
  key.path.reserve(base.path.size() + 1);
  key.path.push_back(party);
  key.path.insert(key.path.end(), base.path.begin(), base.path.end());

  key.sigs.reserve(base.sigs.size() + 1);
  key.sigs.push_back(
      sign(party_keys.priv, party_keys.pub, base.sigs.front().encode()));
  key.sigs.insert(key.sigs.end(), base.sigs.begin(), base.sigs.end());
  return key;
}

bool verify_hashkey(const Hashkey& key, const Digest& hashlock,
                    const PublicKeyLookup& key_of) {
  if (key.path.empty() || key.path.size() != key.sigs.size()) return false;
  if (sha256(key.secret) != hashlock) return false;

  std::unordered_set<PartyId> seen;
  for (PartyId p : key.path) {
    if (!seen.insert(p).second) return false;  // paths are simple
  }

  // Innermost link: the leader signs the secret itself.
  const std::size_t last = key.path.size() - 1;
  if (!verify(key_of(key.path[last]), key.secret, key.sigs[last])) {
    return false;
  }
  // Outer links: u_j signs the encoding of u_{j+1}'s signature.
  for (std::size_t j = last; j-- > 0;) {
    if (!verify(key_of(key.path[j]), key.sigs[j + 1].encode(), key.sigs[j])) {
      return false;
    }
  }
  return true;
}

namespace {

Bytes encode_premium_path(std::uint64_t tag,
                          const std::vector<PartyId>& path) {
  Bytes msg;
  append_u64(msg, tag);
  append_u64(msg, path.size());
  for (PartyId p : path) append_u64(msg, p);
  return msg;
}

}  // namespace

bool VerifyCache::verify_hashkey(const Hashkey& key, const Digest& hashlock,
                                 const PublicKeyLookup& key_of) {
  // Serialize every input the verification reads; memo equality is exact.
  Bytes k;
  k.reserve(8 * (3 + key.path.size() * 2 + key.sigs.size() * 2) +
            key.secret.size() + hashlock.size());
  append_u64(k, 0x484b);  // domain tag: hashkey
  append_u64(k, key.secret.size());
  append(k, key.secret);
  append(k, hashlock);
  append_u64(k, key.path.size());  // disambiguates path/sig boundaries
  for (const PartyId p : key.path) {
    append_u64(k, p);
    append_u64(k, key_of(p).y);
  }
  for (const Signature& s : key.sigs) {
    append_u64(k, s.e);
    append_u64(k, s.s);
  }
  const auto it = memo_.find(k);
  if (it != memo_.end()) return it->second;
  const bool ok = xchain::crypto::verify_hashkey(key, hashlock, key_of);
  memo_.emplace(std::move(k), ok);
  return ok;
}

bool VerifyCache::verify_premium_path(const PublicKey& signer,
                                      std::uint64_t tag,
                                      const std::vector<PartyId>& path,
                                      const Signature& sig) {
  Bytes k;
  k.reserve(8 * (5 + path.size()));
  append_u64(k, 0x5050);  // domain tag: premium path
  append_u64(k, signer.y);
  append_u64(k, tag);
  for (const PartyId p : path) append_u64(k, p);
  append_u64(k, sig.e);
  append_u64(k, sig.s);
  const auto it = memo_.find(k);
  if (it != memo_.end()) return it->second;
  const bool ok = xchain::crypto::verify_premium_path(signer, tag, path, sig);
  memo_.emplace(std::move(k), ok);
  return ok;
}

Signature sign_premium_path(const KeyPair& signer, std::uint64_t tag,
                            const std::vector<PartyId>& path) {
  return sign(signer.priv, signer.pub, encode_premium_path(tag, path));
}

const Hashkey& SigningCache::leader_hashkey(std::size_t index,
                                            const Bytes& secret,
                                            PartyId leader,
                                            const KeyPair& leader_keys) {
  const std::pair<std::uint64_t, std::vector<PartyId>> key{index, {leader}};
  const auto it = keys_.find(key);
  if (it != keys_.end()) return it->second;
  return keys_
      .emplace(key, make_leader_hashkey(secret, leader, leader_keys))
      .first->second;
}

const Hashkey& SigningCache::extended_hashkey(std::size_t index,
                                              const Hashkey& base,
                                              PartyId party,
                                              const KeyPair& party_keys) {
  std::vector<PartyId> path;
  path.reserve(base.path.size() + 1);
  path.push_back(party);
  path.insert(path.end(), base.path.begin(), base.path.end());
  const std::pair<std::uint64_t, std::vector<PartyId>> key{index,
                                                           std::move(path)};
  const auto it = keys_.find(key);
  if (it != keys_.end()) return it->second;
  return keys_.emplace(key, extend_hashkey(base, party, party_keys))
      .first->second;
}

const Signature& SigningCache::premium_path_sig(
    const KeyPair& signer, PartyId signer_id, std::uint64_t tag,
    const std::vector<PartyId>& path) {
  const std::tuple<PartyId, std::uint64_t, std::vector<PartyId>> key{
      signer_id, tag, path};
  const auto it = sigs_.find(key);
  if (it != sigs_.end()) return it->second;
  return sigs_.emplace(key, sign_premium_path(signer, tag, path))
      .first->second;
}

bool verify_premium_path(const PublicKey& signer, std::uint64_t tag,
                         const std::vector<PartyId>& path,
                         const Signature& sig) {
  return verify(signer, encode_premium_path(tag, path), sig);
}

}  // namespace xchain::crypto
