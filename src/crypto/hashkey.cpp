#include "crypto/hashkey.hpp"

#include <unordered_set>

#include "crypto/sha256.hpp"

namespace xchain::crypto {

Hashkey make_leader_hashkey(const Bytes& secret, PartyId leader,
                            const KeyPair& leader_keys) {
  Hashkey key;
  key.secret = secret;
  key.path = {leader};
  key.sigs = {sign(leader_keys.priv, leader_keys.pub, secret)};
  return key;
}

Hashkey extend_hashkey(const Hashkey& base, PartyId party,
                       const KeyPair& party_keys) {
  Hashkey key;
  key.secret = base.secret;
  key.path.reserve(base.path.size() + 1);
  key.path.push_back(party);
  key.path.insert(key.path.end(), base.path.begin(), base.path.end());

  key.sigs.reserve(base.sigs.size() + 1);
  key.sigs.push_back(
      sign(party_keys.priv, party_keys.pub, base.sigs.front().encode()));
  key.sigs.insert(key.sigs.end(), base.sigs.begin(), base.sigs.end());
  return key;
}

bool verify_hashkey(const Hashkey& key, const Digest& hashlock,
                    const PublicKeyLookup& key_of) {
  if (key.path.empty() || key.path.size() != key.sigs.size()) return false;
  if (sha256(key.secret) != hashlock) return false;

  std::unordered_set<PartyId> seen;
  for (PartyId p : key.path) {
    if (!seen.insert(p).second) return false;  // paths are simple
  }

  // Innermost link: the leader signs the secret itself.
  const std::size_t last = key.path.size() - 1;
  if (!verify(key_of(key.path[last]), key.secret, key.sigs[last])) {
    return false;
  }
  // Outer links: u_j signs the encoding of u_{j+1}'s signature.
  for (std::size_t j = last; j-- > 0;) {
    if (!verify(key_of(key.path[j]), key.sigs[j + 1].encode(), key.sigs[j])) {
      return false;
    }
  }
  return true;
}

namespace {

Bytes encode_premium_path(std::uint64_t tag,
                          const std::vector<PartyId>& path) {
  Bytes msg;
  append_u64(msg, tag);
  append_u64(msg, path.size());
  for (PartyId p : path) append_u64(msg, p);
  return msg;
}

}  // namespace

Signature sign_premium_path(const KeyPair& signer, std::uint64_t tag,
                            const std::vector<PartyId>& path) {
  return sign(signer.priv, signer.pub, encode_premium_path(tag, path));
}

bool verify_premium_path(const PublicKey& signer, std::uint64_t tag,
                         const std::vector<PartyId>& path,
                         const Signature& sig) {
  return verify(signer, encode_premium_path(tag, path), sig);
}

}  // namespace xchain::crypto
