#pragma once

#include "crypto/bytes.hpp"
#include "crypto/rng.hpp"

namespace xchain::crypto {

/// A hashlock preimage (paper §5: Alice generates a secret s and publishes
/// h = H(s); knowledge of s before the timelock expires redeems the escrow).
class Secret {
 public:
  Secret() = default;
  explicit Secret(Bytes value) : value_(std::move(value)) {}

  /// Samples a fresh 32-byte secret.
  static Secret random(Rng& rng) { return Secret(rng.next_bytes(32)); }

  /// Derives a secret deterministically from a label (for reproducible
  /// protocol runs and tests).
  static Secret from_label(std::string_view label);

  const Bytes& value() const { return value_; }

  /// The hashlock h = SHA-256(s).
  Digest hashlock() const;

 private:
  Bytes value_;
};

/// True iff `preimage` opens `hashlock`, i.e. SHA-256(preimage) == hashlock.
bool opens(const Digest& hashlock, const Bytes& preimage);

}  // namespace xchain::crypto
