#include "crypto/secret.hpp"

#include "crypto/sha256.hpp"

namespace xchain::crypto {

Secret Secret::from_label(std::string_view label) {
  Sha256 h;
  h.update("xchain-secret/");
  h.update(label);
  const Digest d = h.finish();
  return Secret(Bytes(d.begin(), d.end()));
}

Digest Secret::hashlock() const { return sha256(value_); }

bool opens(const Digest& hashlock, const Bytes& preimage) {
  return sha256(preimage) == hashlock;
}

}  // namespace xchain::crypto
