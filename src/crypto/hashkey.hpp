#pragma once

#include <functional>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "crypto/bytes.hpp"
#include "crypto/schnorr.hpp"

namespace xchain::crypto {

/// A hashkey (paper §7): the triple (s, q, sigma) that unlocks hashlock
/// h = H(s) on an arc contract.
///
///  * `secret` is the preimage s.
///  * `path` is q = (u_0, ..., u_k): u_k is the leader who generated s, and
///    u_0 is the party presenting the hashkey (the asset recipient on the
///    arc where it is presented). The path grows by prepending as the
///    hashkey propagates backwards through the digraph.
///  * `sigs[j]` is u_j's signature; sigs[k] (the leader's) signs the secret,
///    and each sigs[j] for j < k signs the encoding of sigs[j+1]:
///    sigma = sig(... sig(s, u_k) ..., u_0).
///
/// A hashkey on arc (u, v) times out at (diam(G) + |q|) * Delta after the
/// start of the protocol; the timeout check lives in the arc contract, which
/// knows diam(G) and Delta.
struct Hashkey {
  Bytes secret;
  std::vector<PartyId> path;
  std::vector<Signature> sigs;

  /// Path length |q| (1 for a leader's own hashkey).
  std::size_t length() const { return path.size(); }

  /// The leader who generated the secret (last element of the path).
  PartyId leader() const { return path.back(); }

  /// The party that most recently extended (or created) the hashkey.
  PartyId presenter() const { return path.front(); }
};

/// Creates a leader's initial hashkey with path (leader).
Hashkey make_leader_hashkey(const Bytes& secret, PartyId leader,
                            const KeyPair& leader_keys);

/// Extends `base` by prepending `party` to the path and wrapping the
/// signature chain: used when `party` learned the hashkey on an outgoing arc
/// and re-presents it on an incoming arc.
Hashkey extend_hashkey(const Hashkey& base, PartyId party,
                       const KeyPair& party_keys);

/// Resolves a party id to its public key.
using PublicKeyLookup = std::function<PublicKey(PartyId)>;

/// Verifies the whole hashkey:
///  * SHA-256(secret) matches `hashlock`,
///  * the path is non-empty with distinct vertices,
///  * every signature in the chain verifies under the path party's key.
///
/// Graph validity of the path (consecutive pairs are arcs of G) and the
/// timeout are checked separately by the arc contract, which knows G.
bool verify_hashkey(const Hashkey& key, const Digest& hashlock,
                    const PublicKeyLookup& key_of);

/// Signs a redemption-premium path (paper §7.1: premium paths "are
/// authenticated by signatures" exactly like hashkey paths). The signer is
/// the depositor; `tag` distinguishes the leader/hashlock the premium is
/// for.
Signature sign_premium_path(const KeyPair& signer, std::uint64_t tag,
                            const std::vector<PartyId>& path);

/// Verifies a premium-path signature under the depositor's key.
bool verify_premium_path(const PublicKey& signer, std::uint64_t tag,
                         const std::vector<PartyId>& path,
                         const Signature& sig);

/// Memoizing front-end for the two verification entry points above.
///
/// Signature verification is pure: the verdict is a function of the bytes
/// checked. A contract on a reusable sweep world sees the same
/// deterministic hashkeys and premium-path signatures on every schedule,
/// so it can carry one of these across runs (a cache of pure computation —
/// explicitly allowed to survive Contract::reset()) and pay each modular
/// exponentiation chain once instead of once per schedule.
///
/// Entries are keyed by the full serialized verification input (domain
/// tag, secret, digest, path, signatures, resolved public keys), compared
/// bytewise — a memo hit is exact, never a hash collision, so the cache
/// can never flip a verdict (the weak-fingerprint failure mode this PR
/// deleted from Ledger::KeyHash). Not thread-safe — contracts are
/// confined to one worker's world, which is exactly the sweep's threading
/// model.
class VerifyCache {
 public:
  bool verify_hashkey(const Hashkey& key, const Digest& hashlock,
                      const PublicKeyLookup& key_of);
  bool verify_premium_path(const PublicKey& signer, std::uint64_t tag,
                           const std::vector<PartyId>& path,
                           const Signature& sig);

 private:
  struct BytesHash {
    std::size_t operator()(const Bytes& b) const noexcept {
      std::size_t h = 1469598103934665603ull;  // FNV-1a
      for (const std::uint8_t c : b) {
        h ^= c;
        h *= 1099511628211ull;
      }
      return h;
    }
  };
  // Bucket lookup still compares the full key bytes, so a hash collision
  // costs a probe, never a wrong verdict.
  std::unordered_map<Bytes, bool, BytesHash> memo_;
};

/// Memoizing front-end for hashkey construction and premium-path signing.
///
/// Both are deterministic: within one protocol world the secrets, keys,
/// and party ids are fixed, so the hashkey for (index, path) — and the
/// signature for (signer, tag, path) — is the same on every sweep
/// schedule. Worlds own one of these and reuse it across runs, collapsing
/// per-schedule signing to a map lookup. Not thread-safe; one per world.
class SigningCache {
 public:
  /// make_leader_hashkey, memoized on (index, {leader}).
  const Hashkey& leader_hashkey(std::size_t index, const Bytes& secret,
                                PartyId leader, const KeyPair& leader_keys);

  /// extend_hashkey, memoized on (index, party + base.path).
  const Hashkey& extended_hashkey(std::size_t index, const Hashkey& base,
                                  PartyId party, const KeyPair& party_keys);

  /// sign_premium_path, memoized on (signer_id, tag, path).
  const Signature& premium_path_sig(const KeyPair& signer, PartyId signer_id,
                                    std::uint64_t tag,
                                    const std::vector<PartyId>& path);

 private:
  std::map<std::pair<std::uint64_t, std::vector<PartyId>>, Hashkey> keys_;
  std::map<std::tuple<PartyId, std::uint64_t, std::vector<PartyId>>,
           Signature>
      sigs_;
};

}  // namespace xchain::crypto
