#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "crypto/bytes.hpp"
#include "crypto/schnorr.hpp"

namespace xchain::crypto {

/// A hashkey (paper §7): the triple (s, q, sigma) that unlocks hashlock
/// h = H(s) on an arc contract.
///
///  * `secret` is the preimage s.
///  * `path` is q = (u_0, ..., u_k): u_k is the leader who generated s, and
///    u_0 is the party presenting the hashkey (the asset recipient on the
///    arc where it is presented). The path grows by prepending as the
///    hashkey propagates backwards through the digraph.
///  * `sigs[j]` is u_j's signature; sigs[k] (the leader's) signs the secret,
///    and each sigs[j] for j < k signs the encoding of sigs[j+1]:
///    sigma = sig(... sig(s, u_k) ..., u_0).
///
/// A hashkey on arc (u, v) times out at (diam(G) + |q|) * Delta after the
/// start of the protocol; the timeout check lives in the arc contract, which
/// knows diam(G) and Delta.
struct Hashkey {
  Bytes secret;
  std::vector<PartyId> path;
  std::vector<Signature> sigs;

  /// Path length |q| (1 for a leader's own hashkey).
  std::size_t length() const { return path.size(); }

  /// The leader who generated the secret (last element of the path).
  PartyId leader() const { return path.back(); }

  /// The party that most recently extended (or created) the hashkey.
  PartyId presenter() const { return path.front(); }
};

/// Creates a leader's initial hashkey with path (leader).
Hashkey make_leader_hashkey(const Bytes& secret, PartyId leader,
                            const KeyPair& leader_keys);

/// Extends `base` by prepending `party` to the path and wrapping the
/// signature chain: used when `party` learned the hashkey on an outgoing arc
/// and re-presents it on an incoming arc.
Hashkey extend_hashkey(const Hashkey& base, PartyId party,
                       const KeyPair& party_keys);

/// Resolves a party id to its public key.
using PublicKeyLookup = std::function<PublicKey(PartyId)>;

/// Verifies the whole hashkey:
///  * SHA-256(secret) matches `hashlock`,
///  * the path is non-empty with distinct vertices,
///  * every signature in the chain verifies under the path party's key.
///
/// Graph validity of the path (consecutive pairs are arcs of G) and the
/// timeout are checked separately by the arc contract, which knows G.
bool verify_hashkey(const Hashkey& key, const Digest& hashlock,
                    const PublicKeyLookup& key_of);

/// Signs a redemption-premium path (paper §7.1: premium paths "are
/// authenticated by signatures" exactly like hashkey paths). The signer is
/// the depositor; `tag` distinguishes the leader/hashlock the premium is
/// for.
Signature sign_premium_path(const KeyPair& signer, std::uint64_t tag,
                            const std::vector<PartyId>& path);

/// Verifies a premium-path signature under the depositor's key.
bool verify_premium_path(const PublicKey& signer, std::uint64_t tag,
                         const std::vector<PartyId>& path,
                         const Signature& sig);

}  // namespace xchain::crypto
