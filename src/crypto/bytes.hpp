#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace xchain::crypto {

/// Raw byte buffer used throughout the crypto layer.
using Bytes = std::vector<std::uint8_t>;

/// A 32-byte digest (output of SHA-256).
using Digest = std::array<std::uint8_t, 32>;

/// Converts an arbitrary string to bytes (no encoding transformation).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Appends a digest to `dst`.
inline void append(Bytes& dst, const Digest& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Appends a 64-bit value in big-endian order.
inline void append_u64(Bytes& dst, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    dst.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Lower-case hex encoding of a byte range.
template <typename Range>
std::string to_hex(const Range& bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0x0f]);
  }
  return out;
}

/// Parses lower- or upper-case hex; returns empty on malformed input.
Bytes from_hex(std::string_view hex);

inline Bytes from_hex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace xchain::crypto
