#include "crypto/schnorr.hpp"

#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "crypto/sha256.hpp"

namespace xchain::crypto {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // These witnesses make Miller-Rabin deterministic for all n < 2^64.
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

const GroupParams& group() {
  static const GroupParams params = [] {
    // Deterministic search for the first safe prime p = 2q + 1 above 2^61.
    std::uint64_t q = (1ull << 60) + 1;
    while (!(is_prime_u64(q) && is_prime_u64(2 * q + 1))) {
      q += 2;
    }
    // g = 4 is a quadratic residue, hence generates the order-q subgroup.
    return GroupParams{2 * q + 1, q, 4};
  }();
  return params;
}

namespace {

std::uint64_t digest_to_scalar(const Digest& d, std::uint64_t mod) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[i];
  return v % mod;
}

}  // namespace

Bytes Signature::encode() const {
  Bytes out;
  append_u64(out, e);
  append_u64(out, s);
  return out;
}

KeyPair keygen(std::string_view seed) {
  const GroupParams& gp = group();
  Sha256 h;
  h.update("xchain-keygen/");
  h.update(seed);
  const std::uint64_t x = 1 + digest_to_scalar(h.finish(), gp.q - 1);
  return KeyPair{PrivateKey{x}, PublicKey{powmod(gp.g, x, gp.p)}};
}

namespace {

/// Transparent hashing so cache hits are allocation-free (sweep workers
/// rebuild parties per schedule and look keys up by string_view).
struct SeedHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
struct SeedEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

}  // namespace

const KeyPair& keygen_cached(std::string_view seed) {
  // Hits take a shared lock and never allocate; the map is node-based, so
  // returned references stay valid across rehashes.
  static std::shared_mutex mu;
  static std::unordered_map<std::string, KeyPair, SeedHash, SeedEq> cache;
  {
    std::shared_lock lock(mu);
    const auto it = cache.find(seed);
    if (it != cache.end()) return it->second;
  }
  std::unique_lock lock(mu);
  const auto it = cache.find(seed);  // raced inserts resolve here
  if (it != cache.end()) return it->second;
  return cache.emplace(std::string(seed), keygen(seed)).first->second;
}

Signature sign(const PrivateKey& key, const PublicKey& pub,
               const Bytes& message) {
  const GroupParams& gp = group();
  // Deterministic nonce derivation (RFC 6979 in spirit).
  Sha256 nh;
  nh.update("xchain-nonce/");
  Bytes key_bytes;
  append_u64(key_bytes, key.x);
  nh.update(key_bytes);
  nh.update(message);
  const std::uint64_t k = 1 + digest_to_scalar(nh.finish(), gp.q - 1);
  const std::uint64_t r = powmod(gp.g, k, gp.p);

  Sha256 eh;
  eh.update("xchain-challenge/");
  Bytes ctx;
  append_u64(ctx, r);
  append_u64(ctx, pub.y);
  eh.update(ctx);
  eh.update(message);
  const std::uint64_t e = digest_to_scalar(eh.finish(), gp.q);
  const std::uint64_t s = (k + mulmod(e, key.x, gp.q)) % gp.q;
  return Signature{e, s};
}

bool verify(const PublicKey& pub, const Bytes& message, const Signature& sig) {
  const GroupParams& gp = group();
  if (pub.y == 0 || pub.y >= gp.p || sig.s >= gp.q || sig.e >= gp.q) {
    return false;
  }
  // R' = g^s * y^(-e) = g^s * y^(q - e)  (y has order q).
  const std::uint64_t gs = powmod(gp.g, sig.s, gp.p);
  const std::uint64_t ye = powmod(pub.y, gp.q - sig.e, gp.p);
  const std::uint64_t r = mulmod(gs, ye, gp.p);

  Sha256 eh;
  eh.update("xchain-challenge/");
  Bytes ctx;
  append_u64(ctx, r);
  append_u64(ctx, pub.y);
  eh.update(ctx);
  eh.update(message);
  return digest_to_scalar(eh.finish(), gp.q) == sig.e;
}

}  // namespace xchain::crypto
