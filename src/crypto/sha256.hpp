#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "crypto/bytes.hpp"

namespace xchain::crypto {

/// Incremental SHA-256 (FIPS 180-4).
///
/// Usage:
///   Sha256 h;
///   h.update(data);
///   Digest d = h.finish();
///
/// `finish()` may be called once; the object is then exhausted.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes starting at `data`.
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  void update(std::string_view s) {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  void update(const Digest& d) { update(d.data(), d.size()); }

  /// Pads, finalizes, and returns the 32-byte digest.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t bit_count_ = 0;
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
};

/// One-shot SHA-256 of a byte buffer.
Digest sha256(const Bytes& data);

/// One-shot SHA-256 of a string.
Digest sha256(std::string_view data);

}  // namespace xchain::crypto
