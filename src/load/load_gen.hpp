#pragma once

// Shared-chain load generator.
//
// Historical sweeps audit one protocol instance at a time on a private
// world. This subsystem instead binds thousands of concurrent instances —
// drawn from a weighted mix of registry protocols — onto ONE shared
// MultiChain (core/binding.hpp) and drives them through a seeded arrival
// process. Congestion is organic: every block has bounded capacity (a
// '*'-squeeze FaultClause), so instances outbid each other through their
// fee-escalation ResiliencePolicy instead of competing against synthetic
// spam. Every party is conforming; the question load answers is whether
// the paper's hedged floors survive *real* contention at scale.
//
// The tick loop is deterministic at any thread count:
//   1. serial arrivals  — instances whose start tick is due are bound
//      (mint endowments, deploy contracts, build persistent actors);
//   2. parallel ticks   — active instances are sharded over the worker
//      threads; each actor's tick() only reads chain state and records
//      its submissions into the instance's private TxSink;
//   3. serial drain     — sinks drain into the mempools in arrival order,
//      so submission sequence numbers never depend on thread timing;
//   4. block production — produce_all(now) runs the fee-ordered bounded
//      selection once per chain over the whole tick's traffic.
// An instance completes once the block at end_tick() - 1 is produced; its
// outcomes are payoff-audited immediately (audit_schedule). Completion
// latency is measured by an inclusion observer mapping applied
// transactions back to instances through their disjoint account-id
// ranges.
//
// Violations are attributed after the run: each violating protocol is
// re-run solo on a faultless private world under the same all-conforming
// schedule. A clean twin proves the loss came from congestion, not the
// protocol — the violation is marked fault_caused (the [chain-fault]
// attribution of sim/scenario.hpp); anything else stays unattributed and
// fails the bench.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/payoff_audit.hpp"

namespace xchain::load {

/// One entry of the protocol mix: a registry name (sim/registry.hpp) and
/// a relative weight in the arrival draw.
struct MixEntry {
  std::string protocol;
  int weight = 1;
};

/// Configuration of one load run. The report is a pure function of
/// everything here except `threads`, which only changes wall time.
struct LoadConfig {
  std::size_t users = 1000;  ///< protocol instances to run to completion
  unsigned threads = 1;      ///< tick-phase worker threads (>= 1)
  std::uint64_t seed = 1;    ///< arrival-process / mix-draw seed

  /// Weighted protocol mix; empty = {two-party:1}. Names resolve through
  /// ProtocolRegistry::global() and must support bind_instance
  /// (two-party, broker, bridge-transfer).
  std::vector<MixEntry> mix;

  /// Inter-arrival gap between consecutive instances is drawn uniformly
  /// from [0, arrival_gap] ticks (instance 0 arrives at tick 0).
  Tick arrival_gap = 1;

  /// Per-block transaction cap on every chain (the organic-congestion
  /// squeeze). 0 = unbounded blocks (no congestion).
  int block_capacity = 4;

  /// Fee-escalation ceiling of the instances' ResiliencePolicy.
  Amount max_fee = 64;
};

/// Completion-latency percentiles in ticks (nearest-rank over the sorted
/// per-instance latencies). Latency is measured from the instance's
/// arrival tick to its last included transaction, inclusive.
struct LatencyStats {
  Tick p50 = 0;
  Tick p95 = 0;
  Tick p99 = 0;
  Tick max = 0;
  double mean = 0.0;
};

/// Aggregates for one protocol of the mix.
struct ProtocolStats {
  std::string protocol;
  std::size_t instances = 0;
  std::size_t txs_included = 0;
  LatencyStats latency;
  std::size_t violations = 0;
  std::size_t fault_caused = 0;
};

/// Result of one load run. Identical for any `threads` value except the
/// wall_seconds field (pinned by tests/load_generator_test.cpp).
struct LoadReport {
  std::size_t instances = 0;     ///< completed (== LoadConfig::users)
  std::size_t txs_included = 0;  ///< transactions applied across all chains
  std::size_t chains = 0;        ///< distinct shared chains created
  Tick ticks = 0;                ///< simulated ticks until the last completion
  double wall_seconds = 0.0;     ///< measured wall time of the tick loop

  LatencyStats latency;                      ///< across all instances
  std::vector<ProtocolStats> per_protocol;   ///< in mix order

  /// Hedged-floor violations across all completed instances, in
  /// completion order; every one should re-audit clean on its faultless
  /// twin (fault_caused) — an unattributed violation is a real bug.
  std::vector<sim::Violation> violations;
  std::size_t fault_caused = 0;
  std::size_t unattributed = 0;

  bool ok() const { return unattributed == 0; }
};

/// Runs one load configuration to completion. Throws
/// std::invalid_argument on malformed configs (zero users, non-positive
/// weights) and sim::RegistryError on unknown protocol names.
LoadReport run_load(const LoadConfig& cfg);

}  // namespace xchain::load
