#include "load/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "chain/blockchain.hpp"
#include "chain/fault.hpp"
#include "core/binding.hpp"
#include "crypto/rng.hpp"
#include "sim/party.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::load {

namespace {

/// One arrived protocol instance: the bound world plus the scheduler's
/// bookkeeping. Never destroyed before the run ends — mempools may carry
/// crowded-out transactions whose effects reference the instance's
/// contracts and actors long after it completed.
struct Instance {
  std::size_t idx = 0;    ///< arrival index (the "#<idx>" of its tag)
  std::size_t proto = 0;  ///< mix index
  PartyId base = 0;       ///< first account id of the instance's range
  PartyId base_end = 0;   ///< one past the last account id
  Tick start = 0;         ///< arrival tick
  Tick end = 0;           ///< exclusive end tick (LoadInstance::end_tick)
  std::unique_ptr<sim::LoadInstance> bound;
  sim::TxSink sink;            ///< this tick's deferred submissions
  Tick last_inclusion = -1;    ///< newest block holding one of its txs
  std::size_t txs = 0;         ///< its included transactions
};

/// Nearest-rank percentile over sorted latencies: index p*(n-1)/100.
Tick percentile(const std::vector<Tick>& sorted, int p) {
  if (sorted.empty()) return 0;
  return sorted[(static_cast<std::size_t>(p) * (sorted.size() - 1)) / 100];
}

LatencyStats latency_stats(std::vector<Tick> lats) {
  LatencyStats s;
  if (lats.empty()) return s;
  std::sort(lats.begin(), lats.end());
  s.p50 = percentile(lats, 50);
  s.p95 = percentile(lats, 95);
  s.p99 = percentile(lats, 99);
  s.max = lats.back();
  double sum = 0;
  for (Tick t : lats) sum += static_cast<double>(t);
  s.mean = sum / static_cast<double>(lats.size());
  return s;
}

/// The all-conforming schedule every load instance runs (and every
/// attribution twin replays).
sim::Schedule conforming_schedule(std::size_t parties, std::string label) {
  sim::Schedule s;
  s.plans.assign(parties, sim::DeviationPlan::conforming());
  s.label = std::move(label);
  return s;
}

}  // namespace

LoadReport run_load(const LoadConfig& cfg) {
  if (cfg.users == 0) throw std::invalid_argument("load: users must be >= 1");
  std::vector<MixEntry> mix = cfg.mix;
  if (mix.empty()) mix.push_back({"two-party", 1});
  int total_weight = 0;
  for (const MixEntry& m : mix) {
    if (m.weight <= 0) {
      throw std::invalid_argument("load: mix weight for '" + m.protocol +
                                  "' must be >= 1");
    }
    total_weight += m.weight;
  }
  const unsigned threads = std::max(1u, cfg.threads);

  // One adapter per mix entry (unknown names throw RegistryError here;
  // protocols without a bound world form throw at their first bind).
  const sim::ProtocolRegistry& registry = sim::ProtocolRegistry::global();
  std::vector<std::unique_ptr<sim::ProtocolAdapter>> adapters;
  adapters.reserve(mix.size());
  for (const MixEntry& m : mix) adapters.push_back(registry.make(m.protocol));

  // The shared world. Capacity squeeze on every chain (current and
  // future) plus the fee-escalation defense — installed before any
  // instance binds, so chains created later inherit both.
  chain::MultiChain chains;
  chains.set_trace(chain::TraceMode::kOff);
  chain::ChainEnvironment env;
  if (cfg.block_capacity > 0) {
    chain::FaultClause squeeze;
    squeeze.kind = chain::FaultClause::Kind::kSqueeze;
    squeeze.from = 0;
    squeeze.to = std::numeric_limits<Tick>::max() / 2;
    squeeze.cap = cfg.block_capacity;
    env.faults.entries.emplace_back("*", squeeze);
  }
  env.resilience.kind = chain::ResiliencePolicy::Kind::kFeeEscalate;
  env.resilience.max_fee = cfg.max_fee;
  chains.set_environment(env);

  // Seeded arrival plan: protocol draw and arrival tick per instance.
  // Account bases are assigned at bind time (arrival order), so the plan
  // is a pure function of (seed, mix, arrival_gap).
  crypto::Rng rng(cfg.seed);
  std::vector<std::unique_ptr<Instance>> instances;
  instances.reserve(cfg.users);
  {
    Tick at = 0;
    for (std::size_t i = 0; i < cfg.users; ++i) {
      if (i > 0) at += static_cast<Tick>(rng.next_below(
                      static_cast<std::uint64_t>(cfg.arrival_gap) + 1));
      auto inst = std::make_unique<Instance>();
      inst->idx = i;
      std::uint64_t pick =
          rng.next_below(static_cast<std::uint64_t>(total_weight));
      for (std::size_t m = 0; m < mix.size(); ++m) {
        const std::uint64_t w = static_cast<std::uint64_t>(mix[m].weight);
        if (pick < w) {
          inst->proto = m;
          break;
        }
        pick -= w;
      }
      inst->start = at;
      instances.push_back(std::move(inst));
    }
  }

  // Inclusion observer: map each applied transaction's sender back to its
  // instance through the disjoint account-id ranges. `bases` is sorted by
  // construction (bases grow in arrival order).
  std::size_t txs_included = 0;
  std::vector<std::pair<PartyId, std::size_t>> bases;  // (base, instance)
  chains.set_inclusion_observer([&](ChainId, PartyId sender, Tick height) {
    ++txs_included;
    auto it = std::upper_bound(
        bases.begin(), bases.end(), sender,
        [](PartyId s, const std::pair<PartyId, std::size_t>& b) {
          return s < b.first;
        });
    if (it == bases.begin()) return;
    Instance& inst = *instances[(--it)->second];
    if (sender >= inst.base_end) return;
    inst.last_inclusion = std::max(inst.last_inclusion, height);
    ++inst.txs;
  });

  LoadReport report;
  const auto t0 = std::chrono::steady_clock::now();

  PartyId next_base = 0;
  std::size_t next_arrival = 0;
  std::vector<Instance*> active;  // arrival order — the drain order
  Tick now = 0;
  while (next_arrival < instances.size() || !active.empty()) {
    // 1. Serial arrivals: bind every instance due this tick.
    while (next_arrival < instances.size() &&
           instances[next_arrival]->start == now) {
      Instance& inst = *instances[next_arrival];
      const sim::ProtocolAdapter& adapter = *adapters[inst.proto];
      inst.base = next_base;
      inst.base_end =
          next_base + static_cast<PartyId>(adapter.party_count());
      next_base = inst.base_end;
      core::WorldBinding binding;
      binding.chains = &chains;
      binding.party_base = inst.base;
      binding.start = inst.start;
      binding.tag =
          mix[inst.proto].protocol + "#" + std::to_string(inst.idx);
      inst.bound = adapter.bind_instance(binding);
      inst.end = inst.bound->end_tick();
      for (sim::Party* actor : inst.bound->actors()) {
        actor->set_tx_sink(&inst.sink);
      }
      bases.emplace_back(inst.base, next_arrival);
      active.push_back(&inst);
      ++next_arrival;
    }

    // 2. Parallel tick phase: contiguous instance shards, one per worker.
    // Actors only read chain state and fill their instance's private
    // sink, so shards share nothing mutable.
    const auto tick_range = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (sim::Party* actor : active[i]->bound->actors()) {
          actor->tick(chains, now);
        }
      }
    };
    if (threads == 1 || active.size() < 2 * threads) {
      tick_range(0, active.size());
    } else {
      const std::size_t chunk = (active.size() + threads - 1) / threads;
      std::vector<std::thread> pool;
      pool.reserve(threads - 1);
      for (unsigned t = 1; t < threads; ++t) {
        const std::size_t lo = std::min(active.size(), t * chunk);
        const std::size_t hi = std::min(active.size(), lo + chunk);
        if (lo < hi) pool.emplace_back(tick_range, lo, hi);
      }
      tick_range(0, std::min(active.size(), chunk));
      for (std::thread& th : pool) th.join();
    }

    // 3. Serial drain in arrival order: mempool sequence numbers are
    // independent of thread count.
    for (Instance* inst : active) inst->sink.drain();

    // 4. One fee-ordered bounded block per chain over the whole tick.
    chains.produce_all(now);

    // Completions: the block at end - 1 has been produced.
    std::size_t kept = 0;
    for (Instance* inst : active) {
      if (inst->end > now + 1) {
        active[kept++] = inst;
        continue;
      }
      sim::audit_schedule(
          mix[inst->proto].protocol + "#" + std::to_string(inst->idx),
          inst->bound->collect(), report.violations);
    }
    active.resize(kept);
    ++now;
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  report.ticks = now;
  report.instances = instances.size();
  report.txs_included = txs_included;
  report.chains = chains.count();

  // Latency + per-protocol aggregation.
  std::vector<Tick> all_lats;
  all_lats.reserve(instances.size());
  std::vector<std::vector<Tick>> proto_lats(mix.size());
  report.per_protocol.resize(mix.size());
  for (std::size_t m = 0; m < mix.size(); ++m) {
    report.per_protocol[m].protocol = mix[m].protocol;
  }
  for (const auto& inst : instances) {
    const Tick lat = inst->txs > 0 ? inst->last_inclusion - inst->start + 1
                                   : inst->end - inst->start;
    all_lats.push_back(lat);
    proto_lats[inst->proto].push_back(lat);
    ProtocolStats& ps = report.per_protocol[inst->proto];
    ++ps.instances;
    ps.txs_included += inst->txs;
  }
  report.latency = latency_stats(std::move(all_lats));
  for (std::size_t m = 0; m < mix.size(); ++m) {
    report.per_protocol[m].latency = latency_stats(std::move(proto_lats[m]));
  }

  // Fault attribution: a violating protocol re-runs solo, all-conforming,
  // on a faultless private world. All load instances of one protocol are
  // identical modulo binding, so one twin per protocol decides them all.
  std::vector<int> twin_clean(mix.size(), -1);  // -1 unknown, 0/1 decided
  for (sim::Violation& v : report.violations) {
    const std::size_t m = [&] {
      const std::string proto = v.schedule.substr(0, v.schedule.find('#'));
      for (std::size_t i = 0; i < mix.size(); ++i) {
        if (mix[i].protocol == proto) return i;
      }
      return mix.size();
    }();
    if (m == mix.size()) {
      ++report.unattributed;
      continue;
    }
    if (twin_clean[m] < 0) {
      const std::unique_ptr<sim::ProtocolAdapter> twin =
          registry.make(mix[m].protocol);
      std::vector<sim::Violation> scratch;
      sim::audit_schedule(
          "twin",
          twin->run(conforming_schedule(twin->party_count(), "twin")),
          scratch);
      twin_clean[m] = scratch.empty() ? 1 : 0;
    }
    v.fault_caused = twin_clean[m] == 1;
    if (v.fault_caused) {
      ++report.fault_caused;
      ++report.per_protocol[m].fault_caused;
    } else {
      ++report.unattributed;
    }
    ++report.per_protocol[m].violations;
  }

  return report;
}

}  // namespace xchain::load
