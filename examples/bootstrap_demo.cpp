// Premium bootstrapping (paper §6, Figure 2): hedging a $1,000,000 swap
// while risking only a few dollars of unprotected deposit.

#include <cstdio>

#include "core/bootstrap.hpp"

using namespace xchain;

int main() {
  const Amount a = 1'000'000, b = 1'000'000;
  const double factor = 100.0;  // 1% premiums

  std::printf("Bootstrapping premiums for a $%lld <-> $%lld swap, P = %.0f\n",
              static_cast<long long>(a), static_cast<long long>(b), factor);

  std::printf("\n%-8s %-22s %-22s\n", "rounds", "initial risk (apricot)",
              "initial risk (banana)");
  for (int r = 1; r <= 4; ++r) {
    const auto s = core::bootstrap_schedule(a, b, factor, r);
    std::printf("%-8d $%-21lld $%-21lld\n", r,
                static_cast<long long>(s.initial_risk_apricot()),
                static_cast<long long>(s.initial_risk_banana()));
  }
  std::printf(
      "\nPaper claim: \"With 1%% premiums and $4 initial lock-up risk, 3\n"
      "bootstrapping rounds are enough to hedge a $1,000,000 swap.\"\n");
  std::printf("rounds_needed(risk <= $4) = %d\n",
              core::bootstrap_rounds_needed(a, b, factor, 4));

  core::BootstrapConfig cfg;
  cfg.alice_tokens = a;
  cfg.bob_tokens = b;
  cfg.factor = factor;
  cfg.rounds = 3;
  cfg.delta = 2;

  const auto ok = core::run_bootstrap_swap(
      cfg, sim::DeviationPlan::conforming(), sim::DeviationPlan::conforming());
  std::printf("\n3-round run, both conform: swapped=%s, premium lockup "
              "duration %lld ticks (independent of rounds)\n",
              ok.swapped ? "yes" : "no",
              static_cast<long long>(ok.max_premium_lockup));

  // Bob's principal escrow is his second-to-last action.
  const int bob_principal = core::bootstrap_action_count(cfg.rounds) - 2;
  const auto bad = core::run_bootstrap_swap(
      cfg, sim::DeviationPlan::conforming(),
      sim::DeviationPlan::halt_after(bob_principal));
  std::printf("Bob defaults on his principal: alice premium net %+lld "
              "(compensated), bob %+lld\n",
              static_cast<long long>(bad.alice.coin_delta),
              static_cast<long long>(bad.bob.coin_delta));
  return 0;
}
