// Multi-party hedged swap (paper §7) on a 5-party ring: each party passes
// an asset to the next. Shows Equation 1/2 premium tables, a conforming
// run, and a sore-loser run where one party never escrows.

#include <cstdio>

#include "core/multi_party.hpp"
#include "core/premiums.hpp"

using namespace xchain;

int main() {
  const std::size_t n = 5;
  graph::Digraph g = graph::Digraph::cycle(n);
  const Amount p = 1;

  std::printf("5-party ring swap: 0 -> 1 -> 2 -> 3 -> 4 -> 0\n");
  const auto leaders = g.minimum_feedback_vertex_set();
  std::printf("leaders (feedback vertex set):");
  for (auto l : leaders) std::printf(" %u", l);
  std::printf("\n\nEquation 1/2 premiums (p = %lld):\n",
              static_cast<long long>(p));
  std::printf("  leader redemption premium R(L) = %lld (linear in n)\n",
              static_cast<long long>(
                  core::leader_redemption_premium(g, leaders[0], p)));
  const auto escrow = core::escrow_premiums(g, leaders, p);
  for (const auto& [arc, amount] : escrow) {
    std::printf("  E(%u,%u) = %lld\n", arc.first, arc.second,
                static_cast<long long>(amount));
  }

  core::MultiPartyConfig cfg;
  cfg.g = g;
  cfg.asset_amount = 100;
  cfg.premium_unit = p;
  cfg.delta = 1;

  std::vector<sim::DeviationPlan> plans(n, sim::DeviationPlan::conforming());
  auto ok = core::run_multi_party_swap(cfg, plans);
  std::printf("\nAll conform: all_redeemed=%s; premium nets:",
              ok.all_redeemed ? "yes" : "no");
  for (std::size_t v = 0; v < n; ++v) {
    std::printf(" %+lld", static_cast<long long>(ok.payoffs[v].coin_delta));
  }
  std::printf("\n");

  plans[3] = sim::DeviationPlan::halt_after(2);  // party 3 never escrows
  auto bad = core::run_multi_party_swap(cfg, plans);
  std::printf("Party 3 skips the escrow phase: all_redeemed=%s\n",
              bad.all_redeemed ? "yes" : "no");
  for (std::size_t v = 0; v < n; ++v) {
    std::printf("  party %zu: premium net %+lld, escrowed %d, refunded %d\n",
                v, static_cast<long long>(bad.payoffs[v].coin_delta),
                bad.assets_escrowed[v], bad.assets_refunded[v]);
  }
  std::printf(
      "\nEvery compliant party that escrowed-and-lost an asset nets at\n"
      "least p per asset (Lemma 6); the deviator funds the compensation.\n");
  return 0;
}
