// Quickstart: the hedged two-party atomic swap of Xue & Herlihy (PODC '21),
// §5.2 / Figure 1.
//
// Alice trades 100 apricot tokens for Bob's 50 banana tokens. Both runs are
// shown: the happy path, and Bob walking away after Alice escrows — the
// sore loser attack — where the premium machinery compensates her.

#include <cstdio>

#include "core/two_party.hpp"

using namespace xchain;

namespace {

void report(const char* title, const core::TwoPartyResult& r) {
  std::printf("\n%s\n", title);
  std::printf("  swapped: %s\n", r.swapped ? "yes" : "no");
  std::printf("  alice payoff: %s  (premium net %+lld, lockup %lld ticks)\n",
              r.alice.str().c_str(),
              static_cast<long long>(r.alice.coin_delta),
              static_cast<long long>(r.alice_lockup));
  std::printf("  bob payoff:   %s  (premium net %+lld, lockup %lld ticks)\n",
              r.bob.str().c_str(), static_cast<long long>(r.bob.coin_delta),
              static_cast<long long>(r.bob_lockup));
}

}  // namespace

int main() {
  core::TwoPartyConfig cfg;
  cfg.alice_tokens = 100;  // A apricot tokens
  cfg.bob_tokens = 50;     // B banana tokens
  cfg.premium_a = 2;       // p_a
  cfg.premium_b = 1;       // p_b
  cfg.delta = 2;           // synchrony bound, in ticks

  std::printf("Hedged two-party atomic swap (paper §5.2)\n");
  std::printf("A = %lld apricot vs B = %lld banana; p_a = %lld, p_b = %lld\n",
              static_cast<long long>(cfg.alice_tokens),
              static_cast<long long>(cfg.bob_tokens),
              static_cast<long long>(cfg.premium_a),
              static_cast<long long>(cfg.premium_b));

  report("== both parties conform ==",
         run_hedged_two_party(cfg, sim::DeviationPlan::conforming(),
                              sim::DeviationPlan::conforming()));

  report("== Bob reneges after Alice escrows (sore loser attack) ==",
         run_hedged_two_party(cfg, sim::DeviationPlan::conforming(),
                              sim::DeviationPlan::halt_after(1)));

  report("== same attack against the UNHEDGED base protocol (§5.1) ==",
         run_base_two_party(cfg, sim::DeviationPlan::conforming(),
                            sim::DeviationPlan::halt_after(0)));

  std::printf(
      "\nIn the hedged run Alice collects Bob's premium p_b for her locked\n"
      "principal; in the base run she is locked up for 3*Delta with no\n"
      "compensation — the flaw the paper fixes.\n");
  return 0;
}
