// Hedged auction (paper §9): Alice auctions tickets to Bob and Carol. The
// design removes the low bidder's sore-loser power and compensates bidders
// if the auctioneer cheats or walks away.

#include <cstdio>

#include "core/auction.hpp"

using namespace xchain;

namespace {

void report(const char* title, const core::AuctionResult& r) {
  std::printf("\n%s\n", title);
  std::printf("  completed: %s, tickets to party %u\n",
              r.completed ? "yes" : "no", r.tickets_to);
  std::printf("  alice: %s (premium net %+lld)\n",
              r.auctioneer.str().c_str(),
              static_cast<long long>(r.auctioneer.coin_delta));
  for (std::size_t i = 0; i < r.bidders.size(); ++i) {
    std::printf("  bidder %zu: %s (premium net %+lld)\n", i + 1,
                r.bidders[i].str().c_str(),
                static_cast<long long>(r.bidders[i].coin_delta));
  }
}

}  // namespace

int main() {
  core::AuctionConfig cfg;
  cfg.ticket_count = 10;
  cfg.bids = {100, 80};  // Bob bids 100, Carol 80
  cfg.premium_unit = 2;  // Alice endows n * p = 4
  cfg.delta = 2;

  std::printf("Hedged auction (§9): Bob bids 100, Carol bids 80, p = 2.\n");

  const auto conform = std::vector<core::BidderStrategy>(
      2, core::BidderStrategy::kConform);

  report("== honest auction ==",
         run_auction(cfg, core::AuctioneerStrategy::kHonest, conform));

  report("== Alice abandons after the bids lock up ==",
         run_auction(cfg, core::AuctioneerStrategy::kAbandon, conform));

  report("== Alice declares the losing bidder ==",
         run_auction(cfg, core::AuctioneerStrategy::kDeclareLoser, conform));

  report("== Alice publishes the winner's key on one chain only ==",
         run_auction(cfg, core::AuctioneerStrategy::kCoinOnly, conform));

  std::printf(
      "\nBidders pay no premiums (they cannot lock anyone up); a cheating\n"
      "or absent auctioneer pays p to every bidder whose coins she locked\n"
      "(Lemmas 7-8: the challenge phase makes one-sided declarations\n"
      "harmless and no compliant bid can be stolen).\n");
  return 0;
}
