// Brokered commerce (paper §8): Alice brokers Bob's tickets to Carol using
// Carol's coins — a deal that is not a swap, since Alice owns neither.

#include <cstdio>

#include "core/broker.hpp"

using namespace xchain;

namespace {

void report(const char* title, const core::BrokerResult& r) {
  std::printf("\n%s\n", title);
  std::printf("  completed: %s\n", r.completed ? "yes" : "no");
  std::printf("  alice: %s (premium net %+lld)\n", r.alice.str().c_str(),
              static_cast<long long>(r.alice.coin_delta));
  std::printf("  bob:   %s (premium net %+lld)\n", r.bob.str().c_str(),
              static_cast<long long>(r.bob.coin_delta));
  std::printf("  carol: %s (premium net %+lld)\n", r.carol.str().c_str(),
              static_cast<long long>(r.carol.coin_delta));
}

}  // namespace

int main() {
  core::BrokerConfig cfg;
  cfg.ticket_count = 10;
  cfg.sale_price = 101;     // Carol pays
  cfg.purchase_price = 100; // Bob receives; Alice keeps the spread
  cfg.premium_unit = 1;
  cfg.delta = 1;

  std::printf("Hedged broker deal (§8): 10 tickets, Carol pays 101, Bob "
              "gets 100, Alice brokers.\n");

  const auto conform = sim::DeviationPlan::conforming();
  report("== everyone conforms: Alice earns the 1-coin spread ==",
         run_broker_deal(cfg, conform, conform, conform));

  report("== Bob omits B1 (never escrows tickets) ==",
         run_broker_deal(cfg, conform, sim::DeviationPlan::halt_after(2),
                         conform));

  report("== Alice omits her trades (A1/A2) ==",
         run_broker_deal(cfg, sim::DeviationPlan::halt_after(2), conform,
                         conform));

  std::printf(
      "\nPremium passthrough reimburses the broker for premium payments\n"
      "forced on her by others, and compensates whoever was locked up.\n");
  return 0;
}
