// The parallel sharded sweep must be a pure accelerator: whatever the
// worker count, the merged report is identical — schedule for schedule,
// violation for violation — to the serial sweep's. These tests pin that
// equivalence on every reference protocol adapter and on a synthetic
// adapter engineered to emit a violation per deviating schedule, so the
// violation *ordering* is checked, not just the counts.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chain/fault.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {
namespace {

// The reference configurations, fetched through the protocol registry (the
// defaults are pinned byte-identical to the historical structs in
// tests/registry_campaign_test.cpp).
std::vector<std::unique_ptr<ProtocolAdapter>> reference_adapters() {
  const ProtocolRegistry& reg = ProtocolRegistry::global();
  std::vector<std::unique_ptr<ProtocolAdapter>> out;
  out.push_back(reg.make("two-party"));
  out.push_back(reg.make("multi-party-fig3a"));
  ParamSet ring = reg.defaults("multi-party-ring");
  ring.set("n", "4");
  out.push_back(reg.make("multi-party-ring", ring));
  out.push_back(reg.make("auction-open"));
  out.push_back(reg.make("auction-sealed"));
  out.push_back(reg.make("broker"));
  out.push_back(reg.make("bootstrap"));
  out.push_back(reg.make("crr-ladder"));
  return out;
}

void expect_identical(const SweepReport& serial, const SweepReport& parallel) {
  EXPECT_EQ(parallel.protocol, serial.protocol);
  EXPECT_EQ(parallel.schedules_run, serial.schedules_run);
  EXPECT_EQ(parallel.conforming_audited, serial.conforming_audited);
  ASSERT_EQ(parallel.violations.size(), serial.violations.size());
  for (std::size_t i = 0; i < serial.violations.size(); ++i) {
    EXPECT_EQ(parallel.violations[i].schedule, serial.violations[i].schedule)
        << "violation " << i << " out of order";
    EXPECT_EQ(parallel.violations[i].party, serial.violations[i].party);
    EXPECT_EQ(parallel.violations[i].coin_delta,
              serial.violations[i].coin_delta);
    EXPECT_EQ(parallel.violations[i].required_min,
              serial.violations[i].required_min);
  }
}

TEST(ParallelSweep, MatchesSerialOnEveryReferenceAdapter) {
  for (const auto& adapter : reference_adapters()) {
    ScenarioRunner runner(*adapter);
    const SweepReport serial = runner.sweep();
    for (const unsigned threads : {2u, 4u, 8u}) {
      const SweepReport parallel = runner.sweep({-1, threads, {}});
      SCOPED_TRACE(adapter->name() + " @ " + std::to_string(threads) +
                   " threads");
      expect_identical(serial, parallel);
    }
  }
}

// The enlarged strategy spaces shard exactly like the halt-only space:
// every worker derives the same capped plan lists from its adapter clone,
// so the merged report — counts, truncation notices, violations — is
// schedule-identical to the serial sweep's.
TEST(ParallelSweep, MatchesSerialOnDelayStrategySpaces) {
  for (const StrategySpace::Kind kind : {StrategySpace::Kind::kTimelyDelays,
                                         StrategySpace::Kind::kLateDelays}) {
    SweepOptions serial_opts;
    serial_opts.strategies.kind = kind;
    for (const auto& adapter : reference_adapters()) {
      ScenarioRunner runner(*adapter);
      const SweepReport serial = runner.sweep(serial_opts);
      for (const unsigned threads : {2u, 8u}) {
        SweepOptions opts = serial_opts;
        opts.threads = threads;
        const SweepReport parallel = runner.sweep(opts);
        SCOPED_TRACE(adapter->name() + " / " + opts.strategies.name() +
                     " @ " + std::to_string(threads) + " threads");
        expect_identical(serial, parallel);
        EXPECT_EQ(parallel.truncations, serial.truncations);
      }
    }
  }
}

TEST(ParallelSweep, MaxDeviatorsRespected) {
  const auto adapter = ProtocolRegistry::global().make("multi-party-fig3a");
  ScenarioRunner runner(*adapter);
  const SweepReport serial = runner.sweep(1);
  const SweepReport parallel = runner.sweep({1, 4, {}});
  expect_identical(serial, parallel);
  EXPECT_EQ(parallel.schedules_run, 13u);  // 1 all-conform + 3 * 4 halts
}

TEST(ParallelSweep, ZeroMeansHardwareConcurrency) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  expect_identical(runner.sweep(), runner.sweep({-1, 0, {}}));
}

TEST(ParallelSweep, MoreThreadsThanSchedules) {
  // two-party: 16 schedules.
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  expect_identical(runner.sweep(), runner.sweep({-1, 64, {}}));
}

// A fault-injecting sweep must shard exactly like the reliable one: clause
// windows, the stateless drop hash, and the faultless-twin attribution
// pass are all pure functions of (schedule, tick), never of worker
// interleaving — so the merged report, fault_caused flags included, is
// identical whatever the thread count.
TEST(ParallelSweep, FaultEnvironmentShardsDeterministically) {
  const ProtocolRegistry& reg = ProtocolRegistry::global();
  const chain::ChainEnvironment envs[] = {
      {chain::FaultPlan::parse("banana:squeeze@4-10,cap=1,spam=2,fee=3"), {}},
      {chain::FaultPlan::parse("*:outage@5-5;apricot:drop@0-9,p=400,seed=3"),
       chain::ResiliencePolicy::parse("rebroadcast")},
      {chain::FaultPlan::parse("banana:squeeze@4-10,cap=1,spam=2,fee=3"),
       chain::ResiliencePolicy::parse("fee-escalate")},
  };
  for (const auto& env : envs) {
    for (const std::string proto : {"two-party", "multi-party-fig3a"}) {
      const auto adapter = reg.make(proto);
      adapter->set_environment(env);
      ScenarioRunner runner(*adapter);
      const SweepReport serial = runner.sweep();
      for (const unsigned threads : {2u, 4u}) {
        const SweepReport parallel = runner.sweep({-1, threads, {}});
        SCOPED_TRACE(proto + " / " + env.str() + " @ " +
                     std::to_string(threads) + " threads");
        expect_identical(serial, parallel);
        EXPECT_EQ(parallel.fault_caused, serial.fault_caused);
        for (std::size_t i = 0; i < serial.violations.size(); ++i) {
          EXPECT_EQ(parallel.violations[i].fault_caused,
                    serial.violations[i].fault_caused)
              << "attribution flag diverged at violation " << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Violation ordering under load: a synthetic protocol whose every deviating
// schedule produces exactly one violation with a schedule-specific label
// and amount. If shard merging ever reordered or dropped results, these
// lists would disagree.
// ---------------------------------------------------------------------------

class TattletaleAdapter final : public ProtocolAdapter {
 public:
  std::string name() const override { return "tattletale"; }
  std::size_t party_count() const override { return 3; }
  int action_count(PartyId) const override { return 4; }
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<TattletaleAdapter>(*this);
  }

  std::vector<PartyOutcome> run(const Schedule& s) const override {
    // The conforming victim loses coins proportional to the deviators'
    // halt points; the deviators split the spoils so coins stay zero-sum.
    Amount stolen = 0;
    for (std::size_t p = 1; p < s.plans.size(); ++p) {
      if (!s.plans[p].is_conforming()) stolen += s.plans[p].halt_point() + 1;
    }
    PartyOutcome victim{"victim", s.plans[0].is_conforming(), {}, {}};
    victim.payoff.coin_delta = -stolen;
    PartyOutcome thief{"thief", false, {}, {}};
    thief.payoff.coin_delta = stolen;
    PartyOutcome bystander{"bystander", false, {}, {}};
    return {std::move(victim), std::move(thief), std::move(bystander)};
  }
};

TEST(ParallelSweep, ViolationOrderingMatchesSerialExactly) {
  TattletaleAdapter adapter;
  ScenarioRunner runner(adapter);
  const SweepReport serial = runner.sweep();
  EXPECT_EQ(serial.schedules_run, 125u);
  // Victim conforming (1/5 of plans) while either other party deviates
  // (1 - (1/5)^2 of their joint space): 25 - 1 = 24 violating schedules.
  EXPECT_EQ(serial.violations.size(), 24u);

  for (const unsigned threads : {2u, 3u, 8u, 16u}) {
    const SweepReport parallel = runner.sweep({-1, threads, {}});
    SCOPED_TRACE(threads);
    expect_identical(serial, parallel);
  }
}

}  // namespace
}  // namespace xchain::sim
