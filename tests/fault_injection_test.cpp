#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "chain/blockchain.hpp"
#include "chain/fault.hpp"
#include "sim/campaign.hpp"
#include "sim/registry.hpp"
#include "sim/scenario.hpp"
#include "sim/scheduler.hpp"

namespace xchain {
namespace {

using chain::ChainEnvironment;
using chain::ChainFaults;
using chain::FaultClause;
using chain::FaultPlan;
using chain::ResiliencePolicy;
using chain::Transaction;
using chain::TxStatus;

std::unique_ptr<sim::ProtocolAdapter> make_ref(const std::string& name) {
  return sim::ProtocolRegistry::global().make(name);
}

Transaction noop_tx(PartyId sender, Amount fee, bool track = true) {
  Transaction tx;
  tx.sender = sender;
  tx.effect = [](chain::TxContext&) {};
  tx.fee = fee;
  tx.track = track;
  return tx;
}

// ---------------------------------------------------------------------------
// Grammar: parse/str round-trips, one spelling per plan
// ---------------------------------------------------------------------------

TEST(FaultGrammar, PlanRoundTrips) {
  for (const std::string spec : {
           "banana:outage@3-5",
           "*:outage@5-5",
           "banana:squeeze@4-10,cap=1,spam=2,fee=3",
           "apricot:squeeze@0-2,cap=0",
           "apricot:squeeze@1-2,cap=2,mem=3",
           "apricot:squeeze@1-2,cap=2,spam=1,fee=0,mem=0",
           "apricot:drop@0-3,p=500",
           "apricot:drop@0-3,p=1000,seed=9",
           "apricot:outage@1-1;banana:drop@2-4,p=250",
       }) {
    EXPECT_EQ(FaultPlan::parse(spec).str(), spec);
  }
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_EQ(FaultPlan{}.str(), "");
}

TEST(FaultGrammar, PlanRejectsMalformedSpecs) {
  for (const std::string spec : {
           "banana",                               // no clause
           ":outage@1-2",                          // empty chain name
           "a:outage@5-3",                         // inverted window
           "a:outage@1",                           // no window end
           "a:squeeze@1-2",                        // missing cap
           "a:squeeze@1-2,spam=1,fee=0,cap=1",     // keys out of order
           "a:squeeze@1-2,cap=1,spam=0,fee=1",     // spam=0 is implicit
           "a:squeeze@1-2,cap=1,spam=1",           // spam without fee
           "a:drop@1-2",                           // missing p
           "a:drop@1-2,p=0",                       // permille out of range
           "a:drop@1-2,p=1001",                    // permille out of range
           "a:drop@1-2,p=5,seed=0",                // seed=0 is implicit
           "a:outage@1-2,cap=1",                   // trailing junk
           "a:frob@1-2",                           // unknown kind
       }) {
    EXPECT_THROW(FaultPlan::parse(spec), std::invalid_argument) << spec;
  }
}

TEST(FaultGrammar, ResilienceRoundTripsAndRejects) {
  for (const std::string text :
       {"naive", "rebroadcast", "fee-escalate", "fee-escalate:2,3,9",
        "fee-escalate:0,1,16"}) {
    EXPECT_EQ(ResiliencePolicy::parse(text).str(), text);
  }
  // The default knobs have exactly one spelling: the bare form.
  EXPECT_THROW(ResiliencePolicy::parse("fee-escalate:0,1,64"),
               std::invalid_argument);
  EXPECT_THROW(ResiliencePolicy::parse("burst"), std::invalid_argument);
  EXPECT_THROW(ResiliencePolicy::parse("fee-escalate:"),
               std::invalid_argument);

  const ResiliencePolicy esc = ResiliencePolicy::parse("fee-escalate:2,3,9");
  EXPECT_EQ(esc.fee_at(5, 5), 2);   // no wait -> base fee
  EXPECT_EQ(esc.fee_at(5, 7), 8);   // 2 + 3*2
  EXPECT_EQ(esc.fee_at(5, 50), 9);  // clamped at max
  EXPECT_FALSE(ResiliencePolicy{}.active());
  EXPECT_TRUE(esc.active());
}

TEST(FaultGrammar, ToleranceEnvelope) {
  const Tick delta = 2;
  // Outages strictly shorter than Delta are recoverable slack.
  EXPECT_TRUE(FaultPlan::parse("*:outage@5-5").within_tolerance(delta));
  EXPECT_FALSE(FaultPlan::parse("*:outage@5-6").within_tolerance(delta));
  // Squeezes stay in the envelope while at least one tx lands per block.
  EXPECT_TRUE(FaultPlan::parse("a:squeeze@0-9,cap=1,spam=5,fee=7")
                  .within_tolerance(delta));
  EXPECT_FALSE(FaultPlan::parse("a:squeeze@0-0,cap=0").within_tolerance(delta));
  // Drops are never within tolerance: no fee outbids a discard.
  EXPECT_FALSE(FaultPlan::parse("a:drop@0-0,p=1").within_tolerance(delta));
  EXPECT_TRUE(FaultPlan{}.within_tolerance(delta));
}

TEST(FaultGrammar, ToleranceBoundaryWindows) {
  const Tick delta = 3;
  // Delta-1 ticks of outage is the longest recoverable window; a window of
  // exactly Delta swallows a full synchrony period and leaves the envelope.
  EXPECT_TRUE(FaultPlan::parse("a:outage@4-5").within_tolerance(delta));
  EXPECT_FALSE(FaultPlan::parse("a:outage@4-6").within_tolerance(delta));
  // cap=1 is the thinnest tolerated squeeze (one tx still lands per
  // block); cap=0 is an unbounded outage in disguise, whatever the window.
  EXPECT_TRUE(
      FaultPlan::parse("a:squeeze@0-99,cap=1").within_tolerance(delta));
  EXPECT_FALSE(
      FaultPlan::parse("a:squeeze@0-0,cap=0").within_tolerance(delta));
  // The grammar has no spelling for a no-op drop (p=0 is rejected at
  // parse) ...
  EXPECT_THROW(FaultPlan::parse("a:drop@0-0,p=0"), std::invalid_argument);
  // ... and even a hand-built zero-probability drop clause is out of
  // tolerance: the envelope keys on the clause kind, not on its odds.
  FaultClause drop;
  drop.kind = FaultClause::Kind::kDrop;
  drop.permille = 0;
  FaultPlan hand;
  hand.entries.emplace_back("a", drop);
  EXPECT_FALSE(hand.within_tolerance(delta));
}

TEST(FaultGrammar, ForChainMatchesNameAndStar) {
  const FaultPlan plan =
      FaultPlan::parse("apricot:outage@1-1;*:drop@2-4,p=250;banana:outage@3-3");
  EXPECT_EQ(plan.for_chain("apricot").clauses.size(), 2u);
  EXPECT_EQ(plan.for_chain("banana").clauses.size(), 2u);
  EXPECT_EQ(plan.for_chain("cherry").clauses.size(), 1u);  // '*' only
}

TEST(FaultGrammar, DropDecisionIsStatelessAndSeeded) {
  const ChainFaults f = FaultPlan::parse("a:drop@0-9,p=500").for_chain("a");
  // Pure function of (seed, chain, height, seq): identical on replay.
  for (std::uint64_t seq = 0; seq < 32; ++seq) {
    EXPECT_EQ(f.should_drop(0, 3, seq), f.should_drop(0, 3, seq));
  }
  // p=1000 drops everything in-window, nothing outside it.
  const ChainFaults all = FaultPlan::parse("a:drop@0-9,p=1000").for_chain("a");
  EXPECT_TRUE(all.should_drop(0, 0, 0));
  EXPECT_FALSE(all.should_drop(0, 10, 0));
  // A different seed selects a different stream somewhere in 32 draws.
  const ChainFaults seeded =
      FaultPlan::parse("a:drop@0-9,p=500,seed=9").for_chain("a");
  bool differs = false;
  for (std::uint64_t seq = 0; seq < 32 && !differs; ++seq) {
    differs = f.should_drop(0, 3, seq) != seeded.should_drop(0, 3, seq);
  }
  EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Mempool mechanics under faults
// ---------------------------------------------------------------------------

TEST(FaultMempool, SqueezeSelectsByFeeThenCarriesOver) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.set_faults(FaultPlan::parse("apricot:squeeze@0-1,cap=1").for_chain(
      "apricot"));
  const std::uint64_t low = bc.submit(noop_tx(0, 1));
  const std::uint64_t high = bc.submit(noop_tx(1, 5));
  bc.produce_block(0);
  EXPECT_EQ(bc.tx_status(high), TxStatus::kIncluded) << "higher fee wins";
  EXPECT_EQ(bc.tx_status(low), TxStatus::kPending) << "crowded out, carried";
  bc.produce_block(1);
  EXPECT_EQ(bc.tx_status(low), TxStatus::kIncluded);
  EXPECT_EQ(bc.applied_tx_count(), 2u);
}

TEST(FaultMempool, TiesBreakBySubmissionOrder) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.set_faults(
      FaultPlan::parse("apricot:squeeze@0-0,cap=1").for_chain("apricot"));
  const std::uint64_t first = bc.submit(noop_tx(0, 2));
  const std::uint64_t second = bc.submit(noop_tx(1, 2));
  bc.produce_block(0);
  EXPECT_EQ(bc.tx_status(first), TxStatus::kIncluded) << "older tx wins ties";
  EXPECT_EQ(bc.tx_status(second), TxStatus::kPending);
}

TEST(FaultMempool, SpamOutbidsLowFeeTraffic) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.set_faults(FaultPlan::parse("apricot:squeeze@0-0,cap=1,spam=2,fee=3")
                    .for_chain("apricot"));
  const std::uint64_t cheap = bc.submit(noop_tx(0, 0));
  bc.produce_block(0);
  EXPECT_EQ(bc.tx_status(cheap), TxStatus::kPending) << "fee-3 spam outbids";
  bc.produce_block(1);  // squeeze over, spam does not carry over
  EXPECT_EQ(bc.tx_status(cheap), TxStatus::kIncluded);
}

TEST(FaultMempool, MemLimitEvictsLowestFee) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.set_faults(FaultPlan::parse("apricot:squeeze@0-0,cap=0,mem=1")
                    .for_chain("apricot"));
  const std::uint64_t poor = bc.submit(noop_tx(0, 1));
  const std::uint64_t rich = bc.submit(noop_tx(1, 4));
  bc.produce_block(0);
  EXPECT_EQ(bc.tx_status(poor), TxStatus::kEvicted);
  EXPECT_EQ(bc.tx_status(rich), TxStatus::kPending);
  bc.produce_block(1);
  EXPECT_EQ(bc.tx_status(rich), TxStatus::kIncluded);
}

TEST(FaultMempool, OutageParksSubmissions) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.set_faults(
      FaultPlan::parse("apricot:outage@0-1").for_chain("apricot"));
  const std::uint64_t id = bc.submit(noop_tx(0, 0));
  bc.produce_block(0);
  bc.produce_block(1);
  EXPECT_EQ(bc.tx_status(id), TxStatus::kPending) << "parked through outage";
  EXPECT_EQ(bc.applied_tx_count(), 0u);
  bc.produce_block(2);
  EXPECT_EQ(bc.tx_status(id), TxStatus::kIncluded);
}

TEST(FaultMempool, DropDiscardsFreshSubmissions) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.set_faults(
      FaultPlan::parse("apricot:drop@0-9,p=1000").for_chain("apricot"));
  const std::uint64_t id = bc.submit(noop_tx(0, 0));
  bc.produce_block(0);
  EXPECT_EQ(bc.tx_status(id), TxStatus::kDropped);
  // bump_fee cannot resurrect a dropped tx; resubmission is the only cure.
  EXPECT_FALSE(bc.bump_fee(id, 9));
}

TEST(FaultMempool, BumpFeeReordersPendingTx) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.set_faults(
      FaultPlan::parse("apricot:squeeze@0-1,cap=1").for_chain("apricot"));
  const std::uint64_t low = bc.submit(noop_tx(0, 1));
  const std::uint64_t mid = bc.submit(noop_tx(1, 2));
  bc.produce_block(0);
  EXPECT_EQ(bc.tx_status(mid), TxStatus::kIncluded);
  EXPECT_EQ(bc.tx_status(low), TxStatus::kPending);
  const std::uint64_t rival = bc.submit(noop_tx(2, 3));
  EXPECT_TRUE(bc.bump_fee(low, 5));
  bc.produce_block(1);
  EXPECT_EQ(bc.tx_status(low), TxStatus::kIncluded) << "bumped past rival";
  EXPECT_EQ(bc.tx_status(rival), TxStatus::kPending);
}

TEST(FaultMempool, ResetRestoresReliableSubstrateState) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  mc.checkpoint();
  bc.set_faults(
      FaultPlan::parse("apricot:squeeze@0-9,cap=0").for_chain("apricot"));
  const std::uint64_t id = bc.submit(noop_tx(0, 0));
  bc.produce_block(0);
  EXPECT_EQ(bc.tx_status(id), TxStatus::kPending);
  mc.reset();
  EXPECT_EQ(bc.tx_status(id), TxStatus::kUnknown) << "statuses are per-run";
  EXPECT_EQ(bc.applied_tx_count(), 0u);
}

// ---------------------------------------------------------------------------
// Satellite: submitting past the end of the timeline is a loud caller bug
// ---------------------------------------------------------------------------

TEST(SubmitGuards, SubmitAfterFinalizeThrows) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  mc.checkpoint();
  mc.finalize_all();
  try {
    bc.submit(noop_tx(0, 0));
    FAIL() << "submit on a finalized chain must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("finalized"), std::string::npos)
        << e.what();
  }
  // reset() re-opens the chain for the next run.
  mc.reset();
  EXPECT_NO_THROW(bc.submit(noop_tx(0, 0)));
}

TEST(SubmitGuards, SubmitToHaltedChainThrows) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.halt();
  try {
    bc.submit(noop_tx(0, 0));
    FAIL() << "submit on a halted chain must throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("halted"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Satellite: deadline-ladder validation against the timing contract
// ---------------------------------------------------------------------------

class LadderContract : public chain::Contract {
 public:
  explicit LadderContract(std::vector<Tick> ladder)
      : ladder_(std::move(ladder)) {}
  std::vector<Tick> deadline_schedule() const override { return ladder_; }

 private:
  std::vector<Tick> ladder_;
};

TEST(DeadlineValidation, WellSpacedLadderPasses) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.deploy<LadderContract>(std::vector<Tick>{2, 4, 6});
  sim::Scheduler sched(mc);
  EXPECT_NO_THROW(sched.validate_deadlines(2));
  // The same ladder is too tight for Delta=3.
  EXPECT_THROW(sched.validate_deadlines(3), std::logic_error);
}

TEST(DeadlineValidation, PackedLadderThrowsDescriptively) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("banana");
  bc.deploy<LadderContract>(std::vector<Tick>{2, 3});
  sim::Scheduler sched(mc);
  try {
    sched.validate_deadlines(2);
    FAIL() << "a 1-tick gap must fail Delta=2 validation";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("validate_deadlines"), std::string::npos) << what;
    EXPECT_NE(what.find("banana"), std::string::npos) << what;
    EXPECT_NE(what.find("step 1"), std::string::npos) << what;
  }
}

TEST(DeadlineValidation, EmptyLadderMakesNoClaim) {
  chain::MultiChain mc;
  chain::Blockchain& bc = mc.add_chain("apricot");
  bc.deploy<LadderContract>(std::vector<Tick>{});
  EXPECT_NO_THROW(sim::Scheduler(mc).validate_deadlines(100));
}

// ---------------------------------------------------------------------------
// Tentpole: sweep-level fault injection, attribution, and resilience
// ---------------------------------------------------------------------------

ChainEnvironment squeeze_env(const std::string& resilience = "naive") {
  return {FaultPlan::parse("banana:squeeze@4-10,cap=1,spam=2,fee=3"),
          ResiliencePolicy::parse(resilience)};
}

TEST(FaultSweep, NaiveConformingPartyBreachesUnderSqueeze) {
  // The regression pin for the fault layer's raison d'etre: both parties
  // conform, but fee-3 spam crowds Alice's fee-0 banana traffic out of
  // cap-1 blocks until her inclusive deadline lapses — a sore-loser loss
  // with no deviator anywhere, attributed to the chain fault.
  const auto adapter = make_ref("two-party");
  adapter->set_environment(squeeze_env());
  sim::SweepOptions opts;
  opts.max_deviators = 0;
  const sim::SweepReport report = sim::ScenarioRunner(*adapter).sweep(opts);
  EXPECT_EQ(report.schedules_run, 1u);
  ASSERT_EQ(report.violations.size(), 1u) << report.str();
  const sim::Violation& v = report.violations.front();
  EXPECT_EQ(v.party, "alice");
  EXPECT_EQ(v.coin_delta, -2);
  EXPECT_EQ(v.required_min, 1);
  EXPECT_TRUE(v.fault_caused);
  EXPECT_EQ(report.fault_caused, 1u);
  EXPECT_NE(v.str().find("[chain-fault]"), std::string::npos) << v.str();
}

TEST(FaultSweep, FeeEscalationRestoresFloorsUnderSqueeze) {
  // Same within-envelope squeeze (cap >= 1), adequate policy: escalation
  // outbids the bounded spam before any deadline lapses.
  const auto adapter = make_ref("two-party");
  ASSERT_TRUE(squeeze_env().faults.within_tolerance(adapter->delta()));
  adapter->set_environment(squeeze_env("fee-escalate"));
  sim::SweepOptions opts;
  opts.max_deviators = 0;
  const sim::SweepReport report = sim::ScenarioRunner(*adapter).sweep(opts);
  EXPECT_TRUE(report.ok()) << report.str();
  EXPECT_EQ(report.fault_caused, 0u);
}

TEST(FaultSweep, FeeEscalationHoldsAcrossFullDeviationSweep) {
  // The envelope promise quantifies over deviation schedules too: with
  // faults in-envelope and an adequate policy, the full halt-only sweep
  // stays violation-free just like the reliable substrate's.
  const auto adapter = make_ref("two-party");
  adapter->set_environment(squeeze_env("fee-escalate"));
  const sim::SweepReport report = sim::ScenarioRunner(*adapter).sweep();
  EXPECT_EQ(report.schedules_run, 16u);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(FaultSweep, WithinEnvelopeOutageIsHarmlessEvenForNaiveParties) {
  // A sub-Delta outage only consumes provisioned slack: transactions park
  // one tick and land before any inclusive deadline, whatever the policy.
  for (const std::string policy : {"naive", "rebroadcast"}) {
    const auto adapter = make_ref("two-party");
    const FaultPlan plan = FaultPlan::parse("*:outage@5-5");
    ASSERT_TRUE(plan.within_tolerance(adapter->delta()));
    adapter->set_environment({plan, ResiliencePolicy::parse(policy)});
    const sim::SweepReport report = sim::ScenarioRunner(*adapter).sweep();
    EXPECT_TRUE(report.ok()) << policy << ": " << report.str();
  }
}

TEST(FaultSweep, InactiveEnvironmentIsByteIdenticalToHistoricalSweep) {
  const auto plain = make_ref("two-party");
  const sim::SweepReport before = sim::ScenarioRunner(*plain).sweep();
  const auto wired = make_ref("two-party");
  wired->set_environment(ChainEnvironment{});
  const sim::SweepReport after = sim::ScenarioRunner(*wired).sweep();
  EXPECT_EQ(before.str(), after.str());
  EXPECT_EQ(before.schedules_run, after.schedules_run);
  EXPECT_EQ(after.fault_caused, 0u);
}

TEST(FaultSweep, ActiveEnvironmentRequiresBruteReusableWorlds) {
  const auto adapter = make_ref("two-party");
  adapter->set_environment(squeeze_env());
  sim::SweepOptions tree;
  tree.executor = sim::SweepExecutor::kTree;
  EXPECT_THROW(sim::ScenarioRunner(*adapter).sweep(tree),
               std::invalid_argument);
  adapter->set_world_reuse(false);
  EXPECT_THROW(sim::ScenarioRunner(*adapter).sweep(),
               std::invalid_argument);
}

TEST(FaultSweep, CloneCarriesTheEnvironment) {
  const auto adapter = make_ref("two-party");
  adapter->set_environment(squeeze_env());
  const auto clone = adapter->clone();
  EXPECT_EQ(clone->environment(), adapter->environment());
  sim::SweepOptions opts;
  opts.max_deviators = 0;
  const sim::SweepReport report = sim::ScenarioRunner(*clone).sweep(opts);
  EXPECT_EQ(report.violations.size(), 1u);
}

// ---------------------------------------------------------------------------
// Campaign plumbing: the --faults= axis and its JSON artifact
// ---------------------------------------------------------------------------

TEST(FaultCampaign, EnvironmentRidesCampaignsAndJson) {
  sim::CampaignSpec spec;
  spec.entries.push_back({"two-party", {}, {}});
  spec.sweep.max_deviators = 0;
  spec.environment = squeeze_env();
  const sim::CampaignReport report = sim::Campaign(spec).run();
  EXPECT_EQ(report.total_violations(), 1u);
  EXPECT_EQ(report.total_fault_caused(), 1u);
  const std::string json = sim::campaign_json(report);
  EXPECT_NE(json.find("\"faults\": \"banana:squeeze@4-10,cap=1,spam=2,fee=3\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"resilience\": \"naive\""), std::string::npos);
  EXPECT_NE(json.find("\"fault_caused\": 1"), std::string::npos);
}

TEST(FaultCampaign, FaultFreeJsonOmitsFaultFields) {
  sim::CampaignSpec spec;
  spec.entries.push_back({"two-party", {}, {}});
  spec.sweep.max_deviators = 0;
  const std::string json = sim::campaign_json(sim::Campaign(spec).run());
  EXPECT_EQ(json.find("fault"), std::string::npos) << json;
  EXPECT_EQ(json.find("resilience"), std::string::npos) << json;
}

}  // namespace
}  // namespace xchain
