#include <gtest/gtest.h>

#include <cmath>

#include "core/crr.hpp"

namespace xchain::core {
namespace {

CrrParams base_params() {
  CrrParams p;
  p.spot = 100.0;
  p.strike = 100.0;
  p.rate = 0.05;
  p.volatility = 0.2;
  p.expiry = 1.0;
  p.steps = 1000;
  return p;
}

TEST(Crr, EuropeanCallMatchesBlackScholes) {
  CrrParams p = base_params();
  p.is_call = true;
  // Black–Scholes: C(100,100,5%,20%,1y) = 10.4506.
  EXPECT_NEAR(crr_price(p), 10.4506, 0.05);
}

TEST(Crr, EuropeanPutMatchesBlackScholes) {
  CrrParams p = base_params();
  p.is_call = false;
  // Put–call parity: P = C - S + K e^{-rT} = 10.4506 - 4.8771 = 5.5735.
  EXPECT_NEAR(crr_price(p), 5.5735, 0.05);
}

TEST(Crr, PutCallParityHolds) {
  CrrParams c = base_params();
  c.is_call = true;
  CrrParams p = base_params();
  p.is_call = false;
  const double lhs = crr_price(c) - crr_price(p);
  const double rhs = c.spot - c.strike * std::exp(-c.rate * c.expiry);
  EXPECT_NEAR(lhs, rhs, 1e-6);
}

TEST(Crr, AmericanCallEqualsEuropeanWithoutDividends) {
  CrrParams eu = base_params();
  CrrParams am = base_params();
  am.american = true;
  EXPECT_NEAR(crr_price(eu), crr_price(am), 1e-9);
}

TEST(Crr, AmericanPutExceedsEuropean) {
  CrrParams eu = base_params();
  eu.is_call = false;
  CrrParams am = eu;
  am.american = true;
  EXPECT_GT(crr_price(am), crr_price(eu));
}

TEST(Crr, ConvergenceInSteps) {
  CrrParams coarse = base_params();
  coarse.steps = 64;
  CrrParams fine = base_params();
  fine.steps = 2048;
  EXPECT_NEAR(crr_price(coarse), crr_price(fine), 0.2);
}

TEST(Crr, DeepInTheMoneyCallNearIntrinsic) {
  CrrParams p = base_params();
  p.spot = 200.0;
  p.rate = 0.0;
  // Intrinsic value 100; time value tiny relative to it.
  EXPECT_GT(crr_price(p), 100.0);
  EXPECT_LT(crr_price(p), 105.0);
}

TEST(Crr, RejectsDegenerateInputs) {
  CrrParams p = base_params();
  p.steps = 0;
  EXPECT_THROW(crr_price(p), std::invalid_argument);
  p = base_params();
  p.volatility = 0.0;
  EXPECT_THROW(crr_price(p), std::invalid_argument);
}

TEST(SoreLoserPremium, IncreasesWithLockupDuration) {
  const Amount p1 = sore_loser_premium(10'000, 0.5, 0.0, 6, 730.0);
  const Amount p2 = sore_loser_premium(10'000, 0.5, 0.0, 24, 730.0);
  EXPECT_GT(p1, 0);
  EXPECT_GT(p2, p1);
}

TEST(SoreLoserPremium, IncreasesWithVolatility) {
  const Amount lo = sore_loser_premium(10'000, 0.2, 0.0, 12, 730.0);
  const Amount hi = sore_loser_premium(10'000, 0.8, 0.0, 12, 730.0);
  EXPECT_GT(hi, lo);
}

TEST(SoreLoserPremium, SmallFractionOfPrincipal) {
  // The premise of the whole construction: p << v for realistic params
  // (here ~12h lockup at 50% annualized vol).
  const Amount v = 1'000'000;
  const Amount p = sore_loser_premium(v, 0.5, 0.0, 1, 730.0);
  EXPECT_GT(p, 0);
  EXPECT_LT(p, v / 50);
}

TEST(SoreLoserPremium, ZeroForDegenerateInputs) {
  EXPECT_EQ(sore_loser_premium(0, 0.5, 0.0, 6, 730.0), 0);
  EXPECT_EQ(sore_loser_premium(100, 0.5, 0.0, 0, 730.0), 0);
}

}  // namespace
}  // namespace xchain::core
