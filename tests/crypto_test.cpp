#include <gtest/gtest.h>

#include "crypto/bytes.hpp"
#include "crypto/hashkey.hpp"
#include "crypto/rng.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/secret.hpp"
#include "crypto/sha256.hpp"

namespace xchain::crypto {
namespace {

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4 test vectors)
// ---------------------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomno"
                          "pnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, QuickBrownFox) {
  EXPECT_EQ(to_hex(sha256("The quick brown fox jumps over the lazy dog")),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg(1000, 'x');
  Sha256 h;
  for (char c : msg) h.update(std::string_view(&c, 1));
  EXPECT_EQ(to_hex(h.finish()), to_hex(sha256(msg)));
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths straddling the 55/56-byte padding boundary and the block size.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u,
                          128u}) {
    const std::string msg(len, 'a');
    Sha256 h;
    h.update(msg);
    EXPECT_EQ(to_hex(h.finish()), to_hex(sha256(msg))) << "len=" << len;
  }
}

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);
}

TEST(Bytes, FromHexRejectsMalformed) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // bad digit
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentLabelsDiverge) {
  Rng a("alice"), b("bob");
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(differ);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBytesLength) {
  Rng rng(1);
  EXPECT_EQ(rng.next_bytes(0).size(), 0u);
  EXPECT_EQ(rng.next_bytes(7).size(), 7u);
  EXPECT_EQ(rng.next_bytes(32).size(), 32u);
}

// ---------------------------------------------------------------------------
// Group parameters / modular arithmetic
// ---------------------------------------------------------------------------

TEST(Group, ParametersAreSafePrimeGroup) {
  const GroupParams& gp = group();
  EXPECT_TRUE(is_prime_u64(gp.p));
  EXPECT_TRUE(is_prime_u64(gp.q));
  EXPECT_EQ(gp.p, 2 * gp.q + 1);
  // g must have order exactly q: g^q == 1, g != 1.
  EXPECT_EQ(powmod(gp.g, gp.q, gp.p), 1u);
  EXPECT_NE(gp.g % gp.p, 1u);
}

TEST(Group, MillerRabinKnownValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(2147483647ull));          // 2^31 - 1
  EXPECT_FALSE(is_prime_u64(2147483647ull * 3));
  EXPECT_TRUE(is_prime_u64(18446744073709551557ull));  // largest 64-bit prime
  EXPECT_FALSE(is_prime_u64(3215031751ull));  // strong pseudoprime to 2,3,5,7
}

TEST(Group, MulmodNoOverflow) {
  const std::uint64_t m = 18446744073709551557ull;
  EXPECT_EQ(mulmod(m - 1, m - 1, m), 1u);  // (-1)^2 = 1 mod m
}

// ---------------------------------------------------------------------------
// Schnorr signatures
// ---------------------------------------------------------------------------

TEST(Schnorr, SignVerifyRoundTrip) {
  const KeyPair kp = keygen("alice");
  const Bytes msg = to_bytes("hello world");
  const Signature sig = sign(kp.priv, kp.pub, msg);
  EXPECT_TRUE(verify(kp.pub, msg, sig));
}

TEST(Schnorr, RejectsWrongMessage) {
  const KeyPair kp = keygen("alice");
  const Signature sig = sign(kp.priv, kp.pub, to_bytes("msg1"));
  EXPECT_FALSE(verify(kp.pub, to_bytes("msg2"), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  const KeyPair alice = keygen("alice");
  const KeyPair bob = keygen("bob");
  const Bytes msg = to_bytes("payload");
  const Signature sig = sign(alice.priv, alice.pub, msg);
  EXPECT_FALSE(verify(bob.pub, msg, sig));
}

TEST(Schnorr, RejectsTamperedSignature) {
  const KeyPair kp = keygen("alice");
  const Bytes msg = to_bytes("payload");
  Signature sig = sign(kp.priv, kp.pub, msg);
  sig.s ^= 1;
  EXPECT_FALSE(verify(kp.pub, msg, sig));
  sig.s ^= 1;
  sig.e ^= 1;
  EXPECT_FALSE(verify(kp.pub, msg, sig));
}

TEST(Schnorr, DeterministicSignature) {
  const KeyPair kp = keygen("alice");
  const Bytes msg = to_bytes("payload");
  EXPECT_EQ(sign(kp.priv, kp.pub, msg), sign(kp.priv, kp.pub, msg));
}

TEST(Schnorr, KeygenDeterministicPerLabel) {
  EXPECT_EQ(keygen("alice").pub, keygen("alice").pub);
  EXPECT_NE(keygen("alice").pub.y, keygen("bob").pub.y);
}

// ---------------------------------------------------------------------------
// Secrets / hashlocks
// ---------------------------------------------------------------------------

TEST(Secret, OpensOwnHashlock) {
  Rng rng(3);
  const Secret s = Secret::random(rng);
  EXPECT_TRUE(opens(s.hashlock(), s.value()));
}

TEST(Secret, WrongPreimageFails) {
  Rng rng(3);
  const Secret s1 = Secret::random(rng);
  const Secret s2 = Secret::random(rng);
  EXPECT_FALSE(opens(s1.hashlock(), s2.value()));
}

TEST(Secret, FromLabelDeterministic) {
  EXPECT_EQ(Secret::from_label("x").value(), Secret::from_label("x").value());
  EXPECT_NE(Secret::from_label("x").value(), Secret::from_label("y").value());
}

// ---------------------------------------------------------------------------
// Hashkeys (paper §7: (s, q, sigma) triples)
// ---------------------------------------------------------------------------

class HashkeyTest : public ::testing::Test {
 protected:
  KeyPair keys_[3] = {keygen("p0"), keygen("p1"), keygen("p2")};
  PublicKeyLookup lookup_ = [this](PartyId p) { return keys_[p].pub; };
  Secret secret_ = Secret::from_label("leader-secret");
};

TEST_F(HashkeyTest, LeaderHashkeyVerifies) {
  const Hashkey k = make_leader_hashkey(secret_.value(), 2, keys_[2]);
  EXPECT_EQ(k.length(), 1u);
  EXPECT_EQ(k.leader(), 2u);
  EXPECT_TRUE(verify_hashkey(k, secret_.hashlock(), lookup_));
}

TEST_F(HashkeyTest, ExtendedChainVerifies) {
  Hashkey k = make_leader_hashkey(secret_.value(), 2, keys_[2]);
  k = extend_hashkey(k, 1, keys_[1]);
  k = extend_hashkey(k, 0, keys_[0]);
  EXPECT_EQ(k.path, (std::vector<PartyId>{0, 1, 2}));
  EXPECT_EQ(k.presenter(), 0u);
  EXPECT_EQ(k.leader(), 2u);
  EXPECT_TRUE(verify_hashkey(k, secret_.hashlock(), lookup_));
}

TEST_F(HashkeyTest, RejectsWrongHashlock) {
  const Hashkey k = make_leader_hashkey(secret_.value(), 2, keys_[2]);
  const Secret other = Secret::from_label("other");
  EXPECT_FALSE(verify_hashkey(k, other.hashlock(), lookup_));
}

TEST_F(HashkeyTest, RejectsForgedExtension) {
  Hashkey k = make_leader_hashkey(secret_.value(), 2, keys_[2]);
  // Party 0 claims the extension belongs to party 1.
  Hashkey forged = extend_hashkey(k, 1, keys_[0]);  // signed with WRONG key
  EXPECT_FALSE(verify_hashkey(forged, secret_.hashlock(), lookup_));
}

TEST_F(HashkeyTest, RejectsTamperedSecret) {
  Hashkey k = make_leader_hashkey(secret_.value(), 2, keys_[2]);
  k = extend_hashkey(k, 1, keys_[1]);
  k.secret[0] ^= 1;
  EXPECT_FALSE(verify_hashkey(k, secret_.hashlock(), lookup_));
}

TEST_F(HashkeyTest, RejectsRepeatedVertexInPath) {
  Hashkey k = make_leader_hashkey(secret_.value(), 2, keys_[2]);
  k = extend_hashkey(k, 1, keys_[1]);
  Hashkey bad = extend_hashkey(k, 2, keys_[2]);  // 2 appears twice
  EXPECT_FALSE(verify_hashkey(bad, secret_.hashlock(), lookup_));
}

TEST_F(HashkeyTest, RejectsDroppedLink) {
  Hashkey k = make_leader_hashkey(secret_.value(), 2, keys_[2]);
  k = extend_hashkey(k, 1, keys_[1]);
  k = extend_hashkey(k, 0, keys_[0]);
  // Drop the middle party from the path but keep its signature slot count
  // mismatched.
  Hashkey bad = k;
  bad.path.erase(bad.path.begin() + 1);
  EXPECT_FALSE(verify_hashkey(bad, secret_.hashlock(), lookup_));
}

}  // namespace
}  // namespace xchain::crypto
