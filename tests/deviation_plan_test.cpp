// The composable ActionPolicy deviation plan and its bounded strategy
// spaces: per-ordinal Perform/Delay/Drop semantics, the legacy halt
// encodings, label rendering, timeliness classification, and the
// ParamGrid-style capped plan-space generator.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/deviation.hpp"
#include "sim/plan_space.hpp"
#include "sim/strategy_space.hpp"

namespace xchain::sim {
namespace {

// ---------------------------------------------------------------------------
// Plan semantics
// ---------------------------------------------------------------------------

TEST(DeviationPlan, ConformingPerformsEverything) {
  const DeviationPlan p = DeviationPlan::conforming();
  EXPECT_TRUE(p.is_conforming());
  EXPECT_TRUE(p.conforms_within(1));
  for (int o = 0; o < 8; ++o) {
    EXPECT_EQ(p.policy(o).choice, ActionChoice::kPerform);
    EXPECT_TRUE(p.allows(o));
  }
  EXPECT_EQ(p.str(), "conform");
}

TEST(DeviationPlan, HaltIsTheSuffixOfDrops) {
  const DeviationPlan p = DeviationPlan::halt_after(2);
  EXPECT_FALSE(p.is_conforming());
  EXPECT_FALSE(p.conforms_within(100));
  EXPECT_TRUE(p.allows(0));
  EXPECT_TRUE(p.allows(1));
  EXPECT_FALSE(p.allows(2));
  EXPECT_FALSE(p.allows(7));
  EXPECT_EQ(p.halt_point(), 2);
  EXPECT_EQ(p.str(), "halt@2");
}

TEST(DeviationPlan, DelaysArePerOrdinal) {
  const DeviationPlan p =
      DeviationPlan::conforming().delayed(1, 3).delayed(0, 1);
  EXPECT_FALSE(p.is_conforming());
  EXPECT_EQ(p.policy(0).choice, ActionChoice::kDelay);
  EXPECT_EQ(p.policy(0).delay, 1);
  EXPECT_EQ(p.policy(1).delay, 3);
  EXPECT_EQ(p.policy(2).choice, ActionChoice::kPerform);
  EXPECT_TRUE(p.allows(0)) << "delayed actions are still performed";
  EXPECT_EQ(p.str(), "d0+1.d1+3");
}

TEST(DeviationPlan, ZeroDelayIsPerform) {
  EXPECT_EQ(DeviationPlan::conforming().delayed(0, 0),
            DeviationPlan::conforming());
}

TEST(DeviationPlan, NonSuffixDropsCompose) {
  const DeviationPlan p =
      DeviationPlan::conforming().dropped(0).delayed(2, 2);
  EXPECT_FALSE(p.allows(0));
  EXPECT_TRUE(p.allows(1));
  EXPECT_EQ(p.policy(2).choice, ActionChoice::kDelay);
  EXPECT_EQ(p.str(), "x0.d2+2");
}

TEST(DeviationPlan, TimelinessIsJudgedAgainstDelta) {
  const DeviationPlan timely = DeviationPlan::conforming().delayed(1, 1);
  EXPECT_TRUE(timely.conforms_within(2)) << "delay < delta is compliant";
  EXPECT_FALSE(timely.conforms_within(1)) << "delay >= delta is not";
  EXPECT_FALSE(
      DeviationPlan::conforming().dropped(0).conforms_within(100));
}

TEST(DeviationPlan, VariantTagsMarkProtocolSpecificDishonesty) {
  const DeviationPlan honest = DeviationPlan::conforming().with_variant(0);
  const DeviationPlan crooked = DeviationPlan::conforming().with_variant(3);
  EXPECT_TRUE(honest.is_conforming());
  EXPECT_FALSE(crooked.is_conforming());
  EXPECT_FALSE(crooked.conforms_within(100));
  EXPECT_EQ(crooked.variant(), 3);
  EXPECT_EQ(crooked.str(), "v3:conform");
}

TEST(DeviationPlan, MixedPlanRendersEveryModification) {
  const DeviationPlan p =
      DeviationPlan::halt_after(3).delayed(1, 2).dropped(0);
  EXPECT_EQ(p.str(), "x0.d1+2.halt@3");
}

// ---------------------------------------------------------------------------
// The legacy halt-only space is unchanged (model checker + sweeps share it)
// ---------------------------------------------------------------------------

TEST(PlanSpace, HaltOnlyListMatchesTheHistoricalOrder) {
  const auto plans = plan_space(3);
  ASSERT_EQ(plans.size(), 4u);
  EXPECT_EQ(plans[0], DeviationPlan::conforming());
  EXPECT_EQ(plans[1], DeviationPlan::halt_after(0));
  EXPECT_EQ(plans[2], DeviationPlan::halt_after(1));
  EXPECT_EQ(plans[3], DeviationPlan::halt_after(2));
}

// ---------------------------------------------------------------------------
// Strategy spaces and the bounded generator
// ---------------------------------------------------------------------------

TEST(StrategySpaceTest, DelayMenusDeriveFromDelta) {
  StrategySpace halt{StrategySpace::Kind::kHaltOnly};
  EXPECT_TRUE(halt.delay_menu(4).empty());

  StrategySpace timely{StrategySpace::Kind::kTimelyDelays};
  EXPECT_EQ(timely.delay_menu(4), (std::vector<Tick>{3}));
  EXPECT_TRUE(timely.delay_menu(1).empty())
      << "at delta = 1 no non-zero delay stays inside the bound";

  StrategySpace late{StrategySpace::Kind::kLateDelays};
  EXPECT_EQ(late.delay_menu(2), (std::vector<Tick>{1, 2, 4}));
  EXPECT_EQ(late.delay_menu(1), (std::vector<Tick>{1, 2}));
}

TEST(StrategySpaceTest, ParseRoundTrips) {
  for (const char* name : {"halt-only", "timely-delays", "late-delays"}) {
    const auto parsed = StrategySpace::parse(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(parsed->name(), name);
  }
  EXPECT_FALSE(StrategySpace::parse("alt-only").has_value());
}

TEST(StrategySpaceTest, HaltOnlyPartySpaceIsTheLegacyList) {
  const PartyPlanSpace space =
      party_plan_space(3, 2, StrategySpace{StrategySpace::Kind::kHaltOnly});
  EXPECT_EQ(space.full_size, 4u);
  EXPECT_FALSE(space.truncated());
  EXPECT_EQ(space.plans, plan_space(3));
}

TEST(StrategySpaceTest, LateSpaceIsTheFullPerOrdinalCrossProduct) {
  // 3 ordinals x {Perform, Delay(1), Delay(2), Delay(4), Drop}: 5^3 plans.
  const PartyPlanSpace space =
      party_plan_space(3, 2, StrategySpace{StrategySpace::Kind::kLateDelays});
  EXPECT_EQ(space.full_size, 125u);
  ASSERT_EQ(space.plans.size(), 125u);
  EXPECT_FALSE(space.truncated());

  // The halt-only list leads (so truncation keeps it), and no plan repeats.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(space.plans[i], plan_space(3)[i]) << i;
  }
  std::set<std::string> labels;
  for (const DeviationPlan& p : space.plans) labels.insert(p.str());
  EXPECT_EQ(labels.size(), space.plans.size()) << "plans must be distinct";
}

TEST(StrategySpaceTest, CapTruncatesLoudly) {
  StrategySpace late{StrategySpace::Kind::kLateDelays};
  const PartyPlanSpace space = party_plan_space(3, 2, late, /*cap=*/10);
  EXPECT_EQ(space.plans.size(), 10u);
  EXPECT_EQ(space.full_size, 125u);
  EXPECT_TRUE(space.truncated());
  // conform + 3 halts survive at the front.
  EXPECT_EQ(space.plans[0], DeviationPlan::conforming());
  EXPECT_EQ(space.plans[3], DeviationPlan::halt_after(2));
}

TEST(StrategySpaceTest, TimelyAtDeltaOneDegradesToHaltOnly) {
  const PartyPlanSpace space = party_plan_space(
      4, 1, StrategySpace{StrategySpace::Kind::kTimelyDelays});
  EXPECT_EQ(space.plans, plan_space(4));
  EXPECT_FALSE(space.truncated());
}

}  // namespace
}  // namespace xchain::sim
