#include <gtest/gtest.h>

#include "core/payoff.hpp"

namespace xchain::core {
namespace {

using chain::Address;

TEST(PayoffTracker, ZeroDeltaWhenNothingMoves) {
  chain::MultiChain chains;
  auto& bc = chains.add_chain("alpha");
  bc.ledger_for_setup().mint(Address::party(0), "x", 10);
  PayoffTracker tracker(chains, 1);
  const auto d = tracker.delta(chains, 0);
  EXPECT_TRUE(d.by_symbol.empty());
  EXPECT_EQ(d.coin_delta, 0);
  EXPECT_EQ(d.value_delta, 0);
}

TEST(PayoffTracker, TracksTransfersAcrossChains) {
  chain::MultiChain chains;
  auto& a = chains.add_chain("alpha");
  auto& b = chains.add_chain("beta");
  a.ledger_for_setup().mint(Address::party(0), "x", 10);
  b.ledger_for_setup().mint(Address::party(1), b.native(), 5);
  PayoffTracker tracker(chains, 2);

  a.ledger_for_setup().transfer(Address::party(0), Address::party(1), "x", 4);
  b.ledger_for_setup().transfer(Address::party(1), Address::party(0),
                                b.native(), 2);

  const auto d0 = tracker.delta(chains, 0);
  EXPECT_EQ(d0.by_symbol.at("x"), -4);
  EXPECT_EQ(d0.by_symbol.at("beta-coin"), 2);
  EXPECT_EQ(d0.coin_delta, 2);       // only the native coin counts
  EXPECT_EQ(d0.value_delta, -2);     // everything at par

  const auto d1 = tracker.delta(chains, 1);
  EXPECT_EQ(d1.coin_delta, -2);
  EXPECT_EQ(d1.value_delta, 2);
}

TEST(PayoffTracker, CoinDeltaSumsAcrossChains) {
  chain::MultiChain chains;
  auto& a = chains.add_chain("alpha");
  auto& b = chains.add_chain("beta");
  a.ledger_for_setup().mint(Address::party(0), a.native(), 10);
  b.ledger_for_setup().mint(Address::party(0), b.native(), 10);
  PayoffTracker tracker(chains, 1);
  a.ledger_for_setup().transfer(Address::party(0), Address::party(1),
                                a.native(), 3);
  b.ledger_for_setup().transfer(Address::party(0), Address::party(1),
                                b.native(), 4);
  EXPECT_EQ(tracker.delta(chains, 0).coin_delta, -7);
}

TEST(PayoffTracker, ContractBalancesNotAttributedToParties) {
  chain::MultiChain chains;
  auto& a = chains.add_chain("alpha");
  a.ledger_for_setup().mint(Address::party(0), "x", 10);
  PayoffTracker tracker(chains, 1);
  // Escrow to a contract address: the party's delta is negative, nobody
  // else's is affected.
  a.ledger_for_setup().transfer(Address::party(0), Address::contract(7), "x",
                                10);
  EXPECT_EQ(tracker.delta(chains, 0).by_symbol.at("x"), -10);
}

TEST(PayoffDelta, StrSkipsZeros) {
  PayoffDelta d;
  d.by_symbol["x"] = 3;
  d.by_symbol["y"] = 0;
  d.by_symbol["z"] = -1;
  const std::string s = d.str();
  EXPECT_NE(s.find("x: 3"), std::string::npos);
  EXPECT_EQ(s.find("y"), std::string::npos);
  EXPECT_NE(s.find("z: -1"), std::string::npos);
}

}  // namespace
}  // namespace xchain::core
