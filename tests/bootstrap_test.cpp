#include <gtest/gtest.h>

#include "core/bootstrap.hpp"
#include "core/two_party.hpp"

namespace xchain::core {
namespace {

using sim::DeviationPlan;

BootstrapConfig config(int rounds) {
  BootstrapConfig cfg;
  cfg.alice_tokens = 1'000'000;
  cfg.bob_tokens = 1'000'000;
  cfg.factor = 100.0;
  cfg.rounds = rounds;
  cfg.delta = 2;
  return cfg;
}

TEST(Bootstrap2Party, ConformingSwapCompletes) {
  for (int r = 1; r <= 4; ++r) {
    const auto res = run_bootstrap_swap(config(r), DeviationPlan::conforming(),
                                        DeviationPlan::conforming());
    EXPECT_TRUE(res.swapped) << "rounds=" << r;
    EXPECT_EQ(res.alice.coin_delta, 0) << "rounds=" << r;
    EXPECT_EQ(res.bob.coin_delta, 0) << "rounds=" << r;
    EXPECT_EQ(res.alice.by_symbol.at("apricot"), -1'000'000);
    EXPECT_EQ(res.alice.by_symbol.at("banana"), 1'000'000);
  }
}

TEST(Bootstrap2Party, InitialRiskShrinksGeometrically) {
  // §6: with P = 100, the unprotected deposit shrinks 100x per round; at
  // r = 3 a $1M swap risks only $4 / $1.
  const auto r1 = run_bootstrap_swap(config(1), DeviationPlan::conforming(),
                                     DeviationPlan::conforming());
  const auto r3 = run_bootstrap_swap(config(3), DeviationPlan::conforming(),
                                     DeviationPlan::conforming());
  EXPECT_EQ(r1.initial_risk_banana, 20'000);  // (A+B)/P
  EXPECT_EQ(r3.initial_risk_banana, 4);       // (3A+B)/P^3 — the $4 claim
  EXPECT_EQ(r3.initial_risk_apricot, 1);      // A/P^3
}

TEST(Bootstrap2Party, PremiumLockupDurationIndependentOfRounds) {
  // §6: "The duration of the premium lock-up risk is one atomic swap
  // execution plus Delta, independent of the number of bootstrapping
  // rounds."
  Tick lockup_r2 = 0;
  for (int r = 1; r <= 5; ++r) {
    const auto res = run_bootstrap_swap(config(r), DeviationPlan::conforming(),
                                        DeviationPlan::conforming());
    if (r == 2) lockup_r2 = res.max_premium_lockup;
    if (r >= 2) {
      EXPECT_EQ(res.max_premium_lockup, lockup_r2) << "rounds=" << r;
    }
    EXPECT_LE(res.max_premium_lockup, 3 * config(r).delta);
  }
}

TEST(Bootstrap2Party, SingleRoundMatchesHedgedTwoParty) {
  // rounds = 1 is §5.2 with p_b = A/P and p_a + p_b = (A+B)/P. Compare
  // outcomes against run_hedged_two_party across all deviation pairs.
  BootstrapConfig bs;
  bs.alice_tokens = 10'000;
  bs.bob_tokens = 10'000;
  bs.factor = 100.0;
  bs.rounds = 1;
  bs.delta = 2;

  TwoPartyConfig tp;
  tp.alice_tokens = 10'000;
  tp.bob_tokens = 10'000;
  tp.premium_b = 100;  // A/P
  tp.premium_a = 100;  // B/P, so p_a + p_b = (A+B)/P = 200
  tp.delta = 2;

  for (int a = -1; a <= 3; ++a) {
    for (int b = -1; b <= 3; ++b) {
      auto plan = [](int k) {
        return k < 0 ? DeviationPlan::conforming()
                     : DeviationPlan::halt_after(k);
      };
      const auto lhs = run_bootstrap_swap(bs, plan(a), plan(b));
      const auto rhs = run_hedged_two_party(tp, plan(a), plan(b));
      EXPECT_EQ(lhs.swapped, rhs.swapped) << "a=" << a << " b=" << b;
      EXPECT_EQ(lhs.alice.coin_delta, rhs.alice.coin_delta)
          << "a=" << a << " b=" << b;
      EXPECT_EQ(lhs.bob.coin_delta, rhs.bob.coin_delta)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(Bootstrap2Party, PremiumPhaseDefaultCostsNothing) {
  // r = 2: Bob performs his first deposit (banana rung 2) but skips his
  // apricot premium. Premium-phase defaults are the accepted residual
  // risk (§4): every held rung is refunded, nobody pays, and crucially no
  // principal was ever exposed.
  const auto res = run_bootstrap_swap(config(2), DeviationPlan::conforming(),
                                      DeviationPlan::halt_after(1));
  EXPECT_FALSE(res.swapped);
  EXPECT_EQ(res.alice.coin_delta, 0);
  EXPECT_EQ(res.bob.coin_delta, 0);
  EXPECT_EQ(res.alice_lockup, 0);  // principals never moved
  EXPECT_EQ(res.bob_lockup, 0);
}

TEST(Bootstrap2Party, BobDefaultsOnPrincipalPaysRungOne) {
  // r = 2: Bob deposits all premiums but never escrows his principal after
  // Alice escrowed hers: §5.2 semantics — Alice collects Bob's apricot
  // premium A^(1) = A/P as compensation for her locked principal.
  const auto res = run_bootstrap_swap(config(2), DeviationPlan::conforming(),
                                      DeviationPlan::halt_after(2));
  EXPECT_FALSE(res.swapped);
  EXPECT_GT(res.alice_lockup, 0);
  EXPECT_EQ(res.alice.coin_delta, 10'000);  // A/P = 1'000'000 / 100
  EXPECT_EQ(res.bob.coin_delta, -10'000);
}

TEST(Bootstrap2Party, AliceDefaultsOnPrincipalPaysGuard) {
  // r = 2: Alice deposits premiums but never escrows her principal; her
  // apricot guard (rung 2 = A/P^2 = 100) goes to Bob.
  const auto res = run_bootstrap_swap(config(2), DeviationPlan::halt_after(2),
                                      DeviationPlan::conforming());
  EXPECT_FALSE(res.swapped);
  EXPECT_LT(res.alice.coin_delta, 0);
  EXPECT_GT(res.bob.coin_delta, 0);
}

class BootstrapSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BootstrapSweep, CompliantPartiesNeverLoseCoins) {
  const auto [rounds, ka, kb] = GetParam();
  auto plan = [](int k) {
    return k < 0 ? DeviationPlan::conforming() : DeviationPlan::halt_after(k);
  };
  const auto res = run_bootstrap_swap(config(rounds), plan(ka), plan(kb));
  if (ka < 0) {
    EXPECT_GE(res.alice.coin_delta, 0)
        << "rounds=" << rounds << " bob halt@" << kb;
    if (res.alice_lockup > 0) {
      // Hedged: a compliant Alice whose principal was locked up gets paid.
      EXPECT_GT(res.alice.coin_delta, 0);
    }
  }
  if (kb < 0) {
    EXPECT_GE(res.bob.coin_delta, 0)
        << "rounds=" << rounds << " alice halt@" << ka;
    if (res.bob_lockup > 0) {
      EXPECT_GT(res.bob.coin_delta, 0);
    }
  }
  EXPECT_EQ(res.alice.coin_delta + res.bob.coin_delta, 0);
}

std::vector<std::tuple<int, int, int>> sweep_cases() {
  std::vector<std::tuple<int, int, int>> cases;
  for (int rounds : {1, 2, 3}) {
    const int actions = bootstrap_action_count(rounds);
    for (int a = -1; a <= actions; ++a) {
      for (int b = -1; b <= actions; ++b) {
        // Only sweep cases where at least one side is compliant (the
        // assertions are about compliant parties).
        if (a < 0 || b < 0) cases.emplace_back(rounds, a, b);
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Plans, BootstrapSweep,
                         ::testing::ValuesIn(sweep_cases()));

}  // namespace
}  // namespace xchain::core
