#include <gtest/gtest.h>

#include "core/multi_party.hpp"

namespace xchain::core {
namespace {

using graph::Digraph;
using sim::DeviationPlan;

std::vector<DeviationPlan> all_conform(std::size_t n) {
  return std::vector<DeviationPlan>(n, DeviationPlan::conforming());
}

MultiPartyConfig config(Digraph g, bool hedged = true) {
  MultiPartyConfig cfg;
  cfg.g = std::move(g);
  cfg.asset_amount = 100;
  cfg.premium_unit = 1;
  cfg.delta = 1;
  cfg.hedged = hedged;
  return cfg;
}

// ---------------------------------------------------------------------------
// Conforming runs (Lemma 1): swap completes, all premiums refunded.
// ---------------------------------------------------------------------------

TEST(MultiParty, ConformingTwoPartyDigraph) {
  const auto r =
      run_multi_party_swap(config(Digraph::two_party()), all_conform(2));
  EXPECT_TRUE(r.all_redeemed);
  EXPECT_EQ(r.payoffs[0].coin_delta, 0);
  EXPECT_EQ(r.payoffs[1].coin_delta, 0);
  EXPECT_EQ(r.payoffs[0].by_symbol.at("token-0"), -100);
  EXPECT_EQ(r.payoffs[0].by_symbol.at("token-1"), 100);
}

TEST(MultiParty, ConformingFigure3a) {
  const auto r =
      run_multi_party_swap(config(Digraph::figure3a()), all_conform(3));
  EXPECT_TRUE(r.all_redeemed);
  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(r.payoffs[v].coin_delta, 0) << "party " << v;
  }
  // B receives A's token (arc A->B) and pays out two of its own.
  EXPECT_EQ(r.payoffs[1].by_symbol.at("token-0"), 100);
  EXPECT_EQ(r.payoffs[1].by_symbol.at("token-1"), -200);
  // A receives from B and C.
  EXPECT_EQ(r.payoffs[0].by_symbol.at("token-1"), 100);
  EXPECT_EQ(r.payoffs[0].by_symbol.at("token-2"), 100);
}

TEST(MultiParty, ConformingCycles) {
  for (std::size_t n : {3u, 4u, 6u}) {
    const auto r =
        run_multi_party_swap(config(Digraph::cycle(n)), all_conform(n));
    EXPECT_TRUE(r.all_redeemed) << "n=" << n;
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(r.payoffs[v].coin_delta, 0);
    }
  }
}

TEST(MultiParty, ConformingCompleteGraphs) {
  for (std::size_t n : {3u, 4u}) {
    const auto r =
        run_multi_party_swap(config(Digraph::complete(n)), all_conform(n));
    EXPECT_TRUE(r.all_redeemed) << "n=" << n;
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(r.payoffs[v].coin_delta, 0);
    }
  }
}

TEST(MultiParty, ConformingBaseProtocol) {
  const auto r = run_multi_party_swap(
      config(Digraph::figure3a(), /*hedged=*/false), all_conform(3));
  EXPECT_TRUE(r.all_redeemed);
  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(r.payoffs[v].coin_delta, 0);
  }
}

// ---------------------------------------------------------------------------
// Figure 3a deviation scenarios with exact Equation-1/2 payoffs (p = 1).
// Leader A; R((A),B)=2, R((A),C)=3, R(A)=5; E(B,A)=E(C,A)=E(B,C)=5,
// E(A,B)=10.
// ---------------------------------------------------------------------------

TEST(MultiParty, LeaderWithholdsHashkey) {
  // A halts before phase 4: no hashkey ever appears (Lemma 2 situation).
  // All assets refund; every redemption premium is awarded to the arc
  // sender: A nets -2p-3p+p = -4, B nets +2p+2p-p = +3, C nets +3p-2p = +1.
  std::vector<DeviationPlan> plans = all_conform(3);
  plans[0] = DeviationPlan::halt_after(3);
  const auto r = run_multi_party_swap(config(Digraph::figure3a()), plans);
  EXPECT_FALSE(r.all_redeemed);
  EXPECT_EQ(r.payoffs[0].coin_delta, -4);
  EXPECT_EQ(r.payoffs[1].coin_delta, 3);
  EXPECT_EQ(r.payoffs[2].coin_delta, 1);
  // Lemma 2: at least p per escrowed (and refunded) asset.
  EXPECT_GE(r.payoffs[1].coin_delta, r.assets_refunded[1]);
  EXPECT_GE(r.payoffs[2].coin_delta, r.assets_refunded[2]);
}

TEST(MultiParty, FollowerWithholdsHashkeyPropagation) {
  // B halts before phase 4. A's release of k_A redeems (B,A) and (C,A); C
  // relays and redeems (B,C); (A,B) times out unredeemed: B's premium p on
  // it is awarded to A.
  std::vector<DeviationPlan> plans = all_conform(3);
  plans[1] = DeviationPlan::halt_after(3);
  const auto r = run_multi_party_swap(config(Digraph::figure3a()), plans);
  EXPECT_FALSE(r.all_redeemed);
  EXPECT_EQ(r.payoffs[0].coin_delta, 1);   // +p for its locked asset
  EXPECT_EQ(r.payoffs[1].coin_delta, -1);  // deviator pays
  EXPECT_EQ(r.payoffs[2].coin_delta, 0);   // C completed everything
  EXPECT_EQ(r.assets_refunded[0], 1);      // (A,B) came back to A
  // B's assets were redeemed out from under it — self-harm, as in the
  // two-party case.
  EXPECT_EQ(r.payoffs[1].by_symbol.at("token-1"), -200);
}

TEST(MultiParty, FollowerSkipsEscrowPhase) {
  // C halts before phase 3 (Lemma 3 situation). A escrowed on (A,B), B on
  // (B,A) and (B,C); all refund. Premium flows: E(C,A)=5 awarded to A;
  // every redemption premium awarded to its arc's sender.
  // A: +5 (escrow award) - 2 - 3 (its deposits) + 1 (from (A,B)) = +1.
  // B: +2 (on (B,A)) + 2 (on (B,C)) - 1 (its deposit) = +3.
  // C: +3 (on (C,A)) - 2 (its deposit) - 5 (escrow premium) = -4.
  std::vector<DeviationPlan> plans = all_conform(3);
  plans[2] = DeviationPlan::halt_after(2);
  const auto r = run_multi_party_swap(config(Digraph::figure3a()), plans);
  EXPECT_FALSE(r.all_redeemed);
  EXPECT_EQ(r.payoffs[0].coin_delta, 1);
  EXPECT_EQ(r.payoffs[1].coin_delta, 3);
  EXPECT_EQ(r.payoffs[2].coin_delta, -4);
  EXPECT_EQ(r.assets_refunded[0], 1);
  EXPECT_EQ(r.assets_refunded[1], 2);
  EXPECT_GE(r.payoffs[0].coin_delta, r.assets_refunded[0]);
  EXPECT_GE(r.payoffs[1].coin_delta, r.assets_refunded[1]);
}

TEST(MultiParty, FollowerSkipsEscrowPremiums) {
  // C halts before phase 1 (Lemma 5 situation): premium distribution
  // fails; compliant parties end with zero escrow-premium losses.
  std::vector<DeviationPlan> plans = all_conform(3);
  plans[2] = DeviationPlan::halt_after(0);
  const auto r = run_multi_party_swap(config(Digraph::figure3a()), plans);
  EXPECT_FALSE(r.all_redeemed);
  EXPECT_GE(r.payoffs[0].coin_delta, 0);
  EXPECT_GE(r.payoffs[1].coin_delta, 0);
  // Nobody escrowed any asset.
  EXPECT_EQ(r.assets_escrowed[0] + r.assets_escrowed[1] +
                r.assets_escrowed[2],
            0);
}

TEST(MultiParty, FollowerSkipsRedemptionPremiums) {
  // C halts before phase 2 (Lemma 4 situation): activation fails on arcs
  // needing C's deposits; compliant parties break even.
  std::vector<DeviationPlan> plans = all_conform(3);
  plans[2] = DeviationPlan::halt_after(1);
  const auto r = run_multi_party_swap(config(Digraph::figure3a()), plans);
  EXPECT_FALSE(r.all_redeemed);
  EXPECT_GE(r.payoffs[0].coin_delta, 0);
  EXPECT_GE(r.payoffs[1].coin_delta, 0);
}

// ---------------------------------------------------------------------------
// Base protocol exposure: the sore-loser flaw the hedged version removes.
// ---------------------------------------------------------------------------

TEST(MultiParty, BaseProtocolLocksWithoutCompensation) {
  std::vector<DeviationPlan> plans = all_conform(3);
  plans[2] = DeviationPlan::halt_after(0);  // C never escrows (base phase 1)
  const auto r = run_multi_party_swap(
      config(Digraph::figure3a(), /*hedged=*/false), plans);
  EXPECT_FALSE(r.all_redeemed);
  // Assets were locked and refunded...
  EXPECT_GT(r.assets_refunded[0] + r.assets_refunded[1], 0);
  // ...and nobody received any compensation: the flaw.
  EXPECT_EQ(r.payoffs[0].coin_delta, 0);
  EXPECT_EQ(r.payoffs[1].coin_delta, 0);
}

// ---------------------------------------------------------------------------
// Property sweep: hedged guarantee over graphs x single deviator x phase.
// ---------------------------------------------------------------------------

struct SweepCase {
  int graph_kind;  // 0 = two_party, 1 = figure3a, 2 = cycle4, 3 = complete3
  PartyId deviator;
  int halt;
};

Digraph graph_of(int kind) {
  switch (kind) {
    case 0: return Digraph::two_party();
    case 1: return Digraph::figure3a();
    case 2: return Digraph::cycle(4);
    default: return Digraph::complete(3);
  }
}

class MultiPartySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MultiPartySweep, CompliantPartiesAreHedged) {
  const auto& [kind, deviator, halt] = GetParam();
  Digraph g = graph_of(kind);
  std::vector<DeviationPlan> plans = all_conform(g.size());
  plans[deviator] = DeviationPlan::halt_after(halt);
  const auto r = run_multi_party_swap(config(std::move(g)), plans);

  Amount total = 0;
  for (std::size_t v = 0; v < r.payoffs.size(); ++v) {
    total += r.payoffs[v].coin_delta;
    if (v == deviator) continue;
    // Compliant parties never lose coins...
    EXPECT_GE(r.payoffs[v].coin_delta, 0)
        << "graph " << kind << " deviator " << deviator << " halt@" << halt
        << " party " << v;
    // ...and are paid at least p per locked-and-refunded asset (Lemma 6).
    EXPECT_GE(r.payoffs[v].coin_delta, r.assets_refunded[v])
        << "graph " << kind << " deviator " << deviator << " halt@" << halt
        << " party " << v;
  }
  EXPECT_EQ(total, 0) << "premiums are zero-sum";
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (int kind = 0; kind < 4; ++kind) {
    const std::size_t n = graph_of(kind).size();
    for (PartyId d = 0; d < n; ++d) {
      for (int halt = 0; halt <= kMultiPartyHedgedActions; ++halt) {
        cases.push_back({kind, d, halt});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Graphs, MultiPartySweep,
                         ::testing::ValuesIn(sweep_cases()));

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(MultiParty, RejectsDisconnectedGraph) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 0);  // vertex 2 unreachable
  EXPECT_THROW(run_multi_party_swap(config(std::move(g)), all_conform(3)),
               std::invalid_argument);
}

TEST(MultiParty, RejectsBadLeaderSet) {
  MultiPartyConfig cfg = config(Digraph::figure3a());
  cfg.leaders = {2};  // C is not a feedback vertex set
  EXPECT_THROW(run_multi_party_swap(cfg, all_conform(3)),
               std::invalid_argument);
}

TEST(MultiParty, RejectsPlanCountMismatch) {
  EXPECT_THROW(
      run_multi_party_swap(config(Digraph::figure3a()), all_conform(2)),
      std::invalid_argument);
}

}  // namespace
}  // namespace xchain::core
