// Contract-level tests for the §9 auction contracts: rejection paths,
// timeout arithmetic, and settlement rules, driven directly (no engine).

#include <gtest/gtest.h>

#include "chain/blockchain.hpp"
#include "contracts/auction.hpp"
#include "crypto/secret.hpp"

namespace xchain::contracts {
namespace {

using chain::Address;
using chain::MultiChain;
using chain::TxContext;

constexpr PartyId kAlice = 0;
constexpr PartyId kBob = 1;
constexpr PartyId kCarol = 2;

class AuctionContractFixture : public ::testing::Test {
 protected:
  AuctionContractFixture()
      : coin_chain_(chains_.add_chain("coinchain")),
        alice_keys_(crypto::keygen("alice")),
        bob_keys_(crypto::keygen("bidder-1")),
        s_bob_(crypto::Secret::from_label("win-bob")),
        s_carol_(crypto::Secret::from_label("win-carol")) {
    AuctionTerms terms;
    terms.auctioneer = kAlice;
    terms.bidders = {kBob, kCarol};
    terms.hashlocks = {s_bob_.hashlock(), s_carol_.hashlock()};
    terms.party_keys = {alice_keys_.pub, bob_keys_.pub,
                        crypto::keygen("bidder-2").pub};
    terms.delta = 2;
    terms.bid_deadline = 2;
    terms.declaration_start = 2;
    terms.commit_time = 10;
    coin_ = &coin_chain_.deploy<CoinAuctionContract>(
        CoinAuctionContract::Params{terms, /*premium=*/3});
    coin_chain_.ledger_for_setup().mint(Address::party(kAlice),
                                        coin_chain_.native(), 6);
    coin_chain_.ledger_for_setup().mint(Address::party(kBob),
                                        coin_chain_.native(), 100);
    coin_chain_.ledger_for_setup().mint(Address::party(kCarol),
                                        coin_chain_.native(), 100);
  }

  void produce_until(Tick t) {
    for (Tick now = coin_chain_.height() + 1; now <= t; ++now) {
      chains_.produce_all(now);
    }
  }
  void submit(PartyId who, std::function<void(TxContext&)> fn, Tick t) {
    coin_chain_.submit({who, "tx", std::move(fn)});
    produce_until(t);
  }
  Amount coins(PartyId p) {
    return coin_chain_.ledger().balance(Address::party(p),
                                        coin_chain_.native());
  }

  MultiChain chains_;
  chain::Blockchain& coin_chain_;
  crypto::KeyPair alice_keys_;
  crypto::KeyPair bob_keys_;
  crypto::Secret s_bob_;
  crypto::Secret s_carol_;
  CoinAuctionContract* coin_ = nullptr;
};

TEST_F(AuctionContractFixture, BidsRejectedWithoutEndowment) {
  submit(kBob, [this](TxContext& c) { coin_->place_bid(c, 50); }, 0);
  EXPECT_FALSE(coin_->bid_of(0).has_value());
  EXPECT_EQ(coins(kBob), 100);
}

TEST_F(AuctionContractFixture, EndowmentThenBidsAccepted) {
  submit(kAlice, [this](TxContext& c) { coin_->endow_premium(c); }, 0);
  EXPECT_TRUE(coin_->premium_endowed());
  submit(kBob, [this](TxContext& c) { coin_->place_bid(c, 50); }, 1);
  EXPECT_EQ(coin_->bid_of(0), 50);
  EXPECT_EQ(coins(kBob), 50);
}

TEST_F(AuctionContractFixture, LateBidRejected) {
  submit(kAlice, [this](TxContext& c) { coin_->endow_premium(c); }, 0);
  produce_until(2);
  submit(kBob, [this](TxContext& c) { coin_->place_bid(c, 50); }, 3);
  EXPECT_FALSE(coin_->bid_of(0).has_value());
}

TEST_F(AuctionContractFixture, NonBidderCannotBid) {
  submit(kAlice, [this](TxContext& c) { coin_->endow_premium(c); }, 0);
  submit(kAlice, [this](TxContext& c) { coin_->place_bid(c, 50); }, 1);
  EXPECT_FALSE(coin_->bid_of(0).has_value());
  EXPECT_FALSE(coin_->bid_of(1).has_value());
}

TEST_F(AuctionContractFixture, WinnerPicksHighestBid) {
  submit(kAlice, [this](TxContext& c) { coin_->endow_premium(c); }, 0);
  submit(kBob, [this](TxContext& c) { coin_->place_bid(c, 50); }, 1);
  submit(kCarol, [this](TxContext& c) { coin_->place_bid(c, 80); }, 2);
  EXPECT_EQ(coin_->winner(), 1u);  // Carol (index 1) bid more
}

TEST_F(AuctionContractFixture, HashkeyTimeoutScalesWithPath) {
  submit(kAlice, [this](TxContext& c) { coin_->endow_premium(c); }, 0);
  submit(kBob, [this](TxContext& c) { coin_->place_bid(c, 50); }, 1);
  // |q| = 1 hashkey times out at declaration_start + 1 * delta = 4.
  const auto key =
      crypto::make_leader_hashkey(s_bob_.value(), kAlice, alice_keys_);
  produce_until(4);
  submit(kAlice,
         [this, key](TxContext& c) { coin_->present_hashkey(c, 0, key); },
         5);
  EXPECT_FALSE(coin_->hashkey_received(0));  // too late
}

TEST_F(AuctionContractFixture, ForgedHashkeyRejected) {
  submit(kAlice, [this](TxContext& c) { coin_->endow_premium(c); }, 0);
  // Bob forges a "leader" hashkey with his own signature.
  const auto forged =
      crypto::make_leader_hashkey(s_bob_.value(), kAlice, bob_keys_);
  submit(kBob,
         [this, forged](TxContext& c) { coin_->present_hashkey(c, 0, forged); },
         1);
  EXPECT_FALSE(coin_->hashkey_received(0));
}

TEST_F(AuctionContractFixture, SettlementRefundsOnNoHashkey) {
  submit(kAlice, [this](TxContext& c) { coin_->endow_premium(c); }, 0);
  submit(kBob, [this](TxContext& c) { coin_->place_bid(c, 50); }, 1);
  produce_until(11);  // commit_time 10; sweep at 11
  EXPECT_TRUE(coin_->settled());
  EXPECT_FALSE(coin_->completed_cleanly());
  EXPECT_EQ(coins(kBob), 103);    // bid back + premium 3
  EXPECT_EQ(coins(kAlice), 3);    // unused half of the endowment
}

TEST_F(AuctionContractFixture, SettlementPaysWinnerCleanly) {
  submit(kAlice, [this](TxContext& c) { coin_->endow_premium(c); }, 0);
  submit(kBob, [this](TxContext& c) { coin_->place_bid(c, 50); }, 1);
  const auto key =
      crypto::make_leader_hashkey(s_bob_.value(), kAlice, alice_keys_);
  produce_until(2);
  submit(kAlice,
         [this, key](TxContext& c) { coin_->present_hashkey(c, 0, key); },
         3);
  produce_until(11);
  EXPECT_TRUE(coin_->completed_cleanly());
  EXPECT_EQ(coins(kAlice), 56);  // 50 bid + 6 endowment back
  EXPECT_EQ(coins(kBob), 50);
}

TEST_F(AuctionContractFixture, TicketContractAwardsOnSingleKey) {
  auto& ticket_chain = chains_.add_chain("ticketchain");
  AuctionTerms terms = coin_->params().terms;
  auto& ticket = ticket_chain.deploy<TicketAuctionContract>(
      TicketAuctionContract::Params{terms, "ticket", 10});
  ticket_chain.ledger_for_setup().mint(Address::party(kAlice), "ticket", 10);

  ticket_chain.submit(
      {kAlice, "escrow", [&](TxContext& c) { ticket.escrow_tickets(c); }});
  produce_until(0);
  const auto key =
      crypto::make_leader_hashkey(s_carol_.value(), kAlice, alice_keys_);
  produce_until(2);
  ticket_chain.submit({kAlice, "key", [&](TxContext& c) {
                         ticket.present_hashkey(c, 1, key);
                       }});
  produce_until(11);
  EXPECT_EQ(ticket.awarded_to(), kCarol);
  EXPECT_EQ(ticket_chain.ledger().balance(Address::party(kCarol), "ticket"),
            10);
}

TEST_F(AuctionContractFixture, TicketContractRefundsOnTwoKeys) {
  auto& ticket_chain = chains_.add_chain("ticketchain");
  AuctionTerms terms = coin_->params().terms;
  auto& ticket = ticket_chain.deploy<TicketAuctionContract>(
      TicketAuctionContract::Params{terms, "ticket", 10});
  ticket_chain.ledger_for_setup().mint(Address::party(kAlice), "ticket", 10);
  ticket_chain.submit(
      {kAlice, "escrow", [&](TxContext& c) { ticket.escrow_tickets(c); }});
  produce_until(2);
  const auto k0 =
      crypto::make_leader_hashkey(s_bob_.value(), kAlice, alice_keys_);
  const auto k1 =
      crypto::make_leader_hashkey(s_carol_.value(), kAlice, alice_keys_);
  ticket_chain.submit({kAlice, "k0", [&](TxContext& c) {
                         ticket.present_hashkey(c, 0, k0);
                       }});
  ticket_chain.submit({kAlice, "k1", [&](TxContext& c) {
                         ticket.present_hashkey(c, 1, k1);
                       }});
  produce_until(11);
  EXPECT_FALSE(ticket.awarded_to().has_value());
  EXPECT_EQ(ticket_chain.ledger().balance(Address::party(kAlice), "ticket"),
            10);
}

}  // namespace
}  // namespace xchain::contracts
