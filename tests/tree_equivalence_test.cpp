// The schedule-tree executor must be a pure accelerator: for every
// tree-capable adapter and every strategy space, the report it produces is
// identical — schedule for schedule, violation for violation, truncation
// notice for truncation notice — to the brute-force replay's. These tests
// pin that equivalence across the full reference-protocol registry, the
// executor-statistics invariants that distinguish the two engines, the
// kTree capability check, and report stability across repeated sweeps on
// one runner (including a dirty world left behind by interleaved run()
// calls).

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/registry.hpp"
#include "sim/scenario.hpp"

namespace xchain::sim {
namespace {

// Same reference set as tests/parallel_sweep_test.cpp: the registry
// defaults plus a 4-party ring.
std::vector<std::unique_ptr<ProtocolAdapter>> reference_adapters() {
  const ProtocolRegistry& reg = ProtocolRegistry::global();
  std::vector<std::unique_ptr<ProtocolAdapter>> out;
  out.push_back(reg.make("two-party"));
  out.push_back(reg.make("multi-party-fig3a"));
  ParamSet ring = reg.defaults("multi-party-ring");
  ring.set("n", "4");
  out.push_back(reg.make("multi-party-ring", ring));
  out.push_back(reg.make("auction-open"));
  out.push_back(reg.make("auction-sealed"));
  out.push_back(reg.make("broker"));
  out.push_back(reg.make("bootstrap"));
  out.push_back(reg.make("crr-ladder"));
  return out;
}

void expect_identical(const SweepReport& brute, const SweepReport& tree) {
  EXPECT_EQ(tree.protocol, brute.protocol);
  EXPECT_EQ(tree.schedules_run, brute.schedules_run);
  EXPECT_EQ(tree.conforming_audited, brute.conforming_audited);
  EXPECT_EQ(tree.truncations, brute.truncations);
  ASSERT_EQ(tree.violations.size(), brute.violations.size());
  for (std::size_t i = 0; i < brute.violations.size(); ++i) {
    EXPECT_EQ(tree.violations[i].schedule, brute.violations[i].schedule)
        << "violation " << i << " out of order";
    EXPECT_EQ(tree.violations[i].party, brute.violations[i].party);
    EXPECT_EQ(tree.violations[i].coin_delta, brute.violations[i].coin_delta);
    EXPECT_EQ(tree.violations[i].required_min,
              brute.violations[i].required_min);
  }
}

// Every schedule is accounted for exactly once by either engine: brute
// executes all of them, the tree executes one per distinct consulted
// decision path and serves the rest as dedup hits.
void expect_stats_invariants(const SweepReport& brute,
                             const SweepReport& tree) {
  EXPECT_EQ(brute.nodes_executed, brute.schedules_run);
  EXPECT_EQ(brute.schedules_covered, brute.schedules_run);
  EXPECT_EQ(brute.dedup_hits, 0u);

  EXPECT_EQ(tree.schedules_covered, tree.schedules_run);
  EXPECT_LE(tree.nodes_executed, tree.schedules_run);
  EXPECT_GE(tree.nodes_executed, 1u);
  EXPECT_EQ(tree.nodes_executed + tree.dedup_hits, tree.schedules_run);
}

TEST(TreeEquivalence, MatchesBruteOnEveryAdapterAndStrategySpace) {
  std::size_t total_schedules = 0;
  std::size_t total_nodes = 0;
  for (const StrategySpace::Kind kind : {StrategySpace::Kind::kHaltOnly,
                                         StrategySpace::Kind::kTimelyDelays,
                                         StrategySpace::Kind::kLateDelays}) {
    for (const auto& adapter : reference_adapters()) {
      SCOPED_TRACE(adapter->name() + " / " +
                   StrategySpace::kind_name(kind));
      ScenarioRunner runner(*adapter);
      SweepOptions opts;
      opts.strategies.kind = kind;
      opts.executor = SweepExecutor::kBrute;
      const SweepReport brute = runner.sweep(opts);
      opts.executor = SweepExecutor::kTree;
      const SweepReport tree = runner.sweep(opts);

      expect_identical(brute, tree);
      expect_stats_invariants(brute, tree);
      EXPECT_EQ(tree.workers, 1u);
      total_schedules += tree.schedules_run;
      total_nodes += tree.nodes_executed;
    }
  }
  // The tree must actually share prefixes somewhere in the matrix — if it
  // degenerated to one execution per schedule these would be equal and the
  // executor would be a slower brute force.
  EXPECT_LT(total_nodes, total_schedules);
}

// kAuto on a serial sweep of a tree-capable adapter selects the tree; the
// report must still match a forced brute run, and the statistics must show
// the tree ran (the default path the whole historical suite now exercises).
TEST(TreeEquivalence, AutoSelectsTreeSeriallyAndMatchesBrute) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  ScenarioRunner runner(*adapter);
  const SweepReport auto_serial = runner.sweep();
  SweepOptions brute_opts;
  brute_opts.executor = SweepExecutor::kBrute;
  const SweepReport brute = runner.sweep(brute_opts);
  expect_identical(brute, auto_serial);
  expect_stats_invariants(brute, auto_serial);
}

// Forcing kTree with a multi-thread request still runs the (serial) tree:
// one worker, same report as brute.
TEST(TreeEquivalence, TreeForcesSerialExecutionUnderThreadRequest) {
  const auto adapter = ProtocolRegistry::global().make("broker");
  ScenarioRunner runner(*adapter);
  SweepOptions brute_opts;
  brute_opts.executor = SweepExecutor::kBrute;
  const SweepReport brute = runner.sweep(brute_opts);
  SweepOptions tree_opts;
  tree_opts.threads = 8;
  tree_opts.executor = SweepExecutor::kTree;
  const SweepReport tree = runner.sweep(tree_opts);
  EXPECT_EQ(tree.workers, 1u);
  expect_identical(brute, tree);
}

// Repeated sweeps on one runner reuse the adapter's world (and, between
// tree sweeps, inherit a non-empty snapshot stack); interleaved legacy
// run() calls dirty that world through the checkpoint/reset path without
// touching the snapshot stack. Every subsequent sweep must still report
// identically — the executor re-bases on a clean slot-0 state either way.
TEST(TreeEquivalence, RepeatedAndInterleavedSweepsStayIdentical) {
  const auto adapter = ProtocolRegistry::global().make("bootstrap");
  ScenarioRunner runner(*adapter);
  SweepOptions opts;
  opts.executor = SweepExecutor::kTree;
  const SweepReport first = runner.sweep(opts);
  const SweepReport second = runner.sweep(opts);
  expect_identical(first, second);
  EXPECT_EQ(second.nodes_executed, first.nodes_executed);
  EXPECT_EQ(second.dedup_hits, first.dedup_hits);

  // Dirty the reused world via the legacy path, then tree-sweep again.
  Schedule everyone_halts;
  for (std::size_t p = 0; p < adapter->party_count(); ++p) {
    everyone_halts.plans.push_back(DeviationPlan::halt_after(0));
  }
  (void)adapter->run(everyone_halts);
  const SweepReport third = runner.sweep(opts);
  expect_identical(first, third);
}

// A synthetic adapter with no tree hooks: kAuto must silently fall back to
// brute force, kTree must refuse loudly.
class HooklessAdapter final : public ProtocolAdapter {
 public:
  std::string name() const override { return "hookless"; }
  std::size_t party_count() const override { return 2; }
  int action_count(PartyId) const override { return 2; }
  std::unique_ptr<ProtocolAdapter> clone() const override {
    return std::make_unique<HooklessAdapter>(*this);
  }
  std::vector<PartyOutcome> run(const Schedule& s) const override {
    std::vector<PartyOutcome> out;
    for (const DeviationPlan& plan : s.plans) {
      out.push_back({"p", plan.is_conforming(), {}, {}});
    }
    return out;
  }
};

TEST(TreeEquivalence, TreeRefusesAdapterWithoutHooks) {
  HooklessAdapter adapter;
  ASSERT_EQ(adapter.tree_frame(), nullptr);
  ScenarioRunner runner(adapter);
  SweepOptions opts;
  opts.executor = SweepExecutor::kTree;
  EXPECT_THROW((void)runner.sweep(opts), std::invalid_argument);

  // kAuto degrades to brute force: identical to kBrute, no dedup.
  const SweepReport auto_report = runner.sweep();
  opts.executor = SweepExecutor::kBrute;
  const SweepReport brute = runner.sweep(opts);
  expect_identical(brute, auto_report);
  EXPECT_EQ(auto_report.nodes_executed, auto_report.schedules_run);
  EXPECT_EQ(auto_report.dedup_hits, 0u);
}

TEST(TreeEquivalence, TreeRefusesWhenWorldReuseDisabled) {
  const auto adapter = ProtocolRegistry::global().make("two-party");
  adapter->set_world_reuse(false);
  ASSERT_EQ(adapter->tree_frame(), nullptr);
  ScenarioRunner runner(*adapter);
  SweepOptions opts;
  opts.executor = SweepExecutor::kTree;
  EXPECT_THROW((void)runner.sweep(opts), std::invalid_argument);
}

// The unimplemented-hook defaults throw std::logic_error naming the
// adapter, so a future adapter that advertises a tree frame without
// overriding the other two hooks fails loudly, not with slicing.
TEST(TreeEquivalence, DefaultHooksThrowLogicError) {
  HooklessAdapter adapter;
  Schedule s;
  s.plans.assign(2, DeviationPlan::conforming());
  EXPECT_THROW((void)adapter.tree_set_plans(s), std::logic_error);
  EXPECT_THROW((void)adapter.tree_collect(s), std::logic_error);
}

}  // namespace
}  // namespace xchain::sim
